"""Package-level contracts: exports, errors, version, CLI."""

import pytest

import repro
from repro import errors


class TestPublicAPI:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        major = int(repro.__version__.split(".")[0])
        assert major >= 1

    def test_quickstart_snippet(self):
        """The README's four-line quickstart works verbatim."""
        from repro import ChipSimulator, resnet18_spec

        result = ChipSimulator().run(resnet18_spec(), "heuristic")
        assert result.latency_ms > 0


class TestErrorHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                assert issubclass(obj, errors.ReproError), name

    def test_specific_parentage(self):
        assert issubclass(errors.SliceIndexError, errors.CMemError)
        assert issubclass(errors.RowIndexError, errors.CMemError)
        assert issubclass(errors.AlignmentError, errors.MemoryMapError)
        assert issubclass(errors.CapacityError, errors.MappingError)
        assert issubclass(errors.PlacementError, errors.MappingError)
        assert issubclass(errors.ShapeError, errors.GraphError)

    def test_one_base_catches_everything(self):
        from repro.mapping.capacity import CapacityModel
        from repro.nn.workloads import ConvLayerSpec

        with pytest.raises(errors.ReproError):
            CapacityModel().vector_slots_per_slice(64)


class TestCLI:
    def test_list_flag(self, capsys):
        from repro.experiments.runner import main

        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        for name in ("table4", "table5", "table6", "table7", "figure9", "figure10"):
            assert name in out

    def test_single_experiment(self, capsys):
        from repro.experiments.runner import main

        assert main(["figure10"]) == 0
        assert "Figure 10" in capsys.readouterr().out


class TestPlacementRendering:
    def test_render_marks_dcs_and_layers(self):
        from repro.core.perfmodel import PerformanceModel
        from repro.mapping.placement import zigzag_placement
        from repro.mapping.segmentation import HeuristicStrategy
        from repro.nn.workloads import resnet18_spec

        plan = HeuristicStrategy().plan(
            resnet18_spec(), PerformanceModel().layer_time_fn()
        )
        text = zigzag_placement(plan.segments[0]).render()
        assert text.count("D") == len(plan.segments[0].layers)
        assert "a" in text and "b" in text
