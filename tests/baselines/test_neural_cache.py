"""Neural Cache model vs the paper's Table 4 column."""

import pytest

from repro.baselines.neural_cache import NeuralCacheModel
from repro.core.node import table4_workload


@pytest.fixture(scope="module")
def result():
    return NeuralCacheModel().run(table4_workload())


class TestTable4Column:
    def test_cycles_near_paper(self, result):
        """Paper: 136416 cycles."""
        assert result.cycles == pytest.approx(136416, rel=0.05)

    def test_energy_near_paper(self, result):
        """Paper: 4.03e-6 J."""
        assert result.energy_j == pytest.approx(4.03e-6, rel=0.05)

    def test_memory_is_40kb(self, result):
        assert result.memory_kb == 40

    def test_area_from_paper(self, result):
        assert result.area_mm2 == 0.158


class TestReductionShare:
    def test_reduction_near_23_percent(self, result):
        """Sec. 3.2: reduction takes up 23% of Neural Cache's cycles."""
        assert result.reduction_fraction == pytest.approx(0.23, abs=0.02)

    def test_components_sum(self, result):
        assert result.cycles == (
            result.multiply_cycles + result.accumulate_cycles
            + result.reduction_cycles
        )


class TestScaling:
    def test_passes_scale_with_filters(self):
        from repro.nn.workloads import ConvLayerSpec

        small = ConvLayerSpec(0, "s", h=9, w=9, c=256, m=4, padding=0)
        large = ConvLayerSpec(0, "l", h=9, w=9, c=256, m=8, padding=0)
        model = NeuralCacheModel()
        assert model.run(large).cycles == 2 * model.run(small).cycles
        assert model.run(small).passes == 1
        assert model.run(large).passes == 2
