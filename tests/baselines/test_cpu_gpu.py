"""CPU/GPU roofline models vs the paper's Table 7 measurements."""

import pytest

from repro.baselines.cpu_gpu import CPU_I9_13900K, GPU_RTX_4090
from repro.nn.workloads import resnet18_spec


@pytest.fixture(scope="module")
def network():
    return resnet18_spec()


class TestCalibration:
    def test_cpu_latency_near_paper(self, network):
        """Paper: 22.3 ms."""
        assert CPU_I9_13900K.latency_ms(network) == pytest.approx(22.3, rel=0.1)

    def test_gpu_latency_near_paper(self, network):
        """Paper: 1.02 ms."""
        assert GPU_RTX_4090.latency_ms(network) == pytest.approx(1.02, rel=0.1)

    def test_cpu_throughput_per_watt(self, network):
        """Paper: 0.25 samples/s/W."""
        assert CPU_I9_13900K.throughput_per_watt(network) == pytest.approx(0.25, rel=0.15)

    def test_gpu_throughput_per_watt(self, network):
        """Paper: 4.29 samples/s/W."""
        assert GPU_RTX_4090.throughput_per_watt(network) == pytest.approx(4.29, rel=0.15)


class TestModelStructure:
    def test_peak_from_table3_specs(self):
        # 24 cores x 3 GHz x 8 lanes x 2 (FMA) = 1152 GFLOPS.
        assert CPU_I9_13900K.peak_gflops == pytest.approx(1152.0)
        # 16384 CUDA cores x 2.235 GHz x 2 = 73.2 TFLOPS.
        assert GPU_RTX_4090.peak_gflops == pytest.approx(73236.48)

    def test_efficiency_derates_peak(self):
        assert CPU_I9_13900K.effective_gflops < CPU_I9_13900K.peak_gflops

    def test_latency_scales_with_work(self, network):
        from repro.nn.workloads import small_cnn_spec

        small = small_cnn_spec()
        assert CPU_I9_13900K.latency_ms(small) < CPU_I9_13900K.latency_ms(network)
