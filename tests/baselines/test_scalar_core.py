"""Scalar software-conv baseline vs the paper's Table 4 column."""

import pytest

from repro.baselines.scalar_core import ScalarConvBaseline
from repro.core.node import table4_workload


@pytest.fixture(scope="module")
def baseline():
    return ScalarConvBaseline()


class TestMeasurement:
    def test_inner_loop_measured_on_pipeline(self, baseline):
        cpm = baseline.measure_cycles_per_mac()
        assert 5 < cpm < 30

    def test_measurement_cached(self, baseline):
        assert baseline.measure_cycles_per_mac() == baseline.measure_cycles_per_mac()


class TestTable4Column:
    def test_cycles_near_paper(self, baseline):
        """Paper: 1.24e7 cycles."""
        result = baseline.run(table4_workload())
        assert result.total_cycles == pytest.approx(1.24e7, rel=0.1)

    def test_energy_near_paper(self, baseline):
        """Paper: 1.03e-4 J."""
        result = baseline.run(table4_workload())
        assert result.energy_j == pytest.approx(1.03e-4, rel=0.1)

    def test_macs_counted(self, baseline):
        result = baseline.run(table4_workload())
        assert result.total_macs == 49 * 5 * 9 * 256

    def test_orders_of_magnitude_slower_than_maicc(self, baseline):
        """Paper: scalar 1.24e7 vs MAICC node 5.9e4 cycles (~200x)."""
        result = baseline.run(table4_workload())
        assert result.total_cycles > 100 * 59141
