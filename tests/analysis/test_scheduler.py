"""The static scheduler's cycle predictions against the pipeline simulator.

The acceptance bar of the analysis subsystem: for branch-free programs the
symbolic timing model must reproduce ``riscv.pipeline`` cycle counts
*exactly* — both for the as-emitted kernel and for its statically
scheduled reorder — so predicted stall savings can be trusted without
running the simulator.
"""

import numpy as np
import pytest

from repro.analysis import estimate_cycles, schedule_kernel, verify_program
from repro.core.node import MAICCNode
from repro.errors import SchedulingError
from repro.nn.workloads import ConvLayerSpec
from repro.riscv.assembler import assemble
from repro.riscv.core import Core, CoreConfig
from repro.riscv.pipeline import PipelineConfig


def small_spec(**kw):
    defaults = dict(h=4, w=4, c=32, m=2, r=3, s=3, stride=1, padding=0)
    defaults.update(kw)
    return ConvLayerSpec(0, "sched", **defaults)


def make_node(seed=0, **kw):
    spec = small_spec(**kw)
    rng = np.random.default_rng(seed)
    weights = rng.integers(-128, 128, size=(spec.m, spec.c, spec.r, spec.s))
    bias = rng.integers(-500, 500, size=spec.m)
    ifmap = rng.integers(-128, 128, size=(spec.c, spec.h, spec.w))
    return MAICCNode(spec, weights, bias), ifmap


def simulate(program, **cfg) -> int:
    core = Core(
        CoreConfig(pipeline=PipelineConfig(**cfg)),
        remote_handler=lambda is_store, addr, size, value: 0,
    )
    return core.run(program).cycles


class TestExactPrediction:
    def test_alu_program(self):
        program = assemble(
            "\n".join(f"li x{5 + (i % 8)}, {i}" for i in range(32)) + "\nhalt"
        )
        est = estimate_cycles(program)
        assert est.exact
        assert est.cycles == simulate(program)

    def test_muldiv_structural_hazard(self):
        program = assemble(
            "li a1, 99\nli a2, 7\ndiv a0, a1, a2\ndiv a3, a1, a2\n"
            "mul a4, a1, a2\nadd a5, a0, a3\nhalt"
        )
        est = estimate_cycles(program)
        assert est.cycles == simulate(program)
        assert est.structural_stall_cycles > 0

    def test_cmem_queue_and_slices(self):
        body = []
        for i in range(12):
            body.append(f"mac.c a{i % 8}, {1 + (i % 7)}, 0, 8, 8")
        body.append("halt")
        program = assemble("\n".join(body))
        for queue in (0, 2, 4):
            est = estimate_cycles(program, PipelineConfig(cmem_queue_size=queue))
            assert est.cycles == simulate(program, cmem_queue_size=queue)

    def test_remote_row_latency(self):
        program = assemble(
            "li t0, 0x40000000\nloadrow.rc 0, 0, t0\nstorerow.rc 0, 0, t0\nhalt"
        )
        est = estimate_cycles(program)
        assert est.cycles == simulate(program)

    def test_writeback_port_pressure(self):
        program = assemble(
            "\n".join(f"mul x{5 + i}, x{5 + i}, x{5 + i}" for i in range(8))
            + "\nhalt"
        )
        for ports in (1, 2):
            est = estimate_cycles(program, PipelineConfig(writeback_ports=ports))
            assert est.cycles == simulate(program, writeback_ports=ports)

    def test_branches_marked_inexact(self):
        program = assemble("li a0, 1\nbeq a0, zero, end\nli a1, 2\nend: halt")
        assert not estimate_cycles(program).exact


class TestConvKernelPrediction:
    """Predicted stall reduction must match riscv.pipeline on a conv kernel."""

    @pytest.mark.parametrize("kw", [dict(), dict(padding=1)], ids=["plain", "padded"])
    def test_prediction_matches_pipeline(self, kw):
        node, ifmap = make_node(**kw)
        program = node.build_program()
        report = schedule_kernel(program)
        assert report.baseline.exact and report.scheduled.exact

        baseline_sim = node.run(ifmap).stats.cycles
        scheduled_sim = node.run(ifmap, static=True).stats.cycles
        assert report.baseline.cycles == baseline_sim
        assert report.scheduled.cycles == scheduled_sim
        assert report.predicted_saving == baseline_sim - scheduled_sim
        assert report.predicted_saving > 0  # scheduling must actually help

    def test_scheduled_kernel_still_lints_clean(self):
        node, _ = make_node()
        report = schedule_kernel(node.build_program())
        assert verify_program(report.program).clean

    def test_raw_stalls_reduced(self):
        node, _ = make_node()
        report = schedule_kernel(node.build_program())
        assert (
            report.scheduled.raw_stall_cycles + report.scheduled.structural_stall_cycles
            < report.baseline.raw_stall_cycles + report.baseline.structural_stall_cycles
        )


class TestSchedulerSafety:
    def test_reorder_introducing_errors_rejected(self, monkeypatch):
        """A buggy reorder that breaks the program must raise."""
        import repro.analysis.scheduler as sched_mod

        node, _ = make_node()
        program = node.build_program()

        def broken_schedule(prog, max_window=400):
            out = [
                sched_mod.Instruction(
                    opcode=i.opcode, rd=i.rd, rs1=i.rs1, rs2=i.rs2,
                    imm=i.imm, target=i.target, cm=dict(i.cm),
                )
                for i in prog
            ]
            macs = [i for i in out if i.opcode == "mac.c"]
            macs[0].cm["slice"] = 42  # corrupt one op
            return out

        monkeypatch.setattr(sched_mod, "static_schedule", broken_schedule)
        with pytest.raises(SchedulingError):
            sched_mod.schedule_kernel(program)
