"""The NOC7xx route checker and its dynamic event-kernel twin.

The load-bearing fixture is the classical 4-flow turn cycle on a 2x2
block: the static checker must report exactly one NOC701 cycle with the
offending links named, and the hold-and-wait replay on the event kernel
must actually stall on the same route set — the checker and the
simulator agree about what a deadlock is.
"""

from repro.analysis import (
    RouteFlow,
    check_routes,
    plan_route_flows,
    replay_routes,
)
from repro.nn.workloads import small_cnn_spec
from repro.sim.accounting import plan_network
from repro.sim.config import SimConfig


def rules_of(report):
    return {d.rule for d in report.diagnostics}


def turn_cycle_flows():
    """Four flows whose first link is the next flow's second link."""
    return [
        RouteFlow("east", (0, 0), (1, 1), path=((0, 0), (1, 0), (1, 1))),
        RouteFlow("south", (1, 0), (0, 1), path=((1, 0), (1, 1), (0, 1))),
        RouteFlow("west", (1, 1), (0, 0), path=((1, 1), (0, 1), (0, 0))),
        RouteFlow("north", (0, 1), (1, 0), path=((0, 1), (0, 0), (1, 0))),
    ]


class TestDeadlockCycle:
    def test_turn_cycle_reports_exactly_one_noc701(self):
        report = check_routes(turn_cycle_flows())
        cycles = report.by_rule("NOC701")
        assert len(cycles) == 1
        assert not report.ok

    def test_cycle_diagnostic_names_all_four_links(self):
        report = check_routes(turn_cycle_flows())
        message = report.by_rule("NOC701")[0].message
        for link in (
            "(0, 0)->(1, 0)", "(1, 0)->(1, 1)",
            "(1, 1)->(0, 1)", "(0, 1)->(0, 0)",
        ):
            assert link in message
        for flow in ("east", "south", "west", "north"):
            assert flow in message

    def test_xy_routes_never_cycle(self):
        # X-Y dimension order forbids Y-then-X turns, so any all-to-all
        # XY route set is cycle-free by construction.
        flows = [
            RouteFlow(f"xy{i}", (i, 1), (7 - i, 6)) for i in range(8)
        ] + [
            RouteFlow(f"yx{i}", (7 - i, 6), (i, 1)) for i in range(8)
        ]
        report = check_routes(flows)
        assert "NOC701" not in rules_of(report)

    def test_breaking_one_flow_breaks_the_cycle(self):
        flows = turn_cycle_flows()[:3]
        report = check_routes(flows)
        assert "NOC701" not in rules_of(report)


class TestReplayAgreement:
    """The event-kernel replay must agree with the static verdict."""

    def test_turn_cycle_stalls_the_event_tier(self):
        replay = replay_routes(turn_cycle_flows())
        assert replay.deadlocked
        assert sorted(replay.stalled) == ["east", "north", "south", "west"]
        assert replay.completed == []

    def test_acyclic_set_drains(self):
        replay = replay_routes(turn_cycle_flows()[:3])
        assert not replay.deadlocked
        assert len(replay.completed) == 3

    def test_xy_flows_drain(self):
        flows = [RouteFlow(f"f{i}", (i, 1), (i, 5)) for i in range(4)]
        replay = replay_routes(flows)
        assert not replay.deadlocked


class TestHotLinks:
    def test_saturated_link_warns_noc702(self):
        flows = [
            RouteFlow("a", (0, 1), (4, 1), rate=0.7),
            RouteFlow("b", (1, 1), (4, 1), rate=0.7),
        ]
        report = check_routes(flows)
        hot = report.by_rule("NOC702")
        assert hot and report.ok  # warning, not error
        assert "a" in hot[0].message and "b" in hot[0].message

    def test_underloaded_link_is_quiet(self):
        flows = [
            RouteFlow("a", (0, 1), (4, 1), rate=0.3),
            RouteFlow("b", (1, 1), (4, 1), rate=0.3),
        ]
        assert "NOC702" not in rules_of(check_routes(flows))


class TestMalformedRoutes:
    def test_off_mesh_endpoint(self):
        report = check_routes([RouteFlow("off", (0, 0), (99, 0))])
        assert "NOC703" in rules_of(report)

    def test_self_loop(self):
        report = check_routes([RouteFlow("loop", (3, 3), (3, 3))])
        assert "NOC703" in rules_of(report)

    def test_discontinuous_path(self):
        flow = RouteFlow("jump", (0, 0), (2, 0), path=((0, 0), (2, 0)))
        assert "NOC703" in rules_of(check_routes([flow]))

    def test_link_reacquisition_is_self_deadlock(self):
        flow = RouteFlow(
            "pingpong", (0, 0), (1, 0),
            path=((0, 0), (1, 0), (0, 0), (1, 0)),
        )
        report = check_routes([flow])
        assert "NOC703" in rules_of(report)
        assert "re-acquires" in report.by_rule("NOC703")[0].message


class TestPlanRoutes:
    def test_small_cnn_routes_lint_clean_and_drain(self):
        config = SimConfig()
        plan = plan_network(small_cnn_spec(), "heuristic", config)
        flows = plan_route_flows(plan)
        assert flows
        report = check_routes(flows)
        assert report.clean, report.render()
        assert not replay_routes(flows).deadlocked

    def test_region_offset_shifts_routes(self):
        config = SimConfig()
        plan = plan_network(small_cnn_spec(), "heuristic", config)
        base = {f.src for f in plan_route_flows(plan)}
        shifted = {f.src for f in plan_route_flows(plan, start_offset=50)}
        assert base != shifted
