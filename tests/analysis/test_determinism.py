"""The DET8xx determinism checker: batch commutativity and replay diffs."""

from repro.analysis import (
    EventAccess,
    accesses_from_queue,
    check_batches,
    check_replay,
)
from repro.utils.events import EventQueue


def rules_of(report):
    return {d.rule for d in report.diagnostics}


class TestBatchCommutativity:
    def test_write_write_conflict_is_det801(self):
        report = check_batches([
            EventAccess(0.0, "a", writes=("queue/x",)),
            EventAccess(0.0, "b", writes=("queue/x",)),
        ])
        assert "DET801" in rules_of(report)
        assert not report.ok

    def test_cross_actor_read_write_is_det802(self):
        report = check_batches([
            EventAccess(1.0, "writer", writes=("bank0",)),
            EventAccess(1.0, "reader", reads=("bank0",)),
        ])
        assert "DET802" in rules_of(report)
        assert report.ok  # warning, not error

    def test_same_actor_pairs_are_commutative(self):
        # One actor's events dispatch in sequence order — no conflict.
        report = check_batches([
            EventAccess(0.0, "a", writes=("q",)),
            EventAccess(0.0, "a", writes=("q",)),
            EventAccess(0.0, "a", reads=("q",)),
        ])
        assert report.clean, report.render()

    def test_different_timestamps_never_conflict(self):
        report = check_batches([
            EventAccess(0.0, "a", writes=("q",)),
            EventAccess(1.0, "b", writes=("q",)),
        ])
        assert report.clean

    def test_disjoint_resources_are_commutative(self):
        report = check_batches([
            EventAccess(0.0, "a", writes=("qa",)),
            EventAccess(0.0, "b", writes=("qb",)),
        ])
        assert report.clean

    def test_diagnostic_names_actors_and_resource(self):
        report = check_batches([
            EventAccess(2.5, "cam", writes=("server0",)),
            EventAccess(2.5, "lidar", writes=("server0",)),
        ])
        message = report.by_rule("DET801")[0].message
        assert "cam" in message and "lidar" in message
        assert "server0" in message

    def test_deterministic_report_order(self):
        accesses = [
            EventAccess(0.0, "b", writes=("r2",)),
            EventAccess(0.0, "a", writes=("r2",)),
            EventAccess(0.0, "d", writes=("r1",)),
            EventAccess(0.0, "c", writes=("r1",)),
        ]
        first = check_batches(accesses).render()
        second = check_batches(accesses).render()
        assert first == second


class TestQueueLifting:
    def test_annotated_events_are_lifted(self):
        queue = EventQueue()
        queue.schedule(0.0, lambda: None, tag="arrive",
                       actor="t1", writes=("q1",))
        queue.schedule(0.0, lambda: None, tag="arrive",
                       actor="t2", writes=("q1",))
        accesses = accesses_from_queue(queue)
        assert len(accesses) == 2
        assert "DET801" in rules_of(check_batches(accesses))

    def test_unannotated_events_are_skipped(self):
        queue = EventQueue()
        queue.schedule(0.0, lambda: None, tag="legacy")
        queue.schedule(0.0, lambda: None, tag="actor-only", actor="a")
        assert accesses_from_queue(queue) == []

    def test_lifting_does_not_drain_the_queue(self):
        queue = EventQueue()
        fired = []
        queue.schedule(0.0, lambda: fired.append(1), tag="x",
                       actor="a", writes=("r",))
        accesses_from_queue(queue)
        queue.run()
        assert fired == [1]


class TestReplay:
    def test_deterministic_run_is_clean(self):
        report = check_replay(lambda: "signature", runs=3)
        assert report.clean

    def test_divergent_run_is_det803(self):
        counter = {"n": 0}

        def run():
            counter["n"] += 1
            return f"trace-{counter['n']}"

        report = check_replay(run, label="drift")
        assert "DET803" in rules_of(report)
        assert not report.ok
        assert report.by_rule("DET803")[0].opcode == "drift"

    def test_divergence_message_localizes_difference(self):
        signatures = iter(["aXb", "aYb"])
        report = check_replay(lambda: next(signatures))
        assert "offset 1" in report.by_rule("DET803")[0].message
