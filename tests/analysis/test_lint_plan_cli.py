"""Exit-code and determinism contract of scripts/lint_plan.py.

Pinned contract: 0 clean, 1 error diagnostics (or ``--strict`` warnings,
or a deadlocked ``--replay``), 2 usage/build failure.  JSON output must
be byte-identical across runs — the CI ``analysis-smoke`` job diffs it.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[2]


def lint_plan(*args):
    return subprocess.run(
        [sys.executable, str(REPO / "scripts" / "lint_plan.py"), *args],
        capture_output=True,
        text=True,
        cwd=REPO,
        env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"},
    )


class TestExitCodes:
    def test_clean_network_exits_0(self):
        proc = lint_plan("--network", "small-cnn")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "0 error(s)" in proc.stdout

    @pytest.mark.parametrize("kind,rule", [
        ("cmem", "PLAN601"),
        ("noc", "NOC701"),
        ("det", "DET801"),
    ])
    def test_broken_artifacts_exit_1(self, kind, rule):
        proc = lint_plan("--network", "small-cnn", "--broken", kind)
        assert proc.returncode == 1, proc.stdout + proc.stderr
        assert rule in proc.stdout

    def test_no_target_is_usage_error_2(self):
        proc = lint_plan()
        assert proc.returncode == 2

    def test_unknown_strategy_is_usage_error_2(self):
        proc = lint_plan("--network", "small-cnn", "--strategy", "nope")
        assert proc.returncode == 2
        assert "lint_plan:" in proc.stderr

    def test_network_and_tenants_are_exclusive(self):
        proc = lint_plan("--network", "small-cnn", "--tenants", "smoke")
        assert proc.returncode == 2


class TestJsonMode:
    def test_json_is_byte_identical_across_runs(self):
        first = lint_plan("--network", "small-cnn", "--json")
        second = lint_plan("--network", "small-cnn", "--json")
        assert first.returncode == second.returncode == 0
        assert first.stdout == second.stdout

    def test_json_reports_broken_plan(self):
        proc = lint_plan(
            "--network", "small-cnn", "--broken", "cmem", "--json"
        )
        assert proc.returncode == 1
        payload = json.loads(proc.stdout)
        assert payload["clean"] is False
        assert any(d["rule"] == "PLAN601" for d in payload["diagnostics"])
        assert payload["broken"] == "cmem"

    def test_json_lists_residents(self):
        proc = lint_plan("--tenants", "smoke", "--json")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        payload = json.loads(proc.stdout)
        assert [r["name"] for r in payload["residents"]] == ["alpha", "beta"]


class TestReplay:
    def test_replay_clean_plan_drains(self):
        proc = lint_plan("--network", "small-cnn", "--replay", "--json")
        assert proc.returncode == 0
        replay = json.loads(proc.stdout)["replay"]
        assert replay["deadlocked"] is False
        assert replay["stalled"] == []

    def test_replay_of_injected_cycle_deadlocks(self):
        proc = lint_plan(
            "--network", "small-cnn", "--broken", "noc", "--replay", "--json"
        )
        assert proc.returncode == 1
        replay = json.loads(proc.stdout)["replay"]
        assert replay["deadlocked"] is True
        assert len(replay["stalled"]) == 4


class TestFamilies:
    def test_plan_family_alone_skips_noc_rules(self):
        proc = lint_plan(
            "--network", "small-cnn", "--broken", "noc",
            "--families", "plan", "--json",
        )
        # The injected cycle lives in the noc family; restricting to
        # plan must not see it.
        assert proc.returncode == 0
        payload = json.loads(proc.stdout)
        assert payload["families"] == ["plan"]
