"""Basic blocks, def-use, liveness, and defined-register dataflow."""

from repro.analysis.cfg import (
    build_cfg,
    compute_defined,
    compute_liveness,
    instr_reads,
    instr_write,
)
from repro.riscv.assembler import assemble
from repro.riscv.registers import reg_index


class TestBasicBlocks:
    def test_straight_line_is_one_block(self):
        cfg = build_cfg(assemble("li a0, 1\nli a1, 2\nadd a2, a0, a1\nhalt"))
        assert len(cfg.blocks) == 1
        assert cfg.blocks[0].size == 4
        assert cfg.blocks[0].succs == []

    def test_branch_splits_blocks(self):
        cfg = build_cfg(
            assemble(
                "li a0, 3\n"
                "loop: addi a0, a0, -1\n"
                "bne a0, zero, loop\n"
                "halt"
            )
        )
        # entry | loop-body+branch | halt
        assert len(cfg.blocks) == 3
        loop = cfg.blocks[1]
        assert sorted(loop.succs) == [1, 2]  # back edge + fallthrough

    def test_jump_has_single_successor(self):
        cfg = build_cfg(assemble("j end\nli a0, 1\nend: halt"))
        assert cfg.blocks[0].succs == [2]

    def test_halt_terminates_block(self):
        cfg = build_cfg(assemble("halt\nli a0, 1\nhalt"))
        assert cfg.blocks[0].succs == []

    def test_reachability(self):
        cfg = build_cfg(assemble("j end\nli a0, 1\nend: halt"))
        assert cfg.reachable() == {0, 2}

    def test_jalr_marks_indirect(self):
        cfg = build_cfg(assemble("li a0, 4\njalr ra, a0, 0\nhalt"))
        assert cfg.has_indirect


class TestDefUse:
    def test_instr_reads_and_write(self):
        (instr,) = assemble("add a2, a0, a1")
        assert instr_reads(instr) == [reg_index("a0"), reg_index("a1")]
        assert instr_write(instr) == reg_index("a2")

    def test_x0_excluded(self):
        (instr,) = assemble("add zero, zero, zero")
        assert instr_reads(instr) == []
        assert instr_write(instr) is None

    def test_store_reads_both(self):
        (instr,) = assemble("sw a1, 0(a2)")
        assert set(instr_reads(instr)) == {reg_index("a1"), reg_index("a2")}
        assert instr_write(instr) is None


class TestLiveness:
    def test_loop_carried_register_is_live(self):
        cfg = build_cfg(
            assemble(
                "li a0, 3\n"
                "loop: addi a0, a0, -1\n"
                "bne a0, zero, loop\n"
                "halt"
            )
        )
        live_in, live_out = compute_liveness(cfg)
        a0 = reg_index("a0")
        assert a0 in live_out[0]  # entry block feeds the loop
        assert a0 in live_in[1]

    def test_dead_at_exit(self):
        cfg = build_cfg(assemble("li a0, 1\nhalt"))
        _, live_out = compute_liveness(cfg)
        assert live_out[0] == set()


class TestDefined:
    def test_entry_assumptions(self):
        cfg = build_cfg(assemble("add a0, sp, sp\nhalt"))
        sp = reg_index("sp")
        assert sp not in compute_defined(cfg)[0]
        assert sp in compute_defined(cfg, frozenset({sp}))[0]

    def test_must_reach_is_path_sensitive(self):
        # a1 is defined on only one path into the join block.
        cfg = build_cfg(
            assemble(
                "li a0, 1\n"
                "beq a0, zero, skip\n"
                "li a1, 5\n"
                "skip: add a2, a1, a0\n"
                "halt"
            )
        )
        defined_in = compute_defined(cfg)
        join = cfg.block_of[3]
        assert reg_index("a1") not in defined_in[join]
        assert reg_index("a0") in defined_in[join]
