"""Exit-code contract of scripts/lint_kernel.py.

Pinned contract (CI and editor integrations depend on it): 0 clean,
1 error diagnostics (or, with ``--strict``, warnings), 2 usage/assembly
failure, 3 failed ``--confirm`` cross-check.  JSON mode must honor the
same codes.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[2]

CLEAN_KERNEL = "li a0, 1\nli a1, 2\nadd a2, a0, a1\nsw a2, 0(zero)\nhalt\n"
BROKEN_KERNEL = "mac.c a0, 9, 0, 8, 8\nhalt\n"       # CMEM301 error
WARNING_KERNEL = "j end\nli a0, 1\nend: halt\n"      # PROG104 warning


def lint_kernel(*args):
    return subprocess.run(
        [sys.executable, str(REPO / "scripts" / "lint_kernel.py"), *args],
        capture_output=True,
        text=True,
        cwd=REPO,
        env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"},
    )


@pytest.fixture
def kernel_file(tmp_path):
    def write(text, name="kernel.s"):
        path = tmp_path / name
        path.write_text(text)
        return str(path)

    return write


class TestExitCodes:
    def test_clean_kernel_exits_0(self, kernel_file):
        proc = lint_kernel(kernel_file(CLEAN_KERNEL))
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_error_diagnostics_exit_1(self, kernel_file):
        proc = lint_kernel(kernel_file(BROKEN_KERNEL))
        assert proc.returncode == 1
        assert "CMEM301" in proc.stdout

    def test_warning_is_clean_without_strict(self, kernel_file):
        proc = lint_kernel(kernel_file(WARNING_KERNEL))
        assert proc.returncode == 0

    def test_strict_promotes_warning_to_exit_1(self, kernel_file):
        proc = lint_kernel(kernel_file(WARNING_KERNEL), "--strict")
        assert proc.returncode == 1

    def test_no_inputs_is_usage_error_2(self):
        proc = lint_kernel()
        assert proc.returncode == 2

    def test_missing_file_is_usage_error_2(self):
        proc = lint_kernel("/nonexistent/kernel.s")
        assert proc.returncode == 2
        assert "lint_kernel:" in proc.stderr

    def test_unparseable_assembly_is_usage_error_2(self, kernel_file):
        proc = lint_kernel(kernel_file("not an opcode at all\n"))
        assert proc.returncode == 2


class TestJsonMode:
    def test_json_clean_exits_0(self, kernel_file):
        proc = lint_kernel(kernel_file(CLEAN_KERNEL), "--json")
        assert proc.returncode == 0
        payload = json.loads(proc.stdout)
        assert payload["clean"] is True

    def test_json_error_exits_1_with_diagnostics(self, kernel_file):
        proc = lint_kernel(kernel_file(BROKEN_KERNEL), "--json")
        assert proc.returncode == 1
        payload = json.loads(proc.stdout)
        assert payload["errors"] >= 1
        assert any(d["rule"] == "CMEM301" for d in payload["diagnostics"])
