"""The static verifier: seeded-bug negatives and clean-kernel positives."""

import numpy as np
import pytest

from repro.analysis import (
    AnalysisConfig,
    RULES,
    Severity,
    lint_text,
    verify_program,
)
from repro.core.conv_kernel import ConvKernelGenerator
from repro.core.datalayout import plan_node_layout
from repro.nn.workloads import ConvLayerSpec
from repro.riscv.assembler import assemble
from repro.riscv.isa import Instruction


def rules_of(report):
    return {d.rule for d in report.diagnostics}


def small_kernel(**kw):
    defaults = dict(h=4, w=4, c=32, m=2, r=3, s=3, stride=1, padding=0)
    defaults.update(kw)
    spec = ConvLayerSpec(0, "lint", **defaults)
    return ConvKernelGenerator(plan_node_layout(spec, spec.m))


class TestProgramStructure:
    def test_unknown_opcode_flagged(self):
        report = verify_program([Instruction(opcode="bogus"), Instruction(opcode="halt")])
        assert "PROG101" in rules_of(report)
        assert not report.ok

    def test_branch_target_out_of_range(self):
        program = assemble("beq a0, a1, out\nout: halt")
        program[0].target = 99  # seed a broken fixup
        report = verify_program(program)
        assert "PROG102" in rules_of(report)

    def test_fall_off_end(self):
        report = lint_text("li a0, 1\nli a1, 2")
        assert "PROG103" in rules_of(report)

    def test_unreachable_code_warned(self):
        report = lint_text("j end\nli a0, 1\nend: halt")
        assert "PROG104" in rules_of(report)
        assert report.ok  # warning, not error

    def test_clean_straight_line(self):
        report = lint_text("li a0, 1\nli a1, 2\nadd a2, a0, a1\nsw a2, 0(zero)\nhalt")
        assert report.clean


class TestCMemRules:
    def test_slice_out_of_range(self):
        report = lint_text("mac.c a0, 9, 0, 8, 8\nhalt")
        assert "CMEM301" in rules_of(report)

    def test_mac_on_slice0(self):
        report = lint_text("mac.c a0, 0, 0, 8, 8\nhalt")
        assert "CMEM302" in rules_of(report)

    def test_row_out_of_range(self):
        # rows [60, 68) exceed the 64-row slice
        report = lint_text("mac.c a0, 1, 0, 60, 8\nhalt")
        assert "CMEM303" in rules_of(report)

    def test_width_over_32_rejected(self):
        report = lint_text("move.c 0, 0, 3, 0, 40\nhalt")
        assert "CMEM304" in rules_of(report)

    def test_mac_operand_overlap(self):
        report = lint_text("mac.c a0, 1, 4, 8, 8\nhalt")
        assert "CMEM305" in rules_of(report)

    def test_move_same_slice_overlap(self):
        report = lint_text("move.c 2, 0, 2, 4, 8\nhalt")
        assert "CMEM306" in rules_of(report)

    def test_move_same_slice_disjoint_ok(self):
        report = lint_text("move.c 2, 0, 2, 8, 8\nhalt")
        assert "CMEM306" not in rules_of(report)

    def test_setrow_value_warned(self):
        report = lint_text("setrow.c 1, 5, 7\nhalt")
        assert "CMEM307" in rules_of(report)

    def test_shiftrow_word_bound(self):
        report = lint_text("shiftrow.c 1, 5, 8\nhalt")
        assert "CMEM308" in rules_of(report)
        assert "CMEM308" not in rules_of(lint_text("shiftrow.c 1, 5, 7\nhalt"))

    def test_csr_mask_truncation_warned(self):
        report = lint_text("setcsr.c 1, 0x1ff\nhalt")
        assert "CMEM309" in rules_of(report)

    def test_loadrow_row_bound(self):
        report = lint_text("li t0, 0x40000000\nloadrow.rc 0, 64, t0\nhalt")
        assert "CMEM303" in rules_of(report)


class TestHazardRules:
    def test_long_raw_stall_advised(self):
        report = lint_text(
            "li a1, 99\nli a2, 7\ndiv a0, a1, a2\nadd a3, a0, a0\nhalt",
            AnalysisConfig(stall_threshold=4),
        )
        advisories = report.by_rule("HAZ201")
        assert advisories and advisories[0].severity is Severity.INFO

    def test_waw_stall_advised(self):
        report = lint_text(
            "li a1, 99\nli a2, 7\ndiv a0, a1, a2\nli a0, 1\nhalt",
            AnalysisConfig(stall_threshold=4),
        )
        assert report.by_rule("HAZ202")

    def test_dead_write_warned(self):
        report = lint_text("li a0, 1\nli a0, 2\nsw a0, 0(zero)\nhalt")
        assert "HAZ203" in rules_of(report)

    def test_use_before_def_warned(self):
        report = lint_text("add a2, a0, a1\nhalt")
        assert "HAZ204" in rules_of(report)

    def test_assume_defined_suppresses(self):
        report = lint_text(
            "add a2, a0, a1\nsw a2, 0(zero)\nhalt",
            AnalysisConfig(assume_defined=frozenset({10, 11})),
        )
        assert "HAZ204" not in rules_of(report)

    def test_loop_carried_def_not_flagged(self):
        report = lint_text(
            "li a0, 3\nloop: addi a0, a0, -1\nbne a0, zero, loop\nhalt"
        )
        assert "HAZ204" not in rules_of(report)


class TestLockProtocol:
    def test_remote_row_before_acquire_warned(self):
        report = lint_text(
            "li t0, 0x40000000\n"
            "loadrow.rc 0, 0, t0\n"            # unprotected transfer
            "li t1, 0x100\n"
            "spin: amoswap.w t2, t1, (t1)\n"   # p/nextp acquire
            "bne t2, zero, spin\n"
            "loadrow.rc 0, 1, t0\n"
            "sw zero, 0x100(zero)\n"           # release
            "halt"
        )
        assert "LOCK401" in rules_of(report)
        flagged = [d.index for d in report.by_rule("LOCK401")]
        assert flagged == [1]

    def test_unreleased_lock_warned(self):
        report = lint_text(
            "li t1, 0x100\n"
            "amoswap.w t2, t1, (t1)\n"
            "add t3, t2, t2\n"
            "sw t3, 0(zero)\n"
            "amoswap.w t4, t1, (t1)\n"
            "halt"
        )
        assert "LOCK402" in rules_of(report)

    def test_streaming_kernel_without_locks_unflagged(self):
        report = lint_text("li t0, 0x40000000\nloadrow.rc 0, 0, t0\nhalt")
        assert "LOCK401" not in rules_of(report)
        assert "LOCK402" not in rules_of(report)


class TestMemoryRules:
    def test_unmapped_static_address(self):
        report = lint_text("lw a0, 0x2000(zero)\nhalt")
        assert "MEM501" in rules_of(report)

    def test_misaligned_static_address(self):
        report = lint_text("lw a0, 2(zero)\nhalt")
        assert "MEM502" in rules_of(report)

    def test_dynamic_address_not_checked(self):
        report = lint_text("li a1, 0x2000\nlw a0, 0(a1)\nhalt")
        assert "MEM501" not in rules_of(report)


class TestGeneratedKernelsLintClean:
    """Every ConvKernelGenerator output must verify with no errors/warnings."""

    @pytest.mark.parametrize(
        "kw",
        [
            dict(),
            dict(padding=1),
            dict(h=6, w=6, stride=2, padding=1),
            dict(r=1, s=1),
        ],
        ids=["plain", "padded", "strided", "1x1"],
    )
    def test_kernel_lints_clean(self, kw):
        program = small_kernel(**kw).instructions()
        report = verify_program(program)
        assert report.clean, report.render()

    def test_forwarding_kernel_lints_clean(self):
        generator = small_kernel()
        generator.include_forward = True
        generator.forward_base = 0x4000_4000
        report = verify_program(generator.instructions())
        assert report.clean, report.render()

    def test_seeded_capacity_bug_is_caught(self):
        """Corrupting one MAC row operand must trip the verifier."""
        program = small_kernel().instructions()
        macs = [i for i, ins in enumerate(program) if ins.opcode == "mac.c"]
        program[macs[0]].cm["row_b"] = 63  # rows [63, 71) overflow the slice
        report = verify_program(program)
        assert not report.ok
        assert "CMEM303" in rules_of(report)

    def test_seeded_slice_bug_is_caught(self):
        program = small_kernel().instructions()
        moves = [i for i, ins in enumerate(program) if ins.opcode == "move.c"]
        program[moves[0]].cm["dst_slice"] = 8
        report = verify_program(program)
        assert "CMEM301" in rules_of(report)


class TestReportRendering:
    def test_json_roundtrip(self):
        import json

        report = lint_text("mac.c a0, 0, 0, 8, 8\nhalt")
        payload = json.loads(report.to_json())
        assert payload["errors"] >= 1
        assert any(d["rule"] == "CMEM302" for d in payload["diagnostics"])

    def test_render_mentions_rule_and_line(self):
        report = lint_text("mac.c a0, 0, 0, 8, 8\nhalt")
        text = report.render()
        assert "CMEM302" in text and "line 1" in text

    def test_rule_catalog_complete(self):
        report = lint_text("mac.c a0, 9, 99, 99, 99\nhalt")
        for diag in report.diagnostics:
            assert diag.rule in RULES
