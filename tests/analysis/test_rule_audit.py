"""Dead-rule audit: every cataloged rule must be emittable by a fixture.

A rule in :mod:`repro.analysis.rules` that no fixture can trip is either
dead code or (worse) a check that silently never fires.  This module
keeps one minimal triggering fixture per rule ID and fails when a rule
is added to the catalog without one — extend ``FIXTURES`` alongside the
catalog.
"""

import pytest

from repro.analysis import (
    AnalysisConfig,
    EventAccess,
    ResidentPlan,
    RouteFlow,
    RULES,
    check_batches,
    check_replay,
    check_routes,
    lint_text,
    verify_plan,
    verify_program,
)
from repro.mapping.allocation import AllocationResult
from repro.mapping.segmentation import Segment, SegmentPlan
from repro.nn.workloads import ConvLayerSpec, NetworkSpec
from repro.riscv.assembler import assemble
from repro.riscv.isa import Instruction
from repro.sim.config import SimConfig


def _bad_branch():
    program = assemble("beq a0, a1, out\nout: halt")
    program[0].target = 99
    return verify_program(program)


def _manual_plan(spec, nodes):
    segment = Segment(
        layers=[spec],
        allocation=AllocationResult(
            nodes={spec.index: nodes},
            times={spec.index: 1.0},
            bottleneck_time=1.0,
        ),
    )
    network = NetworkSpec(name="manual", layers=(spec,))
    return SegmentPlan(strategy="manual", network=network, segments=[segment])


def _small_resident(name, start):
    spec = ConvLayerSpec(1, f"{name}0", h=4, w=4, c=32, m=2)
    return ResidentPlan(name, _manual_plan(spec, nodes=2), region_start=start)


def _plan601():
    spec = ConvLayerSpec(1, "starved", h=4, w=4, c=256, m=64)
    return verify_plan(_manual_plan(spec, nodes=0))


def _plan602():
    spec = ConvLayerSpec(1, "huge", h=4, w=4, c=32, m=2)
    return verify_plan(_manual_plan(spec, nodes=4), SimConfig(array_size=2))


def _plan603():
    spec = ConvLayerSpec(1, "wide", h=4, w=4, c=256, m=4, n_bits=64)
    return verify_plan(_manual_plan(spec, nodes=4))


def _plan604():
    spec = ConvLayerSpec(1, "fat", h=8, w=8, c=256, m=512)
    return verify_plan(_manual_plan(spec, nodes=1))


def _plan605():
    residents = [_small_resident(f"t{i}", 8 * i) for i in range(7)]
    return verify_plan(co_resident=residents)


def _plan606():
    residents = [_small_resident("a", 0), _small_resident("b", 1)]
    return verify_plan(co_resident=residents)


def _noc701():
    return check_routes([
        RouteFlow("east", (0, 0), (1, 1), path=((0, 0), (1, 0), (1, 1))),
        RouteFlow("south", (1, 0), (0, 1), path=((1, 0), (1, 1), (0, 1))),
        RouteFlow("west", (1, 1), (0, 0), path=((1, 1), (0, 1), (0, 0))),
        RouteFlow("north", (0, 1), (1, 0), path=((0, 1), (0, 0), (1, 0))),
    ])


def _noc702():
    return check_routes([
        RouteFlow("a", (0, 1), (4, 1), rate=0.7),
        RouteFlow("b", (1, 1), (4, 1), rate=0.7),
    ])


def _det801():
    return check_batches([
        EventAccess(0.0, "a", writes=("q",)),
        EventAccess(0.0, "b", writes=("q",)),
    ])


def _det802():
    return check_batches([
        EventAccess(0.0, "a", writes=("q",)),
        EventAccess(0.0, "b", reads=("q",)),
    ])


def _det803():
    signatures = iter(["one", "two"])
    return check_replay(lambda: next(signatures))


#: rule ID -> zero-arg callable returning a report that emits the rule.
FIXTURES = {
    "PROG101": lambda: verify_program(
        [Instruction(opcode="bogus"), Instruction(opcode="halt")]
    ),
    "PROG102": _bad_branch,
    "PROG103": lambda: lint_text("li a0, 1\nli a1, 2"),
    "PROG104": lambda: lint_text("j end\nli a0, 1\nend: halt"),
    "HAZ201": lambda: lint_text(
        "li a1, 99\nli a2, 7\ndiv a0, a1, a2\nadd a3, a0, a0\nhalt",
        AnalysisConfig(stall_threshold=4),
    ),
    "HAZ202": lambda: lint_text(
        "li a1, 99\nli a2, 7\ndiv a0, a1, a2\nli a0, 1\nhalt",
        AnalysisConfig(stall_threshold=4),
    ),
    "HAZ203": lambda: lint_text("li a0, 1\nli a0, 2\nsw a0, 0(zero)\nhalt"),
    "HAZ204": lambda: lint_text("add a2, a0, a1\nhalt"),
    "CMEM301": lambda: lint_text("mac.c a0, 9, 0, 8, 8\nhalt"),
    "CMEM302": lambda: lint_text("mac.c a0, 0, 0, 8, 8\nhalt"),
    "CMEM303": lambda: lint_text("mac.c a0, 1, 0, 60, 8\nhalt"),
    "CMEM304": lambda: lint_text("move.c 0, 0, 3, 0, 40\nhalt"),
    "CMEM305": lambda: lint_text("mac.c a0, 1, 4, 8, 8\nhalt"),
    "CMEM306": lambda: lint_text("move.c 2, 0, 2, 4, 8\nhalt"),
    "CMEM307": lambda: lint_text("setrow.c 1, 5, 7\nhalt"),
    "CMEM308": lambda: lint_text("shiftrow.c 1, 5, 8\nhalt"),
    "CMEM309": lambda: lint_text("setcsr.c 1, 0x1ff\nhalt"),
    "LOCK401": lambda: lint_text(
        "li t0, 0x40000000\n"
        "loadrow.rc 0, 0, t0\n"
        "li t1, 0x100\n"
        "spin: amoswap.w t2, t1, (t1)\n"
        "bne t2, zero, spin\n"
        "loadrow.rc 0, 1, t0\n"
        "sw zero, 0x100(zero)\n"
        "halt"
    ),
    "LOCK402": lambda: lint_text(
        "li t1, 0x100\n"
        "amoswap.w t2, t1, (t1)\n"
        "add t3, t2, t2\n"
        "sw t3, 0(zero)\n"
        "amoswap.w t4, t1, (t1)\n"
        "halt"
    ),
    "MEM501": lambda: lint_text("lw a0, 0x2000(zero)\nhalt"),
    "MEM502": lambda: lint_text("lw a0, 2(zero)\nhalt"),
    "PLAN601": _plan601,
    "PLAN602": _plan602,
    "PLAN603": _plan603,
    "PLAN604": _plan604,
    "PLAN605": _plan605,
    "PLAN606": _plan606,
    "NOC701": _noc701,
    "NOC702": _noc702,
    "NOC703": lambda: check_routes([RouteFlow("off", (0, 0), (99, 0))]),
    "DET801": _det801,
    "DET802": _det802,
    "DET803": _det803,
}


def test_every_rule_has_a_fixture():
    missing = sorted(set(RULES) - set(FIXTURES))
    assert not missing, f"dead rules (no triggering fixture): {missing}"
    stale = sorted(set(FIXTURES) - set(RULES))
    assert not stale, f"fixtures for rules not in the catalog: {stale}"


@pytest.mark.parametrize("rule_id", sorted(RULES))
def test_rule_is_emitted_by_its_fixture(rule_id):
    report = FIXTURES[rule_id]()
    fired = {d.rule for d in report.diagnostics}
    assert rule_id in fired, (
        f"{rule_id} fixture emitted {sorted(fired)} instead"
    )


@pytest.mark.parametrize("rule_id", sorted(RULES))
def test_emitted_severity_matches_catalog(rule_id):
    report = FIXTURES[rule_id]()
    for diag in report.diagnostics:
        if diag.rule == rule_id:
            assert diag.severity is RULES[rule_id].severity
