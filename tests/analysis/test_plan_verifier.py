"""The PLAN6xx plan verifier: clean shipped plans, seeded-broken negatives."""

import pytest

from repro.analysis import ResidentPlan, verify_plan
from repro.mapping.allocation import AllocationResult
from repro.mapping.segmentation import Segment, SegmentPlan
from repro.nn.workloads import ConvLayerSpec, NetworkSpec, resnet18_spec, small_cnn_spec
from repro.sim.accounting import plan_network
from repro.sim.config import SimConfig


def rules_of(report):
    return {d.rule for d in report.diagnostics}


def make_plan(network=None, *, array_size=None, strategy="heuristic"):
    config = SimConfig() if array_size is None else SimConfig(array_size=array_size)
    return plan_network(network or small_cnn_spec(), strategy, config), config


def manual_plan(spec, nodes, *, bottleneck_time=1.0):
    """A hand-built one-segment plan (the kind the verifier exists for)."""
    segment = Segment(
        layers=[spec],
        allocation=AllocationResult(
            nodes={spec.index: nodes},
            times={spec.index: bottleneck_time},
            bottleneck_time=bottleneck_time,
        ),
    )
    network = NetworkSpec(name="manual", layers=(spec,))
    return SegmentPlan(strategy="manual", network=network, segments=[segment])


class TestCleanPlans:
    def test_resnet18_heuristic_lints_clean(self):
        plan, config = make_plan(resnet18_spec())
        report = verify_plan(plan, config)
        assert report.clean, report.render()

    def test_small_cnn_lints_clean(self):
        plan, config = make_plan()
        report = verify_plan(plan, config)
        assert report.clean, report.render()

    def test_program_length_counts_layers(self):
        plan, config = make_plan()
        report = verify_plan(plan, config)
        assert report.program_length == sum(
            len(s.layers) for s in plan.segments
        )


class TestCapacityRules:
    def test_zeroed_node_group_is_plan601(self):
        plan, config = make_plan()
        segment = plan.segments[0]
        segment.allocation.nodes[segment.layers[0].index] = 0
        report = verify_plan(plan, config)
        assert "PLAN601" in rules_of(report)
        assert not report.ok

    def test_segment_larger_than_array_is_plan602(self):
        plan, _ = make_plan()
        report = verify_plan(plan, SimConfig(array_size=4))
        assert "PLAN602" in rules_of(report)

    def test_64bit_vectors_leave_no_slots_plan603(self):
        spec = ConvLayerSpec(1, "wide", h=4, w=4, c=256, m=4, n_bits=64)
        report = verify_plan(manual_plan(spec, nodes=4))
        assert "PLAN603" in rules_of(report)

    def test_staging_overflow_is_plan604(self):
        # 512 filters of 3x3x256 into one node's ~14 KiB of CMem.
        spec = ConvLayerSpec(1, "fat", h=8, w=8, c=256, m=512)
        report = verify_plan(manual_plan(spec, nodes=1))
        assert "PLAN604" in rules_of(report)


class TestCoResidency:
    def _resident(self, name, start, *, bottleneck_time=1.0):
        spec = ConvLayerSpec(1, f"{name}0", h=4, w=4, c=32, m=2)
        return ResidentPlan(
            name=name,
            plan=manual_plan(spec, nodes=2, bottleneck_time=bottleneck_time),
            region_start=start,
        )

    def test_disjoint_regions_clean(self):
        residents = [self._resident("a", 0), self._resident("b", 8)]
        report = verify_plan(co_resident=residents)
        assert report.clean, report.render()

    def test_overlapping_regions_are_plan606(self):
        residents = [self._resident("a", 0), self._resident("b", 1)]
        report = verify_plan(co_resident=residents)
        assert "PLAN606" in rules_of(report)
        assert not report.ok

    def test_region_past_snake_walk_is_plan602(self):
        report = verify_plan(co_resident=[self._resident("edge", 209)])
        assert "PLAN602" in rules_of(report)

    def test_oversubscribed_total_is_plan602(self):
        plan, config = make_plan(resnet18_spec())
        residents = [
            ResidentPlan("a", plan, region_start=0),
            ResidentPlan("b", plan, region_start=0),
        ]
        report = verify_plan(config=config, co_resident=residents)
        assert "PLAN602" in rules_of(report)

    def test_many_hot_tenants_warn_plan605(self):
        # Seven tenants each saturating their filter-load port demand
        # 7 x 16 = 112 B/cycle against the ~108 B/cycle channel budget.
        residents = [
            self._resident(f"t{i}", 8 * i, bottleneck_time=1.0)
            for i in range(7)
        ]
        report = verify_plan(co_resident=residents)
        assert "PLAN605" in rules_of(report)
        assert report.ok  # warning, not error

    def test_few_tenants_skip_dram_warning(self):
        residents = [self._resident("a", 0), self._resident("b", 8)]
        report = verify_plan(co_resident=residents)
        assert "PLAN605" not in rules_of(report)


class TestResidentPlan:
    def test_footprint_is_widest_segment(self):
        plan, _ = make_plan(resnet18_spec())
        resident = ResidentPlan("r18", plan)
        assert resident.footprint == max(
            s.total_nodes for s in plan.segments
        )

    def test_empty_plan_has_zero_footprint(self):
        network = NetworkSpec(name="empty", layers=())
        plan = SegmentPlan(strategy="manual", network=network, segments=[])
        assert ResidentPlan("none", plan).footprint == 0
