"""Tests for quantization arithmetic helpers."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import QuantizationError
from repro.utils.fixedpoint import (
    choose_scale,
    dequantize_linear,
    fixed_range,
    quantize_linear,
    requantize,
    saturate,
)


class TestSaturate:
    def test_signed_bounds(self):
        out = saturate(np.array([-200, 0, 200]), 8)
        assert out.tolist() == [-128, 0, 127]

    def test_unsigned_bounds(self):
        out = saturate(np.array([-5, 100, 300]), 8, signed=False)
        assert out.tolist() == [0, 100, 255]

    @given(st.integers(2, 16))
    def test_range_is_representable(self, n_bits):
        lo, hi = fixed_range(n_bits)
        assert saturate(np.array([lo - 1]), n_bits)[0] == lo
        assert saturate(np.array([hi + 1]), n_bits)[0] == hi

    def test_fixed_range_invalid(self):
        with pytest.raises(QuantizationError):
            fixed_range(0)


class TestQuantizeLinear:
    def test_exact_grid_values(self):
        q = quantize_linear(np.array([0.5, -0.5]), 0.25, 8)
        assert q.tolist() == [2, -2]

    def test_scale_must_be_positive(self):
        with pytest.raises(QuantizationError):
            quantize_linear(np.array([1.0]), 0.0, 8)
        with pytest.raises(QuantizationError):
            dequantize_linear(np.array([1]), -1.0)

    @given(st.lists(st.floats(-10, 10, allow_nan=False), min_size=1, max_size=64))
    def test_roundtrip_error_bounded_by_half_step(self, values):
        arr = np.array(values)
        scale = choose_scale(arr, 8)
        q = quantize_linear(arr, scale, 8)
        recon = dequantize_linear(q, scale)
        assert np.max(np.abs(recon - arr)) <= scale / 2 + 1e-12

    def test_choose_scale_zero_input(self):
        assert choose_scale(np.zeros(4), 8) == 1.0

    def test_choose_scale_covers_max(self):
        arr = np.array([-3.0, 2.0])
        scale = choose_scale(arr, 8)
        assert quantize_linear(arr, scale, 8)[0] == -127


class TestRequantize:
    def test_identity_when_scales_equal(self):
        acc = np.array([5, -7])
        assert np.array_equal(requantize(acc, 0.1, 0.1, 8), acc)

    def test_rescaling(self):
        assert requantize(np.array([100]), 0.01, 0.1, 8)[0] == 10

    def test_saturates(self):
        assert requantize(np.array([10_000]), 1.0, 1.0, 8)[0] == 127

    def test_invalid_scales(self):
        with pytest.raises(QuantizationError):
            requantize(np.array([1]), 0.0, 1.0, 8)
