"""Unit + property tests for the transposed bit-matrix helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SRAMError
from repro.utils.bitops import (
    bits_to_int,
    from_twos_complement,
    int_to_bits,
    pack_transposed,
    popcount,
    sign_extend,
    to_twos_complement,
    unpack_transposed,
)


class TestTwosComplement:
    def test_positive_values_unchanged(self):
        values = np.array([0, 1, 127])
        assert np.array_equal(to_twos_complement(values, 8), values)

    def test_negative_encoding(self):
        assert to_twos_complement(np.array([-1]), 8)[0] == 255
        assert to_twos_complement(np.array([-128]), 8)[0] == 128

    def test_out_of_range_raises(self):
        with pytest.raises(SRAMError):
            to_twos_complement(np.array([128]), 8)
        with pytest.raises(SRAMError):
            to_twos_complement(np.array([-129]), 8)

    @given(st.lists(st.integers(-128, 127), min_size=1, max_size=64))
    def test_roundtrip(self, values):
        arr = np.array(values)
        encoded = to_twos_complement(arr, 8)
        assert np.array_equal(from_twos_complement(encoded, 8), arr)

    @given(st.integers(-(2 ** 15), 2 ** 15 - 1))
    def test_sign_extend_roundtrip(self, value):
        pattern = value & 0xFFFF
        assert sign_extend(pattern, 16) == value


class TestBitMatrix:
    def test_lsb_first_layout(self):
        bits = int_to_bits(np.array([5]), 4)
        assert bits[:, 0].tolist() == [1, 0, 1, 0]

    def test_unsigned_range_check(self):
        with pytest.raises(SRAMError):
            int_to_bits(np.array([16]), 4)
        with pytest.raises(SRAMError):
            int_to_bits(np.array([-1]), 4)

    @given(
        st.lists(st.integers(-128, 127), min_size=1, max_size=256),
        st.sampled_from([8, 16]),
    )
    def test_signed_roundtrip(self, values, n_bits):
        arr = np.array(values)
        bits = int_to_bits(arr, n_bits, signed=True)
        assert bits.shape == (n_bits, len(values))
        assert np.array_equal(bits_to_int(bits, signed=True), arr)

    @given(st.lists(st.integers(0, 255), min_size=1, max_size=256))
    def test_unsigned_roundtrip(self, values):
        arr = np.array(values)
        assert np.array_equal(bits_to_int(int_to_bits(arr, 8)), arr)

    def test_popcount(self):
        assert popcount(np.array([1, 0, 1, 1], dtype=np.uint8)) == 3
        assert popcount(np.zeros(256, dtype=np.uint8)) == 0


class TestPackTransposed:
    def test_pads_to_width(self):
        bits = pack_transposed(np.array([3, 1]), 4, 8)
        assert bits.shape == (4, 8)
        assert bits[:, 2:].sum() == 0

    def test_rejects_oversized_vector(self):
        with pytest.raises(SRAMError):
            pack_transposed(np.arange(10), 8, 4)

    def test_rejects_matrix_input(self):
        with pytest.raises(SRAMError):
            pack_transposed(np.zeros((2, 2)), 8, 8)

    @given(st.lists(st.integers(-8, 7), min_size=1, max_size=32))
    def test_roundtrip_through_padding(self, values):
        arr = np.array(values)
        bits = pack_transposed(arr, 4, 64, signed=True)
        out = unpack_transposed(bits, len(values), signed=True)
        assert np.array_equal(out, arr)
