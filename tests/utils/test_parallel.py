"""The shared executor: serial == parallel, in order, every time."""

import pytest

from repro.errors import ConfigurationError
from repro.utils.parallel import fork_available, run_sharded


def square(x):
    return x * x


def boom(x):
    raise ValueError(f"boom {x}")


def test_serial_maps_in_order():
    assert run_sharded(square, [3, 1, 2]) == [9, 1, 4]


def test_empty_items_return_empty_list():
    assert run_sharded(square, [], workers=4) == []


def test_single_item_skips_the_pool():
    # len(items) == 1 must not pay fork overhead — and must still work
    # with a non-picklable closure, proving the pool was skipped.
    assert run_sharded(lambda x: x + 1, [41], workers=8) == [42]


def test_negative_workers_rejected():
    with pytest.raises(ConfigurationError):
        run_sharded(square, [1], workers=-1)


@pytest.mark.skipif(not fork_available(), reason="platform lacks fork")
@pytest.mark.parametrize("workers", [1, 2, 5])
def test_parallel_matches_serial_element_wise(workers):
    items = list(range(11))
    assert run_sharded(square, items, workers=workers) == \
        run_sharded(square, items)


@pytest.mark.skipif(not fork_available(), reason="platform lacks fork")
def test_more_workers_than_items_is_fine():
    assert run_sharded(square, [2, 3], workers=64) == [4, 9]


def test_worker_exception_propagates():
    with pytest.raises(ValueError, match="boom"):
        run_sharded(boom, [1, 2], workers=2)
    with pytest.raises(ValueError, match="boom"):
        run_sharded(boom, [1, 2])


def test_generator_input_accepted():
    assert run_sharded(square, (x for x in (2, 4))) == [4, 16]
