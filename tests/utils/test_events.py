"""Tests for the discrete-event kernel."""

import pytest

from repro.errors import SimulationError
from repro.utils.events import EventQueue


class TestEventQueue:
    def test_dispatch_in_time_order(self):
        q = EventQueue()
        seen = []
        q.schedule(5, lambda: seen.append("late"))
        q.schedule(1, lambda: seen.append("early"))
        q.run()
        assert seen == ["early", "late"]

    def test_fifo_among_simultaneous_events(self):
        q = EventQueue()
        seen = []
        for tag in "abc":
            q.schedule(3, lambda t=tag: seen.append(t))
        q.run()
        assert seen == ["a", "b", "c"]

    def test_now_tracks_last_event(self):
        q = EventQueue()
        q.schedule(7, lambda: None)
        q.run()
        assert q.now == 7

    def test_schedule_in_past_rejected(self):
        q = EventQueue()
        q.schedule(10, lambda: None)
        q.run()
        with pytest.raises(SimulationError):
            q.schedule(5, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            EventQueue().schedule_in(-1, lambda: None)

    def test_run_until_leaves_future_events(self):
        q = EventQueue()
        seen = []
        q.schedule(1, lambda: seen.append(1))
        q.schedule(10, lambda: seen.append(10))
        q.run(until=5)
        assert seen == [1]
        assert len(q) == 1
        assert q.now == 5

    def test_events_can_schedule_events(self):
        q = EventQueue()
        seen = []

        def first():
            seen.append("first")
            q.schedule_in(2, lambda: seen.append("second"))

        q.schedule(1, first)
        q.run()
        assert seen == ["first", "second"]
        assert q.now == 3

    def test_max_events_guard(self):
        q = EventQueue()

        def rearm():
            q.schedule_in(1, rearm)

        q.schedule(0, rearm)
        q.run(max_events=50)
        assert q.processed == 50

    def test_step_on_empty_queue(self):
        assert EventQueue().step() is None
