"""Tests for the discrete-event kernel."""

import pytest

from repro.errors import SimulationError
from repro.utils.events import EventQueue


class TestEventQueue:
    def test_dispatch_in_time_order(self):
        q = EventQueue()
        seen = []
        q.schedule(5, lambda: seen.append("late"))
        q.schedule(1, lambda: seen.append("early"))
        q.run()
        assert seen == ["early", "late"]

    def test_fifo_among_simultaneous_events(self):
        q = EventQueue()
        seen = []
        for tag in "abc":
            q.schedule(3, lambda t=tag: seen.append(t))
        q.run()
        assert seen == ["a", "b", "c"]

    def test_now_tracks_last_event(self):
        q = EventQueue()
        q.schedule(7, lambda: None)
        q.run()
        assert q.now == 7

    def test_schedule_in_past_rejected(self):
        q = EventQueue()
        q.schedule(10, lambda: None)
        q.run()
        with pytest.raises(SimulationError):
            q.schedule(5, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            EventQueue().schedule_in(-1, lambda: None)

    def test_run_until_leaves_future_events(self):
        q = EventQueue()
        seen = []
        q.schedule(1, lambda: seen.append(1))
        q.schedule(10, lambda: seen.append(10))
        q.run(until=5)
        assert seen == [1]
        assert len(q) == 1
        assert q.now == 5

    def test_events_can_schedule_events(self):
        q = EventQueue()
        seen = []

        def first():
            seen.append("first")
            q.schedule_in(2, lambda: seen.append("second"))

        q.schedule(1, first)
        q.run()
        assert seen == ["first", "second"]
        assert q.now == 3

    def test_max_events_guard(self):
        q = EventQueue()

        def rearm():
            q.schedule_in(1, rearm)

        q.schedule(0, rearm)
        q.run(max_events=50)
        assert q.processed == 50

    def test_step_on_empty_queue(self):
        assert EventQueue().step() is None


class TestRunUntilMaxEventsInteraction:
    """Edge cases of ``run(until=...)`` combined with ``run(max_events=...)``."""

    def test_until_clamps_now_when_heap_drains(self):
        q = EventQueue()
        q.schedule(2, lambda: None)
        assert q.run(until=9) == 9
        assert q.now == 9
        assert len(q) == 0

    def test_until_on_empty_queue_advances_now(self):
        q = EventQueue()
        assert q.run(until=5) == 5
        assert q.now == 5

    def test_max_events_stop_leaves_heap_and_does_not_clamp(self):
        # Stopping on the event budget means pending events at t < until
        # have not happened yet, so `now` must stay at the last dispatched
        # event rather than jump to `until`.
        q = EventQueue()
        for t in (1, 2, 3, 4):
            q.schedule(t, lambda: None)
        q.run(until=100, max_events=2)
        assert q.processed == 2
        assert q.now == 2
        assert len(q) == 2

    def test_resume_after_max_events_stop(self):
        q = EventQueue()
        for t in (1, 2, 3):
            q.schedule(t, lambda: None)
        q.run(max_events=1)
        assert q.now == 1
        q.run(until=10)
        assert q.processed == 3
        assert q.now == 10

    def test_until_before_first_event_runs_nothing(self):
        q = EventQueue()
        seen = []
        q.schedule(8, lambda: seen.append(8))
        q.run(until=3)
        assert seen == []
        assert q.now == 3
        assert len(q) == 1

    def test_until_in_past_does_not_rewind_now(self):
        q = EventQueue()
        q.schedule(7, lambda: None)
        q.run()
        assert q.now == 7
        q.run(until=2)
        assert q.now == 7
