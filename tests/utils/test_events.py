"""Tests for the discrete-event kernel."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.utils.events import EventQueue


class TestEventQueue:
    def test_dispatch_in_time_order(self):
        q = EventQueue()
        seen = []
        q.schedule(5, lambda: seen.append("late"))
        q.schedule(1, lambda: seen.append("early"))
        q.run()
        assert seen == ["early", "late"]

    def test_fifo_among_simultaneous_events(self):
        q = EventQueue()
        seen = []
        for tag in "abc":
            q.schedule(3, lambda t=tag: seen.append(t))
        q.run()
        assert seen == ["a", "b", "c"]

    def test_now_tracks_last_event(self):
        q = EventQueue()
        q.schedule(7, lambda: None)
        q.run()
        assert q.now == 7

    def test_schedule_in_past_rejected(self):
        q = EventQueue()
        q.schedule(10, lambda: None)
        q.run()
        with pytest.raises(SimulationError):
            q.schedule(5, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            EventQueue().schedule_in(-1, lambda: None)

    def test_run_until_leaves_future_events(self):
        q = EventQueue()
        seen = []
        q.schedule(1, lambda: seen.append(1))
        q.schedule(10, lambda: seen.append(10))
        q.run(until=5)
        assert seen == [1]
        assert len(q) == 1
        assert q.now == 5

    def test_events_can_schedule_events(self):
        q = EventQueue()
        seen = []

        def first():
            seen.append("first")
            q.schedule_in(2, lambda: seen.append("second"))

        q.schedule(1, first)
        q.run()
        assert seen == ["first", "second"]
        assert q.now == 3

    def test_max_events_guard(self):
        q = EventQueue()

        def rearm():
            q.schedule_in(1, rearm)

        q.schedule(0, rearm)
        q.run(max_events=50)
        assert q.processed == 50

    def test_step_on_empty_queue(self):
        assert EventQueue().step() is None


class TestDeterminism:
    """Dispatch order is a pure function of the schedule calls.

    The heap orders by ``(time, seq)`` where ``seq`` is the schedule-call
    counter, so equal-time events — including ones scheduled from inside
    other events — replay identically run after run.  The serving layer's
    byte-identical metric exports depend on this.
    """

    @staticmethod
    def build_and_run():
        q = EventQueue()
        order = []

        def spawn(tag, t, children=()):
            def fire():
                order.append(tag)
                for child_tag, child_t in children:
                    q.schedule(child_t, spawn(child_tag, child_t))
                    order.append(f"scheduled:{child_tag}")
            return fire

        # Interleaved equal-time events plus nested scheduling that lands
        # on already-populated timestamps.
        q.schedule(2.0, spawn("a2", 2.0, children=[("a5", 5.0)]))
        q.schedule(5.0, spawn("b5", 5.0))
        q.schedule(2.0, spawn("c2", 2.0, children=[("c5", 5.0), ("c2b", 2.0)]))
        q.schedule(5.0, spawn("d5", 5.0))
        q.schedule(2.0, spawn("e2", 2.0))
        q.run()
        return order

    def test_identical_schedules_dispatch_identically(self):
        first = self.build_and_run()
        second = self.build_and_run()
        assert first == second

    def test_seq_breaks_equal_time_ties_by_schedule_order(self):
        order = [tag for tag in self.build_and_run()
                 if not tag.startswith("scheduled:")]
        # t=2: schedule-call order a2, c2, e2; c2's same-time child c2b
        # was scheduled later than all of them, so it fires last.
        # t=5: b5, d5 were scheduled before a2's and c2's children.
        assert order == ["a2", "c2", "e2", "c2b", "b5", "d5", "a5", "c5"]


class TestRunUntilMaxEventsInteraction:
    """Edge cases of ``run(until=...)`` combined with ``run(max_events=...)``."""

    def test_until_clamps_now_when_heap_drains(self):
        q = EventQueue()
        q.schedule(2, lambda: None)
        assert q.run(until=9) == 9
        assert q.now == 9
        assert len(q) == 0

    def test_until_on_empty_queue_advances_now(self):
        q = EventQueue()
        assert q.run(until=5) == 5
        assert q.now == 5

    def test_max_events_stop_leaves_heap_and_does_not_clamp(self):
        # Stopping on the event budget means pending events at t < until
        # have not happened yet, so `now` must stay at the last dispatched
        # event rather than jump to `until`.
        q = EventQueue()
        for t in (1, 2, 3, 4):
            q.schedule(t, lambda: None)
        q.run(until=100, max_events=2)
        assert q.processed == 2
        assert q.now == 2
        assert len(q) == 2

    def test_resume_after_max_events_stop(self):
        q = EventQueue()
        for t in (1, 2, 3):
            q.schedule(t, lambda: None)
        q.run(max_events=1)
        assert q.now == 1
        q.run(until=10)
        assert q.processed == 3
        assert q.now == 10

    def test_until_before_first_event_runs_nothing(self):
        q = EventQueue()
        seen = []
        q.schedule(8, lambda: seen.append(8))
        q.run(until=3)
        assert seen == []
        assert q.now == 3
        assert len(q) == 1

    def test_until_in_past_does_not_rewind_now(self):
        q = EventQueue()
        q.schedule(7, lambda: None)
        q.run()
        assert q.now == 7
        q.run(until=2)
        assert q.now == 7


# Strategy for a deterministic event program: each top-level entry is
# (time, [child delays]); firing an event appends its tag and schedules
# its children at now + delay, so equal-time ties, nested scheduling,
# and same-timestamp children (delay 0) are all exercised.
_PROGRAMS = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=5),
        st.lists(st.integers(min_value=0, max_value=4), max_size=3),
    ),
    max_size=12,
)


def _run_program(program, *, batched):
    q = EventQueue()
    order = []

    def fire(tag, children):
        def action():
            order.append(tag)
            for j, delay in enumerate(children):
                q.schedule_in(delay, fire(f"{tag}.{j}", ()))
        return action

    for i, (t, children) in enumerate(program):
        q.schedule(t, fire(f"e{i}", children))
    q.run(batched=batched)
    return order, q.now, q.processed


class TestBatchDraining:
    """``step_batch`` / ``run(batched=True)`` vs per-event stepping."""

    def test_batch_pops_all_equal_time_events_in_seq_order(self):
        q = EventQueue()
        seen = []
        q.schedule(3, lambda: seen.append("a"))
        q.schedule(3, lambda: seen.append("b"))
        q.schedule(5, lambda: seen.append("later"))
        batch = q.step_batch()
        assert [e.time for e in batch] == [3, 3]
        assert seen == ["a", "b"]
        assert q.now == 3
        assert q.processed == 2
        assert len(q) == 1

    def test_same_time_events_scheduled_by_batch_form_next_batch(self):
        q = EventQueue()
        seen = []

        def first():
            seen.append("first")
            # Lands at the batch's own timestamp: must NOT join the
            # in-flight batch, but fire in the next one at the same now.
            q.schedule(2, lambda: seen.append("child"))

        q.schedule(2, first)
        q.schedule(2, lambda: seen.append("second"))
        assert len(q.step_batch()) == 2
        assert seen == ["first", "second"]
        assert q.now == 2
        assert len(q.step_batch()) == 1
        assert seen == ["first", "second", "child"]
        assert q.now == 2

    def test_step_batch_on_empty_queue(self):
        assert EventQueue().step_batch() == []

    def test_batched_run_matches_stepped_run_on_nested_program(self):
        program = [(2, [0, 3]), (2, []), (0, [2, 2]), (5, [0])]
        assert _run_program(program, batched=True) == _run_program(
            program, batched=False
        )

    def test_batched_until_and_max_events_between_batches(self):
        q = EventQueue()
        for t in (1, 1, 1, 2):
            q.schedule(t, lambda: None)
        # max_events is checked between atomic batches: the t=1 batch of
        # three dispatches whole even though the budget is 2.
        q.run(max_events=2, batched=True)
        assert q.processed == 3
        assert q.now == 1
        q.run(until=10, batched=True)
        assert q.processed == 4
        assert q.now == 10

    @settings(max_examples=200, deadline=None)
    @given(program=_PROGRAMS)
    def test_batched_dispatch_order_equals_stepped_order(self, program):
        """Property: batch draining is observationally identical.

        For any program of (time, children) schedules — including
        equal-time ties and handlers that schedule at the current
        timestamp — ``run(batched=True)`` dispatches the exact sequence
        ``run()`` does, and lands on the same ``now``/``processed``.
        """
        assert _run_program(program, batched=True) == _run_program(
            program, batched=False
        )
