"""LLC tile behaviour: hits, LRU, writebacks."""

import pytest

from repro.dram.controller import DRAMController
from repro.dram.llc import LLCache, LLCConfig
from repro.errors import ConfigurationError
from repro.riscv.memory import DRAM_BASE


class TestConfig:
    def test_default_geometry(self):
        cfg = LLCConfig()
        assert cfg.num_sets == 64 * 1024 // 64 // 8

    def test_invalid_ways(self):
        with pytest.raises(ConfigurationError):
            LLCConfig(capacity_bytes=1024, ways=3)


class TestHitMiss:
    def test_first_access_misses(self):
        llc = LLCache()
        llc.access(DRAM_BASE, False)
        assert llc.stats.misses == 1

    def test_second_access_hits(self):
        llc = LLCache()
        llc.access(DRAM_BASE, False)
        latency = llc.access(DRAM_BASE, False)
        assert llc.stats.hits == 1
        assert latency == llc.config.hit_latency

    def test_same_line_different_bytes_hit(self):
        llc = LLCache()
        llc.access(DRAM_BASE, False)
        llc.access(DRAM_BASE + 63, False)
        assert llc.stats.hits == 1

    def test_miss_latency_includes_dram(self):
        llc = LLCache(dram=DRAMController())
        latency = llc.access(DRAM_BASE, False)
        assert latency > llc.config.hit_latency


class TestReplacement:
    def test_lru_evicts_oldest(self):
        cfg = LLCConfig(capacity_bytes=1024, ways=2, line_bytes=64)
        llc = LLCache(cfg)
        sets = cfg.num_sets
        way_stride = cfg.line_bytes * sets
        a, b, c = (DRAM_BASE + i * way_stride for i in range(3))
        llc.access(a, False)
        llc.access(b, False)
        llc.access(a, False)  # refresh a
        llc.access(c, False)  # evicts b
        llc.access(a, False)
        assert llc.stats.hits == 2
        llc.access(b, False)
        assert llc.stats.misses == 4  # b was evicted

    def test_dirty_eviction_counts_writeback(self):
        cfg = LLCConfig(capacity_bytes=1024, ways=2, line_bytes=64)
        llc = LLCache(cfg)
        way_stride = cfg.line_bytes * cfg.num_sets
        llc.access(DRAM_BASE, True)  # dirty
        llc.access(DRAM_BASE + way_stride, False)
        llc.access(DRAM_BASE + 2 * way_stride, False)  # evicts dirty line
        assert llc.stats.writebacks == 1

    def test_flush_writes_dirty_lines(self):
        llc = LLCache()
        llc.access(DRAM_BASE, True)
        llc.access(DRAM_BASE + 64, True)
        llc.access(DRAM_BASE + 128, False)
        assert llc.flush() == 2
        # A second flush finds nothing dirty.
        assert llc.flush() == 0

    def test_hit_rate_property(self):
        llc = LLCache()
        llc.access(DRAM_BASE, False)
        llc.access(DRAM_BASE, False)
        assert llc.stats.hit_rate == pytest.approx(0.5)
