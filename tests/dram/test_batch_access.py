"""``DRAMController.access_latency_batch`` vs per-access scheduling.

The batch path vectorizes address mapping and collapses runs of
consecutive same-(channel, bank, row) accesses into arithmetic
progressions of open-row hits.  Contract: per-access latencies, bank
state (open rows, busy-until times), stats, and energy all match the
serial :meth:`access_latency` loop exactly.
"""

import numpy as np
import pytest

from repro import telemetry
from repro.dram.controller import DRAMConfig, DRAMController
from repro.dram.llc import LLCache, LLCConfig
from repro.errors import DRAMError
from repro.riscv.memory import DRAM_BASE, DRAM_END


def serial_reference(dram, addrs, is_write, time=0):
    return [dram.access_latency(a, is_write, time) for a in addrs]


def assert_same_state(a: DRAMController, b: DRAMController) -> None:
    assert a._open_row == b._open_row
    assert a._bank_free == b._bank_free
    assert (a.stats.reads, a.stats.writes) == (b.stats.reads, b.stats.writes)
    assert (a.stats.row_hits, a.stats.row_misses) == (
        b.stats.row_hits, b.stats.row_misses
    )
    assert a.stats.energy_pj == b.stats.energy_pj


class TestBatchAccess:
    def test_empty_batch(self):
        assert DRAMController().access_latency_batch([], False) == []

    def test_out_of_range_rejected(self):
        with pytest.raises(DRAMError):
            DRAMController().access_latency_batch([DRAM_BASE, DRAM_END], False)

    def test_same_row_run_collapses_to_hits(self):
        batch = DRAMController()
        serial = DRAMController()
        line = batch.config.line_bytes
        addrs = [DRAM_BASE + i * line for i in range(8)]  # one open row
        got = batch.access_latency_batch(addrs, True, time=3)
        want = serial_reference(serial, addrs, True, time=3)
        assert got == want
        assert_same_state(batch, serial)
        # First access opened the row; the rest are hits.
        assert batch.stats.row_misses == 1
        assert batch.stats.row_hits == 7

    def test_interleaved_banks_and_reuse(self):
        cfg = DRAMConfig()
        batch = DRAMController(cfg)
        serial = DRAMController(cfg)
        span = (DRAM_END - DRAM_BASE) // cfg.channels
        addrs = [
            DRAM_BASE,                      # ch 0, row 0
            DRAM_BASE + cfg.row_bytes,      # ch 0, next bank
            DRAM_BASE,                      # back to the open row: hit
            DRAM_BASE + span,               # channel 1
            DRAM_BASE + cfg.row_bytes * cfg.banks_per_channel,  # row conflict
        ]
        assert batch.access_latency_batch(addrs, False) == serial_reference(
            serial, addrs, False
        )
        assert_same_state(batch, serial)

    def test_randomized_differential(self):
        rng = np.random.default_rng(7)
        cfg = DRAMConfig()
        line = cfg.line_bytes
        for trial in range(40):
            batch = DRAMController(cfg)
            serial = DRAMController(cfg)
            # Mix of streaming runs and random jumps, random read/write
            # phases issued at increasing times.
            for _ in range(int(rng.integers(1, 4))):
                base = DRAM_BASE + int(rng.integers(0, 1 << 20)) * line
                if bool(rng.integers(0, 2)):
                    addrs = [base + i * line for i in range(int(rng.integers(1, 32)))]
                else:
                    addrs = [
                        DRAM_BASE + int(rng.integers(0, 1 << 20)) * line
                        for _ in range(int(rng.integers(1, 16)))
                    ]
                is_write = bool(rng.integers(0, 2))
                t = int(rng.integers(0, 1000))
                got = batch.access_latency_batch(addrs, is_write, t)
                want = serial_reference(serial, addrs, is_write, t)
                assert got == want, f"trial {trial}"
                assert_same_state(batch, serial)

    def test_telemetry_enabled_falls_back_and_traces(self):
        sink = telemetry.Telemetry()
        line = DRAMConfig().line_bytes
        addrs = [DRAM_BASE + i * line for i in range(5)]
        with telemetry.use(sink):
            traced = DRAMController(telemetry=sink)
            got = traced.access_latency_batch(addrs, False, 0)
        plain = DRAMController()
        assert got == plain.access_latency_batch(addrs, False, 0)
        assert_same_state(traced, plain)
        assert sum(1 for e in sink.trace.events if e.ph == "X") == 5


class TestLLCFlushBatch:
    def _dirty_cache(self, dram):
        llc = LLCache(LLCConfig(capacity_bytes=4096), dram=dram)
        rng = np.random.default_rng(11)
        for _ in range(200):
            addr = DRAM_BASE + int(rng.integers(0, 1 << 16)) * 64
            llc.access(addr, is_write=bool(rng.integers(0, 2)))
        return llc

    def test_flush_batched_equals_per_access(self):
        # The batched flush (NullSink) must leave the DRAM in the same
        # state as the per-access path (forced via an enabled sink).
        plain_dram = DRAMController()
        plain = self._dirty_cache(plain_dram)
        sink = telemetry.Telemetry()
        traced_dram = DRAMController(telemetry=sink)
        traced = self._dirty_cache(traced_dram)
        assert plain.stats.writebacks == traced.stats.writebacks

        count_plain = plain.flush(time=50)
        with telemetry.use(sink):
            count_traced = traced.flush(time=50)
        assert count_plain == count_traced > 0
        assert_same_state(plain_dram, traced_dram)
        # Flushing twice writes nothing back: all lines are clean now.
        assert plain.flush(time=100) == 0
