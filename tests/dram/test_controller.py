"""DRAM timing, channel striping, and functional storage."""

import pytest

from repro.dram.controller import DRAMConfig, DRAMController
from repro.errors import DRAMError
from repro.riscv.memory import DRAM_BASE


class TestAddressMapping:
    def test_channel_striping(self):
        dram = DRAMController()
        span = (1 << 31) // 32
        assert dram.locate(DRAM_BASE)[0] == 0
        assert dram.locate(DRAM_BASE + span)[0] == 1
        assert dram.locate(DRAM_BASE + 31 * span)[0] == 31

    def test_bank_interleaving_by_row(self):
        dram = DRAMController()
        cfg = dram.config
        _, bank0, _ = dram.locate(DRAM_BASE)
        _, bank1, _ = dram.locate(DRAM_BASE + cfg.row_bytes)
        assert bank1 == (bank0 + 1) % cfg.banks_per_channel

    def test_out_of_range(self):
        with pytest.raises(DRAMError):
            DRAMController().locate(0x1000)


class TestTiming:
    def test_first_access_pays_activate(self):
        dram = DRAMController()
        cfg = dram.config
        latency = dram.access_latency(DRAM_BASE, False, 0)
        assert latency == cfg.trcd + cfg.tcas + cfg.tburst

    def test_row_hit_is_cheaper(self):
        dram = DRAMController()
        cfg = dram.config
        dram.access_latency(DRAM_BASE, False, 0)
        hit = dram.access_latency(DRAM_BASE + 64, False, 100)
        assert hit == cfg.tcas + cfg.tburst
        assert dram.stats.row_hits == 1

    def test_row_conflict_pays_precharge(self):
        dram = DRAMController()
        cfg = dram.config
        dram.access_latency(DRAM_BASE, False, 0)
        conflict_addr = DRAM_BASE + cfg.row_bytes * cfg.banks_per_channel
        latency = dram.access_latency(conflict_addr, False, 1000)
        assert latency == cfg.trp + cfg.trcd + cfg.tcas + cfg.tburst

    def test_bank_busy_queues_requests(self):
        dram = DRAMController()
        first = dram.access_latency(DRAM_BASE, False, 0)
        second = dram.access_latency(DRAM_BASE + 64, False, 0)
        # Second request waits for the bank, so total observed latency from
        # t=0 exceeds a bare row hit.
        assert second > dram.config.tcas

    def test_energy_accumulates(self):
        dram = DRAMController()
        dram.access_latency(DRAM_BASE, False, 0)
        dram.access_latency(DRAM_BASE, True, 100)
        assert dram.stats.reads == 1
        assert dram.stats.writes == 1
        assert dram.stats.energy_pj > 0

    def test_hit_rate(self):
        dram = DRAMController()
        dram.access_latency(DRAM_BASE, False, 0)
        dram.access_latency(DRAM_BASE, False, 100)
        assert dram.stats.row_hit_rate == pytest.approx(0.5)


class TestFunctionalStorage:
    def test_word_roundtrip(self):
        dram = DRAMController()
        dram.write_word(DRAM_BASE + 100, 0xDEADBEEF)
        assert dram.read_word(DRAM_BASE + 100) == 0xDEADBEEF

    def test_unwritten_reads_zero(self):
        assert DRAMController().read_word(DRAM_BASE) == 0

    def test_cross_line_bytes(self):
        dram = DRAMController()
        data = bytes(range(100))
        dram.write_bytes(DRAM_BASE + 60, data)  # spans a 64 B line boundary
        assert dram.read_bytes(DRAM_BASE + 60, 100) == data
