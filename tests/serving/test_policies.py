"""Serving policies against the real chip model."""

import pytest

from repro.core.multi_dnn import MultiDNNScheduler
from repro.errors import SimulationError
from repro.nn.workloads import ConvLayerSpec, NetworkSpec, small_cnn_spec
from repro.serving.arrivals import PeriodicArrivals
from repro.serving.policies import (
    ElasticPolicy,
    StaticPartitionPolicy,
    TenantObservation,
    TimeSharedPolicy,
)
from repro.serving.service import ServiceModel
from repro.serving.tenancy import TenantSpec


def net(name, m=32, h=14, layers=2):
    specs = tuple(
        ConvLayerSpec(i + 1, f"{name}{i}", h=h, w=h, c=64, m=m)
        for i in range(layers)
    )
    return NetworkSpec(name=name, layers=specs)


@pytest.fixture(scope="module")
def scheduler():
    return MultiDNNScheduler()


@pytest.fixture(scope="module")
def tenants():
    return [
        TenantSpec("heavy", net("heavy", m=64, h=28), PeriodicArrivals(5.0)),
        TenantSpec("light", small_cnn_spec(), PeriodicArrivals(1.0)),
    ]


class TestStatic:
    def test_matches_offline_multi_dnn_run(self, scheduler, tenants):
        policy = StaticPartitionPolicy(scheduler)
        policy.prepare(tenants)
        offline = scheduler.run([t.network for t in tenants])
        for tenant, run in zip(tenants, offline.runs):
            assert policy.service_ms(tenant.name) == run.latency_ms
            assert policy.shares()[tenant.name] == run.partition_cores
            assert policy.server_of(tenant.name) == tenant.name


class TestTimeShared:
    def test_whole_array_latency_one_server(self, scheduler, tenants):
        policy = TimeSharedPolicy(scheduler)
        policy.prepare(tenants)
        for tenant in tenants:
            expected = scheduler.simulator.run(tenant.network, "heuristic").latency_ms
            assert policy.service_ms(tenant.name) == expected
            assert policy.server_of(tenant.name) == "chip"
        assert policy.shares() == {}


class TestElastic:
    @pytest.fixture(scope="class")
    def policy(self, scheduler, tenants):
        policy = ElasticPolicy(
            ServiceModel(scheduler), control_interval_ms=10.0,
            hysteresis_cores=4,
        )
        policy.prepare(tenants)
        return policy

    def test_initial_shares_match_static_partition(self, policy, scheduler, tenants):
        shares = scheduler.partition([t.network for t in tenants])
        assert [policy.shares()[t.name] for t in tenants] == shares
        # ... and the initial service times match the static policy's.
        static = StaticPartitionPolicy(scheduler)
        static.prepare(tenants)
        for t in tenants:
            assert policy.service_ms(t.name) == static.service_ms(t.name)

    def test_idle_window_keeps_layout(self, policy):
        assert policy.on_interval(10.0, {}) is None
        assert (
            policy.on_interval(
                20.0, {"heavy": TenantObservation(), "light": TenantObservation()}
            )
            is None
        )

    def test_demand_shift_resizes_with_stall(self, scheduler, tenants):
        policy = ElasticPolicy(
            ServiceModel(scheduler), control_interval_ms=10.0,
            hysteresis_cores=4,
        )
        policy.prepare(tenants)
        before = policy.shares()
        light_service_before = policy.service_ms("light")
        # All the demand sits on the light tenant now.
        action = policy.on_interval(
            10.0,
            {
                "heavy": TenantObservation(arrivals=0, queue_depth=0),
                "light": TenantObservation(arrivals=50, queue_depth=9),
            },
        )
        assert action is not None
        assert action.shares["light"] > before["light"]
        assert action.shares["heavy"] < before["heavy"]
        assert sum(action.shares.values()) == scheduler.array_size
        # Both partitions moved, so both pay a re-staging stall.
        assert set(action.stall_ms) == {"heavy", "light"}
        assert all(s > 0 for s in action.stall_ms.values())
        assert action.placements_recomputed > 0
        # Service time of the grown tenant improved or held.
        assert policy.service_ms("light") <= light_service_before
        assert policy.resize_count == 1

    def test_hysteresis_blocks_small_wobble(self, scheduler, tenants):
        policy = ElasticPolicy(
            ServiceModel(scheduler), control_interval_ms=10.0,
            hysteresis_cores=10_000,
        )
        policy.prepare(tenants)
        action = policy.on_interval(
            10.0,
            {
                "heavy": TenantObservation(arrivals=1),
                "light": TenantObservation(arrivals=50, queue_depth=9),
            },
        )
        assert action is None

    def test_cooldown_blocks_back_to_back_resizes(self, scheduler, tenants):
        policy = ElasticPolicy(
            ServiceModel(scheduler), control_interval_ms=10.0,
            hysteresis_cores=4, cooldown_ms=100.0,
        )
        policy.prepare(tenants)
        shift = {
            "heavy": TenantObservation(arrivals=0),
            "light": TenantObservation(arrivals=50, queue_depth=9),
        }
        assert policy.on_interval(10.0, shift) is not None
        back = {
            "heavy": TenantObservation(arrivals=50, queue_depth=9),
            "light": TenantObservation(arrivals=0),
        }
        assert policy.on_interval(20.0, back) is None  # inside cooldown
        assert policy.on_interval(110.0, back) is not None

    def test_validates_knobs(self):
        with pytest.raises(SimulationError):
            ElasticPolicy(control_interval_ms=0.0)
        with pytest.raises(SimulationError):
            ElasticPolicy(hysteresis_cores=0)
        with pytest.raises(SimulationError):
            ElasticPolicy().prepare([])


class TestServiceModel:
    def test_latency_cache_hits(self, scheduler):
        model = ServiceModel(scheduler)
        network = small_cnn_spec()
        first = model.latency_ms(network, 32)
        assert model.latency_ms(network, 32) == first
        assert len(model._runs) == 1

    def test_more_cores_never_slower(self, scheduler):
        model = ServiceModel(scheduler)
        network = net("mono", m=64, h=28)
        few = model.latency_ms(network, model.minimum_cores(network))
        many = model.latency_ms(network, 180)
        assert many <= few

    def test_restage_cost_positive_and_scales(self, scheduler):
        model = ServiceModel(scheduler)
        small = model.restage_ms(small_cnn_spec())
        large = model.restage_ms(net("big", m=128, h=28))
        assert 0 < small < large
