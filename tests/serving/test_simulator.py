"""The serving event loop: exact latencies on scripted service times."""

import math

import pytest

from repro import telemetry
from repro.errors import SimulationError
from repro.nn.workloads import small_cnn_spec
from repro.serving.arrivals import (
    ClosedLoopArrivals,
    PeriodicArrivals,
    PoissonArrivals,
    TraceArrivals,
)
from repro.serving.policies import FixedServicePolicy, ResizeAction
from repro.serving.simulator import ServingSimulator
from repro.serving.tenancy import TenantSpec

NET = small_cnn_spec()


def tenant(name, arrivals, **kw):
    return TenantSpec(name=name, network=NET, arrivals=arrivals, **kw)


class TestSingleServer:
    def test_idle_server_serves_immediately(self):
        policy = FixedServicePolicy({"a": 2.0})
        result = ServingSimulator(policy).run(
            [tenant("a", PeriodicArrivals(10.0))], 35.0
        )
        report = result.reports["a"]
        assert report.arrivals == 4  # t = 0, 10, 20, 30
        assert report.completed == 4
        assert report.latencies_ms == [2.0, 2.0, 2.0, 2.0]
        assert report.queue_wait_ms_total == 0.0

    def test_backlog_queues_fifo(self):
        # Service 3 ms, arrivals every 1 ms: each request waits for all
        # earlier ones.  latency_k = (k+1)*3 - k*1.
        policy = FixedServicePolicy({"a": 3.0})
        result = ServingSimulator(policy).run(
            [tenant("a", PeriodicArrivals(1.0))], 4.0
        )
        assert result.reports["a"].arrivals == 4
        # finish times: 3, 6, 9, 12; only the first lands inside 4 ms.
        assert result.reports["a"].completed == 1
        assert result.reports["a"].overrun == 3
        assert result.reports["a"].latencies_ms == [3.0]

    def test_utilization_and_busy_time(self):
        policy = FixedServicePolicy({"a": 2.0})
        result = ServingSimulator(policy).run(
            [tenant("a", PeriodicArrivals(4.0))], 40.0
        )
        assert result.server_busy_ms["a"] == pytest.approx(20.0)
        assert result.utilization("a") == pytest.approx(0.5)

    def test_deadlines(self):
        policy = FixedServicePolicy({"a": 5.0})
        result = ServingSimulator(policy).run(
            [tenant("a", PeriodicArrivals(2.0), deadline_ms=6.0)], 20.0
        )
        report = result.reports["a"]
        # Queueing pushes later requests past the 6 ms relative deadline.
        assert report.deadline_misses > 0
        assert report.deadline_miss_rate == pytest.approx(
            report.deadline_misses / report.completed
        )


class TestAdmissionControl:
    def test_bounded_queue_sheds_and_reports(self):
        policy = FixedServicePolicy({"a": 10.0})
        result = ServingSimulator(policy).run(
            [tenant("a", PeriodicArrivals(1.0), queue_capacity=2)], 30.0
        )
        report = result.reports["a"]
        assert report.shed > 0
        assert report.arrivals == report.admitted + report.shed
        assert result.total_shed == report.shed

    def test_unbounded_queue_never_sheds(self):
        policy = FixedServicePolicy({"a": 10.0})
        result = ServingSimulator(policy).run(
            [tenant("a", PeriodicArrivals(1.0))], 30.0
        )
        assert result.reports["a"].shed == 0

    def test_edf_prioritizes_urgent_tenant(self):
        # One shared server, 1 ms services.  Three lax requests arrive
        # just before one urgent request; under FIFO the urgent one waits
        # behind all of them and misses, under EDF it goes first.
        def tenants():
            return [
                tenant("lax", TraceArrivals([0.0, 0.1, 0.2]), deadline_ms=100.0),
                tenant("urgent", TraceArrivals([0.5]), deadline_ms=2.0),
            ]

        policy = {"lax": 1.0, "urgent": 1.0}
        fifo = ServingSimulator(
            FixedServicePolicy(policy, shared_server="chip"), discipline="fifo"
        ).run(tenants(), 50.0)
        edf = ServingSimulator(
            FixedServicePolicy(policy, shared_server="chip"), discipline="edf"
        ).run(tenants(), 50.0)
        assert fifo.reports["urgent"].deadline_misses == 1
        assert edf.reports["urgent"].deadline_misses == 0

    def test_priority_beats_arrival_order(self):
        # Server busy until t=3; low arrives at 1, high at 2; the high-
        # priority tenant is picked first when the server frees.
        def tenants():
            return [
                tenant("first", TraceArrivals([0.0])),
                tenant("low", TraceArrivals([1.0])),
                tenant("high", TraceArrivals([2.0]), priority=1),
            ]

        policy = FixedServicePolicy(
            {"first": 3.0, "low": 1.0, "high": 1.0}, shared_server="chip"
        )
        result = ServingSimulator(policy).run(tenants(), 50.0)
        assert result.reports["high"].latencies_ms == [2.0]  # 2 -> 4
        assert result.reports["low"].latencies_ms == [4.0]   # 1 -> 5


class TestResizeStall:
    class OneResize(FixedServicePolicy):
        """Scripted: a single resize at the first control tick."""

        name = "scripted"
        control_interval_ms = 10.0

        def __init__(self, service_ms, stall_ms):
            super().__init__(service_ms)
            self.stall_ms = stall_ms
            self._fired = False

        def on_interval(self, now_ms, observations):
            if self._fired:
                return None
            self._fired = True
            return ResizeAction(
                shares={}, region_starts={},
                stall_ms={name: self.stall_ms for name in self._servers},
            )

    def test_request_waits_out_the_stall_no_lost_time(self):
        # Tick at t=10 stalls the partition until t=35.  The request
        # arriving at t=20 starts exactly at t=35 — the dequeue-to-start
        # wait is preserved in its latency, not dropped.
        policy = self.OneResize({"a": 1.0}, stall_ms=25.0)
        result = ServingSimulator(policy).run(
            [tenant("a", PeriodicArrivals(20.0))], 100.0
        )
        report = result.reports["a"]
        # arrivals at 0, 20, 40, 60, 80
        assert report.latencies_ms == [1.0, 16.0, 1.0, 1.0, 1.0]
        assert report.queue_wait_ms_total == pytest.approx(15.0)

    def test_restaging_begins_after_inflight_drains(self):
        # Service 20 ms: the request in flight at the tick finishes at
        # t=20, then the 5 ms restage runs, so the request queued at
        # t=12 starts at 25 and finishes at 45.
        policy = self.OneResize({"a": 20.0}, stall_ms=5.0)
        result = ServingSimulator(policy).run(
            [tenant("a", TraceArrivals([0.0, 12.0]))], 100.0
        )
        assert result.reports["a"].latencies_ms == [20.0, 33.0]
        assert len(result.resizes) == 1
        assert result.resizes[0].time_ms == 10.0


class TestClosedLoop:
    def test_next_request_follows_completion(self):
        policy = FixedServicePolicy({"a": 3.0})
        result = ServingSimulator(policy).run(
            [tenant("a", ClosedLoopArrivals(2.0))], 20.0
        )
        report = result.reports["a"]
        # arrive 0, finish 3; arrive 5, finish 8; arrive 10, finish 13;
        # arrive 15, finish 18; arrive 20 is outside the window.
        assert report.arrivals == 4
        assert report.latencies_ms == [3.0, 3.0, 3.0, 3.0]
        assert report.queue_wait_ms_total == 0.0


class TestDeterminism:
    def test_two_seeded_runs_export_identical_json(self):
        tenants = [
            tenant("a", PoissonArrivals(700, seed=11), deadline_ms=4.0,
                   queue_capacity=8),
            tenant("b", PoissonArrivals(300, seed=12), deadline_ms=9.0),
        ]
        runs = [
            ServingSimulator(
                FixedServicePolicy({"a": 1.0, "b": 2.5})
            ).run(tenants, 150.0).to_json()
            for _ in range(2)
        ]
        assert runs[0] == runs[1]


class TestTelemetry:
    def test_counters_histograms_and_trace(self):
        sink = telemetry.Telemetry()
        policy = FixedServicePolicy({"a": 2.0})
        ServingSimulator(policy, telemetry=sink).run(
            [tenant("a", PeriodicArrivals(5.0), deadline_ms=1.0)], 20.0
        )
        counters = sink.registry.as_dict()["counters"]
        assert counters["serving/tenant/a/arrivals"] == 4
        assert counters["serving/tenant/a/completed"] == 4
        assert counters["serving/tenant/a/deadline_misses"] == 4
        hist = sink.registry.histograms["serving/tenant/a/latency_ms"]
        assert hist.count == 4
        spans = [e for e in sink.trace.events if e.track == "serving/server/a"]
        assert len(spans) == 4
        telemetry.validate_chrome_trace(sink.trace.to_chrome())


class TestValidation:
    def test_no_tenants(self):
        with pytest.raises(SimulationError):
            ServingSimulator(FixedServicePolicy({})).run([], 10.0)

    def test_duplicate_names(self):
        ts = [tenant("a", PeriodicArrivals(1.0)),
              tenant("a", PeriodicArrivals(2.0))]
        with pytest.raises(SimulationError):
            ServingSimulator(FixedServicePolicy({"a": 1.0})).run(ts, 10.0)

    def test_bad_duration(self):
        with pytest.raises(SimulationError):
            ServingSimulator(FixedServicePolicy({"a": 1.0})).run(
                [tenant("a", PeriodicArrivals(1.0))], 0.0
            )

    def test_missing_fixed_service(self):
        with pytest.raises(SimulationError):
            ServingSimulator(FixedServicePolicy({})).run(
                [tenant("a", PeriodicArrivals(1.0))], 10.0
            )

    def test_unknown_discipline(self):
        with pytest.raises(SimulationError):
            ServingSimulator(FixedServicePolicy({"a": 1.0}), discipline="lifo")

    def test_best_effort_deadline_is_inf(self):
        policy = FixedServicePolicy({"a": 1e6})
        result = ServingSimulator(policy).run(
            [tenant("a", TraceArrivals([0.0]), deadline_ms=math.inf)], 1e7
        )
        assert result.reports["a"].deadline_misses == 0
