"""The serving attribution invariant, end to end.

Every billed completion decomposes into queue / admission / staging /
compute / ... phases whose left-to-right float sum reproduces the
request's end-to-end latency *bit-exactly*, in both queueing tiers
(streaming and event).  The per-tenant aggregate is byte-deterministic
across reruns and identical whether or not per-request timelines were
collected — the fast path and the collected path must never disagree.
"""

import json

import pytest

from repro.core.multi_dnn import MultiDNNScheduler
from repro.nn.workloads import small_cnn_spec
from repro.serving.arrivals import PeriodicArrivals, PoissonArrivals
from repro.serving.policies import FixedServicePolicy, StaticPartitionPolicy
from repro.serving.simulator import ServingSimulator
from repro.serving.tenancy import TenantSpec

NET = small_cnn_spec()


def fixed_tenants():
    return [
        TenantSpec("a", NET, PoissonArrivals(900, seed=11), deadline_ms=2.0),
        TenantSpec("b", NET, PoissonArrivals(600, seed=12), deadline_ms=3.0),
    ]


def fixed_policy():
    return FixedServicePolicy(
        {"a": 0.8, "b": 1.1}, staging_ms={"a": 0.3, "b": 0.4}
    )


def run_fixed(**kwargs):
    simulator = ServingSimulator(fixed_policy(), **kwargs)
    return simulator.run(fixed_tenants(), 60.0)


class TestPerRequestInvariant:
    @pytest.mark.parametrize("backend", ["streaming", "event"])
    def test_queueing_tiers_are_bit_exact(self, backend):
        scheduler = MultiDNNScheduler(backend=backend)
        policy = StaticPartitionPolicy(scheduler)
        tenants = [
            TenantSpec("a", NET, PeriodicArrivals(4.0), deadline_ms=20.0),
            TenantSpec("b", NET, PeriodicArrivals(6.0), deadline_ms=20.0),
        ]
        simulator = ServingSimulator(policy, collect_timelines=True)
        result = simulator.run(tenants, 40.0)
        checked = 0
        for report in result.reports.values():
            assert len(report.timelines) == report.completed
            for timeline in report.timelines:
                timeline.verify()  # left-to-right sum == end_to_end, exactly
                checked += 1
        assert checked > 0

    def test_batched_dispatch_keeps_the_invariant(self):
        result = run_fixed(batch_requests=4, collect_timelines=True)
        for report in result.reports.values():
            for timeline in report.timelines:
                timeline.verify()
            assert len(report.timelines) == report.completed

    def test_timeline_latency_matches_billed_latency(self):
        result = run_fixed(collect_timelines=True)
        for report in result.reports.values():
            billed = sorted(report.latencies_ms)
            attributed = sorted(t.end_to_end for t in report.timelines)
            assert billed == attributed


class TestAggregate:
    def test_sums_bit_exactly_to_the_histogram_total(self):
        result = run_fixed()
        for report in result.reports.values():
            acc = 0.0
            for duration in report.attribution.values():
                acc += duration
            assert acc == report.histogram.total

    def test_collect_on_and_off_agree(self):
        on = run_fixed(collect_timelines=True)
        off = run_fixed(collect_timelines=False)
        for name in on.reports:
            assert on.reports[name].attribution == off.reports[name].attribution
            assert (
                on.reports[name].attribution_categories
                == off.reports[name].attribution_categories
            )

    def test_reruns_export_byte_identical_attribution(self):
        dumps = [
            json.dumps(run_fixed().as_dict(), sort_keys=True)
            for _ in range(2)
        ]
        assert dumps[0] == dumps[1]

    def test_every_phase_carries_a_category(self):
        result = run_fixed()
        for report in result.reports.values():
            assert set(report.attribution) == set(
                report.attribution_categories
            )
            assert report.attribution["queue"] == pytest.approx(
                report.queue_wait_ms_total
            )

    def test_attribution_can_be_disabled(self):
        result = run_fixed(attribution=False)
        for report in result.reports.values():
            assert report.attribution == {}
            assert report.timelines == []

    def test_fast_path_skips_timeline_objects(self):
        result = run_fixed()  # no sink, no collect_timelines
        for report in result.reports.values():
            assert report.timelines == []
            assert report.attribution  # aggregate still present
