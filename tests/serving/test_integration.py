"""End-to-end serving runs on the chip model: the acceptance scenario."""

import pytest

from repro.core.multi_dnn import MultiDNNScheduler
from repro.nn.workloads import ConvLayerSpec, NetworkSpec, small_cnn_spec
from repro.serving.arrivals import PoissonArrivals
from repro.serving.policies import (
    ElasticPolicy,
    StaticPartitionPolicy,
    TimeSharedPolicy,
)
from repro.serving.service import ServiceModel
from repro.serving.simulator import ServingSimulator
from repro.serving.tenancy import TenantSpec


def net(name, m=32, h=14, layers=2):
    specs = tuple(
        ConvLayerSpec(i + 1, f"{name}{i}", h=h, w=h, c=64, m=m)
        for i in range(layers)
    )
    return NetworkSpec(name=name, layers=specs)


@pytest.fixture(scope="module")
def scheduler():
    return MultiDNNScheduler()


def mixed_rate_tenants():
    """A heavy slow-rate model beside light hot ones — static MAC-weighted
    shares are mismatched with the offered load, which is exactly the
    regime where elastic repartitioning pays off."""
    return [
        TenantSpec("camera", net("camera", m=64, h=28),
                   PoissonArrivals(400, seed=1), deadline_ms=6.0),
        TenantSpec("lidar", net("lidar", m=32, h=14),
                   PoissonArrivals(1500, seed=2), deadline_ms=3.0),
        TenantSpec("radar", small_cnn_spec(),
                   PoissonArrivals(2500, seed=3), deadline_ms=2.0),
    ]


@pytest.fixture(scope="module")
def results(scheduler):
    tenants = mixed_rate_tenants()
    out = {}
    for policy in (
        StaticPartitionPolicy(scheduler),
        TimeSharedPolicy(scheduler),
        ElasticPolicy(ServiceModel(scheduler), control_interval_ms=10.0),
    ):
        out[policy.name] = ServingSimulator(policy).run(tenants, 120.0)
    return out


class TestMixedRateScenario:
    def test_elastic_beats_time_shared_p99(self, results):
        assert results["elastic"].worst_p99_ms < results["time-shared"].worst_p99_ms

    def test_elastic_no_worse_than_static_p99(self, results):
        assert results["elastic"].worst_p99_ms <= results["static"].worst_p99_ms

    def test_elastic_actually_resizes(self, results):
        assert len(results["elastic"].resizes) > 0
        for event in results["elastic"].resizes:
            assert sum(event.shares.values()) == 208
            assert all(s > 0 for s in event.stall_ms.values())

    def test_region_starts_tile_the_array(self, results):
        for event in results["elastic"].resizes:
            offset = 0
            for name in ("camera", "lidar", "radar"):
                assert event.region_starts[name] == offset
                offset += event.shares[name]

    def test_every_policy_serves_everything_at_this_load(self, results):
        for result in results.values():
            assert result.total_shed == 0
            for report in result.reports.values():
                assert report.arrivals == report.admitted
                assert report.completed + report.overrun == report.admitted

    def test_percentiles_are_ordered(self, results):
        for result in results.values():
            for report in result.reports.values():
                assert report.p50_ms <= report.p95_ms <= report.p99_ms
                assert report.p99_ms <= report.max_latency_ms + 1e-9

    def test_report_export_is_consistent(self, results):
        for result in results.values():
            exported = result.as_dict()
            assert exported["totals"]["completed"] == result.total_completed
            assert exported["policy"] == result.policy


class TestOverload:
    def test_bounded_queues_shed_under_overload(self, scheduler):
        tenants = [
            TenantSpec("hot", net("hot", m=64, h=28),
                       PoissonArrivals(4000, seed=9), deadline_ms=2.0,
                       queue_capacity=4),
        ]
        result = ServingSimulator(StaticPartitionPolicy(scheduler)).run(
            tenants, 60.0
        )
        report = result.reports["hot"]
        assert report.shed > 0
        assert report.arrivals == report.admitted + report.shed
        # Graceful degradation: the queue bound caps reported latency.
        assert report.max_latency_ms < 60.0
