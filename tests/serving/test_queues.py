"""Admission queues: ordering, bounds, and shedding."""

import math

import pytest

from repro.errors import SimulationError
from repro.serving.queues import AdmissionQueue
from repro.serving.tenancy import Request


def req(seq, arrival, deadline=math.inf, tenant="t"):
    return Request(
        tenant=tenant, index=seq, arrival_ms=arrival,
        deadline_ms=deadline, seq=seq,
    )


class TestFIFO:
    def test_pops_in_arrival_order(self):
        q = AdmissionQueue(discipline="fifo")
        for r in (req(0, 5.0), req(1, 1.0), req(2, 3.0)):
            assert q.offer(r) is None
        assert [q.pop().seq for _ in range(3)] == [1, 2, 0]

    def test_equal_arrivals_break_by_seq(self):
        q = AdmissionQueue(discipline="fifo")
        for r in (req(3, 2.0), req(1, 2.0), req(2, 2.0)):
            q.offer(r)
        assert [q.pop().seq for _ in range(3)] == [1, 2, 3]

    def test_full_queue_sheds_incoming(self):
        q = AdmissionQueue(capacity=2, discipline="fifo")
        q.offer(req(0, 0.0))
        q.offer(req(1, 1.0))
        shed = q.offer(req(2, 2.0))
        assert shed is not None and shed.seq == 2
        assert q.shed_count == 1
        assert len(q) == 2


class TestEDF:
    def test_pops_earliest_deadline(self):
        q = AdmissionQueue(discipline="edf")
        for r in (req(0, 0.0, deadline=9.0), req(1, 1.0, deadline=3.0),
                  req(2, 2.0, deadline=6.0)):
            q.offer(r)
        assert [q.pop().seq for _ in range(3)] == [1, 2, 0]

    def test_displaces_latest_deadline_when_full(self):
        q = AdmissionQueue(capacity=2, discipline="edf")
        q.offer(req(0, 0.0, deadline=100.0))
        q.offer(req(1, 0.5, deadline=5.0))
        shed = q.offer(req(2, 1.0, deadline=2.0))  # urgent displaces lax
        assert shed is not None and shed.seq == 0
        assert q.shed_count == 1
        assert sorted(r.seq for _, r in q._heap) == [1, 2]

    def test_sheds_incoming_when_it_is_the_laxest(self):
        q = AdmissionQueue(capacity=1, discipline="edf")
        q.offer(req(0, 0.0, deadline=1.0))
        shed = q.offer(req(1, 0.5, deadline=50.0))
        assert shed is not None and shed.seq == 1


class TestValidation:
    def test_unknown_discipline(self):
        with pytest.raises(SimulationError):
            AdmissionQueue(discipline="lifo")

    def test_bad_capacity(self):
        with pytest.raises(SimulationError):
            AdmissionQueue(capacity=0)

    def test_pop_empty(self):
        with pytest.raises(SimulationError):
            AdmissionQueue().pop()

    def test_peek_empty(self):
        q = AdmissionQueue()
        assert q.peek() is None
        assert q.peek_key() is None
