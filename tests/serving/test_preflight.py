"""Serving admission: the static pre-flight gate on the partition layout."""

import pytest

from repro.analysis import ResidentPlan
from repro.errors import PlanVerificationError
from repro.serving import (
    ElasticPolicy,
    FixedServicePolicy,
    PeriodicArrivals,
    ServingSimulator,
    StaticPartitionPolicy,
    TenantSpec,
    smoke_tenants,
)
from repro.serving.scenarios import mixed_rate_tenants


class OverlappingPolicy(StaticPartitionPolicy):
    """A deliberately broken partitioner: every tenant at region 0."""

    def prepare(self, tenants):
        super().prepare(tenants)
        self._residents = [
            ResidentPlan(r.name, r.plan, region_start=0)
            for r in self._residents
        ]


class TestPolicyPreflight:
    def test_static_smoke_layout_is_clean(self):
        policy = StaticPartitionPolicy()
        tenants = smoke_tenants()
        policy.prepare(tenants)
        report = policy.preflight(tenants)
        assert report is not None
        assert report.ok, report.render()

    def test_elastic_mixed_rate_layout_is_clean(self):
        policy = ElasticPolicy()
        tenants = mixed_rate_tenants()
        policy.prepare(tenants)
        report = policy.preflight(tenants)
        assert report is not None
        assert report.ok, report.render()

    def test_unprepared_policy_has_nothing_to_check(self):
        assert StaticPartitionPolicy().preflight([]) is None
        assert ElasticPolicy().preflight([]) is None

    def test_base_policy_returns_none(self):
        policy = FixedServicePolicy({"a": 1.0})
        tenants = [
            TenantSpec("a", None, PeriodicArrivals(100.0), deadline_ms=50.0)
        ]
        assert policy.preflight(tenants) is None

    def test_overlapping_layout_is_flagged(self):
        policy = OverlappingPolicy()
        tenants = smoke_tenants()
        policy.prepare(tenants)
        report = policy.preflight(tenants)
        assert report is not None and not report.ok
        assert any(d.rule == "PLAN606" for d in report.diagnostics)


class TestSimulatorAdmission:
    def test_clean_layout_is_admitted(self):
        result = ServingSimulator(StaticPartitionPolicy()).run(
            smoke_tenants(), duration_ms=20.0
        )
        assert result.total_shed == 0

    def test_overlapping_layout_is_rejected(self):
        simulator = ServingSimulator(OverlappingPolicy())
        with pytest.raises(PlanVerificationError) as excinfo:
            simulator.run(smoke_tenants(), duration_ms=20.0)
        assert "PLAN606" in str(excinfo.value)
        assert excinfo.value.report is not None

    def test_preflight_false_opts_out(self):
        simulator = ServingSimulator(OverlappingPolicy(), preflight=False)
        result = simulator.run(smoke_tenants(), duration_ms=20.0)
        assert result.reports  # runs to completion, gate disabled
