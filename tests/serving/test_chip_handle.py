"""The ChipHandle seam is a pure refactor: single-chip runs are pinned.

The golden hashes below were captured from the pre-refactor closure-based
``ServingSimulator.run`` (with the schema-only ``failed: 0`` counter
injected, since the field was added in the same change).  Any drift in
event ordering, accounting, or JSON layout fails these pins.
"""

from __future__ import annotations

import hashlib
import json

from repro.nn.workloads import ConvLayerSpec, NetworkSpec
from repro.serving import (
    ChipHandle,
    ElasticPolicy,
    FixedServicePolicy,
    PoissonArrivals,
    ServiceModel,
    ServingSimulator,
    StaticPartitionPolicy,
    TenantSpec,
)
from repro.serving.scenarios import SCENARIOS

GOLDEN = {
    "fixed_batched": "64ba882245493810befe5f86d73dc3a85f49b13d965c03a6db98d8789559641d",
    "smoke/static": "dd4314227736fd4d12fe4da29abdb4984cb0b62fce7f4bd3d48526e93d95317e",
    "smoke/elastic": "0f00dfbd713d6afb80ef2895de122204a5fa40599272a16e3cd6b7c03ded5b42",
    "bursty/edf": "266ef2839be2a85cc2ccca687f0cd4d88d234f891d4c0a53a917457a63e2a656",
}


def _pin(result) -> str:
    return hashlib.sha256(
        json.dumps(result.as_dict(), indent=2, sort_keys=True).encode()
    ).hexdigest()


def _stub_net() -> NetworkSpec:
    spec = ConvLayerSpec(index=0, name="stub", h=1, w=1, c=1, m=1)
    return NetworkSpec(name="stub", layers=(spec,))


def _fixed_tenants():
    net = _stub_net()
    return [
        TenantSpec(
            "a", net, PoissonArrivals(2200, seed=31),
            deadline_ms=50.0, queue_capacity=256,
        ),
        TenantSpec(
            "b", net, PoissonArrivals(1400, seed=32),
            deadline_ms=50.0, queue_capacity=256,
        ),
    ]


def test_fixed_batched_pinned():
    policy = FixedServicePolicy(
        {"a": 0.8, "b": 1.1}, staging_ms={"a": 0.6, "b": 0.8}
    )
    result = ServingSimulator(policy, batch_requests=8).run(
        _fixed_tenants(), 2000.0
    )
    assert _pin(result) == GOLDEN["fixed_batched"]
    assert result.total_failed == 0


def test_smoke_static_pinned():
    build, duration = SCENARIOS["smoke"]
    result = ServingSimulator(StaticPartitionPolicy()).run(build(), duration)
    assert _pin(result) == GOLDEN["smoke/static"]


def test_smoke_elastic_pinned():
    build, duration = SCENARIOS["smoke"]
    result = ServingSimulator(
        ElasticPolicy(ServiceModel(), control_interval_ms=10.0)
    ).run(build(), duration)
    assert _pin(result) == GOLDEN["smoke/elastic"]


def test_bursty_edf_pinned():
    build, duration = SCENARIOS["bursty"]
    result = ServingSimulator(StaticPartitionPolicy(), discipline="edf").run(
        build(), duration
    )
    assert _pin(result) == GOLDEN["bursty/edf"]


def test_open_start_drain_matches_run():
    """Driving the seam by hand is the same machine as ``run``."""
    policy = FixedServicePolicy(
        {"a": 0.8, "b": 1.1}, staging_ms={"a": 0.6, "b": 0.8}
    )
    sim = ServingSimulator(policy, batch_requests=8)
    chip = sim.open(_fixed_tenants(), 2000.0)
    assert isinstance(chip, ChipHandle)
    chip.start()
    sim.scan_determinism(chip)
    chip.queue.run()
    assert _pin(chip.finish()) == GOLDEN["fixed_batched"]


def test_halt_accounts_every_request():
    """A crash drains queues and in-flight work into ``failed`` — nothing
    is silently dropped: arrivals == completed + overrun + shed + failed."""
    policy = FixedServicePolicy(
        {"a": 0.8, "b": 1.1}, staging_ms={"a": 0.6, "b": 0.8}
    )
    sim = ServingSimulator(policy, batch_requests=8)
    chip = sim.open(_fixed_tenants(), 2000.0, halt_ms=900.0)
    chip.start()
    chip.queue.run()
    result = chip.finish()
    assert result.total_failed > 0
    for report in result.reports.values():
        assert report.arrivals == (
            report.completed + report.overrun + report.shed + report.failed
        )
    # Completions strictly before the halt survive.
    assert result.total_completed > 0
    assert all(
        latency >= 0.0
        for report in result.reports.values()
        for latency in report.latencies_ms
    )


def test_halt_rerun_byte_identical():
    policy = FixedServicePolicy(
        {"a": 0.8, "b": 1.1}, staging_ms={"a": 0.6, "b": 0.8}
    )

    def run_once() -> str:
        sim = ServingSimulator(policy, batch_requests=8)
        chip = sim.open(_fixed_tenants(), 2000.0, halt_ms=900.0)
        chip.start()
        chip.queue.run()
        return chip.finish().to_json()

    assert run_once() == run_once()


def test_injection_drives_chip_headless():
    """Router-style injections land exactly like self-driven arrivals."""
    net = _stub_net()
    from repro.serving import TraceArrivals

    times = [0.5 * k for k in range(1, 21)]
    tenants = [
        TenantSpec("t", net, TraceArrivals(times), deadline_ms=50.0),
    ]
    policy = FixedServicePolicy({"t": 0.3}, staging_ms={"t": 0.1})

    # Self-driven: the trace chains itself through next_ms.
    auto = ServingSimulator(policy).run(tenants, 20.0)

    # Router-driven: empty trace, every arrival injected externally.
    tenants2 = [
        TenantSpec("t", net, TraceArrivals([]), deadline_ms=50.0),
    ]
    sim = ServingSimulator(policy)
    chip = sim.open(tenants2, 20.0)
    chip.start()
    for t in times:
        chip.schedule_injection("t", t)
    chip.queue.run()
    manual = chip.finish()

    assert manual.to_json() == auto.to_json()
