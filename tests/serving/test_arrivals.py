"""Load generators: reproducibility and stream semantics."""

import pytest

from repro.errors import SimulationError
from repro.serving.arrivals import (
    ClosedLoopArrivals,
    PeriodicArrivals,
    PoissonArrivals,
    TraceArrivals,
)


def drain(process, n=10):
    """First ``n`` open-loop arrival times."""
    times = []
    t = process.first_ms()
    while t is not None and len(times) < n:
        times.append(t)
        t = process.next_ms(t)
    return times


class TestPeriodic:
    def test_accumulates_from_offset(self):
        p = PeriodicArrivals(2.5, offset_ms=1.0)
        assert drain(p, 4) == [1.0, 3.5, 6.0, 8.5]

    def test_rate(self):
        assert PeriodicArrivals(4.0).rate_hz == pytest.approx(250.0)

    def test_rejects_bad_period(self):
        with pytest.raises(SimulationError):
            PeriodicArrivals(0.0)
        with pytest.raises(SimulationError):
            PeriodicArrivals(1.0, offset_ms=-1)


class TestPoisson:
    def test_same_seed_same_stream(self):
        a = PoissonArrivals(500, seed=7)
        b = PoissonArrivals(500, seed=7)
        assert drain(a, 50) == drain(b, 50)

    def test_reset_rewinds(self):
        p = PoissonArrivals(500, seed=7)
        first = drain(p, 20)
        p.reset()
        assert drain(p, 20) == first

    def test_different_seeds_differ(self):
        assert drain(PoissonArrivals(500, seed=1)) != drain(
            PoissonArrivals(500, seed=2)
        )

    def test_mean_gap_tracks_rate(self):
        times = drain(PoissonArrivals(1000, seed=3), 2000)
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert sum(gaps) / len(gaps) == pytest.approx(1.0, rel=0.1)

    def test_rejects_bad_rate(self):
        with pytest.raises(SimulationError):
            PoissonArrivals(0)


class TestTrace:
    def test_replays_in_order(self):
        t = TraceArrivals([0.0, 1.5, 1.5, 9.0])
        assert drain(t) == [0.0, 1.5, 1.5, 9.0]
        assert t.first_ms() is None  # exhausted

    def test_reset(self):
        t = TraceArrivals([2.0, 4.0])
        drain(t)
        t.reset()
        assert drain(t) == [2.0, 4.0]

    def test_validates(self):
        with pytest.raises(SimulationError):
            TraceArrivals([3.0, 1.0])
        with pytest.raises(SimulationError):
            TraceArrivals([-1.0])


class TestClosedLoop:
    def test_thinks_after_completion(self):
        p = ClosedLoopArrivals(5.0, offset_ms=2.0)
        assert p.closed_loop
        assert p.first_ms() == 2.0
        assert p.after_completion_ms(10.0) == 15.0

    def test_think_trace_cycles(self):
        p = ClosedLoopArrivals([1.0, 2.0])
        assert p.after_completion_ms(0.0) == 1.0
        assert p.after_completion_ms(0.0) == 2.0
        assert p.after_completion_ms(0.0) == 1.0  # wrapped
        p.reset()
        assert p.after_completion_ms(0.0) == 1.0

    def test_validates(self):
        with pytest.raises(SimulationError):
            ClosedLoopArrivals([])
        with pytest.raises(SimulationError):
            ClosedLoopArrivals(-1.0)
