"""ServiceModel memo cache: LRU bound, per-tier keys, telemetry counters."""

import pytest

from repro import telemetry
from repro.core.multi_dnn import MultiDNNScheduler
from repro.nn.workloads import small_cnn_spec
from repro.serving import ServiceModel


class _CountingScheduler(MultiDNNScheduler):
    """Counts simulate_partition calls so hits/misses are observable
    without telemetry."""

    def __init__(self):
        super().__init__()
        self.calls = 0

    def simulate_partition(self, network, cores, **kwargs):
        self.calls += 1
        return super().simulate_partition(network, cores, **kwargs)


@pytest.fixture
def scheduler():
    return _CountingScheduler()


class TestLRUBound:
    def test_repeat_lookup_hits_the_cache(self, scheduler):
        service = ServiceModel(scheduler)
        network = small_cnn_spec()
        first = service.latency_ms(network, 60)
        assert scheduler.calls == 1
        assert service.latency_ms(network, 60) == first
        assert scheduler.calls == 1

    def test_cache_never_exceeds_its_bound(self, scheduler):
        service = ServiceModel(scheduler, cache_size=2)
        network = small_cnn_spec()
        for cores in (50, 60, 70, 80):
            service.latency_ms(network, cores)
            assert len(service._runs) <= 2
        assert scheduler.calls == 4

    def test_eviction_is_least_recently_used(self, scheduler):
        service = ServiceModel(scheduler, cache_size=2)
        network = small_cnn_spec()
        service.latency_ms(network, 50)
        service.latency_ms(network, 60)
        service.latency_ms(network, 50)   # refresh 50 -> 60 is now LRU
        service.latency_ms(network, 70)   # evicts 60
        assert scheduler.calls == 3
        service.latency_ms(network, 50)   # still cached
        assert scheduler.calls == 3
        service.latency_ms(network, 60)   # evicted: must re-simulate
        assert scheduler.calls == 4

    def test_tiers_are_cached_separately(self, scheduler):
        service = ServiceModel(scheduler)
        network = small_cnn_spec()
        authoritative = service.latency_ms(network, 60)
        estimate = service.estimate_latency_ms(network, 60)
        assert scheduler.calls == 2
        assert len(service._runs) == 2
        # The analytic closed form is a conservative upper bound on the
        # streaming tier (see repro.sim.xcheck) — never cheaper.
        assert estimate >= authoritative
        # Both lookups repeat from cache.
        service.latency_ms(network, 60)
        service.estimate_latency_ms(network, 60)
        assert scheduler.calls == 2


class TestTelemetryCounters:
    def test_hit_and_miss_counters(self, scheduler):
        service = ServiceModel(scheduler)
        network = small_cnn_spec()
        sink = telemetry.Telemetry()
        with telemetry.use(sink):
            service.latency_ms(network, 60)       # miss
            service.latency_ms(network, 60)       # hit
            service.estimate_latency_ms(network, 60)  # miss (analytic key)
            service.latency_ms(network, 60)       # hit
        assert sink.registry.counter("serving/service/cache_miss").value == 2
        assert sink.registry.counter("serving/service/cache_hit").value == 2

    def test_no_sink_no_counters(self, scheduler):
        # The default NullSink must stay untouched (enabled=False guard).
        service = ServiceModel(scheduler)
        service.latency_ms(small_cnn_spec(), 60)
        assert not telemetry.current().enabled
