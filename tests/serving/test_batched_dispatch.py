"""Weight-stationary request batching in the serving event loop.

``ServingSimulator(batch_requests=R)`` lets a free server pull up to R
queued requests of one tenant into a single dispatch, served at the
policy's :meth:`batched_service_ms` — staging paid once, per-request
remainder R times.  The default R=1 must reproduce the historical
one-at-a-time loop exactly.
"""

import pytest

from repro.errors import SimulationError
from repro.nn.workloads import small_cnn_spec
from repro.serving.arrivals import PeriodicArrivals, PoissonArrivals
from repro.serving.policies import FixedServicePolicy, ServingPolicy
from repro.serving.simulator import ServingSimulator
from repro.serving.tenancy import TenantSpec

NET = small_cnn_spec()


def tenant(name, arrivals, **kw):
    return TenantSpec(name=name, network=NET, arrivals=arrivals, **kw)


class TestBatchedServiceMs:
    def test_base_policy_has_no_amortization(self):
        policy = FixedServicePolicy({"a": 3.0})
        policy.prepare([tenant("a", PeriodicArrivals(10.0))])
        assert ServingPolicy.batched_service_ms(policy, "a", 4) == 12.0

    def test_staging_amortizes(self):
        policy = FixedServicePolicy({"a": 3.0}, staging_ms={"a": 2.0})
        assert policy.batched_service_ms("a", 1) == 3.0
        assert policy.batched_service_ms("a", 4) == 2.0 + 4 * 1.0

    def test_count_one_is_exact_service_time(self):
        policy = FixedServicePolicy({"a": 0.3}, staging_ms={"a": 0.1})
        assert policy.batched_service_ms("a", 1) == policy._fixed["a"]

    def test_count_must_be_positive(self):
        policy = FixedServicePolicy({"a": 3.0})
        with pytest.raises(SimulationError):
            policy.batched_service_ms("a", 0)

    def test_staging_must_fit_inside_service_time(self):
        with pytest.raises(SimulationError):
            FixedServicePolicy({"a": 3.0}, staging_ms={"a": 4.0})
        with pytest.raises(SimulationError):
            FixedServicePolicy({"a": 3.0}, staging_ms={"a": -0.5})


class TestSimulatorValidation:
    def test_batch_requests_must_be_positive(self):
        with pytest.raises(SimulationError):
            ServingSimulator(FixedServicePolicy({"a": 1.0}), batch_requests=0)


def _poisson_tenants():
    return [
        tenant("a", PoissonArrivals(900, seed=7), deadline_ms=4.0),
        tenant("b", PoissonArrivals(500, seed=8), deadline_ms=6.0,
               queue_capacity=32),
    ]


class TestDefaultIsHistoricalLoop:
    def test_r1_run_is_byte_identical(self):
        policy = FixedServicePolicy({"a": 0.8, "b": 1.4},
                                    staging_ms={"a": 0.5, "b": 0.9})
        base = ServingSimulator(policy).run(_poisson_tenants(), 500.0)
        r1 = ServingSimulator(policy, batch_requests=1).run(
            _poisson_tenants(), 500.0
        )
        for name in ("a", "b"):
            assert base.reports[name].latencies_ms == r1.reports[name].latencies_ms
            assert base.reports[name].arrivals == r1.reports[name].arrivals
            assert base.reports[name].shed == r1.reports[name].shed
        assert base.server_busy_ms == r1.server_busy_ms


class TestBatchedDispatch:
    def test_exact_batch_timeline(self):
        # Service 3 ms (2 ms of it staging), arrivals every 1 ms. The
        # t=0 request serves alone (finish 3).  At t=3 the queued t=1,2
        # arrivals dispatch as one batch: 2 + 2*(3-2) = 4 ms, both
        # finishing at 7 and billed 2 ms of service each.
        policy = FixedServicePolicy({"a": 3.0}, staging_ms={"a": 2.0})
        result = ServingSimulator(policy, batch_requests=2).run(
            [tenant("a", PeriodicArrivals(1.0))], 8.0
        )
        report = result.reports["a"]
        assert report.arrivals == 8  # t = 0 .. 7
        # Completions inside the window: the solo t=0 request and the
        # (t=1, t=2) batch; later batches finish past the 8 ms window.
        assert report.latencies_ms == [3.0, 6.0, 5.0]
        assert report.completed == 3

    def test_batch_limited_to_batch_requests(self):
        # Six requests queue behind the first; with R=3 the backlog
        # drains as batches of 3, never more.
        policy = FixedServicePolicy({"a": 7.0}, staging_ms={"a": 6.0})
        result = ServingSimulator(policy, batch_requests=3).run(
            [tenant("a", PeriodicArrivals(1.0))], 7.5
        )
        report = result.reports["a"]
        assert report.arrivals == 8
        # t=0 alone (finish 7); t=1..6 would be 6 ready at t=7 but only
        # 3 batch: 6 + 3*1 = 9 ms (finish 16 > window, overrun).
        assert report.latencies_ms == [7.0]
        assert report.overrun > 0

    def test_batching_improves_overloaded_throughput(self):
        def run(batch_requests):
            policy = FixedServicePolicy(
                {"a": 1.0}, staging_ms={"a": 0.8}
            )
            return ServingSimulator(
                policy, batch_requests=batch_requests
            ).run(
                [tenant("a", PoissonArrivals(2500, seed=9),
                        queue_capacity=128, deadline_ms=100.0)],
                400.0,
            )

        unbatched = run(1)
        batched = run(8)
        assert batched.reports["a"].completed > unbatched.reports["a"].completed
        assert batched.reports["a"].shed < unbatched.reports["a"].shed
