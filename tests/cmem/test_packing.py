"""Lane packing of sub-256-channel vectors (Sec. 3.3's ShiftRow + CSR).

When C < 256, up to floor(256/C) vectors share one row group.  Packing
*same-filter* pixels with their matching ifmap pixels lets a single
unmasked MAC.C sum several filter-pixel contributions at once; packing
*different* filters requires CSR masking to isolate each filter's lanes.
Both modes are exercised bit-true here, including ShiftRow.C alignment.
"""

import numpy as np
import pytest

from repro.cmem.cmem import CMem


def place_packed(cmem, slice_index, base_row, vectors, lane_width=64):
    """Put each 64-channel vector at its own lane-group offset."""
    for k, vec in enumerate(vectors):
        cmem.store_vector_transposed(
            slice_index, base_row, vec, 8, signed=True, col_offset=k * lane_width
        )


class TestSameFilterPacking:
    """One MAC covers p filter pixels of the SAME filter."""

    def test_packed_mac_sums_all_contributions(self):
        rng = np.random.default_rng(0)
        c = 64
        filter_pixels = [rng.integers(-128, 128, c) for _ in range(4)]
        ifmap_pixels = [rng.integers(-128, 128, c) for _ in range(4)]
        cmem = CMem()
        place_packed(cmem, 1, 0, ifmap_pixels)
        place_packed(cmem, 1, 8, filter_pixels)
        got = cmem.mac(1, 0, 8, 8, signed=True, mask=0xFF)
        want = sum(int(np.dot(w, x)) for w, x in zip(filter_pixels, ifmap_pixels))
        assert got == want

    def test_partial_packing_with_mask(self):
        """Only two of four lane groups are populated and enabled."""
        rng = np.random.default_rng(1)
        c = 64
        ws = [rng.integers(-128, 128, c) for _ in range(2)]
        xs = [rng.integers(-128, 128, c) for _ in range(2)]
        cmem = CMem()
        place_packed(cmem, 2, 0, xs)
        place_packed(cmem, 2, 8, ws)
        got = cmem.mac(2, 0, 8, 8, signed=True, mask=0x0F)  # lanes 0-3 = 128 cols
        want = sum(int(np.dot(w, x)) for w, x in zip(ws, xs))
        assert got == want


class TestDifferentFilterPacking:
    """Different filters on one row group need per-filter masked MACs."""

    def test_masked_macs_isolate_each_filter(self):
        rng = np.random.default_rng(2)
        c = 64
        filters = [rng.integers(-128, 128, c) for _ in range(4)]
        x = rng.integers(-128, 128, c)
        cmem = CMem()
        # The SAME ifmap pixel replicated into all four lane groups (this
        # is what the DC's replication writes achieve).
        place_packed(cmem, 3, 0, [x] * 4)
        place_packed(cmem, 3, 8, filters)
        for k, w in enumerate(filters):
            lanes = 0b11 << (2 * k)  # each 64-channel group = 2 CSR lanes
            got = cmem.mac(3, 0, 8, 8, signed=True, mask=lanes)
            assert got == int(np.dot(w, x)), f"filter {k}"

    def test_unmasked_mac_would_mix_filters(self):
        rng = np.random.default_rng(3)
        c = 64
        filters = [rng.integers(-128, 128, c) for _ in range(4)]
        x = rng.integers(-128, 128, c)
        cmem = CMem()
        place_packed(cmem, 4, 0, [x] * 4)
        place_packed(cmem, 4, 8, filters)
        got = cmem.mac(4, 0, 8, 8, signed=True, mask=0xFF)
        assert got == sum(int(np.dot(w, x)) for w in filters)


class TestShiftRowAlignment:
    def test_shift_aligns_vector_to_its_lane_group(self):
        """A vector written at offset 0 moves to lane group 1 with one
        ShiftRow.C of +2 words (64 bits)."""
        rng = np.random.default_rng(4)
        c = 64
        w = rng.integers(-128, 128, c)
        x = rng.integers(-128, 128, c)
        cmem = CMem()
        # Ifmap vector lands at offset 0 (as the DC wrote it)...
        cmem.store_vector_transposed(5, 0, x, 8, signed=True, col_offset=0)
        # ...but this filter pixel lives in lane group 1.
        cmem.store_vector_transposed(5, 8, w, 8, signed=True, col_offset=64)
        for row in range(8):
            cmem.shift_row(5, row, 2)  # 2 x 32-bit words = 64 lanes
        got = cmem.mac(5, 0, 8, 8, signed=True, mask=0b1100)
        assert got == int(np.dot(w, x))

    def test_shift_cost_accounted(self):
        cmem = CMem()
        cmem.set_row(1, 0, 1)
        before = cmem.stats.busy_cycles
        cmem.shift_row(1, 0, 1)
        assert cmem.stats.busy_cycles - before == 2  # read + write
