"""Tests for the adder tree and shift-accumulator periphery."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cmem.adder_tree import AdderTree, ShiftAccumulator
from repro.errors import CMemError


class TestAdderTree:
    def test_full_mask_popcount(self):
        tree = AdderTree()
        bits = np.zeros(256, dtype=np.uint8)
        bits[::2] = 1
        assert tree.popcount(bits) == 128

    def test_lane_masking(self):
        tree = AdderTree()
        bits = np.ones(256, dtype=np.uint8)
        assert tree.popcount(bits, mask=0x01) == 32
        assert tree.popcount(bits, mask=0x03) == 64
        assert tree.popcount(bits, mask=0x80) == 32

    @given(st.integers(0, 255), st.integers(0, 2 ** 32 - 1))
    def test_mask_selects_expected_lanes(self, mask, seed):
        tree = AdderTree()
        rng = np.random.default_rng(seed)
        bits = rng.integers(0, 2, 256).astype(np.uint8)
        expected = sum(
            bits[32 * lane : 32 * (lane + 1)].sum()
            for lane in range(8)
            if (mask >> lane) & 1
        )
        assert tree.popcount(bits, mask) == expected

    def test_invalid_mask(self):
        with pytest.raises(CMemError):
            AdderTree().popcount(np.zeros(256, dtype=np.uint8), mask=0x100)

    def test_width_check(self):
        with pytest.raises(CMemError):
            AdderTree().popcount(np.zeros(128, dtype=np.uint8))

    def test_width_must_divide_into_lanes(self):
        with pytest.raises(CMemError):
            AdderTree(width=100)


class TestShiftAccumulator:
    def test_shift_weighting(self):
        acc = ShiftAccumulator()
        acc.accumulate(3, shift=4)
        assert acc.value == 48

    def test_signed_partial(self):
        acc = ShiftAccumulator()
        acc.accumulate(5, shift=0)
        acc.accumulate(2, shift=1, negative=True)
        assert acc.value == 1

    def test_clear(self):
        acc = ShiftAccumulator()
        acc.accumulate(1, 0)
        acc.clear()
        assert acc.value == 0

    def test_negative_shift_rejected(self):
        with pytest.raises(CMemError):
            ShiftAccumulator().accumulate(1, shift=-1)
