"""Table 2 cycle costs of the CMem ISA extension."""

import pytest

from repro.cmem.isa import CMemOp, CMemOpCost, cmem_op_cycles
from repro.errors import CMemError


class TestTable2:
    """The exact cycle counts of the paper's Table 2."""

    @pytest.mark.parametrize("n", [2, 4, 8, 16])
    def test_mac_is_n_squared(self, n):
        assert cmem_op_cycles(CMemOp.MAC_C, n) == n * n

    @pytest.mark.parametrize("n", [2, 4, 8, 16])
    def test_move_is_n(self, n):
        assert cmem_op_cycles(CMemOp.MOVE_C, n) == n

    def test_setrow_single_cycle(self):
        assert cmem_op_cycles(CMemOp.SETROW_C) == 1

    def test_shiftrow_read_plus_write(self):
        assert cmem_op_cycles(CMemOp.SHIFTROW_C) == 2

    def test_remote_rows_single_cycle_occupancy(self):
        assert cmem_op_cycles(CMemOp.LOADROW_RC) == 1
        assert cmem_op_cycles(CMemOp.STOREROW_RC) == 1

    def test_invalid_width(self):
        with pytest.raises(CMemError):
            cmem_op_cycles(CMemOp.MAC_C, 0)

    def test_cost_dataclass(self):
        cost = CMemOpCost.of(CMemOp.MAC_C, 8)
        assert cost.cycles == 64
        assert cost.op is CMemOp.MAC_C


class TestWordGranularityBound:
    """Operands are bounded by the 32-bit word granularity of a CMem row."""

    def test_max_width_accepted(self):
        from repro.cmem.isa import MAX_OPERAND_BITS

        assert MAX_OPERAND_BITS == 32
        assert cmem_op_cycles(CMemOp.MAC_C, 32) == 1024
        assert cmem_op_cycles(CMemOp.MOVE_C, 32) == 32

    @pytest.mark.parametrize("n", [33, 64, 256])
    def test_over_width_rejected(self, n):
        for op in (CMemOp.MAC_C, CMemOp.MOVE_C):
            with pytest.raises(CMemError, match="word granularity"):
                cmem_op_cycles(op, n)

    def test_boundary_is_exclusive(self):
        cmem_op_cycles(CMemOp.MAC_C, 32)  # 32 is legal
        with pytest.raises(CMemError):
            cmem_op_cycles(CMemOp.MAC_C, 33)  # 33 is not
