"""Tests for CMem slices and the slice-0 transpose buffer."""

import numpy as np
import pytest

from repro.cmem.slice import CMemSlice, TransposeBuffer
from repro.errors import CMemError, RowIndexError


class TestCMemSlice:
    def test_geometry(self):
        s = CMemSlice(1)
        assert s.ROWS == 64 and s.COLS == 256

    def test_row_bounds(self):
        s = CMemSlice(1)
        with pytest.raises(RowIndexError):
            s.read_row(64)

    def test_set_row(self):
        s = CMemSlice(1)
        s.set_row(5, 1)
        assert s.read_row(5).sum() == 256
        s.set_row(5, 0)
        assert s.read_row(5).sum() == 0
        with pytest.raises(CMemError):
            s.set_row(5, 2)

    def test_shift_row_right_by_words(self):
        s = CMemSlice(1)
        bits = np.zeros(256, dtype=np.uint8)
        bits[:32] = 1  # lane group 0
        s.write_row(0, bits)
        s.shift_row(0, 1)
        out = s.read_row(0)
        assert out[:32].sum() == 0
        assert out[32:64].sum() == 32

    def test_shift_row_left(self):
        s = CMemSlice(1)
        bits = np.zeros(256, dtype=np.uint8)
        bits[32:64] = 1
        s.write_row(0, bits)
        s.shift_row(0, -1)
        assert s.read_row(0)[:32].sum() == 32

    def test_shift_zero_is_noop(self):
        s = CMemSlice(1)
        bits = np.random.default_rng(0).integers(0, 2, 256).astype(np.uint8)
        s.write_row(0, bits)
        s.shift_row(0, 0)
        assert np.array_equal(s.read_row(0), bits)

    def test_shift_out_of_range(self):
        s = CMemSlice(1)
        with pytest.raises(CMemError):
            s.shift_row(0, 8)

    def test_default_csr_mask_enables_all_lanes(self):
        assert CMemSlice(1).csr_mask == 0xFF


class TestTransposeBuffer:
    def test_byte_roundtrip(self):
        tb = TransposeBuffer()
        tb.store_byte(0, 0xA5)
        assert tb.load_byte(0) == 0xA5

    def test_address_bounds(self):
        tb = TransposeBuffer()
        with pytest.raises(CMemError):
            tb.store_byte(2048, 0)
        with pytest.raises(CMemError):
            tb.store_byte(0, 256)

    def test_vertical_mapping(self):
        """Byte address a -> bit-line a % 256, rows 8*(a//256) + bit."""
        tb = TransposeBuffer()
        tb.store_byte(5, 0b00000001)  # column 5, group 0
        assert tb.read_row(0)[5] == 1
        assert tb.read_row(1)[5] == 0
        tb.store_byte(256 + 7, 0b10000000)  # column 7, group 1
        assert tb.read_row(8 + 7)[7] == 1

    def test_sequential_bytes_land_transposed(self):
        """A plain store stream produces a transposed vector (Fig. 5)."""
        tb = TransposeBuffer()
        values = list(range(200))
        for i, v in enumerate(values):
            tb.store_byte(i, v)
        out = tb.load_vector(0, len(values))
        assert out.tolist() == values

    def test_store_vector_16bit(self):
        tb = TransposeBuffer()
        tb.store_vector(0, [0x1234, 0xBEEF], n_bits=16)
        out = tb.load_vector(0, 2, n_bits=16)
        assert out.tolist() == [0x1234, 0xBEEF]

    def test_store_vector_signed_view(self):
        tb = TransposeBuffer()
        tb.store_vector(0, [-1, -128, 127], n_bits=8)
        out = tb.load_vector(0, 3, n_bits=8, signed=True)
        assert out.tolist() == [-1, -128, 127]

    def test_store_vector_bounds(self):
        tb = TransposeBuffer()
        with pytest.raises(CMemError):
            tb.store_vector(0, list(range(300)))
        with pytest.raises(CMemError):
            tb.store_vector(8, [1])
        with pytest.raises(CMemError):
            tb.store_vector(0, [1], n_bits=12)
