"""Tests for the full computing memory: the MAC primitive above all."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cmem.cmem import CMem, CMemConfig
from repro.errors import CMemError, ConfigurationError, SliceIndexError


@pytest.fixture
def cmem():
    return CMem()


class TestConfig:
    def test_paper_design_point(self):
        cfg = CMemConfig()
        assert cfg.num_slices == 8
        assert cfg.capacity_bytes == 16 * 1024
        assert cfg.num_compute_slices == 7

    def test_needs_two_slices(self):
        with pytest.raises(ConfigurationError):
            CMemConfig(num_slices=1)

    def test_fixed_slice_geometry(self):
        with pytest.raises(ConfigurationError):
            CMemConfig(rows=128)


class TestSliceAddressing:
    def test_slice_zero_is_transpose_buffer(self, cmem):
        assert cmem.slice(0) is cmem.slice0

    def test_compute_slice_range(self, cmem):
        assert cmem.slice(7).index == 7
        with pytest.raises(SliceIndexError):
            cmem.slice(8)


class TestMAC:
    @given(st.integers(0, 2 ** 32 - 1))
    @settings(max_examples=20, deadline=None)
    def test_signed_dot_product(self, seed):
        rng = np.random.default_rng(seed)
        a = rng.integers(-128, 128, 256)
        b = rng.integers(-128, 128, 256)
        cmem = CMem()
        cmem.store_vector_transposed(1, 0, a, 8, signed=True)
        cmem.store_vector_transposed(1, 8, b, 8, signed=True)
        assert cmem.mac(1, 0, 8, 8, signed=True) == int(np.dot(a, b))

    @given(st.integers(0, 2 ** 32 - 1))
    @settings(max_examples=10, deadline=None)
    def test_unsigned_dot_product(self, seed):
        rng = np.random.default_rng(seed)
        a = rng.integers(0, 256, 256)
        b = rng.integers(0, 256, 256)
        cmem = CMem()
        cmem.store_vector_transposed(2, 0, a, 8, signed=False)
        cmem.store_vector_transposed(2, 8, b, 8, signed=False)
        assert cmem.mac(2, 0, 8, 8, signed=False) == int(np.dot(a, b))

    @pytest.mark.parametrize("n_bits", [2, 4, 16])
    def test_other_precisions(self, cmem, n_bits):
        rng = np.random.default_rng(n_bits)
        lo, hi = -(1 << (n_bits - 1)), (1 << (n_bits - 1))
        a = rng.integers(lo, hi, 256)
        b = rng.integers(lo, hi, 256)
        cmem.store_vector_transposed(1, 0, a, n_bits, signed=True)
        cmem.store_vector_transposed(1, n_bits, b, n_bits, signed=True)
        assert cmem.mac(1, 0, n_bits, n_bits, signed=True) == int(np.dot(a, b))

    def test_csr_mask_restricts_lanes(self, cmem):
        rng = np.random.default_rng(0)
        a = rng.integers(-128, 128, 256)
        b = rng.integers(-128, 128, 256)
        cmem.store_vector_transposed(3, 0, a, 8, signed=True)
        cmem.store_vector_transposed(3, 8, b, 8, signed=True)
        got = cmem.mac(3, 0, 8, 8, signed=True, mask=0x03)
        assert got == int(np.dot(a[:64], b[:64]))

    def test_mac_on_slice0_rejected(self, cmem):
        with pytest.raises(CMemError):
            cmem.mac(0, 0, 8, 8)

    def test_overlapping_operands_rejected(self, cmem):
        with pytest.raises(CMemError):
            cmem.mac(1, 0, 4, 8)

    def test_rows_beyond_slice_rejected(self, cmem):
        with pytest.raises(CMemError):
            cmem.mac(1, 60, 0, 8)

    def test_cycle_cost_accounted(self, cmem):
        cmem.store_vector_transposed(1, 0, [1], 8, signed=True)
        cmem.store_vector_transposed(1, 8, [1], 8, signed=True)
        before = cmem.stats.busy_cycles
        cmem.mac(1, 0, 8, 8)
        assert cmem.stats.busy_cycles - before == 64
        assert cmem.stats.macs == 1


class TestMoveAndRows:
    def test_move_copies_vector(self, cmem):
        values = np.arange(-128, 128)
        cmem.store_vector_transposed(1, 8, values, 8, signed=True)
        cmem.move(1, 8, 5, 16, 8)
        out = cmem.load_vector_transposed(5, 16, 256, 8, signed=True)
        assert np.array_equal(out, values)
        assert cmem.stats.moves == 1

    def test_move_bounds(self, cmem):
        with pytest.raises(CMemError):
            cmem.move(1, 60, 2, 0, 8)

    def test_set_row(self, cmem):
        cmem.set_row(4, 10, 1)
        assert cmem.slice(4).read_row(10).sum() == 256
        assert cmem.stats.set_rows == 1

    def test_shift_row(self, cmem):
        cmem.set_row(2, 0, 1)
        cmem.shift_row(2, 0, 4)
        assert cmem.slice(2).read_row(0)[:128].sum() == 0
        assert cmem.stats.shift_rows == 1

    def test_remote_row_roundtrip(self, cmem):
        other = CMem()
        cmem.store_vector_transposed(1, 0, [9, 8, 7], 8, signed=True)
        for k in range(8):
            bits = cmem.read_row(1, k)
            other.write_row(2, 8 + k, bits)
        out = other.load_vector_transposed(2, 8, 3, 8, signed=True)
        assert out.tolist() == [9, 8, 7]
        assert cmem.stats.remote_rows == 8
        assert other.stats.remote_rows == 8


class TestEnergyAccounting:
    def test_mac_and_move_energy(self, cmem):
        cmem.store_vector_transposed(1, 0, [1], 8, signed=True)
        cmem.store_vector_transposed(1, 8, [1], 8, signed=True)
        base = cmem.energy.total_pj
        cmem.mac(1, 0, 8, 8)
        assert cmem.energy.total_pj - base == pytest.approx(28.25)
        base = cmem.energy.total_pj
        cmem.move(1, 0, 2, 0, 8)
        assert cmem.energy.total_pj - base == pytest.approx(52.75)

    def test_vertical_write_energy(self, cmem):
        base = cmem.energy.total_pj
        cmem.store_vector_transposed(1, 0, [1, 2, 3, 4], 8, signed=True)
        assert cmem.energy.total_pj - base == pytest.approx(4 * 4.75)


class TestStagingHelpers:
    def test_column_offset(self, cmem):
        cmem.store_vector_transposed(1, 0, [5, 6], 8, signed=True, col_offset=100)
        out = cmem.load_vector_transposed(1, 0, 2, 8, signed=True, col_offset=100)
        assert out.tolist() == [5, 6]

    def test_bounds(self, cmem):
        with pytest.raises(CMemError):
            cmem.store_vector_transposed(1, 60, [1], 8)
        with pytest.raises(CMemError):
            cmem.store_vector_transposed(1, 0, [1] * 10, 8, col_offset=250)
