"""Differential tests: vectorized MAC engine vs. the per-pair reference.

The fast path must be indistinguishable from the reference in *everything*
observable: MAC results, CMem cycle/op stats, SRAM access counters,
energy totals and accumulator add tallies.  These tests stage identical
operands into two CMems — one per path — and compare the lot.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cmem.cmem import CMem


def _stage(cmem: CMem, slice_index, base_row, values, n_bits, signed):
    cmem.store_vector_transposed(
        slice_index, base_row, values, n_bits, signed=signed
    )


def _observable(cmem: CMem, slice_index: int):
    return (
        dataclasses.asdict(cmem.stats),
        dataclasses.asdict(cmem.slice(slice_index).array.stats),
        round(cmem.energy.total_pj, 9),
        {op: round(pj, 9) for op, pj in cmem.energy.by_op.items()},
        cmem.accumulator.adds,
        cmem.accumulator.value,
    )


def _lane_select(mask: int, length: int) -> np.ndarray:
    lanes = np.repeat([(mask >> lane) & 1 for lane in range(8)], 32)
    return lanes[:length].astype(bool)


@st.composite
def mac_case(draw):
    n_bits = draw(st.sampled_from([8, 16]))
    signed = draw(st.booleans())
    mask = draw(st.sampled_from([0xFF, 0x0F, 0xA5, 0x01]))
    length = draw(st.integers(min_value=1, max_value=256))
    lo, hi = (
        (-(1 << (n_bits - 1)), (1 << (n_bits - 1)) - 1)
        if signed
        else (0, (1 << n_bits) - 1)
    )
    elements = st.integers(min_value=lo, max_value=hi)
    a = draw(st.lists(elements, min_size=length, max_size=length))
    num_weights = draw(st.integers(min_value=1, max_value=3))
    ws = [
        draw(st.lists(elements, min_size=length, max_size=length))
        for _ in range(num_weights)
    ]
    return n_bits, signed, mask, a, ws


class TestDifferentialMAC:
    @settings(max_examples=40, deadline=None)
    @given(mac_case())
    def test_fast_path_matches_reference_everywhere(self, case):
        n_bits, signed, mask, a, ws = case
        outputs = {}
        for fast in (False, True):
            cmem = CMem(fast_path=fast)
            _stage(cmem, 1, 0, a, n_bits, signed)
            rows_b = []
            for i, w in enumerate(ws):
                row = n_bits * (i + 1)
                _stage(cmem, 1, row, w, n_bits, signed)
                rows_b.append(row)
            cmem.slice(1).csr_mask = mask
            singles = [
                cmem.mac(1, 0, row, n_bits, signed=signed) for row in rows_b
            ]
            many = cmem.mac_many(1, 0, rows_b, n_bits, signed=signed)
            outputs[fast] = (singles, list(many), _observable(cmem, 1))

        assert outputs[True] == outputs[False]

        # Both paths must also be *correct*: a masked integer dot product.
        select = _lane_select(mask, len(a))
        a_arr, singles = np.asarray(a, dtype=np.int64), outputs[True][0]
        for w, got in zip(ws, singles):
            expected = int(a_arr[select] @ np.asarray(w, dtype=np.int64)[select])
            assert got == expected
        assert outputs[True][1] == singles

    @settings(max_examples=15, deadline=None)
    @given(mac_case())
    def test_mac_many_equals_mac_loop_on_one_cmem(self, case):
        n_bits, signed, mask, a, ws = case
        cmem = CMem()
        _stage(cmem, 1, 0, a, n_bits, signed)
        rows_b = []
        for i, w in enumerate(ws):
            row = n_bits * (i + 1)
            _stage(cmem, 1, row, w, n_bits, signed)
            rows_b.append(row)
        cmem.slice(1).csr_mask = mask
        loop = [cmem.mac(1, 0, row, n_bits, signed=signed) for row in rows_b]
        macs_per_pass = cmem.stats.macs
        many = cmem.mac_many(1, 0, rows_b, n_bits, signed=signed)
        assert list(many) == loop
        assert cmem.stats.macs == 2 * macs_per_pass


class TestFastPathStatsContract:
    def test_staged_mac_pins_exact_counters(self):
        """The canonical 8-bit staged MAC: counters pinned to the model.

        Staging two 8-bit vectors costs 8 reads + 8 writes each
        (read-modify-write per bit row); one MAC.C activates all 64 row
        pairs.  Identical for both engine paths by construction.
        """
        for fast in (False, True):
            cmem = CMem(fast_path=fast)
            _stage(cmem, 1, 0, list(range(-4, 4)), 8, True)
            _stage(cmem, 1, 8, list(range(8)), 8, True)
            result = cmem.mac(1, 0, 8, 8)
            assert result == int(
                np.arange(-4, 4) @ np.arange(8)
            )
            stats = cmem.slice(1).array.stats
            assert stats.reads == 16
            assert stats.writes == 16
            assert stats.compute_activations == 64
            assert cmem.stats.busy_cycles == 64
            assert cmem.accumulator.adds == 64

    def test_reference_path_available_per_call_site(self):
        cmem = CMem(fast_path=False)
        assert cmem.fast_path is False
        cmem = CMem()
        assert cmem.fast_path is True


class TestTransposeBufferAccessCounts:
    """Regression: vertical byte I/O is one 8T port access, not eight."""

    def test_store_byte_counts_one_write(self):
        cmem = CMem()
        cmem.slice0.store_byte(5, 0xA7)
        assert cmem.slice0.array.stats.writes == 1
        assert cmem.slice0.array.stats.reads == 0

    def test_load_byte_counts_one_read(self):
        cmem = CMem()
        cmem.slice0.store_byte(300, 0x5C)
        before = cmem.slice0.array.stats.reads
        assert cmem.slice0.load_byte(300) == 0x5C
        assert cmem.slice0.array.stats.reads == before + 1

    def test_store_vector_counts_one_access_per_byte(self):
        cmem = CMem()
        values = list(range(-100, 100))
        cmem.slice0.store_vector(0, [v & 0xFF for v in values], 8)
        assert cmem.slice0.array.stats.writes == len(values)
        out = cmem.slice0.load_vector(0, len(values), 8, signed=True)
        assert list(out) == values
        assert cmem.slice0.array.stats.reads == len(values)

    def test_16bit_vector_counts_two_bytes_per_element(self):
        cmem = CMem()
        values = [-30000, -1, 0, 1, 12345]
        cmem.slice0.store_vector(0, values, 16)
        assert cmem.slice0.array.stats.writes == 2 * len(values)
        out = cmem.slice0.load_vector(0, len(values), 16, signed=True)
        assert list(out) == values
        assert cmem.slice0.array.stats.reads == 2 * len(values)


class TestShiftRowNoOp:
    """Regression: ShiftRow.C by zero words is a no-op, charged nothing."""

    def test_zero_word_shift_charges_nothing(self):
        cmem = CMem()
        cmem.set_row(1, 3, 1)
        cycles, energy = cmem.stats.busy_cycles, cmem.energy.total_pj
        shifts = cmem.stats.shift_rows
        cmem.shift_row(1, 3, 0)
        assert cmem.stats.busy_cycles == cycles
        assert cmem.energy.total_pj == energy
        assert cmem.stats.shift_rows == shifts
        assert list(cmem.slice(1).read_row(3)) == [1] * 256

    def test_zero_word_shift_still_validates_rows(self):
        cmem = CMem()
        with pytest.raises(Exception):
            cmem.shift_row(1, 99, 0)

    def test_nonzero_shift_still_charged(self):
        cmem = CMem()
        cmem.set_row(1, 3, 1)
        cycles = cmem.stats.busy_cycles
        cmem.shift_row(1, 3, 1)
        assert cmem.stats.busy_cycles == cycles + 2
        assert cmem.stats.shift_rows == 1
