"""Tests for the bit-true SRAM array model."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, SRAMError
from repro.sram.array import SRAMArray, SRAMArrayConfig


@pytest.fixture
def array():
    return SRAMArray(SRAMArrayConfig(rows=64, cols=256))


class TestGeometry:
    def test_capacity(self):
        cfg = SRAMArrayConfig(rows=256, cols=256)
        assert cfg.capacity_bytes == 8 * 1024

    def test_cmem_slice_capacity(self):
        assert SRAMArrayConfig(rows=64, cols=256).capacity_bytes == 2048

    def test_invalid_geometry(self):
        with pytest.raises(ConfigurationError):
            SRAMArrayConfig(rows=0, cols=256)


class TestRowAccess:
    def test_write_read_roundtrip(self, array):
        bits = np.random.default_rng(0).integers(0, 2, 256).astype(np.uint8)
        array.write_row(3, bits)
        assert np.array_equal(array.read_row(3), bits)

    def test_read_returns_copy(self, array):
        array.write_row(0, np.ones(256, dtype=np.uint8))
        row = array.read_row(0)
        row[:] = 0
        assert array.read_row(0).sum() == 256

    def test_row_bounds(self, array):
        with pytest.raises(SRAMError):
            array.read_row(64)
        with pytest.raises(SRAMError):
            array.write_row(-1, np.zeros(256, dtype=np.uint8))

    def test_wrong_width_rejected(self, array):
        with pytest.raises(SRAMError):
            array.write_row(0, np.zeros(255, dtype=np.uint8))

    def test_non_binary_rejected(self, array):
        with pytest.raises(SRAMError):
            array.write_row(0, np.full(256, 2, dtype=np.uint8))

    def test_bit_slice_access(self, array):
        array.write_bits(5, 10, [1, 0, 1])
        assert array.read_bits(5, 10, 3).tolist() == [1, 0, 1]

    def test_bit_slice_bounds(self, array):
        with pytest.raises(SRAMError):
            array.read_bits(0, 254, 4)

    def test_stats_count_operations(self, array):
        array.write_row(0, np.zeros(256, dtype=np.uint8))
        array.read_row(0)
        array.activate_pair(0, 1)
        assert array.stats.writes == 1
        assert array.stats.reads == 1
        assert array.stats.compute_activations == 1


class TestComputeActivation:
    def test_same_row_rejected(self, array):
        with pytest.raises(SRAMError):
            array.activate_pair(2, 2)

    def test_and_nor_of_rows(self, array):
        a = np.array([1, 1, 0, 0] * 64, dtype=np.uint8)
        b = np.array([1, 0, 1, 0] * 64, dtype=np.uint8)
        array.write_row(0, a)
        array.write_row(1, b)
        sensed = array.activate_pair(0, 1)
        assert np.array_equal(sensed.and_bits, a & b)
        assert np.array_equal(sensed.nor_bits, (1 - a) & (1 - b))

    def test_activation_is_non_destructive(self, array):
        a = np.ones(256, dtype=np.uint8)
        array.write_row(0, a)
        array.write_row(1, a)
        array.activate_pair(0, 1)
        assert np.array_equal(array.read_row(0), a)
        assert np.array_equal(array.read_row(1), a)


class TestBulk:
    def test_load_snapshot_roundtrip(self, array):
        cells = np.random.default_rng(1).integers(0, 2, (64, 256)).astype(np.uint8)
        array.load(cells)
        assert np.array_equal(array.snapshot(), cells)

    def test_load_shape_checked(self, array):
        with pytest.raises(SRAMError):
            array.load(np.zeros((2, 2), dtype=np.uint8))

    def test_clear(self, array):
        array.write_row(0, np.ones(256, dtype=np.uint8))
        array.clear()
        assert array.snapshot().sum() == 0

    def test_rows_view(self, array):
        array.write_row(1, np.ones(256, dtype=np.uint8))
        view = array.rows_view([0, 1])
        assert view.shape == (2, 256)
        assert view[1].sum() == 256
