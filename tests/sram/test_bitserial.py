"""Tests for Neural-Cache-style element-wise bit-serial arithmetic."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SRAMError
from repro.sram.array import SRAMArray, SRAMArrayConfig
from repro.sram.bitserial import BitSerialALU, BitSerialCosts
from repro.utils.bitops import int_to_bits, bits_to_int


def make_alu(rows=256, cols=256):
    return BitSerialALU(SRAMArray(SRAMArrayConfig(rows=rows, cols=cols)))


def stage(alu, rows, values, n_bits, signed=False):
    bits = int_to_bits(np.asarray(values), n_bits, signed=signed)
    padded = np.zeros((n_bits, alu.array.config.cols), dtype=np.uint8)
    padded[:, : len(values)] = bits
    for i, row in enumerate(rows):
        alu.array.write_row(row, padded[i])


def read(alu, rows, count, signed=False):
    bits = np.stack([alu.array.read_row(r)[:count] for r in rows])
    return bits_to_int(bits, signed=signed)


class TestCosts:
    def test_paper_closed_forms(self):
        # Neural Cache: n+1 for addition, n^2+5n-2 for multiplication.
        assert BitSerialCosts.add(8) == 9
        assert BitSerialCosts.multiply(8) == 102
        assert BitSerialCosts.multiply(4) == 34

    def test_reduce_requires_power_of_two(self):
        with pytest.raises(SRAMError):
            BitSerialCosts.reduce(100, 8)

    def test_reduce_has_log_steps(self):
        # 256 lanes -> 8 shift+add iterations.
        cost = BitSerialCosts.reduce(256, 8)
        manual = sum((8 + k) * 2 + 1 for k in range(8))
        assert cost == manual


class TestAdd:
    @given(
        st.lists(st.integers(0, 255), min_size=1, max_size=64),
        st.integers(0, 2 ** 32 - 1),
    )
    @settings(max_examples=25, deadline=None)
    def test_matches_numpy(self, values, seed):
        rng = np.random.default_rng(seed)
        b = rng.integers(0, 256, len(values))
        alu = make_alu(rows=32)
        stage(alu, range(0, 8), values, 8)
        stage(alu, range(8, 16), b, 8)
        alu.vector_add(list(range(0, 8)), list(range(8, 16)), list(range(16, 25)))
        out = read(alu, range(16, 25), len(values))
        assert np.array_equal(out, np.asarray(values) + b)

    def test_carry_out_row(self):
        alu = make_alu(rows=32)
        stage(alu, range(0, 8), [255], 8)
        stage(alu, range(8, 16), [255], 8)
        alu.vector_add(list(range(0, 8)), list(range(8, 16)), list(range(16, 25)))
        assert read(alu, range(16, 25), 1)[0] == 510

    def test_overlap_rejected(self):
        alu = make_alu(rows=32)
        with pytest.raises(SRAMError):
            alu.vector_add(list(range(0, 8)), list(range(8, 16)), list(range(7, 16)))

    def test_width_mismatch_rejected(self):
        alu = make_alu(rows=32)
        with pytest.raises(SRAMError):
            alu.vector_add([0, 1], [2], [3, 4, 5])

    def test_cycle_accounting(self):
        alu = make_alu(rows=32)
        stage(alu, range(0, 8), [1], 8)
        stage(alu, range(8, 16), [2], 8)
        alu.vector_add(list(range(0, 8)), list(range(8, 16)), list(range(16, 25)))
        assert alu.cycles == BitSerialCosts.add(8)


class TestMultiply:
    @given(st.integers(0, 2 ** 32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_unsigned_matches_numpy(self, seed):
        rng = np.random.default_rng(seed)
        a = rng.integers(0, 256, 32)
        b = rng.integers(0, 256, 32)
        alu = make_alu(rows=64)
        stage(alu, range(0, 8), a, 8)
        stage(alu, range(8, 16), b, 8)
        alu.vector_multiply(list(range(0, 8)), list(range(8, 16)), list(range(16, 32)))
        assert np.array_equal(read(alu, range(16, 32), 32), a * b)

    def test_signed_product(self):
        alu = make_alu(rows=64)
        stage(alu, range(0, 8), [-3, 5], 8, signed=True)
        stage(alu, range(8, 16), [7, -2], 8, signed=True)
        alu.vector_multiply(
            list(range(0, 8)), list(range(8, 16)), list(range(16, 32)), signed=True
        )
        out = read(alu, range(16, 32), 2, signed=True)
        assert out.tolist() == [-21, -10]

    def test_result_rows_requirement(self):
        alu = make_alu(rows=64)
        with pytest.raises(SRAMError):
            alu.vector_multiply(list(range(0, 8)), list(range(8, 16)), [20])


class TestCopyAndReduce:
    def test_copy(self):
        alu = make_alu(rows=32)
        stage(alu, range(0, 8), [42, 7], 8)
        alu.vector_copy(list(range(0, 8)), list(range(8, 16)))
        assert read(alu, range(8, 16), 2).tolist() == [42, 7]
        with pytest.raises(SRAMError):
            alu.vector_copy([0], [1, 2])

    @given(st.integers(0, 2 ** 32 - 1))
    @settings(max_examples=15, deadline=None)
    def test_reduce_sums_all_lanes(self, seed):
        rng = np.random.default_rng(seed)
        values = rng.integers(0, 256, 256)
        alu = make_alu(rows=64)
        stage(alu, range(0, 8), values, 8)
        rows = alu.reduce(list(range(0, 8)), 256, scratch_rows=list(range(8, 32)))
        total = read(alu, rows, 1)[0]
        assert total == values.sum()

    def test_reduce_scratch_requirement(self):
        alu = make_alu(rows=32)
        with pytest.raises(SRAMError):
            alu.reduce(list(range(0, 8)), 256, scratch_rows=[8, 9])
