"""SRAM timing constants and the energy accumulator."""

import pytest

from repro.sram.energy import EnergyAccumulator, SRAMEnergy
from repro.sram.timing import SRAMTiming


class TestTiming:
    def test_one_ghz_default(self):
        timing = SRAMTiming()
        assert timing.cycles_to_seconds(1_000_000_000) == pytest.approx(1.0)

    def test_compute_activation_single_cycle(self):
        assert SRAMTiming().compute_activation_cycles == 1


class TestEnergyAccumulator:
    def test_paper_constants(self):
        energy = SRAMEnergy()
        assert energy.vertical_write_pj == 4.75
        assert energy.move_pj == 52.75
        assert energy.mac_pj == 28.25
        assert energy.remote_row_pj == 53.01

    def test_charging_by_op(self):
        acc = EnergyAccumulator()
        acc.charge("mac", 2)
        acc.charge("move")
        assert acc.total_pj == pytest.approx(2 * 28.25 + 52.75)
        assert acc.by_op["mac"] == pytest.approx(56.5)

    def test_joules_conversion(self):
        acc = EnergyAccumulator()
        acc.charge("vertical_write", 1000)
        assert acc.total_joules == pytest.approx(4.75e-9)

    def test_unknown_op_rejected(self):
        with pytest.raises(KeyError):
            EnergyAccumulator().charge("teleport")
