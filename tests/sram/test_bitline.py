"""Property tests for the bit-line computing primitive."""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.sram.bitline import bitline_and_nor

bit_rows = st.lists(st.integers(0, 1), min_size=1, max_size=256).map(
    lambda bits: np.array(bits, dtype=np.uint8)
)


@given(bit_rows)
def test_and_nor_against_self_like_rows(row):
    other = 1 - row
    sensed = bitline_and_nor(row, other)
    # A bit and its complement can never both be 1 (AND) nor both 0 (NOR).
    assert sensed.and_bits.sum() == 0
    assert sensed.nor_bits.sum() == 0


@given(st.integers(1, 256), st.integers(0, 2 ** 32 - 1))
def test_all_derived_gates(width, seed):
    rng = np.random.default_rng(seed)
    a = rng.integers(0, 2, width).astype(np.uint8)
    b = rng.integers(0, 2, width).astype(np.uint8)
    sensed = bitline_and_nor(a, b)
    assert np.array_equal(sensed.and_bits, a & b)
    assert np.array_equal(sensed.nor_bits, (~(a | b)) & 1)
    assert np.array_equal(sensed.or_bits, a | b)
    assert np.array_equal(sensed.xor_bits, a ^ b)


def test_symmetry():
    a = np.array([1, 0, 1, 0], dtype=np.uint8)
    b = np.array([1, 1, 0, 0], dtype=np.uint8)
    ab, ba = bitline_and_nor(a, b), bitline_and_nor(b, a)
    assert np.array_equal(ab.and_bits, ba.and_bits)
    assert np.array_equal(ab.nor_bits, ba.nor_bits)
