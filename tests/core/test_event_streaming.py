"""Event-driven per-core simulation vs the tandem-queue model."""

import pytest

from repro.core.event_streaming import EventDrivenSegmentSimulator
from repro.core.perfmodel import PerformanceModel
from repro.core.streaming import SegmentSimulator
from repro.errors import SimulationError
from repro.nn.workloads import ConvLayerSpec


@pytest.fixture(scope="module")
def model():
    return PerformanceModel()


def conv(index, h=14, c=256, m=50, **kw):
    defaults = dict(r=3, s=3, stride=1, padding=1)
    defaults.update(kw)
    return ConvLayerSpec(index, f"conv{index}", h=h, w=h, c=c, m=m, **defaults)


def timings(model, *pairs):
    out = []
    for i, (spec, nodes) in enumerate(pairs):
        out.append(model.layer_timing(spec, nodes, from_dram=(i == 0)))
    return out


class TestValidation:
    def test_single_layer_matches_tandem(self, model):
        ts = timings(model, (conv(1), 10))
        tandem = SegmentSimulator(ts).run().total_cycles
        event = EventDrivenSegmentSimulator(ts).run().total_cycles
        assert event == pytest.approx(tandem, rel=0.1)

    def test_chained_layers_match_tandem(self, model):
        ts = timings(model, (conv(1), 25), (conv(2), 25), (conv(3), 25))
        tandem = SegmentSimulator(ts).run().total_cycles
        event = EventDrivenSegmentSimulator(ts).run().total_cycles
        assert event == pytest.approx(tandem, rel=0.15)

    def test_all_vectors_complete(self, model):
        ts = timings(model, (conv(1), 10), (conv(2), 10))
        result = EventDrivenSegmentSimulator(ts).run()
        assert result.layer_finish[1] > 0
        assert result.layer_finish[2] >= result.layer_finish[1]
        assert result.events_processed > 0


class TestForwardPolicy:
    def test_after_compute_pays_fill(self, model):
        """Algorithm 1 forwards after computing; eager forwarding cuts the
        chain-fill term — biggest on long chains."""
        ts = timings(model, (conv(1, m=100), 50))
        eager = EventDrivenSegmentSimulator(ts, forward_policy="eager").run()
        after = EventDrivenSegmentSimulator(ts, forward_policy="after_compute").run()
        assert after.total_cycles > eager.total_cycles

    def test_unknown_policy_rejected(self, model):
        ts = timings(model, (conv(1), 10))
        with pytest.raises(SimulationError):
            EventDrivenSegmentSimulator(ts, forward_policy="teleport")

    def test_empty_segment_rejected(self):
        with pytest.raises(SimulationError):
            EventDrivenSegmentSimulator([])


class TestShortcutWiring:
    def test_downsample_consumer_subsamples(self, model):
        producer = conv(1, h=14, m=50)
        shortcut = ConvLayerSpec(2, "sc", h=14, w=14, c=256, m=64,
                                 r=1, s=1, stride=2, padding=0)
        ts = timings(model, (producer, 10), (shortcut, 2))
        result = EventDrivenSegmentSimulator(ts).run()
        assert result.layer_finish[2] > 0
