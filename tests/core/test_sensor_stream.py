"""Arrival-driven multi-DNN serving."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.sensor_stream import (
    SensorStreamSimulator,
    ServingResult,
    StreamReport,
    StreamSpec,
)
from repro.errors import SimulationError
from repro.nn.workloads import ConvLayerSpec, NetworkSpec, small_cnn_spec
from repro.utils.events import EventQueue


def net(name, m=32, h=14, layers=2):
    specs = tuple(
        ConvLayerSpec(i + 1, f"{name}{i}", h=h, w=h, c=64, m=m)
        for i in range(layers)
    )
    return NetworkSpec(name=name, layers=specs)


@pytest.fixture(scope="module")
def streams():
    # Rates chosen near chip saturation: each stream fits comfortably in
    # its spatial partition, but their combined demand oversubscribes a
    # single time-shared array — the regime the MIMD argument targets.
    return [
        StreamSpec(net("camera", m=64, h=28), period_ms=1.2),
        StreamSpec(net("lidar", m=32, h=14), period_ms=0.5),
        StreamSpec(small_cnn_spec(), period_ms=0.4),
    ]


@pytest.fixture(scope="module")
def simulator():
    return SensorStreamSimulator()


class TestServing:
    def test_all_frames_served_under_spatial(self, simulator, streams):
        result = simulator.run(streams, duration_ms=100)
        for stream in streams:
            report = result.reports[stream.label]
            assert report.completed >= report.frames - 1  # last may overrun

    def test_latency_includes_queueing(self, simulator, streams):
        result = simulator.run(streams, duration_ms=100)
        for report in result.reports.values():
            assert report.mean_latency_ms > 0
            assert report.max_latency_ms >= report.mean_latency_ms

    def test_spatial_beats_time_shared(self, simulator, streams):
        spatial = simulator.run(streams, duration_ms=100, policy="spatial")
        shared = simulator.run(streams, duration_ms=100, policy="time-shared")
        assert spatial.worst_mean_latency_ms < shared.worst_mean_latency_ms
        assert spatial.total_completed >= shared.total_completed

    def test_deadline_accounting(self, simulator, streams):
        result = simulator.run(streams, duration_ms=100)
        camera = result.reports["camera"]
        # Misses against an impossible deadline = all frames; against a
        # generous one = none.
        assert camera.deadline_misses(0.0001) == camera.completed
        assert camera.deadline_misses(1e9) == 0

    def test_unknown_policy(self, simulator, streams):
        with pytest.raises(SimulationError):
            simulator.run(streams, duration_ms=10, policy="magic")

    def test_rates(self):
        stream = StreamSpec(small_cnn_spec(), period_ms=40.0)
        assert stream.rate_hz == pytest.approx(25.0)
        assert stream.label == "small_cnn"


def legacy_run(scheduler, streams, duration_ms, policy):
    """The pre-serving `sensor_stream` loop, replicated verbatim.

    Before the :mod:`repro.serving` subsystem, this module tracked one
    ``server_free`` float per server and folded each arrival inline:
    ``start = max(t, free); done = start + service``.  The queue-based
    simulator must reproduce those floats *bit for bit* — same arithmetic,
    same operation order — which this differential oracle pins.
    """
    if policy == "spatial":
        run = scheduler.run([s.network for s in streams])
        service = {
            stream.label: model_run.latency_ms
            for stream, model_run in zip(streams, run.runs)
        }
        servers = {stream.label: stream.label for stream in streams}
    else:
        service = {
            stream.label: scheduler.simulator.run(
                stream.network, "heuristic"
            ).latency_ms
            for stream in streams
        }
        servers = {stream.label: "chip" for stream in streams}

    queue = EventQueue()
    server_free = {}
    reports = {s.label: StreamReport(label=s.label) for s in streams}

    def arrive(stream, t):
        report = reports[stream.label]
        report.frames += 1
        server = servers[stream.label]
        start = max(t, server_free.get(server, 0.0))
        done = start + service[stream.label]
        server_free[server] = done
        if done <= duration_ms:
            report.completed += 1
            report.latencies_ms.append(done - t)
        next_t = t + stream.period_ms
        if next_t < duration_ms:
            queue.schedule(next_t, lambda: arrive(stream, next_t))

    for stream in streams:
        queue.schedule(0.0, lambda s=stream: arrive(s, 0.0))
    queue.run()
    return ServingResult(reports=reports)


class TestDifferentialAgainstLegacyLoop:
    """The serving-backed paths are bit-identical to the old inline loop."""

    @pytest.mark.parametrize("policy", ["spatial", "time-shared"])
    def test_latencies_bit_identical(self, simulator, streams, policy):
        new = simulator.run(streams, duration_ms=100, policy=policy)
        old = legacy_run(simulator.scheduler, streams, 100, policy)
        assert set(new.reports) == set(old.reports)
        for label, old_report in old.reports.items():
            new_report = new.reports[label]
            assert new_report.frames == old_report.frames
            assert new_report.completed == old_report.completed
            # Exact float equality, not approx: the refactor must not
            # perturb a single ULP of the old arithmetic.
            assert new_report.latencies_ms == old_report.latencies_ms

    def test_awkward_periods_and_ties(self, simulator):
        # Colliding arrival times (4.2 has no exact binary representation;
        # 0.7 vs 1.4 collide every other frame) exercise the equal-time
        # ordering, where bit-identity is easiest to lose.
        streams = [
            StreamSpec(net("x", m=32, h=14), period_ms=0.7),
            StreamSpec(net("y", m=32, h=14, layers=1), period_ms=1.4),
            StreamSpec(small_cnn_spec(), period_ms=4.2),
        ]
        for policy in ("spatial", "time-shared"):
            new = simulator.run(streams, duration_ms=50, policy=policy)
            old = legacy_run(simulator.scheduler, streams, 50, policy)
            for label, old_report in old.reports.items():
                assert new.reports[label].latencies_ms == old_report.latencies_ms


class TestDeadlineMissProperties:
    @given(
        latencies=st.lists(
            st.floats(min_value=0.0, max_value=1e4,
                      allow_nan=False, allow_infinity=False),
            max_size=50,
        ),
        deadlines=st.lists(
            st.floats(min_value=0.0, max_value=1.2e4,
                      allow_nan=False, allow_infinity=False),
            min_size=2, max_size=10,
        ),
    )
    def test_monotone_and_consistent_with_latency_list(self, latencies, deadlines):
        report = StreamReport(
            label="s", frames=len(latencies), completed=len(latencies),
            latencies_ms=latencies,
        )
        for d in deadlines:
            assert report.deadline_misses(d) == sum(
                1 for lat in latencies if lat > d
            )
        # Relaxing the deadline never increases the miss count.
        misses = [report.deadline_misses(d) for d in sorted(deadlines)]
        assert misses == sorted(misses, reverse=True)
        assert report.deadline_misses(float("inf")) == 0
