"""Arrival-driven multi-DNN serving."""

import pytest

from repro.core.sensor_stream import SensorStreamSimulator, StreamSpec
from repro.errors import SimulationError
from repro.nn.workloads import ConvLayerSpec, NetworkSpec, small_cnn_spec


def net(name, m=32, h=14, layers=2):
    specs = tuple(
        ConvLayerSpec(i + 1, f"{name}{i}", h=h, w=h, c=64, m=m)
        for i in range(layers)
    )
    return NetworkSpec(name=name, layers=specs)


@pytest.fixture(scope="module")
def streams():
    # Rates chosen near chip saturation: each stream fits comfortably in
    # its spatial partition, but their combined demand oversubscribes a
    # single time-shared array — the regime the MIMD argument targets.
    return [
        StreamSpec(net("camera", m=64, h=28), period_ms=1.2),
        StreamSpec(net("lidar", m=32, h=14), period_ms=0.5),
        StreamSpec(small_cnn_spec(), period_ms=0.4),
    ]


@pytest.fixture(scope="module")
def simulator():
    return SensorStreamSimulator()


class TestServing:
    def test_all_frames_served_under_spatial(self, simulator, streams):
        result = simulator.run(streams, duration_ms=100)
        for stream in streams:
            report = result.reports[stream.label]
            assert report.completed >= report.frames - 1  # last may overrun

    def test_latency_includes_queueing(self, simulator, streams):
        result = simulator.run(streams, duration_ms=100)
        for report in result.reports.values():
            assert report.mean_latency_ms > 0
            assert report.max_latency_ms >= report.mean_latency_ms

    def test_spatial_beats_time_shared(self, simulator, streams):
        spatial = simulator.run(streams, duration_ms=100, policy="spatial")
        shared = simulator.run(streams, duration_ms=100, policy="time-shared")
        assert spatial.worst_mean_latency_ms < shared.worst_mean_latency_ms
        assert spatial.total_completed >= shared.total_completed

    def test_deadline_accounting(self, simulator, streams):
        result = simulator.run(streams, duration_ms=100)
        camera = result.reports["camera"]
        # Misses against an impossible deadline = all frames; against a
        # generous one = none.
        assert camera.deadline_misses(0.0001) == camera.completed
        assert camera.deadline_misses(1e9) == 0

    def test_unknown_policy(self, simulator, streams):
        with pytest.raises(SimulationError):
            simulator.run(streams, duration_ms=10, policy="magic")

    def test_rates(self):
        stream = StreamSpec(small_cnn_spec(), period_ms=40.0)
        assert stream.rate_hz == pytest.approx(25.0)
        assert stream.label == "small_cnn"
