"""The Algorithm-1 kernel generator: bit-true correctness on small layers."""

import numpy as np
import pytest

from repro.core.conv_kernel import RequantParams
from repro.core.node import MAICCNode
from repro.nn.workloads import ConvLayerSpec


def small_spec(**kw):
    defaults = dict(h=4, w=4, c=32, m=2, r=3, s=3, stride=1, padding=0)
    defaults.update(kw)
    return ConvLayerSpec(0, "small", **defaults)


def run_node(spec, seed=0, **node_kw):
    rng = np.random.default_rng(seed)
    weights = rng.integers(-128, 128, size=(spec.m, spec.c, spec.r, spec.s))
    bias = rng.integers(-500, 500, size=spec.m)
    ifmap = rng.integers(-128, 128, size=(spec.c, spec.h, spec.w))
    node = MAICCNode(spec, weights, bias, **node_kw)
    return node, node.run(ifmap), node.reference(ifmap)


class TestBitTrueness:
    def test_valid_convolution(self):
        node, result, reference = run_node(small_spec())
        assert np.array_equal(result.psums, reference)

    def test_padded_convolution(self):
        node, result, reference = run_node(small_spec(padding=1))
        assert np.array_equal(result.psums, reference)

    def test_strided_convolution(self):
        node, result, reference = run_node(small_spec(h=6, w=6, stride=2, padding=1))
        assert np.array_equal(result.psums, reference)

    def test_1x1_convolution(self):
        node, result, reference = run_node(small_spec(r=1, s=1, padding=0))
        assert np.array_equal(result.psums, reference)

    def test_multiple_seeds(self):
        for seed in range(3):
            _, result, reference = run_node(small_spec(), seed=seed)
            assert np.array_equal(result.psums, reference)

    def test_static_schedule_preserves_results(self):
        spec = small_spec(padding=1)
        rng = np.random.default_rng(3)
        weights = rng.integers(-128, 128, size=(spec.m, spec.c, spec.r, spec.s))
        bias = rng.integers(-500, 500, size=spec.m)
        ifmap = rng.integers(-128, 128, size=(spec.c, spec.h, spec.w))
        node = MAICCNode(spec, weights, bias)
        plain = node.run(ifmap)
        static = node.run(ifmap, static=True)
        assert np.array_equal(plain.psums, static.psums)
        assert static.stats.cycles <= plain.stats.cycles


class TestAuxFunctions:
    def test_relu_output_nonnegative(self):
        _, result, _ = run_node(small_spec())
        assert result.outputs.min() >= 0

    def test_requantization_applied(self):
        spec = small_spec()
        rng = np.random.default_rng(1)
        weights = rng.integers(-128, 128, size=(spec.m, spec.c, spec.r, spec.s))
        ifmap = rng.integers(-128, 128, size=(spec.c, spec.h, spec.w))
        requant = RequantParams.from_ratio(1 / 256.0)
        node = MAICCNode(spec, weights, requant=requant)
        result = node.run(ifmap)
        ref = node.reference(ifmap)
        # Kernel: out = relu((acc * mult + 128) >> 8) truncated to a byte.
        expected = np.maximum((ref * requant.mult + 128) >> 8, 0) & 0xFF
        assert np.array_equal(result.outputs, expected)


class TestInstructionStream:
    def test_categories_tagged(self):
        node, _, _ = run_node(small_spec())
        program = node.build_program()
        categories = {i.category for i in program}
        assert {"init", "recv_ifmap", "compute", "accumulate", "aux"} <= categories

    def test_macs_round_robin_across_slices(self):
        node, _, _ = run_node(small_spec(m=2))
        program = node.build_program()
        macs = [i for i in program if i.opcode == "mac.c"]
        slices = [i.cm["slice"] for i in macs[:4]]
        # Consecutive MACs target different slices whenever possible.
        assert len(set(slices)) > 1

    def test_instruction_count_scales_with_pixels(self):
        small = run_node(small_spec(h=4, w=4))[0].build_program()
        large = run_node(small_spec(h=6, w=6))[0].build_program()
        assert len(large) > len(small)

    def test_forwarding_emitted_when_enabled(self):
        node, result, _ = run_node(small_spec(), include_forward=True)
        program = node.build_program()
        assert any(i.opcode == "storerow.rc" for i in program)
        assert result.forwarded_rows == 16 * 8  # pixels * rows


class TestStaticAnalysis:
    """Generated kernels must lint clean and schedule predictably."""

    def test_generated_kernel_lints_clean(self):
        from repro.analysis import verify_program

        node, _, _ = run_node(small_spec())
        report = verify_program(node.build_program())
        assert report.clean, report.render()

    def test_schedule_prediction_matches_simulation(self):
        from repro.analysis import schedule_kernel

        spec = small_spec()
        rng = np.random.default_rng(0)
        weights = rng.integers(-128, 128, size=(spec.m, spec.c, spec.r, spec.s))
        bias = rng.integers(-500, 500, size=spec.m)
        ifmap = rng.integers(-128, 128, size=(spec.c, spec.h, spec.w))
        node = MAICCNode(spec, weights, bias)

        report = schedule_kernel(node.build_program())
        assert report.baseline.cycles == node.run(ifmap).stats.cycles
        assert report.scheduled.cycles == node.run(ifmap, static=True).stats.cycles
        assert report.predicted_saving > 0
