"""Multi-DNN spatial partitioning."""

import pytest

from repro.core.multi_dnn import MultiDNNResult, MultiDNNScheduler
from repro.errors import MappingError, SimulationError
from repro.nn.workloads import ConvLayerSpec, NetworkSpec, small_cnn_spec


def tiny_net(name, m=32, h=14, layers=2):
    specs = tuple(
        ConvLayerSpec(i + 1, f"{name}_c{i}", h=h, w=h, c=64, m=m)
        for i in range(layers)
    )
    return NetworkSpec(name=name, layers=specs)


@pytest.fixture(scope="module")
def scheduler():
    return MultiDNNScheduler()


class TestPartitioning:
    def test_shares_cover_array(self, scheduler):
        nets = [tiny_net("a"), tiny_net("b", m=64)]
        shares = scheduler.partition(nets)
        assert sum(shares) == 208
        assert all(s > 0 for s in shares)

    def test_heavier_model_gets_more_cores(self, scheduler):
        light = tiny_net("light", m=32, h=7)
        heavy = tiny_net("heavy", m=64, h=28)
        shares = scheduler.partition([light, heavy])
        assert shares[1] > shares[0]

    def test_empty_rejected(self, scheduler):
        with pytest.raises(MappingError):
            scheduler.partition([])

    def test_overcommitted_rejected(self):
        scheduler = MultiDNNScheduler(array_size=12)
        nets = [tiny_net("a", m=128, h=28), tiny_net("b", m=128, h=28)]
        with pytest.raises(MappingError):
            scheduler.partition(nets)


class TestConcurrentExecution:
    def test_parallel_beats_time_sharing(self, scheduler):
        nets = [tiny_net("a"), tiny_net("b"), small_cnn_spec()]
        result = scheduler.run(nets)
        assert result.parallel_latency_ms < result.time_shared_latency_ms
        assert result.speedup_vs_time_shared > 1.0

    def test_aggregate_throughput_counts_all_models(self, scheduler):
        nets = [tiny_net("a"), tiny_net("b")]
        result = scheduler.run(nets)
        assert result.aggregate_throughput == pytest.approx(
            sum(r.throughput for r in result.runs)
        )
        assert result.aggregate_throughput > result.time_shared_throughput

    def test_each_model_gets_its_partition(self, scheduler):
        nets = [tiny_net("a"), tiny_net("b")]
        result = scheduler.run(nets)
        for run in result.runs:
            for seg_run in run.result.runs:
                assert seg_run.segment.total_nodes <= run.partition_cores


class TestEmptyResult:
    def test_aggregates_raise_clearly_on_empty_runs(self):
        # Regression: these used to surface as a bare ValueError from
        # max() on an empty sequence.
        result = MultiDNNResult(runs=[], time_shared_latency_ms=1.0)
        with pytest.raises(SimulationError, match="no model runs"):
            result.parallel_latency_ms
        with pytest.raises(SimulationError, match="no model runs"):
            result.aggregate_throughput
        with pytest.raises(SimulationError, match="no model runs"):
            result.time_shared_throughput
        with pytest.raises(SimulationError, match="no model runs"):
            result.speedup_vs_time_shared


class TestPartitionHelpers:
    def test_minimum_cores_lower_bounds_every_share(self, scheduler):
        nets = [tiny_net("a"), tiny_net("b", m=64), small_cnn_spec()]
        shares = scheduler.partition(nets)
        for net_, share in zip(nets, shares):
            assert share >= scheduler.minimum_cores(net_)


class TestSpatialIsolation:
    def test_models_never_share_a_tile(self, scheduler):
        nets = [tiny_net("a"), tiny_net("b", m=64), small_cnn_spec()]
        result = scheduler.run(nets)
        tile_sets = [run.occupied_tiles() for run in result.runs]
        for i in range(len(tile_sets)):
            for j in range(i + 1, len(tile_sets)):
                assert not (tile_sets[i] & tile_sets[j]), (i, j)

    def test_regions_are_contiguous_snake_intervals(self, scheduler):
        nets = [tiny_net("a"), tiny_net("b", m=64)]
        result = scheduler.run(nets)
        starts = [run.region_start for run in result.runs]
        assert starts[0] == 0
        assert starts[1] == result.runs[0].partition_cores

    def test_chains_stay_adjacent_inside_regions(self, scheduler):
        nets = [tiny_net("a"), tiny_net("b", m=64)]
        result = scheduler.run(nets)
        for run in result.runs:
            for placement in run.placements:
                # Snake intervals keep consecutive cores within 1 hop
                # except at most at the interval's row boundaries.
                hops = [
                    h for idx in placement.dc
                    for h in placement.chain_hops(idx)
                ]
                assert sum(hops) / len(hops) < 1.5
