"""The streamed schedule computes exactly what layer-by-layer does."""

import numpy as np
import pytest

from repro.core.functional_streaming import StreamedSegmentExecutor
from repro.errors import ConfigurationError, SimulationError
from repro.nn.quantize import QConv2d


def make_qconv(c, m, r=3, stride=1, padding=1, seed=0):
    rng = np.random.default_rng(seed)
    return QConv2d(
        weight_q=rng.integers(-127, 128, size=(m, c, r, r)),
        bias_q=rng.integers(-50, 50, size=m),
        stride=stride,
        padding=padding,
        in_scale=0.05,
        w_scale=0.01,
        out_scale=0.04,
        n_bits=8,
    )


def reference_chain(layers, q_in):
    outs = []
    x = q_in
    for layer in layers:
        x = layer.forward(x)
        outs.append(x)
    return outs


class TestStreamedEquality:
    def test_two_layer_chain(self):
        layers = [make_qconv(8, 12, seed=1), make_qconv(12, 8, seed=2)]
        q_in = np.random.default_rng(3).integers(-128, 128, size=(8, 6, 6))
        streamed = StreamedSegmentExecutor(layers, (8, 6, 6)).run(q_in)
        reference = reference_chain(layers, q_in)
        for got, want in zip(streamed, reference):
            assert np.array_equal(got, want)

    def test_three_layer_chain_with_stride(self):
        layers = [
            make_qconv(8, 16, seed=4),
            make_qconv(16, 16, stride=2, seed=5),
            make_qconv(16, 8, seed=6),
        ]
        q_in = np.random.default_rng(7).integers(-128, 128, size=(8, 8, 8))
        streamed = StreamedSegmentExecutor(layers, (8, 8, 8)).run(q_in)
        reference = reference_chain(layers, q_in)
        for got, want in zip(streamed, reference):
            assert np.array_equal(got, want)

    def test_unpadded_chain(self):
        layers = [make_qconv(4, 6, padding=0, seed=8)]
        q_in = np.random.default_rng(9).integers(-128, 128, size=(4, 5, 5))
        streamed = StreamedSegmentExecutor(layers, (4, 5, 5)).run(q_in)
        assert np.array_equal(streamed[0], layers[0].forward(q_in))

    def test_1x1_downsample(self):
        layers = [make_qconv(8, 16, r=1, stride=2, padding=0, seed=10)]
        q_in = np.random.default_rng(11).integers(-128, 128, size=(8, 6, 6))
        streamed = StreamedSegmentExecutor(layers, (8, 6, 6)).run(q_in)
        assert np.array_equal(streamed[0], layers[0].forward(q_in))


class TestCausality:
    def test_every_pixel_finalized_exactly_once(self):
        """The schedule never leaves or double-finalizes a pixel."""
        layers = [make_qconv(4, 4, seed=12), make_qconv(4, 4, seed=13)]
        executor = StreamedSegmentExecutor(layers, (4, 5, 5))
        q_in = np.random.default_rng(14).integers(-128, 128, size=(4, 5, 5))
        executor.run(q_in)
        for state in executor.states:
            assert state.produced.all()
            assert (state.remaining == 0).all()
            assert not state.pending  # everything was consumed in order


class TestValidation:
    def test_shape_mismatch_rejected(self):
        layers = [make_qconv(8, 4)]
        with pytest.raises(ConfigurationError):
            StreamedSegmentExecutor(layers, (4, 5, 5))

    def test_empty_chain_rejected(self):
        with pytest.raises(SimulationError):
            StreamedSegmentExecutor([], (4, 5, 5))

    def test_input_shape_checked(self):
        executor = StreamedSegmentExecutor([make_qconv(4, 4)], (4, 5, 5))
        with pytest.raises(ConfigurationError):
            executor.run(np.zeros((4, 6, 6)))
