"""CMem data layout (Fig. 6): placement, masks, filter loading."""

import numpy as np
import pytest

from repro.cmem.cmem import CMem
from repro.core.datalayout import (
    load_filters_into_cmem,
    plan_node_layout,
    split_filters_across_nodes,
)
from repro.errors import CapacityError
from repro.nn.workloads import ConvLayerSpec


def spec_3x3(c=256, m=5, h=9):
    return ConvLayerSpec(0, "t", h=h, w=h, c=c, m=m, padding=0)


class TestPlanLayout:
    def test_table4_layout_fits(self):
        layout = plan_node_layout(spec_3x3(), 5)
        assert len(layout.entries) == 45
        assert set(layout.slices_used) <= set(range(1, 8))

    def test_ifmap_rows_reserved(self):
        layout = plan_node_layout(spec_3x3(), 5)
        assert all(e.row >= 8 for e in layout.entries)

    def test_rows_within_slice(self):
        layout = plan_node_layout(spec_3x3(), 5)
        assert all(e.row + 8 <= 64 for e in layout.entries)

    def test_slots_do_not_collide(self):
        layout = plan_node_layout(spec_3x3(), 5)
        slots = {(e.slice_index, e.row) for e in layout.entries}
        assert len(slots) == len(layout.entries)

    def test_capacity_enforced(self):
        with pytest.raises(CapacityError):
            plan_node_layout(spec_3x3(m=6), 6)  # 54 slots > 49

    def test_csr_mask_by_channels(self):
        assert plan_node_layout(spec_3x3(c=256), 5).csr_mask == 0xFF
        assert plan_node_layout(spec_3x3(c=64), 5).csr_mask == 0x03
        assert plan_node_layout(spec_3x3(c=16), 5).csr_mask == 0x01

    def test_entry_lookup(self):
        layout = plan_node_layout(spec_3x3(), 2)
        entry = layout.entry_for(1, 2, 2)
        assert (entry.filter_index, entry.fr, entry.fs) == (1, 2, 2)
        with pytest.raises(CapacityError):
            layout.entry_for(5, 0, 0)


class TestLoadFilters:
    def test_filters_readable_back(self):
        spec = spec_3x3(m=2)
        layout = plan_node_layout(spec, 2)
        cmem = CMem()
        rng = np.random.default_rng(0)
        weights = rng.integers(-128, 128, size=(2, 256, 3, 3))
        load_filters_into_cmem(cmem, layout, weights)
        for entry in layout.entries:
            vec = cmem.load_vector_transposed(
                entry.slice_index, entry.row, 256, 8, signed=True
            )
            assert np.array_equal(
                vec, weights[entry.filter_index, :, entry.fr, entry.fs]
            )


class TestSplitFilters:
    def test_even_split(self):
        assert split_filters_across_nodes(10, 5) == [
            (0, 2), (2, 2), (4, 2), (6, 2), (8, 2)
        ]

    def test_remainder_to_early_nodes(self):
        ranges = split_filters_across_nodes(10, 3)
        assert ranges == [(0, 4), (4, 3), (7, 3)]

    def test_covers_all_filters(self):
        for m in (1, 7, 64, 513):
            for nodes in (1, 3, 8):
                ranges = split_filters_across_nodes(m, nodes)
                assert sum(c for _, c in ranges) == m
                assert ranges[-1][0] + ranges[-1][1] == m
