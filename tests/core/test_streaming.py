"""Segment streaming simulator: pipelining, waiting, Fig. 9 breakdowns."""

import pytest

from repro.core.perfmodel import PerformanceModel
from repro.core.streaming import (
    SegmentSimulator,
    _completion_source_index,
    completion_source_index,
)
from repro.errors import SimulationError
from repro.nn.workloads import ConvLayerSpec, resnet18_spec


@pytest.fixture(scope="module")
def model():
    return PerformanceModel()


def chain(model, *layer_node_pairs, from_dram=True):
    timings = []
    for i, (spec, nodes) in enumerate(layer_node_pairs):
        timings.append(model.layer_timing(spec, nodes, from_dram=(i == 0 and from_dram)))
    return SegmentSimulator(timings)


def conv(index, h=14, c=256, m=50, **kw):
    defaults = dict(r=3, s=3, stride=1, padding=1)
    defaults.update(kw)
    return ConvLayerSpec(index, f"conv{index}", h=h, w=h, c=c, m=m, **defaults)


class TestSingleLayer:
    def test_total_matches_standalone_estimate(self, model):
        lt = model.layer_timing(conv(1), 10, from_dram=True)
        sim = SegmentSimulator([lt])
        total = sim.run().total_cycles
        assert total == pytest.approx(lt.standalone_cycles, rel=0.05)

    def test_empty_segment_rejected(self):
        with pytest.raises(SimulationError):
            SegmentSimulator([])


class TestPipelining:
    def test_two_layers_overlap(self, model):
        sim = chain(model, (conv(1), 25), (conv(2), 25))
        total = sim.run().total_cycles
        serial = sum(
            model.layer_timing(conv(i), 25).standalone_cycles for i in (1, 2)
        )
        assert total < 0.8 * serial

    def test_slow_producer_stalls_consumer(self, model):
        # A consumer with many more nodes than the producer must wait.
        sim = chain(model, (conv(1, m=100), 20), (conv(2, m=100), 90))
        result = sim.run()
        consumer = result.flow_of(2)
        assert consumer.mean_wait > 0

    def test_balanced_chain_waits_little(self, model):
        sim = chain(model, (conv(1), 40), (conv(2), 40))
        result = sim.run()
        consumer = result.flow_of(2)
        assert consumer.mean_wait < consumer.interval_work

    def test_downsample_shortcut_producer_matching(self, model):
        """A layer list with a shortcut still finds geometric producers."""
        net = resnet18_spec()
        timings = [
            model.layer_timing(net.layer(i), nodes)
            for i, nodes in [(1, 16), (2, 16), (3, 16), (4, 16), (5, 2), (6, 8)]
        ]
        result = SegmentSimulator(timings).run()
        assert result.total_cycles > 0
        assert len(result.flows) == 6

    def test_flow_lookup(self, model):
        sim = chain(model, (conv(7), 10))
        result = sim.run()
        with pytest.raises(SimulationError):
            result.flow_of(99)


class TestBreakdown:
    def test_components_sum_to_total(self, model):
        sim = chain(model, (conv(9, h=28, c=128, m=128), 13))
        breakdown = sim.core_breakdown(9)
        assert breakdown.total == pytest.approx(
            breakdown.compute + breakdown.send_ifmap + breakdown.send_ofmap
            + breakdown.wait_ifmap + breakdown.other
        )

    def test_starved_layer_shows_waiting(self, model):
        sim = chain(model, (conv(1, m=100), 20), (conv(2, m=100), 90))
        breakdown = sim.core_breakdown(2)
        assert breakdown.wait_ifmap > breakdown.compute

    def test_send_costs_stable_across_allocations(self, model):
        """Fig. 9: ifmap-forwarding cost does not depend on node count."""
        few = chain(model, (conv(9, h=28, c=128, m=128), 13)).core_breakdown(9)
        many = chain(model, (conv(9, h=28, c=128, m=128), 60)).core_breakdown(9)
        assert few.send_ifmap == many.send_ifmap

    def test_compute_shrinks_with_more_nodes(self, model):
        few = chain(model, (conv(9, h=28, c=128, m=128), 13)).core_breakdown(9)
        many = chain(model, (conv(9, h=28, c=128, m=128), 60)).core_breakdown(9)
        assert many.compute < few.compute


class TestCompletionSourceIndex:
    """The public producer->consumer dependence helper (both streaming
    tiers key on it; see repro.sim.xcheck)."""

    def test_interior_pixel_needs_bottom_right_of_window(self):
        # 3x3 window, stride 1, padding 1 on a 4x4 ifmap: ofmap (1, 1)
        # reads ifmap rows/cols 0..2, so vector (2, 2) completes it.
        producer = conv(1, h=4, c=8, m=8)
        assert completion_source_index(producer, 1, 1) == 2 * 4 + 2

    def test_padding_clamps_to_the_ifmap_edge(self):
        # The (3, 3) window hangs past the ifmap; the last *real* vector
        # is the corner (3, 3), not the padded phantom (4, 4).
        producer = conv(1, h=4, c=8, m=8)
        assert completion_source_index(producer, 3, 3) == 3 * 4 + 3

    def test_top_left_pixel_with_padding(self):
        # ofmap (0, 0) only needs ifmap up to (1, 1): the padded part of
        # its window contributes nothing.
        producer = conv(1, h=4, c=8, m=8)
        assert completion_source_index(producer, 0, 0) == 1 * 4 + 1

    def test_stride_advances_the_window(self):
        producer = conv(1, h=8, c=8, m=8, r=2, s=2, stride=2, padding=0)
        assert completion_source_index(producer, 0, 0) == 1 * 8 + 1
        assert completion_source_index(producer, 1, 1) == 3 * 8 + 3

    def test_pointwise_conv_is_the_identity_on_raster_rank(self):
        producer = conv(1, h=6, c=8, m=8, r=1, s=1, stride=1, padding=0)
        for oy in range(6):
            for ox in range(6):
                assert completion_source_index(producer, oy, ox) == oy * 6 + ox

    def test_monotonic_in_raster_order(self):
        # Later ofmap pixels never depend on earlier ifmap vectors than
        # their predecessors: arrival rank is non-decreasing in raster
        # order, which is what lets the tiers stream without reordering.
        producer = conv(1, h=14, c=16, m=16, r=3, s=3, stride=2, padding=1)
        oh, ow = producer.ofmap_hw
        ranks = [
            completion_source_index(producer, oy, ox)
            for oy in range(oh)
            for ox in range(ow)
        ]
        assert ranks == sorted(ranks)
        assert max(ranks) <= producer.h * producer.w - 1

    def test_private_alias_kept_for_back_compat(self):
        assert _completion_source_index is completion_source_index
