"""Weight staging through the DRAM/LLC models into a CMem."""

import numpy as np
import pytest

from repro.cmem.cmem import CMem
from repro.core.datalayout import load_filters_into_cmem, plan_node_layout
from repro.core.weight_staging import WeightStager, stage_node
from repro.errors import CapacityError
from repro.nn.workloads import ConvLayerSpec


@pytest.fixture
def layout_and_weights():
    spec = ConvLayerSpec(0, "t", h=6, w=6, c=64, m=3, padding=1)
    layout = plan_node_layout(spec, 3)
    rng = np.random.default_rng(0)
    weights = rng.integers(-128, 128, size=(3, 64, 3, 3))
    return layout, weights


class TestRoundTrip:
    def test_staged_weights_equal_direct_staging(self, layout_and_weights):
        layout, weights = layout_and_weights
        via_dram = CMem()
        stage_node(via_dram, layout, weights)
        direct = CMem()
        load_filters_into_cmem(direct, layout, weights)
        for entry in layout.entries:
            a = via_dram.load_vector_transposed(
                entry.slice_index, entry.row, 64, 8, signed=True
            )
            b = direct.load_vector_transposed(
                entry.slice_index, entry.row, 64, 8, signed=True
            )
            assert np.array_equal(a, b)

    def test_staged_weights_compute_correct_macs(self, layout_and_weights):
        layout, weights = layout_and_weights
        cmem = CMem()
        stage_node(cmem, layout, weights)
        rng = np.random.default_rng(1)
        x = rng.integers(-128, 128, 64)
        cmem.store_vector_transposed(
            layout.entries[0].slice_index, 0, x, 8, signed=True
        )
        entry = layout.entries[0]
        got = cmem.mac(entry.slice_index, 0, entry.row, 8, signed=True,
                       mask=layout.csr_mask)
        want = int(np.dot(weights[entry.filter_index, :, entry.fr, entry.fs], x))
        assert got == want


class TestAccounting:
    def test_traffic_counted(self, layout_and_weights):
        layout, weights = layout_and_weights
        stager = WeightStager()
        result = stage_node(CMem(), layout, weights, stager)
        assert result.rows_loaded == len(layout.entries) * 8
        assert result.dram_bytes == result.rows_loaded * 32
        assert result.load_cycles > 0
        assert stager.llc.stats.accesses == result.rows_loaded

    def test_llc_reuse_across_nodes(self, layout_and_weights):
        """Two nodes loading the same image hit the LLC the second time."""
        layout, weights = layout_and_weights
        stager = WeightStager()
        base = stager.write_filters(layout, weights)
        stager.load_into(CMem(), layout, base)
        misses_first = stager.llc.stats.misses
        stager.load_into(CMem(), layout, base)
        assert stager.llc.stats.misses == misses_first  # all hits

    def test_images_do_not_overlap(self, layout_and_weights):
        layout, weights = layout_and_weights
        stager = WeightStager()
        a = stager.write_filters(layout, weights)
        b = stager.write_filters(layout, weights)
        assert b >= a + len(layout.entries) * 8 * 32

    def test_filter_count_validated(self, layout_and_weights):
        layout, _ = layout_and_weights
        with pytest.raises(CapacityError):
            stage_node(CMem(), layout, np.zeros((1, 64, 3, 3)))
