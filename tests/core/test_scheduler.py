"""Static scheduler: semantics preservation (property-tested) and gains."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.scheduler import static_schedule
from repro.riscv.assembler import assemble
from repro.riscv.core import Core


def run_program(program):
    core = Core()
    stats = core.run(program)
    return core.regs.snapshot(), bytes(core.memory.dmem[:256]), stats.cycles


# Random straight-line programs over a small register/memory universe.
REGS = ["a0", "a1", "a2", "a3", "t0", "t1"]
ADDRS = [0, 4, 8, 12]


@st.composite
def straight_line_program(draw):
    lines = ["li a0, 3", "li a1, 5", "li a2, -7", "li a3, 11", "li t0, 2", "li t1, 9"]
    for _ in range(draw(st.integers(3, 25))):
        kind = draw(st.sampled_from(["alu", "imm", "mul", "load", "store"]))
        rd = draw(st.sampled_from(REGS))
        rs1 = draw(st.sampled_from(REGS))
        rs2 = draw(st.sampled_from(REGS))
        if kind == "alu":
            op = draw(st.sampled_from(["add", "sub", "xor", "and", "or"]))
            lines.append(f"{op} {rd}, {rs1}, {rs2}")
        elif kind == "imm":
            op = draw(st.sampled_from(["addi", "xori", "slli"]))
            imm = draw(st.integers(0, 7))
            lines.append(f"{op} {rd}, {rs1}, {imm}")
        elif kind == "mul":
            lines.append(f"mul {rd}, {rs1}, {rs2}")
        elif kind == "load":
            lines.append(f"lw {rd}, {draw(st.sampled_from(ADDRS))}(zero)")
        else:
            lines.append(f"sw {rs2}, {draw(st.sampled_from(ADDRS))}(zero)")
    lines.append("halt")
    return "\n".join(lines)


class TestSemanticsPreservation:
    @given(straight_line_program())
    @settings(max_examples=40, deadline=None)
    def test_random_programs_unchanged(self, text):
        program = assemble(text)
        scheduled = static_schedule(program)
        assert run_program(program)[:2] == run_program(scheduled)[:2]

    def test_branchy_program_unchanged(self):
        text = """
            li t0, 6
            li t1, 0
        loop:
            addi t1, t1, 5
            sw t1, 0(zero)
            addi t0, t0, -1
            bne t0, zero, loop
            lw a0, 0(zero)
            halt
        """
        program = assemble(text)
        scheduled = static_schedule(program)
        regs_a, mem_a, _ = run_program(program)
        regs_b, mem_b, _ = run_program(scheduled)
        assert regs_a == regs_b
        assert mem_a == mem_b

    def test_cmem_program_unchanged(self):
        a = np.arange(-20, 12)
        program = assemble(
            "mac.c a0, 1, 0, 8, 8\n"
            "sw a0, 0(zero)\n"
            "mac.c a1, 2, 0, 8, 8\n"
            "add a2, a0, a1\n"
            "halt"
        )

        def run(prog):
            core = Core()
            core.cmem.store_vector_transposed(1, 0, a, 8, signed=True)
            core.cmem.store_vector_transposed(1, 8, a, 8, signed=True)
            core.cmem.store_vector_transposed(2, 0, a, 8, signed=True)
            core.cmem.store_vector_transposed(2, 8, a, 8, signed=True)
            core.run(prog)
            return core.regs.snapshot()

        assert run(program) == run(static_schedule(program))

    def test_instruction_count_preserved(self):
        program = assemble("li a0, 1\nli a1, 2\nadd a2, a0, a1\nhalt")
        assert len(static_schedule(program)) == len(program)

    def test_original_not_mutated(self):
        program = assemble("mul a0, a1, a2\nadd a3, a0, a0\nli t0, 5\nhalt")
        order_before = [id(i) for i in program]
        static_schedule(program)
        assert [id(i) for i in program] == order_before


class TestLatencyHiding:
    def test_fills_mul_delay_slot(self):
        """Independent work moves between a mul and its consumer."""
        text = (
            "li a1, 3\nli a2, 4\nmul a0, a1, a2\nadd a3, a0, a0\n"
            + "\n".join(f"addi t{i % 2}, zero, {i}" for i in range(6))
            + "\nhalt"
        )
        program = assemble(text)
        scheduled = static_schedule(program)
        assert run_program(scheduled)[2] < run_program(program)[2]

    def test_cmem_delay_slots_filled(self):
        a = np.arange(32)
        text = (
            "mac.c a0, 1, 0, 8, 8\nadd a1, a0, a0\n"
            + "\n".join(f"addi t{i % 2}, zero, {i}" for i in range(10))
            + "\nhalt"
        )
        program = assemble(text)

        def cycles(prog):
            core = Core()
            core.cmem.store_vector_transposed(1, 0, a, 8, signed=True)
            core.cmem.store_vector_transposed(1, 8, a, 8, signed=True)
            return core.run(prog).cycles

        assert cycles(static_schedule(program)) <= cycles(program)

    def test_branch_targets_remapped(self):
        text = """
            li t0, 3
            j middle
            li t1, 99
        middle:
            addi t1, t1, 1
            halt
        """
        program = assemble(text)
        scheduled = static_schedule(program)
        core = Core()
        core.run(scheduled)
        assert core.regs.read(6) == 1  # t1: skipped the 99
