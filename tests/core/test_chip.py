"""Chip geometry and subsystem wiring."""

import pytest

from repro.core.chip import ChipConfig, MAICCChip, TileKind
from repro.errors import ConfigurationError, NoCError


@pytest.fixture(scope="module")
def chip():
    return MAICCChip()


class TestGeometry:
    def test_210_compute_tiles(self, chip):
        """16x16 minus two LLC rows minus the host = 210 (Fig. 3(a))."""
        assert chip.config.compute_tiles == 210
        assert len(chip.compute_coords()) == 210

    def test_llc_rows(self, chip):
        assert chip.tile_kind((0, 0)) is TileKind.LLC
        assert chip.tile_kind((15, 15)) is TileKind.LLC

    def test_host_column(self, chip):
        assert chip.tile_kind((15, 1)) is TileKind.HOST
        assert chip.tile_kind((15, 14)) is TileKind.HOST

    def test_compute_tile(self, chip):
        assert chip.tile_kind((5, 5)) is TileKind.COMPUTE

    def test_32_llc_tiles_one_per_channel(self, chip):
        assert len(chip.llcs) == 32
        coords = {chip.llc_coord(ch) for ch in range(32)}
        assert len(coords) == 32
        with pytest.raises(NoCError):
            chip.llc_coord(32)

    def test_nearest_llc_is_top_or_bottom(self, chip):
        assert chip.nearest_llc((4, 2))[1] == 0
        assert chip.nearest_llc((4, 13))[1] == 15

    def test_invalid_config(self):
        with pytest.raises(ConfigurationError):
            ChipConfig(llc_rows=(0, 16))
        with pytest.raises(ConfigurationError):
            ChipConfig(host_tile=(15, 0))
        with pytest.raises(ConfigurationError):
            ChipConfig(host_tile=(3, 3))


class TestSummary:
    def test_area_near_paper(self, chip):
        """Paper: 28 mm^2 total."""
        assert chip.area().total == pytest.approx(28.0, rel=0.05)

    def test_on_chip_memory_near_4mb(self, chip):
        summary = chip.summary()
        assert 4000 <= summary["on_chip_memory_kb"] <= 4400
