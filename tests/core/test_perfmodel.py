"""The Eq. (1) performance model: closed forms, monotonicity, components."""

import math

import pytest

from repro.core.perfmodel import PerformanceModel, TimingParams
from repro.nn.workloads import ConvLayerSpec, resnet18_spec


def spec(c=256, m=50, h=14, **kw):
    defaults = dict(r=3, s=3, stride=1, padding=1)
    defaults.update(kw)
    return ConvLayerSpec(0, "t", h=h, w=h, c=c, m=m, **defaults)


class TestClosedForms:
    def test_paper_iteration_formula_with_slice_parallelism(self):
        """Sec 4.1: a full node (Q filters/slice) iterates in 7N + Q N^2."""
        model = PerformanceModel(TimingParams(slice_parallel_cmem=True))
        # 5 filters of 3x3x256 = 45 vectors in 7 slices; interior pixels MAC
        # against all filter pixels.  Use stride-1 padded layer so density=1.
        t4 = spec(m=5, h=9)
        timing = model.iteration_timing(t4, 1)
        n, q = 8, 7
        # ceil(45/7) = 7 MACs per slice: exactly Q N^2 + 7N.
        assert timing.t_cmem == pytest.approx(7 * n + q * n * n, rel=0.05)

    def test_serial_cmem_linear_in_filters(self):
        """Eq. (1): T_CMem = k1 * n_i under the many-core model."""
        model = PerformanceModel(TimingParams(slice_parallel_cmem=False))
        t1 = model.iteration_timing(spec(m=50), 25).t_cmem   # 2 filters/node
        t2 = model.iteration_timing(spec(m=100), 25).t_cmem  # 4 filters/node
        assert t2 > 1.8 * t1

    def test_mac_count_density_for_stride(self):
        model = PerformanceModel()
        dense = model.iteration_timing(spec(m=50, stride=1), 10)
        strided = model.iteration_timing(spec(m=50, stride=2, h=28), 10)
        assert strided.macs_per_iteration < dense.macs_per_iteration


class TestMonotonicity:
    def test_more_nodes_never_slower_per_iteration(self):
        model = PerformanceModel()
        layer = spec(m=100)
        times = [
            model.iteration_timing(layer, nodes).total
            for nodes in range(20, 101, 10)
        ]
        assert all(a >= b - 1e-9 for a, b in zip(times, times[1:]))

    def test_interval_floors_at_dc_rate(self):
        model = PerformanceModel()
        layer = spec(m=100)
        lt = model.layer_timing(layer, 100)
        assert lt.interval >= lt.dc.total


class TestDCTiming:
    def test_dram_fetch_only_when_requested(self):
        model = PerformanceModel()
        on = model.dc_timing(spec(), from_dram=True)
        off = model.dc_timing(spec(), from_dram=False)
        assert on.t_fetch > 0 and off.t_fetch == 0
        assert on.t_transpose == off.t_transpose

    def test_wide_channels_double_transpose(self):
        model = PerformanceModel()
        narrow = model.dc_timing(spec(c=256), from_dram=False)
        wide = model.dc_timing(spec(c=512), from_dram=False)
        assert wide.t_transpose == 2 * narrow.t_transpose


class TestIterations:
    def test_full_coverage_for_3x3(self):
        model = PerformanceModel()
        assert model.required_iterations(spec(h=14)) == 196

    def test_strided_1x1_subsamples(self):
        model = PerformanceModel()
        shortcut = ConvLayerSpec(0, "sc", h=56, w=56, c=64, m=128,
                                 r=1, s=1, stride=2, padding=0)
        assert model.required_iterations(shortcut) == 784


class TestSegmentTiming:
    def test_pipelining_beats_serial_execution(self):
        model = PerformanceModel()
        layers = [model.layer_timing(spec(m=60), 30) for _ in range(3)]
        seg = model.segment_timing(layers)
        serial = sum(lt.standalone_cycles for lt in layers)
        assert seg.total_cycles < serial

    def test_start_offsets_increase(self):
        model = PerformanceModel()
        layers = [model.layer_timing(spec(m=60), 30) for _ in range(3)]
        seg = model.segment_timing(layers)
        assert seg.start_offsets == sorted(seg.start_offsets)

    def test_filter_load_mostly_hidden(self):
        """Sec. 6.2: the filter-load phase is <= ~10% of segment time."""
        model = PerformanceModel()
        net = resnet18_spec()
        layers = [model.layer_timing(net.layer(i), 32) for i in (1, 2, 3, 4)]
        seg = model.segment_timing(layers)
        exposed = seg.filter_load_cycles * (1 - model.params.filter_load_overlap)
        assert exposed / seg.total_cycles < 0.1


class TestOverlapFlag:
    def test_eq1_max_vs_sum(self):
        on = PerformanceModel(TimingParams(overlap=True)).iteration_timing(spec(), 10)
        off = PerformanceModel(TimingParams(overlap=False)).iteration_timing(spec(), 10)
        assert off.total == pytest.approx(off.t_cmem + off.t_scalar + off.t_forward)
        assert on.total == pytest.approx(max(on.t_cmem, on.t_scalar + on.t_forward))
        assert on.total <= off.total
