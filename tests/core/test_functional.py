"""Functional node-group execution == quantized reference, exactly."""

import numpy as np
import pytest

from repro.core.functional import (
    FunctionalNodeGroup,
    bit_true_min_nodes,
    simulate_quantized_graph,
)
from repro.errors import ConfigurationError
from repro.mapping.capacity import CapacityModel
from repro.nn.models import build_residual_cnn, build_small_cnn
from repro.nn.quantize import quantize_graph
from repro.nn.workloads import ConvLayerSpec


def group_setup(spec, num_nodes, seed=0, **kw):
    rng = np.random.default_rng(seed)
    weights = rng.integers(-128, 128, size=(spec.m, spec.c, spec.r, spec.s))
    bias = rng.integers(-200, 200, size=spec.m)
    q_in = rng.integers(-128, 128, size=(spec.c, spec.h, spec.w))
    group = FunctionalNodeGroup(spec, weights, bias, num_nodes, **kw)
    from repro.core.node import reference_accumulators

    return group, q_in, reference_accumulators(spec, weights, bias, q_in)


class TestFastMode:
    def test_single_node(self):
        spec = ConvLayerSpec(0, "t", h=6, w=6, c=32, m=4, padding=1)
        group, q_in, ref = group_setup(spec, 1)
        assert np.array_equal(group.run(q_in), ref)

    def test_filters_split_across_nodes(self):
        spec = ConvLayerSpec(0, "t", h=6, w=6, c=64, m=10, padding=1)
        group, q_in, ref = group_setup(spec, 4)
        assert np.array_equal(group.run(q_in), ref)

    def test_wide_channels_subvectors(self):
        spec = ConvLayerSpec(0, "t", h=4, w=4, c=512, m=3, padding=0)
        group, q_in, ref = group_setup(spec, 2)
        assert np.array_equal(group.run(q_in), ref)

    def test_strided(self):
        spec = ConvLayerSpec(0, "t", h=8, w=8, c=32, m=4, stride=2, padding=1)
        group, q_in, ref = group_setup(spec, 2)
        assert np.array_equal(group.run(q_in), ref)

    def test_mac_count_matches_model(self):
        spec = ConvLayerSpec(0, "t", h=4, w=4, c=256, m=2, padding=0)
        group, q_in, _ = group_setup(spec, 1)
        group.run(q_in)
        # 2x2 ofmap * 9 taps * 2 filters MACs.
        assert group.stats.macs == 4 * 9 * 2

    def test_shape_validated(self):
        spec = ConvLayerSpec(0, "t", h=4, w=4, c=32, m=2, padding=0)
        group, _, _ = group_setup(spec, 1)
        with pytest.raises(ConfigurationError):
            group.run(np.zeros((32, 5, 5)))


class TestBitTrueMode:
    def test_matches_fast_mode(self):
        spec = ConvLayerSpec(0, "t", h=4, w=4, c=32, m=2, padding=1)
        fast, q_in, ref = group_setup(spec, 1)
        nodes = bit_true_min_nodes(spec, CapacityModel())
        true, _, _ = group_setup(spec, nodes, bit_true=True)
        assert np.array_equal(true.run(q_in), ref)

    def test_wide_channels_rejected(self):
        spec = ConvLayerSpec(0, "t", h=4, w=4, c=512, m=2, padding=0)
        with pytest.raises(ConfigurationError):
            group_setup(spec, 4, bit_true=True)

    def test_energy_accounted(self):
        spec = ConvLayerSpec(0, "t", h=4, w=4, c=32, m=2, padding=0)
        group, q_in, _ = group_setup(spec, 1, bit_true=True)
        group.run(q_in)
        assert group.stats.cmem_energy_pj > 0
        assert group.stats.row_transfers > 0


class TestWholeNetworks:
    def test_small_cnn_fast_equals_reference(self):
        g = build_small_cnn()
        x = np.random.default_rng(11).normal(size=(8, 8, 8))
        qg = quantize_graph(g, [x])
        ref = qg.forward(x)
        sim = simulate_quantized_graph(qg, x)
        for name in ref:
            assert np.array_equal(ref[name], sim[name]), name

    def test_residual_cnn_fast_equals_reference(self):
        g = build_residual_cnn()
        x = np.random.default_rng(12).normal(size=(8, 8, 8))
        qg = quantize_graph(g, [x])
        ref = qg.forward(x)
        sim = simulate_quantized_graph(qg, x)
        for name in ref:
            assert np.array_equal(ref[name], sim[name]), name

    def test_explicit_node_counts_respected(self):
        g = build_small_cnn()
        x = np.random.default_rng(13).normal(size=(8, 8, 8))
        qg = quantize_graph(g, [x])
        ref = qg.forward(x)
        sim = simulate_quantized_graph(qg, x, nodes_per_layer={"conv1": 3})
        for name in ref:
            assert np.array_equal(ref[name], sim[name]), name

    @pytest.mark.slow
    def test_small_cnn_bit_true_equals_reference(self):
        g = build_small_cnn(input_shape=(8, 6, 6))
        x = np.random.default_rng(14).normal(size=(8, 6, 6))
        qg = quantize_graph(g, [x])
        ref = qg.forward(x)
        sim = simulate_quantized_graph(qg, x, bit_true=True)
        for name in ref:
            assert np.array_equal(ref[name], sim[name]), name


class TestOtherPrecisions:
    def test_int4_network_functional_equality(self):
        """The whole stack also holds at 4-bit quantization."""
        g = build_small_cnn()
        x = np.random.default_rng(40).normal(size=(8, 8, 8))
        qg = quantize_graph(g, [x], n_bits=4)
        ref = qg.forward(x)
        sim = simulate_quantized_graph(qg, x)
        for name in ref:
            assert np.array_equal(ref[name], sim[name]), name

    def test_int16_network_functional_equality(self):
        g = build_small_cnn()
        x = np.random.default_rng(41).normal(size=(8, 8, 8))
        qg = quantize_graph(g, [x], n_bits=16)
        ref = qg.forward(x)
        sim = simulate_quantized_graph(qg, x)
        for name in ref:
            assert np.array_equal(ref[name], sim[name]), name
