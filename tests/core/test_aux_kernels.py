"""Auxiliary-function kernels: correct and measurably cheap."""

import math

import numpy as np
import pytest

from repro.core.aux_kernels import (
    lut_kernel,
    maxpool2x2_kernel,
    relu_kernel,
    requant_kernel,
    run_aux,
    sigmoid_table,
)
from repro.errors import ConfigurationError


class TestReLU:
    def test_matches_numpy(self):
        rng = np.random.default_rng(0)
        values = rng.integers(-128, 128, 64)
        result = run_aux(
            relu_kernel(0, 256, 64),
            stage=[(0, values, 1)],
            read_base=256,
            read_count=64,
        )
        assert np.array_equal(result.outputs, np.maximum(values, 0))

    def test_cost_under_15_cycles_per_value(self):
        values = np.arange(-32, 32)
        result = run_aux(
            relu_kernel(0, 256, 64),
            stage=[(0, values, 1)],
            read_base=256,
            read_count=64,
        )
        assert result.cycles_per_value < 15


class TestLUT:
    def test_sigmoid_lut(self):
        in_scale, out_scale = 0.05, 1.0 / 127
        table = sigmoid_table(in_scale, out_scale)
        rng = np.random.default_rng(1)
        values = rng.integers(-128, 128, 48)
        result = run_aux(
            lut_kernel(0, 256, 512, 48),
            stage=[(0, values, 1), (512, table, 1)],
            read_base=256,
            read_count=48,
        )
        expected = np.array([
            max(-128, min(127, round(1.0 / (1.0 + math.exp(-v * in_scale)) / out_scale)))
            for v in values
        ])
        assert np.array_equal(result.outputs, expected)

    def test_identity_lut(self):
        table = list(range(256))
        values = np.arange(-20, 20)
        result = run_aux(
            lut_kernel(0, 256, 512, 40),
            stage=[(0, values, 1), (512, table, 1)],
            read_base=256,
            read_count=40,
        )
        assert np.array_equal(result.outputs, values)

    def test_any_unary_function_is_one_lut(self):
        """Swish, GELU, whatever — same kernel, different table."""
        def swish(v):
            return v * 0.02 / (1.0 + math.exp(-v * 0.05))

        table = [
            max(-128, min(127, round(swish(b - 256 if b & 0x80 else b) * 50))) & 0xFF
            for b in range(256)
        ]
        values = np.array([-100, -1, 0, 1, 100])
        result = run_aux(
            lut_kernel(0, 256, 512, 5),
            stage=[(0, values, 1), (512, table, 1)],
            read_base=256,
            read_count=5,
        )
        expected = np.array([
            max(-128, min(127, round(swish(int(v)) * 50))) for v in values
        ])
        assert np.array_equal(result.outputs, expected)


class TestMaxPool:
    def test_matches_numpy(self):
        rng = np.random.default_rng(2)
        h, w = 8, 8
        plane = rng.integers(-128, 128, (h, w))
        result = run_aux(
            maxpool2x2_kernel(0, 1024, h, w),
            stage=[(0, plane.reshape(-1), 1)],
            read_base=1024,
            read_count=(h // 2) * (w // 2),
        )
        expected = plane.reshape(h // 2, 2, w // 2, 2).max(axis=(1, 3)).reshape(-1)
        assert np.array_equal(result.outputs, expected)

    def test_odd_dimensions_rejected(self):
        with pytest.raises(ConfigurationError):
            maxpool2x2_kernel(0, 256, 5, 4)


class TestRequant:
    def test_matches_fixed_point_reference(self):
        rng = np.random.default_rng(3)
        accs = rng.integers(-200_000, 200_000, 32)
        mult, shift = 13, 8
        result = run_aux(
            requant_kernel(0, 512, 32, mult, shift),
            stage=[(0, accs, 4)],
            read_base=512,
            read_count=32,
        )
        expected = np.clip((accs * mult + (1 << (shift - 1))) >> shift, -128, 127)
        assert np.array_equal(result.outputs, expected)

    def test_saturation_both_ends(self):
        accs = np.array([10 ** 6, -(10 ** 6)])
        result = run_aux(
            requant_kernel(0, 512, 2, 200, 4),
            stage=[(0, accs, 4)],
            read_base=512,
            read_count=2,
        )
        assert result.outputs.tolist() == [127, -128]


class TestAuxCostCalibration:
    def test_aux_chain_cost_matches_model_constant(self):
        """requant + relu per ofmap value lands near the performance
        model's aux_cost (22 cycles x 1.3 overhead ~ 29)."""
        rng = np.random.default_rng(4)
        accs = rng.integers(-100_000, 100_000, 64)
        requant = run_aux(
            requant_kernel(0, 512, 64, 13, 8),
            stage=[(0, accs, 4)],
            read_base=512,
            read_count=64,
        )
        relu = run_aux(
            relu_kernel(512, 1024, 64),
            stage=[(512, np.zeros(64), 1)],
            read_base=1024,
            read_count=64,
        )
        combined = requant.cycles_per_value + relu.cycles_per_value
        assert 15 < combined < 45
    def test_dmem_bounds_enforced(self):
        with pytest.raises(ConfigurationError):
            relu_kernel(4000, 4600, 200)
