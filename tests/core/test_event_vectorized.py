"""The vectorized event engine vs the per-event reference engine.

The vectorized engine replaces one heap callback per (core, vector) hop
with one batched event per layer (see :mod:`repro.core.event_streaming`).
Its correctness claim is *exact* equality — every timestamp, not an
approximation — so these tests compare the two engines with ``==`` on
cycles, per-layer finish times, and event counts, and pin the end-to-end
event-backend totals that ``BENCH_backends.json`` tracks.
"""

import dataclasses

import pytest

from repro.core.event_streaming import EventDrivenSegmentSimulator
from repro.core.perfmodel import PerformanceModel
from repro.errors import SimulationError
from repro.nn.workloads import ConvLayerSpec, resnet18_spec, small_cnn_spec
from repro.sim import SimConfig, simulate


@pytest.fixture(scope="module")
def model():
    return PerformanceModel()


def conv(index, h=14, c=256, m=50, **kw):
    defaults = dict(r=3, s=3, stride=1, padding=1)
    defaults.update(kw)
    return ConvLayerSpec(index, f"conv{index}", h=h, w=h, c=c, m=m, **defaults)


def timings(model, *pairs):
    out = []
    for i, (spec, nodes) in enumerate(pairs):
        out.append(model.layer_timing(spec, nodes, from_dram=(i == 0)))
    return out


def both(ts, **kw):
    vec = EventDrivenSegmentSimulator(ts, engine="vectorized", **kw).run()
    ref = EventDrivenSegmentSimulator(ts, engine="reference", **kw).run()
    return vec, ref


class TestEngineEquality:
    """Byte-identical results, not approximate ones."""

    def test_single_layer(self, model):
        vec, ref = both(timings(model, (conv(1), 10)))
        assert vec.total_cycles == ref.total_cycles
        assert vec.layer_finish == ref.layer_finish
        assert vec.events_processed == ref.events_processed

    def test_chained_layers(self, model):
        ts = timings(model, (conv(1), 25), (conv(2), 25), (conv(3), 25))
        vec, ref = both(ts)
        assert vec.total_cycles == ref.total_cycles
        assert vec.layer_finish == ref.layer_finish
        assert vec.events_processed == ref.events_processed

    def test_geometry_change_splits_producers(self, model):
        # A stride-2 layer breaks the ofmap/ifmap match, so the second
        # half restarts from DRAM — two independent source layers in one
        # queue, exercising the t=0 same-timestamp batch.
        ts = timings(
            model,
            (conv(1, h=14), 10),
            (conv(2, h=14, stride=2, padding=1), 10),
            (conv(3, h=7), 10),
        )
        vec, ref = both(ts)
        assert vec.total_cycles == ref.total_cycles
        assert vec.layer_finish == ref.layer_finish

    @pytest.mark.parametrize("policy", ["eager", "after_compute"])
    def test_forward_policies(self, model, policy):
        ts = timings(model, (conv(1, m=100), 50), (conv(2), 25))
        vec, ref = both(ts, forward_policy=policy)
        assert vec.total_cycles == ref.total_cycles
        assert vec.layer_finish == ref.layer_finish

    @pytest.mark.parametrize("requests", [2, 4])
    def test_request_batching(self, model, requests):
        ts = timings(model, (conv(1), 25), (conv(2), 25))
        vec, ref = both(ts, requests=requests)
        assert vec.total_cycles == ref.total_cycles
        assert vec.layer_finish == ref.layer_finish
        assert vec.events_processed == ref.events_processed
        assert vec.requests == ref.requests == requests


class TestEngineSelection:
    def test_unknown_engine_rejected(self, model):
        ts = timings(model, (conv(1), 10))
        with pytest.raises(SimulationError):
            EventDrivenSegmentSimulator(ts, engine="warp")

    def test_auto_falls_back_on_zero_service_time(self, model):
        # A zero-cycle DC makes same-time ordering heap-tie-break only,
        # where the sort-based engine's proof does not apply: "auto" must
        # route to the reference engine rather than risk divergence.
        (lt,) = timings(model, (conv(1), 10))
        degenerate = dataclasses.replace(
            lt,
            dc=dataclasses.replace(
                lt.dc, t_fetch=0.0, t_transpose=0.0, t_send=0.0,
                t_overhead=0.0,
            ),
        )
        sim = EventDrivenSegmentSimulator([degenerate], engine="auto")
        assert not sim._vectorizable()
        auto = sim.run()
        ref = EventDrivenSegmentSimulator(
            [degenerate], engine="reference"
        ).run()
        assert auto.total_cycles == ref.total_cycles
        assert auto.events_processed == ref.events_processed


class TestBackendPins:
    """End-to-end event-backend totals, pinned to the tracked baselines.

    These are the exact cycle totals the event tier produced *before*
    the vectorization (BENCH_backends.json at the seed), so any drift in
    the batched engine — or in the mapping underneath it — fails here
    rather than surfacing as a silent benchmark shift.
    """

    def test_small_cnn_pinned_and_engine_invariant(self):
        default = simulate(small_cnn_spec(), backend="event")
        reference = simulate(
            small_cnn_spec(),
            backend="event",
            config=SimConfig(event_engine="reference"),
        )
        assert default.total_cycles == pytest.approx(80128.4, abs=1e-6)
        assert default.total_cycles == reference.total_cycles
        assert default.energy.total == reference.energy.total

    def test_resnet18_pinned_and_engine_invariant(self):
        default = simulate(resnet18_spec(), backend="event")
        reference = simulate(
            resnet18_spec(),
            backend="event",
            config=SimConfig(event_engine="reference"),
        )
        assert default.total_cycles == pytest.approx(
            5089346.598187392, abs=1e-6
        )
        assert default.total_cycles == reference.total_cycles
        assert default.energy.total == reference.energy.total
