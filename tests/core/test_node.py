"""Single-node driver: Table 4 workload shape and scheduling trends."""

import numpy as np
import pytest

from repro.core.node import MAICCNode, table4_workload
from repro.errors import ConfigurationError
from repro.nn.workloads import ConvLayerSpec
from repro.riscv.pipeline import PipelineConfig


def reduced_table4():
    """The Table 4 workload scaled to a 5x5 ifmap for fast unit tests."""
    return ConvLayerSpec(0, "t4small", h=5, w=5, c=256, m=5, padding=0)


@pytest.fixture(scope="module")
def node_and_data():
    spec = reduced_table4()
    rng = np.random.default_rng(99)
    weights = rng.integers(-128, 128, size=(spec.m, spec.c, spec.r, spec.s))
    bias = rng.integers(-100, 100, size=spec.m)
    ifmap = rng.integers(-128, 128, size=(spec.c, spec.h, spec.w))
    return MAICCNode(spec, weights, bias), ifmap


class TestWorkload:
    def test_table4_spec(self):
        spec = table4_workload()
        assert (spec.h, spec.w, spec.c, spec.m) == (9, 9, 256, 5)
        assert spec.ofmap_hw == (7, 7)

    def test_weights_shape_validated(self):
        spec = reduced_table4()
        with pytest.raises(ConfigurationError):
            MAICCNode(spec, np.zeros((2, 2, 3, 3)))

    def test_ifmap_shape_validated(self, node_and_data):
        node, _ = node_and_data
        with pytest.raises(ConfigurationError):
            node.run(np.zeros((256, 4, 4)))


class TestBitTrue(object):
    def test_accumulators_match_reference(self, node_and_data):
        node, ifmap = node_and_data
        result = node.run(ifmap)
        assert np.array_equal(result.psums, node.reference(ifmap))

    def test_cmem_busy_cycles_reported(self, node_and_data):
        node, ifmap = node_and_data
        result = node.run(ifmap)
        assert result.cmem_busy_cycles > 0
        assert result.cmem_energy_pj > 0


class TestSchedulingTrends:
    """The Table 5 relationships on the reduced workload."""

    @pytest.fixture(scope="class")
    def cycles(self, node_and_data):
        node, ifmap = node_and_data
        out = {}
        for queue in (0, 2):
            for static in (False, True):
                cfg = PipelineConfig(cmem_queue_size=queue)
                out[(queue, static)] = node.run(
                    ifmap, static=static, pipeline=cfg
                ).stats.cycles
        return out

    def test_queue_helps(self, cycles):
        assert cycles[(2, False)] <= cycles[(0, False)]

    def test_static_scheduling_helps(self, cycles):
        assert cycles[(2, True)] < cycles[(2, False)]

    def test_static_gain_substantial(self, cycles):
        gain = 1 - cycles[(2, True)] / cycles[(2, False)]
        assert gain > 0.05  # paper: ~16%

    def test_results_invariant_across_configs(self, node_and_data):
        node, ifmap = node_and_data
        ref = node.reference(ifmap)
        for queue in (0, 1, 4):
            res = node.run(ifmap, pipeline=PipelineConfig(cmem_queue_size=queue))
            assert np.array_equal(res.psums, ref)
