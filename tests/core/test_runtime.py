"""The host deployment runtime: deploy -> infer -> exact outputs."""

import numpy as np
import pytest

from repro.core.runtime import MAICCRuntime, network_spec_of
from repro.errors import MappingError
from repro.nn.graph import Graph
from repro.nn.layers import Input, ReLU
from repro.nn.models import build_residual_cnn, build_small_cnn
from repro.nn.quantize import quantize_graph


@pytest.fixture(scope="module")
def deployed():
    graph = build_small_cnn()
    rng = np.random.default_rng(5)
    calibration = [rng.normal(size=(8, 8, 8)) for _ in range(2)]
    return MAICCRuntime().deploy(graph, calibration, name="small"), graph


class TestNetworkSpecDerivation:
    def test_conv_and_fc_layers_extracted(self, deployed):
        model, _ = deployed
        kinds = [s.kind for s in model.network]
        assert kinds.count("linear") == 1
        assert kinds.count("conv") == 3

    def test_shapes_follow_pooling(self, deployed):
        model, _ = deployed
        conv3 = next(s for s in model.network if s.name == "conv3")
        assert (conv3.h, conv3.w, conv3.c) == (4, 4, 16)  # after 2x2 pool

    def test_aux_only_graph_rejected(self):
        g = Graph()
        g.add("in", Input((4, 4, 4)))
        g.add("relu", ReLU(), ["in"])
        qg = quantize_graph(g, [np.zeros((4, 4, 4))])
        with pytest.raises(MappingError):
            network_spec_of(qg)


class TestDeployment:
    def test_performance_populated(self, deployed):
        model, _ = deployed
        assert model.latency_ms > 0
        assert model.throughput_samples_s > 0
        assert len(model.placements) == len(model.performance.runs)

    def test_placements_are_adjacent_chains(self, deployed):
        model, _ = deployed
        for placement in model.placements:
            assert placement.average_chain_hops() == pytest.approx(1.0)

    def test_summary_renders(self, deployed):
        model, _ = deployed
        text = model.summary()
        assert "small" in text
        assert "segment" in text


class TestInference:
    def test_outputs_match_quantized_reference(self, deployed):
        model, graph = deployed
        x = np.random.default_rng(9).normal(size=(8, 8, 8))
        result = model.infer(x)
        reference = model.qgraph.forward(x)[model.qgraph.output_name]
        assert np.array_equal(result.logits, reference)

    def test_cost_attached(self, deployed):
        model, _ = deployed
        result = model.infer(np.zeros((8, 8, 8)))
        assert result.latency_ms == model.latency_ms
        assert result.energy_mj > 0

    def test_residual_model_deploys(self):
        graph = build_residual_cnn()
        rng = np.random.default_rng(1)
        runtime = MAICCRuntime()
        model = runtime.deploy(graph, [rng.normal(size=(8, 8, 8))])
        x = rng.normal(size=(8, 8, 8))
        result = model.infer(x)
        assert result.outputs.shape == (10,)
