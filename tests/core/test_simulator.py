"""Chip-level simulation: strategies, energy accounting, paper shapes."""

import pytest

from repro.core.simulator import ChipSimulator
from repro.errors import MappingError
from repro.nn.workloads import resnet18_spec, small_cnn_spec


@pytest.fixture(scope="module")
def sim():
    return ChipSimulator()


@pytest.fixture(scope="module")
def resnet_runs(sim):
    net = resnet18_spec()
    return {
        name: sim.run(net, name)
        for name in ("single-layer", "greedy", "heuristic")
    }


class TestStrategyOrdering:
    """The paper's headline Table 6 shape."""

    def test_heuristic_fastest(self, resnet_runs):
        h = resnet_runs["heuristic"].latency_ms
        assert h < resnet_runs["greedy"].latency_ms
        assert h < resnet_runs["single-layer"].latency_ms

    def test_single_layer_slowest(self, resnet_runs):
        assert (
            resnet_runs["single-layer"].latency_ms
            > resnet_runs["greedy"].latency_ms
        )

    def test_ratios_near_paper(self, resnet_runs):
        """Paper: 24.1 : 10.4 : 5.1  ->  4.7x and 2.0x over heuristic."""
        h = resnet_runs["heuristic"].latency_ms
        single_ratio = resnet_runs["single-layer"].latency_ms / h
        greedy_ratio = resnet_runs["greedy"].latency_ms / h
        assert 2.5 < single_ratio < 7.0
        assert 1.4 < greedy_ratio < 3.5

    def test_heuristic_latency_magnitude(self, resnet_runs):
        """Paper: 5.138 ms on the 208-core array."""
        assert 3.0 < resnet_runs["heuristic"].latency_ms < 8.0


class TestTable7Shape:
    def test_throughput_near_200(self, resnet_runs):
        assert 120 < resnet_runs["heuristic"].throughput_samples_s < 330

    def test_power_near_25w(self, resnet_runs):
        assert 18 < resnet_runs["heuristic"].average_power_w < 32

    def test_efficiency_near_8(self, resnet_runs):
        assert 5 < resnet_runs["heuristic"].throughput_per_watt < 13

    def test_gops_per_watt_excludes_dram(self, resnet_runs):
        run = resnet_runs["heuristic"]
        assert run.gops_per_watt(include_dram=False) > run.gops_per_watt()


class TestEnergyAccounting:
    def test_dram_dominates(self, resnet_runs):
        fr = resnet_runs["heuristic"].energy.fractions()
        assert fr["dram"] > 0.5  # paper: 71%

    def test_cmem_and_noc_shares(self, resnet_runs):
        fr = resnet_runs["heuristic"].energy.fractions()
        assert 0.05 < fr["cmem"] < 0.2  # paper: 11%
        assert 0.05 < fr["noc"] < 0.2   # paper: 11%

    def test_fractions_sum_to_one(self, resnet_runs):
        fr = resnet_runs["heuristic"].energy.fractions()
        assert sum(fr.values()) == pytest.approx(1.0)

    def test_op_counts_nonzero(self, resnet_runs):
        ops = resnet_runs["heuristic"].ops
        assert ops.macs > 1e6
        assert ops.dram_bytes > resnet18_spec().total_macs // 1000
        assert ops.noc_flit_hops > 0


class TestPlans:
    def test_unknown_strategy(self, sim):
        with pytest.raises(MappingError):
            sim.plan(resnet18_spec(), "random")

    def test_segment_latency_lookup(self, resnet_runs):
        run = resnet_runs["heuristic"]
        assert run.segment_latency_ms(1) > 0
        with pytest.raises(MappingError):
            run.segment_latency_ms(999)

    def test_small_network_runs(self, sim):
        result = sim.run(small_cnn_spec(), "heuristic")
        assert result.latency_ms > 0
        assert result.total_cycles > 0

    def test_nodes_capped_by_array(self, resnet_runs):
        for name, run in resnet_runs.items():
            for seg_run in run.runs:
                assert seg_run.segment.total_nodes <= 208, name
