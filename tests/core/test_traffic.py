"""NoC traffic replay of placed segments."""

import pytest

from repro.core.perfmodel import PerformanceModel
from repro.core.traffic import simulate_segment_traffic
from repro.mapping.placement import (
    random_placement,
    raster_placement,
    zigzag_placement,
)
from repro.mapping.segmentation import HeuristicStrategy
from repro.nn.workloads import resnet18_spec


@pytest.fixture(scope="module")
def segment():
    plan = HeuristicStrategy().plan(
        resnet18_spec(), PerformanceModel().layer_time_fn()
    )
    return plan.segments[2]  # layers 12-15


class TestTrafficReplay:
    def test_zigzag_minimizes_flit_hops(self, segment):
        zig = simulate_segment_traffic(segment, zigzag_placement(segment))
        rnd = simulate_segment_traffic(segment, random_placement(segment, seed=2))
        assert zig.flit_hops < rnd.flit_hops

    def test_energy_scales_with_flit_hops(self, segment):
        zig = simulate_segment_traffic(segment, zigzag_placement(segment))
        assert zig.energy_pj() == pytest.approx(zig.flit_hops * 5.4)

    def test_packet_count_placement_invariant(self, segment):
        a = simulate_segment_traffic(segment, zigzag_placement(segment))
        b = simulate_segment_traffic(segment, raster_placement(segment))
        assert a.packets == b.packets

    def test_wide_channels_double_row_traffic(self, segment):
        from repro.mapping.segmentation import Segment
        from repro.mapping.allocation import AllocationResult
        from repro.nn.workloads import ConvLayerSpec

        def one_layer_segment(c):
            spec = ConvLayerSpec(1, "t", h=7, w=7, c=c, m=10)
            alloc = AllocationResult(nodes={1: 4}, times={1: 1.0})
            return Segment(layers=[spec], allocation=alloc)

        narrow = simulate_segment_traffic(
            one_layer_segment(256), zigzag_placement(one_layer_segment(256))
        )
        wide = simulate_segment_traffic(
            one_layer_segment(512), zigzag_placement(one_layer_segment(512))
        )
        assert wide.packets == 2 * narrow.packets
