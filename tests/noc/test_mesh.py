"""Mesh NoC latency, contention, and energy accounting."""

import pytest

from repro.errors import NoCError
from repro.noc.mesh import MeshConfig, MeshNoC
from repro.noc.packet import FLIT_BITS, Packet, PacketKind


class TestPackets:
    def test_scalar_remote_store_is_two_flits(self):
        pkt = Packet(src=(0, 0), dst=(1, 0), kind=PacketKind.REMOTE_STORE)
        assert pkt.flits == 2  # head + 32-bit payload

    def test_row_transfer_is_five_flits(self):
        pkt = Packet(src=(0, 0), dst=(1, 0), kind=PacketKind.ROW_TRANSFER)
        assert pkt.flits == 1 + 256 // FLIT_BITS

    def test_load_request_is_head_only(self):
        pkt = Packet(src=(0, 0), dst=(1, 0), kind=PacketKind.REMOTE_LOAD_REQ)
        assert pkt.flits == 1

    def test_custom_payload(self):
        pkt = Packet(src=(0, 0), dst=(1, 0), kind=PacketKind.REMOTE_STORE,
                     payload_bits=512)
        assert pkt.flits == 9


class TestZeroLoadLatency:
    def test_formula(self):
        noc = MeshNoC()
        # 3 hops * 2 cycles + (5 - 1) serialization.
        assert noc.latency((0, 0), (3, 0), flits=5) == 10

    def test_zero_hop(self):
        noc = MeshNoC()
        assert noc.latency((2, 2), (2, 2), flits=1) == 0

    def test_invalid_flits(self):
        with pytest.raises(NoCError):
            MeshNoC().latency((0, 0), (1, 0), flits=0)

    def test_accounting(self):
        noc = MeshNoC()
        noc.account((0, 0), (2, 0), flits=5)
        assert noc.stats.packets == 1
        assert noc.stats.flit_hops == 10
        assert noc.stats.energy_pj(5.4) == pytest.approx(54.0)


class TestContention:
    def test_uncontended_send_matches_closed_form(self):
        noc = MeshNoC()
        pkt = Packet(src=(0, 0), dst=(3, 0), kind=PacketKind.ROW_TRANSFER)
        assert noc.send(pkt, 0) == noc.latency((0, 0), (3, 0), pkt.flits)

    def test_shared_link_serializes(self):
        noc = MeshNoC()
        pkt = Packet(src=(0, 0), dst=(3, 0), kind=PacketKind.ROW_TRANSFER)
        first = noc.send(pkt, 0)
        second = noc.send(pkt, 0)
        assert second > first

    def test_disjoint_paths_do_not_interact(self):
        noc = MeshNoC()
        a = Packet(src=(0, 0), dst=(3, 0), kind=PacketKind.ROW_TRANSFER)
        b = Packet(src=(0, 5), dst=(3, 5), kind=PacketKind.ROW_TRANSFER)
        t_a = noc.send(a, 0)
        t_b = noc.send(b, 0)
        assert t_a == t_b

    def test_reset_contention(self):
        noc = MeshNoC()
        pkt = Packet(src=(0, 0), dst=(1, 0), kind=PacketKind.REMOTE_STORE)
        noc.send(pkt, 0)
        noc.reset_contention()
        assert noc.send(pkt, 0) == noc.latency((0, 0), (1, 0), pkt.flits)

    def test_coord_validation(self):
        noc = MeshNoC(MeshConfig(width=4, height=4))
        with pytest.raises(NoCError):
            noc.latency((0, 0), (4, 0), 1)


class TestAvgLatency:
    def test_zero_packets_is_safe(self):
        assert MeshNoC().stats.avg_latency == 0.0

    def test_mean_over_sends(self):
        noc = MeshNoC()
        pkt = Packet(src=(0, 0), dst=(2, 0), kind=PacketKind.REMOTE_STORE)
        noc.send(pkt, 0)
        noc.send(pkt, 0)
        assert noc.stats.avg_latency == noc.stats.total_latency / 2


class TestLinkOccupancy:
    def test_per_link_counters(self):
        noc = MeshNoC()
        pkt = Packet(src=(0, 0), dst=(2, 0), kind=PacketKind.ROW_TRANSFER)
        noc.send(pkt, 0)
        # X-Y path touches exactly the two eastbound links.
        assert set(noc.link_stats) == {
            ((0, 0), (1, 0)),
            ((1, 0), (2, 0)),
        }
        hold = noc.config.router_delay + pkt.flits - 1
        for stats in noc.link_stats.values():
            assert stats.packets == 1
            assert stats.busy_cycles == hold
            assert stats.max_wait == 0

    def test_contention_raises_max_wait_and_queue_depth(self):
        noc = MeshNoC()
        pkt = Packet(src=(0, 0), dst=(1, 0), kind=PacketKind.ROW_TRANSFER)
        assert noc.max_queue_depth == 0
        noc.send(pkt, 0)
        noc.send(pkt, 0)  # blocked behind the first packet's tail
        link = noc.link_stats[((0, 0), (1, 0))]
        assert link.packets == 2
        assert link.max_wait > 0
        assert noc.max_queue_depth == link.max_wait

    def test_busiest_link(self):
        noc = MeshNoC()
        assert noc.busiest_link() is None
        hot = Packet(src=(0, 0), dst=(1, 0), kind=PacketKind.REMOTE_STORE)
        cold = Packet(src=(3, 3), dst=(4, 3), kind=PacketKind.REMOTE_STORE)
        noc.send(hot, 0)
        noc.send(hot, 50)
        noc.send(cold, 0)
        link, stats = noc.busiest_link()
        assert link == ((0, 0), (1, 0))
        assert stats.packets == 2

    def test_busiest_link_tie_breaks_by_coordinate(self):
        noc = MeshNoC()
        a = Packet(src=(2, 2), dst=(3, 2), kind=PacketKind.REMOTE_STORE)
        b = Packet(src=(0, 0), dst=(1, 0), kind=PacketKind.REMOTE_STORE)
        noc.send(a, 0)
        noc.send(b, 0)
        link, _ = noc.busiest_link()
        assert link == ((0, 0), (1, 0))

    def test_reset_contention_clears_link_stats(self):
        noc = MeshNoC()
        noc.send(Packet(src=(0, 0), dst=(1, 0), kind=PacketKind.REMOTE_STORE), 0)
        noc.reset_contention()
        assert noc.link_stats == {}
        assert noc.max_queue_depth == 0
        assert noc.busiest_link() is None
