"""X-Y routing properties."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import NoCError
from repro.noc.router import hop_count, xy_route

coords = st.tuples(st.integers(0, 15), st.integers(0, 15))


class TestXYRoute:
    def test_straight_line(self):
        path = xy_route((0, 0), (3, 0), 16, 16)
        assert path == [(0, 0), (1, 0), (2, 0), (3, 0)]

    def test_x_before_y(self):
        path = xy_route((0, 0), (2, 2), 16, 16)
        assert path[:3] == [(0, 0), (1, 0), (2, 0)]
        assert path[3:] == [(2, 1), (2, 2)]

    def test_self_route(self):
        assert xy_route((5, 5), (5, 5), 16, 16) == [(5, 5)]

    def test_bounds_checked(self):
        with pytest.raises(NoCError):
            xy_route((0, 0), (16, 0), 16, 16)

    @given(coords, coords)
    def test_path_length_is_manhattan(self, src, dst):
        path = xy_route(src, dst, 16, 16)
        assert len(path) - 1 == hop_count(src, dst)

    @given(coords, coords)
    def test_adjacent_steps(self, src, dst):
        path = xy_route(src, dst, 16, 16)
        for a, b in zip(path, path[1:]):
            assert abs(a[0] - b[0]) + abs(a[1] - b[1]) == 1

    @given(coords, coords)
    def test_deterministic(self, src, dst):
        assert xy_route(src, dst, 16, 16) == xy_route(src, dst, 16, 16)
