"""``MeshNoC.send_stream`` vs the per-packet send loop.

``send_stream`` collapses a back-to-back stream (each copy injected when
the previous one fully arrived — the pattern the traffic replay uses)
into one contended send plus a closed form for the rest.  Its contract
is *exact* equality with the loop: arrival time, per-link busy-until
state, link occupancy counters, and the mesh totals.
"""

import copy

import numpy as np
import pytest

from repro.errors import NoCError
from repro.noc.mesh import MeshConfig, MeshNoC
from repro.noc.packet import Packet, PacketKind


def loop_reference(noc, packet, inject_time, count):
    t = inject_time
    for _ in range(count):
        t = noc.send(packet, t)
    return t


def assert_same_state(a: MeshNoC, b: MeshNoC) -> None:
    assert a._link_free == b._link_free
    assert set(a.link_stats) == set(b.link_stats)
    for link, stats in a.link_stats.items():
        other = b.link_stats[link]
        assert (stats.packets, stats.busy_cycles, stats.max_wait) == (
            other.packets, other.busy_cycles, other.max_wait
        )
    assert (a.stats.packets, a.stats.flit_hops, a.stats.total_latency) == (
        b.stats.packets, b.stats.flit_hops, b.stats.total_latency
    )


class TestSendStream:
    def test_count_one_equals_single_send(self):
        stream = MeshNoC()
        loop = MeshNoC()
        pkt = Packet(src=(0, 0), dst=(3, 2), kind=PacketKind.ROW_TRANSFER)
        assert stream.send_stream(pkt, 5, 1) == loop.send(pkt, 5)
        assert_same_state(stream, loop)

    def test_count_must_be_positive(self):
        pkt = Packet(src=(0, 0), dst=(1, 0), kind=PacketKind.REMOTE_STORE)
        with pytest.raises(NoCError):
            MeshNoC().send_stream(pkt, 0, 0)

    @pytest.mark.parametrize("count", [2, 8, 33])
    def test_stream_matches_loop_on_clean_mesh(self, count):
        pkt = Packet(src=(1, 1), dst=(6, 4), kind=PacketKind.ROW_TRANSFER)
        stream = MeshNoC()
        loop = MeshNoC()
        assert stream.send_stream(pkt, 0, count) == loop_reference(
            loop, pkt, 0, count
        )
        assert_same_state(stream, loop)

    def test_stream_contends_with_prior_traffic(self):
        # Dirty the shared links first so the stream's head has to wait;
        # follow-on copies must still collapse exactly.
        prior = Packet(src=(0, 0), dst=(5, 0), kind=PacketKind.ROW_TRANSFER)
        pkt = Packet(src=(0, 0), dst=(5, 3), kind=PacketKind.ROW_TRANSFER)
        stream = MeshNoC()
        loop = MeshNoC()
        stream.send(prior, 0)
        loop.send(prior, 0)
        assert stream.send_stream(pkt, 0, 6) == loop_reference(loop, pkt, 0, 6)
        assert_same_state(stream, loop)

    def test_randomized_differential(self):
        rng = np.random.default_rng(42)
        for trial in range(60):
            rd = int(rng.integers(1, 4))
            config = MeshConfig(router_delay=rd)
            stream = MeshNoC(config)
            loop = MeshNoC(config)
            # Prior traffic dirties random links on both meshes equally.
            for _ in range(int(rng.integers(0, 4))):
                p = Packet(
                    src=(int(rng.integers(0, 8)), int(rng.integers(0, 8))),
                    dst=(int(rng.integers(0, 8)), int(rng.integers(0, 8))),
                    kind=PacketKind.ROW_TRANSFER,
                )
                if p.src == p.dst:
                    continue
                t0 = int(rng.integers(0, 20))
                stream.send(p, t0)
                loop.send(p, t0)
            pkt = Packet(
                src=(int(rng.integers(0, 8)), int(rng.integers(0, 8))),
                dst=(int(rng.integers(0, 8)), int(rng.integers(0, 8))),
                kind=PacketKind.ROW_TRANSFER,
            )
            if pkt.src == pkt.dst:
                continue
            count = int(rng.integers(1, 30))
            inject = int(rng.integers(0, 10))
            snapshot = copy.deepcopy(loop)
            got = stream.send_stream(pkt, inject, count)
            want = loop_reference(snapshot, pkt, inject, count)
            assert got == want, f"trial {trial}"
            assert_same_state(stream, snapshot)

    def test_telemetry_enabled_falls_back_to_loop(self):
        from repro import telemetry

        sink = telemetry.Telemetry()
        pkt = Packet(src=(0, 0), dst=(4, 1), kind=PacketKind.ROW_TRANSFER)
        with telemetry.use(sink):
            traced = MeshNoC(telemetry=sink)
            arrival = traced.send_stream(pkt, 0, 5)
        plain = MeshNoC()
        assert arrival == plain.send_stream(pkt, 0, 5)
        # One span per (packet, link): 5 packets x 5 hops.
        spans = [e for e in sink.trace.events if e.name == pkt.kind.value]
        assert len(spans) == 5 * 5
