"""scripts/trace_run.py CLI matrix: every registered sim backend is a
legal ``--backend``, unknown names are rejected at argparse time, and
the emitted artifacts validate."""

import json
import os
import subprocess
import sys

import pytest

ROOT = os.path.join(os.path.dirname(__file__), "..", "..")
SCRIPT = os.path.join(ROOT, "scripts", "trace_run.py")

sys.path.insert(0, os.path.join(ROOT, "src"))
from repro.sim import available_backends  # noqa: E402

sys.path.pop(0)


def run_cli(tmp_path, *argv):
    env = dict(os.environ, PYTHONPATH=os.path.join(ROOT, "src"))
    return subprocess.run(
        [sys.executable, SCRIPT, "--workload", "tiny",
         "--metrics-out", str(tmp_path / "metrics.json"),
         "--trace-out", str(tmp_path / "trace.json"), *argv],
        capture_output=True, text=True, env=env, cwd=ROOT,
    )


@pytest.mark.parametrize("backend", sorted(available_backends()))
def test_every_registered_backend_is_accepted(tmp_path, backend):
    proc = run_cli(tmp_path, "--backend", backend, "--validate")
    assert proc.returncode == 0, proc.stderr
    metrics = json.loads((tmp_path / "metrics.json").read_text())
    assert metrics["summary"]["sim"]["backend"] == backend
    assert metrics["summary"]["sim"]["total_cycles"] > 0
    assert "trace OK" in proc.stdout


def test_unknown_backend_is_rejected_by_argparse(tmp_path):
    proc = run_cli(tmp_path, "--backend", "abacus")
    assert proc.returncode == 2
    assert "invalid choice" in proc.stderr
    assert not (tmp_path / "metrics.json").exists()


def test_help_lists_the_backend_choices(tmp_path):
    env = dict(os.environ, PYTHONPATH=os.path.join(ROOT, "src"))
    proc = subprocess.run(
        [sys.executable, SCRIPT, "--help"],
        capture_output=True, text=True, env=env, cwd=ROOT,
    )
    assert proc.returncode == 0
    for backend in sorted(available_backends()):
        assert backend in proc.stdout
