"""Cross-tier consistency: the simulation tiers agree where they overlap.

docs/SIMULATORS.md promises the tiers cross-validate; these tests pin the
promises down:

* the analytic Eq. (1) iteration model (chip tier) tracks the measured
  cycle-level node simulator on the Table 4 workload;
* the event-driven per-core simulator tracks the tandem-queue model on a
  real mapped ResNet18 segment;
* the analytic NoC latency formula agrees with the contention model at
  zero load.
"""

import numpy as np
import pytest

from repro.core.event_streaming import EventDrivenSegmentSimulator
from repro.core.node import MAICCNode, table4_workload
from repro.core.perfmodel import PerformanceModel, TimingParams
from repro.core.simulator import ChipSimulator
from repro.core.streaming import SegmentSimulator
from repro.noc.mesh import MeshNoC
from repro.noc.packet import Packet, PacketKind
from repro.nn.workloads import resnet18_spec


class TestNodeVsAnalyticModel:
    @pytest.mark.slow
    def test_eq1_model_tracks_cycle_level_node(self):
        """The chip-tier per-iteration estimate is within 25% of the
        measured cycle-level node on the paper's own node workload."""
        spec = table4_workload()
        rng = np.random.default_rng(0)
        node = MAICCNode(
            spec,
            rng.integers(-128, 128, size=(spec.m, spec.c, spec.r, spec.s)),
            rng.integers(-100, 100, size=spec.m),
        )
        measured = node.run(
            rng.integers(-128, 128, size=(spec.c, spec.h, spec.w))
        ).stats.cycles / (spec.h * spec.w)
        # The node runs one full layer alone: slice-parallel CMem, no
        # forwarding, no handshakes.  The analytic estimate misses the
        # kernel's receive path and some hazard bursts, so the contract is
        # agreement within a factor of ~1.6 — the `pipeline_overhead`
        # calibration constant absorbs the average of this gap at chip
        # scale (see TimingParams).
        model = PerformanceModel(
            TimingParams(slice_parallel_cmem=True, handshake_cost=0.0)
        )
        timing = model.iteration_timing(spec, 1)
        estimate = max(timing.t_cmem, timing.t_scalar)
        assert 0.6 < estimate / measured < 1.3


class TestEventVsTandem:
    def test_agreement_on_mapped_segment(self):
        sim = ChipSimulator()
        plan = sim.plan(resnet18_spec(), "heuristic")
        segment = plan.segments[2]  # layers 12-15
        timings = sim._segment_timings(segment)
        tandem = SegmentSimulator(timings).run().total_cycles
        event = EventDrivenSegmentSimulator(
            timings, forward_policy="eager"
        ).run().total_cycles
        assert event == pytest.approx(tandem, rel=0.1)


class TestNoCTiers:
    def test_zero_load_send_equals_formula(self):
        noc = MeshNoC()
        for dst in ((1, 0), (5, 3), (0, 9)):
            pkt = Packet(src=(0, 0), dst=dst, kind=PacketKind.ROW_TRANSFER)
            fresh = MeshNoC()
            assert fresh.send(pkt, 0) == noc.latency((0, 0), dst, pkt.flits)
