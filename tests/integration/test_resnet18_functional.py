"""Full ResNet18 through the functional MAICC path, bit-for-bit.

The headline correctness result: the paper's benchmark network (all 20
mapped layers plus stem, pooling, residual adds, and the classifier) runs
through the node-group execution model — CMem data layout, filter
splitting, 256-lane sub-vectors, per-group accumulation — and reproduces
the int8 reference engine exactly at full 224x224 resolution.

~45 s; marked slow (deselect with ``-m 'not slow'``).
"""

import numpy as np
import pytest

from repro.core.functional import simulate_quantized_graph
from repro.nn import build_resnet18, quantize_graph


@pytest.mark.slow
def test_resnet18_functional_equals_reference():
    graph = build_resnet18()
    x = np.random.default_rng(2023).normal(size=(3, 224, 224))
    qgraph = quantize_graph(graph, [x])

    reference = qgraph.forward(x)
    simulated = simulate_quantized_graph(qgraph, x)

    mismatched = [
        name for name in reference
        if not np.array_equal(reference[name], simulated[name])
    ]
    assert not mismatched, f"activations diverge at {mismatched}"

    # And the classification outcome is identical, of course.
    assert int(np.argmax(simulated[qgraph.output_name])) == int(
        np.argmax(reference[qgraph.output_name])
    )
