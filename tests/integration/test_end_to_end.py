"""End-to-end integration: every abstraction level agrees.

The chain under test: float model -> int8 quantization -> functional
node-group execution (NumPy-fast and bit-line-true) -> single-node
cycle-level assembly execution -> chip-level mapping and simulation.
"""

import numpy as np
import pytest

from repro.core.functional import simulate_quantized_graph
from repro.core.node import MAICCNode
from repro.core.simulator import ChipSimulator
from repro.nn.models import build_residual_cnn, build_small_cnn
from repro.nn.quantize import QConv2d, quantize_graph
from repro.nn.workloads import ConvLayerSpec, small_cnn_spec


@pytest.fixture(scope="module")
def quantized_small_cnn():
    graph = build_small_cnn()
    x = np.random.default_rng(21).normal(size=(8, 8, 8))
    return graph, quantize_graph(graph, [x]), x


class TestFunctionalStack:
    def test_fast_functional_equals_reference(self, quantized_small_cnn):
        _, qg, x = quantized_small_cnn
        ref = qg.forward(x)
        sim = simulate_quantized_graph(qg, x)
        for name in ref:
            assert np.array_equal(ref[name], sim[name]), name

    @pytest.mark.slow
    def test_bit_true_functional_equals_reference(self, quantized_small_cnn):
        _, qg, x = quantized_small_cnn
        ref = qg.forward(x)
        sim = simulate_quantized_graph(qg, x, bit_true=True)
        for name in ref:
            assert np.array_equal(ref[name], sim[name]), name


class TestCycleLevelStack:
    def test_assembly_kernel_matches_quantized_conv(self, quantized_small_cnn):
        """One real conv layer of the quantized net runs on the cycle-level
        node and reproduces the reference int32 accumulators."""
        _, qg, x = quantized_small_cnn
        acts = qg.forward(x)
        conv_name = "conv2"
        layer = qg.nodes[conv_name].layer
        assert isinstance(layer, QConv2d)
        q_in = acts[qg.nodes[conv_name].inputs[0]]
        m, c, r, s = layer.weight_q.shape
        # The 16x(3x3x16) layer exceeds one node; run a 4-filter slice.
        spec = ConvLayerSpec(
            0, conv_name, h=q_in.shape[1], w=q_in.shape[2], c=c, m=4,
            r=r, s=s, stride=layer.stride, padding=layer.padding,
        )
        node = MAICCNode(spec, layer.weight_q[:4], layer.bias_q[:4])
        result = node.run(q_in)
        assert np.array_equal(result.psums, layer.accumulate(q_in)[:4])


class TestChipStack:
    def test_small_cnn_maps_and_runs(self):
        sim = ChipSimulator()
        for strategy in ("single-layer", "greedy", "heuristic"):
            result = sim.run(small_cnn_spec(), strategy)
            assert result.total_cycles > 0
            assert 0 < result.average_power_w < 50

    def test_residual_network_functional(self):
        graph = build_residual_cnn()
        x = np.random.default_rng(33).normal(size=(8, 8, 8))
        qg = quantize_graph(graph, [x])
        ref = qg.forward(x)
        sim = simulate_quantized_graph(qg, x)
        assert np.array_equal(ref[qg.output_name], sim[qg.output_name])
