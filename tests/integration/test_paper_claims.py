"""The paper's headline claims, asserted as reproduction targets.

Each test names the claim (abstract / Sec. 6) and the tolerance we hold
the reproduction to.  Shape matters more than absolute numbers: who wins,
by roughly what factor.
"""

import pytest

from repro.baselines.cpu_gpu import CPU_I9_13900K, GPU_RTX_4090
from repro.baselines.neural_cache import NeuralCacheModel
from repro.core.node import MAICCNode, table4_workload
from repro.core.simulator import ChipSimulator
from repro.energy.area import area_breakdown
from repro.nn.workloads import resnet18_spec

import numpy as np


@pytest.fixture(scope="module")
def maicc_run():
    return ChipSimulator().run(resnet18_spec(), "heuristic")


class TestAbstractClaims:
    def test_4_3x_throughput_over_cpu(self, maicc_run):
        cpu = CPU_I9_13900K.throughput_samples_s(resnet18_spec())
        ratio = maicc_run.throughput_samples_s / cpu
        assert 3.0 < ratio < 6.0  # paper: 4.3x

    def test_31_6x_efficiency_over_cpu(self, maicc_run):
        cpu = CPU_I9_13900K.throughput_per_watt(resnet18_spec())
        ratio = maicc_run.throughput_per_watt / cpu
        assert 20 < ratio < 45  # paper: 31.6x

    def test_1_8x_efficiency_over_gpu(self, maicc_run):
        gpu = GPU_RTX_4090.throughput_per_watt(resnet18_spec())
        ratio = maicc_run.throughput_per_watt / gpu
        assert 1.2 < ratio < 2.6  # paper: 1.8x

    def test_gpu_throughput_lead_kept(self, maicc_run):
        gpu = GPU_RTX_4090.throughput_samples_s(resnet18_spec())
        ratio = maicc_run.throughput_samples_s / gpu
        assert 0.1 < ratio < 0.35  # paper: 0.2x

    def test_28mm2_chip(self):
        assert area_breakdown().total == pytest.approx(28, rel=0.05)

    def test_about_4mb_on_chip_memory(self):
        from repro.core.chip import MAICCChip

        kb = MAICCChip().summary()["on_chip_memory_kb"]
        assert 3.9 * 1024 <= kb <= 4.4 * 1024


class TestSection6Claims:
    def test_2_3x_single_node_speedup_over_neural_cache(self):
        spec = table4_workload()
        rng = np.random.default_rng(0)
        node = MAICCNode(
            spec,
            rng.integers(-128, 128, size=(spec.m, spec.c, spec.r, spec.s)),
            rng.integers(-100, 100, size=spec.m),
        )
        maicc = node.run(rng.integers(-128, 128, size=(spec.c, spec.h, spec.w)))
        cache = NeuralCacheModel().run(spec)
        ratio = cache.cycles / maicc.stats.cycles
        assert 1.8 < ratio < 4.5  # paper: 2.3x

    def test_dram_dominates_energy(self, maicc_run):
        assert maicc_run.energy.fractions()["dram"] == pytest.approx(0.71, abs=0.08)

    def test_latency_near_5ms(self, maicc_run):
        assert maicc_run.latency_ms == pytest.approx(5.13, rel=0.25)

    def test_power_near_25w(self, maicc_run):
        assert maicc_run.average_power_w == pytest.approx(24.67, rel=0.15)

    def test_maicc_more_efficient_than_neural_cache_chip_level(self, maicc_run):
        """Sec. 6.3: 50.03 vs 22.90 GFLOPS/W (2.2x), DRAM excluded."""
        ours = maicc_run.gops_per_watt(include_dram=False)
        assert ours > 22.90  # clearly above the Neural Cache figure
