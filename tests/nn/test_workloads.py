"""The Table 6 layer list and ConvLayerSpec arithmetic."""

import pytest

from repro.errors import ConfigurationError
from repro.nn.workloads import ConvLayerSpec, resnet18_spec, small_cnn_spec


class TestConvLayerSpec:
    def test_ofmap_geometry(self):
        spec = ConvLayerSpec(1, "c", h=56, w=56, c=64, m=64)
        assert spec.ofmap_hw == (56, 56)
        strided = ConvLayerSpec(2, "s", h=56, w=56, c=64, m=128, stride=2)
        assert strided.ofmap_hw == (28, 28)

    def test_macs(self):
        spec = ConvLayerSpec(1, "c", h=4, w=4, c=2, m=3, r=3, s=3, padding=1)
        assert spec.macs == 16 * 3 * 2 * 9

    def test_weight_count(self):
        spec = ConvLayerSpec(1, "c", h=4, w=4, c=2, m=3)
        assert spec.weight_count == 3 * 2 * 9

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ConvLayerSpec(1, "bad", h=0, w=4, c=2, m=3)


class TestResNet18Spec:
    @pytest.fixture(scope="class")
    def net(self):
        return resnet18_spec()

    def test_twenty_layers(self, net):
        assert len(net) == 20

    def test_paper_indices(self, net):
        assert net.layer(1).name == "conv1_1"
        assert net.layer(5).kind == "shortcut"
        assert net.layer(10).kind == "shortcut"
        assert net.layer(15).kind == "shortcut"
        assert net.layer(20).kind == "linear"

    def test_stage_geometry(self, net):
        assert (net.layer(1).h, net.layer(1).c, net.layer(1).m) == (56, 64, 64)
        assert (net.layer(7).h, net.layer(7).c) == (28, 128)
        assert (net.layer(12).h, net.layer(12).c) == (14, 256)
        assert (net.layer(17).h, net.layer(17).c) == (7, 512)

    def test_strided_transitions(self, net):
        for idx in (5, 6, 10, 11, 15, 16):
            assert net.layer(idx).stride == 2, idx

    def test_linear_as_1x1_conv(self, net):
        fc = net.layer(20)
        assert (fc.h, fc.w, fc.r, fc.s) == (1, 1, 1, 1)
        assert (fc.c, fc.m) == (512, 1000)

    def test_total_macs_magnitude(self, net):
        # ~1.7 GMACs for the mapped portion of ResNet18 (stem excluded).
        assert 1.5e9 < net.total_macs < 1.9e9

    def test_unknown_index(self, net):
        with pytest.raises(ConfigurationError):
            net.layer(21)


def test_small_cnn_spec():
    net = small_cnn_spec()
    assert len(net) == 4
    assert net.layer(4).kind == "linear"
