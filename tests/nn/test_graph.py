"""DAG graph construction, ordering, and execution."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.nn.graph import Graph
from repro.nn.layers import Add, Input, ReLU


def diamond_graph():
    g = Graph()
    g.add("in", Input((2, 2, 2)))
    g.add("left", ReLU(), ["in"])
    g.add("right", ReLU(), ["in"])
    g.add("join", Add(), ["left", "right"])
    return g


class TestConstruction:
    def test_duplicate_name_rejected(self):
        g = Graph()
        g.add("a", Input((1,)))
        with pytest.raises(GraphError):
            g.add("a", ReLU(), ["a"])

    def test_arity_checked(self):
        g = Graph()
        g.add("in", Input((1,)))
        with pytest.raises(GraphError):
            g.add("bad", Add(), ["in"])

    def test_input_takes_no_predecessors(self):
        g = Graph()
        g.add("in", Input((1,)))
        with pytest.raises(GraphError):
            g.add("in2", Input((1,)), ["in"])

    def test_unknown_input_detected(self):
        g = Graph()
        g.add("in", Input((1,)))
        g.add("x", ReLU(), ["ghost"])
        with pytest.raises(GraphError):
            g.topological_order()


class TestTopology:
    def test_topological_order_respects_edges(self):
        g = diamond_graph()
        order = g.topological_order()
        assert order.index("in") < order.index("left")
        assert order.index("left") < order.index("join")
        assert order.index("right") < order.index("join")

    def test_output_detection(self):
        assert diamond_graph().output_name == "join"

    def test_input_detection(self):
        assert diamond_graph().input_name == "in"

    def test_multiple_sinks_rejected(self):
        g = Graph()
        g.add("in", Input((1,)))
        g.add("a", ReLU(), ["in"])
        g.add("b", ReLU(), ["in"])
        with pytest.raises(GraphError):
            g.output_name

    def test_cycle_detected(self):
        g = Graph()
        g.add("in", Input((1,)))
        g.add("a", ReLU(), ["b"])
        g.add("b", ReLU(), ["a"])
        with pytest.raises(GraphError):
            g.topological_order()


class TestExecution:
    def test_diamond_forward(self):
        g = diamond_graph()
        x = np.full((2, 2, 2), -3.0)
        acts = g.forward(x)
        assert np.all(acts["join"] == 0.0)
        x = np.full((2, 2, 2), 3.0)
        assert np.all(g.forward(x)["join"] == 6.0)

    def test_shape_inference(self):
        shapes = diamond_graph().infer_shapes()
        assert shapes["join"] == (2, 2, 2)
