"""Quantization: BN folding, integer layers, end-to-end error bounds."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import QuantizationError
from repro.nn.graph import Graph
from repro.nn.layers import BatchNorm2d, Conv2d, Input, ReLU
from repro.nn.models import build_residual_cnn, build_small_cnn
from repro.nn.quantize import (
    QAvgPool2d,
    QAdd,
    QConv2d,
    QReLU,
    fold_batchnorm,
    quantize_graph,
)
from repro.nn.reference import quantization_error, run_float, run_quantized


def conv_bn_graph(seed=0):
    rng = np.random.default_rng(seed)
    g = Graph()
    g.add("in", Input((3, 6, 6)))
    g.add("conv", Conv2d(rng.normal(size=(4, 3, 3, 3)), rng.normal(size=4), padding=1), ["in"])
    g.add("bn", BatchNorm2d(
        rng.uniform(0.5, 1.5, 4), rng.normal(size=4),
        rng.normal(size=4), rng.uniform(0.5, 1.5, 4)), ["conv"])
    g.add("relu", ReLU(), ["bn"])
    return g


class TestBatchNormFolding:
    def test_folding_preserves_function(self):
        g = conv_bn_graph()
        folded = fold_batchnorm(g)
        x = np.random.default_rng(1).normal(size=(3, 6, 6))
        assert np.allclose(run_float(g, x), run_float(folded, x))

    def test_folded_graph_has_no_bn(self):
        folded = fold_batchnorm(conv_bn_graph())
        assert not any(isinstance(n.layer, BatchNorm2d) for n in folded.nodes.values())

    def test_shared_conv_output_not_folded(self):
        """A BN whose conv feeds another consumer cannot be absorbed."""
        rng = np.random.default_rng(2)
        g = Graph()
        g.add("in", Input((3, 4, 4)))
        g.add("conv", Conv2d(rng.normal(size=(3, 3, 3, 3)), padding=1), ["in"])
        g.add("bn", BatchNorm2d(np.ones(3), np.zeros(3), np.zeros(3), np.ones(3)), ["conv"])
        g.add("other", ReLU(), ["conv"])
        from repro.nn.layers import Add

        g.add("join", Add(), ["bn", "other"])
        folded = fold_batchnorm(g)
        assert any(isinstance(n.layer, BatchNorm2d) for n in folded.nodes.values())
        x = rng.normal(size=(3, 4, 4))
        assert np.allclose(run_float(g, x), run_float(folded, x))


class TestQuantizedGraph:
    def test_requires_calibration_input(self):
        with pytest.raises(QuantizationError):
            quantize_graph(conv_bn_graph(), [])

    def test_small_cnn_error_bounded(self):
        g = build_small_cnn()
        xs = [np.random.default_rng(i).normal(size=(8, 8, 8)) for i in range(3)]
        qg = quantize_graph(g, xs)
        assert quantization_error(g, qg, xs) < 0.2

    def test_residual_network_quantizes(self):
        g = build_residual_cnn()
        x = np.random.default_rng(5).normal(size=(8, 8, 8))
        qg = quantize_graph(g, [x])
        out = run_quantized(qg, x)
        assert out.shape == (10,)
        assert any(isinstance(n.layer, QAdd) for n in qg.nodes.values())

    def test_activations_within_int8(self):
        g = build_small_cnn()
        x = np.random.default_rng(7).normal(size=(8, 8, 8))
        qg = quantize_graph(g, [x])
        for name, act in qg.forward(x).items():
            assert act.min() >= -128 and act.max() <= 127, name

    def test_relu_keeps_producer_scale(self):
        g = conv_bn_graph()
        qg = quantize_graph(g, [np.random.default_rng(0).normal(size=(3, 6, 6))])
        assert qg.scales["relu"] == qg.scales["conv"]

    def test_unfolded_bn_rejected(self):
        g = conv_bn_graph()
        with pytest.raises(QuantizationError):
            quantize_graph(g, [np.zeros((3, 6, 6))], fold_bn=False)

    def test_dequantize(self):
        g = build_small_cnn()
        x = np.random.default_rng(9).normal(size=(8, 8, 8))
        qg = quantize_graph(g, [x])
        q_out = run_quantized(qg, x)
        deq = qg.dequantize(qg.output_name, q_out)
        ref = run_float(g, x)
        assert np.linalg.norm(deq - ref) / np.linalg.norm(ref) < 0.2


class TestIntegerLayers:
    @given(st.integers(0, 2 ** 32 - 1))
    @settings(max_examples=10, deadline=None)
    def test_qconv_accumulator_is_exact_integer_conv(self, seed):
        rng = np.random.default_rng(seed)
        wq = rng.integers(-127, 128, size=(2, 3, 3, 3))
        bq = rng.integers(-100, 100, size=2)
        layer = QConv2d(wq, bq, 1, 1, 0.1, 0.01, 0.05, 8)
        q_in = rng.integers(-128, 128, size=(3, 5, 5))
        acc = layer.accumulate(q_in)
        ref = Conv2d(wq.astype(float), bq.astype(float), 1, 1).forward(q_in.astype(float))
        assert np.array_equal(acc, ref.astype(np.int64))

    def test_qrelu_clamps(self):
        layer = QReLU(1.0, 8)
        out = layer.forward(np.array([-5, 0, 5]))
        assert out.tolist() == [0, 0, 5]

    def test_qavgpool_rounds_half_up(self):
        layer = QAvgPool2d(2, 2, 0, 1.0, 8)
        q = np.array([[[1, 2], [2, 2]]])  # mean 1.75 -> 2
        assert layer.forward(q)[0, 0, 0] == 2

    def test_qadd_requantizes_both_inputs(self):
        layer = QAdd([0.5, 0.25], 0.25, 8)
        out = layer.forward(np.array([2]), np.array([4]))
        assert out[0] == 8  # 2*0.5/0.25 + 4*0.25/0.25
