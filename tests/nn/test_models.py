"""Model builders: shapes, determinism, paper naming."""

import numpy as np
import pytest

from repro.nn.graph import Graph
from repro.nn.models import build_residual_cnn, build_resnet18, build_small_cnn


class TestResNet18:
    @pytest.fixture(scope="class")
    def graph(self):
        return build_resnet18()

    @pytest.fixture(scope="class")
    def shapes(self, graph):
        return graph.infer_shapes()

    def test_stage_shapes(self, shapes):
        assert shapes["stem_pool"] == (64, 56, 56)
        assert shapes["conv1_4"] == (64, 56, 56)
        assert shapes["conv2_1"] == (128, 28, 28)
        assert shapes["conv3_1"] == (256, 14, 14)
        assert shapes["conv4_4"] == (512, 7, 7)
        assert shapes["linear"] == (1000,)

    def test_paper_layer_names_present(self, graph):
        for stage in range(1, 5):
            for i in range(1, 5):
                assert f"conv{stage}_{i}" in graph.nodes
        for idx in (5, 10, 15):
            assert f"shortcut{idx}" in graph.nodes

    def test_twenty_mapped_layers(self, graph):
        convs = [
            n for n in graph.nodes
            if n.startswith("conv") and not n.endswith(("bn", "relu"))
        ]
        shortcuts = [
            n for n in graph.nodes
            if n.startswith("shortcut") and not n.endswith("bn")
        ]
        assert len(convs) + len(shortcuts) + 1 == 20  # + linear

    def test_deterministic_weights(self):
        a = build_resnet18(seed=3)
        b = build_resnet18(seed=3)
        assert np.array_equal(a.nodes["conv1_1"].layer.weight,
                              b.nodes["conv1_1"].layer.weight)
        c = build_resnet18(seed=4)
        assert not np.array_equal(a.nodes["conv1_1"].layer.weight,
                                  c.nodes["conv1_1"].layer.weight)

    def test_custom_classes(self):
        g = build_resnet18(num_classes=10)
        assert g.infer_shapes()["linear"] == (10,)


class TestSmallModels:
    def test_small_cnn_forward(self):
        g = build_small_cnn()
        out = g.forward(np.zeros((8, 8, 8)))[g.output_name]
        assert out.shape == (10,)

    def test_residual_cnn_has_add(self):
        g = build_residual_cnn()
        from repro.nn.layers import Add

        assert any(isinstance(n.layer, Add) for n in g.nodes.values())
        out = g.forward(np.zeros((8, 8, 8)))[g.output_name]
        assert out.shape == (10,)
