"""The extended workload builders: VGG, MLP, LSTM, Transformer."""

import pytest

from repro.core.simulator import ChipSimulator
from repro.nn.workloads import (
    lstm_cell_spec,
    mlp_spec,
    transformer_block_spec,
    vgg11_spec,
)


class TestVGG11:
    def test_layer_count(self):
        assert len(vgg11_spec()) == 10  # 7 convs + 3 FCs (stem excluded)

    def test_fc6_geometry(self):
        fc6 = vgg11_spec().layer(8)
        assert (fc6.c, fc6.m) == (512 * 49, 4096)
        assert fc6.kind == "linear"

    def test_mac_magnitude(self):
        # VGG-11 is ~7.6 GMACs; without the stem, ~7.5.
        assert 6e9 < vgg11_spec().total_macs < 8.5e9


class TestMLP:
    def test_default_stack(self):
        net = mlp_spec()
        assert len(net) == 3
        assert net.layer(1).c == 512 and net.layer(3).m == 256

    def test_custom_widths(self):
        net = mlp_spec([10, 20, 30])
        assert [(s.c, s.m) for s in net] == [(10, 20), (20, 30)]

    def test_runs_on_chip(self):
        result = ChipSimulator().run(mlp_spec(), "heuristic")
        assert result.latency_ms > 0


class TestLSTM:
    def test_gate_matrices(self):
        net = lstm_cell_spec(hidden=256, inputs=128)
        assert net.layer(1).m == 4 * 256
        assert net.layer(1).c == 128
        assert net.layer(2).c == 256

    def test_runs_on_chip(self):
        result = ChipSimulator().run(lstm_cell_spec(), "heuristic")
        assert result.latency_ms > 0


class TestTransformer:
    def test_six_weight_matmuls(self):
        net = transformer_block_spec()
        assert len(net) == 6
        assert net.layer(5).m == 2048  # ffn up-projection

    def test_ffn_dominates_macs(self):
        net = transformer_block_spec()
        ffn = net.layer(5).macs + net.layer(6).macs
        attn = sum(net.layer(i).macs for i in (1, 2, 3, 4))
        assert ffn > attn

    def test_runs_on_chip(self):
        result = ChipSimulator().run(transformer_block_spec(), "heuristic")
        assert result.latency_ms > 0


class TestMultiModelMix:
    def test_heterogeneous_models_partition_together(self):
        """The paper's point: one chip, several model *types* at once."""
        from repro.core.multi_dnn import MultiDNNScheduler
        from repro.nn.workloads import small_cnn_spec

        result = MultiDNNScheduler().run(
            [small_cnn_spec(), lstm_cell_spec(hidden=128, inputs=128),
             transformer_block_spec(d_model=128, d_ff=512)]
        )
        assert len(result.runs) == 3
        assert result.aggregate_throughput > 0
