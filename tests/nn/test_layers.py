"""Float layer semantics, checked against direct-loop references."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.nn.layers import (
    Add,
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Flatten,
    Input,
    Linear,
    MaxPool2d,
    ReLU,
    conv2d_output_hw,
)


def conv_reference(x, w, b, stride, padding):
    """Naive direct convolution for cross-checking im2col."""
    m, c, r, s = w.shape
    oh, ow = conv2d_output_hw(x.shape[1], x.shape[2], r, s, stride, padding)
    xp = np.pad(x, ((0, 0), (padding, padding), (padding, padding)))
    out = np.zeros((m, oh, ow))
    for f in range(m):
        for oy in range(oh):
            for ox in range(ow):
                patch = xp[:, oy * stride : oy * stride + r, ox * stride : ox * stride + s]
                out[f, oy, ox] = np.sum(patch * w[f]) + b[f]
    return out


class TestConv2d:
    @pytest.mark.parametrize("stride,padding", [(1, 0), (1, 1), (2, 1), (2, 0)])
    def test_matches_direct_convolution(self, stride, padding):
        rng = np.random.default_rng(stride * 10 + padding)
        x = rng.normal(size=(3, 8, 8))
        w = rng.normal(size=(4, 3, 3, 3))
        b = rng.normal(size=4)
        conv = Conv2d(w, b, stride=stride, padding=padding)
        assert np.allclose(conv.forward(x), conv_reference(x, w, b, stride, padding))

    def test_1x1_conv(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(4, 5, 5))
        w = rng.normal(size=(2, 4, 1, 1))
        conv = Conv2d(w, padding=0)
        expected = np.einsum("mc,chw->mhw", w[:, :, 0, 0], x)
        assert np.allclose(conv.forward(x), expected)

    def test_output_shape(self):
        conv = Conv2d(np.zeros((8, 3, 3, 3)), stride=2, padding=1)
        assert conv.output_shape((3, 56, 56)) == (8, 28, 28)

    def test_channel_mismatch(self):
        conv = Conv2d(np.zeros((8, 3, 3, 3)))
        with pytest.raises(ShapeError):
            conv.output_shape((4, 8, 8))

    def test_weight_rank_checked(self):
        with pytest.raises(ShapeError):
            Conv2d(np.zeros((3, 3)))

    def test_bias_shape_checked(self):
        with pytest.raises(ShapeError):
            Conv2d(np.zeros((8, 3, 3, 3)), bias=np.zeros(4))


class TestLinear:
    def test_matmul(self):
        w = np.array([[1.0, 2.0], [3.0, 4.0]])
        layer = Linear(w, np.array([0.5, -0.5]))
        assert np.allclose(layer.forward(np.array([1.0, 1.0])), [3.5, 6.5])

    def test_flattens_input(self):
        layer = Linear(np.ones((1, 8)))
        assert layer.forward(np.ones((2, 2, 2)))[0] == 8

    def test_shape_validation(self):
        with pytest.raises(ShapeError):
            Linear(np.ones((2, 4))).output_shape((5,))


class TestBatchNorm:
    def test_normalizes(self):
        bn = BatchNorm2d(
            gamma=np.array([2.0]), beta=np.array([1.0]),
            running_mean=np.array([3.0]), running_var=np.array([4.0]), eps=0.0,
        )
        x = np.full((1, 2, 2), 5.0)
        assert np.allclose(bn.forward(x), (5 - 3) / 2 * 2 + 1)

    def test_scale_shift_equivalence(self):
        rng = np.random.default_rng(1)
        bn = BatchNorm2d(
            rng.uniform(0.5, 1.5, 4), rng.normal(size=4),
            rng.normal(size=4), rng.uniform(0.5, 2, 4),
        )
        x = rng.normal(size=(4, 3, 3))
        scale, shift = bn.scale_shift()
        manual = x * scale[:, None, None] + shift[:, None, None]
        assert np.allclose(bn.forward(x), manual)


class TestPooling:
    def test_max_pool(self):
        x = np.arange(16, dtype=float).reshape(1, 4, 4)
        out = MaxPool2d(2).forward(x)
        assert out.reshape(-1).tolist() == [5, 7, 13, 15]

    def test_max_pool_with_padding_ignores_pad(self):
        x = -np.ones((1, 2, 2))
        out = MaxPool2d(3, 2, 1).forward(x)
        assert out[0, 0, 0] == -1  # padding (-inf) never wins

    def test_avg_pool(self):
        x = np.arange(16, dtype=float).reshape(1, 4, 4)
        out = AvgPool2d(2).forward(x)
        assert out.reshape(-1).tolist() == [2.5, 4.5, 10.5, 12.5]

    def test_strided_pool_shape(self):
        assert MaxPool2d(3, 2, 1).output_shape((64, 112, 112)) == (64, 56, 56)


class TestSimpleLayers:
    def test_relu(self):
        out = ReLU().forward(np.array([-1.0, 0.0, 2.0]))
        assert out.tolist() == [0.0, 0.0, 2.0]

    def test_add_shape_check(self):
        with pytest.raises(ShapeError):
            Add().output_shape((1, 2, 2), (1, 3, 3))

    def test_add(self):
        out = Add().forward(np.ones((2, 2)), np.full((2, 2), 2.0))
        assert np.all(out == 3.0)

    def test_flatten(self):
        assert Flatten().output_shape((2, 3, 4)) == (24,)

    def test_input_validates_shape(self):
        layer = Input((3, 4, 4))
        with pytest.raises(ShapeError):
            layer.forward(np.zeros((3, 5, 5)))
