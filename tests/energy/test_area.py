"""Area model vs the paper's Fig. 10 and Table 4 figures."""

import pytest

from repro.energy.area import area_breakdown, node_area_mm2
from repro.energy.constants import ChipConstants


class TestChipArea:
    def test_total_near_28mm2(self):
        assert area_breakdown().total == pytest.approx(28.0, rel=0.05)

    def test_cmem_dominates_at_65_percent(self):
        fr = area_breakdown().fractions()
        assert fr["cmem"] == pytest.approx(0.65, abs=0.03)

    def test_paper_fractions(self):
        fr = area_breakdown().fractions()
        assert fr["core"] == pytest.approx(0.11, abs=0.02)
        assert fr["local_mem"] == pytest.approx(0.10, abs=0.02)
        assert fr["noc"] == pytest.approx(0.09, abs=0.02)
        assert fr["llc"] == pytest.approx(0.05, abs=0.02)

    def test_fractions_sum_to_one(self):
        assert sum(area_breakdown().fractions().values()) == pytest.approx(1.0)


class TestNodeArea:
    def test_node_area_near_paper(self):
        """Table 4: 0.114 mm^2 per MAICC node."""
        assert node_area_mm2() == pytest.approx(0.114, abs=0.01)

    def test_cmem_area_from_40nm_scaling(self):
        c = ChipConstants()
        raw_40nm = 0.014 + 7 * 0.023
        assert c.cmem_area_mm2_per_node == pytest.approx(raw_40nm * (28 / 40) ** 2)
