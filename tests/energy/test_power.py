"""Energy model: op energies and static terms."""

import pytest

from repro.energy.constants import ChipConstants
from repro.energy.power import EnergyModel, OpCounts


@pytest.fixture
def model():
    return EnergyModel()


class TestDynamicEnergy:
    def test_mac_energy_from_paper_constant(self, model):
        ops = OpCounts(macs=1_000_000)
        breakdown = model.breakdown(ops, seconds=1e-9)  # negligible static
        assert breakdown.cmem == pytest.approx(1_000_000 * 28.25e-12, rel=0.01)

    def test_noc_flit_energy(self, model):
        ops = OpCounts(noc_flit_hops=10 ** 6)
        breakdown = model.breakdown(ops, 1e-9)
        assert breakdown.noc == pytest.approx(10 ** 6 * 5.4e-12, rel=0.01)

    def test_op_mix_is_additive(self, model):
        static = model.breakdown(OpCounts(), 1e-9).cmem
        a = model.breakdown(OpCounts(macs=100), 1e-9).cmem - static
        b = model.breakdown(OpCounts(moves=100), 1e-9).cmem - static
        both = model.breakdown(OpCounts(macs=100, moves=100), 1e-9).cmem - static
        assert both == pytest.approx(a + b)


class TestStaticEnergy:
    def test_static_power_scales_with_time(self, model):
        e1 = model.breakdown(OpCounts(), 0.001).total
        e2 = model.breakdown(OpCounts(), 0.002).total
        assert e2 == pytest.approx(2 * e1)

    def test_noc_static_is_2_2w(self, model):
        breakdown = model.breakdown(OpCounts(), 1.0)
        assert breakdown.noc == pytest.approx(2.20, rel=0.01)

    def test_average_power(self, model):
        ops = OpCounts()
        power = model.average_power_w(ops, 0.005)
        assert power == pytest.approx(model.breakdown(ops, 0.005).total / 0.005)
        with pytest.raises(ValueError):
            model.average_power_w(ops, 0)


class TestOpCounts:
    def test_merge(self):
        a = OpCounts(macs=10, dram_bytes=5)
        b = OpCounts(macs=3, noc_flit_hops=7)
        a.merge(b)
        assert (a.macs, a.dram_bytes, a.noc_flit_hops) == (13, 5, 7)
