"""The consolidated area model against the paper's published numbers.

Every check uses the ``compare_ref`` convention of :mod:`repro.dse.result`
(the MIT energy-harness style: measured beside ``*_ref`` /
``*_vs_ref`` columns) so the tolerances here and the self-auditing
columns in the DSE artifact share one definition of "vs reference".

References: Fig. 10 area fractions, the Sec. 5 28 mm^2 chip total, and
the Table 4 node row (MAICC 0.114 mm^2 / Neural Cache 0.158 mm^2 at
double the memory / scalar core at core + 20 KB local store).
"""

import pytest

from repro.baselines.neural_cache import NeuralCacheModel
from repro.core.node import table4_workload
from repro.dse.result import (
    PAPER_REF_CHIP_AREA_MM2,
    add_compare_ref,
    compare_ref,
)
from repro.energy.area import area_breakdown, node_area_mm2
from repro.energy.constants import ChipConstants

PAPER_AREA_FRACTIONS = {
    "cmem": 0.65, "core": 0.11, "local_mem": 0.10, "noc": 0.09, "llc": 0.05,
}
PAPER_NODE_AREA_MM2 = 0.114
PAPER_NEURAL_CACHE = {"area_mm2": 0.158, "memory_kb": 40,
                      "energy_j": 4.03e-6}
PAPER_SCALAR_AREA_MM2 = 0.052


class TestChipArea:
    def test_total_within_two_percent_of_paper(self):
        area = area_breakdown(ChipConstants())
        assert compare_ref(area.total, PAPER_REF_CHIP_AREA_MM2) == pytest.approx(
            1.0, abs=0.02
        )

    @pytest.mark.parametrize("block,ref", sorted(PAPER_AREA_FRACTIONS.items()))
    def test_block_fractions_match_figure10(self, block, ref):
        fractions = area_breakdown(ChipConstants()).fractions()
        assert compare_ref(fractions[block], ref) == pytest.approx(1.0, abs=0.12)

    def test_compare_ref_columns_in_area_row(self):
        """The artifact's self-auditing shape: total + ref + ratio."""
        area = area_breakdown(ChipConstants())
        row = {"total_mm2": area.total}
        add_compare_ref(row, "total_mm2", PAPER_REF_CHIP_AREA_MM2)
        assert row["total_mm2_ref"] == PAPER_REF_CHIP_AREA_MM2
        assert row["total_mm2_vs_ref"] == pytest.approx(
            area.total / PAPER_REF_CHIP_AREA_MM2
        )


class TestNodeArea:
    def test_maicc_node_matches_table4(self):
        node = node_area_mm2(ChipConstants())
        assert compare_ref(node, PAPER_NODE_AREA_MM2) == pytest.approx(
            1.0, abs=0.01
        )

    def test_scalar_core_matches_table4(self):
        constants = ChipConstants()
        scalar = constants.core_area_mm2 + 20 / 8 * constants.local_mem_area_mm2
        assert compare_ref(scalar, PAPER_SCALAR_AREA_MM2) == pytest.approx(
            1.0, abs=0.10
        )

    def test_neural_cache_baseline_matches_table4(self):
        result = NeuralCacheModel().run(table4_workload())
        assert result.area_mm2 == PAPER_NEURAL_CACHE["area_mm2"]
        assert result.memory_kb == PAPER_NEURAL_CACHE["memory_kb"]
        assert compare_ref(
            result.energy_j, PAPER_NEURAL_CACHE["energy_j"]
        ) == pytest.approx(1.0, abs=0.15)

    def test_node_comparison_ordering(self):
        """The Table 4 shape: scalar < MAICC < Neural Cache in area,
        with Neural Cache holding twice the memory."""
        constants = ChipConstants()
        scalar = constants.core_area_mm2 + 20 / 8 * constants.local_mem_area_mm2
        node = node_area_mm2(constants)
        cache = NeuralCacheModel().run(table4_workload())
        assert scalar < node < cache.area_mm2
        assert cache.memory_kb == 2 * 20
