"""Table 1 address map and node memory behaviour."""

import pytest

from repro.errors import AlignmentError, MemoryMapError
from repro.riscv.memory import (
    AddressRegion,
    DRAM_BASE,
    MemoryMap,
    NodeMemory,
    REMOTE_BASE,
    SLICE0_BASE,
    decode_remote_address,
    dram_channel_of,
    encode_remote_address,
)
from repro.cmem.slice import TransposeBuffer


class TestTable1Regions:
    """The exact ranges of Table 1."""

    def test_local_dmem(self):
        assert MemoryMap.region_of(0x0000_0000) is AddressRegion.LOCAL_DMEM
        assert MemoryMap.region_of(0x0000_0FFF) is AddressRegion.LOCAL_DMEM

    def test_slice0_window(self):
        assert MemoryMap.region_of(0x0000_1000) is AddressRegion.SLICE0
        assert MemoryMap.region_of(0x0000_17FF) is AddressRegion.SLICE0

    def test_hole_after_slice0(self):
        with pytest.raises(MemoryMapError):
            MemoryMap.region_of(0x0000_1800)

    def test_remote_window(self):
        assert MemoryMap.region_of(0x4000_0000) is AddressRegion.REMOTE_CORE
        assert MemoryMap.region_of(0x7FFF_FFFF) is AddressRegion.REMOTE_CORE

    def test_dram_window(self):
        assert MemoryMap.region_of(0x8000_0000) is AddressRegion.DRAM
        assert MemoryMap.region_of(0xFFFF_FFFF) is AddressRegion.DRAM


class TestRemoteEncoding:
    """01xxxxxx_xxyyyyyy_yyoooooo_oooooooo — 8-bit x, 8-bit y, 14-bit offset."""

    def test_roundtrip(self):
        addr = encode_remote_address(5, 9, 0x123)
        assert decode_remote_address(addr) == (5, 9, 0x123)
        assert MemoryMap.region_of(addr) is AddressRegion.REMOTE_CORE

    def test_sixteen_kb_per_core(self):
        a0 = encode_remote_address(0, 0, 0)
        a1 = encode_remote_address(0, 1, 0)
        assert a1 - a0 == 16 * 1024

    def test_bit_pattern(self):
        addr = encode_remote_address(0xFF, 0, 0)
        assert addr >> 22 == 0b01_11111111

    def test_bounds(self):
        with pytest.raises(MemoryMapError):
            encode_remote_address(256, 0, 0)
        with pytest.raises(MemoryMapError):
            encode_remote_address(0, 0, 1 << 14)
        with pytest.raises(MemoryMapError):
            decode_remote_address(0x1000)


class TestDRAMStriping:
    def test_32_channels(self):
        assert dram_channel_of(DRAM_BASE) == 0
        assert dram_channel_of(0xFFFF_FFFF) == 31

    def test_uniform_division(self):
        span = (1 << 31) // 32
        assert dram_channel_of(DRAM_BASE + span) == 1
        assert dram_channel_of(DRAM_BASE + span - 1) == 0


class TestNodeMemory:
    def test_dmem_roundtrip(self):
        mem = NodeMemory()
        mem.store(0x10, 4, 0xCAFEBABE)
        assert mem.load(0x10, 4) == 0xCAFEBABE

    def test_alignment_enforced(self):
        mem = NodeMemory()
        with pytest.raises(AlignmentError):
            mem.load(0x2, 4)
        with pytest.raises(AlignmentError):
            mem.store(0x1, 2, 0)

    def test_slice0_window_maps_to_transpose_buffer(self):
        slice0 = TransposeBuffer()
        mem = NodeMemory(slice0=slice0)
        mem.store(SLICE0_BASE + 3, 1, 0x77)
        assert slice0.load_byte(3) == 0x77

    def test_slice0_without_cmem(self):
        mem = NodeMemory()
        with pytest.raises(MemoryMapError):
            mem.load(SLICE0_BASE, 1)

    def test_remote_handler_dispatch(self):
        calls = []

        def handler(is_store, addr, size, value):
            calls.append((is_store, addr, size, value))
            return 0x55

        mem = NodeMemory(remote_handler=handler)
        assert mem.load(REMOTE_BASE + 4, 4) == 0x55
        mem.store(REMOTE_BASE + 8, 4, 7)
        assert calls == [(False, REMOTE_BASE + 4, 4, 0), (True, REMOTE_BASE + 8, 4, 7)]

    def test_remote_without_handler(self):
        with pytest.raises(MemoryMapError):
            NodeMemory().load(REMOTE_BASE, 4)

    def test_dram_handler_dispatch(self):
        mem = NodeMemory(dram_handler=lambda s, a, sz, v: 0xAB)
        assert mem.load(DRAM_BASE, 4) == 0xAB

    def test_dram_without_handler(self):
        with pytest.raises(MemoryMapError):
            NodeMemory().store(DRAM_BASE, 4, 1)
