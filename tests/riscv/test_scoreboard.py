"""Scoreboard semantics: WAW ordering, x0 hard-wiring, drain horizon.

Regression tests for the audit of ``Scoreboard.write_time``: a writer must
wait for the *retire* (write-back) of the previous in-flight write to the
same register, and ``x0`` must be inert in every method.  The pipeline-level
tests pin the same facts end-to-end through ``Pipeline``.
"""

from repro.riscv.core import Core
from repro.riscv.scoreboard import Scoreboard


class TestWAWOrdering:
    def test_writer_waits_for_prior_retire(self):
        sb = Scoreboard()
        sb.set_ready(5, 40)  # in-flight write to x5 retires at cycle 40
        assert sb.write_time(5) == 40
        assert sb.ready_time(5) == 40  # readers wait for the same cycle

    def test_unrelated_register_unconstrained(self):
        sb = Scoreboard()
        sb.set_ready(5, 40)
        assert sb.write_time(6) == 0
        assert sb.ready_time(6) == 0

    def test_pipeline_waw_stall_counted(self):
        """A back-to-back overwrite of a div result is a WAW stall."""
        core = Core()
        stats = core.run(
            "li a1, 99\nli a2, 7\ndiv a0, a1, a2\nli a0, 1\nhalt"
        )
        assert stats.waw_stall_cycles > 0

    def test_pipeline_waw_to_distinct_registers_free(self):
        core = Core()
        stats = core.run(
            "li a1, 99\nli a2, 7\ndiv a0, a1, a2\nli a3, 1\nhalt"
        )
        assert stats.waw_stall_cycles == 0


class TestX0Inert:
    def test_ready_time_always_zero(self):
        sb = Scoreboard()
        assert sb.ready_time(0) == 0

    def test_write_time_always_zero(self):
        sb = Scoreboard()
        assert sb.write_time(0) == 0

    def test_set_ready_is_a_noop(self):
        sb = Scoreboard()
        sb.set_ready(0, 1000)
        assert sb.ready_time(0) == 0
        assert sb.write_time(0) == 0
        assert sb.reg_ready[0] == 0

    def test_pipeline_x0_write_never_stalls(self):
        """Writes to x0 are discarded: no WAW chain through x0."""
        core = Core()
        stats = core.run(
            "li a1, 99\nli a2, 7\ndiv x0, a1, a2\nli x0, 1\nadd a3, x0, x0\nhalt"
        )
        assert stats.waw_stall_cycles == 0
        assert stats.raw_stall_cycles == 0


class TestHorizonAndReset:
    def test_horizon_tracks_latest_writeback(self):
        sb = Scoreboard()
        sb.set_ready(3, 17)
        sb.set_ready(9, 120)
        assert sb.horizon() == 120

    def test_reset_clears_all(self):
        sb = Scoreboard()
        sb.set_ready(3, 17)
        sb.reset()
        assert sb.horizon() == 0
        assert sb.ready_time(3) == 0
