"""Disassembler round-trips through the assembler."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.riscv.assembler import assemble
from repro.riscv.core import Core
from repro.riscv.disasm import disassemble


def fields(instr):
    return (instr.opcode, instr.rd, instr.rs1, instr.rs2, instr.imm,
            instr.target, dict(instr.cm))


class TestRoundTrip:
    @pytest.mark.parametrize("text", [
        "add a0, a1, a2",
        "addi t0, t1, -42",
        "li a0, 4096",
        "lw a0, 8(sp)",
        "sw a1, -4(s0)",
        "amoadd.w a0, a1, 4(a2)",
        "lr.w a0, (a1)",
        "sc.w a0, a1, (a2)",
        "mul a0, a1, a2",
        "div a0, a1, a2",
        "mv a0, a1",
        "nop",
        "halt",
        "mac.c a0, 1, 0, 8, 8",
        "macu.c a1, 2, 0, 16, 4",
        "move.c 0, 0, 3, 8, 8",
        "setrow.c 1, 5, 0",
        "shiftrow.c 1, 5, -2",
        "loadrow.rc 1, 3, a0",
        "storerow.rc 1, 3, a1",
        "setcsr.c 2, 0xf",
    ])
    def test_single_instruction(self, text):
        original = assemble(text)
        again = assemble(disassemble(original))
        assert [fields(i) for i in original] == [fields(i) for i in again]

    def test_branches_get_labels(self):
        text = """
            li t0, 3
        loop:
            addi t0, t0, -1
            bne t0, zero, loop
            j end
            nop
        end:
            halt
        """
        original = assemble(text)
        rendered = disassemble(original)
        again = assemble(rendered)
        assert [fields(i) for i in original] == [fields(i) for i in again]

    def test_roundtrip_preserves_execution(self):
        text = """
            li t0, 6
            li t1, 0
        loop:
            addi t1, t1, 7
            addi t0, t0, -1
            bne t0, zero, loop
            halt
        """
        core_a, core_b = Core(), Core()
        core_a.run(text)
        core_b.run(disassemble(assemble(text)))
        assert core_a.regs.snapshot() == core_b.regs.snapshot()

    def test_generated_kernel_roundtrips(self):
        from repro.core.node import MAICCNode
        from repro.nn.workloads import ConvLayerSpec

        spec = ConvLayerSpec(0, "t", h=3, w=3, c=32, m=1, padding=0)
        rng = np.random.default_rng(0)
        node = MAICCNode(
            spec,
            rng.integers(-128, 128, size=(1, 32, 3, 3)),
            rng.integers(-10, 10, size=1),
        )
        program = node.build_program()
        again = assemble(disassemble(program))
        assert [fields(i) for i in program] == [fields(i) for i in again]
