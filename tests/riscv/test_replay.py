"""The pipeline replay cache: memoized timing, full functional fidelity.

A :class:`~repro.riscv.replay.ReplayCache` entry exists only after a
double gate — the static predictor proves the kernel's timing
data-independent AND the first measured run matches the prediction
bit-for-bit — so a replayed run must be indistinguishable from a full
pipeline run in every observable: stats, registers, memory, CMem state,
remote traffic, and energy.
"""

import numpy as np
import pytest

from repro.core.node import MAICCNode
from repro.nn.workloads import ConvLayerSpec
from repro.riscv.assembler import assemble
from repro.riscv.core import Core, CoreConfig
from repro.riscv.pipeline import PipelineConfig
from repro.riscv.replay import ReplayCache


def straightline_program():
    # Branch-free, no register-based memory addressing: the static
    # predictor certifies this timing-deterministic (``exact``).
    return assemble(
        "\n".join(
            [
                "li t0, 40",
                "li t1, 2",
                "add t2, t0, t1",
                "mul t3, t2, t1",
                "addi t4, t3, -42",
                "halt",
            ]
        )
    )


def looping_program():
    # A backward branch: the static predictor refuses to certify it.
    return assemble(
        "\n".join(
            [
                "li t0, 3",
                "loop:",
                "addi t0, t0, -1",
                "bne t0, x0, loop",
                "halt",
            ]
        )
    )


class TestReplayCacheDirect:
    def test_hit_replays_identical_stats_and_state(self):
        cache = ReplayCache()
        program = straightline_program()
        first_core = Core()
        first = cache.run(
            program, first_core.executor, PipelineConfig(),
            first_core.cmem.config.num_slices,
        )
        assert cache.misses == 1 and cache.hits == 0 and len(cache) == 1

        second_core = Core()
        second = cache.run(
            program, second_core.executor, PipelineConfig(),
            second_core.cmem.config.num_slices,
        )
        assert cache.hits == 1
        assert second.cycles == first.cycles
        assert second.instructions == first.instructions
        assert second.category_cycles == first.category_cycles
        # Functional side effects happened on the replay run too.
        assert second_core.regs.read(7) == 42       # t2 = 40 + 2
        assert second_core.regs.read(28) == 84      # t3 = 42 * 2
        assert second_core.regs.read(29) == 42      # t4 = 84 - 42

    def test_snapshot_is_isolated_from_caller_mutation(self):
        cache = ReplayCache()
        program = straightline_program()
        core = Core()
        args = (program, core.executor, PipelineConfig(),
                core.cmem.config.num_slices)
        first = cache.run(*args)
        first.category_cycles["tampered"] = 999
        second = cache.run(*args)
        assert "tampered" not in second.category_cycles

    def test_branching_program_never_cached(self):
        cache = ReplayCache()
        program = looping_program()
        for expected_misses in (1, 2):
            core = Core()
            cache.run(
                program, core.executor, PipelineConfig(),
                core.cmem.config.num_slices,
            )
            assert cache.misses == expected_misses
        assert cache.hits == 0
        assert len(cache) == 1  # the ineligibility verdict is remembered

    def test_config_mismatch_bypasses_entry(self):
        cache = ReplayCache()
        program = straightline_program()
        core = Core()
        slices = core.cmem.config.num_slices
        cache.run(program, core.executor, PipelineConfig(), slices)
        other = PipelineConfig(writeback_ports=1)
        cache.run(program, Core().executor, other, slices)
        assert cache.hits == 0
        assert cache.misses == 2


class TestCoreIntegration:
    def test_core_run_uses_cache(self):
        cache = ReplayCache()
        program = straightline_program()
        baseline = Core().run(program)
        replayed_core = Core()
        replayed_core.run(program, replay_cache=cache)
        again = replayed_core.run(program, replay_cache=cache)
        assert cache.hits == 1
        assert again.cycles == baseline.cycles
        assert again.instructions == baseline.instructions

    def test_max_instructions_bypasses_cache(self):
        cache = ReplayCache()
        program = straightline_program()
        core = Core()
        core.run(program, replay_cache=cache, max_instructions=3)
        assert len(cache) == 0 and cache.misses == 0

    def test_telemetry_enabled_bypasses_cache(self):
        from repro import telemetry

        cache = ReplayCache()
        program = straightline_program()
        sink = telemetry.Telemetry()
        with telemetry.use(sink):
            core = Core(telemetry=sink)
            core.run(program, replay_cache=cache)
            core.run(program, replay_cache=cache)
        assert len(cache) == 0 and cache.hits == 0


def small_node():
    spec = ConvLayerSpec(
        index=0, name="replay[4x4x16]", h=4, w=4, c=16, m=2,
        r=3, s=3, stride=1, padding=0,
    )
    rng = np.random.default_rng(17)
    weights = rng.integers(-128, 128, (spec.m, spec.c, spec.r, spec.s))
    bias = rng.integers(-1000, 1000, spec.m)
    ifmap = rng.integers(-128, 128, (spec.c, spec.h, spec.w))
    return spec, weights, bias, ifmap


class TestNodeReplay:
    def test_repeat_runs_are_bit_identical_and_hit(self):
        spec, weights, bias, ifmap = small_node()
        node = MAICCNode(spec, weights, bias)
        assert node.replay_cache is not None
        first = node.run(ifmap)
        second = node.run(ifmap)
        assert node.replay_cache.hits == 1
        assert second.stats.cycles == first.stats.cycles
        assert second.stats.instructions == first.stats.instructions
        assert second.stats.category_cycles == first.stats.category_cycles
        assert np.array_equal(second.psums, first.psums)
        assert np.array_equal(second.outputs, first.outputs)
        assert second.forwarded_rows == first.forwarded_rows
        np.testing.assert_array_equal(
            first.psums, node.reference(ifmap)
        )

    def test_replay_matches_uncached_node(self):
        spec, weights, bias, ifmap = small_node()
        cached = MAICCNode(spec, weights, bias)
        plain = MAICCNode(spec, weights, bias, replay=False)
        assert plain.replay_cache is None
        cached.run(ifmap)  # prime
        replayed = cached.run(ifmap)
        direct = plain.run(ifmap)
        assert replayed.stats.cycles == direct.stats.cycles
        assert replayed.stats.instructions == direct.stats.instructions
        assert np.array_equal(replayed.psums, direct.psums)
        assert np.array_equal(replayed.outputs, direct.outputs)

    def test_custom_pipeline_config_skips_cache(self):
        spec, weights, bias, ifmap = small_node()
        node = MAICCNode(spec, weights, bias)
        node.run(ifmap)
        assert node.replay_cache is not None
        misses_before = node.replay_cache.misses
        node.run(ifmap, pipeline=PipelineConfig(writeback_ports=1))
        assert node.replay_cache.misses == misses_before
        assert node.replay_cache.hits == 0
