"""Timing-model tests: hazards, CMem issue queue, write-back ports."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.riscv.core import Core, CoreConfig
from repro.riscv.pipeline import PipelineConfig
from repro.errors import ConfigurationError, SimulationError


def cycles(program: str, **cfg) -> int:
    core = Core(CoreConfig(pipeline=PipelineConfig(**cfg)))
    return core.run(program).cycles


class TestBasicTiming:
    def test_single_cycle_throughput(self):
        """Independent ALU instructions issue one per cycle."""
        body = "\n".join(f"li x{5 + (i % 20)}, {i}" for i in range(40))
        total = cycles(body + "\nhalt")
        assert 40 <= total <= 50

    def test_independent_alu_ipc_near_one(self):
        program = "\n".join(f"addi x{5 + (i % 8)}, zero, {i}" for i in range(64))
        core = Core()
        stats = core.run(program + "\nhalt")
        assert stats.ipc > 0.8

    def test_raw_dependency_on_mul_stalls(self):
        dep = cycles("li a1, 3\nli a2, 4\nmul a0, a1, a2\nadd a3, a0, a0\nhalt")
        indep = cycles("li a1, 3\nli a2, 4\nmul a0, a1, a2\nadd a3, a1, a2\nhalt")
        assert dep > indep

    def test_div_longer_than_mul(self):
        mul = cycles("li a1, 100\nli a2, 7\nmul a0, a1, a2\nadd a3, a0, a0\nhalt")
        div = cycles("li a1, 100\nli a2, 7\ndiv a0, a1, a2\nadd a3, a0, a0\nhalt")
        assert div > mul

    def test_taken_branch_pays_penalty(self):
        taken = cycles("li a0, 1\nbeq a0, a0, skip\nnop\nskip: halt")
        untaken = cycles("li a0, 1\nbne a0, a0, skip\nnop\nskip: halt")
        assert taken > untaken

    def test_branch_penalty_config(self):
        prog = "li a0, 1\nbeq a0, a0, skip\nnop\nskip: halt"
        assert cycles(prog, branch_penalty=8) > cycles(prog, branch_penalty=1)

    def test_unpipelined_divider_structural_hazard(self):
        back_to_back = cycles(
            "li a1, 99\nli a2, 7\ndiv a0, a1, a2\ndiv a3, a1, a2\nhalt"
        )
        single = cycles("li a1, 99\nli a2, 7\ndiv a0, a1, a2\nhalt")
        assert back_to_back >= single + 15


class TestCMemScheduling:
    """The Sec. 3.3 mechanisms: issue queue and write-back ports."""

    @staticmethod
    def mac_burst(count: int) -> str:
        # MACs target distinct slices round-robin; scalar work follows.
        lines = []
        for i in range(count):
            s = 1 + (i % 7)
            lines.append(f"mac.c a{i % 4}, {s}, 0, 8, 8")
        lines += [f"addi t{i % 3}, zero, {i}" for i in range(20)]
        lines.append("halt")
        return "\n".join(lines)

    def test_queue_lets_scalar_work_proceed(self):
        # Burst of MACs on ONE slice: with no queue, the second MAC blocks
        # the ID stage and the trailing scalar work; a queue decouples it.
        prog = (
            "mac.c a0, 1, 0, 8, 8\nmac.c a1, 1, 16, 24, 8\n"
            + "\n".join(f"addi t0, zero, {i}" for i in range(100))
            + "\nhalt"
        )
        assert cycles(prog, cmem_queue_size=2) < cycles(prog, cmem_queue_size=0)

    def test_queue_sizes_monotone(self):
        prog = self.mac_burst(14)
        c0 = cycles(prog, cmem_queue_size=0)
        c1 = cycles(prog, cmem_queue_size=1)
        c2 = cycles(prog, cmem_queue_size=2)
        assert c0 >= c1 >= c2

    def test_slices_overlap_in_time(self):
        """Seven MACs on seven slices finish far sooner than serialized."""
        prog = "\n".join(f"mac.c a{i % 4}, {i + 1}, 0, 8, 8" for i in range(7))
        total = cycles(prog + "\nhalt", cmem_queue_size=2)
        assert total < 7 * 64  # serial would be >= 448

    def test_same_slice_serializes(self):
        prog = (
            "mac.c a0, 1, 0, 8, 8\nmac.c a1, 1, 16, 24, 8\n"
            "mac.c a2, 1, 32, 40, 8\nhalt"
        )
        assert cycles(prog, cmem_queue_size=4) >= 3 * 64

    def test_second_writeback_port_helps(self):
        prog = self.mac_burst(14)
        assert cycles(prog, writeback_ports=2) <= cycles(prog, writeback_ports=1)

    def test_mac_result_raw_dependency(self):
        dep = cycles("mac.c a0, 1, 0, 8, 8\nadd a1, a0, a0\nhalt")
        assert dep >= 64


class TestConfigValidation:
    def test_negative_queue(self):
        with pytest.raises(ConfigurationError):
            PipelineConfig(cmem_queue_size=-1)

    def test_zero_wb_ports(self):
        with pytest.raises(ConfigurationError):
            PipelineConfig(writeback_ports=0)

    def test_runaway_guard(self):
        core = Core(CoreConfig(pipeline=PipelineConfig(max_cycles=100)))
        with pytest.raises(SimulationError):
            core.run("loop: j loop")


class TestCategoryAttribution:
    def test_cycles_attributed_to_categories(self):
        from repro.riscv.assembler import assemble

        program = assemble("li a0, 1\nmul a1, a0, a0\nadd a2, a1, a1\nhalt")
        program[0].category = "setup"
        program[1].category = "compute"
        core = Core()
        pipeline_stats = core.run(program)
        assert pipeline_stats.category_cycles["setup"] >= 1
        assert "compute" in pipeline_stats.category_cycles
        assert "other" in pipeline_stats.category_cycles


class TestStatsMerge:
    COUNTERS = (
        "cycles", "instructions", "raw_stall_cycles", "waw_stall_cycles",
        "structural_stall_cycles", "wb_stall_cycles", "branch_flush_cycles",
        "cmem_instructions", "cmem_busy_cycles",
    )

    def test_merge_sums_counters_and_categories(self):
        from repro.riscv.pipeline import PipelineStats

        a = PipelineStats(cycles=10, instructions=8,
                          category_cycles={"setup": 4, "compute": 6})
        b = PipelineStats(cycles=5, instructions=3, raw_stall_cycles=2,
                          category_cycles={"compute": 5})
        merged = a.merge(b)
        assert merged.cycles == 15
        assert merged.instructions == 11
        assert merged.raw_stall_cycles == 2
        assert merged.category_cycles == {"setup": 4, "compute": 11}
        assert merged.ipc == pytest.approx(11 / 15)

    def test_merge_does_not_mutate_inputs(self):
        from repro.riscv.pipeline import PipelineStats

        a = PipelineStats(cycles=10, category_cycles={"x": 1})
        b = PipelineStats(cycles=5, category_cycles={"x": 2})
        a.merge(b)
        assert a.cycles == 10 and a.category_cycles == {"x": 1}
        assert b.cycles == 5 and b.category_cycles == {"x": 2}

    def test_merge_all_of_nothing_is_all_zero(self):
        """Zero shards is a legal aggregation input (identity element) —
        sharding callers must not have to special-case it."""
        from repro.riscv.pipeline import PipelineStats

        total = PipelineStats.merge_all([])
        for name in self.COUNTERS:
            assert getattr(total, name) == 0
        assert total.category_cycles == {}

    def test_merge_all_of_real_runs_equals_sums(self):
        from repro.riscv.pipeline import PipelineStats

        programs = [
            "li a0, 1\nmul a1, a0, a0\nadd a2, a1, a1\nhalt",
            "\n".join(f"addi x{5 + (i % 8)}, zero, {i}" for i in range(16))
            + "\nhalt",
        ]
        runs = [Core().run(p) for p in programs]
        total = PipelineStats.merge_all(runs)
        for name in self.COUNTERS:
            assert getattr(total, name) == sum(getattr(r, name) for r in runs)

    @given(
        values=st.lists(
            st.tuples(*[st.integers(0, 10_000)] * 9), min_size=1, max_size=6
        ),
        categories=st.lists(
            st.dictionaries(
                st.sampled_from(["alu", "cmem", "setup", "other"]),
                st.integers(1, 1_000),
                max_size=4,
            ),
            min_size=1,
            max_size=6,
        ),
        splits=st.data(),
    )
    @settings(max_examples=50, deadline=None)
    def test_merge_of_splits_equals_the_whole(self, values, categories, splits):
        """Splitting each counter across k parts and merging re-forms the whole."""
        from repro.riscv.pipeline import PipelineStats

        n = min(len(values), len(categories))
        parts = [
            PipelineStats(
                **dict(zip(self.COUNTERS, values[i])),
                category_cycles=dict(categories[i]),
            )
            for i in range(n)
        ]
        order = splits.draw(st.permutations(range(n)))
        whole = PipelineStats.merge_all(parts)
        reordered = PipelineStats.merge_all(parts[i] for i in order)
        for name in self.COUNTERS:
            assert getattr(whole, name) == sum(
                getattr(p, name) for p in parts
            )
            assert getattr(reordered, name) == getattr(whole, name)
        assert reordered.category_cycles == whole.category_cycles
