"""Assembler parsing tests: formats, labels, errors."""

import pytest

from repro.riscv.assembler import assemble
from repro.errors import AssemblerError


class TestBasicFormats:
    def test_alu_register(self):
        (instr,) = assemble("add a0, a1, a2")
        assert (instr.opcode, instr.rd, instr.rs1, instr.rs2) == ("add", 10, 11, 12)

    def test_alu_immediate(self):
        (instr,) = assemble("addi t0, t1, -42")
        assert instr.imm == -42

    def test_hex_immediates(self):
        (instr,) = assemble("li a0, 0x1000")
        assert instr.imm == 0x1000

    def test_load_format(self):
        (instr,) = assemble("lw a0, 8(sp)")
        assert (instr.rd, instr.rs1, instr.imm) == (10, 2, 8)

    def test_load_without_offset(self):
        (instr,) = assemble("lw a0, (sp)")
        assert instr.imm == 0

    def test_store_format(self):
        (instr,) = assemble("sw a1, -4(s0)")
        assert (instr.rs2, instr.rs1, instr.imm) == (11, 8, -4)

    def test_atomic_format(self):
        (instr,) = assemble("amoadd.w a0, a1, (a2)")
        assert (instr.rd, instr.rs2, instr.rs1) == (10, 11, 12)

    def test_lr_format(self):
        (instr,) = assemble("lr.w a0, (a1)")
        assert (instr.rd, instr.rs1) == (10, 11)

    def test_nop_and_halt(self):
        program = assemble("nop\nhalt")
        assert [i.opcode for i in program] == ["nop", "halt"]

    def test_comments_and_blank_lines(self):
        program = assemble("# header\n\n  addi a0, a0, 1  # bump\n")
        assert len(program) == 1


class TestLabels:
    def test_branch_target_resolution(self):
        program = assemble(
            """
            li t0, 3
            loop: addi t0, t0, -1
            bne t0, zero, loop
            halt
            """
        )
        assert program[2].target == 1

    def test_forward_reference(self):
        program = assemble("j end\nnop\nend: halt")
        assert program[0].target == 2

    def test_jal_and_jalr(self):
        program = assemble("jal ra, fn\nhalt\nfn: jalr zero, ra, 0")
        assert program[0].target == 2
        assert program[2].rs1 == 1

    def test_duplicate_label(self):
        with pytest.raises(AssemblerError):
            assemble("a: nop\na: nop")

    def test_undefined_label(self):
        with pytest.raises(AssemblerError):
            assemble("j nowhere")


class TestCMemFormats:
    def test_mac(self):
        (instr,) = assemble("mac.c a0, 1, 0, 8, 8")
        assert instr.rd == 10
        assert instr.cm == {"slice": 1, "row_a": 0, "row_b": 8, "n": 8}
        assert instr.latency() == 64

    def test_move(self):
        (instr,) = assemble("move.c 0, 0, 3, 8, 8")
        assert instr.cm == {
            "src_slice": 0, "src_row": 0, "dst_slice": 3, "dst_row": 8, "n": 8,
        }
        assert instr.latency() == 8

    def test_setrow_shiftrow(self):
        program = assemble("setrow.c 1, 5, 0\nshiftrow.c 1, 5, -2")
        assert program[0].latency() == 1
        assert program[1].latency() == 2
        assert program[1].cm["words"] == -2

    def test_remote_rows(self):
        program = assemble("loadrow.rc 1, 3, a0\nstorerow.rc 1, 3, a1")
        assert program[0].rs1 == 10
        assert program[1].rs1 == 11

    def test_setcsr(self):
        (instr,) = assemble("setcsr.c 2, 0x0f")
        assert instr.cm == {"slice": 2, "mask": 0x0F}


class TestErrors:
    def test_unknown_opcode(self):
        with pytest.raises(AssemblerError):
            assemble("frobnicate a0, a1")

    def test_wrong_operand_count(self):
        with pytest.raises(AssemblerError):
            assemble("add a0, a1")

    def test_bad_memory_operand(self):
        with pytest.raises(AssemblerError):
            assemble("lw a0, a1")

    def test_bad_integer(self):
        with pytest.raises(AssemblerError):
            assemble("li a0, banana")


class TestErrorPaths:
    """Malformed input must fail with a located AssemblerError, not leak
    DecodeError or produce a half-assembled program."""

    def test_bad_register_token(self):
        with pytest.raises(AssemblerError, match="line 1: unknown register 'qq'"):
            assemble("add a0, a1, qq")

    def test_bad_register_in_memory_operand(self):
        with pytest.raises(AssemblerError, match="unknown register 'xyz'"):
            assemble("lw a0, 4(xyz)")

    def test_bad_register_reports_source_line(self):
        with pytest.raises(AssemblerError, match="line 3"):
            assemble("li a0, 1\nli a1, 2\nadd a2, a1, bogus\nhalt")

    @pytest.mark.parametrize(
        "src, expect",
        [
            ("mac.c a0, 1, 0, 8", "mac.c expects 5 operands, got 4"),
            ("loadrow.rc 0, 0", "loadrow.rc expects 3 operands, got 2"),
            ("addi a0, a1", "addi expects 3 operands, got 2"),
            ("beq a0, a1", "beq expects 3 operands, got 2"),
            ("move.c 1, 0, 2, 0, 8, 9", "move.c expects 5 operands, got 6"),
        ],
    )
    def test_wrong_operand_counts(self, src, expect):
        with pytest.raises(AssemblerError, match=expect):
            assemble(src)

    def test_unresolved_branch_label(self):
        with pytest.raises(AssemblerError, match="undefined label 'nowhere'"):
            assemble("beq a0, a1, nowhere\nhalt")

    def test_unresolved_jump_label(self):
        with pytest.raises(AssemblerError, match="undefined label"):
            assemble("li a0, 1\nj missing\nhalt")

    def test_error_is_assembler_not_decode(self):
        """DecodeError from operand parsing must be wrapped."""
        from repro.errors import DecodeError

        try:
            assemble("add a0, a1, qq")
        except AssemblerError:
            pass
        else:  # pragma: no cover
            pytest.fail("expected AssemblerError")
        with pytest.raises(AssemblerError):
            try:
                assemble("add a0, a1, qq")
            except DecodeError:  # pragma: no cover
                pytest.fail("DecodeError leaked through the assembler")
