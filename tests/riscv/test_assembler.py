"""Assembler parsing tests: formats, labels, errors."""

import pytest

from repro.riscv.assembler import assemble
from repro.errors import AssemblerError


class TestBasicFormats:
    def test_alu_register(self):
        (instr,) = assemble("add a0, a1, a2")
        assert (instr.opcode, instr.rd, instr.rs1, instr.rs2) == ("add", 10, 11, 12)

    def test_alu_immediate(self):
        (instr,) = assemble("addi t0, t1, -42")
        assert instr.imm == -42

    def test_hex_immediates(self):
        (instr,) = assemble("li a0, 0x1000")
        assert instr.imm == 0x1000

    def test_load_format(self):
        (instr,) = assemble("lw a0, 8(sp)")
        assert (instr.rd, instr.rs1, instr.imm) == (10, 2, 8)

    def test_load_without_offset(self):
        (instr,) = assemble("lw a0, (sp)")
        assert instr.imm == 0

    def test_store_format(self):
        (instr,) = assemble("sw a1, -4(s0)")
        assert (instr.rs2, instr.rs1, instr.imm) == (11, 8, -4)

    def test_atomic_format(self):
        (instr,) = assemble("amoadd.w a0, a1, (a2)")
        assert (instr.rd, instr.rs2, instr.rs1) == (10, 11, 12)

    def test_lr_format(self):
        (instr,) = assemble("lr.w a0, (a1)")
        assert (instr.rd, instr.rs1) == (10, 11)

    def test_nop_and_halt(self):
        program = assemble("nop\nhalt")
        assert [i.opcode for i in program] == ["nop", "halt"]

    def test_comments_and_blank_lines(self):
        program = assemble("# header\n\n  addi a0, a0, 1  # bump\n")
        assert len(program) == 1


class TestLabels:
    def test_branch_target_resolution(self):
        program = assemble(
            """
            li t0, 3
            loop: addi t0, t0, -1
            bne t0, zero, loop
            halt
            """
        )
        assert program[2].target == 1

    def test_forward_reference(self):
        program = assemble("j end\nnop\nend: halt")
        assert program[0].target == 2

    def test_jal_and_jalr(self):
        program = assemble("jal ra, fn\nhalt\nfn: jalr zero, ra, 0")
        assert program[0].target == 2
        assert program[2].rs1 == 1

    def test_duplicate_label(self):
        with pytest.raises(AssemblerError):
            assemble("a: nop\na: nop")

    def test_undefined_label(self):
        with pytest.raises(AssemblerError):
            assemble("j nowhere")


class TestCMemFormats:
    def test_mac(self):
        (instr,) = assemble("mac.c a0, 1, 0, 8, 8")
        assert instr.rd == 10
        assert instr.cm == {"slice": 1, "row_a": 0, "row_b": 8, "n": 8}
        assert instr.latency() == 64

    def test_move(self):
        (instr,) = assemble("move.c 0, 0, 3, 8, 8")
        assert instr.cm == {
            "src_slice": 0, "src_row": 0, "dst_slice": 3, "dst_row": 8, "n": 8,
        }
        assert instr.latency() == 8

    def test_setrow_shiftrow(self):
        program = assemble("setrow.c 1, 5, 0\nshiftrow.c 1, 5, -2")
        assert program[0].latency() == 1
        assert program[1].latency() == 2
        assert program[1].cm["words"] == -2

    def test_remote_rows(self):
        program = assemble("loadrow.rc 1, 3, a0\nstorerow.rc 1, 3, a1")
        assert program[0].rs1 == 10
        assert program[1].rs1 == 11

    def test_setcsr(self):
        (instr,) = assemble("setcsr.c 2, 0x0f")
        assert instr.cm == {"slice": 2, "mask": 0x0F}


class TestErrors:
    def test_unknown_opcode(self):
        with pytest.raises(AssemblerError):
            assemble("frobnicate a0, a1")

    def test_wrong_operand_count(self):
        with pytest.raises(AssemblerError):
            assemble("add a0, a1")

    def test_bad_memory_operand(self):
        with pytest.raises(AssemblerError):
            assemble("lw a0, a1")

    def test_bad_integer(self):
        with pytest.raises(AssemblerError):
            assemble("li a0, banana")
