"""Functional semantics of the RV32IMA subset, checked via Core runs."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.riscv.core import Core

i32 = st.integers(-(2 ** 31), 2 ** 31 - 1)


def run_binop(opcode: str, a: int, b: int) -> int:
    core = Core()
    core.run(f"li a1, {a}\nli a2, {b}\n{opcode} a0, a1, a2\nhalt")
    return core.regs.read_signed(10)


def to_s32(value: int) -> int:
    value &= 0xFFFFFFFF
    return value - (1 << 32) if value & 0x80000000 else value


class TestALU:
    @given(i32, i32)
    @settings(max_examples=30, deadline=None)
    def test_add_sub_wraparound(self, a, b):
        assert run_binop("add", a, b) == to_s32(a + b)
        assert run_binop("sub", a, b) == to_s32(a - b)

    @given(i32, i32)
    @settings(max_examples=20, deadline=None)
    def test_logic(self, a, b):
        assert run_binop("and", a, b) == to_s32(a & b)
        assert run_binop("or", a, b) == to_s32(a | b)
        assert run_binop("xor", a, b) == to_s32(a ^ b)

    @given(i32, st.integers(0, 31))
    @settings(max_examples=20, deadline=None)
    def test_shifts(self, a, sh):
        assert run_binop("sll", a, sh) == to_s32(a << sh)
        assert run_binop("srl", a, sh) == to_s32((a & 0xFFFFFFFF) >> sh)
        assert run_binop("sra", a, sh) == to_s32(to_s32(a) >> sh)

    def test_set_less_than(self):
        assert run_binop("slt", -1, 1) == 1
        assert run_binop("sltu", -1, 1) == 0  # 0xFFFFFFFF unsigned

    def test_immediates(self):
        core = Core()
        core.run("li a0, 10\naddi a0, a0, -3\nslli a0, a0, 2\nhalt")
        assert core.regs.read(10) == 28

    def test_lui_auipc(self):
        core = Core()
        core.run("lui a0, 1\nauipc a1, 0\nhalt")
        assert core.regs.read(10) == 0x1000
        # The simulator's PC is an instruction index; auipc adds imm<<12.
        assert core.regs.read(11) == 1


class TestMulDiv:
    @given(i32, i32)
    @settings(max_examples=30, deadline=None)
    def test_mul(self, a, b):
        assert run_binop("mul", a, b) == to_s32(a * b)

    @given(i32, i32)
    @settings(max_examples=30, deadline=None)
    def test_div_rem_truncating(self, a, b):
        if b == 0:
            assert run_binop("div", a, b) == -1
            assert run_binop("rem", a, b) == to_s32(a)
        else:
            q = abs(a) // abs(b) * (-1 if (a < 0) != (b < 0) else 1)
            assert run_binop("div", a, b) == to_s32(q)
            assert run_binop("rem", a, b) == to_s32(a - b * q)

    def test_mulh_variants(self):
        assert run_binop("mulh", -2, 3) == -1  # high word of -6
        assert run_binop("mulhu", -1, -1) == to_s32(0xFFFFFFFE)

    def test_divu_by_zero(self):
        assert run_binop("divu", 7, 0) == -1  # all-ones


class TestMemory:
    def test_word_roundtrip(self):
        core = Core()
        core.run("li a0, 0xDEADBEEF\nsw a0, 16(zero)\nlw a1, 16(zero)\nhalt")
        assert core.regs.read(11) == 0xDEADBEEF

    def test_little_endian_bytes(self):
        core = Core()
        core.run("li a0, 0x11223344\nsw a0, 0(zero)\nlbu a1, 0(zero)\nlbu a2, 3(zero)\nhalt")
        assert core.regs.read(11) == 0x44
        assert core.regs.read(12) == 0x11

    def test_sign_extending_loads(self):
        core = Core()
        core.run("li a0, 0x80\nsb a0, 0(zero)\nlb a1, 0(zero)\nlbu a2, 0(zero)\nhalt")
        assert core.regs.read_signed(11) == -128
        assert core.regs.read(12) == 0x80

    def test_halfword(self):
        core = Core()
        core.run("li a0, 0x8001\nsh a0, 4(zero)\nlh a1, 4(zero)\nlhu a2, 4(zero)\nhalt")
        assert core.regs.read_signed(11) == -32767
        assert core.regs.read(12) == 0x8001


class TestAtomics:
    def test_amoadd(self):
        core = Core()
        core.run(
            "li a0, 0x100\nli a1, 5\nsw a1, 0(a0)\nli a2, 3\n"
            "amoadd.w a3, a2, (a0)\nlw a4, 0(a0)\nhalt"
        )
        assert core.regs.read(13) == 5  # old value
        assert core.regs.read(14) == 8

    def test_amoswap_spinlock_shape(self):
        core = Core()
        core.run(
            "li a0, 0x100\nli a1, 1\namoswap.w a2, a1, (a0)\n"
            "amoswap.w a3, a1, (a0)\nhalt"
        )
        assert core.regs.read(12) == 0  # acquired
        assert core.regs.read(13) == 1  # contended

    def test_lr_sc_success_and_failure(self):
        core = Core()
        core.run(
            "li a0, 0x100\nlr.w a1, (a0)\nli a2, 7\nsc.w a3, a2, (a0)\n"
            "sc.w a4, a2, (a0)\nlw a5, 0(a0)\nhalt"
        )
        assert core.regs.read(13) == 0  # first sc succeeds
        assert core.regs.read(14) == 1  # reservation consumed
        assert core.regs.read(15) == 7


class TestControlFlow:
    def test_loop_countdown(self):
        core = Core()
        core.run(
            "li t0, 5\nli t1, 0\nloop: addi t1, t1, 2\naddi t0, t0, -1\n"
            "bne t0, zero, loop\nhalt"
        )
        assert core.regs.read(6) == 10

    @pytest.mark.parametrize(
        "op,a,b,taken",
        [
            ("beq", 1, 1, True), ("beq", 1, 2, False),
            ("bne", 1, 2, True), ("blt", -1, 0, True),
            ("bge", 0, 0, True), ("bltu", -1, 0, False),
            ("bgeu", -1, 0, True),
        ],
    )
    def test_branch_conditions(self, op, a, b, taken):
        core = Core()
        core.run(
            f"li a1, {a}\nli a2, {b}\nli a0, 0\n{op} a1, a2, yes\n"
            "j end\nyes: li a0, 1\nend: halt"
        )
        assert core.regs.read(10) == (1 if taken else 0)

    def test_call_return(self):
        core = Core()
        core.run(
            "li a0, 0\njal ra, fn\naddi a0, a0, 100\nhalt\n"
            "fn: addi a0, a0, 1\njalr zero, ra, 0"
        )
        assert core.regs.read(10) == 101
