"""Register file and name resolution tests."""

import pytest

from repro.errors import DecodeError
from repro.riscv.registers import RegisterFile, reg_index, reg_name


class TestNames:
    def test_x_names(self):
        assert reg_index("x0") == 0
        assert reg_index("x31") == 31

    def test_abi_names(self):
        assert reg_index("zero") == 0
        assert reg_index("ra") == 1
        assert reg_index("sp") == 2
        assert reg_index("a0") == 10
        assert reg_index("s2") == 18
        assert reg_index("t6") == 31
        assert reg_index("fp") == reg_index("s0") == 8

    def test_unknown_name(self):
        with pytest.raises(DecodeError):
            reg_index("x32")

    def test_reg_name_roundtrip(self):
        for i in range(32):
            assert reg_index(reg_name(i)) == i
        with pytest.raises(DecodeError):
            reg_name(32)


class TestRegisterFile:
    def test_x0_hardwired_zero(self):
        regs = RegisterFile()
        regs.write(0, 42)
        assert regs.read(0) == 0

    def test_values_masked_to_32_bits(self):
        regs = RegisterFile()
        regs.write(1, 0x1_2345_6789)
        assert regs.read(1) == 0x2345_6789

    def test_signed_view(self):
        regs = RegisterFile()
        regs.write(2, 0xFFFF_FFFF)
        assert regs.read_signed(2) == -1
        regs.write(2, 0x7FFF_FFFF)
        assert regs.read_signed(2) == 0x7FFF_FFFF

    def test_snapshot_is_copy(self):
        regs = RegisterFile()
        snap = regs.snapshot()
        snap[5] = 99
        assert regs.read(5) == 0
