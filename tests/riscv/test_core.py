"""Core facade: CMem wiring, MMIO, remote handlers."""

import numpy as np
import pytest

from repro.errors import DecodeError
from repro.riscv.core import Core, CoreConfig
from repro.riscv.memory import encode_remote_address


class TestCoreCMemIntegration:
    def test_mac_from_assembly(self):
        core = Core()
        a = np.arange(-50, 50)
        b = np.arange(0, 100)
        core.cmem.store_vector_transposed(1, 0, a, 8, signed=True)
        core.cmem.store_vector_transposed(1, 8, b, 8, signed=True)
        core.run("mac.c a0, 1, 0, 8, 8\nhalt")
        assert core.regs.read_signed(10) == int(np.dot(a, b))

    def test_unsigned_mac_opcode(self):
        core = Core()
        a = np.array([200, 200])
        b = np.array([200, 1])
        core.cmem.store_vector_transposed(1, 0, a, 8, signed=False)
        core.cmem.store_vector_transposed(1, 8, b, 8, signed=False)
        core.run("macu.c a0, 1, 0, 8, 8\nhalt")
        assert core.regs.read(10) == 200 * 200 + 200

    def test_setcsr_then_masked_mac(self):
        core = Core()
        a = np.ones(256, dtype=int)
        core.cmem.store_vector_transposed(1, 0, a, 8, signed=True)
        core.cmem.store_vector_transposed(1, 8, a, 8, signed=True)
        core.run("setcsr.c 1, 0x01\nmac.c a0, 1, 0, 8, 8\nhalt")
        assert core.regs.read(10) == 32  # one 32-bit-line lane

    def test_move_between_slices_via_assembly(self):
        core = Core()
        core.cmem.store_vector_transposed(1, 8, [7, 7, 7], 8, signed=True)
        core.run("move.c 1, 8, 4, 16, 8\nhalt")
        out = core.cmem.load_vector_transposed(4, 16, 3, 8, signed=True)
        assert out.tolist() == [7, 7, 7]

    def test_slice0_store_then_move_then_mac(self):
        """The full transpose path of Fig. 5 from software."""
        core = Core()
        weights = np.full(16, 2)
        core.cmem.store_vector_transposed(1, 8, weights, 8, signed=True)
        program = ["li t0, 0x1000"]
        for i in range(16):
            program.append(f"li t1, {i + 1}")
            program.append(f"sb t1, {i}(t0)")
        program += [
            "setcsr.c 1, 0x01",
            "move.c 0, 0, 1, 0, 8",
            "mac.c a0, 1, 0, 8, 8",
            "halt",
        ]
        core.run("\n".join(program))
        assert core.regs.read(10) == 2 * sum(range(1, 17))

    def test_storerow_loadrow_between_cores(self):
        """Two Cores wired back-to-back through a row-channel handler."""
        receiver = Core()

        def handler(is_store, addr, size, value):
            if is_store and size == 32:
                row_bits = [(value >> b) & 1 for b in range(256)]
                offset = addr & 0x3FFF
                receiver.cmem.write_row(0, offset % 16, row_bits)
                return 0
            raise AssertionError("unexpected remote op")

        sender = Core(remote_handler=handler)
        sender.cmem.store_vector_transposed(0, 0, [3, -4, 5], 8, signed=True)
        base = encode_remote_address(1, 0, 0)
        program = [f"li t0, {base + r}\nstorerow.rc 0, {r}, t0" for r in range(8)]
        sender.run("\n".join(program) + "\nhalt")
        out = receiver.cmem.load_vector_transposed(0, 0, 3, 8, signed=True)
        assert out.tolist() == [3, -4, 5]

    def test_loadrow_without_handler_fails(self):
        core = Core()
        with pytest.raises(DecodeError):
            core.run("li t0, 0x40000000\nloadrow.rc 0, 0, t0\nhalt")

    def test_dmem_helpers(self):
        core = Core()
        core.write_dmem_word(8, 1234)
        assert core.read_dmem_word(8) == 1234
