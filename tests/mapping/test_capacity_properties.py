"""Property tests on the capacity model's invariants."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mapping.capacity import CapacityModel
from repro.nn.workloads import ConvLayerSpec

CAP = CapacityModel()

layer_specs = st.builds(
    ConvLayerSpec,
    index=st.just(0),
    name=st.just("prop"),
    h=st.sampled_from([7, 14, 28, 56]),
    w=st.sampled_from([7, 14, 28, 56]),
    c=st.sampled_from([16, 32, 64, 128, 256, 512, 1024]),
    m=st.integers(1, 512),
    r=st.sampled_from([1, 3, 5]),
    s=st.sampled_from([1, 3, 5]),
    stride=st.sampled_from([1, 2]),
    padding=st.sampled_from([0, 1]),
)


class TestCapacityInvariants:
    @given(layer_specs)
    @settings(max_examples=100, deadline=None)
    def test_min_nodes_hold_all_filters(self, spec):
        """min_nodes * filters_per_node covers every filter."""
        fpn = CAP.filters_per_node(spec)
        if fpn >= 1:
            assert CAP.min_nodes(spec) * fpn >= spec.m

    @given(layer_specs)
    @settings(max_examples=100, deadline=None)
    def test_split_min_never_exceeds_whole_min(self, spec):
        fpn = CAP.filters_per_node(spec)
        if fpn >= 1:
            assert CAP.min_nodes_split(spec) <= CAP.min_nodes(spec)

    @given(layer_specs)
    @settings(max_examples=100, deadline=None)
    def test_max_useful_at_least_min(self, spec):
        assert CAP.max_useful_nodes(spec) >= CAP.min_nodes_split(spec)

    @given(layer_specs)
    @settings(max_examples=100, deadline=None)
    def test_packing_lane_aligned(self, spec):
        p = CAP.packing_factor(spec.c)
        assert p >= 1
        if spec.c >= 256:
            assert p == 1
        else:
            lanes = max(1, math.ceil(spec.c / 32))
            assert p * lanes <= 8

    @given(layer_specs)
    @settings(max_examples=100, deadline=None)
    def test_macs_per_filter_cover_all_taps(self, spec):
        """Packed MACs never exceed the unpacked tap count and always
        cover every (tap, sub-vector) pair at least once per packing."""
        macs = CAP.macs_per_filter_per_pixel(spec)
        sub = max(1, math.ceil(spec.c / 256))
        unpacked = spec.r * spec.s * sub
        assert 1 <= macs <= unpacked
        assert macs * CAP.packing_factor(spec.c) >= unpacked

    @given(layer_specs, st.integers(0, 6))
    @settings(max_examples=60, deadline=None)
    def test_filters_held_conserves_filters(self, spec, extra):
        nodes = CAP.min_nodes_split(spec) + extra
        held = CAP.filters_held(spec, nodes)
        assert held * nodes == pytest.approx(spec.m)

    @given(st.sampled_from([2, 4, 8, 16]))
    def test_slots_formula(self, n_bits):
        assert CAP.vector_slots_per_slice(n_bits) == 64 // n_bits - 1
