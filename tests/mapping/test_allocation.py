"""The Eq. (1) node allocator."""

import pytest

from repro.errors import MappingError
from repro.mapping.allocation import allocate_segment
from repro.mapping.capacity import CapacityModel
from repro.nn.workloads import ConvLayerSpec


def layer(index, m=64, h=28, c=128):
    return ConvLayerSpec(index, f"l{index}", h=h, w=h, c=c, m=m)


def inverse_timing(spec, nodes):
    """Perfectly divisible work: T = work / nodes."""
    return spec.macs / nodes


class TestAllocator:
    def test_empty_segment_rejected(self):
        with pytest.raises(MappingError):
            allocate_segment([], 100, inverse_timing)

    def test_budget_too_small(self):
        with pytest.raises(MappingError):
            allocate_segment([layer(1, m=128)], 10, inverse_timing)

    def test_minimums_respected(self):
        cap = CapacityModel()
        spec = layer(1, m=128)
        result = allocate_segment([spec], 208, inverse_timing, cap)
        assert result.nodes[1] >= cap.min_nodes(spec)

    def test_spare_cores_go_to_bottleneck(self):
        heavy = layer(1, m=128, h=56)
        light = layer(2, m=32, h=7)
        result = allocate_segment([heavy, light], 100, inverse_timing)
        assert result.nodes[1] > result.nodes[2]

    def test_balances_times(self):
        a, b = layer(1, m=128, h=28), layer(2, m=128, h=28)
        result = allocate_segment([a, b], 120, inverse_timing)
        assert result.nodes[1] == pytest.approx(result.nodes[2], abs=1)

    def test_respects_max_useful(self):
        spec = layer(1, m=16)
        result = allocate_segment([spec], 208, inverse_timing)
        assert result.nodes[1] <= 16  # one filter per node at most

    def test_budget_never_exceeded(self):
        layers = [layer(i, m=64) for i in range(1, 5)]
        result = allocate_segment(layers, 60, inverse_timing)
        assert result.total_nodes() <= 60

    def test_stops_when_bottleneck_saturates(self):
        """With a constant timing function, spare cores are left unused."""
        calls = []

        def flat_timing(spec, nodes):
            calls.append(nodes)
            return 1000.0

        spec = layer(1, m=128)
        result = allocate_segment([spec], 208, flat_timing)
        cap = CapacityModel()
        assert result.nodes[1] <= cap.min_nodes(spec) + 1

    def test_bottleneck_time_reported(self):
        result = allocate_segment([layer(1), layer(2)], 50, inverse_timing)
        assert result.bottleneck_time == max(result.times.values())
