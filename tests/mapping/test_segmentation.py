"""The three segmentation strategies against the paper's boundaries."""

import pytest

from repro.core.perfmodel import PerformanceModel
from repro.errors import MappingError
from repro.mapping.segmentation import (
    GreedyStrategy,
    HeuristicStrategy,
    SingleLayerStrategy,
    STRATEGIES,
)
from repro.nn.workloads import resnet18_spec


@pytest.fixture(scope="module")
def timing():
    return PerformanceModel().layer_time_fn()


@pytest.fixture(scope="module")
def network():
    return resnet18_spec()


class TestSingleLayer:
    def test_one_segment_per_layer(self, network, timing):
        plan = SingleLayerStrategy().plan(network, timing)
        assert len(plan.segments) == 20
        assert all(len(s.layers) == 1 for s in plan.segments)


class TestGreedy:
    def test_paper_segment_boundaries(self, network, timing):
        """Greedy packs layers 1-12 and 13-15 (Sec. 6.2)."""
        plan = GreedyStrategy().plan(network, timing)
        indices = [[s.index for s in seg.layers] for seg in plan.segments]
        assert indices[0] == list(range(1, 13))
        assert indices[1] == [13, 14, 15]

    def test_minimum_allocations(self, network, timing):
        plan = GreedyStrategy().plan(network, timing)
        # conv1_1 gets 4 computing cores + 1 DC = 5 (paper Table 6).
        assert plan.nodes_of(1) == 5
        assert plan.nodes_of(7) == 14

    def test_segments_fit_budget(self, network, timing):
        plan = GreedyStrategy(array_size=208).plan(network, timing)
        for seg in plan.segments:
            assert seg.total_nodes <= 208


class TestHeuristic:
    def test_paper_segmentation(self, network, timing):
        """Heuristic groups 1-6, 7-11, 12-15, then 16..20 alone."""
        plan = HeuristicStrategy().plan(network, timing)
        indices = [[s.index for s in seg.layers] for seg in plan.segments]
        assert indices[0] == [1, 2, 3, 4, 5, 6]
        assert indices[1] == [7, 8, 9, 10, 11]
        assert indices[2] == [12, 13, 14, 15]
        assert indices[3:] == [[16], [17], [18], [19], [20]]

    def test_groups_share_ifmap_size(self, network, timing):
        plan = HeuristicStrategy().plan(network, timing)
        for seg in plan.segments:
            sizes = {(s.h, s.w) for s in seg.layers}
            assert len(sizes) == 1

    def test_uses_more_nodes_than_greedy(self, network, timing):
        greedy = GreedyStrategy().plan(network, timing)
        heuristic = HeuristicStrategy().plan(network, timing)
        assert heuristic.nodes_of(1) >= greedy.nodes_of(1)

    def test_budget_respected(self, network, timing):
        plan = HeuristicStrategy(array_size=208).plan(network, timing)
        for seg in plan.segments:
            assert seg.total_nodes <= 208


class TestPlanQueries:
    def test_segment_of(self, network, timing):
        plan = HeuristicStrategy().plan(network, timing)
        assert 1 in plan.segment_of(1).allocation.nodes
        with pytest.raises(MappingError):
            plan.segment_of(99)

    def test_registry(self):
        assert set(STRATEGIES) == {"single-layer", "greedy", "heuristic"}


class TestSmallArray:
    def test_layer_too_big_for_array(self, network, timing):
        with pytest.raises(MappingError):
            GreedyStrategy(array_size=4).plan(network, timing)
