"""The filters-per-node capacity model vs the paper's Table 6 counts."""

import pytest

from repro.errors import CapacityError
from repro.mapping.capacity import CapacityModel
from repro.nn.workloads import ConvLayerSpec, resnet18_spec

CAP = CapacityModel()


class TestSlotArithmetic:
    def test_q_formula(self):
        """Q = 64/N - 1 vector slots per slice (Sec. 4.1)."""
        assert CAP.vector_slots_per_slice(8) == 7
        assert CAP.vector_slots_per_slice(16) == 3
        assert CAP.vector_slots_per_slice(4) == 15

    def test_total_slots(self):
        assert CAP.total_vector_slots(8) == 49

    def test_precision_too_wide(self):
        with pytest.raises(CapacityError):
            CAP.vector_slots_per_slice(64)

    def test_packing_factor(self):
        assert CAP.packing_factor(256) == 1
        assert CAP.packing_factor(512) == 1
        assert CAP.packing_factor(128) == 2
        assert CAP.packing_factor(64) == 4
        assert CAP.packing_factor(32) == 8
        assert CAP.packing_factor(16) == 8  # lane-aligned: still one lane

    def test_paper_filter_count_example(self):
        """Sec. 4.1: a node holds floor(7*Q / (R*S)) = 5 filters of 3x3x256."""
        spec = ConvLayerSpec(0, "t4", h=9, w=9, c=256, m=5, padding=0)
        assert CAP.filters_per_node(spec) == 5


class TestPaperNodeCounts:
    """Greedy (capacity-minimum) group sizes of Table 6, computing cores + DC."""

    # index -> paper node-group size under the greedy strategy
    PAPER = {1: 5, 2: 5, 3: 5, 4: 5, 5: 2, 6: 8, 7: 14, 8: 14, 9: 14,
             10: 4, 11: 27, 12: 53, 13: 53, 14: 53, 15: 12}

    @pytest.mark.parametrize("index", sorted(PAPER))
    def test_min_nodes_match_paper(self, index):
        net = resnet18_spec()
        spec = net.layer(index)
        assert CAP.min_nodes(spec) + 1 == self.PAPER[index]

    def test_conv4_needs_split_filters(self):
        net = resnet18_spec()
        spec = net.layer(17)  # conv4_2: 512 filters of 3x3x512
        whole = CAP.min_nodes(spec)
        assert whole > 207  # cannot fit whole-filter on the array
        split = CAP.min_nodes(spec, max_nodes=207)
        assert split <= 207
        assert split == CAP.min_nodes_split(spec)

    def test_split_beyond_cap_raises(self):
        spec = ConvLayerSpec(0, "huge", h=7, w=7, c=4096, m=4096, padding=1)
        with pytest.raises(CapacityError):
            CAP.min_nodes(spec, max_nodes=10)


class TestWorkModel:
    def test_macs_per_filter_basic(self):
        spec = ConvLayerSpec(0, "c", h=14, w=14, c=256, m=8)
        assert CAP.macs_per_filter_per_pixel(spec) == 9

    def test_packing_reduces_macs(self):
        spec = ConvLayerSpec(0, "c", h=56, w=56, c=64, m=8)
        # p=4: ceil(9/4) = 3 masked MACs cover all 9 filter pixels.
        assert CAP.macs_per_filter_per_pixel(spec) == 3

    def test_subvectors_multiply_macs(self):
        spec = ConvLayerSpec(0, "c", h=7, w=7, c=512, m=8)
        assert CAP.macs_per_filter_per_pixel(spec) == 18

    def test_filters_held_average(self):
        spec = ConvLayerSpec(0, "c", h=14, w=14, c=256, m=10)
        assert CAP.filters_held(spec, 5) == 2.0

    def test_filters_held_validates_minimum(self):
        spec = ConvLayerSpec(0, "c", h=14, w=14, c=256, m=100)
        with pytest.raises(CapacityError):
            CAP.filters_held(spec, 1)
        with pytest.raises(CapacityError):
            CAP.filters_held(spec, 0)

    def test_max_useful_nodes(self):
        spec = ConvLayerSpec(0, "c", h=14, w=14, c=256, m=100)
        assert CAP.max_useful_nodes(spec) == 100
