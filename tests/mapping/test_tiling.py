"""Output-channel tiling of array-oversized layers."""

import pytest

from repro.mapping.capacity import CapacityModel
from repro.mapping.tiling import passes_required, tile_network
from repro.nn.workloads import (
    ConvLayerSpec,
    resnet18_spec,
    vgg11_spec,
)

CAP = CapacityModel()


class TestPassesRequired:
    def test_fitting_layer_needs_one_pass(self):
        spec = resnet18_spec().layer(12)
        assert passes_required(spec, CAP, 208) == 1

    def test_split_filter_layer_still_one_pass(self):
        spec = resnet18_spec().layer(17)  # conv4_2 fits via split filters
        assert passes_required(spec, CAP, 208) == 1

    def test_vgg_fc6_needs_many_passes(self):
        fc6 = vgg11_spec().layer(8)
        assert passes_required(fc6, CAP, 208) > 1


class TestTileNetwork:
    def test_resnet_unchanged(self):
        net = resnet18_spec()
        assert tile_network(net, CAP, 208) is net

    def test_vgg_tiled(self):
        tiled = tile_network(vgg11_spec(), CAP, 208)
        assert len(tiled.layers) > len(vgg11_spec().layers)
        names = [s.name for s in tiled.layers]
        assert "fc6@p0" in names and "fc6@p1" in names

    def test_tiles_preserve_total_filters(self):
        original = vgg11_spec()
        tiled = tile_network(original, CAP, 208)
        for base in original:
            total = sum(
                s.m for s in tiled.layers
                if s.name == base.name or s.name.startswith(base.name + "@")
            )
            assert total == base.m, base.name

    def test_indices_renumbered(self):
        tiled = tile_network(vgg11_spec(), CAP, 208)
        assert [s.index for s in tiled.layers] == list(range(1, len(tiled.layers) + 1))

    def test_every_tile_fits(self):
        tiled = tile_network(vgg11_spec(), CAP, 208)
        for spec in tiled.layers:
            assert CAP.min_nodes(spec, max_nodes=207) <= 207

    def test_idempotent(self):
        once = tile_network(vgg11_spec(), CAP, 208)
        twice = tile_network(once, CAP, 208)
        assert [s.name for s in once.layers] == [s.name for s in twice.layers]


class TestEndToEnd:
    def test_vgg_runs_on_the_chip(self):
        from repro.core.simulator import ChipSimulator

        result = ChipSimulator().run(vgg11_spec(), "heuristic")
        assert result.latency_ms > 0
        # FC-heavy VGG is weight-load-bound: much slower than ResNet18
        # despite comparable conv work.
        resnet = ChipSimulator().run(resnet18_spec(), "heuristic")
        assert result.latency_ms > resnet.latency_ms
