"""Zig-zag placement properties (Fig. 7(c))."""

import pytest

from repro.core.perfmodel import PerformanceModel
from repro.errors import PlacementError
from repro.mapping.placement import zigzag_placement
from repro.mapping.segmentation import HeuristicStrategy
from repro.nn.workloads import resnet18_spec


@pytest.fixture(scope="module")
def plan():
    return HeuristicStrategy().plan(resnet18_spec(), PerformanceModel().layer_time_fn())


class TestZigZag:
    def test_chain_neighbours_are_adjacent(self, plan):
        """Consecutive cores of a node group sit one hop apart."""
        placement = zigzag_placement(plan.segments[0])
        for index in placement.dc:
            assert all(h == 1 for h in placement.chain_hops(index))

    def test_average_chain_hops_is_one(self, plan):
        placement = zigzag_placement(plan.segments[0])
        assert placement.average_chain_hops() == pytest.approx(1.0)

    def test_all_tiles_unique(self, plan):
        placement = zigzag_placement(plan.segments[1])
        tiles = list(placement.dc.values())
        for coords in placement.computing.values():
            tiles.extend(coords)
        assert len(tiles) == len(set(tiles))

    def test_tiles_inside_compute_region(self, plan):
        placement = zigzag_placement(plan.segments[0])
        for coords in placement.computing.values():
            for x, y in coords:
                assert 0 <= x < 15
                assert 1 <= y < 15

    def test_next_layer_dc_is_close(self, plan):
        """Zig-zag keeps the producer chain near the consumer's DC."""
        segment = plan.segments[0]
        placement = zigzag_placement(segment)
        indices = [s.index for s in segment.layers]
        for producer, consumer in zip(indices, indices[1:]):
            assert placement.cross_layer_hops(producer, consumer) < 30

    def test_oversized_segment_rejected(self, plan):
        big = plan.segments[0]
        with pytest.raises(PlacementError):
            zigzag_placement(big, width=3, height=3)
