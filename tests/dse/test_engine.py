"""The sweep engine: statuses, serial==parallel, and the grid registry."""

import pytest

from repro.dse.engine import (
    evaluate_point,
    network_baselines,
    register_grid_evaluator,
    run_grid,
    run_sweep,
)
from repro.dse.presets import SWEEPS
from repro.dse.spec import DesignPoint, SweepSpec
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def smoke():
    return run_sweep(SWEEPS["smoke"])


class TestEvaluatePoint:
    def test_default_point_simulates_ok(self):
        point = DesignPoint(network="small_cnn", backend="analytic")
        result = evaluate_point(point)
        assert result.ok
        assert result.latency_ms > 0
        assert set(result.energy_j) == {"dram", "cmem", "noc", "core", "llc"}
        assert set(result.area_mm2) == {
            "cmem", "core", "local_mem", "noc", "llc"
        }
        assert result.report is None  # keep_report defaults off

    def test_keep_report_attaches_the_run(self):
        point = DesignPoint(network="small_cnn", backend="analytic")
        result = evaluate_point(point, keep_report=True)
        assert result.report is not None
        assert result.report.latency_ms == result.latency_ms

    def test_too_small_machine_is_infeasible_not_fatal(self):
        point = DesignPoint(network="resnet18", backend="analytic",
                            mesh=(3, 4))
        result = evaluate_point(point)
        assert result.status in ("infeasible", "rejected")
        assert not result.ok
        assert result.detail

    def test_starved_dram_is_rejected_with_rule_ids(self):
        # One DRAM channel cannot feed ResNet18's filter streaming; the
        # static verifier (not the backend) should catch it.
        point = DesignPoint(network="resnet18", backend="analytic",
                            dram_channels=1)
        result = evaluate_point(point)
        if result.status == "rejected":
            assert result.findings  # rule ids travel with the row
        else:
            assert result.status in ("ok", "infeasible")


class TestRunSweep:
    def test_smoke_sweep_all_ok(self, smoke):
        assert len(smoke.points) == SWEEPS["smoke"].size
        assert all(r.ok for r in smoke.points)

    def test_points_keep_expansion_order(self, smoke):
        expanded = [p.point_id for p in SWEEPS["smoke"].expand()]
        assert [r.point.point_id for r in smoke.points] == expanded

    def test_serial_and_parallel_are_byte_identical(self, smoke):
        parallel = run_sweep(SWEEPS["smoke"], workers=4)
        assert parallel.to_json() == smoke.to_json()

    def test_baselines_cover_the_sweep_networks(self, smoke):
        assert set(smoke.baselines) == set(SWEEPS["smoke"].networks)
        for values in smoke.baselines.values():
            assert values["scalar_cycles"] > values["neural_cache_cycles"]
            assert values["total_macs"] > 0

    def test_baselines_can_be_skipped(self):
        spec = SweepSpec(name="t", networks=("small_cnn",),
                         backends=("analytic",))
        result = run_sweep(spec, baselines=False)
        assert result.baselines == {}


def _double(cell):
    return {"doubled": cell["x"] * 2}


register_grid_evaluator("test-double", _double)


class TestGridRegistry:
    def test_cells_run_in_order(self):
        out = run_grid("test-double", [{"x": i} for i in range(5)])
        assert [c["doubled"] for c in out] == [0, 2, 4, 6, 8]

    def test_parallel_matches_serial(self):
        cells = [{"x": i} for i in range(7)]
        assert run_grid("test-double", cells, workers=3) == run_grid(
            "test-double", cells
        )

    def test_unknown_evaluator_raises(self):
        with pytest.raises(ConfigurationError):
            run_grid("no-such-evaluator", [{}])

    def test_duplicate_registration_raises(self):
        with pytest.raises(ConfigurationError):
            register_grid_evaluator("test-double", _double)
        register_grid_evaluator("test-double", _double, replace=True)


class TestNetworkBaselines:
    def test_sorted_and_deduplicated(self):
        out = network_baselines(["small_cnn", "small_cnn"])
        assert list(out) == ["small_cnn"]
