"""The dse obs report kind: build, validate, render, determinism."""

import pytest

from repro.dse.engine import run_sweep
from repro.dse.spec import SweepSpec
from repro.errors import ObservabilityError
from repro.obs.html import render_html
from repro.obs.report import (
    REPORT_KINDS,
    SCHEMA,
    build_dse_report,
    validate_report,
)


@pytest.fixture(scope="module")
def doc():
    spec = SweepSpec(
        name="report-test", networks=("small_cnn",), backends=("analytic",),
        dram_channels=(16, 32),
    )
    return build_dse_report(run_sweep(spec))


class TestBuild:
    def test_kind_registered(self):
        assert "dse" in REPORT_KINDS

    def test_document_shape(self, doc):
        assert doc["schema"] == SCHEMA
        assert doc["kind"] == "dse"
        assert doc["meta"]["sweep"] == "report-test"
        assert doc["meta"]["points"] == 2
        assert {"points", "pareto", "tables", "baselines"} <= set(doc["dse"])

    def test_validates(self, doc):
        validate_report(doc)


class TestValidate:
    def test_missing_section_rejected(self, doc):
        bad = {k: v for k, v in doc.items() if k != "dse"}
        with pytest.raises(ObservabilityError):
            validate_report(bad)

    def test_pareto_must_reference_known_points(self, doc):
        bad = dict(doc)
        bad["dse"] = dict(doc["dse"])
        bad["dse"]["pareto"] = {"small_cnn/analytic": ["ghost-point"]}
        with pytest.raises(ObservabilityError):
            validate_report(bad)

    def test_tables_must_be_complete(self, doc):
        bad = dict(doc)
        bad["dse"] = dict(doc["dse"])
        bad["dse"]["tables"] = {"latency": []}
        with pytest.raises(ObservabilityError):
            validate_report(bad)


class TestRender:
    def test_html_is_deterministic(self, doc):
        assert render_html(doc) == render_html(doc)

    def test_html_carries_the_panels(self, doc):
        html = render_html(doc)
        assert "design-space exploration report" in html
        assert "Pareto frontier" in html
        assert "Energy by block" in html
        assert "Area by block" in html
        assert "Single-node baselines" in html
        # Self-contained: no scripts, no network fetches.
        assert "<script" not in html
        assert "http://" not in html and "https://" not in html

    def test_every_frontier_point_has_a_marker(self, doc):
        html = render_html(doc)
        frontier = [pid for members in doc["dse"]["pareto"].values()
                    for pid in members]
        for pid in frontier:
            assert pid in html
