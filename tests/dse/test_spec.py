"""SweepSpec / DesignPoint: expansion, ids, and derivation exactness."""

import pytest

from repro.dse.spec import (
    REF_CHANNELS,
    REF_MESH,
    REF_ROWS,
    REF_SLICES,
    DesignPoint,
    SweepSpec,
)
from repro.errors import ConfigurationError
from repro.sim.config import SimConfig


class TestDesignPoint:
    def test_default_point_reproduces_sim_config_exactly(self):
        """The linchpin of the experiment-driver refactor: at the paper's
        coordinates every scale factor is exactly 1.0, so the derived
        config is bit-for-bit the repo default and drivers routed through
        the engine stay byte-identical."""
        point = DesignPoint(network="resnet18", backend="streaming")
        assert point.mesh == REF_MESH
        assert point.cmem_slices == REF_SLICES
        assert point.cmem_rows == REF_ROWS
        assert point.dram_channels == REF_CHANNELS
        derived = point.sim_config()
        default = SimConfig()
        assert derived.chip == default.chip
        assert derived.params == default.params
        assert derived.capacity == default.capacity
        assert derived.array_size == default.array_size

    def test_point_id_round_trips_the_axes(self):
        point = DesignPoint(
            network="small_cnn", backend="analytic", strategy="greedy",
            mesh=(12, 12), cmem_slices=5, cmem_rows=32, dram_channels=16,
        )
        assert point.point_id == "small_cnn/analytic/greedy/m12x12/s5r32/d16"

    def test_batched_point_id_carries_the_batch(self):
        point = DesignPoint(
            network="resnet18", backend="streaming",
            batch=4, batch_requests=2,
        )
        assert point.point_id.endswith("/b4q2")

    def test_compute_tiles_mirrors_chip_config(self):
        point = DesignPoint(network="resnet18", backend="streaming",
                            mesh=(20, 16))
        assert point.compute_tiles == point.sim_config().chip.compute_tiles
        assert point.array_size == point.compute_tiles - 2

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"mesh": (2, 4)},
            {"cmem_slices": 0},
            {"cmem_rows": 8},
            {"dram_channels": 0},
            {"network": "nope"},
        ],
    )
    def test_invalid_axes_raise(self, kwargs):
        base = {"network": "resnet18", "backend": "streaming"}
        base.update(kwargs)
        with pytest.raises(ConfigurationError):
            DesignPoint(**base)


class TestSweepSpec:
    def test_expand_size_and_order(self):
        spec = SweepSpec(
            name="t",
            networks=("resnet18", "small_cnn"),
            backends=("analytic",),
            meshes=((12, 12), (16, 16)),
            dram_channels=(16, 32),
        )
        points = spec.expand()
        assert len(points) == spec.size == 8
        # Network is the outermost axis, channels the innermost.
        assert [p.network for p in points[:4]] == ["resnet18"] * 4
        assert [p.dram_channels for p in points[:2]] == [16, 32]

    def test_expansion_is_deterministic(self):
        spec = SweepSpec(name="t", networks=("small_cnn",),
                         backends=("analytic",), cmem_slices=(5, 7))
        assert [p.point_id for p in spec.expand()] == [
            p.point_id for p in spec.expand()
        ]

    def test_duplicate_axis_values_rejected(self):
        with pytest.raises(ConfigurationError):
            SweepSpec(name="t", networks=("resnet18", "resnet18"),
                      backends=("analytic",))

    def test_empty_axis_rejected(self):
        with pytest.raises(ConfigurationError):
            SweepSpec(name="t", networks=(), backends=("analytic",))

    def test_axes_dict_lists_every_axis(self):
        spec = SweepSpec(name="t", networks=("resnet18",),
                         backends=("analytic",))
        axes = spec.axes_dict()
        for key in ("networks", "backends", "strategies", "meshes",
                    "cmem_slices", "cmem_rows", "dram_channels"):
            assert key in axes
