"""DSEResult: Pareto math, comparison columns, tables, determinism."""

import json

import pytest

from repro.dse.result import (
    PAPER_REF_CHIP_AREA_MM2,
    PAPER_REF_RESNET18_LATENCY_MS,
    DSEResult,
    PointResult,
    add_compare_ref,
    compare_ref,
    pareto_frontier,
)
from repro.dse.spec import DesignPoint, SweepSpec


def _point(latency, energy, *, channels=32, network="small_cnn"):
    dp = DesignPoint(network=network, backend="analytic",
                     dram_channels=channels)
    return PointResult(
        point=dp, status="ok", latency_ms=latency, total_cycles=latency * 1e6,
        energy_j={"dram": energy}, area_mm2={"cmem": 10.0},
        average_power_w=1.0, throughput_samples_s=1000.0 / latency,
        gops_per_watt=10.0,
    )


class TestCompareRef:
    def test_ratio(self):
        assert compare_ref(2.0, 4.0) == 0.5

    def test_columns_added_in_place(self):
        row = {"latency_ms": 10.26}
        add_compare_ref(row, "latency_ms", PAPER_REF_RESNET18_LATENCY_MS)
        assert row["latency_ms_ref"] == PAPER_REF_RESNET18_LATENCY_MS
        assert row["latency_ms_vs_ref"] == pytest.approx(2.0)


class TestParetoFrontier:
    def test_dominated_points_drop(self):
        a = _point(1.0, 1.0, channels=8)
        b = _point(2.0, 2.0, channels=16)  # dominated by a
        c = _point(0.5, 3.0, channels=32)  # faster but hungrier: stays
        frontier = pareto_frontier([a, b, c])
        assert [r.point.dram_channels for r in frontier] == [32, 8]

    def test_ties_all_stay(self):
        a = _point(1.0, 1.0, channels=8)
        b = _point(1.0, 1.0, channels=16)
        assert len(pareto_frontier([a, b])) == 2

    def test_non_ok_points_excluded(self):
        bad = PointResult(point=_point(1.0, 1.0).point, status="infeasible")
        assert pareto_frontier([bad]) == []

    def test_sorted_by_first_objective(self):
        points = [_point(float(5 - i), 1.0 + i, channels=2 ** i)
                  for i in range(4)]
        frontier = pareto_frontier(points)
        latencies = [r.latency_ms for r in frontier]
        assert latencies == sorted(latencies)


class TestDSEResult:
    @pytest.fixture
    def result(self):
        spec = SweepSpec(name="t", networks=("small_cnn",),
                         backends=("analytic",), dram_channels=(8, 16, 32))
        points = [_point(1.0, 1.0, channels=8),
                  _point(2.0, 2.0, channels=16),
                  _point(0.5, 3.0, channels=32)]
        return DSEResult(spec=spec, points=points, baselines={
            "small_cnn": {"scalar_cycles": 4e6, "scalar_energy_j": 10.0,
                          "neural_cache_cycles": 2e6,
                          "neural_cache_energy_j": 5.0, "total_macs": 1e6},
        })

    def test_pareto_groups_key_shape(self, result):
        groups = result.pareto_groups()
        assert list(groups) == ["small_cnn/analytic"]
        assert len(groups["small_cnn/analytic"]) == 2

    def test_by_id(self, result):
        pid = result.points[0].point.point_id
        assert result.by_id(pid) is result.points[0]
        with pytest.raises(KeyError):
            result.by_id("nope")

    def test_energy_table_baseline_columns(self, result):
        rows = result.energy_table()
        first = rows[0]
        assert first["energy_gain_vs_scalar"] == pytest.approx(10.0)
        assert first["speedup_vs_scalar"] == pytest.approx(4.0)
        assert first["energy_gain_vs_neural_cache"] == pytest.approx(5.0)

    def test_area_table_deduplicates_architectures(self, result):
        # Three points, three distinct channel counts -> three archs.
        rows = result.area_table()
        assert len(rows) == 3
        for row in rows:
            assert row["total_mm2_ref"] == PAPER_REF_CHIP_AREA_MM2

    def test_as_dict_counts_every_point(self, result):
        doc = result.as_dict()
        assert doc["counts"]["ok"] == 3
        assert len(doc["points"]) == 3

    def test_to_json_deterministic(self, result):
        assert result.to_json() == result.to_json()
        json.loads(result.to_json())  # valid JSON

    def test_non_ok_points_keep_their_rows(self):
        spec = SweepSpec(name="t", networks=("small_cnn",),
                         backends=("analytic",))
        ok = _point(1.0, 1.0)
        bad = PointResult(point=ok.point, status="rejected",
                          detail="x", findings=("PLAN601",))
        result = DSEResult(spec=spec, points=[ok, bad])
        doc = result.as_dict()
        assert doc["counts"] == {"ok": 1, "infeasible": 0,
                                 "rejected": 1, "error": 0}
        statuses = [p["status"] for p in doc["points"]]
        assert statuses == ["ok", "rejected"]
        assert doc["points"][1]["findings"] == ["PLAN601"]
