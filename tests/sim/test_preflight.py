"""The simulate() pre-flight gate: broken plans die before any tier runs."""

import pytest

from repro.errors import PlanVerificationError, ReproError
from repro.nn.workloads import small_cnn_spec
from repro.sim import SimConfig, simulate
from repro.sim.accounting import plan_network


def broken_plan(config):
    plan = plan_network(small_cnn_spec(), config.strategy, config)
    segment = plan.segments[0]
    segment.allocation.nodes[segment.layers[0].index] = 0
    return plan


class TestPreflightGate:
    def test_clean_network_passes_the_gate(self):
        report = simulate(small_cnn_spec(), backend="analytic")
        assert report.latency_ms > 0

    def test_broken_plan_is_rejected_statically(self):
        config = SimConfig()
        with pytest.raises(PlanVerificationError) as excinfo:
            simulate(
                small_cnn_spec(),
                backend="analytic",
                config=config,
                plan=broken_plan(config),
            )
        assert "PLAN601" in str(excinfo.value)

    def test_rejection_carries_the_report(self):
        config = SimConfig()
        with pytest.raises(PlanVerificationError) as excinfo:
            simulate(
                small_cnn_spec(),
                backend="analytic",
                config=config,
                plan=broken_plan(config),
            )
        report = excinfo.value.report
        assert report is not None and not report.ok
        assert any(d.rule == "PLAN601" for d in report.diagnostics)

    def test_preflight_false_opts_out(self):
        config = SimConfig(preflight=False)
        # With the gate off the broken plan reaches the tier; whatever
        # happens there, it must not be the static pre-flight rejection.
        try:
            simulate(
                small_cnn_spec(),
                backend="analytic",
                config=config,
                plan=broken_plan(config),
            )
        except PlanVerificationError:
            pytest.fail("preflight=False must disable the static gate")
        except ReproError:
            pass  # the tier is allowed to fail on garbage input

    def test_gate_runs_on_every_tier(self):
        config = SimConfig()
        for backend in ("analytic", "streaming"):
            with pytest.raises(PlanVerificationError):
                simulate(
                    small_cnn_spec(),
                    backend=backend,
                    config=config,
                    plan=broken_plan(config),
                )

    def test_error_is_a_mapping_error(self):
        # PlanVerificationError subclasses MappingError: existing callers
        # catching mapping failures also catch pre-flight rejections.
        from repro.errors import MappingError

        assert issubclass(PlanVerificationError, MappingError)
