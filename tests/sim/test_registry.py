"""Backend registry: discovery, lookup, registration, protocol checks."""

import pytest

from repro.errors import BackendError, MappingError
from repro.nn.workloads import small_cnn_spec
from repro.sim import (
    DEFAULT_BACKEND,
    SimulationBackend,
    available_backends,
    get_backend,
    register_backend,
    simulate,
)
from repro.sim.backends import _REGISTRY


class TestDiscovery:
    def test_all_four_tiers_registered(self):
        assert available_backends() == ("analytic", "cycle", "event", "streaming")

    def test_default_is_streaming(self):
        assert DEFAULT_BACKEND == "streaming"
        assert DEFAULT_BACKEND in available_backends()

    def test_lookup_returns_named_backend(self):
        for name in available_backends():
            backend = get_backend(name)
            assert backend.name == name
            assert isinstance(backend, SimulationBackend)
            assert backend.fidelity  # every tier states what it models

    def test_unknown_name_lists_choices(self):
        with pytest.raises(BackendError, match="analytic"):
            get_backend("spice")

    def test_simulate_rejects_unknown_backend_before_mapping(self):
        with pytest.raises(BackendError):
            simulate(small_cnn_spec(), backend="spice")

    def test_simulate_rejects_bad_batch(self):
        with pytest.raises(MappingError):
            simulate(small_cnn_spec(), batch=0)


class _FakeBackend:
    name = "fake"
    fidelity = "test double"

    def run(self, network, plan, config):
        streaming = get_backend("streaming").run(network, plan, config)
        streaming.backend = self.name
        return streaming


class TestRegistration:
    @pytest.fixture
    def fake(self):
        backend = _FakeBackend()
        register_backend(backend)
        yield backend
        _REGISTRY.pop(backend.name, None)

    def test_registered_backend_is_selectable_by_name(self, fake):
        assert "fake" in available_backends()
        report = simulate(small_cnn_spec(), backend="fake")
        assert report.backend == "fake"

    def test_duplicate_name_rejected(self, fake):
        with pytest.raises(BackendError, match="already registered"):
            register_backend(_FakeBackend())

    def test_replace_overrides(self, fake):
        other = _FakeBackend()
        register_backend(other, replace=True)
        assert get_backend("fake") is other

    def test_protocol_violation_rejected(self):
        class NotABackend:
            name = "broken"

        with pytest.raises(BackendError, match="protocol"):
            register_backend(NotABackend())
        assert "broken" not in available_backends()
