"""Backend parity matrix: every tier, multiple strategies, one contract.

The matrix runs the same network through all four registered backends
under both the default mapping strategy and a non-default one, and holds
each tier to the cross-check envelope against the streaming reference.
Tier-specific evidence (event counts, cycle-tier numerics) is asserted
where the tier produces it.
"""

import pytest

from repro.nn.workloads import small_cnn_spec
from repro.sim import DEFAULT_ENVELOPE, SimConfig, available_backends, simulate

STRATEGIES = ("heuristic", "greedy")


@pytest.fixture(scope="module")
def reference():
    return {
        strategy: simulate(small_cnn_spec(), strategy=strategy)
        for strategy in STRATEGIES
    }


@pytest.mark.parametrize("strategy", STRATEGIES)
@pytest.mark.parametrize("backend", sorted(available_backends()))
class TestParityMatrix:
    def test_tier_agrees_with_streaming(self, backend, strategy, reference):
        report = simulate(small_cnn_spec(), backend=backend, strategy=strategy)
        assert report.backend == backend
        assert report.strategy == strategy
        ref = reference[strategy]
        # Identical plan: the tiers are differenced on the same mapping.
        assert [r.segment.total_nodes for r in report.runs] == [
            r.segment.total_nodes for r in ref.runs
        ]
        lo, hi = DEFAULT_ENVELOPE.get(backend, (1.0, 1.0))
        ratio = report.total_cycles / ref.total_cycles
        assert lo <= ratio <= hi, f"{backend}/{strategy}: ratio {ratio:.4f}"

    def test_charges_are_positive_and_complete(self, backend, strategy):
        report = simulate(small_cnn_spec(), backend=backend, strategy=strategy)
        assert report.total_cycles > 0
        assert report.energy.total > 0
        for run in report.runs:
            assert run.compute_cycles > 0
            assert run.steady_interval > 0


class TestTierEvidence:
    def test_event_tier_reports_event_counts(self):
        report = simulate(small_cnn_spec(), backend="event")
        assert all(run.events_processed > 0 for run in report.runs)

    def test_cycle_tier_verifies_numerics(self):
        report = simulate(small_cnn_spec(), backend="cycle")
        for run in report.runs:
            assert run.numerics_verified is True
            assert run.functional_macs > 0
            assert run.checksum is not None

    def test_cycle_tier_checksum_is_seed_stable(self):
        a = simulate(small_cnn_spec(), backend="cycle")
        b = simulate(small_cnn_spec(), backend="cycle")
        assert [r.checksum for r in a.runs] == [r.checksum for r in b.runs]
        c = simulate(
            small_cnn_spec(), backend="cycle", config=SimConfig(seed=1)
        )
        assert [r.checksum for r in c.runs] != [r.checksum for r in a.runs]

    def test_analytic_matches_streaming_on_single_layer_segments(self):
        # With one layer per segment there is no pipelining for the
        # closed form to miss — the two tiers must coincide exactly.
        analytic = simulate(
            small_cnn_spec(), backend="analytic", strategy="single-layer"
        )
        streaming = simulate(
            small_cnn_spec(), backend="streaming", strategy="single-layer"
        )
        assert analytic.total_cycles == streaming.total_cycles


class TestBatchSemantics:
    @pytest.mark.parametrize("backend", sorted(available_backends()))
    def test_extra_samples_ride_the_steady_pipeline(self, backend):
        one = simulate(small_cnn_spec(), backend=backend, batch=1)
        four = simulate(small_cnn_spec(), backend=backend, batch=4)
        fills = sum(run.steady_interval for run in one.runs)
        stagings = sum(run.staging_cycles for run in one.runs)
        assert four.total_cycles == pytest.approx(
            one.total_cycles + 3 * (fills + stagings)
        )
