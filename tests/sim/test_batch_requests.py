"""Weight-stationary request batching across the sim backends.

``SimConfig.batch_requests`` streams R whole requests through weights
that stay resident in the CMems, so per-request staging (filter load +
segment switching) is paid once per batch.  Two invariants matter:

* **R=1 is byte-identical** to the historical single-request path on
  every backend — batching is purely additive.
* **R>1 amortizes**: latency per request drops below the single-request
  latency, and ``staging_cycles_per_request`` shrinks by exactly 1/R.
"""

import pytest

from repro.errors import ConfigurationError, MappingError
from repro.nn.workloads import small_cnn_spec
from repro.sim import SimConfig, simulate

BACKENDS = ("analytic", "streaming", "event", "cycle")


class TestConfigValidation:
    def test_batch_requests_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            SimConfig(batch_requests=0)

    def test_event_engine_validated(self):
        with pytest.raises(ConfigurationError):
            SimConfig(event_engine="magic")

    def test_simulate_rejects_bad_batch_requests(self):
        with pytest.raises(MappingError):
            simulate(small_cnn_spec(), batch_requests=0)

    def test_with_run_override(self):
        cfg = SimConfig().with_run(batch_requests=4)
        assert cfg.batch_requests == 4
        assert SimConfig(batch_requests=4).with_run(strategy="greedy").batch_requests == 4


class TestSingleRequestIdentity:
    """batch_requests=1 must not perturb any backend's report."""

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_default_equals_explicit_r1(self, backend):
        network = small_cnn_spec()
        base = simulate(network, backend=backend)
        explicit = simulate(network, backend=backend, batch_requests=1)
        assert base.total_cycles == explicit.total_cycles
        assert base.latency_ms == explicit.latency_ms
        assert base.energy.total == explicit.energy.total
        assert base.batch_requests == 1
        assert explicit.batch_requests == 1


class TestAmortization:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_per_request_latency_improves(self, backend):
        network = small_cnn_spec()
        single = simulate(network, backend=backend)
        batched = simulate(network, backend=backend, batch_requests=8)
        assert batched.batch_requests == 8
        # The batch takes longer than one request but much less than 8.
        assert batched.total_cycles > single.total_cycles
        assert batched.latency_per_request_ms < single.latency_ms
        # Staging amortizes exactly 1/R: the absolute staging cycles are
        # a property of the plan, not of how many requests share them.
        assert batched.staging_cycles_per_request == pytest.approx(
            single.staging_cycles_per_request / 8
        )

    def test_throughput_scales_with_requests(self):
        network = small_cnn_spec()
        single = simulate(network, backend="event")
        batched = simulate(network, backend="event", batch_requests=8)
        assert batched.throughput_requests_s > single.throughput_requests_s
        assert batched.throughput_samples_s > single.throughput_samples_s

    def test_report_dict_carries_batching_fields(self):
        report = simulate(
            small_cnn_spec(), backend="streaming", batch_requests=4
        )
        d = report.as_dict()
        assert d["batch_requests"] == 4
        assert d["latency_per_request_ms"] == report.latency_per_request_ms
        assert d["staging_cycles_per_request"] == (
            report.staging_cycles_per_request
        )

    def test_queueing_tiers_simulate_every_request(self):
        """Streaming/event simulate all R requests rather than
        extrapolating, so their batched latency reflects real pipeline
        overlap — it must stay at or below R back-to-back requests."""
        network = small_cnn_spec()
        for backend in ("streaming", "event"):
            single = simulate(network, backend=backend)
            batched = simulate(network, backend=backend, batch_requests=4)
            assert batched.total_cycles <= 4 * single.total_cycles
