"""RunReport/SegmentReport: schema, aliases, derivations, determinism."""

import json

import pytest

from repro.core.simulator import NetworkRunResult, SegmentRun
from repro.errors import MappingError
from repro.nn.workloads import small_cnn_spec
from repro.sim import RunReport, SegmentReport, simulate


@pytest.fixture(scope="module")
def report():
    return simulate(small_cnn_spec())


class TestAliases:
    def test_historical_names_are_the_canonical_classes(self):
        assert NetworkRunResult is RunReport
        assert SegmentRun is SegmentReport

    def test_segments_aliases_runs(self, report):
        assert report.segments is report.runs

    def test_every_run_is_a_segment_report(self, report):
        assert report.runs
        assert all(isinstance(run, SegmentReport) for run in report.runs)


class TestDerivations:
    def test_segment_cycles_sum_the_three_charges(self, report):
        for run in report.runs:
            assert run.cycles == (
                run.compute_cycles + run.filter_load_cycles + run.staging_cycles
            )

    def test_latency_follows_total_cycles(self, report):
        expected = report.total_cycles * report.constants.cycle_seconds * 1e3
        assert report.latency_ms == expected

    def test_throughput_is_batch_over_latency(self, report):
        assert report.throughput_samples_s == pytest.approx(
            report.batch * 1000.0 / report.latency_ms
        )

    def test_power_is_energy_over_time(self, report):
        seconds = report.total_cycles * report.constants.cycle_seconds
        assert report.average_power_w == pytest.approx(
            report.energy.total / seconds
        )

    def test_layer_reports_cover_the_segment(self, report):
        for run in report.runs:
            indices = [layer.index for layer in run.layers]
            assert indices == [spec.index for spec in run.segment.layers]
            for layer in run.layers:
                assert run.layer_report(layer.index) is layer

    def test_missing_layer_raises(self, report):
        with pytest.raises(MappingError):
            report.runs[0].layer_report(10**6)
        with pytest.raises(MappingError):
            report.segment_latency_ms(10**6)


class TestAsDict:
    def test_summary_names_the_backend(self, report):
        payload = report.as_dict()
        assert payload["backend"] == "streaming"
        assert payload["total_cycles"] == report.total_cycles
        assert len(payload["segments"]) == len(report.runs)

    def test_serialization_is_byte_stable(self, report):
        again = simulate(small_cnn_spec())
        dump = lambda r: json.dumps(r.as_dict(), sort_keys=True)  # noqa: E731
        assert dump(report) == dump(again)

    def test_tier_evidence_only_on_tiers_that_produce_it(self, report):
        # Streaming segments carry no cycle-tier numerics fields.
        for seg in report.as_dict()["segments"]:
            assert "functional_macs" not in seg
            assert "numerics_verified" not in seg
        cycle = simulate(small_cnn_spec(), backend="cycle")
        for seg in cycle.as_dict()["segments"]:
            assert seg["numerics_verified"] is True
            assert seg["functional_macs"] > 0
