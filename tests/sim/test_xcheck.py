"""Cross-tier differential harness: envelopes, evidence, failure modes."""

import json

import pytest

from repro.errors import XCheckError
from repro.nn.workloads import small_cnn_spec
from repro.sim import DEFAULT_ENVELOPE, cross_check


@pytest.fixture(scope="module")
def report():
    return cross_check(small_cnn_spec())


class TestAgreement:
    def test_all_tiers_inside_envelope(self, report):
        assert report.ok
        assert not report.violations
        report.raise_if_failed()  # must be a no-op

    def test_reference_leads_and_ratios_are_relative_to_it(self, report):
        first = report.checks[0]
        assert first.backend == report.reference == "streaming"
        assert first.ratio == 1.0
        others = {check.backend for check in report.checks[1:]}
        assert others == {"analytic", "event", "cycle"}
        for check in report.checks[1:]:
            assert check.total_cycles == pytest.approx(
                check.ratio * first.total_cycles
            )

    def test_tier_evidence_lands_in_notes(self, report):
        by_name = {check.backend: check for check in report.checks}
        assert any("MACs" in note for note in by_name["cycle"].notes)
        assert any("events" in note for note in by_name["event"].notes)

    def test_envelopes_are_the_documented_defaults(self, report):
        for check in report.checks[1:]:
            assert (check.lo, check.hi) == DEFAULT_ENVELOPE[check.backend]


class TestSelection:
    def test_backend_subset(self):
        report = cross_check(small_cnn_spec(), backends=["streaming", "analytic"])
        assert [check.backend for check in report.checks] == [
            "streaming", "analytic",
        ]

    def test_reference_inserted_when_omitted(self):
        report = cross_check(small_cnn_spec(), backends=["analytic"])
        assert report.checks[0].backend == "streaming"

    def test_strategy_is_recorded(self):
        report = cross_check(small_cnn_spec(), strategy="greedy")
        assert report.strategy == "greedy"
        assert report.ok


class TestViolations:
    def test_tight_envelope_fails_and_names_the_tier(self):
        # The analytic tier is a strict upper bound on pipelined
        # multi-layer segments, so a 0.1% envelope cannot hold.
        report = cross_check(
            small_cnn_spec(),
            backends=["streaming", "analytic"],
            envelope={"analytic": (0.999, 1.001)},
        )
        assert not report.ok
        assert [check.backend for check in report.violations] == ["analytic"]
        with pytest.raises(XCheckError, match="analytic"):
            report.raise_if_failed()


class TestSerialization:
    def test_as_dict_is_byte_stable(self, report):
        again = cross_check(small_cnn_spec())
        dump = lambda r: json.dumps(r.as_dict(), sort_keys=True)  # noqa: E731
        assert dump(report) == dump(again)

    def test_as_dict_carries_the_verdict(self, report):
        payload = report.as_dict()
        assert payload["ok"] is True
        assert payload["reference"] == "streaming"
        assert {c["backend"] for c in payload["checks"]} == {
            "streaming", "analytic", "event", "cycle",
        }
        for check in payload["checks"]:
            assert check["envelope"][0] <= check["ratio"] <= check["envelope"][1]
