"""Differential pins: the backend layer changed nothing on the default path.

Every literal in this file was recorded from the pre-backend simulator
(``ChipSimulator`` calling the streaming tier directly) and is asserted
with exact ``==`` — not approx — because the refactor's contract is
byte-identical results, and the backend loop replicates the historical
float evaluation order to keep it.  If one of these moves, the default
path changed, which is a regression regardless of which number is
"better".
"""

import pytest

from repro.core.multi_dnn import MultiDNNScheduler
from repro.core.simulator import ChipSimulator
from repro.nn.workloads import (
    ConvLayerSpec,
    NetworkSpec,
    resnet18_spec,
    small_cnn_spec,
)
from repro.serving import (
    ElasticPolicy,
    PoissonArrivals,
    ServiceModel,
    ServingSimulator,
    StaticPartitionPolicy,
    TenantSpec,
)
from repro.sim import simulate

# (network factory, strategy) -> total cycles recorded pre-refactor.
CYCLE_PINS = {
    ("resnet18", "heuristic"): 5004113.056004865,
    ("resnet18", "single-layer"): 18799192.1944664,
    ("resnet18", "greedy"): 12099837.79926746,
    ("small_cnn", "heuristic"): 76944.4,
    ("small_cnn", "single-layer"): 122470.40000000001,
    ("small_cnn", "greedy"): 155874.4,
}

NETWORKS = {"resnet18": resnet18_spec, "small_cnn": small_cnn_spec}


class TestDefaultPathCycles:
    @pytest.mark.parametrize("network,strategy", sorted(CYCLE_PINS))
    def test_total_cycles_byte_identical(self, network, strategy):
        result = ChipSimulator().run(NETWORKS[network](), strategy)
        assert result.total_cycles == CYCLE_PINS[(network, strategy)]

    def test_simulate_front_door_matches_chip_simulator(self):
        for (network, strategy), pin in sorted(CYCLE_PINS.items()):
            report = simulate(NETWORKS[network](), strategy=strategy)
            assert report.total_cycles == pin

    def test_headline_energy_and_latency(self):
        result = ChipSimulator().run(resnet18_spec(), "heuristic")
        assert result.energy.total == 0.12000990729695662
        assert result.latency_ms == 5.004113056004866

    def test_batch_streaming(self):
        result = ChipSimulator().run(resnet18_spec(), "heuristic", batch=4)
        assert result.total_cycles == 18608956.43940407
        assert result.throughput_samples_s == 214.95025865771197


def _smoke_tenants():
    beta = NetworkSpec(
        name="beta",
        layers=(ConvLayerSpec(1, "beta0", h=14, w=14, c=64, m=32),),
    )
    return [
        TenantSpec("alpha", small_cnn_spec(),
                   PoissonArrivals(150, seed=7), deadline_ms=20.0),
        TenantSpec("beta", beta,
                   PoissonArrivals(100, seed=8), deadline_ms=20.0),
    ]


# policy -> tenant -> (p50_ms, p99_ms, completed), recorded pre-refactor.
SERVING_PINS = {
    "static": {
        "alpha": (0.07694440000000036, 0.07694440000000209, 19),
        "beta": (0.16979520000000137, 0.1697952000000029, 6),
    },
    "elastic": {
        "alpha": (0.07694440000000036, 0.07694440000000209, 19),
        "beta": (0.17503132147247763, 0.6098885840000019, 6),
    },
}


class TestServingLatencyPins:
    @pytest.mark.parametrize("policy_name", sorted(SERVING_PINS))
    def test_smoke_scenario_byte_identical(self, policy_name):
        scheduler = MultiDNNScheduler()
        if policy_name == "static":
            policy = StaticPartitionPolicy(scheduler)
        else:
            policy = ElasticPolicy(
                ServiceModel(scheduler), control_interval_ms=10.0
            )
        result = ServingSimulator(policy).run(_smoke_tenants(), 80.0)
        for tenant, (p50, p99, completed) in SERVING_PINS[policy_name].items():
            report = result.reports[tenant]
            assert report.p50_ms == p50
            assert report.p99_ms == p99
            assert report.completed == completed
