"""Histogram.percentile edge-case audit (property-based).

The bucket-interpolated estimator backs every serving SLO figure and the
per-window p99 panels, so its invariants are pinned here: estimates never
leave the observed value range, the extremes are exact, and the estimate
is monotone in ``q``.
"""

import pytest

from repro.errors import TelemetryError
from repro.telemetry.registry import DEFAULT_BUCKETS, Histogram

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

VALUES = st.lists(
    st.floats(min_value=0.0, max_value=2e6, allow_nan=False),
    min_size=1,
    max_size=60,
)
QS = st.floats(min_value=0.0, max_value=100.0, allow_nan=False)


def build(values, bounds=DEFAULT_BUCKETS):
    h = Histogram(bounds=bounds)
    for v in values:
        h.observe(v)
    return h


class TestEdgeCases:
    def test_empty_histogram_reads_zero(self):
        assert Histogram().percentile(50.0) == 0.0

    def test_rejects_out_of_range_q(self):
        h = build([1.0])
        for q in (-0.1, 100.1):
            with pytest.raises(TelemetryError):
                h.percentile(q)

    def test_single_value_is_every_percentile(self):
        h = build([3.7])
        for q in (0.0, 1.0, 50.0, 99.0, 100.0):
            assert h.percentile(q) == 3.7

    def test_all_values_in_the_overflow_bucket(self):
        top = DEFAULT_BUCKETS[-1]
        h = build([top * 2, top * 3])
        assert top * 2 <= h.percentile(50.0) <= top * 3
        assert h.percentile(100.0) == top * 3

    def test_identical_values_collapse_the_bucket(self):
        h = build([8.0] * 10)
        assert h.percentile(50.0) == 8.0

    def test_value_on_a_bucket_bound_lands_right(self):
        # bisect_right: bucket i holds [bounds[i-1], bounds[i]), so a
        # value exactly on a bound starts the next bucket.
        h = Histogram(bounds=(1.0, 2.0))
        h.observe(1.0)
        assert h.bucket_counts == [0, 1, 0]


class TestProperties:
    @settings(deadline=None, max_examples=200)
    @given(VALUES, QS)
    def test_estimate_stays_in_the_observed_range(self, values, q):
        h = build(values)
        p = h.percentile(q)
        assert min(values) <= p <= max(values)

    @settings(deadline=None, max_examples=200)
    @given(VALUES)
    def test_extremes_are_exact(self, values):
        h = build(values)
        assert h.percentile(0.0) == min(values)
        assert h.percentile(100.0) == max(values)

    @settings(deadline=None, max_examples=200)
    @given(VALUES, QS, QS)
    def test_monotone_in_q(self, values, q1, q2):
        h = build(values)
        lo, hi = sorted((q1, q2))
        assert h.percentile(lo) <= h.percentile(hi)

    @settings(deadline=None, max_examples=100)
    @given(VALUES)
    def test_median_brackets_the_true_median_bucket(self, values):
        # The estimate must land in (or on the edge of) the bucket that
        # contains the true rank — interpolation never jumps a bucket.
        h = build(values)
        ordered = sorted(values)
        true_median = ordered[(len(ordered) - 1) // 2]
        p = h.percentile(50.0)
        import bisect

        true_bucket = bisect.bisect_right(DEFAULT_BUCKETS, true_median)
        est_bucket = bisect.bisect_right(DEFAULT_BUCKETS, p)
        assert abs(est_bucket - true_bucket) <= 1
