"""Differential + determinism tests for the instrumented simulators.

Pins the ISSUE-3 acceptance criteria:

* a bit-true ResNet18-segment node-group run with telemetry enabled
  emits a schema-valid trace with per-core tracks and per-layer spans,
  and registry counters **bit-identical** to the legacy ad-hoc stats
  (``PipelineStats``/``NoCStats``/``DRAMStats``/``GroupRunStats``);
* two identical runs produce byte-identical metrics and trace JSON
  (sim-time stamps only — no wall clock anywhere);
* with the default :class:`NullSink` nothing is recorded and the
  simulated numbers are unchanged.
"""

import json

import numpy as np
import pytest

from repro import telemetry
from repro.core.functional import FunctionalNodeGroup, bit_true_min_nodes
from repro.dram.controller import DRAMController
from repro.mapping.capacity import CapacityModel
from repro.nn.workloads import ConvLayerSpec
from repro.noc.mesh import MeshNoC
from repro.noc.packet import Packet, PacketKind
from repro.riscv.core import Core
from repro.riscv.memory import DRAM_BASE
from repro.telemetry.hooks import publish_noc
from repro.telemetry.trace import validate_chrome_trace
from repro.utils.events import EventQueue


SEGMENT_SPEC = ConvLayerSpec(
    index=1, name="conv1_x[6x6]", h=6, w=6, c=64, m=64,
    r=3, s=3, stride=1, padding=1, n_bits=8,
)


def _segment_inputs(spec=SEGMENT_SPEC, seed=3):
    rng = np.random.default_rng(seed)
    weights = rng.integers(-128, 128, (spec.m, spec.c, spec.r, spec.s))
    bias = rng.integers(-1000, 1000, spec.m)
    ifmap = rng.integers(-128, 128, (spec.c, spec.h, spec.w))
    return weights, bias, ifmap


def _run_segment(sink):
    weights, bias, ifmap = _segment_inputs()
    with telemetry.use(sink):
        group = FunctionalNodeGroup(
            SEGMENT_SPEC, weights, bias,
            num_computing=bit_true_min_nodes(SEGMENT_SPEC, CapacityModel()),
            bit_true=True,
        )
        acc = group.run(ifmap)
    return group, acc


@pytest.mark.slow
class TestResNet18SegmentAcceptance:
    def test_registry_matches_legacy_group_stats_bit_identically(self):
        sink = telemetry.Telemetry()
        group, acc = _run_segment(sink)
        counters = {p: c.value for p, c in sink.registry.counters.items()}
        prefix = f"group/{SEGMENT_SPEC.name}"
        assert counters[f"{prefix}/vectors_streamed"] == group.stats.vectors_streamed
        assert counters[f"{prefix}/row_transfers"] == group.stats.row_transfers
        assert counters[f"{prefix}/macs"] == group.stats.macs
        assert counters[f"{prefix}/cmem_energy_pj"] == group.stats.cmem_energy_pj
        # Per-core CMem counters agree with each node's device tally.
        for k, node in enumerate(group._nodes):
            if node is None:
                continue
            cmem = node[2]
            assert counters[f"core/{k}/cmem/macs"] == cmem.stats.macs
            assert counters[f"core/{k}/cmem/busy_cycles"] == cmem.stats.busy_cycles

    def test_trace_has_per_core_tracks_and_layer_span(self):
        sink = telemetry.Telemetry()
        group, _ = _run_segment(sink)
        chrome = sink.trace.to_chrome()
        validate_chrome_trace(chrome)
        thread_names = {
            e["args"]["name"]
            for e in chrome["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        for k, node in enumerate(group._nodes):
            if node is not None:
                assert f"core/{k}" in thread_names
        assert f"layer/{SEGMENT_SPEC.name}" in thread_names
        layer_spans = [
            e for e in chrome["traceEvents"]
            if e["ph"] == "X" and e["name"] == SEGMENT_SPEC.name
        ]
        assert layer_spans, "expected per-layer spans in the trace"

    def test_two_identical_runs_are_byte_identical(self):
        a, b = telemetry.Telemetry(), telemetry.Telemetry()
        _run_segment(a)
        _run_segment(b)
        assert a.registry.to_json() == b.registry.to_json()
        assert a.trace.to_json() == b.trace.to_json()

    def test_null_sink_records_nothing_and_numbers_match(self):
        assert telemetry.current() is telemetry.NULL_SINK
        sink = telemetry.Telemetry()
        group_enabled, acc_enabled = _run_segment(sink)
        group_null, acc_null = _run_segment(telemetry.NULL_SINK)
        assert len(sink.trace) > 0
        np.testing.assert_array_equal(acc_enabled, acc_null)
        assert group_enabled.stats == group_null.stats


class TestPipelineInstrumentation:
    def _run_core(self, sink):
        with telemetry.use(sink):
            core = Core(node_id=4)
            a = np.arange(-50, 50)
            b = np.arange(0, 100)
            core.cmem.store_vector_transposed(1, 0, a, 8, signed=True)
            core.cmem.store_vector_transposed(1, 8, b, 8, signed=True)
            stats = core.run("mac.c a0, 1, 0, 8, 8\nmac.c a1, 1, 0, 8, 8\nhalt")
        return stats

    def test_registry_matches_pipeline_stats_bit_identically(self):
        sink = telemetry.Telemetry()
        stats = self._run_core(sink)
        counters = {p: c.value for p, c in sink.registry.counters.items()}
        for name in (
            "cycles", "instructions", "raw_stall_cycles", "waw_stall_cycles",
            "structural_stall_cycles", "wb_stall_cycles", "branch_flush_cycles",
            "cmem_instructions", "cmem_busy_cycles",
        ):
            assert counters[f"core/4/pipeline/{name}"] == getattr(stats, name)
        for category, cycles in stats.category_cycles.items():
            assert counters[f"core/4/pipeline/category/{category}"] == cycles

    def test_kernel_span_and_cmem_op_spans(self):
        sink = telemetry.Telemetry()
        stats = self._run_core(sink)
        spans = [e for e in sink.trace.events if e.ph == "X"]
        kernel = [e for e in spans if e.name == "kernel" and e.track == "core/4"]
        assert len(kernel) == 1
        assert kernel[0].dur == stats.cycles
        assert any(e.track == "core/4/cmem" and e.name == "mac.c" for e in spans)

    def test_reruns_stack_sequentially_on_the_core_track(self):
        sink = telemetry.Telemetry()
        self._run_core(sink)
        self._run_core(sink)
        chrome = sink.trace.to_chrome()
        validate_chrome_trace(chrome)
        kernels = [e for e in sink.trace.events if e.name == "kernel"]
        assert len(kernels) == 2
        assert kernels[1].ts >= kernels[0].ts + kernels[0].dur


class TestNoCInstrumentation:
    def test_registry_matches_noc_stats_bit_identically(self):
        sink = telemetry.Telemetry()
        with telemetry.use(sink):
            noc = MeshNoC()
            for i in range(5):
                noc.send(
                    Packet(src=(0, 0), dst=(2, 1), kind=PacketKind.ROW_TRANSFER),
                    inject_time=i,
                )
            publish_noc(sink, "noc", noc)
        counters = {p: c.value for p, c in sink.registry.counters.items()}
        assert counters["noc/packets"] == noc.stats.packets
        assert counters["noc/flit_hops"] == noc.stats.flit_hops
        assert counters["noc/total_latency"] == noc.stats.total_latency
        assert sink.registry.gauges["noc/avg_latency"].value == noc.stats.avg_latency
        validate_chrome_trace(sink.trace.to_chrome())

    def test_per_link_spans_emitted(self):
        sink = telemetry.Telemetry()
        with telemetry.use(sink):
            noc = MeshNoC()
            noc.send(
                Packet(src=(0, 0), dst=(1, 0), kind=PacketKind.REMOTE_STORE),
                inject_time=0,
            )
        spans = [e for e in sink.trace.events if e.ph == "X"]
        assert [e.track for e in spans] == ["noc/0,0->1,0"]
        assert spans[0].name == "remote_store"


class TestDRAMInstrumentation:
    def test_registry_matches_dram_stats_bit_identically(self):
        sink = telemetry.Telemetry()
        with telemetry.use(sink):
            dram = DRAMController()
            t = 0
            for i in range(8):
                t += dram.access_latency(
                    DRAM_BASE + 64 * i, is_write=i % 2 == 0, time=t
                )
            dram.publish_stats()
        counters = {p: c.value for p, c in sink.registry.counters.items()}
        assert counters["dram/reads"] == dram.stats.reads
        assert counters["dram/writes"] == dram.stats.writes
        assert counters["dram/row_hits"] == dram.stats.row_hits
        assert counters["dram/row_misses"] == dram.stats.row_misses
        assert counters["dram/energy_pj"] == dram.stats.energy_pj
        validate_chrome_trace(sink.trace.to_chrome())

    def test_per_bank_spans_are_monotone(self):
        sink = telemetry.Telemetry()
        with telemetry.use(sink):
            dram = DRAMController()
            for i in range(6):
                dram.access_latency(DRAM_BASE + 2048 * i, is_write=False, time=0)
        validate_chrome_trace(sink.trace.to_chrome())
        assert any(e.track.startswith("dram/ch") for e in sink.trace.events)


class TestEventTagTelemetry:
    def test_tagged_events_reach_the_recorder(self):
        sink = telemetry.Telemetry()
        with telemetry.use(sink):
            q = EventQueue()
            q.schedule(1, lambda: None, tag="inject")
            q.schedule(2, lambda: None)  # untagged: counted nowhere
            q.schedule(3, lambda: None, tag="inject")
            q.run()
        assert sink.registry.counters["events/by_tag/inject"].value == 2
        instants = [e for e in sink.trace.events if e.ph == "i"]
        assert [e.ts for e in instants] == [1, 3]
        assert all(e.track == "events" for e in instants)

    def test_explicit_sink_overrides_ambient(self):
        explicit = telemetry.Telemetry()
        q = EventQueue(telemetry=explicit)
        q.schedule(1, lambda: None, tag="t")
        q.run()
        assert explicit.registry.counters["events/by_tag/t"].value == 1


class TestAmbientSink:
    def test_default_is_null_sink(self):
        assert telemetry.current() is telemetry.NULL_SINK
        assert not telemetry.current().enabled

    def test_use_scopes_and_restores(self):
        sink = telemetry.Telemetry()
        with telemetry.use(sink):
            assert telemetry.current() is sink
            inner = telemetry.Telemetry()
            with telemetry.use(inner):
                assert telemetry.current() is inner
            assert telemetry.current() is sink
        assert telemetry.current() is telemetry.NULL_SINK

    def test_metrics_json_round_trips(self):
        sink = telemetry.Telemetry()
        sink.registry.counter("a/b").add(1)
        loaded = json.loads(sink.registry.to_json())
        assert loaded["counters"] == {"a/b": 1}
