"""The trace recorder and the Chrome trace-event schema validator."""

import json

import pytest

from repro.errors import TelemetryError
from repro.telemetry import TraceRecorder, validate_chrome_trace


class TestRecording:
    def test_complete_span(self):
        tr = TraceRecorder()
        ev = tr.complete("core/0", "kernel", 0, 100, args={"ipc": 0.5})
        assert (ev.ph, ev.ts, ev.dur) == ("X", 0, 100)
        assert tr.cursor("core/0") == 100

    def test_instant_advances_cursor(self):
        tr = TraceRecorder()
        tr.instant("events", "tick", 7)
        assert tr.cursor("events") == 7

    def test_negative_duration_rejected(self):
        with pytest.raises(TelemetryError):
            TraceRecorder().complete("t", "x", 0, -1)

    def test_late_event_clamped_to_cursor(self):
        """A zero-based re-run on the same track stacks sequentially."""
        tr = TraceRecorder()
        tr.complete("core/0", "run1", 0, 50)
        ev = tr.complete("core/0", "run2", 0, 30)
        assert ev.ts == 50
        assert tr.cursor("core/0") == 80

    def test_tracks_map_to_process_and_thread(self):
        tr = TraceRecorder()
        tr.instant("core/0", "a", 0)
        tr.instant("core/1", "b", 0)
        tr.instant("noc/0,0->1,0", "c", 0)
        chrome = tr.to_chrome()
        names = {
            (e["pid"], e["tid"]): e["args"]["name"]
            for e in chrome["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        pids = {e["args"]["name"]: e["pid"] for e in chrome["traceEvents"]
                if e["ph"] == "M" and e["name"] == "process_name"}
        assert pids.keys() == {"core", "noc"}
        # Both core tracks live in the "core" process, on distinct threads.
        core_tracks = [k for k, v in names.items() if v.startswith("core/")]
        assert {pid for pid, _ in core_tracks} == {pids["core"]}
        assert len({tid for _, tid in core_tracks}) == 2


class TestExportAndValidation:
    def _trace(self):
        tr = TraceRecorder()
        tr.complete("core/0", "kernel", 0, 100)
        tr.complete("core/0", "kernel", 100, 50)
        tr.instant("events", "tick", 3)
        tr.counter_sample("noc/load", "packets", 10, {"n": 4})
        return tr

    def test_roundtrip_validates(self):
        chrome = json.loads(self._trace().to_json())
        assert validate_chrome_trace(chrome) == len(chrome["traceEvents"])

    def test_required_keys_present_on_every_event(self):
        for ev in self._trace().to_chrome()["traceEvents"]:
            for key in ("ph", "ts", "pid", "tid", "name"):
                assert key in ev

    def test_missing_key_rejected(self):
        chrome = self._trace().to_chrome()
        del chrome["traceEvents"][-1]["name"]
        with pytest.raises(TelemetryError, match="missing required key"):
            validate_chrome_trace(chrome)

    def test_non_monotone_track_rejected(self):
        chrome = {
            "traceEvents": [
                {"ph": "i", "ts": 10, "pid": 1, "tid": 1, "name": "a", "s": "t"},
                {"ph": "i", "ts": 5, "pid": 1, "tid": 1, "name": "b", "s": "t"},
            ]
        }
        with pytest.raises(TelemetryError, match="monotone"):
            validate_chrome_trace(chrome)

    def test_interleaved_tracks_are_independent(self):
        chrome = {
            "traceEvents": [
                {"ph": "i", "ts": 10, "pid": 1, "tid": 1, "name": "a", "s": "t"},
                {"ph": "i", "ts": 5, "pid": 1, "tid": 2, "name": "b", "s": "t"},
                {"ph": "i", "ts": 11, "pid": 1, "tid": 1, "name": "c", "s": "t"},
            ]
        }
        assert validate_chrome_trace(chrome) == 3

    def test_unknown_phase_rejected(self):
        chrome = {"traceEvents": [
            {"ph": "?", "ts": 0, "pid": 1, "tid": 1, "name": "x"}]}
        with pytest.raises(TelemetryError, match="unknown phase"):
            validate_chrome_trace(chrome)

    def test_span_without_dur_rejected(self):
        chrome = {"traceEvents": [
            {"ph": "X", "ts": 0, "pid": 1, "tid": 1, "name": "x"}]}
        with pytest.raises(TelemetryError, match="dur"):
            validate_chrome_trace(chrome)

    def test_non_object_trace_rejected(self):
        with pytest.raises(TelemetryError):
            validate_chrome_trace([1, 2, 3])
        with pytest.raises(TelemetryError):
            validate_chrome_trace({"events": []})
