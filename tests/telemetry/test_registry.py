"""The hierarchical metrics registry: metric kinds, snapshot/diff/merge."""

import json

import pytest

from repro.errors import TelemetryError
from repro.telemetry import MetricsRegistry


class TestMetricKinds:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        reg.counter("core/0/pipeline/raw_stalls").add(3)
        reg.counter("core/0/pipeline/raw_stalls").add(2)
        assert reg.counters["core/0/pipeline/raw_stalls"].value == 5

    def test_counter_rejects_negative(self):
        with pytest.raises(TelemetryError):
            MetricsRegistry().counter("x").add(-1)

    def test_gauge_set_and_high_water(self):
        reg = MetricsRegistry()
        g = reg.gauge("noc/max_queue_depth")
        g.set(4)
        g.max(2)
        assert g.value == 4
        g.max(9)
        assert g.value == 9

    def test_histogram_buckets_and_moments(self):
        reg = MetricsRegistry()
        h = reg.histogram("dram/latency", bounds=[10, 100])
        for v in (5, 50, 500):
            h.observe(v)
        assert h.bucket_counts == [1, 1, 1]
        assert (h.count, h.total, h.min, h.max) == (3, 555.0, 5, 500)
        assert h.mean == 185.0

    def test_timer_records_durations(self):
        reg = MetricsRegistry()
        t = reg.timer("core/0/kernel")
        t.record(100)
        t.record(50)
        assert (t.count, t.total, t.min, t.max) == (2, 150.0, 50, 100)
        assert t.mean == 75.0

    def test_timer_rejects_negative_duration(self):
        with pytest.raises(TelemetryError):
            MetricsRegistry().timer("t").record(-1)

    def test_same_path_returns_same_metric(self):
        reg = MetricsRegistry()
        assert reg.counter("a/b") is reg.counter("a/b")

    @pytest.mark.parametrize("bad", ["", "/lead", "trail/", "a//b"])
    def test_malformed_paths_rejected(self, bad):
        with pytest.raises(TelemetryError):
            MetricsRegistry().counter(bad)


class TestSnapshotDiff:
    def test_snapshot_is_flat_path_to_value(self):
        reg = MetricsRegistry()
        reg.counter("core/0/cycles").add(10)
        reg.gauge("core/0/ipc").set(0.5)
        assert reg.snapshot() == {"core/0/cycles": 10, "core/0/ipc": 0.5}

    def test_diff_reports_only_changes(self):
        reg = MetricsRegistry()
        reg.counter("a").add(1)
        reg.counter("b").add(1)
        before = reg.snapshot()
        reg.counter("a").add(4)
        reg.counter("c").add(2)
        assert MetricsRegistry.diff(before, reg.snapshot()) == {"a": 4, "c": 2}


class TestMerge:
    def test_counters_add_gauges_keep_max(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("packets").add(3)
        b.counter("packets").add(4)
        a.gauge("depth").set(2)
        b.gauge("depth").set(7)
        a.merge(b)
        assert a.counters["packets"].value == 7
        assert a.gauges["depth"].value == 7

    def test_histograms_and_timers_fold(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("lat", bounds=[10]).observe(5)
        b.histogram("lat", bounds=[10]).observe(50)
        a.timer("t").record(1)
        b.timer("t").record(9)
        a.merge(b)
        h = a.histograms["lat"]
        assert h.bucket_counts == [1, 1]
        assert (h.min, h.max) == (5, 50)
        t = a.timers["t"]
        assert (t.count, t.min, t.max) == (2, 1, 9)

    def test_mismatched_histogram_bounds_rejected(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("h", bounds=[1])
        b.histogram("h", bounds=[2])
        with pytest.raises(TelemetryError):
            a.merge(b)

    def test_merged_of_per_core_registries(self):
        cores = []
        for i in range(3):
            r = MetricsRegistry()
            r.counter("chip/instructions").add(10 * (i + 1))
            cores.append(r)
        total = MetricsRegistry.merged(cores)
        assert total.counters["chip/instructions"].value == 60


class TestExport:
    def test_as_tree_nests_by_segment(self):
        reg = MetricsRegistry()
        reg.counter("core/0/cycles").add(5)
        reg.counter("core/1/cycles").add(7)
        tree = reg.as_tree()
        assert tree["core"]["0"]["cycles"] == 5
        assert tree["core"]["1"]["cycles"] == 7

    def test_json_export_is_deterministic_and_loadable(self):
        def build():
            reg = MetricsRegistry()
            reg.counter("b").add(2)
            reg.counter("a").add(1)
            reg.histogram("h").observe(3)
            reg.timer("t").record(4)
            return reg

        j1, j2 = build().to_json(), build().to_json()
        assert j1 == j2
        loaded = json.loads(j1)
        assert set(loaded) == {"counters", "gauges", "histograms", "timers"}
        assert loaded["counters"] == {"a": 1, "b": 2}
