"""The hierarchical metrics registry: metric kinds, snapshot/diff/merge."""

import json

import pytest

from repro.errors import TelemetryError
from repro.telemetry import MetricsRegistry


class TestMetricKinds:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        reg.counter("core/0/pipeline/raw_stalls").add(3)
        reg.counter("core/0/pipeline/raw_stalls").add(2)
        assert reg.counters["core/0/pipeline/raw_stalls"].value == 5

    def test_counter_rejects_negative(self):
        with pytest.raises(TelemetryError):
            MetricsRegistry().counter("x").add(-1)

    def test_gauge_set_and_high_water(self):
        reg = MetricsRegistry()
        g = reg.gauge("noc/max_queue_depth")
        g.set(4)
        g.max(2)
        assert g.value == 4
        g.max(9)
        assert g.value == 9

    def test_histogram_buckets_and_moments(self):
        reg = MetricsRegistry()
        h = reg.histogram("dram/latency", bounds=[10, 100])
        for v in (5, 50, 500):
            h.observe(v)
        assert h.bucket_counts == [1, 1, 1]
        assert (h.count, h.total, h.min, h.max) == (3, 555.0, 5, 500)
        assert h.mean == 185.0

    def test_timer_records_durations(self):
        reg = MetricsRegistry()
        t = reg.timer("core/0/kernel")
        t.record(100)
        t.record(50)
        assert (t.count, t.total, t.min, t.max) == (2, 150.0, 50, 100)
        assert t.mean == 75.0

    def test_timer_rejects_negative_duration(self):
        with pytest.raises(TelemetryError):
            MetricsRegistry().timer("t").record(-1)

    def test_same_path_returns_same_metric(self):
        reg = MetricsRegistry()
        assert reg.counter("a/b") is reg.counter("a/b")

    @pytest.mark.parametrize("bad", ["", "/lead", "trail/", "a//b"])
    def test_malformed_paths_rejected(self, bad):
        with pytest.raises(TelemetryError):
            MetricsRegistry().counter(bad)


class TestPercentile:
    """Bucket-interpolated percentiles pinned on known distributions."""

    def uniform_0_to_99(self):
        # Buckets are left-closed ([lo, hi)), so 0..99 fills each decade
        # bucket with exactly ten observations.
        h = MetricsRegistry().histogram(
            "lat", bounds=[10, 20, 30, 40, 50, 60, 70, 80, 90, 100]
        )
        for v in range(100):
            h.observe(v)
        return h

    def test_uniform_pins_p50_p95_p99(self):
        h = self.uniform_0_to_99()
        # p50 interpolates to the exact bucket edge.  p95/p99 land in the
        # last occupied bucket, whose upper edge clamps to the observed
        # max (99, not the bound 100): 90 + 9 * 0.5 and 90 + 9 * 0.9.
        assert h.percentile(50) == pytest.approx(50.0)
        assert h.percentile(95) == pytest.approx(94.5)
        assert h.percentile(99) == pytest.approx(98.1)

    def test_extremes_clamp_to_observed_range(self):
        h = self.uniform_0_to_99()
        assert h.percentile(0) == 0.0    # observed min
        assert h.percentile(100) == 99.0  # observed max, not bucket edge 100

    def test_single_value_every_percentile(self):
        h = MetricsRegistry().histogram("lat", bounds=[8, 64])
        h.observe(42.0)
        for q in (0, 50, 99, 100):
            assert h.percentile(q) == 42.0

    def test_two_point_distribution(self):
        h = MetricsRegistry().histogram("lat", bounds=[10, 20])
        for _ in range(90):
            h.observe(5.0)
        for _ in range(10):
            h.observe(15.0)
        # p50 sits inside the first bucket: min=5 to bound 10, rank 50 of 90.
        assert h.percentile(50) == pytest.approx(5.0 + (10 - 5) * (50 / 90))
        # p99 sits in the second bucket: 10..max=15, rank 99 -> 9 of 10 into it.
        assert h.percentile(99) == pytest.approx(10 + (15 - 10) * 0.9)

    def test_overflow_bucket_uses_observed_max(self):
        h = MetricsRegistry().histogram("lat", bounds=[10])
        for v in (100.0, 200.0, 300.0, 400.0):
            h.observe(v)
        assert h.percentile(100) == 400.0
        assert h.percentile(50) == pytest.approx(100 + (400 - 100) * 0.5)

    def test_empty_histogram_is_zero(self):
        h = MetricsRegistry().histogram("lat")
        assert h.percentile(99) == 0.0

    def test_out_of_range_rejected(self):
        h = self.uniform_0_to_99()
        for bad in (-1, 101):
            with pytest.raises(TelemetryError):
                h.percentile(bad)

    def test_percentile_monotone_in_q(self):
        h = MetricsRegistry().histogram("lat", bounds=[1, 2, 4, 8, 16, 32])
        for v in (0.5, 1.5, 1.7, 3.0, 6.0, 7.5, 20.0, 40.0, 41.0):
            h.observe(v)
        estimates = [h.percentile(q) for q in range(0, 101, 5)]
        assert estimates == sorted(estimates)
        assert estimates[0] >= 0.5
        assert estimates[-1] <= 41.0


class TestSnapshotDiff:
    def test_snapshot_is_flat_path_to_value(self):
        reg = MetricsRegistry()
        reg.counter("core/0/cycles").add(10)
        reg.gauge("core/0/ipc").set(0.5)
        assert reg.snapshot() == {"core/0/cycles": 10, "core/0/ipc": 0.5}

    def test_diff_reports_only_changes(self):
        reg = MetricsRegistry()
        reg.counter("a").add(1)
        reg.counter("b").add(1)
        before = reg.snapshot()
        reg.counter("a").add(4)
        reg.counter("c").add(2)
        assert MetricsRegistry.diff(before, reg.snapshot()) == {"a": 4, "c": 2}


class TestMerge:
    def test_counters_add_gauges_keep_max(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("packets").add(3)
        b.counter("packets").add(4)
        a.gauge("depth").set(2)
        b.gauge("depth").set(7)
        a.merge(b)
        assert a.counters["packets"].value == 7
        assert a.gauges["depth"].value == 7

    def test_histograms_and_timers_fold(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("lat", bounds=[10]).observe(5)
        b.histogram("lat", bounds=[10]).observe(50)
        a.timer("t").record(1)
        b.timer("t").record(9)
        a.merge(b)
        h = a.histograms["lat"]
        assert h.bucket_counts == [1, 1]
        assert (h.min, h.max) == (5, 50)
        t = a.timers["t"]
        assert (t.count, t.min, t.max) == (2, 1, 9)

    def test_mismatched_histogram_bounds_rejected(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("h", bounds=[1])
        b.histogram("h", bounds=[2])
        with pytest.raises(TelemetryError):
            a.merge(b)

    def test_merged_of_per_core_registries(self):
        cores = []
        for i in range(3):
            r = MetricsRegistry()
            r.counter("chip/instructions").add(10 * (i + 1))
            cores.append(r)
        total = MetricsRegistry.merged(cores)
        assert total.counters["chip/instructions"].value == 60

    def test_merged_of_nothing_is_an_empty_registry(self):
        """Zero shards is a legal aggregation input (identity element) —
        sharding callers must not have to special-case it."""
        total = MetricsRegistry.merged([])
        assert total.counters == {}
        assert total.gauges == {}
        assert total.histograms == {}
        assert total.timers == {}

    def test_merged_of_empty_is_identity_under_merge(self):
        r = MetricsRegistry()
        r.counter("c").add(5)
        merged = MetricsRegistry.merged([])
        merged.merge(r)
        assert merged.counters["c"].value == 5


class TestExport:
    def test_as_tree_nests_by_segment(self):
        reg = MetricsRegistry()
        reg.counter("core/0/cycles").add(5)
        reg.counter("core/1/cycles").add(7)
        tree = reg.as_tree()
        assert tree["core"]["0"]["cycles"] == 5
        assert tree["core"]["1"]["cycles"] == 7

    def test_json_export_is_deterministic_and_loadable(self):
        def build():
            reg = MetricsRegistry()
            reg.counter("b").add(2)
            reg.counter("a").add(1)
            reg.histogram("h").observe(3)
            reg.timer("t").record(4)
            return reg

        j1, j2 = build().to_json(), build().to_json()
        assert j1 == j2
        loaded = json.loads(j1)
        assert set(loaded) == {
            "counters", "gauges", "histograms", "timers", "series",
        }
        assert loaded["counters"] == {"a": 1, "b": 2}
