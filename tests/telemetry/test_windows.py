"""WindowedSeries: recording shapes, per-window reads, and the
split/merge equivalence the process-parallel runner relies on."""

import pytest

from repro.errors import TelemetryError
from repro.telemetry.registry import MetricsRegistry
from repro.telemetry.windows import WindowedSeries

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402


class TestRecording:
    def test_observe_accumulates_moments_per_window(self):
        s = WindowedSeries(window=10.0)
        s.observe(1.0, 5.0)
        s.observe(2.0, 1.0)
        s.observe(15.0, 7.0)
        assert s.indices() == [0, 1]
        cell = s.cells[0]
        assert (cell.count, cell.total, cell.min, cell.max) == (2, 6.0, 1.0, 5.0)
        assert s.rate(0) == pytest.approx(0.2)
        assert s.rate(7) == 0.0

    def test_set_keeps_the_last_sample_by_time(self):
        s = WindowedSeries(window=10.0)
        s.set(5.0, 3)
        s.set(2.0, 9)  # earlier sample arriving later must not win
        assert s.cells[0].last == 3
        assert s.cells[0].last_t == 5.0

    def test_add_range_splits_across_windows(self):
        s = WindowedSeries(window=10.0)
        s.add_range(5.0, 25.0)
        assert s.cells[0].busy == 5.0
        assert s.cells[1].busy == 10.0
        assert s.cells[2].busy == 5.0
        assert s.utilization(1) == 1.0

    def test_add_range_boundary_end_stays_left(self):
        s = WindowedSeries(window=10.0)
        s.add_range(5.0, 10.0)
        assert s.indices() == [0]

    def test_percentile_needs_bounds(self):
        with pytest.raises(TelemetryError):
            WindowedSeries(window=10.0).percentile(0, 99.0)

    def test_percentile_per_window(self):
        s = WindowedSeries(window=10.0, bounds=(1.0, 2.0, 4.0, 8.0))
        for v in (1.5, 1.5, 3.0, 7.0):
            s.observe(1.0, v)
        assert s.percentile(0, 0.0) == 1.5
        assert s.percentile(0, 100.0) == 7.0
        assert s.percentile(1, 50.0) == 0.0  # empty window

    def test_rejects_bad_shapes(self):
        with pytest.raises(TelemetryError):
            WindowedSeries(window=0.0)
        with pytest.raises(TelemetryError):
            WindowedSeries(window=1.0, bounds=(2.0, 1.0))
        with pytest.raises(TelemetryError):
            WindowedSeries(window=1.0).observe(-0.5)
        with pytest.raises(TelemetryError):
            WindowedSeries(window=1.0).add_range(3.0, 2.0)


EVENTS = st.lists(
    st.one_of(
        st.tuples(
            st.just("observe"),
            st.floats(min_value=0.0, max_value=99.0, allow_nan=False),
            st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
        ),
        st.tuples(
            st.just("set"),
            st.floats(min_value=0.0, max_value=99.0, allow_nan=False),
            st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
        ),
        st.tuples(
            st.just("range"),
            st.floats(min_value=0.0, max_value=99.0, allow_nan=False),
            st.floats(min_value=0.0, max_value=20.0, allow_nan=False),
        ),
    ),
    max_size=40,
)


def apply(series, event):
    kind, t, v = event
    if kind == "observe":
        series.observe(t, v)
    elif kind == "set":
        series.set(t, v)
    else:
        series.add_range(t, t + v)


def assert_equivalent(merged, whole):
    """Cell-wise equality; the running float sums (``total``/``busy``)
    associate differently across a merge, so they get ulp tolerance
    while every discrete field must match bit-exactly."""
    assert sorted(merged.cells) == sorted(whole.cells)
    for k, theirs in whole.cells.items():
        mine = merged.cells[k]
        assert mine.count == theirs.count
        assert mine.min == theirs.min and mine.max == theirs.max
        assert mine.last == theirs.last and mine.last_t == theirs.last_t
        assert mine.bucket_counts == theirs.bucket_counts
        assert mine.total == pytest.approx(theirs.total, rel=1e-12, abs=1e-12)
        assert mine.busy == pytest.approx(theirs.busy, rel=1e-12, abs=1e-12)


class TestSplitMergeEquivalence:
    @settings(deadline=None, max_examples=150)
    @given(EVENTS, st.integers(min_value=0, max_value=40), st.booleans())
    def test_split_run_merges_to_the_whole_run(self, events, cut, bounded):
        bounds = (1.0, 4.0, 16.0) if bounded else None
        whole = WindowedSeries(window=10.0, bounds=bounds)
        part1 = WindowedSeries(window=10.0, bounds=bounds)
        part2 = WindowedSeries(window=10.0, bounds=bounds)
        cut = min(cut, len(events))
        for event in events:
            apply(whole, event)
        for event in events[:cut]:
            apply(part1, event)
        for event in events[cut:]:
            apply(part2, event)
        assert_equivalent(part1.merge(part2), whole)

    def test_merge_rejects_mismatched_shapes(self):
        s = WindowedSeries(window=10.0)
        with pytest.raises(TelemetryError):
            s.merge(WindowedSeries(window=5.0))
        with pytest.raises(TelemetryError):
            s.merge(WindowedSeries(window=10.0, bounds=(1.0,)))


class TestRegistryMerge:
    def build(self, offset):
        """A registry with windowed series interleaved among other metrics."""
        r = MetricsRegistry()
        r.counter("runs").add(1)
        r.gauge("depth").max(offset)
        r.windowed("tenant/a/throughput", 10.0).observe(offset + 1.0, 1.0)
        r.windowed("tenant/a/latency", 10.0, bounds=(1.0, 4.0)).observe(
            offset + 2.0, 2.5
        )
        r.windowed("server/busy", 10.0).add_range(offset, offset + 3.0)
        return r

    def test_merge_folds_interleaved_series(self):
        merged = self.build(0.0).merge(self.build(40.0))
        series = merged.series["tenant/a/throughput"]
        assert series.indices() == [0, 4]
        assert merged.series["server/busy"].cells[4].busy == 3.0
        assert merged.counters["runs"].value == 2

    def test_split_registries_equal_whole_registry(self):
        whole = MetricsRegistry()
        for offset in (0.0, 40.0):
            part = self.build(offset)
            for path, s in part.series.items():
                whole.windowed(path, s.window, bounds=s.bounds).merge(s)
        merged = self.build(0.0).merge(self.build(40.0))
        assert {p: s.as_dict() for p, s in whole.series.items()} == {
            p: s.as_dict() for p, s in merged.series.items()
        }

    def test_merge_rejects_conflicting_series_bounds(self):
        a = MetricsRegistry()
        a.windowed("x", 10.0).observe(1.0)
        b = MetricsRegistry()
        b.windowed("x", 10.0, bounds=(1.0,)).observe(1.0)
        with pytest.raises(TelemetryError):
            a.merge(b)

    def test_repeat_lookup_rejects_shape_change(self):
        r = MetricsRegistry()
        r.windowed("x", 10.0)
        with pytest.raises(TelemetryError):
            r.windowed("x", 5.0)
        with pytest.raises(TelemetryError):
            r.windowed("x", 10.0, bounds=(1.0,))
