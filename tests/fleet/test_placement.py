"""Replica placement: FFD bin-packing, hard rules, and re-placement."""

import pytest

from repro.errors import SimulationError
from repro.fleet.placement import (
    FleetPlacement,
    best_chip_for,
    place_replicas,
)
from repro.fleet.profiles import fixed_profile

PROFILES = {
    "vision": fixed_profile("vision", 0.8, cores=64),
    "speech": fixed_profile("speech", 1.1, cores=96),
    "detect": fixed_profile("detect", 2.2, cores=128),
}


class TestPlaceReplicas:
    def test_ffd_packs_big_partitions_first(self):
        placement = place_replicas(
            PROFILES,
            {"vision": 4, "speech": 3, "detect": 2},
            n_chips=8,
            array_size=210,
        )
        # FFD: detect(128) on chips 0,1; speech(96) on 2,3,4; vision(64)
        # fills back from chip 0.
        assert placement.chips_of("detect") == [0, 1]
        assert placement.chips_of("speech") == [2, 3, 4]
        assert placement.chips_of("vision") == [0, 1, 2, 3]
        for chip in range(8):
            assert placement.used_cores(chip) <= 210

    def test_region_starts_tile_the_array(self):
        placement = place_replicas(
            PROFILES, {"detect": 1, "vision": 1}, n_chips=1, array_size=210
        )
        rows = sorted(placement.on_chip(0), key=lambda a: a.region_start)
        assert rows[0].region_start == 0
        assert rows[1].region_start == rows[0].cores

    def test_at_most_one_replica_per_chip(self):
        with pytest.raises(SimulationError, match="max one replica per chip"):
            place_replicas(PROFILES, {"vision": 3}, n_chips=2, array_size=210)

    def test_share_must_fit_the_array(self):
        profiles = {"huge": fixed_profile("huge", 1.0, cores=300)}
        with pytest.raises(SimulationError, match="exceeds"):
            place_replicas(profiles, {"huge": 1}, n_chips=4, array_size=210)

    def test_rejects_overfull_fleet(self):
        with pytest.raises(SimulationError, match="no .*chip has room"):
            place_replicas(
                PROFILES,
                {"vision": 2, "speech": 2, "detect": 2},
                n_chips=2,
                array_size=210,
            )

    def test_deterministic(self):
        kwargs = dict(
            replicas={"vision": 3, "speech": 2}, n_chips=4, array_size=210
        )
        a = place_replicas(PROFILES, **kwargs).as_dict()
        b = place_replicas(PROFILES, **kwargs).as_dict()
        assert a == b


class TestFleetPlacement:
    def test_add_rejects_duplicate_model_on_chip(self):
        placement = FleetPlacement(array_size=210, n_chips=2)
        placement.add("vision", 0, 64)
        with pytest.raises(SimulationError, match="already hosts"):
            placement.add("vision", 0, 64)

    def test_add_rejects_overflow(self):
        placement = FleetPlacement(array_size=100, n_chips=1)
        placement.add("a", 0, 64)
        with pytest.raises(SimulationError, match="free"):
            placement.add("b", 0, 64)

    def test_remove_and_evict(self):
        placement = place_replicas(
            PROFILES, {"vision": 2, "speech": 1}, n_chips=2, array_size=210
        )
        lost = placement.evict_chip(0)
        assert {a.model for a in lost} == {"speech", "vision"}
        assert placement.on_chip(0) == []
        placement.remove("vision", 1)
        assert placement.replica_count("vision") == 0
        with pytest.raises(SimulationError, match="to remove"):
            placement.remove("vision", 1)


class TestBestChipFor:
    def test_prefers_most_free_then_lowest_id(self):
        placement = FleetPlacement(array_size=210, n_chips=3)
        placement.add("speech", 0, 96)
        # chips 1 and 2 tie on free cores; the lowest id wins.
        assert best_chip_for(placement, "vision", 64) == 1

    def test_respects_exclusions_and_hosts(self):
        placement = FleetPlacement(array_size=210, n_chips=3)
        placement.add("vision", 1, 64)
        assert best_chip_for(placement, "vision", 64, exclude=[0]) == 2
        placement.add("vision", 2, 64)
        assert best_chip_for(placement, "vision", 64, exclude=[0]) is None
