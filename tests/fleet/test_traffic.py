"""Seed derivation, diurnal shaping, and fleet traffic generators."""

import pytest

from repro.errors import SimulationError
from repro.fleet.traffic import (
    DiurnalShape,
    UserGroupArrivals,
    derive_seed,
    generate_open_arrivals,
)


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(7, "open", "vision") == derive_seed(7, "open", "vision")

    def test_varies_with_parts(self):
        seeds = {
            derive_seed(7, "open", "vision"),
            derive_seed(7, "open", "speech"),
            derive_seed(7, "group", "vision"),
            derive_seed(8, "open", "vision"),
        }
        assert len(seeds) == 4

    def test_non_negative(self):
        for i in range(50):
            assert derive_seed(i, "x", i) >= 0


class TestDiurnalShape:
    def test_factor_bounds(self):
        shape = DiurnalShape(period_ms=1000.0, floor=0.2)
        for t in (0.0, 125.0, 250.0, 500.0, 750.0, 1000.0):
            assert 0.2 <= shape.factor(t) <= 1.0 + 1e-12

    def test_trough_at_zero_peak_at_half_period(self):
        shape = DiurnalShape(period_ms=1000.0, floor=0.2)
        assert shape.factor(0.0) == pytest.approx(0.2)
        assert shape.factor(500.0) == pytest.approx(1.0)

    def test_rejects_bad_floor(self):
        with pytest.raises(SimulationError):
            DiurnalShape(period_ms=1000.0, floor=1.5)


class TestOpenArrivals:
    def test_deterministic_and_sorted(self):
        a = generate_open_arrivals(500.0, seed=3, duration_ms=1000.0)
        b = generate_open_arrivals(500.0, seed=3, duration_ms=1000.0)
        assert a == b
        assert a == sorted(a)
        assert all(0.0 <= t < 1000.0 for t in a)

    def test_rate_is_roughly_respected(self):
        times = generate_open_arrivals(1000.0, seed=5, duration_ms=2000.0)
        assert 1700 <= len(times) <= 2300

    def test_shape_thins_the_trough(self):
        shape = DiurnalShape(period_ms=2000.0, floor=0.1)
        times = generate_open_arrivals(
            1000.0, seed=5, duration_ms=2000.0, shape=shape
        )
        trough = sum(1 for t in times if t < 500.0)
        peak = sum(1 for t in times if 750.0 <= t < 1250.0)
        assert peak > 2 * trough


class TestUserGroupArrivals:
    def test_closed_loop_with_one_initial_arrival_per_user(self):
        group = UserGroupArrivals(users=10, think_ms=50.0, seed=4)
        assert group.closed_loop
        initial = group.initial_arrivals()
        assert len(initial) == 10
        assert all(0.0 <= t <= 50.0 for t in initial)

    def test_seeded_reset_is_deterministic(self):
        group = UserGroupArrivals(users=4, think_ms=30.0, seed=9)
        group.reset()
        first = [group.after_completion_ms(10.0) for _ in range(20)]
        group.reset()
        second = [group.after_completion_ms(10.0) for _ in range(20)]
        assert first == second
        assert all(t > 10.0 for t in first)

    def test_shape_shortens_peak_thinks(self):
        shape = DiurnalShape(period_ms=1000.0, floor=0.1)
        trough = UserGroupArrivals(users=1, think_ms=40.0, seed=2, shape=shape)
        peak = UserGroupArrivals(users=1, think_ms=40.0, seed=2, shape=shape)
        t_trough = sum(
            trough.after_completion_ms(0.0) - 0.0 for _ in range(200)
        )
        t_peak = sum(
            peak.after_completion_ms(500.0) - 500.0 for _ in range(200)
        )
        assert t_peak < t_trough

    def test_rejects_nonpositive_users(self):
        with pytest.raises(SimulationError):
            UserGroupArrivals(users=0, think_ms=10.0)
