"""Balancer unit behavior + the p2c two-choices load bound (property)."""

import math

import pytest

from repro.errors import SimulationError
from repro.fleet.balancing import (
    FluidLoadTracker,
    load_imbalance,
    make_balancer,
)
from repro.fleet.traffic import generate_open_arrivals

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402


class TestFluidLoadTracker:
    def test_backlog_drains_at_speed(self):
        tracker = FluidLoadTracker()
        tracker.speed[0] = 2.0
        tracker.add(0, 0.0, 10.0)
        assert tracker.load_ms(0, 0.0) == pytest.approx(10.0)
        assert tracker.load_ms(0, 3.0) == pytest.approx(4.0)
        assert tracker.load_ms(0, 100.0) == 0.0

    def test_reset_chip_clears(self):
        tracker = FluidLoadTracker()
        tracker.add(1, 0.0, 5.0)
        tracker.reset_chip(1)
        assert tracker.load_ms(1, 0.0) == 0.0


class TestBalancers:
    def test_round_robin_cycles_per_model(self):
        balancer = make_balancer("round-robin", FluidLoadTracker())
        picks = [balancer.choose("m", [3, 5, 7], 0.0) for _ in range(6)]
        assert picks == [3, 5, 7, 3, 5, 7]
        # Independent counter per model.
        assert balancer.choose("other", [3, 5, 7], 0.0) == 3

    def test_least_loaded_follows_the_estimate(self):
        tracker = FluidLoadTracker()
        balancer = make_balancer("least-loaded", tracker)
        tracker.add(0, 0.0, 5.0)
        assert balancer.choose("m", [0, 1], 0.0) == 1
        tracker.add(1, 0.0, 9.0)
        assert balancer.choose("m", [0, 1], 0.0) == 0

    def test_p2c_is_seeded_and_avoids_the_loaded_chip(self):
        def picks(seed):
            tracker = FluidLoadTracker()
            tracker.add(0, 0.0, 100.0)
            balancer = make_balancer("p2c", tracker, seed=seed)
            return [balancer.choose("m", [0, 1, 2], 0.0) for _ in range(40)]

        assert picks(3) == picks(3)
        # Whenever chip 0 is sampled it loses the comparison, so it can
        # only appear when both samples miss it — never, with 3 chips.
        assert 0 not in picks(3)

    def test_sticky_pins_sessions_until_the_set_shrinks(self):
        balancer = make_balancer("sticky", FluidLoadTracker())
        chips = [0, 1, 2, 3]
        first = balancer.choose("m", chips, 0.0, session="user-17")
        assert all(
            balancer.choose("m", chips, t, session="user-17") == first
            for t in (1.0, 2.0, 3.0)
        )
        survivors = [c for c in chips if c != first]
        rehomed = balancer.choose("m", survivors, 4.0, session="user-17")
        assert rehomed in survivors

    def test_unknown_name_rejected(self):
        with pytest.raises(SimulationError, match="unknown balancer"):
            make_balancer("optimal", FluidLoadTracker())


class TestLoadImbalance:
    def test_balanced_is_one(self):
        assert load_imbalance([2.0, 2.0, 2.0]) == pytest.approx(1.0)

    def test_empty_and_zero_are_one(self):
        assert load_imbalance([]) == 1.0
        assert load_imbalance([0.0, 0.0]) == 1.0


def _route_counts(name, n_chips, times, seed):
    """Route a seeded Poisson stream; return per-chip assignment counts.

    Unit-cost requests against a non-draining tracker (speed 0) make the
    fluid estimate a pure ball count — the classic balls-into-bins
    setting the two-choices theorem speaks about.
    """
    tracker = FluidLoadTracker()
    for chip in range(n_chips):
        tracker.speed[chip] = 0.0
    balancer = make_balancer(name, tracker, seed=seed)
    counts = [0] * n_chips
    candidates = list(range(n_chips))
    for t in times:
        chip = balancer.choose("m", candidates, t)
        counts[chip] += 1
        tracker.add(chip, t, 1.0)
    return counts


class TestTwoChoicesBound:
    @settings(max_examples=25, deadline=None)
    @given(
        n_chips=st.integers(min_value=2, max_value=64),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_p2c_max_load_within_loglog_of_round_robin(self, n_chips, seed):
        """Azar et al.: two choices overshoot the mean by O(log log N).

        Round-robin is the perfectly balanced reference (max = ceil of
        the mean); p2c's max must stay within an additive
        ``C1 + C2 * log2(log2 N + 1)`` of it on seeded Poisson traffic —
        a single-choice random balancer overshoots by Θ(log N / log log N)
        and blows this bound as N grows.
        """
        times = generate_open_arrivals(
            rate_hz=40.0 * n_chips, seed=seed, duration_ms=1000.0
        )
        rr = _route_counts("round-robin", n_chips, times, seed)
        p2c = _route_counts("p2c", n_chips, times, seed)
        assert sum(p2c) == sum(rr) == len(times)
        bound = 4.0 + 3.0 * math.log2(math.log2(n_chips) + 1.0)
        assert max(p2c) <= max(rr) + bound

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    def test_p2c_beats_no_balancing_materially(self, seed):
        """Sanity floor: p2c imbalance stays near 1 at fleet scale."""
        n_chips = 32
        times = generate_open_arrivals(
            rate_hz=60.0 * n_chips, seed=seed, duration_ms=1000.0
        )
        p2c = _route_counts("p2c", n_chips, times, seed)
        assert load_imbalance([float(c) for c in p2c]) < 1.25
