"""Failure injection end to end: crashes account everything, reruns pin.

The chip-crash invariants the fleet layer guarantees:

* a crash mid-window re-places the chip's replicas onto survivors;
* nothing is silently dropped — every generated request lands in
  exactly one of completed / overrun / shed / failed / router-shed;
* the same seed replays the same failure byte-for-byte.
"""

import pytest

from repro.errors import SimulationError
from repro.fleet import (
    ChipCrash,
    ChipDegradation,
    FailureScenario,
    FleetSimulator,
    build_scenario,
    partial_mesh_fault,
)


class TestFailureDeclarations:
    def test_crash_must_be_positive_time(self):
        with pytest.raises(SimulationError):
            ChipCrash(chip=0, at_ms=0.0)

    def test_duplicate_crash_rejected(self):
        scenario = FailureScenario(
            crashes=[ChipCrash(0, 10.0), ChipCrash(0, 20.0)]
        )
        with pytest.raises(SimulationError, match="more than once"):
            scenario.validate(n_chips=4)

    def test_out_of_fleet_chip_rejected(self):
        with pytest.raises(SimulationError, match="outside fleet"):
            FailureScenario(crashes=[ChipCrash(9, 10.0)]).validate(n_chips=4)

    def test_degradation_steps_apply_in_time_order(self):
        scenario = FailureScenario(
            degradations=[
                ChipDegradation(chip=0, from_ms=100.0, factor=4.0),
                ChipDegradation(chip=0, from_ms=10.0, factor=2.0),
            ]
        )
        assert scenario.degradation_factor(0, 5.0) == 1.0
        assert scenario.degradation_factor(0, 50.0) == 2.0
        assert scenario.degradation_factor(0, 150.0) == 4.0
        assert scenario.degradation_factor(1, 150.0) == 1.0

    def test_partial_mesh_is_a_detour_stretch(self):
        fault = partial_mesh_fault(2, 50.0, dead_fraction=0.25)
        assert fault.cause == "partial-mesh"
        assert fault.factor == pytest.approx(1.0 / 0.75)
        with pytest.raises(SimulationError):
            partial_mesh_fault(0, 0.0, dead_fraction=1.0)


@pytest.fixture(scope="module")
def crash_result():
    scenario = build_scenario("chip-crash")
    return FleetSimulator(
        scenario.models,
        scenario.n_chips,
        balancer=scenario.balancer,
        failures=scenario.failures,
        scenario=scenario.name,
        seed=11,
    ).run(scenario.duration_ms)


class TestCrashMidWindow:
    def test_replicas_re_place_onto_survivors(self, crash_result):
        assert crash_result.recoveries
        for event in crash_result.recoveries:
            assert event.from_chip == 0
            assert event.to_chip not in (None, 0)
        # The crashed chip's replicas are gone from the final placement.
        placement = crash_result.placement
        assert all(r["chip"] != 0 for r in placement["replicas"])

    def test_no_silent_drops(self, crash_result):
        assert crash_result.conserved
        for rollup in crash_result.models.values():
            assert rollup.generated == (
                rollup.completed + rollup.overrun + rollup.shed
                + rollup.failed + rollup.router_shed
            )
        # The crash is visible: the halted chip failed queued/in-flight
        # work instead of dropping it.
        assert crash_result.total_failed > 0

    def test_only_the_crashed_chip_fails_requests(self, crash_result):
        halted = crash_result.chip_results[0]
        assert halted is not None
        halted_failed = sum(r.failed for r in halted.reports.values())
        assert halted_failed == crash_result.total_failed > 0
        for chip, result in crash_result.chip_results.items():
            if chip == 0 or result is None:
                continue
            assert all(r.failed == 0 for r in result.reports.values())

    def test_slo_burn_is_bounded(self, crash_result):
        # Survivors absorb the traffic: the fleet still completes the
        # overwhelming majority of requests and p99 stays finite.
        completed = crash_result.total_completed
        generated = crash_result.total_generated
        assert completed / generated > 0.95
        assert 0.0 < crash_result.worst_model_p99_ms < 50.0

    def test_same_seed_rerun_is_byte_identical(self, crash_result):
        scenario = build_scenario("chip-crash")
        rerun = FleetSimulator(
            scenario.models,
            scenario.n_chips,
            balancer=scenario.balancer,
            failures=scenario.failures,
            scenario=scenario.name,
            seed=11,
        ).run(scenario.duration_ms)
        assert rerun.to_json() == crash_result.to_json()


class TestDegradedChipEndToEnd:
    def test_load_aware_balancer_starves_the_slow_chip(self):
        scenario = build_scenario("mixed-rate-fleet")

        def run(balancer):
            return FleetSimulator(
                scenario.models,
                scenario.n_chips,
                balancer=balancer,
                failures=scenario.failures,
                scenario=scenario.name,
                seed=5,
            ).run(500.0)

        blind = run("round-robin")
        aware = run("least-loaded")
        assert blind.conserved and aware.conserved
        # The degraded chip (0) receives materially less work under the
        # load-aware policy, and the worst model's p99 improves.
        assert aware.routed[0] < blind.routed[0]
        assert aware.worst_model_p99_ms < blind.worst_model_p99_ms
