"""End-to-end fleet runs: conservation, parallel identity, autoscaling."""

import pytest

from repro.fleet import FleetSimulator, build_scenario
from repro.telemetry import MetricsRegistry


def run_scenario(name, *, seed=3, workers=0, collect_metrics=False,
                 duration_ms=None, balancer=None):
    scenario = build_scenario(name)
    sim = FleetSimulator(
        scenario.models,
        scenario.n_chips,
        balancer=balancer or scenario.balancer,
        batch_requests=scenario.batch_requests,
        failures=scenario.failures,
        autoscale=scenario.autoscale,
        scenario=scenario.name,
        seed=seed,
        workers=workers,
        collect_metrics=collect_metrics,
    )
    return sim.run(duration_ms or scenario.duration_ms)


class TestFleetSmoke:
    @pytest.fixture(scope="class")
    def result(self):
        return run_scenario("fleet-smoke")

    def test_clean_run_conserves_with_zero_losses(self, result):
        assert result.conserved
        assert result.total_generated > 0
        assert result.total_shed == 0
        assert result.total_failed == 0
        assert result.total_router_shed == 0

    def test_every_chip_hosted_work_and_reported(self, result):
        assert set(result.chip_results) == set(range(result.n_chips))
        assert all(r is not None for r in result.chip_results.values())
        utilization = result.chip_utilization()
        assert set(utilization) == set(range(result.n_chips))
        assert all(u >= 0.0 for u in utilization.values())

    def test_fleet_percentiles_are_monotone(self, result):
        p50 = result.fleet_percentile(50.0)
        p95 = result.fleet_percentile(95.0)
        p99 = result.fleet_percentile(99.0)
        assert 0.0 < p50 <= p95 <= p99
        assert result.worst_model_p99_ms >= p50


class TestParallelIdentity:
    def test_workers_do_not_change_a_single_byte(self):
        serial = run_scenario("fleet-smoke", seed=21)
        parallel = run_scenario("fleet-smoke", seed=21, workers=2)
        assert parallel.to_json() == serial.to_json()

    def test_parallel_identity_survives_failures_and_autoscale(self):
        serial = run_scenario("autoscale-burst", seed=8)
        parallel = run_scenario("autoscale-burst", seed=8, workers=3)
        assert parallel.to_json() == serial.to_json()


class TestAutoscaleBurst:
    def test_burst_triggers_up_scaling(self):
        result = run_scenario("autoscale-burst")
        assert result.conserved
        ups = [e for e in result.scale_events if e.direction == "up"]
        assert ups
        # Scale events land on epoch boundaries and carry utilization.
        for event in result.scale_events:
            assert event.time_ms > 0.0
            assert event.utilization >= 0.0


class TestCollectedMetrics:
    def test_merged_registry_covers_the_fleet(self):
        result = run_scenario("fleet-smoke", collect_metrics=True)
        assert isinstance(result.metrics, MetricsRegistry)
        snapshot = result.metrics.snapshot()
        assert snapshot
        # The registry stays out of the deterministic JSON export.
        assert "metrics" not in result.as_dict()

    def test_metrics_off_by_default(self):
        assert run_scenario("fleet-smoke").metrics is None


class TestBalancerSeparation:
    def test_load_aware_beats_round_robin_on_worst_tenant_p99(self):
        aware = run_scenario("mixed-rate-fleet", duration_ms=500.0)
        blind = run_scenario(
            "mixed-rate-fleet", duration_ms=500.0, balancer="round-robin"
        )
        assert aware.conserved and blind.conserved
        assert aware.worst_model_p99_ms < blind.worst_model_p99_ms
