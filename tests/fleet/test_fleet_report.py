"""Fleet report kind: schema validation and deterministic HTML panels."""

import pytest

from repro.errors import ObservabilityError
from repro.fleet import FleetSimulator, build_scenario
from repro.obs.report import build_fleet_report, validate_report
from repro.obs.html import render_html


def run_fleet(name, *, seed=7):
    scenario = build_scenario(name)
    return FleetSimulator(
        scenario.models,
        scenario.n_chips,
        balancer=scenario.balancer,
        batch_requests=scenario.batch_requests,
        failures=scenario.failures,
        autoscale=scenario.autoscale,
        scenario=scenario.name,
        seed=seed,
    ).run(scenario.duration_ms)


@pytest.fixture(scope="module")
def crash_report():
    return build_fleet_report(run_fleet("chip-crash"))


class TestFleetReport:
    def test_validates_against_the_schema(self, crash_report):
        validate_report(crash_report)
        assert crash_report["kind"] == "fleet"
        assert crash_report["meta"]["scenario"] == "chip-crash"

    def test_validation_catches_a_gutted_totals_block(self, crash_report):
        broken = dict(crash_report)
        fleet = dict(broken["fleet"])
        totals = dict(fleet["totals"])
        del totals["conserved"]
        fleet["totals"] = totals
        broken["fleet"] = fleet
        with pytest.raises(ObservabilityError, match="missing key 'conserved'"):
            validate_report(broken)

    def test_html_carries_every_fleet_panel(self, crash_report):
        html = render_html(crash_report)
        for marker in (
            "Per-model fleet SLO",
            "Per-chip load",
            "Crash recoveries",
            "router shed",
        ):
            assert marker in html

    def test_html_bytes_are_deterministic(self, crash_report):
        again = build_fleet_report(run_fleet("chip-crash"))
        assert render_html(again) == render_html(crash_report)

    def test_autoscale_events_render(self):
        report = build_fleet_report(run_fleet("autoscale-burst"))
        validate_report(report)
        assert "Autoscale events" in render_html(report)
