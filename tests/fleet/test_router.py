"""Router sweep: tracing, shedding, crash re-placement, autoscale epochs."""

import pytest

from repro.errors import SimulationError
from repro.fleet.autoscale import AutoscaleConfig, ReplicaAutoscaler
from repro.fleet.balancing import FluidLoadTracker, make_balancer
from repro.fleet.failures import ChipCrash, ChipDegradation, FailureScenario
from repro.fleet.placement import place_replicas
from repro.fleet.profiles import fixed_profile
from repro.fleet.router import ClusterRouter, split_user_groups

PROFILES = {
    "vision": fixed_profile("vision", 0.8, cores=64, restage_ms=4.0),
    "speech": fixed_profile("speech", 1.1, cores=96, restage_ms=6.0),
}


def build_router(n_chips=4, balancer="least-loaded", failures=None,
                 autoscaler=None, replicas=None):
    placement = place_replicas(
        PROFILES, replicas or {"vision": 3, "speech": 2},
        n_chips=n_chips, array_size=210,
    )
    tracker = FluidLoadTracker()
    return ClusterRouter(
        placement,
        PROFILES,
        make_balancer(balancer, tracker, seed=0),
        tracker,
        deadlines_ms={"vision": 10.0, "speech": 15.0},
        failures=failures,
        autoscaler=autoscaler,
    )


class TestRouteAll:
    def test_every_arrival_lands_in_exactly_one_trace(self):
        router = build_router()
        streams = {
            "vision": [float(i) for i in range(100)],
            "speech": [0.5 + float(i) for i in range(50)],
        }
        result = router.route_all(streams, duration_ms=200.0)
        traced = sum(len(ts) for ts in result.traces.values())
        shed = sum(result.router_shed.values())
        assert traced + shed == 150
        assert shed == 0
        assert sum(result.routed.values()) == 150
        for (chip, model), times in result.traces.items():
            assert times == sorted(times)
            assert chip in router.placement.chips_of(model)

    def test_no_live_replica_sheds_visibly(self):
        router = build_router(
            failures=FailureScenario(crashes=[
                ChipCrash(chip=c, at_ms=10.0) for c in range(4)
            ]),
        )
        streams = {"vision": [5.0, 20.0, 30.0]}
        result = router.route_all(streams, duration_ms=100.0)
        assert result.router_shed["vision"] == 2
        assert sum(len(t) for t in result.traces.values()) == 1

    def test_deterministic_across_reruns(self):
        streams = {"vision": [float(i) * 0.7 for i in range(200)]}
        a = build_router(balancer="p2c").route_all(dict(streams), 200.0)
        b = build_router(balancer="p2c").route_all(dict(streams), 200.0)
        assert a.traces == b.traces
        assert a.routed == b.routed


class TestCrashHandling:
    def test_crash_replaces_replicas_on_survivors(self):
        router = build_router(
            failures=FailureScenario(crashes=[ChipCrash(chip=0, at_ms=50.0)])
        )
        hosted = {a.model for a in router.placement.on_chip(0)}
        assert hosted  # chip 0 hosts something under FFD
        result = router.route_all(
            {"vision": [40.0, 60.0], "speech": [45.0, 65.0]}, 200.0
        )
        assert {e.model for e in result.recoveries} == hosted
        for event in result.recoveries:
            assert event.from_chip == 0
            assert event.to_chip not in (None, 0)
            assert event.ready_ms == pytest.approx(
                50.0 + PROFILES[event.model].restage_ms
            )
            assert event.to_chip in router.placement.chips_of(event.model)
        assert router.placement.on_chip(0) == []

    def test_replica_not_routable_until_restaged(self):
        router = build_router(
            failures=FailureScenario(crashes=[ChipCrash(chip=0, at_ms=50.0)])
        )
        result = router.route_all({"vision": [40.0]}, 200.0)
        # The recovery replica exists but is still staging at t=51.
        recovered = next(e for e in result.recoveries if e.model == "vision")
        live = router.live_candidates("vision", 51.0)
        assert recovered.to_chip not in live
        assert recovered.to_chip in router.live_candidates(
            "vision", recovered.ready_ms
        )
        del result

    def test_degradation_inflates_the_fluid_bill(self):
        scenario = FailureScenario(
            degradations=[ChipDegradation(chip=0, from_ms=0.0, factor=3.0)]
        )
        router = build_router(failures=scenario, balancer="round-robin")
        router.route_all({"vision": [0.0]}, 10.0)
        # round-robin sends the first vision arrival to its first
        # candidate chip (chip 0); the tracker bills est * factor.
        est = PROFILES["vision"].est_ms
        assert router.tracker.load_ms(0, 0.0) == pytest.approx(3.0 * est)


class TestAutoscaleEpochs:
    def test_overload_scales_up_and_idle_scales_down(self):
        config = AutoscaleConfig(
            epoch_ms=10.0, high_utilization=0.6, low_utilization=0.3,
            down_epochs=2, cooldown_epochs=1, max_replicas=4,
        )
        router = build_router(
            replicas={"vision": 1, "speech": 1},
            autoscaler=ReplicaAutoscaler(config),
        )
        # Dense vision burst for 50 ms, then silence.
        burst = [i * 0.05 for i in range(1000)]
        result = router.route_all({"vision": burst}, duration_ms=200.0)
        ups = [e for e in result.scale_events if e.direction == "up"]
        downs = [e for e in result.scale_events if e.direction == "down"]
        assert ups and downs
        assert all(e.model == "vision" for e in ups)
        # Down-scaling never goes below min_replicas.
        assert router.placement.replica_count("vision") >= config.min_replicas


class TestSplitUserGroups:
    def test_even_split_with_remainder_to_low_chips(self):
        placement = place_replicas(
            PROFILES, {"vision": 3}, n_chips=4, array_size=210
        )
        chips = placement.chips_of("vision")
        split = split_user_groups(placement, "vision", 10)
        assert sum(split.values()) == 10
        assert split[chips[0]] == 4 and split[chips[1]] == 3

    def test_no_replicas_raises(self):
        placement = place_replicas(
            PROFILES, {"vision": 1}, n_chips=2, array_size=210
        )
        with pytest.raises(SimulationError, match="no replicas"):
            split_user_groups(placement, "speech", 5)
