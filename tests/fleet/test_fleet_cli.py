"""scripts/fleet.py CLI: JSON artifacts, assert flags, balancer sweeps."""

import json
import os
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]
FLEET = REPO / "scripts" / "fleet.py"


def run_cli(*args, check=True):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    return subprocess.run(
        [sys.executable, str(FLEET), *args],
        capture_output=True,
        text=True,
        env=env,
        check=check,
        cwd=str(REPO),
    )


class TestFleetCli:
    def test_smoke_run_writes_a_fleet_json(self, tmp_path):
        out = tmp_path / "fleet.json"
        proc = run_cli(
            "--scenario", "fleet-smoke",
            "--assert-no-shed", "--assert-conserved",
            "--json-out", str(out),
        )
        assert "conserved" in proc.stdout
        payload = json.loads(out.read_text())
        assert payload["kind"] == "fleet"
        assert payload["totals"]["conserved"] is True
        assert payload["totals"]["shed"] == 0

    def test_no_shed_assert_fails_on_chip_crash(self):
        proc = run_cli(
            "--scenario", "chip-crash", "--assert-no-shed", check=False
        )
        assert proc.returncode != 0

    def test_conserved_assert_passes_on_chip_crash(self):
        run_cli("--scenario", "chip-crash", "--assert-conserved")

    def test_balancer_sweep_writes_one_entry_per_policy(self, tmp_path):
        out = tmp_path / "sweep.json"
        run_cli(
            "--scenario", "fleet-smoke",
            "--balancer", "all",
            "--duration-ms", "200",
            "--json-out", str(out),
        )
        payload = json.loads(out.read_text())
        assert set(payload) >= {"round-robin", "least-loaded", "p2c"}
        for entry in payload.values():
            assert entry["kind"] == "fleet"

    def test_same_seed_runs_emit_identical_bytes(self, tmp_path):
        outs = []
        for name in ("a.json", "b.json"):
            out = tmp_path / name
            run_cli(
                "--scenario", "fleet-smoke",
                "--seed", "13",
                "--json-out", str(out),
            )
            outs.append(out.read_bytes())
        assert outs[0] == outs[1]
