"""Shipped fleet scenarios: builders, chip floors, and request sizing."""

import pytest

from repro.errors import SimulationError
from repro.fleet import (
    DEFAULT_CHIPS,
    FLEET_SCENARIOS,
    build_scenario,
    expected_requests,
)


class TestBuildScenario:
    def test_every_shipped_scenario_builds_at_its_default(self):
        for name in FLEET_SCENARIOS:
            scenario = build_scenario(name)
            assert scenario.name == name
            assert scenario.n_chips == DEFAULT_CHIPS[name]
            assert scenario.models
            assert scenario.duration_ms > 0.0
            scenario.failures.validate(scenario.n_chips)

    def test_registry_and_default_chips_agree(self):
        assert set(DEFAULT_CHIPS) == set(FLEET_SCENARIOS)

    def test_unknown_name_lists_choices(self):
        with pytest.raises(SimulationError, match="unknown fleet scenario"):
            build_scenario("warp-speed")

    def test_chip_floor_enforced(self):
        with pytest.raises(SimulationError, match="chip-crash needs >= 4"):
            build_scenario("chip-crash", chips=2)

    def test_chips_override_scales_the_fleet(self):
        small = build_scenario("diurnal-million", chips=2)
        large = build_scenario("diurnal-million", chips=16)
        assert small.n_chips == 2 and large.n_chips == 16
        assert expected_requests(large) > expected_requests(small)


class TestExpectedRequests:
    def test_diurnal_million_sizes_past_the_acceptance_floor(self):
        scenario = build_scenario("diurnal-million")
        assert expected_requests(scenario) >= 1_000_000

    def test_smoke_stays_small(self):
        assert expected_requests(build_scenario("fleet-smoke")) < 100_000
