"""SLO monitor: burn-rate, queue-growth, and resize-thrash detection."""

import pytest

from repro.errors import ObservabilityError
from repro.obs.monitor import CLUSTER, AlertEvent, SLOConfig, SLOMonitor


def feed_window(monitor, tenant, index, misses, total, window=10.0):
    """Drop ``total`` completions (``misses`` late) into one window."""
    base = index * window
    for i in range(total):
        t = base + (i + 0.5) * window / (total + 1)
        monitor.record_completion(tenant, t, 1.0, met_deadline=i >= misses)


class TestAlertEvent:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ObservabilityError):
            AlertEvent("meltdown", "a", 0.0, 10.0, 1.0, 1.0, "")

    def test_as_dict_round_trips_the_fields(self):
        alert = AlertEvent("burn_rate", "a", 10.0, 10.0, 4.0, 2.0, "m")
        d = alert.as_dict()
        assert d["kind"] == "burn_rate" and d["value"] == 4.0


class TestSLOConfig:
    @pytest.mark.parametrize("kwargs", [
        {"window_ms": 0.0},
        {"error_budget": 0.0},
        {"error_budget": 1.5},
        {"burn_threshold": 0.0},
        {"queue_growth_windows": 1},
        {"thrash_count": 1},
        {"thrash_window_ms": 0.0},
    ])
    def test_rejects_bad_thresholds(self, kwargs):
        with pytest.raises(ObservabilityError):
            SLOConfig(**kwargs)


class TestBurnRate:
    def test_hot_window_alerts(self):
        monitor = SLOMonitor(SLOConfig(error_budget=0.1, burn_threshold=2.0))
        feed_window(monitor, "a", 0, misses=5, total=10)
        alerts = monitor.poll(10.0)
        assert [a.kind for a in alerts] == ["burn_rate"]
        assert alerts[0].tenant == "a"
        assert alerts[0].value == pytest.approx(5.0)  # 50% miss / 10% budget
        assert alerts[0].time_ms == 10.0

    def test_within_budget_stays_quiet(self):
        monitor = SLOMonitor(SLOConfig(error_budget=0.1, burn_threshold=2.0))
        feed_window(monitor, "a", 0, misses=1, total=10)  # burn 1.0 < 2.0
        assert monitor.poll(10.0) == []

    def test_open_window_is_not_evaluated_early(self):
        monitor = SLOMonitor(SLOConfig(error_budget=0.1))
        feed_window(monitor, "a", 0, misses=10, total=10)
        assert monitor.poll(9.9) == []       # window [0, 10) still open
        assert len(monitor.poll(10.0)) == 1  # closes exactly at its end

    def test_each_window_evaluated_once(self):
        monitor = SLOMonitor(SLOConfig(error_budget=0.1))
        feed_window(monitor, "a", 0, misses=10, total=10)
        assert len(monitor.poll(10.0)) == 1
        assert monitor.poll(20.0) == []
        assert len(monitor.alerts) == 1


class TestQueueGrowth:
    def test_streak_of_growing_depth_alerts_once(self):
        monitor = SLOMonitor(SLOConfig(queue_growth_windows=3))
        for index, depth in enumerate([1, 2, 3, 4, 5]):
            monitor.record_queue_depth("a", index * 10.0 + 5.0, depth)
        alerts = monitor.poll(50.0)
        growth = [a for a in alerts if a.kind == "queue_growth"]
        assert len(growth) == 1
        assert growth[0].time_ms == 30.0  # third growing window closes

    def test_flat_depth_never_alerts(self):
        monitor = SLOMonitor(SLOConfig(queue_growth_windows=3))
        for index in range(5):
            monitor.record_queue_depth("a", index * 10.0 + 5.0, 4)
        assert monitor.poll(50.0) == []

    def test_a_drop_resets_the_streak(self):
        monitor = SLOMonitor(SLOConfig(queue_growth_windows=3))
        for index, depth in enumerate([1, 2, 0, 1, 2]):
            monitor.record_queue_depth("a", index * 10.0 + 5.0, depth)
        assert monitor.poll(50.0) == []


class TestResizeThrash:
    def test_burst_of_resizes_alerts_once(self):
        monitor = SLOMonitor(SLOConfig(thrash_count=3, thrash_window_ms=50.0))
        for t in (10.0, 20.0, 30.0, 40.0):
            monitor.record_resize(t)
        alerts = monitor.poll(100.0)
        thrash = [a for a in alerts if a.kind == "resize_thrash"]
        assert len(thrash) == 1
        assert thrash[0].tenant == CLUSTER
        assert thrash[0].time_ms == 30.0

    def test_spread_out_resizes_stay_quiet(self):
        monitor = SLOMonitor(SLOConfig(thrash_count=3, thrash_window_ms=50.0))
        for t in (10.0, 100.0, 200.0, 300.0):
            monitor.record_resize(t)
        assert monitor.poll(400.0) == []


class TestDeterminism:
    def build(self):
        monitor = SLOMonitor(SLOConfig(error_budget=0.05, burn_threshold=2.0))
        for tenant in ("b", "a", "c"):
            feed_window(monitor, tenant, 0, misses=8, total=10)
            monitor.record_queue_depth(tenant, 5.0, 3)
        return monitor

    def test_alerts_sorted_and_reproducible(self):
        first = self.build().poll(30.0)
        second = self.build().poll(30.0)
        assert [a.as_dict() for a in first] == [a.as_dict() for a in second]
        keys = [(a.time_ms, a.kind, a.tenant) for a in first]
        assert keys == sorted(keys)
        assert [a.tenant for a in first] == ["a", "b", "c"]

    def test_incremental_polls_equal_one_big_poll(self):
        whole = self.build().poll(30.0)
        split_monitor = self.build()
        split = split_monitor.poll(10.0) + split_monitor.poll(30.0)
        assert [a.as_dict() for a in split] == [a.as_dict() for a in whole]
