"""The attribution invariant: phases sum bit-exactly to the total.

``fit_durations`` is the load-bearing primitive — every per-request
timeline and every per-tenant aggregate goes through it — so it gets the
property-test treatment on top of the unit cases, including the exact
input that made the pure-Newton fixup dither forever.
"""

import pytest

from repro.errors import ObservabilityError
from repro.nn.workloads import small_cnn_spec
from repro.obs.timeline import (
    PHASE_CATEGORIES,
    AttributionTable,
    Phase,
    PhaseSpec,
    RequestTimeline,
    fit_durations,
    report_phases,
    scale_phases,
    timeline_from_report,
)
from repro.sim import simulate

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402


def left_sum(values):
    acc = 0.0
    for v in values:
        acc += v
    return acc


class TestFitDurations:
    def test_exact_input_is_untouched(self):
        assert fit_durations([1.0, 2.0, 3.0], 6.0) == [1.0, 2.0, 3.0]

    def test_tail_absorbs_the_residual(self):
        out = fit_durations([0.1, 0.2, 0.3], 0.7)
        assert left_sum(out) == 0.7
        assert out[0] == 0.1 and out[1] == 0.2

    def test_walks_left_when_tail_pins_at_zero(self):
        out = fit_durations([5.0, 1.0, 0.0], 3.0)
        assert left_sum(out) == 3.0
        assert all(d >= 0 for d in out)

    def test_empty_fits_zero_only(self):
        assert fit_durations([], 0.0) == []
        with pytest.raises(ObservabilityError):
            fit_durations([], 1.0)

    def test_rejects_negative_inputs(self):
        with pytest.raises(ObservabilityError):
            fit_durations([1.0, -0.5], 1.0)
        with pytest.raises(ObservabilityError):
            fit_durations([1.0], -1.0)

    def test_newton_dither_regression(self):
        # This exact input made a pure Newton fixup oscillate between two
        # candidates whose sums bracket the target by one ulp each; the
        # binary-search fallback must land it.
        durations = [
            957.1380914829443, 0.0, 821.6066974363495, 1129.7934664843555,
        ]
        total = 2908.5382554036494
        out = fit_durations(durations, total)
        assert left_sum(out) == total

    def test_all_zero_durations_grow_the_tail(self):
        out = fit_durations([0.0, 0.0], 7.5)
        assert left_sum(out) == 7.5

    @settings(deadline=None, max_examples=200)
    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=1e9, allow_nan=False),
            min_size=1,
            max_size=8,
        ),
        st.floats(min_value=-1e-6, max_value=1e-6, allow_nan=False),
    )
    def test_property_exact_sum(self, durations, jitter):
        # The billed total is always "the sum, give or take ulp noise" —
        # model that as the float sum nudged by a tiny relative jitter.
        total = left_sum(durations) * (1.0 + jitter)
        if total < 0:
            total = 0.0
        out = fit_durations(durations, total)
        assert left_sum(out) == total
        assert all(d >= 0 for d in out)

    @settings(deadline=None, max_examples=100)
    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
            min_size=2,
            max_size=6,
        )
    )
    def test_property_prefix_preserved_when_tail_absorbs(self, durations):
        total = left_sum(durations)
        out = fit_durations(durations, total)
        assert left_sum(out) == total
        # A total equal to the float sum never needs to touch the prefix.
        assert out[:-1] == [float(d) for d in durations[:-1]]


class TestPhaseSpec:
    def test_rejects_unknown_category(self):
        with pytest.raises(ObservabilityError):
            PhaseSpec("x", "warp-drive", 1.0)

    def test_rejects_negative_weight(self):
        with pytest.raises(ObservabilityError):
            PhaseSpec("x", "compute", -1.0)


class TestRequestTimeline:
    def test_verify_passes_on_exact_sum(self):
        tl = RequestTimeline(
            tenant="a", index=0, arrival=0.0, end_to_end=3.0,
            phases=[Phase("queue", "queue", 1.0), Phase("c", "compute", 2.0)],
        )
        tl.verify()

    def test_verify_raises_on_drift(self):
        tl = RequestTimeline(
            tenant="a", index=0, arrival=0.0, end_to_end=3.0,
            phases=[Phase("c", "compute", 2.0)],
        )
        with pytest.raises(ObservabilityError):
            tl.verify()

    def test_by_category_folds_in_taxonomy_order(self):
        tl = RequestTimeline(
            tenant="a", index=0, arrival=0.0, end_to_end=6.0,
            phases=[
                Phase("s0/compute", "compute", 1.0),
                Phase("s0/dram", "dram", 2.0),
                Phase("s1/compute", "compute", 3.0),
            ],
        )
        assert tl.by_category() == {"dram": 2.0, "compute": 4.0}
        assert list(tl.by_category()) == ["dram", "compute"]


class TestScalePhases:
    def test_scales_proportionally(self):
        specs = [PhaseSpec("a", "dram", 1.0), PhaseSpec("b", "compute", 3.0)]
        out = scale_phases(specs, 8.0)
        assert out == [("a", "dram", 2.0), ("b", "compute", 6.0)]

    def test_all_zero_weights_stay_zero(self):
        specs = [PhaseSpec("a", "dram", 0.0), PhaseSpec("b", "compute", 0.0)]
        assert scale_phases(specs, 5.0) == [
            ("a", "dram", 0.0), ("b", "compute", 0.0),
        ]


class TestReportPhases:
    @pytest.fixture(scope="class")
    def report(self):
        return simulate(small_cnn_spec(), backend="streaming")

    def test_weights_cover_the_report(self, report):
        specs = report_phases(report)
        assert specs[-1].name == "drain"
        accounted = sum(s.weight for s in specs)
        assert accounted == pytest.approx(report.total_cycles, rel=1e-9)

    def test_every_segment_contributes_three_phases(self, report):
        specs = report_phases(report)
        assert len(specs) == 3 * len(report.runs) + 1
        categories = {s.category for s in specs}
        assert categories <= set(PHASE_CATEGORIES)

    def test_timeline_from_report_verifies(self, report):
        tl = timeline_from_report(report)
        assert tl.end_to_end == report.total_cycles
        tl.verify()


class TestAttributionTable:
    def specs(self):
        return [
            PhaseSpec("service/staging", "staging", 1.0),
            PhaseSpec("service/compute", "compute", 3.0),
        ]

    def test_lookup_caches_per_key(self):
        table = AttributionTable()
        calls = []

        def factory():
            calls.append(1)
            return self.specs()

        key1, t1 = table.lookup("a", 1, factory, 4.0)
        key2, t2 = table.lookup("a", 1, factory, 4.0)
        assert key1 == key2 and t1 is t2
        assert len(calls) == 1

    def test_invalidate_bumps_the_generation(self):
        table = AttributionTable()
        key1, _ = table.lookup("a", 1, self.specs, 4.0)
        table.invalidate("a")
        key2, _ = table.lookup("a", 1, self.specs, 8.0)
        assert key1 != key2
        assert key2[2] == key1[2] + 1

    def test_aggregate_weighs_templates_by_use_count(self):
        table = AttributionTable()
        key, _ = table.lookup("a", 1, self.specs, 4.0)
        for _ in range(3):
            table.record(key)
        names, categories, durations = table.aggregate("a", 6.0, 18.0)
        assert names[:2] == ["queue", "admission"]
        assert categories[:2] == ["queue", "admission"]
        total = 0.0
        for d in durations:
            total += d
        assert total == 18.0
        by_name = dict(zip(names, durations))
        assert by_name["queue"] == 6.0
        assert by_name["service/staging"] == pytest.approx(3.0)
        assert by_name["service/compute"] == pytest.approx(9.0)

    def test_aggregate_ignores_other_tenants(self):
        table = AttributionTable()
        key_a, _ = table.lookup("a", 1, self.specs, 4.0)
        key_b, _ = table.lookup("b", 1, self.specs, 40.0)
        table.record(key_a)
        table.record(key_b)
        names, _, durations = table.aggregate("a", 0.0, 4.0)
        assert dict(zip(names, durations))["service/compute"] < 4.0

    def test_timeline_verifies_and_orders_phases(self):
        table = AttributionTable()
        _, template = table.lookup("a", 1, self.specs, 4.0)
        tl = table.timeline("a", 7, arrival=10.0, start=12.0,
                            latency=6.0, template=template)
        assert [p.name for p in tl.phases] == [
            "queue", "admission", "service/staging", "service/compute",
        ]
        assert tl.phases[0].duration == 2.0
        tl.verify()
