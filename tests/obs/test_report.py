"""Report documents: builders, schema validation, and the HTML renderer."""

import copy
import json

import pytest

from repro import telemetry
from repro.errors import ObservabilityError
from repro.nn.workloads import small_cnn_spec
from repro.obs.html import render_html
from repro.obs.monitor import SLOConfig, SLOMonitor
from repro.obs.report import (
    SCHEMA,
    build_serving_report,
    build_xcheck_report,
    validate_report,
)
from repro.serving.arrivals import PeriodicArrivals
from repro.serving.policies import FixedServicePolicy
from repro.serving.simulator import ServingSimulator
from repro.serving.tenancy import TenantSpec
from repro.sim import cross_check, simulate

NET = small_cnn_spec()


def run_serving():
    """A tiny deterministic serving run with telemetry + monitor."""
    tenants = [
        TenantSpec("a", NET, PeriodicArrivals(2.0), deadline_ms=1.0),
        TenantSpec("b", NET, PeriodicArrivals(3.0), deadline_ms=5.0),
    ]
    policy = FixedServicePolicy({"a": 1.5, "b": 0.5})  # tenant a always late
    sink = telemetry.Telemetry()
    monitor = SLOMonitor(SLOConfig(window_ms=10.0))
    simulator = ServingSimulator(policy, telemetry=sink, monitor=monitor)
    result = simulator.run(tenants, 60.0)
    series = sink.registry.as_dict()["series"]
    return result, series


@pytest.fixture(scope="module")
def serving_doc():
    result, series = run_serving()
    return build_serving_report(
        result, scenario="unit", window_ms=10.0, series=series
    )


@pytest.fixture(scope="module")
def xcheck_doc():
    network = small_cnn_spec()
    xcheck = cross_check(network, backends=["analytic", "streaming"])
    runs = {
        network.name: {
            backend: simulate(network, backend=backend)
            for backend in ("analytic", "streaming")
        }
    }
    return build_xcheck_report([xcheck], runs)


class TestServingReport:
    def test_document_validates(self, serving_doc):
        assert serving_doc["schema"] == SCHEMA
        validate_report(serving_doc)

    def test_burn_rate_alert_present(self, serving_doc):
        kinds = {a["kind"] for a in serving_doc["alerts"]}
        assert "burn_rate" in kinds

    def test_series_carry_the_tenants(self, serving_doc):
        assert "serving/tenant/a/throughput" in serving_doc["series"]
        assert "serving/tenant/b/latency_windowed" in serving_doc["series"]

    def test_rebuild_is_byte_identical(self, serving_doc):
        result, series = run_serving()
        again = build_serving_report(
            result, scenario="unit", window_ms=10.0, series=series
        )
        assert json.dumps(again, sort_keys=True) == json.dumps(
            serving_doc, sort_keys=True
        )

    @pytest.mark.parametrize("mutate", [
        lambda d: d.update(schema="maicc-obs-report/999"),
        lambda d: d.pop("serving"),
        lambda d: d.pop("alerts"),
        lambda d: d["alerts"][0].pop("threshold"),
        lambda d: d["serving"]["tenants"]["a"]["attribution"]["categories"]
        .update({"service/compute": "warp-drive"}),
        lambda d: d["serving"]["tenants"]["a"]["attribution"]["phases"]
        .pop("queue"),
    ])
    def test_validation_rejects_mutations(self, serving_doc, mutate):
        doc = copy.deepcopy(serving_doc)
        mutate(doc)
        with pytest.raises(ObservabilityError):
            validate_report(doc)


class TestXCheckReport:
    def test_document_validates(self, xcheck_doc):
        validate_report(xcheck_doc)

    def test_tiers_carry_phase_decompositions(self, xcheck_doc):
        workload = xcheck_doc["workloads"][NET.name]
        for tier in workload["tiers"].values():
            assert tier["phases"]
            total = 0.0
            for duration in tier["phases"].values():
                total += duration
            assert total == tier["total_cycles"]

    def test_validation_rejects_missing_tier_key(self, xcheck_doc):
        doc = copy.deepcopy(xcheck_doc)
        next(iter(doc["workloads"].values()))["tiers"]["analytic"].pop(
            "latency_ms"
        )
        with pytest.raises(ObservabilityError):
            validate_report(doc)


class TestRenderHtml:
    def test_serving_page_is_self_contained(self, serving_doc):
        page = render_html(serving_doc)
        assert page.startswith("<!DOCTYPE html>")
        assert "<script" not in page
        assert "http://" not in page and "https://" not in page
        assert "<svg" in page and "prefers-color-scheme: dark" in page
        for needle in ("burn_rate", "Per-tenant SLO", "Where the time went"):
            assert needle in page

    def test_xcheck_page_renders_tier_table(self, xcheck_doc):
        page = render_html(xcheck_doc)
        assert "analytic" in page and "streaming" in page
        assert "Cycle attribution by tier" in page

    def test_render_is_a_pure_function(self, serving_doc):
        assert render_html(serving_doc) == render_html(serving_doc)
