"""scripts/report.py end to end: artifacts exist, validate, and repeat
byte-for-byte — the same contract the CI ``obs-smoke`` job enforces."""

import json
import os
import subprocess
import sys

import pytest

ROOT = os.path.join(os.path.dirname(__file__), "..", "..")
SCRIPT = os.path.join(ROOT, "scripts", "report.py")


def run_report(tmp_path, stem, *argv):
    html = tmp_path / f"{stem}.html"
    doc = tmp_path / f"{stem}.json"
    env = dict(os.environ, PYTHONPATH=os.path.join(ROOT, "src"))
    proc = subprocess.run(
        [sys.executable, SCRIPT, *argv,
         "--out", str(html), "--json-out", str(doc)],
        capture_output=True, text=True, env=env, cwd=ROOT,
    )
    assert proc.returncode == 0, proc.stderr
    return html.read_bytes(), doc.read_bytes()


@pytest.fixture(scope="module")
def overloaded(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("obs-cli")
    return [
        run_report(
            tmp, f"run{i}", "serving",
            "--scenario", "mixed-rate-overloaded", "--policy", "elastic",
        )
        for i in range(2)
    ]


class TestServingCLI:
    def test_reruns_are_byte_identical(self, overloaded):
        (html1, json1), (html2, json2) = overloaded
        assert html1 == html2
        assert json1 == json2

    def test_overloaded_scenario_raises_burn_rate_alerts(self, overloaded):
        doc = json.loads(overloaded[0][1])
        kinds = [a["kind"] for a in doc["alerts"]]
        assert "burn_rate" in kinds

    def test_document_passes_schema_validation(self, overloaded):
        sys.path.insert(0, os.path.join(ROOT, "src"))
        try:
            from repro.obs.report import validate_report
        finally:
            sys.path.pop(0)
        validate_report(json.loads(overloaded[0][1]))

    def test_html_is_self_contained(self, overloaded):
        page = overloaded[0][0].decode()
        assert page.startswith("<!DOCTYPE html>")
        assert "<script" not in page


class TestXCheckCLI:
    def test_xcheck_reruns_are_byte_identical(self, tmp_path):
        argv = ("xcheck", "--workload", "tiny",
                "--backends", "analytic", "streaming")
        first = run_report(tmp_path, "x1", *argv)
        second = run_report(tmp_path, "x2", *argv)
        assert first == second
        doc = json.loads(first[1])
        assert doc["kind"] == "xcheck"
        assert set(doc["workloads"]) == {"small_cnn"}
