"""Result container and table renderer."""

import pytest

from repro.experiments.report import ExperimentResult, format_table


@pytest.fixture
def result():
    r = ExperimentResult(
        experiment="demo", title="Demo", columns=["name", "value"],
    )
    r.add_row(name="a", value=1.5)
    r.add_row(name="b", value=2_000_000.0)
    r.notes.append("a note")
    return r


class TestExperimentResult:
    def test_column_extraction(self, result):
        assert result.column("name") == ["a", "b"]

    def test_row_lookup(self, result):
        assert result.row_by("name", "b")["value"] == 2_000_000.0
        with pytest.raises(KeyError):
            result.row_by("name", "zzz")


class TestFormatting:
    def test_renders_header_rows_notes(self, result):
        text = format_table(result)
        assert "Demo" in text
        assert "a note" in text
        assert "1.5" in text

    def test_large_numbers_in_scientific(self, result):
        assert "2e+06" in format_table(result)

    def test_empty_table(self):
        r = ExperimentResult("e", "Empty", ["x"])
        assert "Empty" in format_table(r)

    def test_missing_cells_blank(self):
        r = ExperimentResult("e", "T", ["x", "y"])
        r.add_row(x=1)
        assert format_table(r)
