"""The ablation experiment drivers (CLI-facing)."""

import pytest

from repro.experiments import ablations


class TestSliceAblation:
    @pytest.fixture(scope="class")
    def result(self):
        return ablations.run_slices()

    def test_latency_improves_with_slices(self, result):
        latencies = [
            row["latency_ms"] for row in result.rows
            if isinstance(row["latency_ms"], float)
        ]
        assert latencies == sorted(latencies, reverse=True)

    def test_capacity_grows_with_slices(self, result):
        fpn = result.column("filters_per_node")
        assert fpn == sorted(fpn)


class TestPrecisionAblation:
    @pytest.fixture(scope="class")
    def result(self):
        return ablations.run_precision()

    def test_mac_cycles_quadratic(self, result):
        assert result.column("mac_cycles") == [4, 16, 64, 256]

    def test_lower_precision_faster(self, result):
        rows = {row["n_bits"]: row for row in result.rows}
        assert rows[2]["resnet_latency_ms"] < rows[8]["resnet_latency_ms"]

    def test_capacity_formula(self, result):
        rows = {row["n_bits"]: row for row in result.rows}
        for n in (2, 4, 8, 16):
            assert rows[n]["slots_per_slice"] == 64 // n - 1


class TestPrimitiveAblation:
    def test_mac_primitive_wins(self):
        result = ablations.run_primitives()
        rows = {row["approach"]: row for row in result.rows}
        ew = rows["element-wise (Neural Cache)"]["cycles_per_dot_product"]
        mac = rows["adder-tree MAC (MAICC)"]["cycles_per_dot_product"]
        assert ew / mac > 2.0


class TestPlacementAblation:
    def test_zigzag_minimal(self):
        result = ablations.run_placement()
        rows = {row["policy"]: row for row in result.rows}
        assert rows["zig-zag"]["flit_hops"] < rows["raster"]["flit_hops"]
        assert rows["raster"]["flit_hops"] < rows["random"]["flit_hops"]


class TestBatchAblation:
    def test_throughput_monotone(self):
        result = ablations.run_batch()
        throughputs = result.column("samples_per_s")
        assert throughputs == sorted(throughputs)


def test_cli_includes_ablations():
    from repro.experiments.runner import PAPER_EXPERIMENTS, REGISTRY

    assert set(PAPER_EXPERIMENTS) < set(REGISTRY)
    assert "ablation-placement" in REGISTRY
