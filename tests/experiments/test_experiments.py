"""Experiment drivers regenerate the paper's tables with the right shape.

Table 5 is exercised in the benchmark suite (it sweeps 14 cycle-level
runs); here it is covered by a reduced smoke check only.
"""

import json

import pytest

from repro.experiments import figure9, figure10, table4, table6, table7
from repro.experiments.report import format_table
from repro.experiments.runner import REGISTRY, run_experiment


@pytest.fixture(scope="module")
def t4():
    return table4.run()


@pytest.fixture(scope="module")
def t6():
    return table6.run()


@pytest.fixture(scope="module")
def t7():
    return table7.run()


class TestTable4:
    def test_three_nodes_compared(self, t4):
        assert t4.column("node") == ["Scalar core", "MAICC node", "Neural Cache"]

    def test_maicc_beats_neural_cache(self, t4):
        maicc = t4.row_by("node", "MAICC node")
        cache = t4.row_by("node", "Neural Cache")
        # Paper: 2.3x performance at half the memory.
        assert cache["cycles"] / maicc["cycles"] > 1.5
        assert maicc["memory_kb"] < cache["memory_kb"]

    def test_maicc_orders_faster_than_scalar(self, t4):
        scalar = t4.row_by("node", "Scalar core")
        maicc = t4.row_by("node", "MAICC node")
        assert scalar["cycles"] / maicc["cycles"] > 100

    def test_energy_ordering(self, t4):
        scalar = t4.row_by("node", "Scalar core")
        maicc = t4.row_by("node", "MAICC node")
        cache = t4.row_by("node", "Neural Cache")
        assert maicc["energy_j"] < cache["energy_j"] < scalar["energy_j"]


class TestTable6:
    def test_all_twenty_layers(self, t6):
        assert len(t6.rows) == 20

    def test_total_latency_ordering_in_notes(self, t6):
        runs = t6.raw
        assert (
            runs["heuristic"].latency_ms
            < runs["greedy"].latency_ms
            < runs["single-layer"].latency_ms
        )

    def test_greedy_counts_match_paper_exactly(self, t6):
        matches = sum(
            1 for row in t6.rows if row["greedy_nodes"] == row["paper_greedy"]
        )
        assert matches >= 15  # 15 of 20 layers match the paper's counts

    def test_heuristic_latency_near_paper(self, t6):
        assert t6.raw["heuristic"].latency_ms == pytest.approx(5.138, rel=0.25)


class TestTable7:
    def test_efficiency_ordering(self, t7):
        """MAICC > GPU > CPU in throughput/W (the headline claim)."""
        by = {row["platform"]: row for row in t7.rows}
        maicc = by["MAICC (210 cores)"]
        gpu = by["NVIDIA RTX 4090"]
        cpu = by["Intel i9-13900K"]
        assert maicc["thr_per_w"] > gpu["thr_per_w"] > cpu["thr_per_w"]

    def test_speedup_vs_cpu_near_4x(self, t7):
        by = {row["platform"]: row for row in t7.rows}
        ratio = by["MAICC (210 cores)"]["throughput"] / by["Intel i9-13900K"]["throughput"]
        assert ratio == pytest.approx(4.3, rel=0.3)

    def test_gpu_keeps_raw_throughput_lead(self, t7):
        by = {row["platform"]: row for row in t7.rows}
        assert by["NVIDIA RTX 4090"]["throughput"] > by["MAICC (210 cores)"]["throughput"]

    def test_efficiency_vs_gpu_near_1_8x(self, t7):
        by = {row["platform"]: row for row in t7.rows}
        ratio = by["MAICC (210 cores)"]["thr_per_w"] / by["NVIDIA RTX 4090"]["thr_per_w"]
        assert 1.2 < ratio < 2.6  # paper: 1.8x


class TestFigures:
    def test_figure9_waiting_dominates_greedy(self):
        result = figure9.run()
        rows = {row["strategy"]: row for row in result.rows}
        assert rows["greedy"]["wait_ifmap"] > rows["heuristic"]["wait_ifmap"]
        assert rows["greedy"]["wait_ifmap"] > rows["greedy"]["compute"]

    def test_figure10_fractions(self):
        result = figure10.run()
        rows = {row["block"]: row for row in result.rows}
        assert rows["cmem"]["area_fraction"] == pytest.approx(0.65, abs=0.03)
        assert rows["dram"]["energy_fraction"] > 0.5


class TestRunner:
    def test_registry_covers_all_experiments(self):
        assert {
            "table4", "table5", "table6", "table7", "figure9", "figure10",
        } <= set(REGISTRY)

    def test_unknown_experiment(self):
        with pytest.raises(SystemExit):
            run_experiment("table99")

    def test_formatting_smoke(self, t4):
        assert "Table 4" in format_table(t4)


class TestParallelPins:
    """Sharding an experiment across workers must not change one byte.

    The drivers are thin SweepSpec/grid instances over the shared sweep
    executor; the executor's order-preserving fork pool is what makes
    ``workers=N`` a pure throughput knob.
    """

    def test_table4_parallel_byte_identical(self, t4):
        parallel = table4.run(workers=2)
        assert format_table(parallel) == format_table(t4)

    def test_table6_parallel_byte_identical(self, t6):
        parallel = table6.run(workers=2)
        assert format_table(parallel) == format_table(t6)

    def test_runner_forwards_workers(self, t6):
        result = run_experiment("table6", workers=2)
        assert format_table(result) == format_table(t6)


class TestAsDict:
    """The JSON-safe bridge between the pinned tables and obs tooling."""

    def test_as_dict_is_json_serializable_and_complete(self, t4):
        doc = t4.as_dict()
        assert set(doc) == {"experiment", "title", "columns", "rows", "notes"}
        assert doc["experiment"] == "table4"
        assert doc["columns"] == t4.columns
        assert len(doc["rows"]) == len(t4.rows)
        json.dumps(doc)  # raw (live simulation objects) must be excluded

    def test_as_dict_is_deterministic_and_detached(self, t4):
        a, b = t4.as_dict(), t4.as_dict()
        assert a == b
        a["rows"][0]["node"] = "mutated"
        assert t4.rows[0].get("node") != "mutated"
