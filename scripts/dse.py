#!/usr/bin/env python3
"""Run an architecture design-space sweep on the parallel sweep engine.

Expands a named :class:`repro.dse.SweepSpec` (see ``--list-sweeps``),
evaluates every design point — map, statically verify, simulate on the
point's backend tier — sharded across ``--workers`` processes, and
consolidates the energy/area/latency tables, the paper-reference
comparison columns, and the per-(network, backend) Pareto frontiers.

All artifacts are byte-deterministic: the same sweep at any worker
count serializes to identical bytes (the CI ``dse-smoke`` job runs the
smoke sweep serially and with ``--workers 4`` and diffs the JSON).

Run:  PYTHONPATH=src python scripts/dse.py --sweep smoke --pareto
      PYTHONPATH=src python scripts/dse.py --sweep frontier --workers 4 \\
          --json-out dse.json --html-out dse.html
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.dse import SWEEPS, run_sweep  # noqa: E402
from repro.obs.html import render_html  # noqa: E402
from repro.obs.report import build_dse_report, validate_report  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "--sweep", choices=sorted(SWEEPS), default="smoke",
        help="named sweep from repro.dse.presets (default: smoke)",
    )
    parser.add_argument(
        "--workers", type=int, default=0, metavar="N",
        help="shard design points across N processes "
             "(0 = serial; output is byte-identical either way)",
    )
    parser.add_argument(
        "--pareto", action="store_true",
        help="print the per-(network, backend) Pareto frontiers",
    )
    parser.add_argument(
        "--json-out", metavar="PATH", default=None,
        help="write the consolidated DSEResult JSON here",
    )
    parser.add_argument(
        "--html-out", metavar="PATH", default=None,
        help="write the obs dashboard (dse report kind) here",
    )
    parser.add_argument(
        "--list-sweeps", action="store_true", help="list sweep names"
    )
    args = parser.parse_args(argv)

    if args.list_sweeps:
        for name in sorted(SWEEPS):
            spec = SWEEPS[name]
            print(f"{name}: {spec.size} points "
                  f"({', '.join(spec.networks)} on "
                  f"{', '.join(spec.backends)})")
        return 0

    spec = SWEEPS[args.sweep]
    result = run_sweep(spec, workers=args.workers)
    counts = {"ok": 0, "infeasible": 0, "rejected": 0, "error": 0}
    for point in result.points:
        counts[point.status] += 1
    print(
        f"{spec.name}: {len(result.points)} points "
        f"({counts['ok']} ok, {counts['infeasible']} infeasible, "
        f"{counts['rejected']} rejected, {counts['error']} error)"
    )

    if args.pareto:
        for group, members in result.pareto_groups().items():
            print(f"\n{group} frontier ({len(members)} points):")
            for r in members:
                print(
                    f"  {r.point.point_id}: {r.latency_ms:.4f} ms, "
                    f"{r.total_energy_j:.6g} J, "
                    f"{r.total_area_mm2:.2f} mm^2"
                )

    if args.json_out:
        with open(args.json_out, "w") as f:
            f.write(result.to_json())
        print(f"wrote {args.json_out}")
    if args.html_out:
        doc = build_dse_report(result)
        validate_report(doc)
        with open(args.html_out, "w") as f:
            f.write(render_html(doc))
        print(f"wrote {args.html_out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
