#!/usr/bin/env python3
"""Render a run into a self-contained HTML dashboard + JSON artifact.

Four report kinds, one schema (``maicc-obs-report/1``):

``serving``   replays a load scenario (``repro.serving.scenarios``) with
              telemetry and an SLO monitor attached, then renders the
              per-tenant latency attribution, the windowed time series
              (throughput, p99, queue depth, utilization, shed), and
              every burn-rate / queue-growth / resize-thrash alert.
``fleet``     runs a multi-chip fleet scenario (``repro.fleet``) and
              renders the datacenter view: per-model SLOs merged across
              replicas, per-chip load and utilization panels, crash
              recoveries, and autoscale events.
``xcheck``    runs each workload through every ``repro.sim`` backend on
              one mapped plan and renders the cross-tier comparison
              table beside each tier's cycle attribution.
``dse``       runs a named design-space sweep (``repro.dse.presets``)
              on the process-parallel sweep engine and renders the
              Pareto frontiers, the per-block energy/area panels, and
              the baseline comparison tables.

All artifacts are byte-deterministic: every number is simulation-
derived and nothing reads the wall clock, so the CI ``obs-smoke`` job
generates each report twice and diffs the bytes.

Run:  PYTHONPATH=src python scripts/report.py serving \\
          --scenario mixed-rate-overloaded --policy elastic \\
          --out report.html --json-out report.json
      PYTHONPATH=src python scripts/report.py fleet \\
          --scenario chip-crash --out fleet.html --json-out fleet.json
      PYTHONPATH=src python scripts/report.py xcheck --workload tiny \\
          --out xreport.html --json-out xreport.json
      PYTHONPATH=src python scripts/report.py dse --sweep smoke \\
          --workers 4 --out dse.html --json-out dse.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))
sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from xcheck import WORKLOADS  # noqa: E402  (sibling script, single source)

from repro import telemetry  # noqa: E402
from repro.core.multi_dnn import MultiDNNScheduler  # noqa: E402
from repro.obs.html import render_html  # noqa: E402
from repro.obs.monitor import SLOConfig, SLOMonitor  # noqa: E402
from repro.fleet import FLEET_SCENARIOS, FleetSimulator  # noqa: E402
from repro.fleet import build_scenario as build_fleet_scenario  # noqa: E402
from repro.dse import SWEEPS, run_sweep  # noqa: E402
from repro.obs.report import (  # noqa: E402
    build_dse_report,
    build_fleet_report,
    build_serving_report,
    build_xcheck_report,
    validate_report,
)
from repro.serving import (  # noqa: E402
    ElasticPolicy,
    ServiceModel,
    ServingPolicy,
    ServingSimulator,
    StaticPartitionPolicy,
    TimeSharedPolicy,
)
from repro.serving.scenarios import SCENARIOS  # noqa: E402
from repro.sim import available_backends, cross_check, simulate  # noqa: E402
from repro.sim.report import RunReport  # noqa: E402

POLICIES = ("static", "time-shared", "elastic")


def build_policy(name: str, scheduler: MultiDNNScheduler) -> ServingPolicy:
    if name == "static":
        return StaticPartitionPolicy(scheduler)
    if name == "time-shared":
        return TimeSharedPolicy(scheduler)
    if name == "elastic":
        return ElasticPolicy(ServiceModel(scheduler), control_interval_ms=10.0)
    raise SystemExit(f"unknown policy {name!r}")


def serving_report(args: argparse.Namespace) -> Dict[str, object]:
    tenant_factory, default_duration = SCENARIOS[args.scenario]
    duration_ms = args.duration_ms or default_duration
    scheduler = MultiDNNScheduler(backend=args.backend)
    policy = build_policy(args.policy, scheduler)
    sink = telemetry.Telemetry()
    monitor = SLOMonitor(SLOConfig(window_ms=args.window_ms))
    simulator = ServingSimulator(
        policy,
        discipline=args.discipline,
        telemetry=sink,
        monitor=monitor,
    )
    result = simulator.run(tenant_factory(), duration_ms)
    assert sink.registry is not None
    series = sink.registry.as_dict()["series"]
    print(
        f"{args.scenario}: {result.total_completed} completed, "
        f"{result.total_shed} shed, {len(result.alerts)} alert(s)"
    )
    return build_serving_report(
        result,
        scenario=args.scenario,
        window_ms=args.window_ms,
        series=series,  # type: ignore[arg-type]
    )


def fleet_report(args: argparse.Namespace) -> Dict[str, object]:
    scenario = build_fleet_scenario(args.scenario, args.chips)
    simulator = FleetSimulator(
        scenario.models,
        scenario.n_chips,
        balancer=args.balancer or scenario.balancer,
        seed=args.seed,
        batch_requests=scenario.batch_requests,
        failures=scenario.failures,
        autoscale=scenario.autoscale,
        workers=args.workers,
        scenario=scenario.name,
    )
    result = simulator.run(args.duration_ms or scenario.duration_ms)
    print(
        f"{scenario.name}: {result.total_generated} generated, "
        f"{result.total_completed} completed, {result.total_shed} shed, "
        f"{result.total_failed} failed, "
        f"{len(result.recoveries)} recovery(ies), "
        f"{len(result.scale_events)} scale event(s)"
    )
    return build_fleet_report(result)


def xcheck_report(args: argparse.Namespace) -> Dict[str, object]:
    names = sorted(WORKLOADS) if args.workload == "all" else [args.workload]
    backends = args.backends or list(available_backends())
    xchecks = []
    runs: Dict[str, Dict[str, RunReport]] = {}
    for name in names:
        network = WORKLOADS[name]()
        xchecks.append(
            cross_check(network, strategy=args.strategy, backends=backends)
        )
        runs[network.name] = {
            backend: simulate(network, backend=backend, strategy=args.strategy)
            for backend in backends
        }
        print(f"{name}: {len(backends)} tier(s) "
              f"{'agree' if xchecks[-1].ok else 'DISAGREE'}")
    return build_xcheck_report(xchecks, runs)


def dse_report(args: argparse.Namespace) -> Dict[str, object]:
    spec = SWEEPS[args.sweep]
    result = run_sweep(spec, workers=args.workers)
    counts = result.as_dict()["counts"]
    print(
        f"{spec.name}: {len(result.points)} points "
        f"({counts['ok']} ok, {counts['infeasible']} infeasible, "  # type: ignore[index]
        f"{counts['rejected']} rejected, {counts['error']} error)"  # type: ignore[index]
    )
    return build_dse_report(result)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="kind", required=True)

    serving = sub.add_parser("serving", help="serving-run dashboard")
    serving.add_argument("--scenario", choices=sorted(SCENARIOS), required=True)
    serving.add_argument("--policy", choices=POLICIES, default="elastic")
    serving.add_argument("--discipline", choices=("fifo", "edf"),
                         default="fifo")
    serving.add_argument("--duration-ms", type=float, default=None,
                         help="override the scenario's default window")
    serving.add_argument("--backend", default=None, metavar="NAME",
                         help="repro.sim tier service times are computed on")
    serving.add_argument("--window-ms", type=float, default=10.0,
                         help="SLO monitor / time-series window (default 10)")

    fleet = sub.add_parser("fleet", help="multi-chip fleet dashboard")
    fleet.add_argument("--scenario", choices=sorted(FLEET_SCENARIOS),
                       required=True)
    fleet.add_argument("--chips", type=int, default=None,
                       help="override the scenario's default chip count")
    fleet.add_argument("--balancer", default=None, metavar="NAME",
                       help="cross-chip balancer (default: the scenario's)")
    fleet.add_argument("--workers", type=int, default=0,
                       help="shard chips across N processes (0 = serial)")
    fleet.add_argument("--seed", type=int, default=0)
    fleet.add_argument("--duration-ms", type=float, default=None,
                       help="override the scenario's default window")

    xcheck = sub.add_parser("xcheck", help="cross-tier dashboard")
    xcheck.add_argument("--workload", choices=sorted(WORKLOADS) + ["all"],
                        default="all")
    xcheck.add_argument("--strategy", default="heuristic")
    xcheck.add_argument("--backends", nargs="*", default=None, metavar="NAME",
                        help="tiers to compare (default: all registered)")

    dse = sub.add_parser("dse", help="design-space exploration dashboard")
    dse.add_argument("--sweep", choices=sorted(SWEEPS), default="smoke")
    dse.add_argument("--workers", type=int, default=0,
                     help="shard design points across N processes "
                          "(0 = serial; output is byte-identical)")

    for p in (serving, fleet, xcheck, dse):
        p.add_argument("--out", metavar="PATH", default=None,
                       help="write the HTML dashboard here")
        p.add_argument("--json-out", metavar="PATH", default=None,
                       help="write the JSON report document here")

    args = parser.parse_args(argv)
    if args.kind == "serving":
        doc = serving_report(args)
    elif args.kind == "fleet":
        doc = fleet_report(args)
    elif args.kind == "dse":
        doc = dse_report(args)
    else:
        doc = xcheck_report(args)
    validate_report(doc)

    if args.json_out:
        with open(args.json_out, "w") as f:
            json.dump(doc, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"wrote {args.json_out}")
    if args.out:
        with open(args.out, "w") as f:
            f.write(render_html(doc))
        print(f"wrote {args.out}")
    if not args.out and not args.json_out:
        print("(no --out/--json-out given; report validated only)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
