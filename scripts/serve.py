#!/usr/bin/env python3
"""Online multi-tenant serving on the MAICC array.

Replays a load scenario against one (or all) serving policies and reports
per-tenant SLO figures: latency percentiles, deadline-miss rate, shed
requests, goodput, and — for the elastic policy — every applied
re-partitioning with its re-staging stall.

Scenarios
---------
``mixed-rate``  Three sensor-fusion tenants (camera / lidar / radar) with
                Poisson arrivals whose rates are mismatched with their
                models' MAC weights — the regime where elastic partitions
                beat a static split.
``smoke``       Two tiny tenants at low Poisson rates; finishes in well
                under a second and must shed nothing (the CI
                ``serving-smoke`` job runs this twice and diffs the JSON).
``bursty``      A steady tenant beside one whose trace fires a dense
                burst mid-run; exercises EDF displacement and queue
                bounds.

Run:  python scripts/serve.py --scenario mixed-rate --policy elastic
      python scripts/serve.py --scenario smoke --policy all --json-out out.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import telemetry
from repro.core.multi_dnn import MultiDNNScheduler
from repro.serving import (
    ElasticPolicy,
    ServiceModel,
    ServingPolicy,
    ServingRunResult,
    ServingSimulator,
    StaticPartitionPolicy,
    TimeSharedPolicy,
)
from repro.serving.scenarios import SCENARIOS

POLICIES = ("static", "time-shared", "elastic")


def build_policy(
    name: str,
    scheduler: MultiDNNScheduler,
    *,
    decision_backend: str = None,
) -> ServingPolicy:
    if name == "static":
        return StaticPartitionPolicy(scheduler)
    if name == "time-shared":
        return TimeSharedPolicy(scheduler)
    if name == "elastic":
        return ElasticPolicy(
            ServiceModel(scheduler),
            control_interval_ms=10.0,
            decision_backend=decision_backend,
        )
    raise SystemExit(f"unknown policy {name!r}")


def print_report(result: ServingRunResult) -> None:
    print(f"\n=== policy={result.policy} discipline={result.discipline} "
          f"duration={result.duration_ms:g} ms ===")
    header = (f"{'tenant':<10} {'arriv':>6} {'done':>6} {'shed':>5} "
              f"{'p50 ms':>8} {'p95 ms':>8} {'p99 ms':>8} "
              f"{'miss%':>6} {'goodput/s':>10}")
    print(header)
    for name, report in sorted(result.reports.items()):
        print(f"{name:<10} {report.arrivals:>6} {report.completed:>6} "
              f"{report.shed:>5} {report.p50_ms:>8.3f} {report.p95_ms:>8.3f} "
              f"{report.p99_ms:>8.3f} {100 * report.deadline_miss_rate:>6.1f} "
              f"{report.goodput_rps(result.duration_ms):>10.1f}")
    print(f"worst p99 {result.worst_p99_ms:.3f} ms | "
          f"shed {result.total_shed} | "
          f"misses {result.total_deadline_misses} | "
          f"utilization {result.utilization():.2f}")
    if result.resizes:
        print(f"{len(result.resizes)} resize(s):")
        for event in result.resizes:
            shares = " ".join(
                f"{k}={v}" for k, v in sorted(event.shares.items())
            )
            worst_stall = max(event.stall_ms.values(), default=0.0)
            print(f"  t={event.time_ms:8.1f} ms  {shares}  "
                  f"(max stall {worst_stall:.3f} ms, "
                  f"{event.placements_recomputed} placements)")
    elif result.policy == "elastic":
        print("no resizes (demand matched the initial partition)")


def main() -> int:
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    parser.add_argument("--scenario", choices=sorted(SCENARIOS), required=True)
    parser.add_argument("--policy", choices=POLICIES + ("all",),
                        default="elastic")
    parser.add_argument("--discipline", choices=("fifo", "edf"), default="fifo")
    parser.add_argument("--duration-ms", type=float, default=None,
                        help="override the scenario's default window")
    parser.add_argument("--backend", default=None, metavar="NAME",
                        help="repro.sim tier service times are computed on "
                             "(default: streaming, the authoritative tier)")
    parser.add_argument("--decision-backend", default=None, metavar="NAME",
                        help="cheap repro.sim tier the elastic policy gates "
                             "resize decisions on (e.g. analytic); SLO "
                             "accounting stays on --backend")
    parser.add_argument("--json-out", default=None,
                        help="write the run result(s) as JSON")
    parser.add_argument("--metrics-out", default=None,
                        help="write the telemetry metrics registry as JSON")
    parser.add_argument("--trace-out", default=None,
                        help="write a Perfetto/Chrome trace of the run(s)")
    parser.add_argument("--assert-no-shed", action="store_true",
                        help="exit non-zero if any request was shed")
    args = parser.parse_args()

    tenant_factory, default_duration = SCENARIOS[args.scenario]
    duration_ms = args.duration_ms or default_duration
    policies = list(POLICIES) if args.policy == "all" else [args.policy]

    scheduler = MultiDNNScheduler(backend=args.backend)
    sink = telemetry.Telemetry()
    results: Dict[str, ServingRunResult] = {}
    for policy_name in policies:
        policy = build_policy(
            policy_name, scheduler, decision_backend=args.decision_backend
        )
        simulator = ServingSimulator(
            policy, discipline=args.discipline, telemetry=sink
        )
        results[policy_name] = simulator.run(tenant_factory(), duration_ms)
        print_report(results[policy_name])

    if len(results) > 1:
        print("\n--- worst-tenant p99 across policies ---")
        for name, result in results.items():
            print(f"{name:>12}: {result.worst_p99_ms:8.3f} ms")

    if args.json_out:
        payload = {name: r.as_dict() for name, r in results.items()}
        with open(args.json_out, "w") as f:
            json.dump(payload, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"\nwrote {args.json_out}")
    if args.metrics_out:
        with open(args.metrics_out, "w") as f:
            f.write(sink.registry.to_json(indent=2))
            f.write("\n")
        print(f"wrote {args.metrics_out}")
    if args.trace_out:
        chrome = sink.trace.to_chrome()
        telemetry.validate_chrome_trace(chrome)
        with open(args.trace_out, "w") as f:
            json.dump(chrome, f)
            f.write("\n")
        print(f"wrote {args.trace_out} ({len(sink.trace)} events)")

    if args.assert_no_shed:
        total = sum(r.total_shed for r in results.values())
        if total:
            print(f"ASSERTION FAILED: {total} request(s) shed", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
