#!/usr/bin/env python3
"""Run a workload with telemetry enabled; write metrics.json + trace.json.

The metrics file is the full :class:`~repro.telemetry.MetricsRegistry`
export; the trace file is Chrome trace-event JSON, loadable in Perfetto
(https://ui.perfetto.dev) or ``chrome://tracing`` — one track per core /
NoC link / DRAM bank / layer.  All timestamps are simulation time, so two
identical invocations produce byte-identical files.

Workloads:

* ``tiny`` — a smoke workload exercising every instrumented subsystem:
  a small bit-true node group, a cycle-level kernel on one core, a burst
  of contended NoC packets, a sweep of DRAM accesses, and a tagged event
  queue.  Used by the CI trace-schema job.
* ``resnet18-segment`` — the bit-true ResNet18 conv1_x segment of
  ``scripts/bench.py`` (6x6 ifmap, 64 channels) on a full node group.
* ``table4`` — the paper's single-node Table 4 workload on the
  cycle-level pipeline (slowest; ~minutes).

Run:  PYTHONPATH=src python scripts/trace_run.py --workload tiny \\
          --metrics-out metrics.json --trace-out trace.json --validate
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import numpy as np

from repro import telemetry
from repro.core.functional import FunctionalNodeGroup, bit_true_min_nodes
from repro.core.node import MAICCNode, table4_workload
from repro.dram.controller import DRAMController
from repro.mapping.capacity import CapacityModel
from repro.nn.workloads import ConvLayerSpec, NetworkSpec, small_cnn_spec
from repro.noc.mesh import MeshNoC
from repro.noc.packet import Packet, PacketKind
from repro.riscv.core import Core
from repro.riscv.memory import DRAM_BASE
from repro.sim import available_backends, simulate
from repro.telemetry.hooks import publish_noc
from repro.telemetry.trace import validate_chrome_trace
from repro.utils.events import EventQueue


def _sim_summary(network: NetworkSpec, backend: str) -> dict:
    """Deterministic chip-tier numbers for the selected repro.sim tier."""
    report = simulate(network, backend=backend)
    return {
        "backend": report.backend,
        "total_cycles": report.total_cycles,
        "latency_ms": report.latency_ms,
        "segments": len(report.runs),
    }


def _segment_group(spec: ConvLayerSpec, seed: int) -> FunctionalNodeGroup:
    rng = np.random.default_rng(seed)
    weights = rng.integers(-128, 128, (spec.m, spec.c, spec.r, spec.s))
    bias = rng.integers(-1000, 1000, spec.m)
    group = FunctionalNodeGroup(
        spec, weights, bias,
        num_computing=bit_true_min_nodes(spec, CapacityModel()),
        bit_true=True,
    )
    group.run(rng.integers(-128, 128, (spec.c, spec.h, spec.w)))
    return group


def run_tiny(sink: telemetry.Telemetry, backend: str = "streaming") -> dict:
    """Touch every instrumented subsystem once, quickly."""
    # 1. Functional tier: a small bit-true node group (per-core + layer tracks).
    spec = ConvLayerSpec(
        index=0, name="tiny-conv", h=4, w=4, c=16, m=4,
        r=3, s=3, stride=1, padding=1, n_bits=8,
    )
    group = _segment_group(spec, seed=7)

    # 2. Cycle tier: one kernel on one core (kernel span + pipeline stats).
    core = Core()
    a = np.arange(-50, 50)
    b = np.arange(0, 100)
    core.cmem.store_vector_transposed(1, 0, a, 8, signed=True)
    core.cmem.store_vector_transposed(1, 8, b, 8, signed=True)
    stats = core.run("mac.c a0, 1, 0, 8, 8\nmac.c a1, 1, 0, 8, 8\nhalt")

    # 3. NoC: a contended neighbour stream (link spans + occupancy).
    noc = MeshNoC()
    for i in range(8):
        noc.send(
            Packet(src=(0, 0), dst=(2, 1), kind=PacketKind.ROW_TRANSFER),
            inject_time=i,
        )
    publish_noc(sink, "noc", noc)

    # 4. DRAM: a row-hit/miss sweep (bank spans + counters).
    dram = DRAMController()
    t = 0
    for i in range(16):
        t += dram.access_latency(DRAM_BASE + 64 * i, is_write=i % 2 == 0, time=t)
    dram.publish_stats()

    # 5. Event kernel: tagged events land on the events track.
    queue = EventQueue()
    for i in range(4):
        queue.schedule(float(i), lambda: None, tag="tick")
    queue.run()

    return {
        "group_macs": int(group.stats.macs),
        "kernel_cycles": int(stats.cycles),
        "noc_packets": int(noc.stats.packets),
        "dram_accesses": int(dram.stats.accesses),
        "events": int(queue.processed),
        "sim": _sim_summary(small_cnn_spec(), backend),
    }


def run_resnet18_segment(
    sink: telemetry.Telemetry, backend: str = "streaming"
) -> dict:
    # conv1_x of ResNet18 with the spatial extent cut to 6x6 (as in
    # scripts/bench.py) so the bit-true group finishes in seconds.
    spec = ConvLayerSpec(
        index=1, name="conv1_x[6x6]", h=6, w=6, c=64, m=64,
        r=3, s=3, stride=1, padding=1, n_bits=8,
    )
    group = _segment_group(spec, seed=3)
    return {
        "nodes": group.num_computing,
        "vectors": int(group.stats.vectors_streamed),
        "macs": int(group.stats.macs),
        "sim": _sim_summary(
            NetworkSpec(name="resnet18-segment", layers=(spec,)), backend
        ),
    }


def run_table4(sink: telemetry.Telemetry, backend: str = "streaming") -> dict:
    spec = table4_workload()
    rng = np.random.default_rng(4)
    node = MAICCNode(
        spec,
        rng.integers(-128, 128, (spec.m, spec.c, spec.r, spec.s)),
        rng.integers(-1000, 1000, spec.m),
    )
    result = node.run(rng.integers(-128, 128, (spec.c, spec.h, spec.w)))
    return {
        "cycles": int(result.stats.cycles),
        "instructions": int(result.stats.instructions),
        "ipc": result.stats.ipc,
    }


WORKLOADS = {
    "tiny": run_tiny,
    "resnet18-segment": run_resnet18_segment,
    "table4": run_table4,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workload", choices=sorted(WORKLOADS), default="tiny")
    parser.add_argument(
        "--backend", choices=sorted(available_backends()), default="streaming",
        help="repro.sim tier for the chip-level summary section",
    )
    parser.add_argument("--metrics-out", metavar="PATH", default="metrics.json")
    parser.add_argument("--trace-out", metavar="PATH", default="trace.json")
    parser.add_argument(
        "--validate", action="store_true",
        help="validate the emitted trace against the Chrome trace-event schema",
    )
    args = parser.parse_args(argv)

    sink = telemetry.Telemetry()
    with telemetry.use(sink):
        summary = WORKLOADS[args.workload](sink, backend=args.backend)

    metrics = {"workload": args.workload, "summary": summary,
               "registry": sink.registry.as_dict()}
    with open(args.metrics_out, "w") as f:
        json.dump(metrics, f, indent=2, sort_keys=True)
        f.write("\n")
    trace = sink.trace.to_chrome()
    with open(args.trace_out, "w") as f:
        json.dump(trace, f, indent=2, sort_keys=True)
        f.write("\n")

    if args.validate:
        with open(args.trace_out) as f:
            n = validate_chrome_trace(json.load(f))
        print(f"trace OK: {n} events pass the Chrome trace-event schema")

    print(f"workload {args.workload}: {summary}")
    print(f"wrote {os.path.abspath(args.metrics_out)}")
    print(f"wrote {os.path.abspath(args.trace_out)} (open in https://ui.perfetto.dev)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
