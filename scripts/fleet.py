#!/usr/bin/env python3
"""Simulated multi-chip datacenter serving of MAICC arrays.

Places model replicas across N simulated chips (first-fit-decreasing
with capacity floors and the PLAN-rule preflight), routes every request
through a cluster balancer, runs each chip's full serving simulation,
and reports the fleet view: per-model latency percentiles merged across
replicas, per-chip utilization, crash recoveries, autoscale events, and
the request-conservation identity.

Scenarios (see ``repro.fleet.scenarios``)
-----------------------------------------
``fleet-smoke``       4 chips, three models, comfortable load — must
                      shed nothing (the CI ``fleet-smoke`` job runs this
                      twice and diffs the JSON).
``mixed-rate-fleet``  8 chips, one degraded 2.25x — separates blind
                      round-robin from load-aware balancers.
``chip-crash``        Chip 0 crashes mid-run; replicas re-place onto
                      survivors, queued work lands in ``failed``.
``autoscale-burst``   A diurnal ramp against one starting replica; the
                      epoch autoscaler follows the wave.
``diurnal-million``   16 chips, >= 1M simulated requests over a
                      day-curve — the scale scenario.

Run:  python scripts/fleet.py --chips 16 --scenario diurnal-million
      python scripts/fleet.py --scenario mixed-rate-fleet --balancer all
      python scripts/fleet.py --scenario fleet-smoke --json-out out.json
"""

from __future__ import annotations

import argparse
import sys
import os
from typing import Dict

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.fleet import (
    BALANCERS,
    FLEET_SCENARIOS,
    FleetResult,
    FleetSimulator,
    build_scenario,
)


def print_report(result: FleetResult) -> None:
    print(f"\n=== scenario={result.scenario} balancer={result.balancer} "
          f"chips={result.n_chips} duration={result.duration_ms:g} ms ===")
    header = (f"{'model':<10} {'gen':>8} {'done':>8} {'shed':>6} "
              f"{'fail':>5} {'rshed':>5} {'p50 ms':>8} {'p95 ms':>8} "
              f"{'p99 ms':>8} {'repl':>4}")
    print(header)
    for name, m in sorted(result.models.items()):
        print(f"{name:<10} {m.generated:>8} {m.completed:>8} {m.shed:>6} "
              f"{m.failed:>5} {m.router_shed:>5} "
              f"{m.histogram.percentile(50.0):>8.3f} "
              f"{m.histogram.percentile(95.0):>8.3f} "
              f"{m.histogram.percentile(99.0):>8.3f} "
              f"{m.replicas_final:>4}")
    print(f"fleet p50 {result.fleet_percentile(50.0):.3f} ms | "
          f"p95 {result.fleet_percentile(95.0):.3f} ms | "
          f"p99 {result.fleet_percentile(99.0):.3f} ms | "
          f"worst-model p99 {result.worst_model_p99_ms:.3f} ms")
    utilization = result.chip_utilization()
    cells = " ".join(
        f"{chip}:{u:.2f}" for chip, u in sorted(utilization.items())
    )
    mean = sum(utilization.values()) / len(utilization) if utilization else 0.0
    print(f"chip utilization  {cells}  (mean {mean:.2f})")
    print(f"conserved={result.conserved} shed={result.total_shed} "
          f"failed={result.total_failed} "
          f"router_shed={result.total_router_shed}")
    if result.recoveries:
        for event in result.recoveries:
            print(f"  recovery t={event.time_ms:8.1f} ms  {event.model} "
                  f"chip {event.from_chip} -> {event.to_chip} "
                  f"(ready t={event.ready_ms:.1f} ms)")
    if result.scale_events:
        ups = sum(1 for e in result.scale_events if e.direction == "up")
        downs = len(result.scale_events) - ups
        print(f"  {len(result.scale_events)} scale event(s): "
              f"{ups} up / {downs} down "
              f"({result.router_alert_count} burn alert(s))")


def main() -> int:
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    parser.add_argument("--scenario", choices=sorted(FLEET_SCENARIOS),
                        required=True)
    parser.add_argument("--chips", type=int, default=None,
                        help="override the scenario's default chip count")
    parser.add_argument("--balancer",
                        choices=tuple(sorted(BALANCERS)) + ("all",),
                        default=None,
                        help="cross-chip balancer (default: the scenario's)")
    parser.add_argument("--workers", type=int, default=0,
                        help="shard chips across N processes "
                             "(byte-identical to serial; 0 = serial)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--duration-ms", type=float, default=None,
                        help="override the scenario's default window")
    parser.add_argument("--json-out", default=None,
                        help="write the fleet result(s) as JSON")
    parser.add_argument("--metrics-out", default=None,
                        help="write the merged fleet metrics registry as JSON")
    parser.add_argument("--assert-no-shed", action="store_true",
                        help="exit non-zero if any request was shed or failed")
    parser.add_argument("--assert-conserved", action="store_true",
                        help="exit non-zero unless every model conserves "
                             "requests")
    args = parser.parse_args()

    scenario = build_scenario(args.scenario, args.chips)
    duration_ms = args.duration_ms or scenario.duration_ms
    if args.balancer == "all":
        balancers = sorted(BALANCERS)
    else:
        balancers = [args.balancer or scenario.balancer]

    results: Dict[str, FleetResult] = {}
    for balancer in balancers:
        simulator = FleetSimulator(
            scenario.models,
            scenario.n_chips,
            balancer=balancer,
            seed=args.seed,
            batch_requests=scenario.batch_requests,
            failures=scenario.failures,
            autoscale=scenario.autoscale,
            collect_metrics=args.metrics_out is not None,
            workers=args.workers,
            scenario=scenario.name,
        )
        results[balancer] = simulator.run(duration_ms)
        print_report(results[balancer])

    if len(results) > 1:
        print("\n--- worst-model p99 across balancers ---")
        for name, result in results.items():
            print(f"{name:>12}: {result.worst_model_p99_ms:8.3f} ms")

    if args.json_out:
        if len(results) == 1:
            payload = next(iter(results.values())).to_json()
        else:
            import json
            payload = json.dumps(
                {name: r.as_dict() for name, r in results.items()},
                indent=2, sort_keys=True,
            )
        with open(args.json_out, "w") as f:
            f.write(payload)
            f.write("\n")
        print(f"\nwrote {args.json_out}")
    if args.metrics_out:
        merged = next(iter(results.values())).metrics
        if merged is None:
            print("no metrics collected", file=sys.stderr)
            return 1
        with open(args.metrics_out, "w") as f:
            f.write(merged.to_json(indent=2))
            f.write("\n")
        print(f"wrote {args.metrics_out}")

    if args.assert_conserved:
        for name, result in results.items():
            if not result.conserved:
                print(f"ASSERTION FAILED: balancer {name} lost requests",
                      file=sys.stderr)
                return 1
    if args.assert_no_shed:
        total = sum(
            r.total_shed + r.total_failed + r.total_router_shed
            for r in results.values()
        )
        if total:
            print(f"ASSERTION FAILED: {total} request(s) shed or failed",
                  file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
