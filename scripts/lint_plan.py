#!/usr/bin/env python
"""Whole-system static analysis of mapped plans from the shell.

``lint_kernel.py``'s system-scope sibling: where that script checks one
assembled program on one core, this one checks a *deployment* — the
mapped :class:`~repro.mapping.segmentation.SegmentPlan` of a network, or
the co-resident partition layout of a serving scenario — against the
``PLAN6xx`` resource rules, the ``NOC7xx`` channel-dependency deadlock
checker, and the ``DET8xx`` event-batch commutativity rules (catalog in
``docs/ANALYSIS.md``).

Examples::

    # Lint the resnet18 single-chip plan, human-readable diagnostics.
    PYTHONPATH=src python scripts/lint_plan.py --network resnet18

    # Lint the 3-tenant mixed-rate serving layout, machine-readable.
    PYTHONPATH=src python scripts/lint_plan.py --tenants mixed-rate --json

    # CI negative test: inject a known-broken artifact and expect exit 1.
    PYTHONPATH=src python scripts/lint_plan.py --network resnet18 --broken cmem

    # Cross-check the static NOC verdict against the event-kernel replay.
    PYTHONPATH=src python scripts/lint_plan.py --network resnet18 --replay

Exit status: 0 clean, 1 error diagnostics (or, with ``--strict``,
warnings; or a deadlocked ``--replay``), 2 usage/build failure.
JSON output is deterministic: two runs over the same inputs are
byte-identical (the CI ``analysis-smoke`` job diffs them).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional, Sequence, Tuple

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.analysis import (
    ANALYSIS_FAMILIES,
    EventAccess,
    LintReport,
    ResidentPlan,
    RouteFlow,
    analyze_plan,
    plan_route_flows,
    replay_routes,
)
from repro.core.multi_dnn import MultiDNNScheduler
from repro.errors import ReproError
from repro.nn.workloads import resnet18_spec, small_cnn_spec
from repro.serving.scenarios import SCENARIOS
from repro.sim.accounting import plan_network
from repro.sim.config import SimConfig

NETWORKS = {
    "resnet18": resnet18_spec,
    "small-cnn": small_cnn_spec,
}

#: The classical 4-flow turn cycle (west-first on a 2x2 block): each
#: flow's first link is the one the previous flow needs next.  X-Y
#: routing cannot produce these paths; ``--broken noc`` injects them.
DEADLOCK_FLOWS = (
    RouteFlow("broken/east", (0, 0), (1, 1), path=((0, 0), (1, 0), (1, 1))),
    RouteFlow("broken/south", (1, 0), (0, 1), path=((1, 0), (1, 1), (0, 1))),
    RouteFlow("broken/west", (1, 1), (0, 0), path=((1, 1), (0, 1), (0, 0))),
    RouteFlow("broken/north", (0, 1), (1, 0), path=((0, 1), (0, 0), (1, 0))),
)

#: Two actors writing one resource in the same sim-time batch: the drain
#: order is heap-insertion order, not a property of the model — DET801.
CONFLICT_BATCH = (
    EventAccess(time=0.0, actor="broken-a", tag="wave", writes=("tile42",)),
    EventAccess(time=0.0, actor="broken-b", tag="wave", writes=("tile42",)),
)


def _network_residents(
    name: str, strategy: str
) -> Tuple[List[ResidentPlan], SimConfig]:
    config = SimConfig()
    plan = plan_network(NETWORKS[name](), strategy, config)
    return [ResidentPlan(name=name, plan=plan)], config


def _scenario_residents(
    scenario: str, strategy: str
) -> Tuple[List[ResidentPlan], SimConfig]:
    """The scenario's static partition layout, derived without sim cycles.

    Shares come from the same proportional partitioner
    :class:`~repro.serving.StaticPartitionPolicy` uses; each tenant's
    plan is mapped onto its share and regions are packed in tenant
    order, mirroring :meth:`MultiDNNScheduler.run`.
    """
    tenants = SCENARIOS[scenario][0]()
    scheduler = MultiDNNScheduler()
    shares = scheduler.partition([t.network for t in tenants])
    residents: List[ResidentPlan] = []
    offset = 0
    for tenant, share in zip(tenants, shares):
        plan = plan_network(
            tenant.network, strategy, SimConfig(array_size=share)
        )
        residents.append(
            ResidentPlan(name=tenant.name, plan=plan, region_start=offset)
        )
        offset += share
    return residents, SimConfig(array_size=scheduler.array_size)


def _inject_cmem_break(residents: Sequence[ResidentPlan]) -> None:
    """Zero one layer's node group: PLAN601 (below the capacity floor)."""
    segment = residents[0].plan.segments[0]
    segment.allocation.nodes[segment.layers[0].index] = 0


def _flows_for(residents: Sequence[ResidentPlan]) -> List[RouteFlow]:
    flows: List[RouteFlow] = []
    for resident in residents:
        flows.extend(
            plan_route_flows(
                resident.plan,
                start_offset=resident.region_start,
                prefix=f"{resident.name}/",
            )
        )
    return flows


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="lint_plan",
        description="Static plan/NoC/determinism analyzer for MAICC "
        "deployments (PLAN6xx / NOC7xx / DET8xx).",
    )
    target = parser.add_mutually_exclusive_group()
    target.add_argument(
        "--network", choices=sorted(NETWORKS), default=None,
        help="lint this network's single-chip plan",
    )
    target.add_argument(
        "--tenants", choices=sorted(SCENARIOS), default=None, metavar="NAME",
        help="lint a serving scenario's co-resident partition layout "
        f"({', '.join(sorted(SCENARIOS))})",
    )
    parser.add_argument(
        "--strategy", default="heuristic",
        help="mapping strategy the plan is built with (default: heuristic)",
    )
    parser.add_argument(
        "--families", nargs="+", choices=ANALYSIS_FAMILIES, metavar="FAM",
        default=list(ANALYSIS_FAMILIES),
        help="analyzer families to run (default: all of "
        f"{', '.join(ANALYSIS_FAMILIES)})",
    )
    parser.add_argument(
        "--broken", choices=("cmem", "noc", "det"), default=None,
        help="inject a known-broken artifact (CI negative tests): "
        "'cmem' zeroes a layer's node group, 'noc' adds the classic "
        "4-flow turn cycle, 'det' adds a write-write event batch",
    )
    parser.add_argument(
        "--replay", action="store_true",
        help="also replay the route set on the event kernel and report "
        "whether it stalls (dynamic agreement with NOC701)",
    )
    parser.add_argument("--json", action="store_true", help="emit JSON diagnostics")
    parser.add_argument(
        "--strict", action="store_true", help="treat warnings as errors"
    )
    args = parser.parse_args(argv)

    if args.network is None and args.tenants is None:
        parser.error("give --network or --tenants")

    try:
        if args.tenants is not None:
            label = f"tenants:{args.tenants}"
            residents, config = _scenario_residents(args.tenants, args.strategy)
        else:
            label = f"network:{args.network}"
            residents, config = _network_residents(args.network, args.strategy)
    except (OSError, ReproError) as exc:
        print(f"lint_plan: {exc}", file=sys.stderr)
        return 2

    routes: Optional[List[RouteFlow]] = None
    batches: Optional[List[EventAccess]] = None
    if args.broken == "cmem":
        _inject_cmem_break(residents)
    elif args.broken == "noc":
        routes = _flows_for(residents) + list(DEADLOCK_FLOWS)
    elif args.broken == "det":
        batches = list(CONFLICT_BATCH)

    report: LintReport = analyze_plan(
        config=config,
        co_resident=residents,
        routes=routes,
        event_batches=batches,
        families=tuple(args.families),
    )

    payload = {
        "target": label,
        "strategy": args.strategy,
        "families": list(args.families),
        "broken": args.broken,
        "residents": [
            {
                "name": r.name,
                "region_start": r.region_start,
                "footprint": r.footprint,
                "segments": len(r.plan.segments),
            }
            for r in residents
        ],
        **report.to_dict(),
    }

    replay_deadlocked = False
    if args.replay:
        flows = routes if routes is not None else _flows_for(residents)
        replay = replay_routes(flows)
        replay_deadlocked = replay.deadlocked
        payload["replay"] = {
            "flows": len(flows),
            "completed": len(replay.completed),
            "stalled": sorted(replay.stalled),
            "deadlocked": replay.deadlocked,
            "time": replay.time,
        }

    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(f"== {label}")
        for entry in payload["residents"]:
            print(
                f"  resident {entry['name']}: "
                f"region [{entry['region_start']}, "
                f"{entry['region_start'] + entry['footprint']}), "
                f"{entry['segments']} segment(s)"
            )
        print(report.render())
        if args.replay:
            rep = payload["replay"]
            verdict = (
                f"DEADLOCKED ({len(rep['stalled'])} flow(s) stalled)"
                if rep["deadlocked"]
                else f"drained ({rep['completed']} flow(s))"
            )
            print(f"replay: {verdict} at t={rep['time']:g}")

    if report.errors or (args.strict and report.warnings) or replay_deadlocked:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
