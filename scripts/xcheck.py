#!/usr/bin/env python3
"""Cross-tier differential check: all simulation backends, one plan.

Runs each workload through every registered ``repro.sim`` backend on the
same mapped plan and asserts the network-level cycle totals agree within
the per-tier envelope of ``repro.sim.xcheck`` (the ``cycle`` tier must
additionally report every executed layer bit-identical to the quantized
reference).  Exits non-zero on any violation.

All numbers are simulation-derived and deterministic: two identical
invocations produce byte-identical ``--json-out`` files (the CI
``xcheck-smoke`` job diffs them).

Workloads:

* ``tiny`` — the 4-layer small CNN; all four tiers in well under a
  minute.
* ``resnet18-segment`` — a conv4_x-shaped two-layer ResNet18 block with
  the spatial extent cut to 6x6 so the cycle tier's functional execution
  stays fast while the channel/filter dimensions stay full-size.

Run:  PYTHONPATH=src python scripts/xcheck.py --workload all \\
          --json-out xcheck.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.nn.workloads import ConvLayerSpec, NetworkSpec, small_cnn_spec
from repro.sim import available_backends, cross_check


def resnet18_segment_spec() -> NetworkSpec:
    """conv4_x of ResNet18 with the spatial extent cut to 6x6."""
    layers = tuple(
        ConvLayerSpec(
            index=i + 1, name=f"conv4_{i + 1}[6x6]", h=6, w=6, c=256, m=256,
            r=3, s=3, stride=1, padding=1, n_bits=8,
        )
        for i in range(2)
    )
    return NetworkSpec(name="resnet18-segment", layers=layers)


WORKLOADS = {
    "tiny": small_cnn_spec,
    "resnet18-segment": resnet18_segment_spec,
}


def print_report(report) -> None:
    print(f"\n{report.network} (strategy={report.strategy}, "
          f"reference={report.reference})")
    print(f"{'backend':>10} {'cycles':>16} {'latency_ms':>12} "
          f"{'ratio':>8} {'envelope':>14}  ok")
    for check in report.checks:
        env = f"[{check.lo:.2f}, {check.hi:.2f}]"
        print(f"{check.backend:>10} {check.total_cycles:16.1f} "
              f"{check.latency_ms:12.6f} {check.ratio:8.4f} {env:>14}  "
              f"{'yes' if check.ok else 'NO'}")
        for note in check.notes:
            print(f"{'':>10}   {note}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--workload", choices=sorted(WORKLOADS) + ["all"], default="all"
    )
    parser.add_argument(
        "--strategy", default="heuristic",
        help="mapping strategy shared by all tiers (default: heuristic)",
    )
    parser.add_argument(
        "--backends", nargs="*", default=None, metavar="NAME",
        help=f"tiers to compare (default: all of {list(available_backends())})",
    )
    parser.add_argument("--json-out", metavar="PATH", default=None)
    args = parser.parse_args(argv)

    names = sorted(WORKLOADS) if args.workload == "all" else [args.workload]
    reports = []
    for name in names:
        report = cross_check(
            WORKLOADS[name](),
            strategy=args.strategy,
            backends=args.backends,
        )
        print_report(report)
        reports.append(report)

    if args.json_out:
        payload = {
            "strategy": args.strategy,
            "workloads": {r.network: r.as_dict() for r in reports},
        }
        with open(args.json_out, "w") as f:
            json.dump(payload, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"\nwrote {os.path.abspath(args.json_out)}")

    failed = [r for r in reports if not r.ok]
    if failed:
        print(f"\nFAILED: {', '.join(r.network for r in failed)} outside "
              "the agreement envelope", file=sys.stderr)
        return 1
    print("\nall tiers within the agreement envelope")
    return 0


if __name__ == "__main__":
    sys.exit(main())
