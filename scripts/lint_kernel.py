#!/usr/bin/env python
"""Lint (and optionally schedule) assembled MAICC kernels from the shell.

Examples::

    # Lint an assembly file, human-readable diagnostics.
    PYTHONPATH=src python scripts/lint_kernel.py kernel.s

    # Lint a generated Algorithm-1 conv kernel, schedule it, and confirm
    # the predicted cycle counts against the pipeline simulator.
    PYTHONPATH=src python scripts/lint_kernel.py --demo-conv --schedule --confirm

    # Machine-readable output for CI.
    PYTHONPATH=src python scripts/lint_kernel.py kernel.s --json

Exit status: 0 clean, 1 lint errors (or, with ``--strict``, warnings),
2 usage/assembly failure, 3 failed ``--confirm`` cross-check.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.analysis import (
    AnalysisConfig,
    LintReport,
    schedule_kernel,
    verify_program,
)
from repro.errors import ReproError
from repro.riscv.assembler import assemble
from repro.riscv.core import Core, CoreConfig
from repro.riscv.isa import Instruction


def _demo_conv_program() -> List[Instruction]:
    """A small generated Algorithm-1 conv kernel (4x4x32, 2 filters)."""
    from repro.core.conv_kernel import ConvKernelGenerator
    from repro.core.datalayout import plan_node_layout
    from repro.nn.workloads import ConvLayerSpec

    spec = ConvLayerSpec(
        index=0, name="lint-demo", h=4, w=4, c=32, m=2, r=3, s=3,
        stride=1, padding=0,
    )
    generator = ConvKernelGenerator(plan_node_layout(spec, spec.m))
    return generator.instructions()


def _simulated_cycles(program: List[Instruction]) -> int:
    """Run a program on the pipeline with a null NoC (timing only)."""
    core = Core(CoreConfig(), remote_handler=lambda is_store, addr, size, value: 0)
    return core.run(program).cycles


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="lint_kernel",
        description="Static hazard/CMem verifier for assembled MAICC programs.",
    )
    parser.add_argument("files", nargs="*", help="assembly files to lint")
    parser.add_argument(
        "--demo-conv", action="store_true",
        help="lint a generated Algorithm-1 conv kernel instead of files",
    )
    parser.add_argument("--json", action="store_true", help="emit JSON diagnostics")
    parser.add_argument(
        "--schedule", action="store_true",
        help="also run the static list scheduler and report predicted savings",
    )
    parser.add_argument(
        "--confirm", action="store_true",
        help="with --schedule: run both programs on the pipeline simulator "
        "and check the predictions (kernels must be data-independent)",
    )
    parser.add_argument(
        "--strict", action="store_true", help="treat warnings as errors"
    )
    parser.add_argument(
        "--stall-threshold", type=int, default=8, metavar="N",
        help="minimum stall cycles before a RAW/WAW advisory (default 8)",
    )
    args = parser.parse_args(argv)

    if not args.files and not args.demo_conv:
        parser.error("give assembly files or --demo-conv")

    config = AnalysisConfig(stall_threshold=args.stall_threshold)
    targets: List[tuple] = []
    try:
        if args.demo_conv:
            targets.append(("<demo-conv>", _demo_conv_program()))
        for path in args.files:
            with open(path) as handle:
                targets.append((path, assemble(handle.read())))
    except (OSError, ReproError) as exc:
        print(f"lint_kernel: {exc}", file=sys.stderr)
        return 2

    exit_code = 0
    for name, program in targets:
        report: LintReport = verify_program(program, config)
        payload = {"program": name, **report.to_dict()}

        if args.schedule:
            sched = schedule_kernel(program, analysis_config=config)
            payload["schedule"] = sched.to_dict()
            if args.confirm:
                baseline_sim = _simulated_cycles(program)
                scheduled_sim = _simulated_cycles(sched.program)
                confirmed = (
                    baseline_sim == sched.baseline.cycles
                    and scheduled_sim == sched.scheduled.cycles
                )
                payload["confirm"] = {
                    "baseline_simulated": baseline_sim,
                    "scheduled_simulated": scheduled_sim,
                    "confirmed": confirmed,
                }
                if not confirmed:
                    exit_code = max(exit_code, 3)

        if args.json:
            print(json.dumps(payload, indent=2))
        else:
            print(f"== {name}")
            print(report.render())
            if args.schedule:
                sched_info = payload["schedule"]
                line = (
                    f"schedule: {sched_info['baseline']['cycles']} -> "
                    f"{sched_info['scheduled']['cycles']} cycles predicted "
                    f"({sched_info['predicted_saving']} saved, "
                    f"{sched_info['speedup']:.2f}x)"
                )
                if "confirm" in payload:
                    conf = payload["confirm"]
                    line += (
                        "; pipeline confirms" if conf["confirmed"]
                        else "; PIPELINE DISAGREES: "
                        f"{conf['baseline_simulated']} / "
                        f"{conf['scheduled_simulated']} simulated"
                    )
                print(line)

        if report.errors or (args.strict and report.warnings):
            exit_code = max(exit_code, 1)
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
