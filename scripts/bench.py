#!/usr/bin/env python3
"""Performance benchmark of the vectorized bit-plane MAC engine.

Times three workloads and writes the results to ``BENCH_macc.json`` at the
repository root:

1. **mac** — the in-cache MAC demo workload: a 256-wide int8 dot product
   through ``CMem.mac``, fast path vs. the per-pair reference path.
2. **mac_many** — a full slice of seven stationary filters evaluated with
   one batched ``CMem.mac_many`` call per pass.
3. **resnet18_segment** — a bit-true ``FunctionalNodeGroup`` running a
   downscaled ResNet18 stage-1 convolution (conv1_x, 64 channels, 3x3)
   end to end on the vectorized engine.

Alongside the timing results, a telemetry snapshot of the same workloads
(simulated cycle counts + the top-level metrics-registry counters) is
written to ``BENCH_telemetry.json`` so the bench trajectory tracks *what
the runs did*, not just how long they took.

``BENCH_fleet.json`` tracks the multi-chip fleet loop (``repro.fleet``)
at 1 / 4 / 16 chips — requests per second and simulated milliseconds per
wall-second — with per-size wall-clock budgets (``FLEET_BUDGETS``) that
``--check`` enforces alongside the backend budgets.

A further artifact, ``BENCH_backends.json``, tracks the wall-clock cost of
every ``repro.sim`` fidelity tier together with a per-backend **perf
budget** (see ``BACKEND_BUDGETS``).  ``--check`` re-times just the
backends and exits non-zero if any tier exceeds its budget — the CI
``bench-budget`` job runs exactly that, so an accidental regression of
the vectorized event engine (or any other tier) fails the build instead
of silently re-widening the event-tier gap.

``BENCH_dse.json`` tracks the design-space exploration engine
(``repro.dse``) on the 16-point smoke sweep — points per second serial
(workers=0) and on the fork-pool executor (workers=4) — with per-mode
wall-clock budgets (``DSE_BUDGETS``).  The two runs' consolidated JSON
must be byte-identical; ``--check`` gates that equality alongside the
budgets, so a nondeterministic executor fails the build.

Run:  python scripts/bench.py [--out BENCH_macc.json]
                              [--telemetry-out BENCH_telemetry.json]
                              [--full]        # include cycle tier on resnet18
      python scripts/bench.py --check         # budget enforcement only
"""

from __future__ import annotations

import argparse
import cProfile
import gc
import json
import os
import pstats
import platform
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import numpy as np

from repro import telemetry
from repro.cmem.cmem import CMem
from repro.core.functional import FunctionalNodeGroup, bit_true_min_nodes
from repro.core.node import MAICCNode
from repro.mapping.capacity import CapacityModel
from repro.nn.workloads import ConvLayerSpec, NetworkSpec


def _time_per_call(fn, *, min_reps: int = 5, budget_s: float = 1.0) -> float:
    """Median-of-three timing; each sample amortizes over enough reps."""
    fn()  # warm caches / JIT-less numpy dispatch
    t0 = time.perf_counter()
    fn()
    once = time.perf_counter() - t0
    reps = max(min_reps, int(budget_s / 3 / max(once, 1e-9)))
    samples = []
    for _ in range(3):
        t0 = time.perf_counter()
        for _ in range(reps):
            fn()
        samples.append((time.perf_counter() - t0) / reps)
    return sorted(samples)[1]


def bench_mac() -> dict:
    rng = np.random.default_rng(1)
    a = rng.integers(-128, 128, 256)
    b = rng.integers(-128, 128, 256)

    cmems = {}
    for fast in (False, True):
        cmem = CMem(fast_path=fast)
        cmem.store_vector_transposed(1, 0, a, 8, signed=True)
        cmem.store_vector_transposed(1, 8, b, 8, signed=True)
        cmems[fast] = cmem
    expected = int(np.dot(a, b))
    assert cmems[True].mac(1, 0, 8, 8) == expected
    assert cmems[False].mac(1, 0, 8, 8) == expected

    t_ref = _time_per_call(lambda: cmems[False].mac(1, 0, 8, 8))
    t_fast = _time_per_call(lambda: cmems[True].mac(1, 0, 8, 8))
    return {
        "workload": "256-wide int8 dot product (CMem.mac, slice 1)",
        "reference_us_per_mac": t_ref * 1e6,
        "fast_us_per_mac": t_fast * 1e6,
        "reference_macs_per_sec": 1.0 / t_ref,
        "fast_macs_per_sec": 1.0 / t_fast,
        "speedup": t_ref / t_fast,
    }


def bench_mac_many() -> dict:
    rng = np.random.default_rng(2)
    a = rng.integers(-128, 128, 256)
    filters = [rng.integers(-128, 128, 256) for _ in range(7)]

    cmem = CMem(fast_path=True)
    ref = CMem(fast_path=False)
    for target in (cmem, ref):
        target.store_vector_transposed(1, 0, a, 8, signed=True)
        for i, w in enumerate(filters):
            target.store_vector_transposed(1, 8 * (i + 1), w, 8, signed=True)
    rows = [8 * (i + 1) for i in range(7)]
    assert list(cmem.mac_many(1, 0, rows, 8)) == [
        int(np.dot(a, w)) for w in filters
    ]

    t_many = _time_per_call(lambda: cmem.mac_many(1, 0, rows, 8)) / len(rows)
    t_ref = _time_per_call(lambda: ref.mac(1, 0, 8, 8))
    return {
        "workload": "7 stationary int8 filters per slice (CMem.mac_many)",
        "fast_us_per_mac": t_many * 1e6,
        "fast_macs_per_sec": 1.0 / t_many,
        "speedup_vs_reference_mac": t_ref / t_many,
    }


def bench_resnet18_segment() -> dict:
    # conv1_x of ResNet18 (64 ch in/out, 3x3, stride 1) with the spatial
    # extent cut to 6x6 so the bit-true group finishes in seconds.
    spec = ConvLayerSpec(
        index=1, name="conv1_x[6x6]", h=6, w=6, c=64, m=64,
        r=3, s=3, stride=1, padding=1, n_bits=8,
    )
    rng = np.random.default_rng(3)
    weights = rng.integers(-128, 128, (spec.m, spec.c, spec.r, spec.s))
    bias = rng.integers(-1000, 1000, spec.m)
    ifmap = rng.integers(-128, 128, (spec.c, spec.h, spec.w))

    num_nodes = bit_true_min_nodes(spec, CapacityModel())
    group = FunctionalNodeGroup(
        spec, weights, bias, num_computing=num_nodes, bit_true=True,
        fast_path=True,
    )
    t0 = time.perf_counter()
    acc = group.run(ifmap)
    wall = time.perf_counter() - t0

    macs = group.stats.macs
    return {
        "workload": (
            f"ResNet18 conv1_x bit-true segment (6x6 ifmap, {num_nodes} nodes)"
        ),
        "wall_s": wall,
        "macs": int(macs),
        "macs_per_sec": macs / wall,
        "checksum": int(acc.sum()),
    }


def bench_serving() -> dict:
    """Throughput of the serving event loop itself (host wall-clock).

    Uses :class:`FixedServicePolicy` so zero time goes to the chip model —
    what's measured is the discrete-event loop: arrival generation,
    admission, dispatch, completion accounting.  The ambient telemetry
    sink must be the disabled :class:`NullSink` so the hot path pays only
    its one ``enabled`` read.
    """
    from repro import telemetry as tele
    from repro.serving import (
        FixedServicePolicy,
        PoissonArrivals,
        ServingSimulator,
        TenantSpec,
    )

    assert not tele.current().enabled, (
        "bench_serving must run against the disabled NullSink"
    )

    spec = ConvLayerSpec(index=0, name="stub", h=1, w=1, c=1, m=1)
    net = NetworkSpec(name="stub", layers=(spec,))

    def tenants():
        return [
            TenantSpec("a", net, PoissonArrivals(900, seed=21), deadline_ms=4.0),
            TenantSpec("b", net, PoissonArrivals(600, seed=22), deadline_ms=6.0,
                       queue_capacity=64),
            TenantSpec("c", net, PoissonArrivals(300, seed=23), deadline_ms=9.0),
        ]

    policy = FixedServicePolicy({"a": 0.8, "b": 1.1, "c": 2.3})
    duration_ms = 2000.0

    result = ServingSimulator(policy).run(tenants(), duration_ms)
    requests = result.total_arrivals

    def run():
        ServingSimulator(policy).run(tenants(), duration_ms)

    t = _time_per_call(run)
    return {
        "workload": (
            f"3-tenant Poisson serving loop, {duration_ms:g} ms sim window, "
            f"{requests} requests (FixedServicePolicy, NullSink)"
        ),
        "requests": requests,
        "wall_s_per_run": t,
        "requests_per_sec": requests / t,
        "sim_ms_per_wall_s": duration_ms / t,
        "completed": result.total_completed,
        "shed": result.total_shed,
    }


# Per-backend wall-clock budgets (seconds), enforced by ``--check`` and
# the CI ``bench-budget`` job.  Each budget is roughly 10x the wall time
# measured on the reference machine after the event-engine vectorization
# (see docs/SIMULATORS.md), so CI noise never trips them but a
# regression back to per-event Python dispatch (resnet18 event tier:
# 2.54 s before, ~0.05 s after) blows through immediately.
BACKEND_BUDGETS: dict = {
    "resnet18": {"analytic": 0.10, "streaming": 0.50, "event": 0.60},
    "small_cnn": {
        "analytic": 0.05,
        "streaming": 0.05,
        "event": 0.10,
        "cycle": 1.50,
    },
}


def bench_backends(full: bool = False) -> dict:
    """Wall-clock cost and cycle totals of every repro.sim backend.

    Runs ResNet18 (heuristic mapping) through the ``analytic``,
    ``streaming``, and ``event`` tiers and the small CNN through all four.
    The cycle tier actually executes every mapped layer's kernel, so on
    ResNet18 it only runs under ``--full``; otherwise the skip is recorded
    in the JSON (and printed) so the artifact never implies coverage it
    does not have.  Cycle totals and ratios are deterministic simulation
    state; the wall times track how expensive each fidelity tier is on
    this machine, and each row carries its ``budget_s`` from
    ``BACKEND_BUDGETS``.
    """
    from repro.nn.workloads import resnet18_spec, small_cnn_spec
    from repro.sim import simulate

    resnet_backends = ["analytic", "streaming", "event"]
    if full:
        resnet_backends.append("cycle")
    jobs = {
        "resnet18": (resnet18_spec(), tuple(resnet_backends)),
        "small_cnn": (
            small_cnn_spec(), ("analytic", "streaming", "event", "cycle")
        ),
    }
    out: dict = {}
    for name, (network, backends) in jobs.items():
        rows = {}
        reference = None
        for backend in backends:
            t0 = time.perf_counter()
            report = simulate(network, backend=backend)
            wall = time.perf_counter() - t0
            if backend == "streaming":
                reference = report.total_cycles
            rows[backend] = {
                "total_cycles": report.total_cycles,
                "latency_ms": report.latency_ms,
                "wall_s": wall,
            }
        for backend, row in rows.items():
            row["ratio_vs_streaming"] = row["total_cycles"] / reference
            budget = BACKEND_BUDGETS.get(name, {}).get(backend)
            if budget is not None:
                row["budget_s"] = budget
                row["within_budget"] = row["wall_s"] <= budget
        if name == "resnet18" and not full:
            rows["cycle"] = {
                "skipped": (
                    "cycle tier executes every mapped kernel "
                    "(minutes of wall clock on resnet18); "
                    "pass --full to include it"
                )
            }
            print(
                "bench_backends: skipping cycle tier on resnet18 "
                "(pass --full to include it)",
                file=sys.stderr,
            )
        out[name] = rows
    return out


def check_budgets(backends: dict) -> list:
    """Return (network, backend, wall_s, budget_s) rows over budget."""
    breaches = []
    for name, rows in backends.items():
        for backend, row in rows.items():
            if "budget_s" in row and not row["within_budget"]:
                breaches.append((name, backend, row["wall_s"], row["budget_s"]))
    return breaches


def bench_serving_batched() -> dict:
    """Request batching on an overloaded tenant set (simulated throughput).

    Same FixedServicePolicy loop as :func:`bench_serving`, but the
    tenants arrive faster than the servers can drain one-at-a-time, and
    each tenant declares a ``staging_ms`` share of its service time —
    the weight-staging cost that a batch of requests against resident
    weights pays only once.  ``ServingSimulator(batch_requests=8)``
    dispatches up to 8 queued same-tenant requests per service slot, so
    a batch of ``k`` costs ``stage + k * (fixed - stage)`` instead of
    ``k * fixed``.  Both completion counts are simulation state
    (deterministic), so the throughput gain is diffable along the bench
    trajectory.
    """
    from repro.serving import (
        FixedServicePolicy,
        PoissonArrivals,
        ServingSimulator,
        TenantSpec,
    )

    spec = ConvLayerSpec(index=0, name="stub", h=1, w=1, c=1, m=1)
    net = NetworkSpec(name="stub", layers=(spec,))

    def tenants():
        return [
            TenantSpec("a", net, PoissonArrivals(2200, seed=31),
                       deadline_ms=50.0, queue_capacity=256),
            TenantSpec("b", net, PoissonArrivals(1400, seed=32),
                       deadline_ms=50.0, queue_capacity=256),
        ]

    policy = FixedServicePolicy(
        {"a": 0.8, "b": 1.1},
        staging_ms={"a": 0.6, "b": 0.8},
    )
    duration_ms = 2000.0
    batch = 8

    unbatched = ServingSimulator(policy).run(tenants(), duration_ms)
    batched = ServingSimulator(policy, batch_requests=batch).run(
        tenants(), duration_ms
    )
    per_s = 1000.0 / duration_ms
    return {
        "workload": (
            f"2-tenant overloaded Poisson loop, {duration_ms:g} ms sim "
            f"window (FixedServicePolicy with staging_ms, "
            f"batch_requests={batch})"
        ),
        "batch_requests": batch,
        "arrivals": unbatched.total_arrivals,
        "completed_unbatched": unbatched.total_completed,
        "completed_batched": batched.total_completed,
        "shed_unbatched": unbatched.total_shed,
        "shed_batched": batched.total_shed,
        "throughput_unbatched_req_s": unbatched.total_completed * per_s,
        "throughput_batched_req_s": batched.total_completed * per_s,
        "throughput_gain": (
            batched.total_completed / unbatched.total_completed
        ),
    }


#: Attribution-overhead ceiling enforced by ``--check`` and the CI
#: ``bench-budget`` job: the NullSink serving loop with attribution on
#: may cost at most 2% over the same loop with it off, measured as the
#: deterministic operation-count ratio (see :func:`bench_obs`).
OBS_OVERHEAD_BUDGET = 1.02


def bench_obs() -> dict:
    """Latency-attribution overhead on the serving fast path.

    Same overloaded batched loop as :func:`bench_serving_batched`,
    against the disabled NullSink, with per-request attribution off and
    on.  The gated quantity is the *operation-count* ratio (cProfile
    primitive calls), which is bit-reproducible on any machine: the
    attribution fast path costs O(tenants x batch sizes + resizes)
    table calls — never O(requests) — so a regression that sneaks
    per-request work back in (timeline objects, closures, method calls
    in dispatch/complete) shows up as a call-count jump that no
    scheduler noise can hide.  Wall clock is recorded alongside as an
    advisory figure (min over interleaved gc-fenced reps); a shared CI
    machine cannot resolve a 2% wall-clock budget reliably, which is
    why it does not gate.
    """
    from repro import telemetry as tele
    from repro.serving import (
        FixedServicePolicy,
        PoissonArrivals,
        ServingSimulator,
        TenantSpec,
    )

    assert not tele.current().enabled, (
        "bench_obs must run against the disabled NullSink"
    )

    spec = ConvLayerSpec(index=0, name="stub", h=1, w=1, c=1, m=1)
    net = NetworkSpec(name="stub", layers=(spec,))

    def tenants():
        return [
            TenantSpec("a", net, PoissonArrivals(2200, seed=31),
                       deadline_ms=50.0, queue_capacity=256),
            TenantSpec("b", net, PoissonArrivals(1400, seed=32),
                       deadline_ms=50.0, queue_capacity=256),
        ]

    policy = FixedServicePolicy(
        {"a": 0.8, "b": 1.1},
        staging_ms={"a": 0.6, "b": 0.8},
    )
    duration_ms = 2000.0
    batch = 8

    def run(attribution: bool):
        return ServingSimulator(
            policy, batch_requests=batch, attribution=attribution
        ).run(tenants(), duration_ms)

    baseline = run(False)
    attributed = run(True)

    def count_calls(attribution: bool) -> int:
        profile = cProfile.Profile()
        profile.enable()
        run(attribution)
        profile.disable()
        return pstats.Stats(profile).total_calls

    calls_off = count_calls(False)
    calls_on = count_calls(True)
    ratio = calls_on / calls_off

    def timed(attribution: bool) -> float:
        # A gc fence before each rep so a collection triggered by one
        # arm's allocations is never billed to the other.
        gc.collect()
        t0 = time.perf_counter()
        run(attribution)
        return time.perf_counter() - t0

    # Advisory wall clock: interleaved A/B with the arm order
    # alternating per rep so drift lands on both sides, min-of-reps as
    # the noise-robust estimator.
    reps = 8
    off_times: list = []
    on_times: list = []
    for i in range(reps):
        if i % 2 == 0:
            off_times.append(timed(False))
            on_times.append(timed(True))
        else:
            on_times.append(timed(True))
            off_times.append(timed(False))
    return {
        "workload": (
            f"2-tenant overloaded Poisson loop, {duration_ms:g} ms sim "
            f"window, batch_requests={batch}, NullSink; attribution "
            f"off vs on, call-count ratio gated + {reps} interleaved "
            f"gc-fenced wall-clock reps (advisory)"
        ),
        "requests": baseline.total_arrivals,
        "completed": attributed.total_completed,
        "calls_off": calls_off,
        "calls_on": calls_on,
        "overhead_ratio": ratio,
        "budget_ratio": OBS_OVERHEAD_BUDGET,
        "within_budget": ratio <= OBS_OVERHEAD_BUDGET,
        "wall_s_off": min(off_times),
        "wall_s_on": min(on_times),
        "wall_ratio": min(on_times) / min(off_times),
        "attribution_phases": {
            name: len(report.attribution)
            for name, report in sorted(attributed.reports.items())
        },
    }


#: Per-fleet-size wall-clock budgets (seconds per run), enforced by
#: ``--check`` and the CI ``bench-budget`` job.  Each is roughly 10x the
#: wall time measured on the reference machine (see docs/SIMULATORS.md),
#: so CI noise never trips them but a regression that drags the routing
#: loop or the per-chip event engine back to per-request Python overhead
#: blows through immediately.
FLEET_BUDGETS: dict = {1: 0.20, 4: 0.80, 16: 3.50}


def bench_fleet() -> dict:
    """Throughput of the multi-chip fleet loop at N = 1 / 4 / 16 chips.

    Two scripted models whose offered load scales linearly with the chip
    count (one replica of each per chip), routed by power-of-two-choices
    and simulated serially — what's measured is the whole fleet path:
    traffic generation, cluster routing, per-chip event loops, and the
    fleet rollup.  Request counts are simulation state (deterministic);
    the wall-clock rows carry their ``budget_s`` from ``FLEET_BUDGETS``.
    """
    from repro.fleet import (
        FleetModelSpec,
        FleetSimulator,
        OpenLoopTraffic,
        fixed_profile,
    )

    def models(chips: int) -> list:
        return [
            FleetModelSpec(
                name="vision",
                profile=fixed_profile(
                    "vision", 0.8, cores=64, staging_ms=0.2, restage_ms=4.0
                ),
                traffic=OpenLoopTraffic(rate_hz=900.0 * chips),
                deadline_ms=10.0,
                queue_capacity=256,
                replicas=chips,
            ),
            FleetModelSpec(
                name="speech",
                profile=fixed_profile(
                    "speech", 1.1, cores=96, staging_ms=0.3, restage_ms=6.0
                ),
                traffic=OpenLoopTraffic(rate_hz=400.0 * chips),
                deadline_ms=15.0,
                queue_capacity=256,
                replicas=chips,
            ),
        ]

    duration_ms = 1000.0
    scales = {}
    for chips in sorted(FLEET_BUDGETS):
        spec = models(chips)

        def run():
            return FleetSimulator(
                spec, chips, balancer="p2c", seed=0, scenario="bench-fleet"
            ).run(duration_ms)

        result = run()
        t = _time_per_call(run, min_reps=2, budget_s=0.5)
        scales[str(chips)] = {
            "chips": chips,
            "requests": result.total_generated,
            "completed": result.total_completed,
            "shed": result.total_shed,
            "wall_s_per_run": t,
            "requests_per_sec": result.total_generated / t,
            "sim_ms_per_wall_s": duration_ms / t,
            "budget_s": FLEET_BUDGETS[chips],
            "within_budget": t <= FLEET_BUDGETS[chips],
        }
    return {
        "workload": (
            f"2-model fleet loop, {duration_ms:g} ms sim window, offered "
            "load and replica count scaling with chips (p2c balancer, "
            "serial chip execution)"
        ),
        "scales": scales,
    }


def check_fleet_budgets(fleet: dict) -> list:
    """Return (chips, wall_s, budget_s) rows over budget."""
    return [
        (row["chips"], row["wall_s_per_run"], row["budget_s"])
        for row in fleet["scales"].values()
        if not row["within_budget"]
    ]


#: Per-worker-count wall-clock budgets (seconds per smoke-sweep run),
#: enforced by ``--check`` and the CI ``bench-budget`` job.  Roughly
#: 10x the reference-machine wall time (serial ~0.05 s, fork-pool
#: ~0.09 s); the workers=4 budget is wider because the fork-pool run
#: pays process startup on top of the sweep itself.
DSE_BUDGETS: dict = {0: 1.0, 4: 2.5}


def bench_dse() -> dict:
    """Throughput of the DSE engine on the 16-point smoke sweep.

    Times ``repro.dse.run_sweep`` serial (workers=0) and on the
    fork-pool executor (workers=4, ``repro.utils.parallel``) and
    records points per second for both.  The consolidated JSON of the
    two runs must be byte-identical — that equality is the executor's
    core guarantee (see docs/DSE.md) and is recorded as
    ``identical_bytes``, which ``--check`` gates alongside the
    per-mode wall-clock budgets.
    """
    from repro.dse import SWEEPS, run_sweep

    spec = SWEEPS["smoke"]
    points = spec.size
    artifacts = {}
    rows = {}
    for workers in sorted(DSE_BUDGETS):
        artifacts[workers] = run_sweep(spec, workers=workers).to_json()

        def run(workers: int = workers):
            run_sweep(spec, workers=workers)

        t = _time_per_call(run, min_reps=2, budget_s=0.5)
        rows[str(workers)] = {
            "workers": workers,
            "executor": "serial" if workers == 0 else "fork-pool",
            "wall_s_per_run": t,
            "points_per_sec": points / t,
            "budget_s": DSE_BUDGETS[workers],
            "within_budget": t <= DSE_BUDGETS[workers],
        }
    return {
        "workload": (
            f"{points}-point smoke sweep (small_cnn, analytic tier), "
            "serial vs fork-pool executor (repro.utils.parallel)"
        ),
        "sweep": spec.name,
        "points": points,
        "identical_bytes": len(set(artifacts.values())) == 1,
        "scales": rows,
    }


def check_dse_budgets(dse: dict) -> list:
    """Return (workers, wall_s, budget_s) rows over budget."""
    return [
        (row["workers"], row["wall_s_per_run"], row["budget_s"])
        for row in dse["scales"].values()
        if not row["within_budget"]
    ]


def bench_telemetry() -> dict:
    """Telemetry snapshot: workload cycle counts + top-level counters.

    Runs a reduced cycle-level node workload and the bit-true ResNet18
    segment with an active telemetry sink and records the registry's
    counters.  Everything here is simulation state — deterministic across
    machines — so the snapshot is diffable along the bench trajectory.
    """
    sink = telemetry.Telemetry()
    with telemetry.use(sink):
        # Cycle-level: 2 filters of 3x3x64 on a 5x5x64 ifmap (a scaled-down
        # Table 4 shape that keeps the pipeline run under a second).
        node_spec = ConvLayerSpec(
            index=0, name="node[5x5x64]", h=5, w=5, c=64, m=2,
            r=3, s=3, stride=1, padding=0,
        )
        rng = np.random.default_rng(5)
        node = MAICCNode(
            node_spec,
            rng.integers(-128, 128, (node_spec.m, node_spec.c, node_spec.r, node_spec.s)),
            rng.integers(-1000, 1000, node_spec.m),
        )
        node_result = node.run(
            rng.integers(-128, 128, (node_spec.c, node_spec.h, node_spec.w))
        )

        # Functional tier: the same segment bench_resnet18_segment times.
        seg_spec = ConvLayerSpec(
            index=1, name="conv1_x[6x6]", h=6, w=6, c=64, m=64,
            r=3, s=3, stride=1, padding=1, n_bits=8,
        )
        seg_rng = np.random.default_rng(3)
        group = FunctionalNodeGroup(
            seg_spec,
            seg_rng.integers(-128, 128, (seg_spec.m, seg_spec.c, seg_spec.r, seg_spec.s)),
            seg_rng.integers(-1000, 1000, seg_spec.m),
            num_computing=bit_true_min_nodes(seg_spec, CapacityModel()),
            bit_true=True,
        )
        group.run(seg_rng.integers(-128, 128, (seg_spec.c, seg_spec.h, seg_spec.w)))

    return {
        "workloads": {
            "node_5x5x64": {
                "cycles": int(node_result.stats.cycles),
                "instructions": int(node_result.stats.instructions),
                "cmem_busy_cycles": int(node_result.cmem_busy_cycles),
            },
            "resnet18_segment": {
                "nodes": group.num_computing,
                "vectors_streamed": int(group.stats.vectors_streamed),
                "macs": int(group.stats.macs),
                "row_transfers": int(group.stats.row_transfers),
            },
        },
        "counters": sink.registry.as_dict()["counters"],
        "trace_events": len(sink.trace),
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out",
        default=os.path.join(os.path.dirname(__file__), "..", "BENCH_macc.json"),
    )
    parser.add_argument(
        "--telemetry-out",
        default=os.path.join(
            os.path.dirname(__file__), "..", "BENCH_telemetry.json"
        ),
    )
    parser.add_argument(
        "--serving-out",
        default=os.path.join(
            os.path.dirname(__file__), "..", "BENCH_serving.json"
        ),
    )
    parser.add_argument(
        "--backends-out",
        default=os.path.join(
            os.path.dirname(__file__), "..", "BENCH_backends.json"
        ),
    )
    parser.add_argument(
        "--obs-out",
        default=os.path.join(
            os.path.dirname(__file__), "..", "BENCH_obs.json"
        ),
    )
    parser.add_argument(
        "--fleet-out",
        default=os.path.join(
            os.path.dirname(__file__), "..", "BENCH_fleet.json"
        ),
    )
    parser.add_argument(
        "--dse-out",
        default=os.path.join(
            os.path.dirname(__file__), "..", "BENCH_dse.json"
        ),
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="include the cycle tier on resnet18 (minutes of wall clock)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help=(
            "time only the sim backends, the fleet loop, the DSE smoke "
            "sweep, and the attribution overhead; fail (exit 1) on any "
            "BACKEND_BUDGETS, FLEET_BUDGETS, or DSE_BUDGETS breach, a "
            "serial-vs-workers byte mismatch in the DSE artifact, or an "
            "attribution overhead ratio over OBS_OVERHEAD_BUDGET; "
            "writes no JSON"
        ),
    )
    args = parser.parse_args()

    if args.check:
        obs = bench_obs()
        print(
            f"attribution overhead: {obs['overhead_ratio']:.4f}x ops "
            f"(budget {obs['budget_ratio']:.2f}x; "
            f"wall {obs['wall_ratio']:.3f}x advisory)  "
            f"{'OK' if obs['within_budget'] else 'OVER BUDGET'}"
        )
        backends = bench_backends(full=args.full)
        for name, rows in backends.items():
            for backend, row in rows.items():
                if "skipped" in row:
                    continue
                budget = row.get("budget_s")
                mark = (
                    "no budget" if budget is None
                    else "OK" if row["within_budget"] else "OVER BUDGET"
                )
                budget_txt = f"{budget:.2f}s" if budget is not None else "-"
                print(
                    f"{name:>10s}/{backend:<9s} wall {row['wall_s']:7.3f}s"
                    f"  budget {budget_txt:>6s}  {mark}"
                )
        fleet = bench_fleet()
        for key in sorted(fleet["scales"], key=int):
            row = fleet["scales"][key]
            mark = "OK" if row["within_budget"] else "OVER BUDGET"
            print(
                f"  fleet/N={row['chips']:<3d} wall {row['wall_s_per_run']:7.3f}s"
                f"  budget {row['budget_s']:5.2f}s  "
                f"({row['sim_ms_per_wall_s']:.0f} sim-ms/wall-s)  {mark}"
            )
        dse = bench_dse()
        for key in sorted(dse["scales"], key=int):
            row = dse["scales"][key]
            mark = "OK" if row["within_budget"] else "OVER BUDGET"
            print(
                f"  dse/workers={row['workers']:<2d} ({row['executor']:<9s}) "
                f"wall {row['wall_s_per_run']:7.3f}s"
                f"  budget {row['budget_s']:5.2f}s  "
                f"({row['points_per_sec']:.0f} points/s)  {mark}"
            )
        print(
            "  dse serial vs workers=4 bytes: "
            + ("identical" if dse["identical_bytes"] else "MISMATCH")
        )
        breaches = check_budgets(backends)
        failed = bool(breaches)
        if breaches:
            for name, backend, wall, budget in breaches:
                print(
                    f"FAIL: {name}/{backend} took {wall:.3f}s "
                    f"(budget {budget:.2f}s)",
                    file=sys.stderr,
                )
        for chips, wall, budget in check_fleet_budgets(fleet):
            failed = True
            print(
                f"FAIL: fleet at {chips} chip(s) took {wall:.3f}s "
                f"(budget {budget:.2f}s)",
                file=sys.stderr,
            )
        for workers, wall, budget in check_dse_budgets(dse):
            failed = True
            print(
                f"FAIL: dse sweep with workers={workers} took {wall:.3f}s "
                f"(budget {budget:.2f}s)",
                file=sys.stderr,
            )
        if not dse["identical_bytes"]:
            failed = True
            print(
                "FAIL: dse smoke sweep serial vs workers=4 JSON bytes differ",
                file=sys.stderr,
            )
        if not obs["within_budget"]:
            failed = True
            print(
                f"FAIL: attribution overhead {obs['overhead_ratio']:.4f}x "
                f"exceeds {obs['budget_ratio']:.2f}x",
                file=sys.stderr,
            )
        if failed:
            sys.exit(1)
        print(
            "all backends, the fleet loop, the dse sweep, and the "
            "attribution overhead within budget"
        )
        return

    results = {
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        "mac": bench_mac(),
        "mac_many": bench_mac_many(),
        "resnet18_segment": bench_resnet18_segment(),
    }
    with open(args.out, "w") as f:
        json.dump(results, f, indent=2)
        f.write("\n")

    telemetry_snapshot = {
        "python": platform.python_version(),
        "numpy": np.__version__,
        **bench_telemetry(),
    }
    with open(args.telemetry_out, "w") as f:
        json.dump(telemetry_snapshot, f, indent=2, sort_keys=True)
        f.write("\n")

    serving = {
        "python": platform.python_version(),
        "machine": platform.machine(),
        "serving_loop": bench_serving(),
        "serving_batched": bench_serving_batched(),
    }
    with open(args.serving_out, "w") as f:
        json.dump(serving, f, indent=2, sort_keys=True)
        f.write("\n")

    backends = {
        "python": platform.python_version(),
        "numpy": np.__version__,
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "executor": "serial",
        "backends": bench_backends(full=args.full),
    }
    with open(args.backends_out, "w") as f:
        json.dump(backends, f, indent=2, sort_keys=True)
        f.write("\n")

    obs = {
        "python": platform.python_version(),
        "machine": platform.machine(),
        "attribution": bench_obs(),
    }
    with open(args.obs_out, "w") as f:
        json.dump(obs, f, indent=2, sort_keys=True)
        f.write("\n")

    fleet = {
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "executor": "serial",
        "fleet": bench_fleet(),
    }
    with open(args.fleet_out, "w") as f:
        json.dump(fleet, f, indent=2, sort_keys=True)
        f.write("\n")

    dse = {
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "dse": bench_dse(),
    }
    with open(args.dse_out, "w") as f:
        json.dump(dse, f, indent=2, sort_keys=True)
        f.write("\n")

    mac = results["mac"]
    print(
        f"mac: ref {mac['reference_us_per_mac']:.1f}us  "
        f"fast {mac['fast_us_per_mac']:.1f}us  "
        f"speedup {mac['speedup']:.1f}x"
    )
    many = results["mac_many"]
    print(
        f"mac_many: {many['fast_us_per_mac']:.1f}us/MAC  "
        f"({many['speedup_vs_reference_mac']:.1f}x vs reference mac)"
    )
    seg = results["resnet18_segment"]
    print(
        f"resnet18 segment: {seg['wall_s']:.2f}s wall, "
        f"{seg['macs_per_sec']:.0f} MACs/s"
    )
    tel = telemetry_snapshot["workloads"]
    print(
        f"telemetry: node {tel['node_5x5x64']['cycles']} cycles, "
        f"segment {tel['resnet18_segment']['macs']} MACs "
        f"({telemetry_snapshot['trace_events']} trace events)"
    )
    loop = serving["serving_loop"]
    print(
        f"serving loop: {loop['requests_per_sec']:.0f} requests/s "
        f"({loop['sim_ms_per_wall_s']:.0f} sim-ms per wall-second)"
    )
    batched = serving["serving_batched"]
    print(
        f"serving batched (R={batched['batch_requests']}): "
        f"{batched['throughput_unbatched_req_s']:.0f} -> "
        f"{batched['throughput_batched_req_s']:.0f} req/s "
        f"({batched['throughput_gain']:.2f}x)"
    )
    attr = obs["attribution"]
    print(
        f"attribution overhead: {attr['overhead_ratio']:.4f}x ops "
        f"(budget {attr['budget_ratio']:.2f}x; "
        f"wall {attr['wall_ratio']:.3f}x advisory)"
    )
    print(
        "fleet loop: "
        + "  ".join(
            f"N={row['chips']} {row['requests_per_sec']:.0f} req/s"
            f"/{row['sim_ms_per_wall_s']:.0f} sim-ms/wall-s"
            for row in (
                fleet["fleet"]["scales"][k]
                for k in sorted(fleet["fleet"]["scales"], key=int)
            )
        )
    )
    dse_rows = dse["dse"]["scales"]
    print(
        "dse smoke sweep: "
        + "  ".join(
            f"workers={row['workers']} {row['points_per_sec']:.0f} points/s"
            for row in (dse_rows[k] for k in sorted(dse_rows, key=int))
        )
        + (
            "  (serial==workers bytes)"
            if dse["dse"]["identical_bytes"]
            else "  (BYTE MISMATCH)"
        )
    )
    rn18 = backends["backends"]["resnet18"]
    print(
        "backends (resnet18): "
        + "  ".join(
            f"{name} {row['wall_s'] * 1e3:.0f}ms"
            f"/{row['ratio_vs_streaming']:.3f}x"
            for name, row in rn18.items()
            if "wall_s" in row
        )
    )
    breaches = check_budgets(backends["backends"])
    for name, backend, wall, budget in breaches:
        print(
            f"WARNING: {name}/{backend} over budget "
            f"({wall:.3f}s > {budget:.2f}s)",
            file=sys.stderr,
        )
    print(f"wrote {os.path.abspath(args.out)}")
    print(f"wrote {os.path.abspath(args.telemetry_out)}")
    print(f"wrote {os.path.abspath(args.serving_out)}")
    print(f"wrote {os.path.abspath(args.backends_out)}")
    print(f"wrote {os.path.abspath(args.obs_out)}")
    print(f"wrote {os.path.abspath(args.fleet_out)}")
    print(f"wrote {os.path.abspath(args.dse_out)}")


if __name__ == "__main__":
    main()
