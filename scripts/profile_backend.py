#!/usr/bin/env python3
"""Profile one repro.sim backend run and print the top-N cumulative table.

Perf work on the simulation tiers starts from data, not guesses: this
script runs ``simulate(network, backend=...)`` under :mod:`cProfile` and
prints the top functions by cumulative time, plus a one-line wall-clock
summary that matches what ``scripts/bench.py`` records in
``BENCH_backends.json``.

Examples:

    PYTHONPATH=src python scripts/profile_backend.py --backend event
    PYTHONPATH=src python scripts/profile_backend.py \
        --backend streaming --network small_cnn --top 15
    PYTHONPATH=src python scripts/profile_backend.py \
        --backend event --sort tottime --out profile.txt

The resnet18 event-tier profile that motivated the vectorized event
engine is checked in at ``docs/PROFILES.md``.
"""

from __future__ import annotations

import argparse
import cProfile
import io
import os
import pstats
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

NETWORKS = ("resnet18", "small_cnn")
SORTS = ("cumulative", "tottime", "ncalls")


def build_network(name: str):
    from repro.nn.workloads import resnet18_spec, small_cnn_spec

    return {"resnet18": resnet18_spec, "small_cnn": small_cnn_spec}[name]()


def main() -> None:
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    parser.add_argument(
        "--backend",
        default="event",
        help="backend tier to profile (see repro.sim.available_backends)",
    )
    parser.add_argument("--network", default="resnet18", choices=NETWORKS)
    parser.add_argument(
        "--strategy", default=None, help="mapping strategy override"
    )
    parser.add_argument("--batch", type=int, default=None)
    parser.add_argument(
        "--batch-requests",
        type=int,
        default=None,
        help="weight-stationary request batching factor (SimConfig.batch_requests)",
    )
    parser.add_argument(
        "--event-engine",
        default=None,
        choices=("auto", "vectorized", "reference"),
        help="event-tier engine override (SimConfig.event_engine); "
        "'reference' reproduces the pre-vectorization profile",
    )
    parser.add_argument("--top", type=int, default=20, help="rows to print")
    parser.add_argument("--sort", default="cumulative", choices=SORTS)
    parser.add_argument(
        "--out", default=None, help="also write the table to this file"
    )
    args = parser.parse_args()

    from repro.sim import available_backends, simulate

    if args.backend not in available_backends():
        parser.error(
            f"unknown backend {args.backend!r}; "
            f"choose from {available_backends()}"
        )

    network = build_network(args.network)
    kwargs = dict(
        backend=args.backend, strategy=args.strategy, batch=args.batch
    )
    if args.batch_requests is not None:
        kwargs["batch_requests"] = args.batch_requests
    if args.event_engine is not None:
        from repro.sim import SimConfig

        # strategy/batch/batch_requests kwargs override config fields
        # inside simulate(), so only the engine needs to be set here.
        kwargs["config"] = SimConfig(event_engine=args.event_engine)

    # Untimed warm-up run so one-time costs (imports, memoized planning)
    # don't pollute the profile of the steady-state hot path.
    simulate(network, **kwargs)

    profiler = cProfile.Profile()
    t0 = time.perf_counter()
    profiler.enable()
    report = simulate(network, **kwargs)
    profiler.disable()
    wall = time.perf_counter() - t0

    buf = io.StringIO()
    stats = pstats.Stats(profiler, stream=buf)
    stats.strip_dirs().sort_stats(args.sort).print_stats(args.top)
    table = buf.getvalue()

    header = (
        f"backend={args.backend} network={args.network} "
        f"strategy={report.strategy} batch={report.batch} "
        f"wall={wall:.3f}s total_cycles={report.total_cycles:.1f}"
    )
    print(header)
    print(table)
    if args.out:
        with open(args.out, "w") as f:
            f.write(header + "\n" + table)
        print(f"wrote {os.path.abspath(args.out)}")


if __name__ == "__main__":
    main()
