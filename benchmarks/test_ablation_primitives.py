"""Ablation: MAICC's hardware MAC primitive vs element-wise + reduction.

The paper's Fig. 4 argument: element-wise primitives (Neural Cache) must
materialize product vectors and reduce them with ~log2(256) shift+add
iterations (23% of cycles); the adder-tree MAC primitive eliminates both.
This bench computes identical dot products both ways — bit-true — and
compares modeled cycles.
"""

import numpy as np
import pytest

from repro.cmem.cmem import CMem
from repro.sram.array import SRAMArray, SRAMArrayConfig
from repro.sram.bitserial import BitSerialALU, BitSerialCosts
from repro.utils.bitops import int_to_bits


def element_wise_dot(a, b):
    """Dot product via Neural-Cache primitives on a 256x256 array."""
    alu = BitSerialALU(SRAMArray(SRAMArrayConfig(rows=256, cols=256)))

    def stage(rows, values):
        bits = int_to_bits(values, 8, signed=False)
        padded = np.zeros((8, 256), dtype=np.uint8)
        padded[:, : len(values)] = bits
        for i, row in enumerate(rows):
            alu.array.write_row(row, padded[i])

    stage(range(0, 8), a)
    stage(range(8, 16), b)
    alu.vector_multiply(list(range(0, 8)), list(range(8, 16)), list(range(16, 32)))
    rows = alu.reduce(list(range(16, 32)), 256, scratch_rows=list(range(32, 80)))
    bits = np.stack([alu.array.read_row(r)[:1] for r in rows])
    total = int(sum(int(bits[i, 0]) << i for i in range(len(rows))))
    return total, alu.cycles


def test_same_answer_both_primitives(benchmark):
    def run():
        rng = np.random.default_rng(7)
        a = rng.integers(0, 256, 256)
        b = rng.integers(0, 256, 256)

        ew_value, ew_cycles = element_wise_dot(a, b)

        cmem = CMem()
        cmem.store_vector_transposed(1, 0, a, 8, signed=False)
        cmem.store_vector_transposed(1, 8, b, 8, signed=False)
        mac_value = cmem.mac(1, 0, 8, 8, signed=False)
        mac_cycles = cmem.stats.busy_cycles
        return (ew_value, ew_cycles, mac_value, mac_cycles, int(np.dot(a, b)))

    ew_value, ew_cycles, mac_value, mac_cycles, expected = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    assert ew_value == expected
    assert mac_value == expected
    # The MAC primitive is substantially cheaper per dot product.
    assert mac_cycles < ew_cycles
    assert ew_cycles / mac_cycles > 2.0


def test_reduction_share_of_element_wise():
    """The eliminated reduction step is ~23% of element-wise conv cycles
    (Sec. 3.2) — per output pixel: R*S multiplies + accumulates + one
    256-lane reduction."""
    from repro.baselines.neural_cache import NeuralCacheModel
    from repro.core.node import table4_workload

    result = NeuralCacheModel().run(table4_workload())
    assert result.reduction_fraction == pytest.approx(0.23, abs=0.03)
