"""Ablation: operand bit width n in {2, 4, 8, 16}.

MAC.C costs n^2 cycles while capacity scales as 64/n - 1 slots per slice
(Table 2 / Sec. 4.1), so lower precision buys superlinear throughput —
the "high throughput at low precision" argument of Sec. 2.2.  Verified at
two levels: the bit-true MAC primitive and the chip-level ResNet18 run.
"""

import numpy as np
import pytest

from repro.cmem.cmem import CMem
from repro.core.simulator import ChipSimulator
from repro.nn.workloads import ConvLayerSpec, NetworkSpec, resnet18_spec


def resnet_at_precision(n_bits: int) -> NetworkSpec:
    layers = tuple(
        ConvLayerSpec(
            index=s.index, name=s.name, h=s.h, w=s.w, c=s.c, m=s.m,
            r=s.r, s=s.s, stride=s.stride, padding=s.padding,
            kind=s.kind, n_bits=n_bits,
        )
        for s in resnet18_spec()
    )
    return NetworkSpec(name=f"resnet18_int{n_bits}", layers=layers)


def test_bit_true_mac_all_precisions(benchmark):
    def run():
        out = {}
        for n in (2, 4, 8, 16):
            rng = np.random.default_rng(n)
            lo, hi = -(1 << (n - 1)), 1 << (n - 1)
            a = rng.integers(lo, hi, 256)
            b = rng.integers(lo, hi, 256)
            cmem = CMem()
            cmem.store_vector_transposed(1, 0, a, n, signed=True)
            cmem.store_vector_transposed(1, n, b, n, signed=True)
            assert cmem.mac(1, 0, n, n, signed=True) == int(np.dot(a, b))
            out[n] = cmem.stats.busy_cycles
        return out

    cycles = benchmark.pedantic(run, rounds=1, iterations=1)
    assert cycles == {2: 4, 4: 16, 8: 64, 16: 256}  # n^2 each


def test_chip_level_precision_sweep(benchmark):
    # 16-bit ResNet18 no longer fits the 208-core array (Q = 64/16 - 1 = 3
    # slots per slice), which is itself a finding: the paper's design point
    # assumes int8.  Sweep 2/4/8 at chip level.
    def run():
        sim = ChipSimulator()
        return {
            n: sim.run(resnet_at_precision(n), "heuristic").latency_ms
            for n in (2, 4, 8)
        }

    latency = benchmark.pedantic(run, rounds=1, iterations=1)
    # Lower precision is strictly faster end to end.
    assert latency[2] < latency[4] < latency[8]


def test_16bit_exceeds_array_capacity():
    """At int16, conv4_1's split-filter minimum exceeds the 208 cores."""
    from repro.errors import CapacityError
    from repro.mapping.capacity import CapacityModel

    spec = resnet_at_precision(16).layer(16)
    with pytest.raises(CapacityError):
        CapacityModel().min_nodes(spec, max_nodes=207)
