"""Perf regression guard for the vectorized bit-plane MAC engine.

The full benchmark (``scripts/bench.py``) records ~40x on the 256-wide
int8 ``CMem.mac`` workload; this test asserts a deliberately conservative
floor so it stays green on slow or noisy CI machines while still catching
a genuine regression (e.g. the fast path silently falling back to the
per-pair loop, which would read as ~1x).
"""

from __future__ import annotations

import time

import numpy as np

from repro.cmem.cmem import CMem

SPEEDUP_FLOOR = 15.0


def _staged_pair(fast: bool):
    rng = np.random.default_rng(11)
    a = rng.integers(-128, 128, 256)
    b = rng.integers(-128, 128, 256)
    cmem = CMem(fast_path=fast)
    cmem.store_vector_transposed(1, 0, a, 8, signed=True)
    cmem.store_vector_transposed(1, 8, b, 8, signed=True)
    return cmem, int(np.dot(a, b))


def _best_per_call(fn, reps: int, rounds: int = 3) -> float:
    fn()
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        for _ in range(reps):
            fn()
        best = min(best, (time.perf_counter() - t0) / reps)
    return best


def test_fast_mac_beats_reference_by_wide_margin():
    ref_cmem, expected = _staged_pair(fast=False)
    fast_cmem, _ = _staged_pair(fast=True)
    assert ref_cmem.mac(1, 0, 8, 8) == expected
    assert fast_cmem.mac(1, 0, 8, 8) == expected

    t_ref = _best_per_call(lambda: ref_cmem.mac(1, 0, 8, 8), reps=20)
    t_fast = _best_per_call(lambda: fast_cmem.mac(1, 0, 8, 8), reps=200)
    speedup = t_ref / t_fast
    assert speedup >= SPEEDUP_FLOOR, (
        f"fast path only {speedup:.1f}x over reference "
        f"(floor {SPEEDUP_FLOOR}x); did it fall back to the per-pair loop?"
    )


def test_mac_many_amortizes_below_single_mac():
    rng = np.random.default_rng(12)
    a = rng.integers(-128, 128, 256)
    filters = [rng.integers(-128, 128, 256) for _ in range(7)]
    cmem = CMem(fast_path=True)
    cmem.store_vector_transposed(1, 0, a, 8, signed=True)
    rows = []
    for i, w in enumerate(filters):
        row = 8 * (i + 1)
        cmem.store_vector_transposed(1, row, w, 8, signed=True)
        rows.append(row)
    assert list(cmem.mac_many(1, 0, rows, 8)) == [
        int(np.dot(a, w)) for w in filters
    ]

    t_single = _best_per_call(lambda: cmem.mac(1, 0, 8, 8), reps=200)
    t_batched = _best_per_call(lambda: cmem.mac_many(1, 0, rows, 8), reps=200)
    per_mac = t_batched / len(rows)
    assert per_mac < t_single, (
        f"batched MAC ({per_mac * 1e6:.1f}us/MAC) slower than single "
        f"({t_single * 1e6:.1f}us) — batching amortization regressed"
    )


def test_null_sink_keeps_fast_path_speedup():
    """Telemetry off (the default NullSink) must not tax the hot path.

    The acceptance bar is <5% overhead on the fast-path MAC benchmark.
    Directly timing a 5% delta on a ~16us call is far noisier than the
    delta itself on shared CI machines, so the enforceable form of the
    same guarantee is: with the ambient NullSink installed (instrumented
    code takes only an ``enabled`` attribute read per publication site),
    the fast path still clears the PR-1 pinned speedup floor.  A telemetry
    hook accidentally doing work on the disabled path (formatting a span,
    building args dicts) drops the speedup well below the floor.
    """
    from repro import telemetry

    assert telemetry.current() is telemetry.NULL_SINK

    ref_cmem, expected = _staged_pair(fast=False)
    fast_cmem, _ = _staged_pair(fast=True)
    assert fast_cmem.mac(1, 0, 8, 8) == expected

    t_ref = _best_per_call(lambda: ref_cmem.mac(1, 0, 8, 8), reps=20)
    t_fast = _best_per_call(lambda: fast_cmem.mac(1, 0, 8, 8), reps=200)
    speedup = t_ref / t_fast
    assert speedup >= SPEEDUP_FLOOR, (
        f"fast path only {speedup:.1f}x with the default NullSink "
        f"(floor {SPEEDUP_FLOOR}x) — telemetry is taxing the disabled path"
    )


def test_event_tier_stays_vectorized_under_null_sink():
    """The event backend's NullSink run must take the vectorized engine.

    The vectorized event engine only engages when telemetry is disabled
    (an enabled sink needs one span per event, so those runs fall back
    to the per-event reference engine).  This guard pins two things on
    the small CNN: (a) the default ambient sink really is the disabled
    NullSink, and (b) the vectorized run matches the reference engine's
    cycles exactly while beating a conservative wall-clock ceiling.
    A regression that silently reroutes the default path through the
    reference engine shows up as a blown ceiling; one that breaks the
    engine's exactness shows up as a cycle mismatch.
    """
    import time

    from repro import telemetry
    from repro.nn.workloads import small_cnn_spec
    from repro.sim import SimConfig, simulate

    assert telemetry.current() is telemetry.NULL_SINK

    network = small_cnn_spec()
    simulate(network, backend="event")  # warm import/mapping caches
    t0 = time.perf_counter()
    vectorized = simulate(network, backend="event")
    wall = time.perf_counter() - t0
    reference = simulate(
        network,
        backend="event",
        config=SimConfig(event_engine="reference"),
    )

    assert vectorized.total_cycles == reference.total_cycles
    # ~1 ms on the reference machine; the reference engine costs several
    # times more, and an accidental per-event fallback costs ~10x.
    ceiling_s = 0.5
    assert wall < ceiling_s, (
        f"event tier took {wall:.3f}s on the small CNN under NullSink "
        f"(ceiling {ceiling_s}s) — did the vectorized engine fall back "
        f"to per-event dispatch?"
    )
