"""Ablation: zig-zag placement vs raster vs random (Fig. 7(c)).

The paper: "This mapping strategy ensures that two adjacent cores in the
node group are also physically adjacent, leading to minimal ifmap
transmission overhead."  Verified by replaying one iteration wave of a
real ResNet18 segment on the contention-aware mesh under each placement.
"""

import pytest

from repro.core.perfmodel import PerformanceModel
from repro.core.traffic import simulate_segment_traffic
from repro.mapping.placement import (
    random_placement,
    raster_placement,
    zigzag_placement,
)
from repro.mapping.segmentation import HeuristicStrategy
from repro.nn.workloads import resnet18_spec


@pytest.fixture(scope="module")
def segment():
    plan = HeuristicStrategy().plan(
        resnet18_spec(), PerformanceModel().layer_time_fn()
    )
    return plan.segments[1]  # layers 7-11, ~190 cores


def test_placement_traffic_sweep(benchmark, segment):
    def run():
        return {
            "zigzag": simulate_segment_traffic(segment, zigzag_placement(segment)),
            "raster": simulate_segment_traffic(segment, raster_placement(segment)),
            "random": simulate_segment_traffic(
                segment, random_placement(segment, seed=1)
            ),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    # Zig-zag minimizes both flit-hops (energy) and wave completion time.
    assert results["zigzag"].flit_hops < results["raster"].flit_hops
    assert results["raster"].flit_hops < results["random"].flit_hops
    assert results["zigzag"].completion_cycles <= results["raster"].completion_cycles
    assert results["zigzag"].completion_cycles < results["random"].completion_cycles


def test_zigzag_chain_hops_are_minimal(segment):
    placement = zigzag_placement(segment)
    assert placement.average_chain_hops() == pytest.approx(1.0)
    raster = raster_placement(segment)
    assert raster.average_chain_hops() > 1.0


def test_same_packet_count_all_placements(segment):
    """Placement changes distance, never the traffic volume."""
    a = simulate_segment_traffic(segment, zigzag_placement(segment))
    b = simulate_segment_traffic(segment, random_placement(segment, seed=3))
    assert a.packets == b.packets
