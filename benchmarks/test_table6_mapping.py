"""Bench: regenerate Table 6 (ResNet18 mapping strategies).

Shape targets: heuristic < greedy < single-layer total latency with
roughly the paper's 1 : 2 : 4.7 ratios; heuristic segment boundaries
match the paper ([1-6], [7-11], [12-15], then singletons); the greedy
(capacity-minimum) node counts match the paper on at least 15 of 20
layers.
"""

import pytest

from repro.experiments import table6


@pytest.fixture(scope="module")
def result():
    return table6.run()


def test_table6_regeneration(benchmark, result):
    benchmark.pedantic(lambda: result, rounds=1, iterations=1)
    runs = result.raw
    h = runs["heuristic"].latency_ms
    g = runs["greedy"].latency_ms
    s = runs["single-layer"].latency_ms

    assert h < g < s
    assert 1.4 < g / h < 3.5      # paper: 2.03
    assert 2.5 < s / h < 7.0      # paper: 4.69
    assert h == pytest.approx(5.138, rel=0.25)  # paper: 5.138 ms


def test_paper_segmentation_reproduced(result):
    heuristic = result.raw["heuristic"]
    segments = [[s.index for s in r.segment.layers] for r in heuristic.runs]
    assert segments[:3] == [[1, 2, 3, 4, 5, 6], [7, 8, 9, 10, 11], [12, 13, 14, 15]]

    greedy = result.raw["greedy"]
    segments = [[s.index for s in r.segment.layers] for r in greedy.runs]
    assert segments[0] == list(range(1, 13))
    assert segments[1] == [13, 14, 15]


def test_greedy_node_counts_vs_paper(result):
    matches = sum(
        1 for row in result.rows if row["greedy_nodes"] == row["paper_greedy"]
    )
    assert matches >= 15
