"""Bench: regenerate Table 7 (overall performance vs CPU and GPU).

Shape targets (paper): MAICC ~4.3x CPU throughput, ~31.6x CPU efficiency,
~0.2x GPU throughput, ~1.8x GPU efficiency; ~195 samples/s at ~25 W.
"""

import pytest

from repro.experiments import table7


@pytest.fixture(scope="module")
def result():
    return table7.run()


def test_table7_regeneration(benchmark, result):
    benchmark.pedantic(lambda: result, rounds=1, iterations=1)
    by = {row["platform"]: row for row in result.rows}
    maicc = by["MAICC (210 cores)"]
    cpu = by["Intel i9-13900K"]
    gpu = by["NVIDIA RTX 4090"]

    assert 3.0 < maicc["throughput"] / cpu["throughput"] < 6.0      # 4.3x
    assert 20 < maicc["thr_per_w"] / cpu["thr_per_w"] < 45          # 31.6x
    assert 0.1 < maicc["throughput"] / gpu["throughput"] < 0.35     # 0.20x
    assert 1.2 < maicc["thr_per_w"] / gpu["thr_per_w"] < 2.6        # 1.8x

    assert maicc["latency_ms"] == pytest.approx(5.13, rel=0.25)
    assert maicc["power_w"] == pytest.approx(24.67, rel=0.15)


def test_neural_cache_efficiency_comparison(result):
    """Sec. 6.3: MAICC 50.03 GFLOPS/W vs Neural Cache 22.90 (DRAM excluded)."""
    maicc = result.raw["maicc"]
    assert maicc.gops_per_watt(include_dram=False) > 22.90
