"""Bench: multi-DNN parallel inference (the paper's MIMD headline).

Spatially partitioning the array among several models should beat
time-sharing the whole array (aggregate throughput and makespan), because
each model keeps its weights stationary instead of reloading per sample.
"""

import pytest

from repro.core.multi_dnn import MultiDNNScheduler
from repro.nn.workloads import ConvLayerSpec, NetworkSpec, small_cnn_spec


def perception_net():
    """A camera-pipeline-shaped CNN (autonomous-driving motivation)."""
    layers = (
        ConvLayerSpec(1, "backbone1", h=28, w=28, c=64, m=64),
        ConvLayerSpec(2, "backbone2", h=28, w=28, c=64, m=64),
        ConvLayerSpec(3, "head", h=14, w=14, c=64, m=128, stride=1),
    )
    return NetworkSpec(name="perception", layers=layers)


def lidar_net():
    layers = (
        ConvLayerSpec(1, "voxel1", h=14, w=14, c=128, m=64),
        ConvLayerSpec(2, "voxel2", h=14, w=14, c=64, m=64),
    )
    return NetworkSpec(name="lidar", layers=layers)


def test_spatial_partitioning_beats_time_sharing(benchmark):
    scheduler = MultiDNNScheduler()
    nets = [perception_net(), lidar_net(), small_cnn_spec()]
    result = benchmark.pedantic(
        lambda: scheduler.run(nets), rounds=1, iterations=1
    )
    assert result.speedup_vs_time_shared > 1.0
    assert result.aggregate_throughput > result.time_shared_throughput
    # Every model actually ran in its partition.
    assert len(result.runs) == 3
    assert all(run.latency_ms > 0 for run in result.runs)


def test_partition_proportional_to_work():
    scheduler = MultiDNNScheduler()
    nets = [perception_net(), lidar_net()]
    shares = scheduler.partition(nets)
    macs = [n.total_macs for n in nets]
    assert (shares[0] > shares[1]) == (macs[0] > macs[1])
