"""Bench: regenerate Table 5 (dynamic + static scheduling sweep).

Fourteen cycle-level runs of the Table 4 workload across queue sizes,
write-back port counts, and static reordering.  Shape targets: deeper
queues never hurt, a second write-back port never hurts, static
scheduling gives a substantial additional gain (paper: ~16%).
"""

import pytest

from repro.experiments import table5


@pytest.fixture(scope="module")
def result():
    return table5.run()


def test_table5_regeneration(benchmark, result):
    benchmark.pedantic(lambda: result, rounds=1, iterations=1)
    rows = {(r["queue"], r["wb_ports"], r["static"]): r["cycles"] for r in result.rows}

    # Dynamic scheduling: queue depth monotone, saturating by 4 entries.
    assert rows[(0, 1, False)] >= rows[(1, 1, False)] >= rows[(2, 1, False)]
    assert rows[(2, 1, False)] == pytest.approx(rows[(4, 1, False)], rel=0.02)

    # A second write-back port helps (paper: ~2%).
    assert rows[(2, 2, False)] <= rows[(2, 1, False)]

    # Static scheduling beats every dynamic-only configuration.
    best_dynamic = min(v for (q, w, s), v in rows.items() if not s)
    best_static = min(v for (q, w, s), v in rows.items() if s)
    assert best_static < 0.95 * best_dynamic


def test_results_bit_identical_across_configs(result):
    """table5.run() asserts psum equality internally; spot-check rows exist."""
    assert len(result.rows) == 14
