"""Bench: regenerate Table 4 (node comparison) and assert its shape.

Paper row targets: MAICC node 59141 cycles / 3.96e-6 J; Neural Cache
136416 / 4.03e-6; scalar core 1.24e7 / 1.03e-4; MAICC ~2.3x faster than
Neural Cache with half its memory.
"""

import pytest

from repro.experiments import table4


@pytest.fixture(scope="module")
def result(benchmark_holder={}):
    return table4.run()


def test_table4_regeneration(benchmark):
    result = benchmark.pedantic(table4.run, rounds=1, iterations=1)
    maicc = result.row_by("node", "MAICC node")
    cache = result.row_by("node", "Neural Cache")
    scalar = result.row_by("node", "Scalar core")

    # Who wins, by roughly what factor.
    assert 1.8 < cache["cycles"] / maicc["cycles"] < 4.5        # paper 2.3x
    assert scalar["cycles"] / maicc["cycles"] > 100             # paper ~210x
    assert maicc["energy_j"] < cache["energy_j"]
    assert maicc["memory_kb"] == cache["memory_kb"] // 2

    # Calibrated baselines stay pinned to the paper's numbers.
    assert cache["cycles"] == pytest.approx(136416, rel=0.05)
    assert scalar["cycles"] == pytest.approx(1.24e7, rel=0.1)


def test_maicc_node_bit_true(benchmark):
    """The benchmarked node run is checked against NumPy inside run()."""
    result = benchmark.pedantic(
        lambda: table4.run(check=True), rounds=1, iterations=1
    )
    assert result.raw["maicc"].stats.cycles > 0
