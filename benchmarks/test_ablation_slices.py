"""Ablation: CMem slice count (the Sec. 3.2 slicing trade-off).

More, thinner slices buy MAC parallelism (operations in different slices
do not interfere) at the cost of per-slice capacity and data movement;
the paper picks eight slices (seven computing).  Swept at chip level
under the slice-parallel timing model: ResNet18 latency should improve
with more slices and the capacity minimums should shrink.
"""

import pytest

from repro.core.node import table4_workload
from repro.core.simulator import ChipSimulator
from repro.core.perfmodel import TimingParams
from repro.mapping.capacity import CapacityModel
from repro.nn.workloads import resnet18_spec


def chip_latency_ms(compute_slices: int) -> float:
    sim = ChipSimulator(
        params=TimingParams(slice_parallel_cmem=True),
        capacity=CapacityModel(compute_slices=compute_slices),
    )
    return sim.run(resnet18_spec(), "heuristic").latency_ms


def test_slice_count_sweep(benchmark):
    latency = benchmark.pedantic(
        lambda: {k: chip_latency_ms(k) for k in (7, 10, 14)},
        rounds=1,
        iterations=1,
    )
    # More compute slices -> more parallel MACs and more capacity ->
    # lower latency, with diminishing returns.
    assert latency[7] >= latency[10] >= latency[14]


def test_seven_slices_is_the_feasibility_floor():
    """Below seven compute slices, conv4_x no longer fits 208 cores even
    with split filters — the paper's 8-slice CMem is the smallest geometry
    that maps full ResNet18."""
    from repro.errors import CapacityError

    spec = resnet18_spec().layer(17)  # conv4_2: 512 filters of 3x3x512
    assert CapacityModel(compute_slices=7).min_nodes(spec, max_nodes=207) <= 207
    with pytest.raises(CapacityError):
        CapacityModel(compute_slices=5).min_nodes(spec, max_nodes=207)


def test_fewer_slices_reduce_capacity():
    spec = table4_workload()
    assert (
        CapacityModel(compute_slices=4).filters_per_node(spec)
        < CapacityModel(compute_slices=7).filters_per_node(spec)
    )


def test_fewer_slices_need_more_nodes():
    spec = resnet18_spec().layer(12)  # conv3_2
    assert (
        CapacityModel(compute_slices=3).min_nodes(spec)
        > CapacityModel(compute_slices=7).min_nodes(spec)
    )
