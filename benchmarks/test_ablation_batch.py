"""Ablation: batch streaming (throughput mode).

The paper evaluates batch 1 (Sec. 5).  With back-to-back samples, fill,
filter-load, and staging amortize over the batch, so throughput rises
toward the steady-state pipeline rate and then saturates — quantifying
how much of batch-1 latency is one-time overhead.
"""

import pytest

from repro.core.simulator import ChipSimulator
from repro.errors import MappingError
from repro.nn.workloads import resnet18_spec


def test_batch_scaling(benchmark):
    sim = ChipSimulator()
    net = resnet18_spec()

    def run():
        return {b: sim.run(net, "heuristic", batch=b) for b in (1, 2, 8, 32)}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    thr = {b: r.throughput_samples_s for b, r in results.items()}

    # Throughput rises monotonically with batch and saturates.
    assert thr[1] < thr[2] < thr[8] <= thr[32] * 1.001
    gain_1_to_8 = thr[8] / thr[1]
    gain_8_to_32 = thr[32] / thr[8]
    assert gain_1_to_8 > 1.02
    assert gain_8_to_32 < gain_1_to_8

    # Batch-1 is already near steady state: one-time overheads are a
    # modest fraction (the paper's pipelining works at batch 1 too).
    assert thr[32] / thr[1] < 1.3

    # Efficiency (samples/s/W) also improves with batch.
    assert results[32].throughput_per_watt > results[1].throughput_per_watt


def test_total_latency_scales_with_batch():
    sim = ChipSimulator()
    net = resnet18_spec()
    one = sim.run(net, "heuristic", batch=1)
    four = sim.run(net, "heuristic", batch=4)
    assert four.latency_ms > 3 * one.latency_ms
    assert four.latency_ms < 4.2 * one.latency_ms


def test_invalid_batch_rejected():
    with pytest.raises(MappingError):
        ChipSimulator().run(resnet18_spec(), "heuristic", batch=0)
