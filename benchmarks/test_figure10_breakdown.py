"""Bench: regenerate Figure 10 (area and energy breakdown).

Targets (paper): area 65% CMem / 11% core / 10% on-chip memory / 9% NoC /
5% LLC on a 28 mm^2 chip; energy 71% DRAM, 11% CMem, 11% NoC.
"""

import pytest

from repro.experiments import figure10


@pytest.fixture(scope="module")
def result():
    return figure10.run()


def test_figure10_regeneration(benchmark, result):
    benchmark.pedantic(lambda: result, rounds=1, iterations=1)
    rows = {row["block"]: row for row in result.rows}

    assert rows["cmem"]["area_fraction"] == pytest.approx(0.65, abs=0.03)
    assert rows["core"]["area_fraction"] == pytest.approx(0.11, abs=0.02)
    assert rows["local_mem"]["area_fraction"] == pytest.approx(0.10, abs=0.02)
    assert rows["noc"]["area_fraction"] == pytest.approx(0.09, abs=0.02)
    assert rows["llc"]["area_fraction"] == pytest.approx(0.05, abs=0.02)

    assert rows["dram"]["energy_fraction"] == pytest.approx(0.71, abs=0.08)
    assert rows["cmem"]["energy_fraction"] == pytest.approx(0.11, abs=0.05)
    assert rows["noc"]["energy_fraction"] == pytest.approx(0.11, abs=0.05)


def test_total_area_28mm2(result):
    assert result.raw["area"].total == pytest.approx(28.0, rel=0.05)
