"""Bench: regenerate Figure 9 (layer-9 per-iteration cycle breakdown).

Shape targets (Sec. 6.2): cycles to send ifmap vectors are stable across
strategies; compute scales inversely with allocated nodes; waiting for
ifmap vectors dominates under the greedy strategy.
"""

import pytest

from repro.experiments import figure9


@pytest.fixture(scope="module")
def result():
    return figure9.run()


def test_figure9_regeneration(benchmark, result):
    benchmark.pedantic(lambda: result, rounds=1, iterations=1)
    rows = {row["strategy"]: row for row in result.rows}

    # Send-ifmap cost is a property of the vector, not the mapping.
    sends = [rows[s]["send_ifmap"] for s in rows]
    assert max(sends) == min(sends)

    # Compute is inversely proportional to nodes (greedy has the fewest).
    assert rows["greedy"]["nodes"] < rows["heuristic"]["nodes"]
    assert rows["greedy"]["compute"] > rows["heuristic"]["compute"]

    # Waiting dominates greedy's iteration.
    greedy = rows["greedy"]
    assert greedy["wait_ifmap"] > greedy["compute"]
    assert greedy["wait_ifmap"] > rows["heuristic"]["wait_ifmap"]


def test_all_strategies_present(result):
    assert {row["strategy"] for row in result.rows} == {
        "single-layer", "greedy", "heuristic",
    }
