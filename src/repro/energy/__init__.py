"""Area, power, and energy models of the 210-core MAICC chip (Sec. 5)."""

from repro.energy.constants import ChipConstants
from repro.energy.area import AreaBreakdown, area_breakdown
from repro.energy.power import EnergyBreakdown, EnergyModel, OpCounts

__all__ = [
    "ChipConstants",
    "AreaBreakdown",
    "area_breakdown",
    "EnergyBreakdown",
    "EnergyModel",
    "OpCounts",
]
