"""Physical constants of the MAICC chip.

Sources, all from the paper's Sec. 5 (System Model) unless noted:

* RISC-V core (Verilog RTL @ 28 nm, 1 GHz): 0.014 mm^2, 8 mW.
* SRAM/CMem (SPICE @ 40 nm, 1.1 V, scaled to 28 nm): vertical write
  4.75 pJ, Move.C 52.75 pJ, MAC.C 28.25 pJ, remote row 53.01 pJ; slice 0
  area 0.014 mm^2, slices 1-7 area 0.023 mm^2 each (40 nm figures —
  area scales by (28/40)^2).
* NoC (dsent): 2.61 mm^2, 2.20 W static, 5.4 pJ per flit per hop.
* Whole chip: 28 mm^2 at 210 cores.

Leakage/background terms (CMem retention, DRAM background) are
calibration parameters documented as such: the paper reports only the
resulting breakdown (Fig. 10: energy 71% DRAM / 11% CMem / 11% NoC; area
65% CMem / 11% core / 10% on-chip memory / 9% NoC / 5% LLC).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ChipConstants:
    """All physical constants in one place."""

    clock_ghz: float = 1.0
    num_cores: int = 210
    num_llc_tiles: int = 32

    # RISC-V core (28 nm).
    core_area_mm2: float = 0.014
    core_power_w: float = 0.008

    # Local memories per node: 4 KB icache + 4 KB dmem.
    local_mem_area_mm2: float = 0.0133
    local_mem_power_w: float = 0.002

    # CMem geometry + area (40 nm figures scaled to 28 nm).
    slice0_area_mm2_40nm: float = 0.014
    compute_slice_area_mm2_40nm: float = 0.023
    num_compute_slices: int = 7
    area_scale_40_to_28: float = (28.0 / 40.0) ** 2

    # CMem per-op dynamic energies (pJ), already scaled to 28 nm.
    vertical_write_pj: float = 4.75
    move_pj: float = 52.75
    mac_pj: float = 28.25
    remote_row_pj: float = 53.01
    # CMem retention/leakage per node (calibration constant).
    cmem_leakage_w_per_node: float = 0.012

    # NoC.
    noc_area_mm2: float = 2.61
    noc_static_w: float = 2.20
    noc_flit_hop_pj: float = 5.4

    # LLC tiles.
    llc_tile_area_mm2: float = 0.04375
    llc_access_pj: float = 20.0
    llc_static_w_per_tile: float = 0.003

    # Many-core DRAM (32 channels): access + background (calibrated so the
    # ResNet18 run reproduces the ~71% DRAM share of Fig. 10).
    dram_access_pj_per_byte: float = 40.0
    dram_background_w: float = 17.5

    @property
    def cmem_area_mm2_per_node(self) -> float:
        raw = (
            self.slice0_area_mm2_40nm
            + self.num_compute_slices * self.compute_slice_area_mm2_40nm
        )
        return raw * self.area_scale_40_to_28

    @property
    def cycle_seconds(self) -> float:
        return 1.0 / (self.clock_ghz * 1e9)
