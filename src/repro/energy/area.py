"""Chip area model (Fig. 10, left)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.energy.constants import ChipConstants


@dataclass(frozen=True)
class AreaBreakdown:
    """Area per block in mm^2."""

    cmem: float
    core: float
    local_mem: float
    noc: float
    llc: float

    @property
    def total(self) -> float:
        return self.cmem + self.core + self.local_mem + self.noc + self.llc

    def fractions(self) -> Dict[str, float]:
        total = self.total
        return {
            "cmem": self.cmem / total,
            "core": self.core / total,
            "local_mem": self.local_mem / total,
            "noc": self.noc / total,
            "llc": self.llc / total,
        }


def area_breakdown(constants: ChipConstants = ChipConstants()) -> AreaBreakdown:
    """Area of the full chip from per-block constants."""
    return AreaBreakdown(
        cmem=constants.num_cores * constants.cmem_area_mm2_per_node,
        core=constants.num_cores * constants.core_area_mm2,
        local_mem=constants.num_cores * constants.local_mem_area_mm2,
        noc=constants.noc_area_mm2,
        llc=constants.num_llc_tiles * constants.llc_tile_area_mm2,
    )


def node_area_mm2(constants: ChipConstants = ChipConstants()) -> float:
    """One MAICC node: core + local memories + CMem (Table 4 row)."""
    return (
        constants.core_area_mm2
        + constants.local_mem_area_mm2
        + constants.cmem_area_mm2_per_node
    )
