"""Energy accounting: operation counts + static power -> breakdown.

The simulator tallies an :class:`OpCounts`; :class:`EnergyModel` turns it
plus the run time into the Fig. 10 energy breakdown and the Table 7
average power.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.energy.constants import ChipConstants


@dataclass
class OpCounts:
    """Chip-wide dynamic operation tallies for one run."""

    macs: int = 0              # MAC.C instructions
    moves: int = 0             # Move.C instructions
    vertical_writes: int = 0   # bytes written through slice 0
    remote_rows: int = 0       # LoadRow.RC / StoreRow.RC transfers
    noc_flit_hops: int = 0
    llc_accesses: int = 0
    dram_bytes: int = 0
    core_active_cycles: int = 0  # summed over all active cores

    def merge(self, other: "OpCounts") -> None:
        for name in self.__dataclass_fields__:
            setattr(self, name, getattr(self, name) + getattr(other, name))


@dataclass(frozen=True)
class EnergyBreakdown:
    """Energy per block in joules."""

    dram: float
    cmem: float
    noc: float
    core: float
    llc: float

    @property
    def total(self) -> float:
        return self.dram + self.cmem + self.noc + self.core + self.llc

    def fractions(self) -> Dict[str, float]:
        total = self.total
        return {
            "dram": self.dram / total,
            "cmem": self.cmem / total,
            "noc": self.noc / total,
            "core": self.core / total,
            "llc": self.llc / total,
        }


class EnergyModel:
    """Combines dynamic op energies with static power over the run time."""

    def __init__(self, constants: ChipConstants = ChipConstants()) -> None:
        self.constants = constants

    def breakdown(self, ops: OpCounts, seconds: float) -> EnergyBreakdown:
        c = self.constants
        pj = 1e-12
        cmem_dynamic = (
            ops.macs * c.mac_pj
            + ops.moves * c.move_pj
            + ops.vertical_writes * c.vertical_write_pj
            + ops.remote_rows * c.remote_row_pj
        ) * pj
        cmem_static = c.num_cores * c.cmem_leakage_w_per_node * seconds
        noc = ops.noc_flit_hops * c.noc_flit_hop_pj * pj + c.noc_static_w * seconds
        core = (
            ops.core_active_cycles * c.core_power_w * c.cycle_seconds
            + c.num_cores * c.local_mem_power_w * seconds
        )
        llc = (
            ops.llc_accesses * c.llc_access_pj * pj
            + c.num_llc_tiles * c.llc_static_w_per_tile * seconds
        )
        dram = (
            ops.dram_bytes * c.dram_access_pj_per_byte * pj
            + c.dram_background_w * seconds
        )
        return EnergyBreakdown(dram=dram, cmem=cmem_dynamic + cmem_static,
                               noc=noc, core=core, llc=llc)

    def average_power_w(self, ops: OpCounts, seconds: float) -> float:
        if seconds <= 0:
            raise ValueError("run time must be positive")
        return self.breakdown(ops, seconds).total / seconds
