"""DNN substrate: layers, graphs, int8 quantization, reference inference.

The paper's benchmark is ResNet18 with 8-bit quantization (Jacob et al.,
CVPR 2018) at batch size 1.  This package provides float model
construction, post-training symmetric quantization with batch-norm
folding, and an integer reference engine whose arithmetic is exactly what
the MAICC simulation must reproduce (int8 operands, int32 accumulation,
requantization between fused layers).
"""

from repro.nn.layers import (
    Add,
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Flatten,
    Input,
    Layer,
    Linear,
    MaxPool2d,
    ReLU,
)
from repro.nn.graph import Graph, GraphNode
from repro.nn.quantize import QuantizedGraph, quantize_graph
from repro.nn.reference import run_float, run_quantized
from repro.nn.models import build_resnet18, build_small_cnn
from repro.nn.workloads import ConvLayerSpec, NetworkSpec, resnet18_spec

__all__ = [
    "Add",
    "AvgPool2d",
    "BatchNorm2d",
    "Conv2d",
    "Flatten",
    "Input",
    "Layer",
    "Linear",
    "MaxPool2d",
    "ReLU",
    "Graph",
    "GraphNode",
    "QuantizedGraph",
    "quantize_graph",
    "run_float",
    "run_quantized",
    "build_resnet18",
    "build_small_cnn",
    "ConvLayerSpec",
    "NetworkSpec",
    "resnet18_spec",
]
