"""Workload descriptors consumed by the mapping framework and benches.

:func:`resnet18_spec` lists the twenty mapped layers of the paper's
Table 6 (the 7x7 stem is excluded: "we do not include the first layer
because it has very low parallelism with only 3 ifmap channels").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.errors import ConfigurationError
from repro.nn.layers import conv2d_output_hw


@dataclass(frozen=True)
class ConvLayerSpec:
    """Geometry of one mapped layer (CONV, 1x1 shortcut CONV, or FC).

    ``h``/``w``/``c`` describe the ifmap, ``m`` the filter count, ``r``/``s``
    the kernel.  FC layers are expressed as 1x1 convolutions over a 1x1
    ifmap, which is exactly how the execution framework runs them.
    """

    index: int
    name: str
    h: int
    w: int
    c: int
    m: int
    r: int = 3
    s: int = 3
    stride: int = 1
    padding: int = 1
    kind: str = "conv"  # conv | shortcut | linear
    n_bits: int = 8

    def __post_init__(self) -> None:
        if min(self.h, self.w, self.c, self.m, self.r, self.s, self.stride) < 1:
            raise ConfigurationError(f"{self.name}: non-positive dimension")

    @property
    def ofmap_hw(self) -> tuple:
        return conv2d_output_hw(self.h, self.w, self.r, self.s, self.stride, self.padding)

    @property
    def ifmap_pixels(self) -> int:
        return self.h * self.w

    @property
    def ofmap_pixels(self) -> int:
        oh, ow = self.ofmap_hw
        return oh * ow

    @property
    def macs(self) -> int:
        """Multiply-accumulates to compute the whole layer."""
        oh, ow = self.ofmap_hw
        return oh * ow * self.m * self.c * self.r * self.s

    @property
    def weight_count(self) -> int:
        return self.m * self.c * self.r * self.s


@dataclass(frozen=True)
class NetworkSpec:
    """An ordered list of mapped layers plus a display name."""

    name: str
    layers: tuple

    def __iter__(self):
        return iter(self.layers)

    def __len__(self) -> int:
        return len(self.layers)

    def layer(self, index: int) -> ConvLayerSpec:
        """Layer by its 1-based paper index."""
        for spec in self.layers:
            if spec.index == index:
                return spec
        raise ConfigurationError(f"no layer with index {index} in {self.name}")

    @property
    def total_macs(self) -> int:
        return sum(spec.macs for spec in self.layers)


def resnet18_spec() -> NetworkSpec:
    """The 20 mapped layers of ResNet18 as listed in Table 6."""
    layers: List[ConvLayerSpec] = []

    def add(name: str, h: int, c: int, m: int, *, r: int = 3, stride: int = 1,
            padding: int = 1, kind: str = "conv") -> None:
        layers.append(
            ConvLayerSpec(
                index=len(layers) + 1, name=name, h=h, w=h, c=c, m=m,
                r=r, s=r, stride=stride, padding=padding, kind=kind,
            )
        )

    # Stage 1: 56x56, 64 channels.
    for i in range(1, 5):
        add(f"conv1_{i}", 56, 64, 64)
    # Downsample shortcut into stage 2.
    add("shortcut", 56, 64, 128, r=1, stride=2, padding=0, kind="shortcut")
    # Stage 2: first conv strides 56 -> 28.
    add("conv2_1", 56, 64, 128, stride=2)
    for i in range(2, 5):
        add(f"conv2_{i}", 28, 128, 128)
    add("shortcut", 28, 128, 256, r=1, stride=2, padding=0, kind="shortcut")
    add("conv3_1", 28, 128, 256, stride=2)
    for i in range(2, 5):
        add(f"conv3_{i}", 14, 256, 256)
    add("shortcut", 14, 256, 512, r=1, stride=2, padding=0, kind="shortcut")
    add("conv4_1", 14, 256, 512, stride=2)
    for i in range(2, 5):
        add(f"conv4_{i}", 7, 512, 512)
    # Classifier: 512 -> 1000 FC as a 1x1 conv over a 1x1 "image".
    add("linear", 1, 512, 1000, r=1, stride=1, padding=0, kind="linear")
    return NetworkSpec(name="resnet18", layers=tuple(layers))


def small_cnn_spec(h: int = 8, c: int = 8) -> NetworkSpec:
    """Mapped-layer view of :func:`repro.nn.models.build_small_cnn`."""
    layers = (
        ConvLayerSpec(1, "conv1", h, h, c, 16),
        ConvLayerSpec(2, "conv2", h, h, 16, 16),
        ConvLayerSpec(3, "conv3", h // 2, h // 2, 16, 32),
        ConvLayerSpec(4, "linear", 1, 1, 32, 10, r=1, s=1, padding=0, kind="linear"),
    )
    return NetworkSpec(name="small_cnn", layers=layers)


def vgg11_spec(input_hw: int = 224) -> NetworkSpec:
    """VGG-11 (Simonyan & Zisserman) as mapped layers.

    The 3-channel stem is excluded for the same low-parallelism reason the
    paper excludes ResNet18's first layer; FC layers map as 1x1 convs.
    """
    layers: List[ConvLayerSpec] = []

    def add(name: str, h: int, c: int, m: int, **kw) -> None:
        layers.append(
            ConvLayerSpec(index=len(layers) + 1, name=name, h=h, w=h,
                          c=c, m=m, **kw)
        )

    h = input_hw // 2  # after the stem's pool
    add("conv2", h, 64, 128)
    h //= 2
    add("conv3_1", h, 128, 256)
    add("conv3_2", h, 256, 256)
    h //= 2
    add("conv4_1", h, 256, 512)
    add("conv4_2", h, 512, 512)
    h //= 2
    add("conv5_1", h, 512, 512)
    add("conv5_2", h, 512, 512)
    add("fc6", 1, 512 * 7 * 7, 4096, r=1, s=1, padding=0, kind="linear")
    add("fc7", 1, 4096, 4096, r=1, s=1, padding=0, kind="linear")
    add("fc8", 1, 4096, 1000, r=1, s=1, padding=0, kind="linear")
    return NetworkSpec(name="vgg11", layers=tuple(layers))


def mlp_spec(widths: Optional[List[int]] = None, name: str = "mlp") -> NetworkSpec:
    """A stack of FC layers (each mapped as a 1x1 conv over a 1x1 ifmap)."""
    widths = widths or [512, 1024, 1024, 256]
    layers = tuple(
        ConvLayerSpec(index=i + 1, name=f"fc{i + 1}", h=1, w=1,
                      c=c_in, m=c_out, r=1, s=1, padding=0, kind="linear")
        for i, (c_in, c_out) in enumerate(zip(widths, widths[1:]))
    )
    return NetworkSpec(name=name, layers=layers)


def lstm_cell_spec(hidden: int = 512, inputs: int = 512) -> NetworkSpec:
    """One LSTM cell step as mapped layers (paper Sec. 2.1).

    The cell's compute is two weight matrices — input-to-hidden and
    hidden-to-hidden, each producing the four stacked gates — plus
    element-wise auxiliary functions (sigmoid/tanh/hadamard) that run on
    the scalar cores and are not mapped.
    """
    layers = (
        ConvLayerSpec(1, "ih_gates", h=1, w=1, c=inputs, m=4 * hidden,
                      r=1, s=1, padding=0, kind="linear"),
        ConvLayerSpec(2, "hh_gates", h=1, w=1, c=hidden, m=4 * hidden,
                      r=1, s=1, padding=0, kind="linear"),
    )
    return NetworkSpec(name=f"lstm{hidden}", layers=layers)


def transformer_block_spec(d_model: int = 512, d_ff: int = 2048,
                           heads: int = 8) -> NetworkSpec:
    """One Transformer encoder block's *weight* matmuls (paper Sec. 2.1).

    Single-token (autoregressive) inference: the Q/K/V/output projections
    and the two FFN layers are static-weight matrix-vector products that
    map exactly like FC layers.  The attention score/value products are
    activation-activation matmuls and run on the scalar cores (their FLOP
    share is negligible at short context for this d_model).
    """
    del heads  # projections are fused across heads
    layers = (
        ConvLayerSpec(1, "q_proj", h=1, w=1, c=d_model, m=d_model,
                      r=1, s=1, padding=0, kind="linear"),
        ConvLayerSpec(2, "k_proj", h=1, w=1, c=d_model, m=d_model,
                      r=1, s=1, padding=0, kind="linear"),
        ConvLayerSpec(3, "v_proj", h=1, w=1, c=d_model, m=d_model,
                      r=1, s=1, padding=0, kind="linear"),
        ConvLayerSpec(4, "out_proj", h=1, w=1, c=d_model, m=d_model,
                      r=1, s=1, padding=0, kind="linear"),
        ConvLayerSpec(5, "ffn_up", h=1, w=1, c=d_model, m=d_ff,
                      r=1, s=1, padding=0, kind="linear"),
        ConvLayerSpec(6, "ffn_down", h=1, w=1, c=d_ff, m=d_model,
                      r=1, s=1, padding=0, kind="linear"),
    )
    return NetworkSpec(name=f"transformer_d{d_model}", layers=layers)
