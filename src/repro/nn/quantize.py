"""Post-training int8 quantization with batch-norm folding.

Follows the integer-arithmetic-only inference recipe of Jacob et al.
(CVPR 2018), in the symmetric (zero-point 0) flavour: every tensor ``x``
is represented as ``x ≈ scale * q`` with ``q`` an int8 array.  Convolution
and linear layers accumulate in int32 and requantize to the next layer's
scale; ReLU/pooling operate directly on the integer grid.

The quantized graph is the *ground truth* the MAICC simulation must match
bit-for-bit: its integer operations use only additions, multiplications,
comparisons and one rounding rescale — exactly what CMem + the scalar
pipeline implement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from repro.errors import GraphError, QuantizationError
from repro.nn.graph import Graph, GraphNode
from repro.nn.layers import (
    Add,
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Flatten,
    Input,
    Layer,
    Linear,
    MaxPool2d,
    ReLU,
    _im2col,
    conv2d_output_hw,
)
from repro.utils.fixedpoint import choose_scale, saturate


# ---------------------------------------------------------------------------
# Batch-norm folding
# ---------------------------------------------------------------------------

def fold_batchnorm(graph: Graph) -> Graph:
    """Return an equivalent graph with every conv->bn pair fused.

    A BatchNorm2d whose only input is a Conv2d that feeds nothing else is
    absorbed into the conv's weight and bias.
    """
    consumers: Dict[str, List[str]] = {name: [] for name in graph.nodes}
    for name, node in graph.nodes.items():
        for pred in node.inputs:
            consumers[pred].append(name)

    folded = Graph()
    # Map from old node name to the name that now produces its value.
    alias: Dict[str, str] = {}
    for name in graph.topological_order():
        node = graph.nodes[name]
        layer = node.layer
        if isinstance(layer, BatchNorm2d):
            pred_name = alias[node.inputs[0]]
            pred_node = folded.nodes.get(pred_name)
            src = graph.nodes[node.inputs[0]]
            if (
                isinstance(src.layer, Conv2d)
                and consumers[node.inputs[0]] == [name]
                and pred_node is not None
                and isinstance(pred_node.layer, Conv2d)
            ):
                scale, shift = layer.scale_shift()
                conv = pred_node.layer
                new_weight = conv.weight * scale[:, None, None, None]
                new_bias = conv.bias * scale + shift
                pred_node.layer = Conv2d(
                    new_weight, new_bias, stride=conv.stride, padding=conv.padding
                )
                alias[name] = pred_name
                continue
        new_inputs = [alias[i] for i in node.inputs]
        folded.add(name, layer, new_inputs)
        alias[name] = name
    return folded


# ---------------------------------------------------------------------------
# Integer layers
# ---------------------------------------------------------------------------

class QLayer:
    """Base class of integer layers.  ``out_scale`` maps q back to reals."""

    arity = 1

    def __init__(self, out_scale: float, n_bits: int) -> None:
        if out_scale <= 0:
            raise QuantizationError("out_scale must be positive")
        self.out_scale = out_scale
        self.n_bits = n_bits

    def forward(self, *inputs: np.ndarray) -> np.ndarray:
        raise NotImplementedError


def _requant(acc: np.ndarray, ratio: float, n_bits: int) -> np.ndarray:
    """Round an int32 accumulator into the next layer's int grid."""
    return saturate(np.rint(acc * ratio).astype(np.int64), n_bits)


class QInput(QLayer):
    def __init__(self, out_scale: float, n_bits: int, shape: tuple) -> None:
        super().__init__(out_scale, n_bits)
        self.shape = shape

    def forward(self, *inputs: np.ndarray) -> np.ndarray:
        (x,) = inputs
        return saturate(np.rint(x / self.out_scale).astype(np.int64), self.n_bits)


class QConv2d(QLayer):
    """Integer convolution: int8 x int8 -> int32 -> requant to int8."""

    def __init__(
        self,
        weight_q: np.ndarray,
        bias_q: np.ndarray,
        stride: int,
        padding: int,
        in_scale: float,
        w_scale: float,
        out_scale: float,
        n_bits: int,
    ) -> None:
        super().__init__(out_scale, n_bits)
        self.weight_q = weight_q.astype(np.int64)
        self.bias_q = bias_q.astype(np.int64)
        self.stride = stride
        self.padding = padding
        self.in_scale = in_scale
        self.w_scale = w_scale

    @property
    def requant_ratio(self) -> float:
        return self.in_scale * self.w_scale / self.out_scale

    def accumulate(self, q_in: np.ndarray) -> np.ndarray:
        """The raw int32 accumulator (exposed for MAICC cross-checking)."""
        m, c, r, s = self.weight_q.shape
        oh, ow = conv2d_output_hw(q_in.shape[1], q_in.shape[2], r, s, self.stride, self.padding)
        cols = _im2col(q_in.astype(np.int64), r, s, self.stride, self.padding)
        acc = self.weight_q.reshape(m, c * r * s) @ cols + self.bias_q[:, None]
        return acc.reshape(m, oh, ow)

    def forward(self, *inputs: np.ndarray) -> np.ndarray:
        (q_in,) = inputs
        return _requant(self.accumulate(q_in), self.requant_ratio, self.n_bits)


class QLinear(QLayer):
    def __init__(
        self,
        weight_q: np.ndarray,
        bias_q: np.ndarray,
        in_scale: float,
        w_scale: float,
        out_scale: float,
        n_bits: int,
    ) -> None:
        super().__init__(out_scale, n_bits)
        self.weight_q = weight_q.astype(np.int64)
        self.bias_q = bias_q.astype(np.int64)
        self.in_scale = in_scale
        self.w_scale = w_scale

    @property
    def requant_ratio(self) -> float:
        return self.in_scale * self.w_scale / self.out_scale

    def accumulate(self, q_in: np.ndarray) -> np.ndarray:
        return self.weight_q @ q_in.reshape(-1).astype(np.int64) + self.bias_q

    def forward(self, *inputs: np.ndarray) -> np.ndarray:
        (q_in,) = inputs
        return _requant(self.accumulate(q_in), self.requant_ratio, self.n_bits)


class QReLU(QLayer):
    """Integer ReLU: with symmetric scales this is a clamp at zero."""

    def forward(self, *inputs: np.ndarray) -> np.ndarray:
        (q_in,) = inputs
        return np.maximum(q_in, 0)


class QMaxPool2d(QLayer):
    def __init__(self, kernel: int, stride: int, padding: int, out_scale: float, n_bits: int) -> None:
        super().__init__(out_scale, n_bits)
        self.pool = MaxPool2d(kernel, stride, padding)

    def forward(self, *inputs: np.ndarray) -> np.ndarray:
        (q_in,) = inputs
        return self.pool.forward(q_in.astype(np.float64)).astype(np.int64)


class QAvgPool2d(QLayer):
    """Average pooling as an integer sum plus a rounding divide."""

    def __init__(self, kernel: int, stride: int, padding: int, out_scale: float, n_bits: int) -> None:
        super().__init__(out_scale, n_bits)
        self.kernel = kernel
        self.stride = stride
        self.padding = padding

    def forward(self, *inputs: np.ndarray) -> np.ndarray:
        (q_in,) = inputs
        c = q_in.shape[0]
        cols = _im2col(q_in.astype(np.int64), self.kernel, self.kernel, self.stride, self.padding)
        oh, ow = conv2d_output_hw(
            q_in.shape[1], q_in.shape[2], self.kernel, self.kernel, self.stride, self.padding
        )
        sums = cols.reshape(c, self.kernel * self.kernel, oh * ow).sum(axis=1)
        count = self.kernel * self.kernel
        avg = np.floor_divide(2 * sums + count, 2 * count)  # round-half-up
        return saturate(avg, self.n_bits).reshape(c, oh, ow)


class QAdd(QLayer):
    """Residual add: requantize both addends onto the output grid, add."""

    arity = 2

    def __init__(self, in_scales: Sequence[float], out_scale: float, n_bits: int) -> None:
        super().__init__(out_scale, n_bits)
        self.in_scales = list(in_scales)

    def forward(self, *inputs: np.ndarray) -> np.ndarray:
        a, b = inputs
        qa = np.rint(a * (self.in_scales[0] / self.out_scale)).astype(np.int64)
        qb = np.rint(b * (self.in_scales[1] / self.out_scale)).astype(np.int64)
        return saturate(qa + qb, self.n_bits)


class QFlatten(QLayer):
    def forward(self, *inputs: np.ndarray) -> np.ndarray:
        (q_in,) = inputs
        return q_in.reshape(-1)


# ---------------------------------------------------------------------------
# Graph-level quantization
# ---------------------------------------------------------------------------

@dataclass
class QuantizedGraph:
    """An integer twin of a float graph."""

    nodes: Dict[str, GraphNode] = field(default_factory=dict)
    order: List[str] = field(default_factory=list)
    scales: Dict[str, float] = field(default_factory=dict)
    n_bits: int = 8

    @property
    def input_name(self) -> str:
        for name in self.order:
            if isinstance(self.nodes[name].layer, QInput):
                return name
        raise GraphError("quantized graph has no input node")

    @property
    def output_name(self) -> str:
        consumed = {i for node in self.nodes.values() for i in node.inputs}
        sinks = [n for n in self.order if n not in consumed]
        if len(sinks) != 1:
            raise GraphError(f"expected one output, found {sinks}")
        return sinks[0]

    def forward(self, x: np.ndarray) -> Dict[str, np.ndarray]:
        """Run integer inference; returns every node's integer activation."""
        acts: Dict[str, np.ndarray] = {}
        for name in self.order:
            node = self.nodes[name]
            if isinstance(node.layer, QInput):
                acts[name] = node.layer.forward(x)
            else:
                acts[name] = node.layer.forward(*[acts[i] for i in node.inputs])
        return acts

    def dequantize(self, name: str, q: np.ndarray) -> np.ndarray:
        return q.astype(np.float64) * self.scales[name]


def quantize_graph(
    graph: Graph,
    calibration_inputs: Sequence[np.ndarray],
    n_bits: int = 8,
    *,
    fold_bn: bool = True,
) -> QuantizedGraph:
    """Quantize a float graph to ``n_bits`` symmetric integers.

    Activation scales come from the max magnitude each node produces over
    the calibration inputs; weight scales are per-tensor symmetric.
    """
    if not calibration_inputs:
        raise QuantizationError("at least one calibration input is required")
    if fold_bn:
        graph = fold_batchnorm(graph)

    # Calibration pass: max |activation| per node.
    max_abs: Dict[str, float] = {name: 0.0 for name in graph.nodes}
    for sample in calibration_inputs:
        acts = graph.forward(sample)
        for name, act in acts.items():
            max_abs[name] = max(max_abs[name], float(np.max(np.abs(act))))

    levels = (1 << (n_bits - 1)) - 1
    scales = {
        name: (value / levels if value > 0 else 1.0) for name, value in max_abs.items()
    }

    qgraph = QuantizedGraph(n_bits=n_bits)
    qgraph.scales = scales
    for name in graph.topological_order():
        node = graph.nodes[name]
        layer = node.layer
        in_names = node.inputs
        qlayer = _quantize_layer(layer, name, in_names, scales, n_bits)
        qgraph.nodes[name] = GraphNode(name=name, layer=qlayer, inputs=list(in_names))
        qgraph.order.append(name)
    return qgraph


def _quantize_layer(
    layer: Layer,
    name: str,
    in_names: Sequence[str],
    scales: Dict[str, float],
    n_bits: int,
) -> QLayer:
    out_scale = scales[name]
    if isinstance(layer, Input):
        return QInput(out_scale, n_bits, tuple(layer.shape))
    in_scale = scales[in_names[0]]
    if isinstance(layer, Conv2d):
        w_scale = choose_scale(layer.weight, n_bits)
        weight_q = saturate(np.rint(layer.weight / w_scale).astype(np.int64), n_bits)
        bias_q = np.rint(layer.bias / (in_scale * w_scale)).astype(np.int64)
        return QConv2d(
            weight_q, bias_q, layer.stride, layer.padding,
            in_scale, w_scale, out_scale, n_bits,
        )
    if isinstance(layer, Linear):
        w_scale = choose_scale(layer.weight, n_bits)
        weight_q = saturate(np.rint(layer.weight / w_scale).astype(np.int64), n_bits)
        bias_q = np.rint(layer.bias / (in_scale * w_scale)).astype(np.int64)
        return QLinear(weight_q, bias_q, in_scale, w_scale, out_scale, n_bits)
    if isinstance(layer, ReLU):
        # Integer ReLU keeps the producer's grid; override the calibrated
        # scale so clamping is exact.
        scales[name] = in_scale
        return QReLU(in_scale, n_bits)
    if isinstance(layer, MaxPool2d):
        scales[name] = in_scale
        return QMaxPool2d(layer.kernel, layer.stride, layer.padding, in_scale, n_bits)
    if isinstance(layer, AvgPool2d):
        scales[name] = in_scale
        return QAvgPool2d(layer.kernel, layer.stride, layer.padding, in_scale, n_bits)
    if isinstance(layer, Add):
        in_scales = [scales[i] for i in in_names]
        return QAdd(in_scales, out_scale, n_bits)
    if isinstance(layer, Flatten):
        scales[name] = in_scale
        return QFlatten(in_scale, n_bits)
    if isinstance(layer, BatchNorm2d):
        raise QuantizationError(
            f"{name}: unfused BatchNorm2d cannot be quantized; enable fold_bn"
        )
    raise QuantizationError(f"{name}: no quantization rule for {type(layer).__name__}")
