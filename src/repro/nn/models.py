"""Model builders: ResNet18 (the paper's benchmark) and small test CNNs.

Weights are deterministic pseudo-random (He-style scaling): the paper's
evaluation measures architecture behaviour, not accuracy, and pretrained
weights are unavailable offline — the property that matters is that the
simulated hardware reproduces the reference integer arithmetic exactly.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.nn.graph import Graph
from repro.nn.layers import (
    Add,
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Flatten,
    Input,
    Linear,
    MaxPool2d,
    ReLU,
)


def _conv_init(rng: np.ndarray, m: int, c: int, r: int, s: int) -> np.ndarray:
    fan_in = c * r * s
    return rng.normal(0.0, np.sqrt(2.0 / fan_in), size=(m, c, r, s))


def _bn_init(rng, channels: int) -> BatchNorm2d:
    return BatchNorm2d(
        gamma=rng.uniform(0.5, 1.5, channels),
        beta=rng.normal(0.0, 0.1, channels),
        running_mean=rng.normal(0.0, 0.2, channels),
        running_var=rng.uniform(0.5, 1.5, channels),
    )


class _Builder:
    """Tiny helper tracking the previous node for linear chains."""

    def __init__(self, graph: Graph, rng) -> None:
        self.graph = graph
        self.rng = rng
        self.prev: Optional[str] = None

    def add(self, name: str, layer, inputs=None) -> str:
        if inputs is None:
            inputs = [self.prev] if self.prev is not None else []
        self.graph.add(name, layer, inputs)
        self.prev = name
        return name

    def conv_bn_relu(
        self, name: str, c: int, m: int, *, r: int = 3, stride: int = 1,
        padding: int = 1, relu: bool = True, inputs=None,
    ) -> str:
        conv = Conv2d(_conv_init(self.rng, m, c, r, r), stride=stride, padding=padding)
        self.add(f"{name}", conv, inputs)
        self.add(f"{name}_bn", _bn_init(self.rng, m))
        if relu:
            self.add(f"{name}_relu", ReLU())
        return self.prev


def build_resnet18(
    input_shape: Tuple[int, int, int] = (3, 224, 224),
    num_classes: int = 1000,
    seed: int = 2023,
) -> Graph:
    """ResNet18 (He et al., 2016) as a float graph.

    Layer naming follows the paper's Table 6: stages are ``conv1_x`` ..
    ``conv4_x`` (each with four 3x3 convolutions), downsample shortcuts are
    ``shortcutN``, and the classifier is ``linear``.  The stem (7x7 conv +
    max-pool) is named ``stem``; the paper excludes it from the mapped
    workload because of its 3-channel parallelism.
    """
    rng = np.random.default_rng(seed)
    graph = Graph()
    b = _Builder(graph, rng)
    b.add("input", Input(input_shape))
    # Stem: 7x7/2 conv + BN + ReLU + 3x3/2 max-pool -> 56x56x64.
    b.conv_bn_relu("stem", input_shape[0], 64, r=7, stride=2, padding=3)
    b.add("stem_pool", MaxPool2d(3, 2, 1))

    stage_channels = [64, 128, 256, 512]
    shortcut_index = {1: 5, 2: 10, 3: 15}
    in_c = 64
    for stage, out_c in enumerate(stage_channels, start=1):
        for block in range(2):
            downsample = stage > 1 and block == 0
            stride = 2 if downsample else 1
            block_input = b.prev
            conv_a = f"conv{stage}_{2 * block + 1}"
            conv_b = f"conv{stage}_{2 * block + 2}"
            b.conv_bn_relu(conv_a, in_c, out_c, stride=stride, inputs=[block_input])
            b.conv_bn_relu(conv_b, out_c, out_c, relu=False)
            main = b.prev
            if downsample:
                sc = f"shortcut{shortcut_index[stage - 1]}"
                shortcut_conv = Conv2d(
                    _conv_init(rng, out_c, in_c, 1, 1), stride=2, padding=0
                )
                b.add(sc, shortcut_conv, inputs=[block_input])
                b.add(f"{sc}_bn", _bn_init(rng, out_c))
                residual = b.prev
            else:
                residual = block_input
            b.add(f"add{stage}_{block + 1}", Add(), inputs=[main, residual])
            b.add(f"relu{stage}_{block + 1}", ReLU())
            in_c = out_c

    b.add("avgpool", AvgPool2d(7))
    b.add("flatten", Flatten())
    fan_in = 512
    weight = rng.normal(0.0, np.sqrt(2.0 / fan_in), size=(num_classes, fan_in))
    b.add("linear", Linear(weight, rng.normal(0.0, 0.01, num_classes)))
    return graph


def build_small_cnn(
    input_shape: Tuple[int, int, int] = (8, 8, 8),
    num_classes: int = 10,
    seed: int = 7,
) -> Graph:
    """A three-conv CNN small enough for bit-true end-to-end simulation."""
    rng = np.random.default_rng(seed)
    graph = Graph()
    b = _Builder(graph, rng)
    c, h, w = input_shape
    b.add("input", Input(input_shape))
    b.conv_bn_relu("conv1", c, 16, stride=1, padding=1)
    b.conv_bn_relu("conv2", 16, 16, stride=1, padding=1)
    b.add("pool", MaxPool2d(2))
    b.conv_bn_relu("conv3", 16, 32, stride=1, padding=1)
    b.add("gap", AvgPool2d(h // 2))
    b.add("flatten", Flatten())
    weight = rng.normal(0.0, 0.25, size=(num_classes, 32))
    b.add("linear", Linear(weight))
    return graph


def build_residual_cnn(
    input_shape: Tuple[int, int, int] = (8, 8, 8),
    num_classes: int = 10,
    seed: int = 13,
) -> Graph:
    """A small network with one residual block (tests QAdd paths)."""
    rng = np.random.default_rng(seed)
    graph = Graph()
    b = _Builder(graph, rng)
    b.add("input", Input(input_shape))
    b.conv_bn_relu("conv1", input_shape[0], 16, stride=1, padding=1)
    trunk = b.prev
    b.conv_bn_relu("conv2", 16, 16, stride=1, padding=1, inputs=[trunk])
    b.conv_bn_relu("conv3", 16, 16, relu=False)
    b.add("res_add", Add(), inputs=[b.prev, trunk])
    b.add("res_relu", ReLU())
    b.add("gap", AvgPool2d(input_shape[1]))
    b.add("flatten", Flatten())
    weight = rng.normal(0.0, 0.25, size=(num_classes, 16))
    b.add("linear", Linear(weight))
    return graph
