"""DAG model of a network: named nodes, topological execution, shapes."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.errors import GraphError
from repro.nn.layers import Input, Layer


@dataclass
class GraphNode:
    name: str
    layer: Layer
    inputs: List[str] = field(default_factory=list)


class Graph:
    """A DAG of layers.  Nodes are added in any order; execution is
    topological.  Exactly one :class:`Input` node is required."""

    def __init__(self) -> None:
        self.nodes: Dict[str, GraphNode] = {}
        self._order: Optional[List[str]] = None

    def add(self, name: str, layer: Layer, inputs: Sequence[str] = ()) -> str:
        """Add a node; returns its name for chaining."""
        if name in self.nodes:
            raise GraphError(f"duplicate node name {name!r}")
        inputs = list(inputs)
        if isinstance(layer, Input):
            if inputs:
                raise GraphError("Input nodes take no predecessors")
        elif len(inputs) != layer.arity:
            raise GraphError(
                f"{name}: layer arity {layer.arity} but {len(inputs)} inputs given"
            )
        self.nodes[name] = GraphNode(name=name, layer=layer, inputs=inputs)
        self._order = None
        return name

    @property
    def input_name(self) -> str:
        names = [n for n, node in self.nodes.items() if isinstance(node.layer, Input)]
        if len(names) != 1:
            raise GraphError(f"graph must have exactly one Input node, found {len(names)}")
        return names[0]

    @property
    def output_name(self) -> str:
        """The unique node no other node consumes."""
        consumed = {i for node in self.nodes.values() for i in node.inputs}
        sinks = [n for n in self.nodes if n not in consumed]
        if len(sinks) != 1:
            raise GraphError(f"graph must have exactly one output, found {sinks}")
        return sinks[0]

    def topological_order(self) -> List[str]:
        if self._order is not None:
            return self._order
        in_degree = {name: len(node.inputs) for name, node in self.nodes.items()}
        dependents: Dict[str, List[str]] = {name: [] for name in self.nodes}
        for name, node in self.nodes.items():
            for pred in node.inputs:
                if pred not in self.nodes:
                    raise GraphError(f"{name}: unknown input {pred!r}")
                dependents[pred].append(name)
        ready = sorted(name for name, deg in in_degree.items() if deg == 0)
        order: List[str] = []
        while ready:
            name = ready.pop(0)
            order.append(name)
            for dep in dependents[name]:
                in_degree[dep] -= 1
                if in_degree[dep] == 0:
                    ready.append(dep)
        if len(order) != len(self.nodes):
            raise GraphError("graph contains a cycle")
        self._order = order
        return order

    def infer_shapes(self) -> Dict[str, tuple]:
        """Shape of every node's output."""
        shapes: Dict[str, tuple] = {}
        for name in self.topological_order():
            node = self.nodes[name]
            if isinstance(node.layer, Input):
                shapes[name] = tuple(node.layer.shape)
            else:
                shapes[name] = tuple(
                    node.layer.output_shape(*[shapes[i] for i in node.inputs])
                )
        return shapes

    def forward(self, x: np.ndarray) -> Dict[str, np.ndarray]:
        """Run the float graph; returns every node's activation."""
        acts: Dict[str, np.ndarray] = {}
        for name in self.topological_order():
            node = self.nodes[name]
            if isinstance(node.layer, Input):
                acts[name] = node.layer.forward(x)
            else:
                acts[name] = node.layer.forward(*[acts[i] for i in node.inputs])
        return acts
