"""Reference inference engines (float and integer).

``run_quantized`` is the oracle for every MAICC simulation test: the
many-core functional path must reproduce its integer activations exactly.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from repro.nn.graph import Graph
from repro.nn.quantize import QuantizedGraph


def run_float(graph: Graph, x: np.ndarray) -> np.ndarray:
    """Float forward pass; returns the output node's activation."""
    acts = graph.forward(x)
    return acts[graph.output_name]


def run_quantized(qgraph: QuantizedGraph, x: np.ndarray) -> np.ndarray:
    """Integer forward pass; returns the output node's integer activation."""
    acts = qgraph.forward(x)
    return acts[qgraph.output_name]


def quantization_error(
    graph: Graph, qgraph: QuantizedGraph, inputs: Sequence[np.ndarray]
) -> float:
    """Mean relative L2 error of the quantized output vs the float output."""
    errors = []
    for x in inputs:
        ref = run_float(graph, x).astype(np.float64)
        out = qgraph.dequantize(qgraph.output_name, run_quantized(qgraph, x))
        denom = np.linalg.norm(ref)
        errors.append(np.linalg.norm(out - ref) / denom if denom else 0.0)
    return float(np.mean(errors))


def all_activations(qgraph: QuantizedGraph, x: np.ndarray) -> Dict[str, np.ndarray]:
    """Every node's integer activation (for layer-by-layer comparison)."""
    return qgraph.forward(x)
