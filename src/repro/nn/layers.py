"""Float layer definitions (single sample, CHW layout).

These are the building blocks of the float graphs; quantization converts
them to integer layers (:mod:`repro.nn.quantize`).  Shapes are CHW tuples;
batch size is 1 throughout, matching the paper's evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.errors import ShapeError

Shape = Tuple[int, ...]


class Layer:
    """Base class: a pure function of one (or two) CHW arrays."""

    arity = 1

    def output_shape(self, *input_shapes: Shape) -> Shape:
        raise NotImplementedError

    def forward(self, *inputs: np.ndarray) -> np.ndarray:
        raise NotImplementedError


@dataclass
class Input(Layer):
    """Graph entry point carrying the input shape."""

    shape: Shape

    def output_shape(self, *input_shapes: Shape) -> Shape:
        return self.shape

    def forward(self, *inputs: np.ndarray) -> np.ndarray:
        (x,) = inputs
        if tuple(x.shape) != tuple(self.shape):
            raise ShapeError(f"input shape {x.shape} != declared {self.shape}")
        return x


def conv2d_output_hw(h: int, w: int, r: int, s: int, stride: int, padding: int) -> Tuple[int, int]:
    return (h + 2 * padding - r) // stride + 1, (w + 2 * padding - s) // stride + 1


def _im2col(x: np.ndarray, r: int, s: int, stride: int, padding: int) -> np.ndarray:
    """Unfold a CHW array into (C*R*S, OH*OW) patches."""
    c, h, w = x.shape
    oh, ow = conv2d_output_hw(h, w, r, s, stride, padding)
    if padding:
        x = np.pad(x, ((0, 0), (padding, padding), (padding, padding)))
    cols = np.empty((c, r, s, oh, ow), dtype=x.dtype)
    for i in range(r):
        for j in range(s):
            cols[:, i, j] = x[:, i : i + stride * oh : stride, j : j + stride * ow : stride]
    return cols.reshape(c * r * s, oh * ow)


class Conv2d(Layer):
    """2D convolution with weight (M, C, R, S) and optional bias (M,)."""

    def __init__(
        self,
        weight: np.ndarray,
        bias: Optional[np.ndarray] = None,
        stride: int = 1,
        padding: int = 0,
    ) -> None:
        weight = np.asarray(weight, dtype=np.float64)
        if weight.ndim != 4:
            raise ShapeError(f"conv weight must be 4-D (M,C,R,S), got {weight.shape}")
        self.weight = weight
        self.bias = (
            np.zeros(weight.shape[0]) if bias is None else np.asarray(bias, dtype=np.float64)
        )
        if self.bias.shape != (weight.shape[0],):
            raise ShapeError(f"bias shape {self.bias.shape} != ({weight.shape[0]},)")
        self.stride = stride
        self.padding = padding

    @property
    def out_channels(self) -> int:
        return self.weight.shape[0]

    def output_shape(self, *input_shapes: Shape) -> Shape:
        (shape,) = input_shapes
        c, h, w = shape
        if c != self.weight.shape[1]:
            raise ShapeError(
                f"conv expects {self.weight.shape[1]} input channels, got {c}"
            )
        oh, ow = conv2d_output_hw(
            h, w, self.weight.shape[2], self.weight.shape[3], self.stride, self.padding
        )
        return (self.out_channels, oh, ow)

    def forward(self, *inputs: np.ndarray) -> np.ndarray:
        (x,) = inputs
        m, c, r, s = self.weight.shape
        oh, ow = conv2d_output_hw(x.shape[1], x.shape[2], r, s, self.stride, self.padding)
        cols = _im2col(x, r, s, self.stride, self.padding)
        out = self.weight.reshape(m, c * r * s) @ cols + self.bias[:, None]
        return out.reshape(m, oh, ow)


class Linear(Layer):
    """Fully connected layer: weight (out, in), bias (out,)."""

    def __init__(self, weight: np.ndarray, bias: Optional[np.ndarray] = None) -> None:
        weight = np.asarray(weight, dtype=np.float64)
        if weight.ndim != 2:
            raise ShapeError(f"linear weight must be 2-D, got {weight.shape}")
        self.weight = weight
        self.bias = (
            np.zeros(weight.shape[0]) if bias is None else np.asarray(bias, dtype=np.float64)
        )

    def output_shape(self, *input_shapes: Shape) -> Shape:
        (shape,) = input_shapes
        if int(np.prod(shape)) != self.weight.shape[1]:
            raise ShapeError(
                f"linear expects {self.weight.shape[1]} inputs, got shape {shape}"
            )
        return (self.weight.shape[0],)

    def forward(self, *inputs: np.ndarray) -> np.ndarray:
        (x,) = inputs
        return self.weight @ x.reshape(-1) + self.bias


class BatchNorm2d(Layer):
    """Inference-time batch norm: a per-channel affine transform."""

    def __init__(
        self,
        gamma: np.ndarray,
        beta: np.ndarray,
        running_mean: np.ndarray,
        running_var: np.ndarray,
        eps: float = 1e-5,
    ) -> None:
        self.gamma = np.asarray(gamma, dtype=np.float64)
        self.beta = np.asarray(beta, dtype=np.float64)
        self.running_mean = np.asarray(running_mean, dtype=np.float64)
        self.running_var = np.asarray(running_var, dtype=np.float64)
        self.eps = eps

    def scale_shift(self) -> Tuple[np.ndarray, np.ndarray]:
        """The equivalent per-channel (scale, shift) for folding into convs."""
        scale = self.gamma / np.sqrt(self.running_var + self.eps)
        shift = self.beta - scale * self.running_mean
        return scale, shift

    def output_shape(self, *input_shapes: Shape) -> Shape:
        (shape,) = input_shapes
        if shape[0] != self.gamma.shape[0]:
            raise ShapeError(
                f"batchnorm expects {self.gamma.shape[0]} channels, got {shape[0]}"
            )
        return shape

    def forward(self, *inputs: np.ndarray) -> np.ndarray:
        (x,) = inputs
        scale, shift = self.scale_shift()
        return x * scale[:, None, None] + shift[:, None, None]


class ReLU(Layer):
    def output_shape(self, *input_shapes: Shape) -> Shape:
        (shape,) = input_shapes
        return shape

    def forward(self, *inputs: np.ndarray) -> np.ndarray:
        (x,) = inputs
        return np.maximum(x, 0.0)


class _Pool2d(Layer):
    def __init__(self, kernel: int, stride: Optional[int] = None, padding: int = 0) -> None:
        self.kernel = kernel
        self.stride = stride if stride is not None else kernel
        self.padding = padding

    def output_shape(self, *input_shapes: Shape) -> Shape:
        (shape,) = input_shapes
        c, h, w = shape
        oh, ow = conv2d_output_hw(h, w, self.kernel, self.kernel, self.stride, self.padding)
        return (c, oh, ow)

    def _windows(self, x: np.ndarray) -> np.ndarray:
        c = x.shape[0]
        cols = _im2col(x, self.kernel, self.kernel, self.stride, self.padding)
        oh, ow = self.output_shape(x.shape)[1:]
        return cols.reshape(c, self.kernel * self.kernel, oh, ow)


class MaxPool2d(_Pool2d):
    def forward(self, *inputs: np.ndarray) -> np.ndarray:
        (x,) = inputs
        if self.padding:
            # Pad with -inf so padding never wins the max.
            pad = self.padding
            x = np.pad(x, ((0, 0), (pad, pad), (pad, pad)), constant_values=-np.inf)
            self_pad, self.padding = self.padding, 0
            try:
                return self._windows(x).max(axis=1)
            finally:
                self.padding = self_pad
        return self._windows(x).max(axis=1)


class AvgPool2d(_Pool2d):
    def forward(self, *inputs: np.ndarray) -> np.ndarray:
        (x,) = inputs
        return self._windows(x).mean(axis=1)


class Add(Layer):
    """Element-wise residual addition of two same-shaped tensors."""

    arity = 2

    def output_shape(self, *input_shapes: Shape) -> Shape:
        a, b = input_shapes
        if tuple(a) != tuple(b):
            raise ShapeError(f"residual add of mismatched shapes {a} and {b}")
        return a

    def forward(self, *inputs: np.ndarray) -> np.ndarray:
        a, b = inputs
        return a + b


class Flatten(Layer):
    def output_shape(self, *input_shapes: Shape) -> Shape:
        (shape,) = input_shapes
        return (int(np.prod(shape)),)

    def forward(self, *inputs: np.ndarray) -> np.ndarray:
        (x,) = inputs
        return x.reshape(-1)
