"""Deterministic self-contained HTML dashboard for a run report.

:func:`render_html` is a pure function of a ``maicc-obs-report/1``
document (:mod:`repro.obs.report`): same document, same bytes.  The page
embeds everything — styles and inline SVG charts; no scripts, no network
fetches — so a report file is a complete artifact that renders anywhere.

Chart language (the repo's data-viz conventions):

* Categorical colors come from a validated palette in fixed slot order —
  phase categories map to slots by taxonomy position, tenants by sorted
  name — never cycled or re-ranked on filtering.
* Marks are thin: bars <= 20px with a 2px surface gap between stacked
  segments and a 4px rounded data-end, 2px lines, hairline solid
  gridlines one step off the surface.
* Identity is never color-alone: every multi-series chart has a legend,
  and every chart has a table twin carrying the exact values.
* Dark mode is a selected palette (per-mode steps of the same hues), not
  an automatic inversion; native ``<title>`` tooltips supplement, never
  gate, the tables.
"""

from __future__ import annotations

from html import escape
from typing import Dict, List, Mapping, Sequence, Tuple

from repro.obs.monitor import CLUSTER
from repro.obs.timeline import PHASE_CATEGORIES

#: Categorical slots (light, dark) in the palette's validated order; the
#: order is the CVD-safety mechanism — assign by position, never cycle.
CATEGORICAL = (
    ("#2a78d6", "#3987e5"),  # blue
    ("#eb6834", "#d95926"),  # orange
    ("#1baf7a", "#199e70"),  # aqua
    ("#eda100", "#c98500"),  # yellow
    ("#e87ba4", "#d55181"),  # magenta
    ("#008300", "#008300"),  # green
    ("#4a3aa7", "#9085e9"),  # violet
    ("#e34948", "#e66767"),  # red
)

#: Status palette (fixed, never themed) for alert annotations.
ALERT_COLORS = {
    "burn_rate": "#d03b3b",      # critical
    "queue_growth": "#ec835a",   # serious
    "resize_thrash": "#fab219",  # warning
}
ALERT_ICONS = {"burn_rate": "●", "queue_growth": "▲", "resize_thrash": "◆"}

_PLOT_W = 640
_PLOT_H = 120
_GUTTER_L = 56
_GUTTER_B = 24


def _fmt(value: object) -> str:
    """Stable human formatting for table cells."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def _category_class(category: str) -> str:
    return f"c-{category}"


def _tenant_slots(tenants: Sequence[str]) -> Dict[str, int]:
    """Fixed slot per tenant (sorted order; capped at the palette)."""
    return {name: i % len(CATEGORICAL) for i, name in enumerate(sorted(tenants))}


def _style(tenants: Sequence[str]) -> str:
    light: List[str] = []
    dark: List[str] = []
    for i, category in enumerate(PHASE_CATEGORIES):
        lo, hi = CATEGORICAL[i % len(CATEGORICAL)]
        light.append(f".c-{category}{{fill:{lo}}}")
        dark.append(f".c-{category}{{fill:{hi}}}")
    for name, slot in _tenant_slots(tenants).items():
        lo, hi = CATEGORICAL[slot]
        light.append(f".t-{slot}{{stroke:{lo}}} .tf-{slot}{{fill:{lo}}}")
        dark.append(f".t-{slot}{{stroke:{hi}}} .tf-{slot}{{fill:{hi}}}")
    for kind, color in sorted(ALERT_COLORS.items()):
        light.append(f".a-{kind}{{stroke:{color}}} .ai-{kind}{{color:{color}}}")
        dark.append(f".a-{kind}{{stroke:{color}}} .ai-{kind}{{color:{color}}}")
    return f"""
:root {{ color-scheme: light dark; }}
body {{
  margin: 0; padding: 24px;
  background: #f9f9f7; color: #0b0b0b;
  font: 14px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif;
}}
.card {{
  background: #fcfcfb; border: 1px solid rgba(11,11,11,0.10);
  border-radius: 8px; padding: 16px 20px; margin: 0 0 16px 0;
  max-width: 760px;
}}
h1 {{ font-size: 20px; margin: 0 0 4px 0; }}
h2 {{ font-size: 15px; margin: 0 0 10px 0; }}
.meta {{ color: #52514e; margin: 0 0 16px 0; }}
.tiles {{ display: flex; flex-wrap: wrap; gap: 12px; max-width: 760px;
          margin-bottom: 16px; }}
.tile {{ background: #fcfcfb; border: 1px solid rgba(11,11,11,0.10);
         border-radius: 8px; padding: 10px 16px; min-width: 96px; }}
.tile .label {{ color: #52514e; font-size: 12px; }}
.tile .value {{ font-size: 24px; font-weight: 600; }}
table {{ border-collapse: collapse; width: 100%; margin-top: 8px; }}
th {{ text-align: left; color: #52514e; font-weight: 500; font-size: 12px;
      border-bottom: 1px solid #c3c2b7; padding: 4px 8px; }}
td {{ border-bottom: 1px solid #e1e0d9; padding: 4px 8px;
      font-variant-numeric: tabular-nums; }}
.legend {{ display: flex; flex-wrap: wrap; gap: 14px; margin: 6px 0;
           color: #52514e; font-size: 12px; align-items: center; }}
.key {{ display: inline-block; width: 10px; height: 10px;
        border-radius: 2px; margin-right: 5px; vertical-align: -1px; }}
svg text {{ fill: #898781; font-size: 11px; }}
svg .grid {{ stroke: #e1e0d9; stroke-width: 1; }}
svg .axis {{ stroke: #c3c2b7; stroke-width: 1; }}
svg .line {{ fill: none; stroke-width: 2; stroke-linejoin: round;
             stroke-linecap: round; }}
svg .alert {{ stroke-width: 1; }}
{' '.join(light)}
@media (prefers-color-scheme: dark) {{
  body {{ background: #0d0d0d; color: #ffffff; }}
  .card, .tile {{ background: #1a1a19; border-color: rgba(255,255,255,0.10); }}
  .meta, .tile .label, th, .legend {{ color: #c3c2b7; }}
  td {{ border-bottom-color: #2c2c2a; }}
  th {{ border-bottom-color: #383835; }}
  svg .grid {{ stroke: #2c2c2a; }}
  svg .axis {{ stroke: #383835; }}
  {' '.join(dark)}
}}
"""


def _legend(entries: Sequence[Tuple[str, str]]) -> str:
    """A legend row of (css-fill-class, label) swatches."""
    keys = "".join(
        f'<span><svg width="10" height="10" class="keysvg">'
        f'<rect width="10" height="10" rx="2" class="{escape(cls)}"/></svg> '
        f"{escape(label)}</span>"
        for cls, label in entries
    )
    return f'<div class="legend">{keys}</div>'


def _table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    head = "".join(f"<th>{escape(h)}</th>" for h in headers)
    body = "".join(
        "<tr>" + "".join(f"<td>{escape(_fmt(v))}</td>" for v in row) + "</tr>"
        for row in rows
    )
    return f"<table><thead><tr>{head}</tr></thead><tbody>{body}</tbody></table>"


# -- stacked attribution bars -------------------------------------------------


def _stacked_bar_svg(
    rows: Sequence[Tuple[str, List[Tuple[str, float]]]],
) -> str:
    """Horizontal stacked bars: one row per label, segments by category.

    Widths are normalized per row (each bar shows its row's composition);
    2px surface gaps separate segments and the data-end is rounded 4px.
    """
    bar_h, row_h, label_w = 18, 30, 110
    width = 640
    height = row_h * len(rows) + 4
    parts = [
        f'<svg width="{width}" height="{height}" role="img" '
        f'aria-label="latency attribution stacked bars">'
    ]
    span = width - label_w - 8
    for r, (label, segments) in enumerate(rows):
        total = sum(v for _, v in segments)
        y = 4 + r * row_h
        parts.append(
            f'<text x="{label_w - 8}" y="{y + bar_h - 5}" '
            f'text-anchor="end">{escape(label)}</text>'
        )
        if total <= 0:
            continue
        drawn = [(c, v) for c, v in segments if v > 0]
        x = float(label_w)
        for i, (category, value) in enumerate(drawn):
            w = span * (value / total)
            gap = 2.0 if i < len(drawn) - 1 else 0.0
            w_draw = max(w - gap, 0.5)
            last = i == len(drawn) - 1
            title = (
                f"<title>{escape(label)} · {escape(category)}: "
                f"{_fmt(value)} ({_fmt(100.0 * value / total)}%)</title>"
            )
            if last and w_draw > 4:
                # Rounded 4px data-end, square at the baseline side.
                d = (
                    f"M{x:.2f} {y} h{w_draw - 4:.2f} q4 0 4 4 "
                    f"v{bar_h - 8} q0 4 -4 4 h-{w_draw - 4:.2f} z"
                )
                parts.append(
                    f'<path d="{d}" class="{_category_class(category)}">'
                    f"{title}</path>"
                )
            else:
                parts.append(
                    f'<rect x="{x:.2f}" y="{y}" width="{w_draw:.2f}" '
                    f'height="{bar_h}" class="{_category_class(category)}">'
                    f"{title}</rect>"
                )
            x += w
    parts.append("</svg>")
    return "".join(parts)


# -- time-series panels -------------------------------------------------------


def _cell_percentile(
    bounds: Sequence[float], cell: Mapping[str, object], q: float
) -> float:
    """Bucket-interpolated percentile of one exported window cell (same
    estimator as ``Histogram.percentile``, read from the JSON shape)."""
    count = int(cell["count"])  # type: ignore[arg-type]
    if count == 0:
        return 0.0
    counts = cell["bucket_counts"]
    assert isinstance(counts, list)
    lo_obs = float(cell["min"])  # type: ignore[arg-type]
    hi_obs = float(cell["max"])  # type: ignore[arg-type]
    rank = q / 100.0 * count
    cumulative = 0
    for i, n in enumerate(counts):
        if n == 0:
            continue
        below = cumulative
        cumulative += n
        if cumulative >= rank:
            lo = bounds[i - 1] if i > 0 else lo_obs
            hi = bounds[i] if i < len(bounds) else hi_obs
            lo = max(float(lo), lo_obs)
            hi = min(float(hi), hi_obs)
            if hi <= lo:
                return float(lo)
            # Mirrors Histogram.percentile: span ends are exact,
            # interior rounding stays inside the span.
            fraction = (rank - below) / n
            if fraction >= 1.0:
                return float(hi)
            return float(min(lo + (hi - lo) * fraction, hi))
    return hi_obs


def _line_panel(
    title: str,
    unit: str,
    duration_ms: float,
    series: Mapping[str, List[Tuple[float, float]]],
    slots: Mapping[str, int],
    alerts: Sequence[Mapping[str, object]],
) -> str:
    """One small-multiples panel: 2px lines per tenant over sim time,
    hairline grid, alert instants as thin status-colored verticals."""
    w, h = _PLOT_W, _PLOT_H + _GUTTER_B
    top = 8
    peak = 0.0
    for points in series.values():
        for _, v in points:
            peak = max(peak, v)
    peak = peak if peak > 0 else 1.0
    y_scale = (_PLOT_H - top) / (peak * 1.05)

    def xp(t: float) -> float:
        return _GUTTER_L + (w - _GUTTER_L - 8) * (t / duration_ms)

    def yp(v: float) -> float:
        return _PLOT_H - v * y_scale

    parts = [
        f'<svg width="{w}" height="{h}" role="img" '
        f'aria-label="{escape(title)}">'
    ]
    for frac in (0.0, 0.5, 1.0):
        v = peak * frac
        y = yp(v)
        cls = "axis" if frac == 0.0 else "grid"
        parts.append(
            f'<line x1="{_GUTTER_L}" y1="{y:.2f}" x2="{w - 8}" '
            f'y2="{y:.2f}" class="{cls}"/>'
            f'<text x="{_GUTTER_L - 6}" y="{y + 4:.2f}" '
            f'text-anchor="end">{_fmt(round(v, 3))}</text>'
        )
    for frac in (0.0, 0.5, 1.0):
        t = duration_ms * frac
        parts.append(
            f'<text x="{xp(t):.2f}" y="{_PLOT_H + 16}" '
            f'text-anchor="middle">{_fmt(round(t, 1))} ms</text>'
        )
    for alert in alerts:
        t = float(alert["time_ms"])  # type: ignore[arg-type]
        if not 0.0 <= t <= duration_ms:
            continue
        kind = str(alert["kind"])
        parts.append(
            f'<line x1="{xp(t):.2f}" y1="{top}" x2="{xp(t):.2f}" '
            f'y2="{_PLOT_H}" class="alert a-{escape(kind)}">'
            f"<title>{escape(kind)} @ {_fmt(t)} ms: "
            f'{escape(str(alert.get("message", "")))}</title></line>'
        )
    for name in sorted(series):
        points = series[name]
        if not points:
            continue
        path = " ".join(
            f"{'M' if i == 0 else 'L'}{xp(t):.2f} {yp(v):.2f}"
            for i, (t, v) in enumerate(points)
        )
        parts.append(
            f'<path d="{path}" class="line t-{slots.get(name, 0)}">'
            f"<title>{escape(name)}</title></path>"
        )
    parts.append("</svg>")
    return f"<h2>{escape(title)} <small>({escape(unit)})</small></h2>" + "".join(
        parts
    )


def _series_points(
    doc_series: Mapping[str, Mapping[str, object]],
    path: str,
    value_of,
) -> List[Tuple[float, float]]:
    """(window midpoint, value) points of one exported series."""
    data = doc_series.get(path)
    if not data:
        return []
    window = float(data["window"])  # type: ignore[arg-type]
    cells = data["cells"]
    assert isinstance(cells, dict)
    points = []
    for key in sorted(cells, key=int):
        value = value_of(data, cells[key])
        points.append(((int(key) + 0.5) * window, float(value)))
    return points


# -- page assembly ------------------------------------------------------------


def _tiles(entries: Sequence[Tuple[str, str]]) -> str:
    tiles = "".join(
        f'<div class="tile"><div class="label">{escape(label)}</div>'
        f'<div class="value">{escape(value)}</div></div>'
        for label, value in entries
    )
    return f'<div class="tiles">{tiles}</div>'


def _render_serving(doc: Mapping[str, object]) -> List[str]:
    meta = doc["meta"]
    serving = doc["serving"]
    doc_series = doc.get("series", {})
    alerts = doc.get("alerts", [])
    assert isinstance(meta, dict) and isinstance(serving, dict)
    assert isinstance(doc_series, dict) and isinstance(alerts, list)
    tenants = serving["tenants"]
    assert isinstance(tenants, dict)
    duration_ms = float(meta["duration_ms"])
    totals = serving["totals"]
    assert isinstance(totals, dict)
    slots = _tenant_slots(list(tenants))
    names = sorted(tenants)

    out: List[str] = []
    out.append(
        "<h1>MAICC serving run report</h1>"
        f'<p class="meta">scenario <b>{escape(str(meta["scenario"]))}</b> · '
        f'policy <b>{escape(str(meta["policy"]))}</b> · '
        f'discipline {escape(str(meta["discipline"]))} · '
        f"{_fmt(duration_ms)} ms · "
        f'window {_fmt(float(meta["window_ms"]))} ms</p>'
    )
    out.append(
        _tiles(
            [
                ("completed", _fmt(totals["completed"])),
                ("shed", _fmt(totals["shed"])),
                ("deadline misses", _fmt(totals["deadline_misses"])),
                ("worst p99 ms", _fmt(round(float(totals["worst_p99_ms"]), 3))),
                ("utilization", _fmt(round(float(serving["utilization"]), 3))),
                ("alerts", _fmt(len(alerts))),
            ]
        )
    )

    # Latency attribution: stacked bar per tenant, grouped by category.
    bar_rows: List[Tuple[str, List[Tuple[str, float]]]] = []
    attr_rows: List[List[object]] = []
    seen_categories: List[str] = []
    for name in names:
        attribution = tenants[name]["attribution"]
        phases: Mapping[str, float] = attribution["phases"]
        categories: Mapping[str, str] = attribution["categories"]
        by_category: Dict[str, float] = {}
        for phase, value in phases.items():
            by_category.setdefault(categories[phase], 0.0)
            by_category[categories[phase]] += float(value)
        segments = [
            (c, by_category[c]) for c in PHASE_CATEGORIES if c in by_category
        ]
        for c, _ in segments:
            if c not in seen_categories:
                seen_categories.append(c)
        bar_rows.append((name, segments))
        total = sum(v for _, v in segments)
        attr_rows.append(
            [name]
            + [_fmt(round(by_category.get(c, 0.0), 4)) for c in PHASE_CATEGORIES]
            + [_fmt(round(total, 4))]
        )
    out.append(
        '<div class="card"><h2>Where the time went (per tenant, ms)</h2>'
        + _stacked_bar_svg(bar_rows)
        + _legend(
            [
                (_category_class(c), c)
                for c in PHASE_CATEGORIES
                if c in seen_categories
            ]
        )
        + _table(["tenant", *PHASE_CATEGORIES, "total"], attr_rows)
        + "</div>"
    )

    # Time-series panels from the registry's windowed series.
    tenant_legend = _legend([(f"tf-{slots[n]}", n) for n in names])
    panels: List[Tuple[str, str, Dict[str, List[Tuple[float, float]]]]] = []
    throughput = {
        n: _series_points(
            doc_series,
            f"serving/tenant/{n}/throughput",
            lambda data, cell: 1000.0
            * float(cell["count"])
            / float(data["window"]),
        )
        for n in names
    }
    panels.append(("Throughput", "requests/s", throughput))
    p99 = {
        n: _series_points(
            doc_series,
            f"serving/tenant/{n}/latency_windowed",
            lambda data, cell: _cell_percentile(
                data["bounds"] or [], cell, 99.0
            ),
        )
        for n in names
    }
    panels.append(("p99 latency per window", "ms", p99))
    depth = {
        n: _series_points(
            doc_series,
            f"serving/tenant/{n}/queue_depth",
            lambda data, cell: float(cell["last"] or 0.0),
        )
        for n in names
    }
    panels.append(("Queue depth (last sample)", "requests", depth))
    shed = {
        n: _series_points(
            doc_series,
            f"serving/tenant/{n}/shed_windowed",
            lambda data, cell: float(cell["count"]),
        )
        for n in names
    }
    if any(shed.values()):
        panels.append(("Shed requests per window", "requests", shed))
    servers = serving.get("servers", {})
    assert isinstance(servers, dict)
    utilization = {
        s: _series_points(
            doc_series,
            f"serving/server/{s}/busy",
            lambda data, cell: float(cell["busy"]) / float(data["window"]),
        )
        for s in sorted(set(servers.values()))
    }
    util_slots = _tenant_slots(list(utilization))
    for title, unit, data in panels:
        out.append(
            '<div class="card">'
            + _line_panel(title, unit, duration_ms, data, slots, alerts)
            + tenant_legend
            + "</div>"
        )
    if any(utilization.values()):
        out.append(
            '<div class="card">'
            + _line_panel(
                "Server utilization", "busy fraction", duration_ms,
                utilization, util_slots, alerts,
            )
            + _legend([(f"tf-{util_slots[s]}", s) for s in sorted(utilization)])
            + "</div>"
        )

    # Alerts: icon + label so state is never color-alone.
    if alerts:
        rows = [
            [
                _fmt(round(float(a["time_ms"]), 3)),
                f'{ALERT_ICONS.get(str(a["kind"]), "•")} {a["kind"]}',
                "all tenants" if a["tenant"] == CLUSTER else a["tenant"],
                _fmt(round(float(a["value"]), 3)),
                _fmt(float(a["threshold"])),
                str(a.get("message", "")),
            ]
            for a in alerts
        ]
        out.append(
            '<div class="card"><h2>SLO alerts</h2>'
            + _table(
                ["time ms", "kind", "tenant", "value", "threshold", "detail"],
                rows,
            )
            + "</div>"
        )

    # Per-tenant SLO table (the WCAG-clean twin of every chart above).
    slo_rows = []
    for name in names:
        t = tenants[name]
        latency = t["latency_ms"]
        slo_rows.append(
            [
                name,
                t["arrivals"],
                t["completed"],
                t["shed"],
                _fmt(round(float(latency["p50"]), 4)),
                _fmt(round(float(latency["p95"]), 4)),
                _fmt(round(float(latency["p99"]), 4)),
                _fmt(round(100.0 * float(t["deadline_miss_rate"]), 2)),
                _fmt(round(float(t["goodput_rps"]), 1)),
            ]
        )
    out.append(
        '<div class="card"><h2>Per-tenant SLO</h2>'
        + _table(
            [
                "tenant", "arrivals", "completed", "shed", "p50 ms",
                "p95 ms", "p99 ms", "miss %", "goodput/s",
            ],
            slo_rows,
        )
        + "</div>"
    )
    return out


def _absolute_stacked_bars(
    rows: Sequence[Tuple[str, List[Tuple[str, float]]]],
    slots: Mapping[str, int],
    unit: str,
) -> str:
    """Horizontal stacked bars on one shared absolute scale.

    Unlike :func:`_stacked_bar_svg` (per-row normalization, composition
    view), every row here is scaled against the global peak, so bar
    lengths compare across rows — the right view for per-chip load.
    """
    bar_h, row_h, label_w = 18, 30, 110
    width = 640
    height = row_h * len(rows) + 4
    peak = max(
        (sum(v for _, v in segments) for _, segments in rows), default=0.0
    )
    peak = peak if peak > 0 else 1.0
    span = width - label_w - 8
    parts = [
        f'<svg width="{width}" height="{height}" role="img" '
        f'aria-label="per-chip load stacked bars">'
    ]
    for r, (label, segments) in enumerate(rows):
        y = 4 + r * row_h
        parts.append(
            f'<text x="{label_w - 8}" y="{y + bar_h - 5}" '
            f'text-anchor="end">{escape(label)}</text>'
        )
        x = float(label_w)
        for series, value in segments:
            if value <= 0:
                continue
            w = span * (value / (peak * 1.05))
            parts.append(
                f'<rect x="{x:.2f}" y="{y}" width="{max(w, 0.5):.2f}" '
                f'height="{bar_h}" rx="2" class="tf-{slots.get(series, 0)}">'
                f"<title>{escape(label)} · {escape(series)}: "
                f"{_fmt(value)} {escape(unit)}</title></rect>"
            )
            x += w
    parts.append("</svg>")
    return "".join(parts)


def _render_fleet(doc: Mapping[str, object]) -> List[str]:
    meta = doc["meta"]
    fleet = doc["fleet"]
    assert isinstance(meta, dict) and isinstance(fleet, dict)
    models = fleet["models"]
    per_chip = fleet["per_chip"]
    totals = fleet["totals"]
    utilization = fleet["utilization"]
    events = fleet["events"]
    router = fleet["router"]
    assert isinstance(models, dict) and isinstance(per_chip, dict)
    assert isinstance(totals, dict) and isinstance(utilization, dict)
    assert isinstance(events, dict) and isinstance(router, dict)
    names = sorted(models)
    slots = _tenant_slots(names)
    model_legend = _legend([(f"tf-{slots[n]}", n) for n in names])
    recoveries = events["recoveries"]
    scale_events = events["scale"]
    assert isinstance(recoveries, list) and isinstance(scale_events, list)

    out: List[str] = []
    out.append(
        "<h1>MAICC fleet run report</h1>"
        f'<p class="meta">scenario <b>{escape(str(meta["scenario"]))}</b> · '
        f'balancer <b>{escape(str(meta["balancer"]))}</b> · '
        f'{_fmt(meta["chips"])} chips · '
        f'{_fmt(float(meta["duration_ms"]))} ms · '
        f'seed {_fmt(meta["seed"])}</p>'
    )
    fleet_latency = totals["latency_ms"]
    assert isinstance(fleet_latency, dict)
    out.append(
        _tiles(
            [
                ("generated", _fmt(totals["generated"])),
                ("completed", _fmt(totals["completed"])),
                ("shed", _fmt(totals["shed"])),
                ("failed", _fmt(totals["failed"])),
                ("router shed", _fmt(totals["router_shed"])),
                ("fleet p99 ms",
                 _fmt(round(float(fleet_latency["p99"]), 3))),
                ("worst-model p99 ms",
                 _fmt(round(float(totals["worst_model_p99_ms"]), 3))),
                ("mean utilization",
                 _fmt(round(float(totals["mean_utilization"]), 3))),
                ("conserved", _fmt(bool(totals["conserved"]))),
            ]
        )
    )

    # Per-model fleet rollup (latency merged across replicas).
    model_rows = []
    for name in names:
        m = models[name]
        latency = m["latency_ms"]
        model_rows.append(
            [
                name,
                m["generated"],
                m["completed"],
                m["shed"],
                m["failed"],
                m["router_shed"],
                _fmt(round(float(latency["p50"]), 4)),
                _fmt(round(float(latency["p95"]), 4)),
                _fmt(round(float(latency["p99"]), 4)),
                m["replicas_final"],
                _fmt(bool(m["conserved"])),
            ]
        )
    out.append(
        '<div class="card"><h2>Per-model fleet SLO</h2>'
        + _table(
            [
                "model", "generated", "completed", "shed", "failed",
                "router shed", "p50 ms", "p95 ms", "p99 ms", "replicas",
                "conserved",
            ],
            model_rows,
        )
        + "</div>"
    )

    # Per-chip panels: routed load by model (absolute scale), then the
    # per-chip accounting table — the WCAG-clean twin of the bars.
    routed = router["routed"]
    assert isinstance(routed, dict)
    chips = sorted(per_chip, key=int)
    bar_rows: List[Tuple[str, List[Tuple[str, float]]]] = []
    chip_rows: List[List[object]] = []
    for chip in chips:
        result = per_chip[chip]
        segments: List[Tuple[str, float]] = []
        arrivals = completed = shed = failed = 0
        hosted: List[str] = []
        if isinstance(result, dict):
            tenants = result["tenants"]
            assert isinstance(tenants, dict)
            for tenant in sorted(tenants):
                row = tenants[tenant]
                segments.append((tenant, float(row["arrivals"])))
                arrivals += int(row["arrivals"])
                completed += int(row["completed"])
                shed += int(row["shed"])
                failed += int(row.get("failed", 0))
                hosted.append(tenant)
        bar_rows.append((f"chip {chip}", segments))
        chip_rows.append(
            [
                chip,
                _fmt(round(float(utilization.get(chip, 0.0)), 3)),
                arrivals,
                completed,
                shed,
                failed,
                routed.get(chip, 0),
                " ".join(hosted) or "—",
            ]
        )
    out.append(
        '<div class="card"><h2>Per-chip load (arrivals by model)</h2>'
        + _absolute_stacked_bars(bar_rows, slots, "requests")
        + model_legend
        + _table(
            [
                "chip", "utilization", "arrivals", "completed", "shed",
                "failed", "routed", "models",
            ],
            chip_rows,
        )
        + "</div>"
    )

    # Control-plane events: crash recoveries and autoscale decisions.
    if recoveries:
        rows = [
            [
                _fmt(round(float(e["time_ms"]), 3)),
                e["model"],
                e["from_chip"],
                e["to_chip"],
                _fmt(round(float(e["ready_ms"]), 3)),
            ]
            for e in recoveries
        ]
        out.append(
            '<div class="card"><h2>Crash recoveries</h2>'
            + _table(
                ["time ms", "model", "from chip", "to chip", "ready ms"],
                rows,
            )
            + "</div>"
        )
    if scale_events:
        rows = [
            [
                _fmt(round(float(e["time_ms"]), 3)),
                e["model"],
                e["direction"],
                e["chip"],
                e["replicas"],
                _fmt(round(float(e["utilization"]), 3)),
                _fmt(bool(e["burn_alert"])),
            ]
            for e in scale_events
        ]
        out.append(
            '<div class="card"><h2>Autoscale events</h2>'
            + _table(
                [
                    "time ms", "model", "direction", "chip", "replicas",
                    "window util", "burn alert",
                ],
                rows,
            )
            + "</div>"
        )
    return out


def _render_xcheck(doc: Mapping[str, object]) -> List[str]:
    workloads = doc["workloads"]
    assert isinstance(workloads, dict)
    out: List[str] = [
        "<h1>MAICC cross-tier report</h1>",
        '<p class="meta">one mapped plan, every simulation tier; phase '
        "attribution via the same decomposition the serving stack "
        "bills.</p>",
    ]
    for name in sorted(workloads):
        workload = workloads[name]
        xcheck = workload["xcheck"]
        tiers = workload["tiers"]
        assert isinstance(xcheck, dict) and isinstance(tiers, dict)
        check_rows = [
            [
                c["backend"],
                _fmt(round(float(c["total_cycles"]), 1)),
                _fmt(round(float(c["latency_ms"]), 6)),
                _fmt(round(float(c["ratio"]), 4)),
                f'[{_fmt(c["envelope"][0])}, {_fmt(c["envelope"][1])}]',
                _fmt(bool(c["ok"])),
            ]
            for c in xcheck["checks"]
        ]
        bar_rows: List[Tuple[str, List[Tuple[str, float]]]] = []
        seen: List[str] = []
        phase_rows: List[List[object]] = []
        for backend in sorted(tiers):
            tier = tiers[backend]
            by_category: Dict[str, float] = {}
            for phase, value in tier["phases"].items():
                category = tier["categories"][phase]
                by_category.setdefault(category, 0.0)
                by_category[category] += float(value)
            segments = [
                (c, by_category[c])
                for c in PHASE_CATEGORIES
                if c in by_category and by_category[c] > 0
            ]
            for c, _ in segments:
                if c not in seen:
                    seen.append(c)
            bar_rows.append((backend, segments))
            phase_rows.append(
                [backend]
                + [
                    _fmt(round(by_category.get(c, 0.0), 1))
                    for c in PHASE_CATEGORIES
                ]
            )
        out.append(
            f'<div class="card"><h2>{escape(name)}</h2>'
            + _table(
                ["backend", "cycles", "latency ms", "ratio", "envelope", "ok"],
                check_rows,
            )
            + "<h2>Cycle attribution by tier</h2>"
            + _stacked_bar_svg(bar_rows)
            + _legend([(_category_class(c), c) for c in seen])
            + _table(["backend", *PHASE_CATEGORIES], phase_rows)
            + "</div>"
        )
    return out


#: Hardware blocks the DSE panels stack (union of the energy and area
#: splits); sorted order fixes each block's palette slot.
DSE_BLOCKS = ("cmem", "core", "dram", "llc", "local_mem", "noc")

#: Neutral mark for dominated design points (works on both surfaces —
#: identity comes from the table twin, never from color).
_DOT_FILL = "#898781"


def _pareto_scatter(
    group: str,
    points: Sequence[Mapping[str, object]],
    frontier_ids: Sequence[str],
) -> str:
    """Latency-energy scatter of one (network, backend) group.

    Dominated points are small neutral dots; the Pareto frontier is a
    2px staircase with 4px markers.  Native tooltips carry the point
    ids; the exact values live in the table twin below the chart.
    """
    w, h = _PLOT_W, 220
    top, right = 8, 8
    xs = [float(p["latency_ms"]) for p in points]  # type: ignore[arg-type]
    ys = [float(p["energy_total_j"]) for p in points]  # type: ignore[arg-type]
    peak_x = max(xs, default=0.0) or 1.0
    peak_y = max(ys, default=0.0) or 1.0

    def xp(v: float) -> float:
        return _GUTTER_L + (w - _GUTTER_L - right) * (v / (peak_x * 1.05))

    def yp(v: float) -> float:
        return top + (h - top - _GUTTER_B) * (1.0 - v / (peak_y * 1.05))

    parts = [
        f'<svg width="{w}" height="{h}" role="img" '
        f'aria-label="Pareto frontier {escape(group)}">'
    ]
    for frac in (0.0, 0.5, 1.0):
        y = yp(peak_y * frac)
        cls = "axis" if frac == 0.0 else "grid"
        parts.append(
            f'<line x1="{_GUTTER_L}" y1="{y:.2f}" x2="{w - right}" '
            f'y2="{y:.2f}" class="{cls}"/>'
            f'<text x="{_GUTTER_L - 6}" y="{y + 4:.2f}" '
            f'text-anchor="end">{_fmt(round(peak_y * frac, 6))}</text>'
        )
        x = xp(peak_x * frac)
        parts.append(
            f'<text x="{x:.2f}" y="{h - _GUTTER_B + 16}" '
            f'text-anchor="middle">{_fmt(round(peak_x * frac, 3))} ms</text>'
        )
    by_id = {str(p["point_id"]): p for p in points}
    frontier = [by_id[pid] for pid in frontier_ids if pid in by_id]
    dominated = [p for p in points if str(p["point_id"]) not in set(frontier_ids)]
    for p in dominated:
        parts.append(
            f'<circle cx="{xp(float(p["latency_ms"])):.2f}" '  # type: ignore[arg-type]
            f'cy="{yp(float(p["energy_total_j"])):.2f}" r="3" '  # type: ignore[arg-type]
            f'fill="{_DOT_FILL}" fill-opacity="0.55">'
            f'<title>{escape(str(p["point_id"]))}</title></circle>'
        )
    if frontier:
        path = " ".join(
            f"{'M' if i == 0 else 'L'}"
            f'{xp(float(p["latency_ms"])):.2f} '  # type: ignore[arg-type]
            f'{yp(float(p["energy_total_j"])):.2f}'  # type: ignore[arg-type]
            for i, p in enumerate(frontier)
        )
        parts.append(f'<path d="{path}" class="line t-0"/>')
    for p in frontier:
        parts.append(
            f'<circle cx="{xp(float(p["latency_ms"])):.2f}" '  # type: ignore[arg-type]
            f'cy="{yp(float(p["energy_total_j"])):.2f}" r="4" '  # type: ignore[arg-type]
            f'class="tf-0"><title>{escape(str(p["point_id"]))}: '
            f'{_fmt(round(float(p["latency_ms"]), 4))} ms, '  # type: ignore[arg-type]
            f'{_fmt(float(p["energy_total_j"]))} J</title></circle>'  # type: ignore[arg-type]
        )
    parts.append("</svg>")
    return "".join(parts)


def _render_dse(doc: Mapping[str, object]) -> List[str]:
    meta = doc["meta"]
    dse = doc["dse"]
    assert isinstance(meta, dict) and isinstance(dse, dict)
    counts = dse["counts"]
    points = dse["points"]
    pareto = dse["pareto"]
    tables = dse["tables"]
    baselines = dse["baselines"]
    assert isinstance(counts, dict) and isinstance(points, list)
    assert isinstance(pareto, dict) and isinstance(tables, dict)
    assert isinstance(baselines, dict)
    slots = _tenant_slots(DSE_BLOCKS)

    out: List[str] = []
    out.append(
        "<h1>MAICC design-space exploration report</h1>"
        f'<p class="meta">sweep <b>{escape(str(meta["sweep"]))}</b> · '
        f'{_fmt(meta["points"])} design points · '
        f"frontier objectives: latency vs total energy "
        f"(per network / backend)</p>"
    )
    out.append(
        _tiles(
            [
                ("points", _fmt(len(points))),
                ("ok", _fmt(counts.get("ok", 0))),
                ("infeasible", _fmt(counts.get("infeasible", 0))),
                ("rejected", _fmt(counts.get("rejected", 0))),
                ("error", _fmt(counts.get("error", 0))),
                ("frontier", _fmt(sum(len(m) for m in pareto.values()))),  # type: ignore[arg-type]
            ]
        )
    )

    # One Pareto card per (network, backend) group, with a table twin.
    ok_points = [p for p in points if p.get("status") == "ok"]
    for group in sorted(pareto):
        frontier_ids = pareto[group]
        assert isinstance(frontier_ids, list)
        network, backend = str(group).split("/", 1)
        members = [
            p for p in ok_points
            if p["axes"]["network"] == network
            and p["axes"]["backend"] == backend
        ]
        if not members:
            continue
        frontier_rows = []
        by_id = {str(p["point_id"]): p for p in members}
        for pid in frontier_ids:
            p = by_id.get(str(pid))
            if p is None:
                continue
            frontier_rows.append(
                [
                    p["point_id"],
                    _fmt(round(float(p["latency_ms"]), 4)),  # type: ignore[arg-type]
                    _fmt(float(p["energy_total_j"])),  # type: ignore[arg-type]
                    _fmt(round(float(p["area_total_mm2"]), 3)),  # type: ignore[arg-type]
                    _fmt(round(float(p["average_power_w"]), 3)),  # type: ignore[arg-type]
                    _fmt(round(float(p["gops_per_watt"]), 2)),  # type: ignore[arg-type]
                ]
            )
        out.append(
            f'<div class="card"><h2>Pareto frontier — {escape(str(group))} '
            f"<small>({len(frontier_ids)} of {len(members)} points)</small>"
            "</h2>"
            + _pareto_scatter(str(group), members, [str(i) for i in frontier_ids])
            + _table(
                [
                    "point", "latency ms", "energy J", "area mm²",
                    "power W", "GOPS/W",
                ],
                frontier_rows,
            )
            + "</div>"
        )

    # Energy composition of the frontier points (absolute scale).
    frontier_all: List[str] = []
    for group in sorted(pareto):
        for pid in pareto[group]:  # type: ignore[union-attr]
            if pid not in frontier_all:
                frontier_all.append(str(pid))
    energy_rows_svg: List[Tuple[str, List[Tuple[str, float]]]] = []
    energy_rows_tab: List[List[object]] = []
    by_id_all = {str(p["point_id"]): p for p in ok_points}
    for pid in frontier_all:
        p = by_id_all.get(pid)
        if p is None:
            continue
        energy = p["energy_j"]
        assert isinstance(energy, dict)
        segments = [
            (block, float(energy[block]))
            for block in sorted(energy)
            if float(energy[block]) > 0
        ]
        energy_rows_svg.append((pid, segments))
        energy_rows_tab.append(
            [pid]
            + [_fmt(float(energy.get(b, 0.0))) for b in sorted(energy)]
            + [_fmt(float(p["energy_total_j"]))]  # type: ignore[arg-type]
        )
    if energy_rows_svg:
        blocks = sorted({b for _, segs in energy_rows_svg for b, _ in segs})
        out.append(
            '<div class="card"><h2>Energy by block (frontier points, J)</h2>'
            + _absolute_stacked_bars(energy_rows_svg, slots, "J")
            + _legend([(f"tf-{slots[b]}", b) for b in blocks])
            + _table(["point", *blocks, "total"], energy_rows_tab)
            + "</div>"
        )

    # Area per distinct architecture (points sharing a chip share a row).
    area_table = tables["area"]
    assert isinstance(area_table, list)
    if area_table:
        area_rows_svg = []
        area_rows_tab = []
        area_blocks = [
            b for b in ("cmem", "core", "local_mem", "noc", "llc")
            if f"{b}_mm2" in area_table[0]
        ]
        for row in area_table:
            assert isinstance(row, dict)
            segments = [
                (b, float(row[f"{b}_mm2"]))
                for b in area_blocks
                if float(row[f"{b}_mm2"]) > 0
            ]
            area_rows_svg.append((str(row["arch"]), segments))
            area_rows_tab.append(
                [row["arch"], row["cores"]]
                + [_fmt(round(float(row[f"{b}_mm2"]), 4)) for b in area_blocks]
                + [
                    _fmt(round(float(row["total_mm2"]), 3)),
                    _fmt(round(float(row["total_mm2_vs_ref"]), 4)),
                ]
            )
        out.append(
            '<div class="card"><h2>Area by block (per architecture, mm²)'
            "</h2>"
            + _absolute_stacked_bars(area_rows_svg, slots, "mm²")
            + _legend([(f"tf-{slots[b]}", b) for b in area_blocks])
            + _table(
                ["arch", "cores", *area_blocks, "total", "vs paper 28 mm²"],
                area_rows_tab,
            )
            + "</div>"
        )

    # Baseline section: whole-network scalar / Neural Cache references.
    if baselines:
        base_rows = [
            [
                name,
                _fmt(float(b["scalar_cycles"])),
                _fmt(float(b["scalar_energy_j"])),
                _fmt(float(b["neural_cache_cycles"])),
                _fmt(float(b["neural_cache_energy_j"])),
                _fmt(float(b["total_macs"])),
            ]
            for name, b in sorted(baselines.items())
            if isinstance(b, dict)
        ]
        out.append(
            '<div class="card"><h2>Single-node baselines (whole network)'
            "</h2>"
            + _table(
                [
                    "network", "scalar cycles", "scalar J",
                    "neural cache cycles", "neural cache J", "MACs",
                ],
                base_rows,
            )
            + "</div>"
        )

    # Non-simulable points, so the artifact accounts for its coverage.
    bad = [p for p in points if p.get("status") != "ok"]
    if bad:
        cap = 25
        rows = [
            [
                p["point_id"],
                p["status"],
                " ".join(str(f) for f in p.get("findings", [])) or "—",
                str(p.get("detail", ""))[:120],
            ]
            for p in bad[:cap]
        ]
        more = (
            f"<p class='meta'>… and {len(bad) - cap} more.</p>"
            if len(bad) > cap else ""
        )
        out.append(
            '<div class="card"><h2>Non-simulable points</h2>'
            + _table(["point", "status", "rules", "detail"], rows)
            + more
            + "</div>"
        )
    return out


def render_html(doc: Mapping[str, object]) -> str:
    """Render a validated report document to one self-contained page."""
    kind = doc.get("kind")
    if kind == "serving":
        serving = doc["serving"]
        assert isinstance(serving, dict)
        tenants = list(serving["tenants"])  # type: ignore[arg-type]
        body = _render_serving(doc)
        title = "MAICC serving run report"
    elif kind == "fleet":
        fleet = doc["fleet"]
        assert isinstance(fleet, dict)
        tenants = list(fleet["models"])  # type: ignore[arg-type]
        body = _render_fleet(doc)
        title = "MAICC fleet run report"
    elif kind == "dse":
        tenants = list(DSE_BLOCKS)
        body = _render_dse(doc)
        title = "MAICC design-space exploration report"
    else:
        tenants = []
        body = _render_xcheck(doc)
        title = "MAICC cross-tier report"
    return (
        "<!DOCTYPE html>\n"
        '<html lang="en"><head><meta charset="utf-8">\n'
        f"<title>{escape(title)}</title>\n"
        f"<style>{_style(tenants)}</style>\n"
        "</head><body>\n" + "\n".join(body) + "\n</body></html>\n"
    )


__all__ = ["ALERT_COLORS", "CATEGORICAL", "render_html"]
