"""SLO burn-rate monitoring over windowed serving telemetry.

:class:`SLOMonitor` watches a serving run through fixed sim-time windows
(:class:`~repro.telemetry.WindowedSeries`) and raises structured
:class:`AlertEvent` objects when the run starts eating its error budget:

* ``burn_rate`` — a window's deadline-miss fraction divided by the
  tenant's error budget reached ``burn_threshold`` (the SRE burn-rate
  rule: burn 1.0 spends budget exactly as fast as allowed, 2.0 spends it
  twice as fast).
* ``queue_growth`` — a tenant's admission-queue depth grew across
  ``queue_growth_windows`` consecutive windows: the onset of an
  arrival-rate/service-rate crossover, visible well before latencies do.
* ``resize_thrash`` — ``thrash_count`` elastic resizes landed within
  ``thrash_window_ms``: the control loop is oscillating instead of
  converging.

The monitor is deterministic: it sees only sim-time events, evaluates
each closed window exactly once (tenants in sorted order), and returns
alerts sorted by ``(time_ms, kind, tenant)`` — two identical runs emit
identical alert streams.  The serving simulator threads alerts into the
run result, the Perfetto trace (as instants), and
:meth:`repro.serving.policies.ServingPolicy.on_alerts`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import ObservabilityError
from repro.telemetry.windows import WindowedSeries

#: Window size the serving simulator uses for its registry time series
#: when no monitor dictates one.
DEFAULT_WINDOW_MS = 10.0

#: Alert kinds the monitor can raise (docs/OBSERVABILITY.md).
ALERT_KINDS = ("burn_rate", "queue_growth", "resize_thrash")

#: Tenant marker for cluster-wide alerts (resize thrash has no tenant).
CLUSTER = "*"


@dataclass(frozen=True)
class AlertEvent:
    """One structured SLO alert, stamped in sim time.

    ``value`` is the observed figure that crossed ``threshold`` — the
    burn rate, the queue depth, or the resize count — so a report can
    annotate the alert without re-deriving it.
    """

    kind: str
    tenant: str
    time_ms: float
    window_ms: float
    value: float
    threshold: float
    message: str

    def __post_init__(self) -> None:
        if self.kind not in ALERT_KINDS:
            raise ObservabilityError(
                f"unknown alert kind {self.kind!r}; choose from {ALERT_KINDS}"
            )

    def as_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "tenant": self.tenant,
            "time_ms": self.time_ms,
            "window_ms": self.window_ms,
            "value": self.value,
            "threshold": self.threshold,
            "message": self.message,
        }


@dataclass(frozen=True)
class SLOConfig:
    """Thresholds for the three alert detectors."""

    window_ms: float = DEFAULT_WINDOW_MS
    #: Allowed deadline-miss fraction (the error budget).  A window whose
    #: miss rate is ``burn_threshold`` times this budget alerts.
    error_budget: float = 0.05
    burn_threshold: float = 2.0
    #: Consecutive windows of strictly growing queue depth before the
    #: onset alert fires (once per growth run).
    queue_growth_windows: int = 3
    #: Resize-thrash detector: this many applied resizes inside one
    #: ``thrash_window_ms`` span.
    thrash_count: int = 3
    thrash_window_ms: float = 50.0

    def __post_init__(self) -> None:
        if self.window_ms <= 0:
            raise ObservabilityError(
                f"window_ms must be positive, got {self.window_ms}"
            )
        if not 0.0 < self.error_budget <= 1.0:
            raise ObservabilityError(
                f"error_budget must be in (0, 1], got {self.error_budget}"
            )
        if self.burn_threshold <= 0:
            raise ObservabilityError(
                f"burn_threshold must be positive, got {self.burn_threshold}"
            )
        if self.queue_growth_windows < 2:
            raise ObservabilityError(
                "queue_growth_windows must be >= 2, got "
                f"{self.queue_growth_windows}"
            )
        if self.thrash_count < 2:
            raise ObservabilityError(
                f"thrash_count must be >= 2, got {self.thrash_count}"
            )
        if self.thrash_window_ms <= 0:
            raise ObservabilityError(
                f"thrash_window_ms must be positive, got {self.thrash_window_ms}"
            )


@dataclass
class _GrowthState:
    """Per-tenant queue-growth streak tracking."""

    last_depth: float = 0.0
    streak: int = 0
    alerted: bool = False


class SLOMonitor:
    """Evaluates closed windows of a serving run against SLO thresholds.

    The simulator feeds it completions, queue-depth samples, and resizes
    as they happen, and calls :meth:`poll` whenever sim time advances;
    ``poll`` evaluates every window that has fully closed since the last
    call and returns the fresh alerts.  All alerts ever raised stay in
    :attr:`alerts`.
    """

    def __init__(self, config: Optional[SLOConfig] = None) -> None:
        self.config = config or SLOConfig()
        self.alerts: List[AlertEvent] = []
        w = self.config.window_ms
        self._latency: Dict[str, WindowedSeries] = {}
        self._misses: Dict[str, WindowedSeries] = {}
        self._depth: Dict[str, WindowedSeries] = {}
        self._window = w
        self._evaluated_until = 0  # first window index not yet evaluated
        self._growth: Dict[str, _GrowthState] = {}
        self._resize_times: List[float] = []
        self._thrash_alerted_until = float("-inf")
        self._pending: List[AlertEvent] = []

    # -- event intake ---------------------------------------------------------

    def _series(
        self, table: Dict[str, WindowedSeries], tenant: str
    ) -> WindowedSeries:
        series = table.get(tenant)
        if series is None:
            series = table[tenant] = WindowedSeries(window=self._window)
        return series

    def record_completion(
        self, tenant: str, t: float, latency_ms: float, met_deadline: bool
    ) -> None:
        self._series(self._latency, tenant).observe(t, latency_ms)
        if not met_deadline:
            self._series(self._misses, tenant).observe(t, 1.0)

    def record_queue_depth(self, tenant: str, t: float, depth: int) -> None:
        self._series(self._depth, tenant).set(t, float(depth))

    def record_resize(self, t: float) -> None:
        cfg = self.config
        times = self._resize_times
        times.append(t)
        while times and times[0] < t - cfg.thrash_window_ms:
            times.pop(0)
        if len(times) >= cfg.thrash_count and t > self._thrash_alerted_until:
            # One alert per thrash burst: suppress until the current
            # window of resizes has aged out.
            self._thrash_alerted_until = t + cfg.thrash_window_ms
            self._pending.append(
                AlertEvent(
                    kind="resize_thrash",
                    tenant=CLUSTER,
                    time_ms=t,
                    window_ms=cfg.thrash_window_ms,
                    value=float(len(times)),
                    threshold=float(cfg.thrash_count),
                    message=(
                        f"{len(times)} resizes within "
                        f"{cfg.thrash_window_ms} ms"
                    ),
                )
            )

    # -- evaluation -----------------------------------------------------------

    def poll(self, now_ms: float) -> List[AlertEvent]:
        """Evaluate every window that closed before ``now_ms``.

        Returns the alerts raised by this call (already appended to
        :attr:`alerts`), sorted by ``(time_ms, kind, tenant)``.
        """
        fresh: List[AlertEvent] = list(self._pending)
        self._pending.clear()
        limit = int(now_ms // self._window)
        tenants = sorted(
            set(self._latency) | set(self._misses) | set(self._depth)
        )
        for index in range(self._evaluated_until, limit):
            for tenant in tenants:
                fresh.extend(self._evaluate(tenant, index))
        self._evaluated_until = max(self._evaluated_until, limit)
        fresh.sort(key=lambda a: (a.time_ms, a.kind, a.tenant))
        self.alerts.extend(fresh)
        return fresh

    def _evaluate(self, tenant: str, index: int) -> List[AlertEvent]:
        cfg = self.config
        end = (index + 1) * self._window
        out: List[AlertEvent] = []

        lat = self._latency.get(tenant)
        cell = lat.cells.get(index) if lat is not None else None
        if cell is not None and cell.count > 0:
            miss_series = self._misses.get(tenant)
            miss_cell = (
                miss_series.cells.get(index) if miss_series is not None else None
            )
            misses = miss_cell.count if miss_cell is not None else 0
            miss_rate = misses / cell.count
            burn = miss_rate / cfg.error_budget
            if burn >= cfg.burn_threshold:
                out.append(
                    AlertEvent(
                        kind="burn_rate",
                        tenant=tenant,
                        time_ms=end,
                        window_ms=self._window,
                        value=burn,
                        threshold=cfg.burn_threshold,
                        message=(
                            f"{misses}/{cell.count} deadline misses in the "
                            f"window burn the error budget at {burn:.2f}x"
                        ),
                    )
                )

        depth_series = self._depth.get(tenant)
        depth_cell = (
            depth_series.cells.get(index) if depth_series is not None else None
        )
        if depth_cell is not None and depth_cell.last_t >= 0.0:
            state = self._growth.setdefault(tenant, _GrowthState())
            depth = depth_cell.last
            if depth > state.last_depth:
                state.streak += 1
                if (
                    state.streak >= cfg.queue_growth_windows
                    and not state.alerted
                ):
                    state.alerted = True
                    out.append(
                        AlertEvent(
                            kind="queue_growth",
                            tenant=tenant,
                            time_ms=end,
                            window_ms=self._window,
                            value=depth,
                            threshold=float(cfg.queue_growth_windows),
                            message=(
                                f"queue depth grew {state.streak} windows "
                                f"in a row (now {depth:g})"
                            ),
                        )
                    )
            else:
                state.streak = 0
                state.alerted = False
            state.last_depth = depth
        return out


__all__ = [
    "ALERT_KINDS",
    "AlertEvent",
    "CLUSTER",
    "DEFAULT_WINDOW_MS",
    "SLOConfig",
    "SLOMonitor",
]
