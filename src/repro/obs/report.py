"""The run-report artifact: one JSON document describing a whole run.

``scripts/report.py`` renders a serving, fleet, cross-tier, or
design-space-exploration run into two artifacts sharing one source of
truth:

* a **JSON document** under the ``maicc-obs-report/1`` schema — the
  machine-readable record ``scripts/bench.py --check`` and the CI
  ``obs-smoke`` job consume, validated by :func:`validate_report`;
* a **self-contained HTML dashboard** (:mod:`repro.obs.html`) rendered
  as a pure function of that document.

Both are byte-deterministic: every number is simulation-derived, every
mapping is emitted in sorted order, and nothing reads the wall clock —
the CI job diffs two generated reports byte-for-byte.

The paper-table replicas in :mod:`repro.experiments` deliberately do
NOT emit this schema: those are byte-pinned plain-text artifacts whose
format is frozen against checked-in expectations (see the rationale in
``repro/experiments/report.py``).  Their underlying sweep data reaches
this schema through the ``dse`` kind instead — the experiment drivers
are thin :class:`repro.dse.SweepSpec` instances, so ``scripts/report.py
dse`` charts the same numbers the pinned tables print.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Sequence

from repro.errors import ObservabilityError
from repro.obs.timeline import PHASE_CATEGORIES, timeline_from_report
from repro.serving.slo import ServingRunResult
from repro.sim.report import RunReport
from repro.sim.xcheck import XCheckReport

if TYPE_CHECKING:
    from repro.dse.result import DSEResult
    from repro.fleet.result import FleetResult

#: The report schema identifier; bump the suffix on breaking changes.
SCHEMA = "maicc-obs-report/1"

REPORT_KINDS = ("serving", "xcheck", "fleet", "dse")


def build_serving_report(
    result: ServingRunResult,
    *,
    scenario: str,
    window_ms: float,
    series: Optional[Mapping[str, Mapping[str, object]]] = None,
) -> Dict[str, object]:
    """The serving-run report document.

    ``series`` is the windowed-series section of a
    :meth:`repro.telemetry.MetricsRegistry.as_dict` export (path ->
    series dict); pass the run's registry series so the dashboard can
    draw its time panels.
    """
    return {
        "schema": SCHEMA,
        "kind": "serving",
        "meta": {
            "scenario": scenario,
            "policy": result.policy,
            "discipline": result.discipline,
            "duration_ms": result.duration_ms,
            "window_ms": window_ms,
        },
        "serving": result.as_dict(),
        "series": {path: dict(data) for path, data in sorted(
            (series or {}).items()
        )},
        "alerts": [alert.as_dict() for alert in result.alerts],
    }


def build_xcheck_report(
    xchecks: Sequence[XCheckReport],
    runs: Mapping[str, Mapping[str, RunReport]],
) -> Dict[str, object]:
    """The cross-tier report document.

    ``runs`` maps workload name -> backend name -> the tier's
    :class:`~repro.sim.report.RunReport`; each is decomposed through
    :func:`repro.obs.timeline.timeline_from_report`, so the per-phase
    cycle table and the serving attribution derive from the same code
    path.
    """
    workloads: Dict[str, object] = {}
    for xcheck in xchecks:
        tier_runs = runs.get(xcheck.network, {})
        tiers: Dict[str, object] = {}
        for backend in sorted(tier_runs):
            timeline = timeline_from_report(tier_runs[backend])
            tiers[backend] = {
                "total_cycles": tier_runs[backend].total_cycles,
                "latency_ms": tier_runs[backend].latency_ms,
                "phases": {p.name: p.duration for p in timeline.phases},
                "categories": {p.name: p.category for p in timeline.phases},
            }
        workloads[xcheck.network] = {
            "xcheck": xcheck.as_dict(),
            "tiers": tiers,
        }
    return {
        "schema": SCHEMA,
        "kind": "xcheck",
        "meta": {"workloads": sorted(workloads)},
        "workloads": workloads,
    }


def build_fleet_report(result: "FleetResult") -> Dict[str, object]:
    """The fleet-run report document.

    The ``fleet`` section is the :meth:`~repro.fleet.result.FleetResult.as_dict`
    export verbatim — per-model rollups merged across replicas, every
    chip's full :class:`~repro.serving.slo.ServingRunResult`, the
    router's control log (recoveries, scale events, shed), and per-chip
    utilization — so the dashboard and the JSON consumers read one
    deterministic shape.
    """
    fleet = result.as_dict()
    return {
        "schema": SCHEMA,
        "kind": "fleet",
        "meta": {
            "scenario": fleet["scenario"],
            "balancer": fleet["balancer"],
            "chips": fleet["chips"],
            "duration_ms": fleet["duration_ms"],
            "seed": fleet["seed"],
        },
        "fleet": fleet,
    }


def build_dse_report(result: "DSEResult") -> Dict[str, object]:
    """The design-space-exploration report document.

    The ``dse`` section is the :meth:`~repro.dse.result.DSEResult.as_dict`
    export verbatim — every expanded point with its status, the
    per-(network, backend) Pareto frontiers, the consolidated
    latency/energy/area tables with their ``*_vs_ref`` columns, and the
    baseline section — so the dashboard and the JSON artifact read one
    deterministic shape.
    """
    dse = result.as_dict()
    return {
        "schema": SCHEMA,
        "kind": "dse",
        "meta": {
            "sweep": dse["sweep"],
            "points": len(result.points),
            "counts": dse["counts"],
            "axes": dse["axes"],
        },
        "dse": dse,
    }


def _require(doc: Mapping[str, object], key: str, kind: type) -> object:
    if key not in doc:
        raise ObservabilityError(f"report is missing required key {key!r}")
    value = doc[key]
    if not isinstance(value, kind):
        raise ObservabilityError(
            f"report key {key!r} must be {kind.__name__}, "
            f"got {type(value).__name__}"
        )
    return value


def validate_report(doc: Mapping[str, object]) -> None:
    """Structural validation of a report document (CI gates on this).

    Checks the schema tag, the section layout of each report kind, the
    alert records, and that every attribution phase carries a category
    from the fixed taxonomy.  Raises :class:`ObservabilityError` on the
    first violation.
    """
    schema = _require(doc, "schema", str)
    if schema != SCHEMA:
        raise ObservabilityError(
            f"unsupported report schema {schema!r} (expected {SCHEMA!r})"
        )
    kind = _require(doc, "kind", str)
    if kind not in REPORT_KINDS:
        raise ObservabilityError(
            f"unknown report kind {kind!r}; choose from {REPORT_KINDS}"
        )
    _require(doc, "meta", dict)
    if kind == "serving":
        serving = _require(doc, "serving", dict)
        tenants = _require(serving, "tenants", dict)
        for name, tenant in tenants.items():
            if not isinstance(tenant, dict):
                raise ObservabilityError(f"tenant {name!r} must be a dict")
            attribution = _require(tenant, "attribution", dict)
            phases = _require(attribution, "phases", dict)
            categories = _require(attribution, "categories", dict)
            if set(phases) != set(categories):
                raise ObservabilityError(
                    f"tenant {name!r}: attribution phases and categories "
                    "disagree"
                )
            for phase, category in categories.items():
                if category not in PHASE_CATEGORIES:
                    raise ObservabilityError(
                        f"tenant {name!r} phase {phase!r} has unknown "
                        f"category {category!r}"
                    )
        _require(doc, "series", dict)
        alerts = _require(doc, "alerts", list)
        for alert in alerts:
            if not isinstance(alert, dict):
                raise ObservabilityError("alert records must be dicts")
            for key in ("kind", "tenant", "time_ms", "value", "threshold"):
                if key not in alert:
                    raise ObservabilityError(
                        f"alert record is missing key {key!r}"
                    )
    elif kind == "fleet":
        fleet = _require(doc, "fleet", dict)
        models = _require(fleet, "models", dict)
        for name, model in models.items():
            if not isinstance(model, dict):
                raise ObservabilityError(f"model {name!r} must be a dict")
            for key in (
                "generated", "completed", "overrun", "shed", "failed",
                "router_shed", "conserved", "latency_ms",
            ):
                if key not in model:
                    raise ObservabilityError(
                        f"model {name!r} is missing key {key!r}"
                    )
        per_chip = _require(fleet, "per_chip", dict)
        for chip, result in per_chip.items():
            if result is not None and not isinstance(result, dict):
                raise ObservabilityError(
                    f"chip {chip!r} result must be a dict or null"
                )
        _require(fleet, "router", dict)
        events = _require(fleet, "events", dict)
        for key in ("failures", "recoveries", "scale"):
            if key not in events:
                raise ObservabilityError(
                    f"fleet events section is missing key {key!r}"
                )
        _require(fleet, "utilization", dict)
        totals = _require(fleet, "totals", dict)
        for key in ("generated", "completed", "conserved",
                    "worst_model_p99_ms", "latency_ms"):
            if key not in totals:
                raise ObservabilityError(
                    f"fleet totals section is missing key {key!r}"
                )
    elif kind == "dse":
        dse = _require(doc, "dse", dict)
        _require(dse, "counts", dict)
        points = _require(dse, "points", list)
        for point in points:
            if not isinstance(point, dict):
                raise ObservabilityError("dse point records must be dicts")
            for key in ("point_id", "axes", "status"):
                if key not in point:
                    raise ObservabilityError(
                        f"dse point record is missing key {key!r}"
                    )
        pareto = _require(dse, "pareto", dict)
        ids = {p["point_id"] for p in points}  # type: ignore[index]
        for group, members in pareto.items():
            if not isinstance(members, list):
                raise ObservabilityError(
                    f"pareto group {group!r} must be a list of point ids"
                )
            for pid in members:
                if pid not in ids:
                    raise ObservabilityError(
                        f"pareto group {group!r} references unknown "
                        f"point {pid!r}"
                    )
        tables = _require(dse, "tables", dict)
        for name in ("latency", "energy", "area"):
            if name not in tables:
                raise ObservabilityError(
                    f"dse tables section is missing table {name!r}"
                )
            if not isinstance(tables[name], list):
                raise ObservabilityError(
                    f"dse table {name!r} must be a list of rows"
                )
        _require(dse, "baselines", dict)
    else:
        workloads = _require(doc, "workloads", dict)
        for name, workload in workloads.items():
            if not isinstance(workload, dict):
                raise ObservabilityError(f"workload {name!r} must be a dict")
            _require(workload, "xcheck", dict)
            tiers = _require(workload, "tiers", dict)
            for backend, tier in tiers.items():
                if not isinstance(tier, dict):
                    raise ObservabilityError(
                        f"tier {backend!r} must be a dict"
                    )
                for key in ("total_cycles", "latency_ms", "phases"):
                    if key not in tier:
                        raise ObservabilityError(
                            f"tier {backend!r} is missing key {key!r}"
                        )


__all__ = [
    "REPORT_KINDS",
    "SCHEMA",
    "build_dse_report",
    "build_fleet_report",
    "build_serving_report",
    "build_xcheck_report",
    "validate_report",
]
