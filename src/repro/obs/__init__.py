"""Observability: latency attribution, SLO monitoring, and run reports.

``repro.obs`` sits on top of the telemetry layer and answers the
operator's questions about a serving or cross-tier run:

* **Where did the time go?** — :mod:`repro.obs.timeline` decomposes
  every completed request into named phases (queue wait, DRAM filter
  load, NoC staging, compute, drain) that sum *bit-exactly* to its
  end-to-end latency.
* **Is the SLO burning?** — :mod:`repro.obs.monitor` watches windowed
  time series and raises structured alerts (burn rate, queue-growth
  onset, resize thrash) that policies may treat as advisory signals.
* **What happened, on one page?** — :mod:`repro.obs.report` and
  :mod:`repro.obs.html` render a run into a deterministic JSON artifact
  and a self-contained HTML dashboard (``scripts/report.py``).

Everything here is deterministic: identical seeded runs produce
byte-identical timelines, alert streams, and report files.
"""

from repro.obs.monitor import (
    ALERT_KINDS,
    AlertEvent,
    DEFAULT_WINDOW_MS,
    SLOConfig,
    SLOMonitor,
)
from repro.obs.timeline import (
    PHASE_CATEGORIES,
    AttributionTable,
    Phase,
    PhaseSpec,
    RequestTimeline,
    fit_durations,
    report_phases,
    scale_phases,
    timeline_from_report,
)

__all__ = [
    "ALERT_KINDS",
    "AlertEvent",
    "AttributionTable",
    "DEFAULT_WINDOW_MS",
    "PHASE_CATEGORIES",
    "Phase",
    "PhaseSpec",
    "RequestTimeline",
    "SLOConfig",
    "SLOMonitor",
    "fit_durations",
    "report_phases",
    "scale_phases",
    "timeline_from_report",
]
