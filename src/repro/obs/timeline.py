"""Per-request latency attribution: where a request's time went.

A completed request's end-to-end latency decomposes into an ordered list
of named **phases** drawn from a fixed taxonomy (see
:data:`PHASE_CATEGORIES`): admission-queue wait, then the service
window's breakdown — per-segment DRAM filter load, NoC staging, CMem
compute — and a ``drain`` residual for steady-state streaming of extra
samples.  The decomposition's contract is the **attribution invariant**:

    the left-to-right sum of a timeline's phase durations equals the
    request's end-to-end latency *bit-exactly*.

Floating-point addition is not associative, so the invariant is enforced
by construction: all phases but the last carry their modeled durations
and :func:`fit_durations` nudges the final phase until the left-to-right
sum reproduces the total exactly (the nudge is below any modeled
precision — sub-ulp of the total).  ``tests/serving/test_attribution.py``
pins the invariant for every completed request in the streaming and
event tiers.

Phase *weights* come from the simulation tiers themselves:
:func:`report_phases` reads a :class:`~repro.sim.report.RunReport` and
returns one weight per (segment, category) in cycles, summing to the
report's ``total_cycles`` — so serving attribution and the cross-tier
harness difference on identical numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.errors import ObservabilityError

if TYPE_CHECKING:
    from repro.sim.report import RunReport

#: The attribution phase taxonomy (docs/TELEMETRY.md).  Every phase name
#: maps to exactly one category; stacked-bar reports group by category.
PHASE_CATEGORIES: Tuple[str, ...] = (
    "queue",      # admission-queue wait (arrival -> service start)
    "admission",  # admission control itself (instantaneous in this model)
    "dram",       # weight filter load from DRAM
    "staging",    # inter-segment activation staging over the NoC
    "compute",    # CMem / node-group compute inside the segments
    "drain",      # steady-state streaming residual (extra samples/requests)
)


@dataclass(frozen=True)
class PhaseSpec:
    """A phase template: name, category, and a non-negative weight."""

    name: str
    category: str
    weight: float

    def __post_init__(self) -> None:
        if self.category not in PHASE_CATEGORIES:
            raise ObservabilityError(
                f"unknown phase category {self.category!r}; "
                f"choose from {PHASE_CATEGORIES}"
            )
        if self.weight < 0:
            raise ObservabilityError(
                f"phase {self.name!r} has negative weight {self.weight}"
            )


@dataclass(frozen=True)
class Phase:
    """One attributed slice of a request's latency."""

    name: str
    category: str
    duration: float

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "category": self.category,
            "duration": self.duration,
        }


@dataclass
class RequestTimeline:
    """One request's end-to-end latency, decomposed into phases.

    ``end_to_end`` is the billed latency (the serving layer's
    ``finish - arrival``); the phases sum to it bit-exactly (checked at
    construction via :meth:`verify`).  Durations are in the producer's
    time unit — milliseconds in the serving stack, cycles when built
    straight from a :class:`~repro.sim.report.RunReport`.
    """

    tenant: str
    index: int
    arrival: float
    end_to_end: float
    phases: List[Phase] = field(default_factory=list)

    @property
    def durations(self) -> List[float]:
        return [p.duration for p in self.phases]

    def total(self) -> float:
        """Left-to-right sum of phase durations (the invariant's LHS)."""
        acc = 0.0
        for phase in self.phases:
            acc += phase.duration
        return acc

    def verify(self) -> None:
        """Raise unless the phases sum bit-exactly to ``end_to_end``."""
        total = self.total()
        if total != self.end_to_end:
            raise ObservabilityError(
                f"attribution invariant broken for {self.tenant}#{self.index}: "
                f"phases sum to {total!r}, end-to-end is {self.end_to_end!r}"
            )

    def by_category(self) -> Dict[str, float]:
        """Phase durations folded by category (taxonomy order)."""
        out: Dict[str, float] = {}
        for category in PHASE_CATEGORIES:
            acc = 0.0
            seen = False
            for phase in self.phases:
                if phase.category == category:
                    acc += phase.duration
                    seen = True
            if seen:
                out[category] = acc
        return out

    def as_dict(self) -> Dict[str, object]:
        return {
            "tenant": self.tenant,
            "index": self.index,
            "arrival": self.arrival,
            "end_to_end": self.end_to_end,
            "phases": [p.as_dict() for p in self.phases],
        }


def _left_sum(values: Sequence[float]) -> float:
    acc = 0.0
    for value in values:
        acc += value
    return acc


def fit_durations(durations: Sequence[float], total: float) -> List[float]:
    """Adjust the tail of ``durations`` so they sum to ``total`` bit-exactly.

    The left-to-right float sum of the returned list equals ``total``
    exactly.  All entries stay non-negative; the correction lands on the
    last phase that can absorb it (walking backwards when a phase pins at
    zero) and is at most a few ulps of ``total`` for well-formed inputs.

    A Newton-style fixup handles almost every input in one step, but it
    can dither forever between two candidates whose sums bracket the
    target by one ulp each.  The left-to-right sum is monotone
    nondecreasing in any single addend, so a float binary search on the
    adjustable phase then finds the exact preimage whenever one exists.
    """
    if total < 0:
        raise ObservabilityError(f"total must be >= 0, got {total}")
    out = [float(d) for d in durations]
    if any(d < 0 for d in out):
        raise ObservabilityError(f"durations must be >= 0, got {out}")
    if not out:
        if total != 0.0:
            raise ObservabilityError(
                f"cannot fit empty durations to total {total}"
            )
        return out

    for j in range(len(out) - 1, -1, -1):
        # Newton fast path: one step lands exactly in the common case.
        for _ in range(4):
            acc = _left_sum(out)
            if acc == total:
                return out
            adjusted = out[j] - (acc - total)
            if adjusted < 0.0 or adjusted == out[j]:
                break
            out[j] = adjusted
        if _left_sum(out) == total:
            return out

        def f(x: float) -> float:
            out[j] = x
            return _left_sum(out)

        if f(0.0) > total:
            # Even pinned at zero this prefix overshoots: leave the
            # phase at zero and let an earlier phase absorb the rest.
            continue
        lo, hi = 0.0, total
        if f(hi) < total:
            # The remaining phases sum short of the target even with a
            # full-total phase here; only the degenerate all-zero tail
            # can reach this, so keep widening once.
            hi = 2.0 * total + 1.0
        for _ in range(256):
            mid = lo + (hi - lo) / 2.0
            if mid <= lo or mid >= hi:
                break
            if f(mid) < total:
                lo = mid
            else:
                hi = mid
        for candidate in (hi, lo):
            if f(candidate) == total:
                return out
        # No exact preimage at this phase (suffix re-rounding): keep the
        # closest under-approximation and walk left for the residual.
        out[j] = lo
    raise ObservabilityError(
        f"could not fit durations {durations!r} to total {total!r}"
    )


def scale_phases(
    specs: Sequence[PhaseSpec], total: float
) -> List[Tuple[str, str, float]]:
    """Scale phase weights to durations summing (approximately) to ``total``.

    Returns ``(name, category, duration)`` triples; callers feed the
    durations through :func:`fit_durations` against the billed total once
    per request.  Zero-weight specs keep a 0.0 duration so the phase
    structure is stable across requests.
    """
    weight_sum = 0.0
    for spec in specs:
        weight_sum += spec.weight
    if weight_sum <= 0.0:
        # Degenerate breakdown: bill everything as compute.
        return [(spec.name, spec.category, 0.0) for spec in specs]
    return [
        (spec.name, spec.category, total * (spec.weight / weight_sum))
        for spec in specs
    ]


def report_phases(report: "RunReport") -> List[PhaseSpec]:
    """Phase weights (in cycles) of one simulated network run.

    Per mapped segment: ``dram`` (exposed filter load), ``staging``
    (inter-segment NoC staging), ``compute`` (the segment's simulated
    compute window).  Whatever the tier added on top of the per-segment
    cycles — the closed-form tiers extrapolate extra request copies at
    the steady interval — lands in one trailing ``drain`` phase, so the
    weights always sum to ``report.total_cycles`` (up to float rounding;
    the per-request fit absorbs the ulps).  In the queueing tiers
    (streaming, event) a single-request run has a zero ``drain``: those
    tiers simulate every cycle they bill.
    """
    specs: List[PhaseSpec] = []
    accounted = 0.0
    for k, run in enumerate(report.runs):
        specs.append(PhaseSpec(f"seg{k}/dram", "dram", run.filter_load_cycles))
        specs.append(PhaseSpec(f"seg{k}/staging", "staging", run.staging_cycles))
        specs.append(PhaseSpec(f"seg{k}/compute", "compute", run.compute_cycles))
        accounted += (
            run.filter_load_cycles + run.staging_cycles + run.compute_cycles
        )
    drain = report.total_cycles - accounted
    specs.append(PhaseSpec("drain", "drain", max(0.0, drain)))
    return specs


def timeline_from_report(report: "RunReport") -> RequestTimeline:
    """Attribute one :class:`RunReport` directly (durations in cycles).

    The timeline's ``end_to_end`` is the report's ``total_cycles``; its
    phases are the :func:`report_phases` weights fit bit-exactly.  This
    is the sim-tier end of the attribution contract — the serving layer
    applies the same weights to its billed service milliseconds.
    """
    specs = report_phases(report)
    durations = fit_durations(
        [spec.weight for spec in specs], report.total_cycles
    )
    timeline = RequestTimeline(
        tenant=report.network.name,
        index=0,
        arrival=0.0,
        end_to_end=report.total_cycles,
        phases=[
            Phase(spec.name, spec.category, duration)
            for spec, duration in zip(specs, durations)
        ],
    )
    timeline.verify()
    return timeline


#: An attribution template key: ``(tenant, batch_count, generation)``.
#: The generation bumps on every resize that changed the tenant's
#: service time, so stale templates age out without a scan.
TemplateKey = Tuple[str, int, int]


class AttributionTable:
    """Per-tenant phase templates, applied to each completed request.

    The serving simulator owns one table per run.  The hot path is two
    dict operations per dispatch/completion: :meth:`lookup` caches the
    scaled service-phase durations per ``(tenant, batch_count,
    generation)`` — the breakdown is constant between resizes — and
    :meth:`record` counts how many billed completions used each
    template.  Per-request :class:`RequestTimeline` objects are built
    only on the *collected* path (telemetry enabled or explicitly
    requested); the per-tenant :meth:`aggregate` derives from the use
    counts alone, so it is identical whether or not timelines were
    collected.  ``invalidate`` bumps a tenant's generation after an
    elastic resize changed its service time.
    """

    def __init__(self) -> None:
        self._templates: Dict[TemplateKey, List[Tuple[str, str, float]]] = {}
        self._gen: Dict[str, int] = {}
        self.uses: Dict[TemplateKey, int] = {}

    def invalidate(self, tenant: str) -> None:
        self._gen[tenant] = self._gen.get(tenant, 0) + 1

    def lookup(
        self,
        tenant: str,
        count: int,
        specs_factory,
        service: float,
    ) -> Tuple[TemplateKey, List[Tuple[str, str, float]]]:
        """The (key, template) of one dispatch; builds on first use."""
        key = (tenant, count, self._gen.get(tenant, 0))
        template = self._templates.get(key)
        if template is None:
            template = self._templates[key] = scale_phases(
                specs_factory(), service
            )
        return key, template

    def record(self, key: TemplateKey, n: int = 1) -> None:
        """Count ``n`` billed completions against their dispatch template."""
        self.uses[key] = self.uses.get(key, 0) + n

    def aggregate(
        self, tenant: str, queue_total: float, latency_total: float
    ) -> Tuple[List[str], List[str], List[float]]:
        """The tenant's whole-run attribution: names, categories, durations.

        ``queue_total`` is the tenant's summed queue wait and
        ``latency_total`` the summed billed latency (the SLO histogram's
        running total); the returned durations left-to-right sum to
        ``latency_total`` bit-exactly.  Phase order is first-seen over
        sorted template keys, so reruns — with or without collected
        timelines — produce byte-identical aggregates.
        """
        names: List[str] = ["queue", "admission"]
        categories: List[str] = ["queue", "admission"]
        totals: Dict[str, float] = {}
        category_of: Dict[str, str] = {}
        order: List[str] = []
        for key in sorted(self.uses):
            if key[0] != tenant:
                continue
            count = self.uses[key]
            for name, category, duration in self._templates[key]:
                if name not in category_of:
                    category_of[name] = category
                    totals[name] = 0.0
                    order.append(name)
                totals[name] += count * duration
        names.extend(order)
        categories.extend(category_of[name] for name in order)
        durations = [queue_total, 0.0] + [totals[name] for name in order]
        fitted = fit_durations(durations, latency_total)
        return names, categories, fitted

    def timeline(
        self,
        tenant: str,
        index: int,
        arrival: float,
        start: float,
        latency: float,
        template: Sequence[Tuple[str, str, float]],
    ) -> RequestTimeline:
        """Build (and verify) one request's timeline from its template."""
        queue_wait = start - arrival
        names = ["queue", "admission"]
        categories = ["queue", "admission"]
        durations = [queue_wait, 0.0]
        for name, category, duration in template:
            names.append(name)
            categories.append(category)
            durations.append(duration)
        fitted = fit_durations(durations, latency)
        timeline = RequestTimeline(
            tenant=tenant,
            index=index,
            arrival=arrival,
            end_to_end=latency,
            phases=[
                Phase(name, category, duration)
                for name, category, duration in zip(names, categories, fitted)
            ],
        )
        timeline.verify()
        return timeline


__all__ = [
    "AttributionTable",
    "PHASE_CATEGORIES",
    "TemplateKey",
    "Phase",
    "PhaseSpec",
    "RequestTimeline",
    "fit_durations",
    "report_phases",
    "scale_phases",
    "timeline_from_report",
]
