"""Design-space ablations as first-class experiments.

The benchmark suite asserts these; the CLI renders them.  Each sweeps one
design choice DESIGN.md calls out: CMem slice count, operand precision,
the MAC primitive vs element-wise computing, placement policy, and batch
streaming.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.neural_cache import NeuralCacheModel
from repro.cmem.cmem import CMem
from repro.core.node import table4_workload
from repro.core.perfmodel import PerformanceModel, TimingParams
from repro.core.simulator import ChipSimulator
from repro.core.traffic import simulate_segment_traffic
from repro.errors import CapacityError
from repro.experiments.report import ExperimentResult
from repro.mapping.capacity import CapacityModel
from repro.mapping.placement import (
    random_placement,
    raster_placement,
    zigzag_placement,
)
from repro.mapping.segmentation import HeuristicStrategy
from repro.nn.workloads import ConvLayerSpec, NetworkSpec, resnet18_spec


def run_slices() -> ExperimentResult:
    """CMem slice count vs ResNet18 latency and per-node capacity."""
    result = ExperimentResult(
        experiment="ablation-slices",
        title="Ablation: CMem compute-slice count (paper design point: 7)",
        columns=["slices", "latency_ms", "filters_per_node", "fits_resnet18"],
    )
    spec = table4_workload()
    for k in (3, 5, 7, 10, 14):
        capacity = CapacityModel(compute_slices=k)
        fits = True
        latency = None
        try:
            sim = ChipSimulator(
                params=TimingParams(slice_parallel_cmem=True), capacity=capacity
            )
            latency = round(sim.run(resnet18_spec(), "heuristic").latency_ms, 3)
        except CapacityError:
            fits = False
        result.add_row(
            slices=k,
            latency_ms=latency if latency is not None else "-",
            filters_per_node=capacity.filters_per_node(spec),
            fits_resnet18=fits,
        )
    result.notes.append(
        "below seven compute slices conv4_x exceeds 208 cores and falls "
        "back to multi-pass tiling, paying latency; seven (the paper's "
        "design point) is the smallest geometry that maps ResNet18 "
        "single-pass"
    )
    return result


def run_precision() -> ExperimentResult:
    """Operand width: n^2 MAC cycles vs 64/n - 1 capacity."""
    result = ExperimentResult(
        experiment="ablation-precision",
        title="Ablation: operand precision (paper design point: int8)",
        columns=["n_bits", "mac_cycles", "slots_per_slice", "resnet_latency_ms"],
    )
    capacity = CapacityModel()
    for n in (2, 4, 8, 16):
        layers = tuple(
            ConvLayerSpec(
                index=s.index, name=s.name, h=s.h, w=s.w, c=s.c, m=s.m,
                r=s.r, s=s.s, stride=s.stride, padding=s.padding,
                kind=s.kind, n_bits=n,
            )
            for s in resnet18_spec()
        )
        net = NetworkSpec(name=f"resnet18_int{n}", layers=layers)
        try:
            latency = round(ChipSimulator().run(net, "heuristic").latency_ms, 3)
        except CapacityError:
            latency = "does not fit"
        result.add_row(
            n_bits=n,
            mac_cycles=n * n,
            slots_per_slice=capacity.vector_slots_per_slice(n),
            resnet_latency_ms=latency,
        )
    return result


def run_primitives() -> ExperimentResult:
    """MAC primitive vs element-wise + reduction on the Table 4 workload."""
    spec = table4_workload()
    cache = NeuralCacheModel().run(spec)

    rng = np.random.default_rng(0)
    a = rng.integers(0, 256, 256)
    b = rng.integers(0, 256, 256)
    cmem = CMem()
    cmem.store_vector_transposed(1, 0, a, 8, signed=False)
    cmem.store_vector_transposed(1, 8, b, 8, signed=False)
    value = cmem.mac(1, 0, 8, 8, signed=False)
    assert value == int(np.dot(a, b))

    result = ExperimentResult(
        experiment="ablation-primitives",
        title="Ablation: MAC primitive vs element-wise + reduction",
        columns=["approach", "cycles_per_dot_product", "notes"],
    )
    ew_per_dot = cache.cycles // (49 * 5)
    result.add_row(
        approach="element-wise (Neural Cache)",
        cycles_per_dot_product=ew_per_dot,
        notes=f"reduction = {cache.reduction_fraction:.0%} of cycles",
    )
    result.add_row(
        approach="adder-tree MAC (MAICC)",
        cycles_per_dot_product=64,
        notes="n^2 cycles, scalar straight to a register",
    )
    return result


def run_placement() -> ExperimentResult:
    """Placement policy vs one iteration wave's NoC cost."""
    plan = HeuristicStrategy().plan(
        resnet18_spec(), PerformanceModel().layer_time_fn()
    )
    segment = plan.segments[1]
    result = ExperimentResult(
        experiment="ablation-placement",
        title="Ablation: placement policy (Fig. 7(c)) — one iteration wave",
        columns=["policy", "flit_hops", "completion_cycles"],
    )
    for name, placement in (
        ("zig-zag", zigzag_placement(segment)),
        ("raster", raster_placement(segment)),
        ("random", random_placement(segment, seed=1)),
    ):
        traffic = simulate_segment_traffic(segment, placement)
        result.add_row(
            policy=name,
            flit_hops=traffic.flit_hops,
            completion_cycles=traffic.completion_cycles,
        )
    return result


def run_batch() -> ExperimentResult:
    """Batch streaming: throughput toward the steady-state pipeline rate."""
    sim = ChipSimulator()
    net = resnet18_spec()
    result = ExperimentResult(
        experiment="ablation-batch",
        title="Ablation: batch streaming on ResNet18",
        columns=["batch", "total_ms", "samples_per_s", "samples_per_s_per_w"],
    )
    for b in (1, 2, 4, 8, 32):
        run = sim.run(net, "heuristic", batch=b)
        result.add_row(
            batch=b,
            total_ms=round(run.latency_ms, 2),
            samples_per_s=round(run.throughput_samples_s, 1),
            samples_per_s_per_w=round(run.throughput_per_watt, 2),
        )
    return result
