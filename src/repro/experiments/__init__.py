"""Experiment drivers: one module per table/figure of the evaluation.

Each module exposes ``run(**kwargs) -> ExperimentResult``; the registry in
:mod:`repro.experiments.runner` maps experiment ids (``table4`` ..
``figure10``) to them, and the ``maicc-experiments`` console script prints
the regenerated tables next to the paper's numbers.
"""

from repro.experiments.report import ExperimentResult, format_table

__all__ = ["ExperimentResult", "format_table"]
