"""Table 5 — impact of dynamic and static CMem scheduling.

Sweeps the issue-queue depth (0/1/2/4) and the number of register-file
write-back ports (1/2) on the Table 4 workload, with and without static
(compile-time) instruction reordering.  All runs execute the same
functional kernel on the cycle-level pipeline; psums are identical by
construction (the scheduler is dependence-safe).
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.core.node import MAICCNode, table4_workload
from repro.experiments.report import ExperimentResult
from repro.riscv.pipeline import PipelineConfig

PAPER: Dict[Tuple[int, int, bool], int] = {
    # (queue, wb_ports, static) -> cycles
    (0, 1, False): 61895, (1, 1, False): 60761, (2, 1, False): 59141,
    (4, 1, False): 59141, (1, 2, False): 60032, (2, 2, False): 58250,
    (4, 2, False): 58250,
    (0, 1, True): 52098, (1, 1, True): 50802, (2, 1, True): 50154,
    (4, 1, True): 50154, (1, 2, True): 50073, (2, 2, True): 49263,
    (4, 2, True): 49263,
}


def run(seed: int = 42) -> ExperimentResult:
    spec = table4_workload()
    rng = np.random.default_rng(seed)
    weights = rng.integers(-128, 128, size=(spec.m, spec.c, spec.r, spec.s))
    bias = rng.integers(-1000, 1000, size=spec.m)
    ifmap = rng.integers(-128, 128, size=(spec.c, spec.h, spec.w))
    node = MAICCNode(spec, weights, bias)
    reference = node.reference(ifmap)

    result = ExperimentResult(
        experiment="table5",
        title="Table 5: dynamic + static scheduling (cycles, Table 4 workload)",
        columns=["queue", "wb_ports", "static", "cycles", "paper_cycles"],
    )
    for static in (False, True):
        for wb in (1, 2):
            for queue in (0, 1, 2, 4):
                if (queue, wb, static) not in PAPER:
                    continue
                cfg = PipelineConfig(cmem_queue_size=queue, writeback_ports=wb)
                res = node.run(ifmap, static=static, pipeline=cfg)
                if not np.array_equal(res.psums, reference):
                    raise AssertionError(
                        f"scheduling config q={queue} wb={wb} static={static} "
                        "changed the results"
                    )
                result.add_row(
                    queue=queue, wb_ports=wb, static=static,
                    cycles=res.stats.cycles,
                    paper_cycles=PAPER[(queue, wb, static)],
                )
    base = result.row_by("queue", 0)["cycles"]
    best_dyn = min(r["cycles"] for r in result.rows if not r["static"])
    best_static = min(r["cycles"] for r in result.rows if r["static"])
    result.notes.append(
        f"dynamic scheduling gain: {(1 - best_dyn / base) * 100:.1f}% "
        "(paper: ~4-6%)"
    )
    result.notes.append(
        f"static scheduling gain over best dynamic: "
        f"{(1 - best_static / best_dyn) * 100:.1f}% (paper: ~16%)"
    )
    return result
