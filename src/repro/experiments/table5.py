"""Table 5 — impact of dynamic and static CMem scheduling.

Sweeps the issue-queue depth (0/1/2/4) and the number of register-file
write-back ports (1/2) on the Table 4 workload, with and without static
(compile-time) instruction reordering.  All runs execute the same
functional kernel on the cycle-level pipeline; psums are identical by
construction (the scheduler is dependence-safe).

Each scheduling configuration is a cell of the ``table5-node`` grid
evaluator on the shared sweep executor (:func:`repro.dse.run_grid`) —
cells are pure functions of ``(seed, queue, wb_ports, static)``, so
``workers`` shards the 13 pipeline runs across processes with
byte-identical output.
"""

from __future__ import annotations

from typing import Dict, Mapping, Tuple

import numpy as np

from repro.core.node import MAICCNode, table4_workload
from repro.dse.engine import register_grid_evaluator, run_grid
from repro.experiments.report import ExperimentResult
from repro.riscv.pipeline import PipelineConfig

PAPER: Dict[Tuple[int, int, bool], int] = {
    # (queue, wb_ports, static) -> cycles
    (0, 1, False): 61895, (1, 1, False): 60761, (2, 1, False): 59141,
    (4, 1, False): 59141, (1, 2, False): 60032, (2, 2, False): 58250,
    (4, 2, False): 58250,
    (0, 1, True): 52098, (1, 1, True): 50802, (2, 1, True): 50154,
    (4, 1, True): 50154, (1, 2, True): 50073, (2, 2, True): 49263,
    (4, 2, True): 49263,
}


def _evaluate_schedule(cell: Mapping[str, object]) -> Dict[str, object]:
    """One scheduling configuration (pure; picklable; top-level)."""
    spec = table4_workload()
    rng = np.random.default_rng(int(cell["seed"]))  # type: ignore[call-overload]
    weights = rng.integers(-128, 128, size=(spec.m, spec.c, spec.r, spec.s))
    bias = rng.integers(-1000, 1000, size=spec.m)
    ifmap = rng.integers(-128, 128, size=(spec.c, spec.h, spec.w))
    node = MAICCNode(spec, weights, bias)
    queue = int(cell["queue"])  # type: ignore[call-overload]
    wb = int(cell["wb_ports"])  # type: ignore[call-overload]
    static = bool(cell["static"])
    cfg = PipelineConfig(cmem_queue_size=queue, writeback_ports=wb)
    res = node.run(ifmap, static=static, pipeline=cfg)
    if not np.array_equal(res.psums, node.reference(ifmap)):
        raise AssertionError(
            f"scheduling config q={queue} wb={wb} static={static} "
            "changed the results"
        )
    return {"queue": queue, "wb_ports": wb, "static": static,
            "cycles": res.stats.cycles}


register_grid_evaluator("table5-node", _evaluate_schedule)


def run(seed: int = 42, *, workers: int = 0) -> ExperimentResult:
    cells = [
        {"seed": seed, "queue": queue, "wb_ports": wb, "static": static}
        for static in (False, True)
        for wb in (1, 2)
        for queue in (0, 1, 2, 4)
        if (queue, wb, static) in PAPER
    ]
    rows = run_grid("table5-node", cells, workers=workers)

    result = ExperimentResult(
        experiment="table5",
        title="Table 5: dynamic + static scheduling (cycles, Table 4 workload)",
        columns=["queue", "wb_ports", "static", "cycles", "paper_cycles"],
    )
    for row in rows:
        key = (row["queue"], row["wb_ports"], row["static"])
        result.add_row(
            queue=row["queue"], wb_ports=row["wb_ports"], static=row["static"],
            cycles=row["cycles"],
            paper_cycles=PAPER[key],  # type: ignore[index]
        )
    base = result.row_by("queue", 0)["cycles"]
    best_dyn = min(r["cycles"] for r in result.rows if not r["static"])
    best_static = min(r["cycles"] for r in result.rows if r["static"])
    result.notes.append(
        f"dynamic scheduling gain: {(1 - best_dyn / base) * 100:.1f}% "
        "(paper: ~4-6%)"
    )
    result.notes.append(
        f"static scheduling gain over best dynamic: "
        f"{(1 - best_static / best_dyn) * 100:.1f}% (paper: ~16%)"
    )
    return result
