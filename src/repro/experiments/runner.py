"""Experiment registry and the ``maicc-experiments`` CLI."""

from __future__ import annotations

import argparse
import inspect
import sys
from typing import Callable, Dict, Optional

from repro import telemetry as _telemetry
from repro.experiments import ablations, figure9, figure10, table4, table5, table6, table7
from repro.experiments.report import ExperimentResult, format_table

REGISTRY: Dict[str, Callable[[], ExperimentResult]] = {
    "table4": table4.run,
    "table5": table5.run,
    "table6": table6.run,
    "table7": table7.run,
    "figure9": figure9.run,
    "figure10": figure10.run,
    "ablation-slices": ablations.run_slices,
    "ablation-precision": ablations.run_precision,
    "ablation-primitives": ablations.run_primitives,
    "ablation-placement": ablations.run_placement,
    "ablation-batch": ablations.run_batch,
}

# The paper's own tables/figures, in order — the default CLI set.
PAPER_EXPERIMENTS = ("table4", "table5", "table6", "table7", "figure9", "figure10")


def run_experiment(
    name: str,
    telemetry: Optional[_telemetry.TelemetrySink] = None,
    *,
    backend: Optional[str] = None,
    workers: int = 0,
) -> ExperimentResult:
    """``backend`` selects the repro.sim fidelity tier for experiments
    that simulate networks; ``workers`` shards an experiment's design
    points or grid cells across processes on the shared sweep executor
    (0 = serial; outputs are byte-identical either way).  Experiments
    without the corresponding knob (the ablations) ignore both."""
    try:
        runner = REGISTRY[name]
    except KeyError:
        raise SystemExit(
            f"unknown experiment {name!r}; available: {', '.join(sorted(REGISTRY))}"
        ) from None
    params = inspect.signature(runner).parameters
    kwargs = {}
    if backend is not None and "backend" in params:
        kwargs["backend"] = backend
    if workers and "workers" in params:
        kwargs["workers"] = workers
    if telemetry is not None:
        with _telemetry.use(telemetry):
            return runner(**kwargs)
    return runner(**kwargs)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="maicc-experiments",
        description="Regenerate the MAICC paper's tables and figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        default=[],
        help="experiment ids (default: all)",
        metavar="EXPERIMENT",
    )
    parser.add_argument("--list", action="store_true", help="list experiment ids")
    parser.add_argument(
        "--all", action="store_true",
        help="run ablations too (default: the paper's tables/figures)",
    )
    parser.add_argument(
        "--backend", metavar="NAME", default=None,
        help="repro.sim fidelity tier (analytic/streaming/event/cycle; "
             "default: streaming)",
    )
    parser.add_argument(
        "--workers", type=int, default=0, metavar="N",
        help="shard each experiment's sweep/grid across N processes "
             "(0 = serial; output is byte-identical either way)",
    )
    parser.add_argument(
        "--metrics-out", metavar="PATH", default=None,
        help="enable telemetry and write the metrics registry as JSON",
    )
    parser.add_argument(
        "--trace-out", metavar="PATH", default=None,
        help="enable telemetry and write a Perfetto-loadable trace JSON",
    )
    args = parser.parse_args(argv)
    if args.list:
        for name in sorted(REGISTRY):
            print(name)
        return 0
    if args.experiments:
        names = args.experiments
    elif args.all:
        names = list(PAPER_EXPERIMENTS) + sorted(
            n for n in REGISTRY if n not in PAPER_EXPERIMENTS
        )
    else:
        names = list(PAPER_EXPERIMENTS)
    sink: Optional[_telemetry.Telemetry] = None
    if args.metrics_out or args.trace_out:
        sink = _telemetry.Telemetry()
    for name in names:
        result = run_experiment(
            name, telemetry=sink, backend=args.backend, workers=args.workers
        )
        print(format_table(result))
        print()
    if sink is not None:
        if args.metrics_out:
            with open(args.metrics_out, "w") as f:
                f.write(sink.registry.to_json())
                f.write("\n")
        if args.trace_out:
            with open(args.trace_out, "w") as f:
                f.write(sink.trace.to_json())
                f.write("\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
