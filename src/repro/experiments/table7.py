"""Table 7 — overall performance of MAICC vs CPU and GPU on ResNet18.

The MAICC row comes from a single-point :class:`~repro.dse.SweepSpec`
(heuristic mapping) on the shared sweep engine; CPU and GPU rows come
from the calibrated roofline models of :mod:`repro.baselines.cpu_gpu`
(the silicon itself is unavailable — see DESIGN.md substitution #3),
with the paper's measured numbers alongside.  Also reproduces the
Sec. 6.3 GFLOPS/W comparison against Neural Cache.
"""

from __future__ import annotations

from typing import Optional

from repro.baselines.cpu_gpu import CPU_I9_13900K, GPU_RTX_4090
from repro.dse.engine import run_sweep
from repro.dse.spec import SweepSpec
from repro.experiments.report import ExperimentResult
from repro.nn.workloads import resnet18_spec
from repro.sim.backends import DEFAULT_BACKEND

PAPER = {
    "CPU": {"latency_ms": 22.3, "throughput": 44.8, "power_w": 176.4, "thr_per_w": 0.25},
    "GPU": {"latency_ms": 1.02, "throughput": 980.3, "power_w": 228.6, "thr_per_w": 4.29},
    "MAICC": {"latency_ms": 5.13, "throughput": 194.9, "power_w": 24.67, "thr_per_w": 7.90},
}
PAPER_GFLOPS_PER_W = {"MAICC": 50.03, "NeuralCache": 22.90}


def sweep(backend: Optional[str] = None) -> SweepSpec:
    """The MAICC row as a single-point sweep at the paper's chip."""
    return SweepSpec(
        name="table7",
        networks=("resnet18",),
        backends=(backend or DEFAULT_BACKEND,),
    )


def run(*, backend: Optional[str] = None, workers: int = 0) -> ExperimentResult:
    """``backend`` names the repro.sim fidelity tier to simulate on."""
    network = resnet18_spec()
    dse = run_sweep(
        sweep(backend), workers=workers, keep_reports=True, baselines=False
    )
    maicc = dse.points[0].report

    result = ExperimentResult(
        experiment="table7",
        title="Table 7: overall performance on ResNet18 (batch 1)",
        columns=[
            "platform", "latency_ms", "throughput", "power_w", "thr_per_w",
            "paper_latency_ms", "paper_thr_per_w",
        ],
    )
    for platform in (CPU_I9_13900K, GPU_RTX_4090):
        key = "CPU" if "Intel" in platform.name else "GPU"
        result.add_row(
            platform=platform.name,
            latency_ms=platform.latency_ms(network),
            throughput=platform.throughput_samples_s(network),
            power_w=platform.measured_power_w,
            thr_per_w=platform.throughput_per_watt(network),
            paper_latency_ms=PAPER[key]["latency_ms"],
            paper_thr_per_w=PAPER[key]["thr_per_w"],
        )
    result.add_row(
        platform="MAICC (210 cores)",
        latency_ms=maicc.latency_ms,
        throughput=maicc.throughput_samples_s,
        power_w=maicc.average_power_w,
        thr_per_w=maicc.throughput_per_watt,
        paper_latency_ms=PAPER["MAICC"]["latency_ms"],
        paper_thr_per_w=PAPER["MAICC"]["thr_per_w"],
    )

    cpu_row = result.rows[0]
    gpu_row = result.rows[1]
    maicc_row = result.rows[2]
    result.notes.append(
        f"throughput vs CPU: {maicc_row['throughput'] / cpu_row['throughput']:.1f}x "
        "(paper 4.3x); "
        f"efficiency vs CPU: {maicc_row['thr_per_w'] / cpu_row['thr_per_w']:.1f}x "
        "(paper 31.6x)"
    )
    result.notes.append(
        f"throughput vs GPU: {maicc_row['throughput'] / gpu_row['throughput']:.2f}x "
        "(paper 0.20x); "
        f"efficiency vs GPU: {maicc_row['thr_per_w'] / gpu_row['thr_per_w']:.1f}x "
        "(paper 1.8x)"
    )
    gops = maicc.gops_per_watt(include_dram=False)
    result.notes.append(
        f"MAICC GOPS/W excluding DRAM: {gops:.1f} "
        f"(paper: 50.03 GFLOPS/W vs Neural Cache 22.90)"
    )
    result.raw = {"maicc": maicc}
    return result
