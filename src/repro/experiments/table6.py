"""Table 6 — ResNet18 layer mapping strategies.

Maps the 20-layer ResNet18 workload with the single-layer, greedy, and
heuristic strategies and reports per-layer node-group sizes, per-segment
latencies, and total inference latency.

The three strategy runs are one :class:`~repro.dse.SweepSpec` with a
``strategies`` axis, executed on the shared sweep engine — ``workers``
shards the strategies across processes with byte-identical output
(every run is a pure function of its design point).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.simulator import NetworkRunResult
from repro.dse.engine import run_sweep
from repro.dse.spec import SweepSpec
from repro.experiments.report import ExperimentResult
from repro.nn.workloads import resnet18_spec
from repro.sim.backends import DEFAULT_BACKEND

PAPER_TOTAL_MS = {"single-layer": 24.078, "greedy": 10.410, "heuristic": 5.138}
PAPER_NODES = {
    "single-layer": [65, 65, 65, 65, 129, 129, 129, 129, 129, 129, 129, 129,
                     129, 129, 172, 172, 208, 208, 208, 22],
    "greedy": [5, 5, 5, 5, 2, 8, 14, 14, 14, 4, 27, 53, 53, 53, 12, 172,
               208, 208, 208, 22],
    "heuristic": [33, 33, 33, 33, 5, 16, 44, 44, 44, 8, 27, 53, 53, 53, 12,
                  172, 208, 208, 208, 22],
}

STRATEGIES = ("single-layer", "greedy", "heuristic")


def sweep(backend: Optional[str] = None) -> SweepSpec:
    """The Table 6 runs as a declarative sweep (strategy axis only)."""
    return SweepSpec(
        name="table6",
        networks=("resnet18",),
        backends=(backend or DEFAULT_BACKEND,),
        strategies=STRATEGIES,
    )


def run(*, backend: Optional[str] = None, workers: int = 0) -> ExperimentResult:
    """``backend`` names the repro.sim fidelity tier to simulate on;
    ``workers`` shards the strategy runs across processes."""
    network = resnet18_spec()
    dse = run_sweep(
        sweep(backend), workers=workers, keep_reports=True, baselines=False
    )
    runs: Dict[str, NetworkRunResult] = {
        pr.point.strategy: pr.report for pr in dse.points
    }

    result = ExperimentResult(
        experiment="table6",
        title="Table 6: ResNet18 mapping strategies (#node-group sizes, latency)",
        columns=[
            "index", "name",
            "single_nodes", "greedy_nodes", "heuristic_nodes",
            "paper_single", "paper_greedy", "paper_heuristic",
        ],
    )
    for spec in network:
        i = spec.index - 1
        result.add_row(
            index=spec.index,
            name=spec.name,
            single_nodes=runs["single-layer"].nodes_of(spec.index),
            greedy_nodes=runs["greedy"].nodes_of(spec.index),
            heuristic_nodes=runs["heuristic"].nodes_of(spec.index),
            paper_single=PAPER_NODES["single-layer"][i],
            paper_greedy=PAPER_NODES["greedy"][i],
            paper_heuristic=PAPER_NODES["heuristic"][i],
        )
    for name in STRATEGIES:
        run_result = runs[name]
        segments = [
            ([s.index for s in r.segment.layers], round(r.cycles / 1e6, 3))
            for r in run_result.runs
        ]
        result.notes.append(
            f"{name}: {run_result.latency_ms:.3f} ms "
            f"(paper {PAPER_TOTAL_MS[name]:.3f} ms); segments: {segments}"
        )
    result.raw = runs
    return result
