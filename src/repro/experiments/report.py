"""Uniform result container + plain-text table rendering.

Why this is NOT :mod:`repro.obs.report`: the two layers serve different
contracts.  An experiment result is a **byte-pinned replica of one
published table or figure** — the plain-text rendering here is diffed
verbatim against checked-in expectations, so its format can never
change without re-pinning the paper comparison.  An obs report is a
**schema-versioned run document** (``maicc-obs-report/1``) built for
dashboards and machine consumers, free to grow new panels.  Since the
DSE refactor, the *data* behind every experiment driver already flows
through :func:`repro.dse.run_sweep`; anything that wants the charted /
validated form of a sweep should go through ``scripts/report.py dse``
(:func:`repro.obs.report.build_dse_report`), not grow a second schema
here.  The bridge between the worlds is :meth:`ExperimentResult.as_dict`
— a deterministic JSON-safe view of the pinned table (``raw`` excluded:
it holds live simulation objects).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List


@dataclass
class ExperimentResult:
    """One regenerated table or figure."""

    experiment: str          # e.g. "table4"
    title: str
    columns: List[str]
    rows: List[Dict[str, Any]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    raw: Dict[str, Any] = field(default_factory=dict)

    def add_row(self, **values: Any) -> None:
        self.rows.append(values)

    def column(self, name: str) -> List[Any]:
        return [row.get(name) for row in self.rows]

    def row_by(self, key: str, value: Any) -> Dict[str, Any]:
        for row in self.rows:
            if row.get(key) == value:
                return row
        raise KeyError(f"no row with {key}={value!r}")

    def as_dict(self) -> Dict[str, Any]:
        """JSON-safe view of the pinned table (``raw`` excluded).

        This is the hand-off shape for machine consumers — the same
        dict-of-lists convention the ``maicc-obs-report/1`` documents
        use — so tooling that joins experiment pins with obs artifacts
        never parses the plain-text rendering.
        """
        return {
            "experiment": self.experiment,
            "title": self.title,
            "columns": list(self.columns),
            "rows": [dict(row) for row in self.rows],
            "notes": list(self.notes),
        }


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1e5 or magnitude < 1e-3:
            return f"{value:.3g}"
        if magnitude >= 100:
            return f"{value:.0f}"
        return f"{value:.3g}"
    return str(value)


def format_table(result: ExperimentResult) -> str:
    """Render an :class:`ExperimentResult` as an aligned text table."""
    header = [result.title, "=" * len(result.title)]
    cols = result.columns
    cells = [[_fmt(row.get(c, "")) for c in cols] for row in result.rows]
    widths = [
        max(len(c), *(len(line[i]) for line in cells)) if cells else len(c)
        for i, c in enumerate(cols)
    ]
    lines = ["  ".join(c.ljust(w) for c, w in zip(cols, widths))]
    lines.append("  ".join("-" * w for w in widths))
    for line in cells:
        lines.append("  ".join(v.ljust(w) for v, w in zip(line, widths)))
    out = header + lines
    if result.notes:
        out.append("")
        out.extend(f"note: {n}" for n in result.notes)
    return "\n".join(out)
