"""Figure 9 — per-iteration cycle breakdown of layer 9 (conv2_4).

For each mapping strategy, reports how an intermediate computing core of
layer 9 spends its steady-state iteration: computing, sending ifmap
vectors downstream, sending finished ofmap pixels, and waiting for ifmap
vectors.  The paper's qualitative findings: send costs are stable across
strategies, compute scales inversely with allocated nodes, and waiting
dominates under the single-layer and greedy strategies.

The three strategy runs share Table 6's :class:`~repro.dse.SweepSpec`
on the sweep engine (``keep_reports=True`` so the streaming tier's
segment result feeds the breakdown without re-simulation).
"""

from __future__ import annotations

from typing import Optional

from repro.dse.engine import run_sweep
from repro.experiments.report import ExperimentResult
from repro.experiments.table6 import STRATEGIES, sweep as table6_sweep
from repro.sim import streaming_core_breakdown

LAYER_INDEX = 9  # conv2_4


def run(*, backend: Optional[str] = None, workers: int = 0) -> ExperimentResult:
    """``backend`` names the repro.sim tier the run totals come from; the
    per-iteration breakdown itself is defined by the streaming model (a
    streaming-tier run reuses its result, other tiers re-simulate the
    one segment).  ``workers`` shards the strategy runs."""
    dse = run_sweep(
        table6_sweep(backend), workers=workers,
        keep_reports=True, baselines=False,
    )
    runs = {pr.point.strategy: pr.report for pr in dse.points}
    result = ExperimentResult(
        experiment="figure9",
        title="Figure 9: per-iteration breakdown of layer 9 (cycles)",
        columns=[
            "strategy", "nodes", "compute", "send_ifmap", "send_ofmap",
            "wait_ifmap", "other", "total",
        ],
    )
    for strategy in STRATEGIES:
        run_result = runs[strategy]
        for seg_run in run_result.runs:
            if LAYER_INDEX not in seg_run.segment.allocation.nodes:
                continue
            breakdown = streaming_core_breakdown(
                seg_run.timings, LAYER_INDEX, seg_run.result
            )
            result.add_row(
                strategy=strategy,
                nodes=run_result.nodes_of(LAYER_INDEX),
                compute=breakdown.compute,
                send_ifmap=breakdown.send_ifmap,
                send_ofmap=breakdown.send_ofmap,
                wait_ifmap=breakdown.wait_ifmap,
                other=breakdown.other,
                total=breakdown.total,
            )
            break
    waits = {row["strategy"]: row["wait_ifmap"] for row in result.rows}
    result.notes.append(
        "paper shape: waiting dominates in single-layer and greedy; "
        f"measured waits: { {k: round(v) for k, v in waits.items()} }"
    )
    return result
