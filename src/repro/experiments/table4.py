"""Table 4 — node comparison: scalar core vs MAICC node vs Neural Cache.

Workload: a CONV layer applying five 3x3x256 filters to a 9x9x256 ifmap,
8-bit operands.  The MAICC column runs the bit-true node simulator (its
accumulators are checked against NumPy); the scalar column measures the
software inner loop on the same pipeline; Neural Cache is the calibrated
primitive-cost model.

The three columns are cells of the ``table4-node`` grid evaluator on the
shared sweep executor (:func:`repro.dse.run_grid`) — each cell is a pure
function of ``(node, seed, check)``, so ``workers`` shards the columns
across processes with byte-identical output.
"""

from __future__ import annotations

from typing import Dict, Mapping

import numpy as np

from repro.baselines.neural_cache import NeuralCacheModel
from repro.baselines.scalar_core import ScalarConvBaseline
from repro.core.node import MAICCNode, table4_workload
from repro.dse.engine import register_grid_evaluator, run_grid
from repro.energy.area import node_area_mm2
from repro.energy.constants import ChipConstants
from repro.experiments.report import ExperimentResult

PAPER = {
    "scalar": {"memory_kb": 20, "area_mm2": 0.052, "energy_j": 1.03e-4, "cycles": 1.24e7},
    "maicc": {"memory_kb": 20, "area_mm2": 0.114, "energy_j": 3.96e-6, "cycles": 59141},
    "neural_cache": {"memory_kb": 40, "area_mm2": 0.158, "energy_j": 4.03e-6, "cycles": 136416},
}

NODES = ("scalar", "maicc", "neural_cache")


def _evaluate_node(cell: Mapping[str, object]) -> Dict[str, object]:
    """One Table 4 column (pure; picklable; registered at import time)."""
    spec = table4_workload()
    constants = ChipConstants()
    node_kind = cell["node"]
    if node_kind == "scalar":
        scalar = ScalarConvBaseline().run(spec)
        scalar_area = constants.core_area_mm2 + 20 / 8 * constants.local_mem_area_mm2
        return {
            "node": "Scalar core", "memory_kb": 20,
            "area_mm2": round(scalar_area, 3),
            "energy_j": scalar.energy_j, "cycles": scalar.total_cycles,
            "raw": scalar,
        }
    if node_kind == "maicc":
        rng = np.random.default_rng(int(cell["seed"]))  # type: ignore[call-overload]
        weights = rng.integers(-128, 128, size=(spec.m, spec.c, spec.r, spec.s))
        bias = rng.integers(-1000, 1000, size=spec.m)
        ifmap = rng.integers(-128, 128, size=(spec.c, spec.h, spec.w))
        node = MAICCNode(spec, weights, bias)
        maicc = node.run(ifmap)
        if cell["check"] and not np.array_equal(maicc.psums, node.reference(ifmap)):
            raise AssertionError("MAICC node accumulators diverge from NumPy")
        seconds = maicc.stats.cycles * constants.cycle_seconds
        maicc_energy = (
            maicc.cmem_energy_pj * 1e-12
            + (constants.core_power_w + constants.local_mem_power_w) * seconds
            + constants.cmem_leakage_w_per_node * seconds
        )
        return {
            "node": "MAICC node", "memory_kb": 20,
            "area_mm2": round(node_area_mm2(constants), 3),
            "energy_j": maicc_energy, "cycles": maicc.stats.cycles,
            "raw": maicc,
        }
    assert node_kind == "neural_cache", node_kind
    cache = NeuralCacheModel().run(spec)
    return {
        "node": "Neural Cache", "memory_kb": cache.memory_kb,
        "area_mm2": cache.area_mm2,
        "energy_j": cache.energy_j, "cycles": cache.cycles,
        "raw": cache,
    }


register_grid_evaluator("table4-node", _evaluate_node)


def run(seed: int = 42, *, check: bool = True, workers: int = 0) -> ExperimentResult:
    cells = [{"node": kind, "seed": seed, "check": check} for kind in NODES]
    columns = run_grid("table4-node", cells, workers=workers)

    result = ExperimentResult(
        experiment="table4",
        title="Table 4: node comparison (5 filters 3x3x256 on 9x9x256, int8)",
        columns=[
            "node", "memory_kb", "area_mm2", "energy_j", "cycles",
            "paper_energy_j", "paper_cycles",
        ],
    )
    for kind, col in zip(NODES, columns):
        result.add_row(
            node=col["node"], memory_kb=col["memory_kb"],
            area_mm2=col["area_mm2"],
            energy_j=col["energy_j"], cycles=col["cycles"],
            paper_energy_j=PAPER[kind]["energy_j"],
            paper_cycles=PAPER[kind]["cycles"],
        )
    maicc_cycles = columns[1]["cycles"]
    cache_cycles = columns[2]["cycles"]
    speedup = cache_cycles / maicc_cycles  # type: ignore[operator]
    result.notes.append(
        f"MAICC vs Neural Cache speedup: {speedup:.2f}x (paper: 2.3x)"
    )
    result.raw = {
        "maicc": columns[1]["raw"],
        "scalar": columns[0]["raw"],
        "neural_cache": columns[2]["raw"],
    }
    return result
