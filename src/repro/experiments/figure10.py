"""Figure 10 — area and energy breakdown of the 210-core chip."""

from __future__ import annotations

from repro.core.simulator import ChipSimulator
from repro.energy.area import area_breakdown
from repro.experiments.report import ExperimentResult
from repro.nn.workloads import resnet18_spec

PAPER_AREA = {"cmem": 0.65, "core": 0.11, "local_mem": 0.10, "noc": 0.09, "llc": 0.05}
PAPER_ENERGY = {"dram": 0.71, "cmem": 0.11, "noc": 0.11}


def run(
    simulator: ChipSimulator = None, *, backend: str = None
) -> ExperimentResult:
    """``backend`` names the repro.sim fidelity tier to simulate on."""
    sim = simulator or ChipSimulator()
    area = area_breakdown(sim.chip.constants)
    energy = sim.run(resnet18_spec(), "heuristic", backend=backend).energy

    result = ExperimentResult(
        experiment="figure10",
        title="Figure 10: area and energy breakdown",
        columns=["block", "area_fraction", "paper_area", "energy_fraction", "paper_energy"],
    )
    area_fr = area.fractions()
    energy_fr = energy.fractions()
    for block in ["cmem", "core", "local_mem", "noc", "llc", "dram"]:
        result.add_row(
            block=block,
            area_fraction=round(area_fr[block], 3) if block in area_fr else "",
            paper_area=PAPER_AREA.get(block, ""),
            energy_fraction=round(energy_fr[block], 3) if block in energy_fr else "",
            paper_energy=PAPER_ENERGY.get(block, ""),
        )
    result.notes.append(f"total area: {area.total:.1f} mm^2 (paper: 28 mm^2)")
    result.raw = {"area": area, "energy": energy}
    return result
