"""Figure 10 — area and energy breakdown of the 210-core chip.

One design point on the sweep engine: the energy split comes from the
simulated heuristic ResNet18 run, the area split from the same chip's
:func:`repro.energy.area.area_breakdown`.
"""

from __future__ import annotations

from typing import Optional

from repro.dse.engine import run_sweep
from repro.energy.area import area_breakdown
from repro.experiments.report import ExperimentResult
from repro.experiments.table7 import sweep as table7_sweep

PAPER_AREA = {"cmem": 0.65, "core": 0.11, "local_mem": 0.10, "noc": 0.09, "llc": 0.05}
PAPER_ENERGY = {"dram": 0.71, "cmem": 0.11, "noc": 0.11}


def run(*, backend: Optional[str] = None, workers: int = 0) -> ExperimentResult:
    """``backend`` names the repro.sim fidelity tier to simulate on."""
    dse = run_sweep(
        table7_sweep(backend), workers=workers,
        keep_reports=True, baselines=False,
    )
    point = dse.points[0]
    area = area_breakdown(point.point.sim_config().chip.constants)
    energy = point.report.energy

    result = ExperimentResult(
        experiment="figure10",
        title="Figure 10: area and energy breakdown",
        columns=["block", "area_fraction", "paper_area", "energy_fraction", "paper_energy"],
    )
    area_fr = area.fractions()
    energy_fr = energy.fractions()
    for block in ["cmem", "core", "local_mem", "noc", "llc", "dram"]:
        result.add_row(
            block=block,
            area_fraction=round(area_fr[block], 3) if block in area_fr else "",
            paper_area=PAPER_AREA.get(block, ""),
            energy_fraction=round(energy_fr[block], 3) if block in energy_fr else "",
            paper_energy=PAPER_ENERGY.get(block, ""),
        )
    result.notes.append(f"total area: {area.total:.1f} mm^2 (paper: 28 mm^2)")
    result.raw = {"area": area, "energy": energy}
    return result
