"""The CMem ISA extension (Table 2) and its cycle-cost model.

========== ======= ====================================================
Operation  Cycles  Meaning
========== ======= ====================================================
MAC.C      n^2     MAC of two n-bit vectors in one slice
Move.C     n       Move an n-bit vector between slices
SetRow.C   1       Set one row to all zeros or all ones
ShiftRow.C 2       Shift one row in 32-bit granularity (read + write)
LoadRow.RC 1       Remote-load one row from another node (plus NoC time)
StoreRow.RC 1      Remote-store one row to another node (plus NoC time)
========== ======= ====================================================

The 1-cycle costs of the remote row operations are the *CMem occupancy*;
network latency is charged by the NoC model.  Row-level atomicity is
guaranteed in hardware (Sec. 3.3); vector-level atomicity is a software
lock, which the kernel code implements with the ``p``/``nextp`` flags of
Algorithm 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, unique

from repro.errors import CMemError


@unique
class CMemOp(Enum):
    """The six extended operations of Table 2."""

    MAC_C = "MAC.C"
    MOVE_C = "Move.C"
    SETROW_C = "SetRow.C"
    SHIFTROW_C = "ShiftRow.C"
    LOADROW_RC = "LoadRow.RC"
    STOREROW_RC = "StoreRow.RC"


# Convenient module-level aliases.
MAC_C = CMemOp.MAC_C
MOVE_C = CMemOp.MOVE_C
SETROW_C = CMemOp.SETROW_C
SHIFTROW_C = CMemOp.SHIFTROW_C
LOADROW_RC = CMemOp.LOADROW_RC
STOREROW_RC = CMemOp.STOREROW_RC


# Operand widths are bounded by the 32-bit word granularity of a CMem row
# (ShiftRow.C aligns in 32-bit steps; a wider vector would straddle words).
MAX_OPERAND_BITS = 32


def cmem_op_cycles(op: CMemOp, n_bits: int = 8) -> int:
    """Cycle cost of one CMem operation per Table 2."""
    if n_bits < 1:
        raise CMemError(f"n_bits must be positive, got {n_bits}")
    if n_bits > MAX_OPERAND_BITS:
        raise CMemError(
            f"n_bits {n_bits} exceeds the {MAX_OPERAND_BITS}-bit word "
            "granularity of a CMem row"
        )
    if op is CMemOp.MAC_C:
        return n_bits * n_bits
    if op is CMemOp.MOVE_C:
        return n_bits
    if op is CMemOp.SETROW_C:
        return 1
    if op is CMemOp.SHIFTROW_C:
        return 2
    if op in (CMemOp.LOADROW_RC, CMemOp.STOREROW_RC):
        return 1
    raise CMemError(f"unknown CMem op {op}")


@dataclass(frozen=True)
class CMemOpCost:
    """Resolved cost of one issued CMem instruction."""

    op: CMemOp
    n_bits: int
    cycles: int

    @classmethod
    def of(cls, op: CMemOp, n_bits: int = 8) -> "CMemOpCost":
        return cls(op=op, n_bits=n_bits, cycles=cmem_op_cycles(op, n_bits))
