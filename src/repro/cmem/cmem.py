"""The computing memory device: slices + MAC primitive + accounting.

Functional semantics are bit-true: ``mac`` really activates row pairs of
the underlying SRAM arrays, pops the AND bits through the adder tree, and
folds sign-weighted partial sums — so every result is checkable against a
NumPy dot product.  Cycle and energy costs follow Table 2 and Sec. 5.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.errors import CMemError, ConfigurationError, SliceIndexError
from repro.cmem.adder_tree import AdderTree, ShiftAccumulator
from repro.cmem.isa import CMemOp, cmem_op_cycles
from repro.cmem.slice import CMemSlice, TransposeBuffer
from repro.sram.energy import EnergyAccumulator, SRAMEnergy
from repro.utils.bitops import pack_transposed, unpack_transposed


@dataclass(frozen=True)
class CMemConfig:
    """Geometry and behaviour knobs of one CMem.

    The paper's design point is eight 2 KB slices (64 x 256); ``num_slices``
    is exposed for the slicing ablation of Sec. 3.2 (more slices = more
    parallelism but more inter-slice data movement).
    """

    num_slices: int = 8
    rows: int = 64
    cols: int = 256

    def __post_init__(self) -> None:
        if self.num_slices < 2:
            raise ConfigurationError(
                "CMem needs at least one transpose slice and one compute slice"
            )
        if self.rows != CMemSlice.ROWS or self.cols != CMemSlice.COLS:
            # The slice model is fixed at 64 x 256 (2 KB); other geometries
            # are modeled analytically in the ablation benches.
            raise ConfigurationError(
                "bit-true CMem slices are fixed at 64 rows x 256 cols"
            )

    @property
    def num_compute_slices(self) -> int:
        return self.num_slices - 1

    @property
    def capacity_bytes(self) -> int:
        return self.num_slices * self.rows * self.cols // 8


@dataclass
class CMemStats:
    """Operation and cycle tally of one CMem."""

    macs: int = 0
    moves: int = 0
    set_rows: int = 0
    shift_rows: int = 0
    remote_rows: int = 0
    vertical_writes: int = 0
    busy_cycles: int = 0

    def charge(self, op: CMemOp, cycles: int) -> None:
        self.busy_cycles += cycles
        if op is CMemOp.MAC_C:
            self.macs += 1
        elif op is CMemOp.MOVE_C:
            self.moves += 1
        elif op is CMemOp.SETROW_C:
            self.set_rows += 1
        elif op is CMemOp.SHIFTROW_C:
            self.shift_rows += 1
        else:
            self.remote_rows += 1


class CMem:
    """One node's computing memory: slice 0 + compute slices 1..S-1."""

    def __init__(
        self,
        config: CMemConfig = CMemConfig(),
        energy: Optional[SRAMEnergy] = None,
    ) -> None:
        self.config = config
        self.slice0 = TransposeBuffer()
        self.compute_slices: List[CMemSlice] = [
            CMemSlice(index=i) for i in range(1, config.num_slices)
        ]
        self.adder_tree = AdderTree(width=config.cols)
        self.accumulator = ShiftAccumulator()
        self.stats = CMemStats()
        self.energy = EnergyAccumulator(energy=energy or SRAMEnergy())

    # -- slice addressing -----------------------------------------------------

    def slice(self, index: int) -> CMemSlice:
        """Slice by global index; 0 is the transpose buffer."""
        if index == 0:
            return self.slice0
        if not 1 <= index < self.config.num_slices:
            raise SliceIndexError(
                f"slice {index} out of range [0, {self.config.num_slices})"
            )
        return self.compute_slices[index - 1]

    # -- extended ISA semantics (Table 2) --------------------------------------

    def mac(
        self,
        slice_index: int,
        row_a: int,
        row_b: int,
        n_bits: int,
        *,
        signed: bool = True,
        mask: Optional[int] = None,
    ) -> int:
        """MAC.C: dot product of two transposed n-bit vectors in one slice.

        The vectors occupy rows ``[row_a, row_a + n_bits)`` and
        ``[row_b, row_b + n_bits)`` (LSB first).  For every bit pair
        ``(i, j)`` the slice activates both rows, the adder tree pops the
        masked AND bits, and the shift-accumulator folds
        ``popcount << (i + j)`` — subtracting when exactly one of the
        positions is the sign bit (two's complement).  Returns the scalar
        written back to a core register.
        """
        sl = self.slice(slice_index)
        if slice_index == 0:
            raise CMemError("slice 0 is the transpose buffer; MAC runs in slices 1+")
        if mask is None:
            mask = sl.csr_mask
        if row_a + n_bits > sl.ROWS or row_b + n_bits > sl.ROWS:
            raise CMemError("MAC operand rows exceed the slice")
        ranges_overlap = not (row_a + n_bits <= row_b or row_b + n_bits <= row_a)
        if ranges_overlap:
            raise CMemError("MAC operand row ranges overlap")
        self.accumulator.clear()
        sign_pos = n_bits - 1
        for i in range(n_bits):
            for j in range(n_bits):
                sensed = sl.activate_pair(row_a + i, row_b + j)
                partial = self.adder_tree.popcount(sensed.and_bits, mask)
                negative = signed and ((i == sign_pos) != (j == sign_pos))
                self.accumulator.accumulate(partial, i + j, negative=negative)
        cycles = cmem_op_cycles(CMemOp.MAC_C, n_bits)
        self.stats.charge(CMemOp.MAC_C, cycles)
        self.energy.charge("mac")
        return self.accumulator.value

    def move(
        self,
        src_slice: int,
        src_row: int,
        dst_slice: int,
        dst_row: int,
        n_bits: int,
    ) -> None:
        """Move.C: copy an n-bit transposed vector between slices."""
        src = self.slice(src_slice)
        dst = self.slice(dst_slice)
        if src_row + n_bits > src.ROWS or dst_row + n_bits > dst.ROWS:
            raise CMemError("Move.C rows exceed the slice")
        for k in range(n_bits):
            dst.write_row(dst_row + k, src.read_row(src_row + k))
        self.stats.charge(CMemOp.MOVE_C, cmem_op_cycles(CMemOp.MOVE_C, n_bits))
        self.energy.charge("move")

    def set_row(self, slice_index: int, row: int, value: int) -> None:
        """SetRow.C: clear or fill one row."""
        self.slice(slice_index).set_row(row, value)
        self.stats.charge(CMemOp.SETROW_C, cmem_op_cycles(CMemOp.SETROW_C))
        self.energy.charge("write_row")

    def shift_row(self, slice_index: int, row: int, words: int) -> None:
        """ShiftRow.C: align one row by 32-bit steps."""
        self.slice(slice_index).shift_row(row, words)
        self.stats.charge(CMemOp.SHIFTROW_C, cmem_op_cycles(CMemOp.SHIFTROW_C))
        self.energy.charge("read_row")
        self.energy.charge("write_row")

    def read_row(self, slice_index: int, row: int) -> np.ndarray:
        """Row readout used by StoreRow.RC (the NoC carries the 256 bits)."""
        bits = self.slice(slice_index).read_row(row)
        self.stats.charge(CMemOp.STOREROW_RC, cmem_op_cycles(CMemOp.STOREROW_RC))
        self.energy.charge("remote_row")
        return bits

    def write_row(self, slice_index: int, row: int, bits: Sequence[int]) -> None:
        """Row write used by LoadRow.RC (receiving a remote row)."""
        self.slice(slice_index).write_row(row, bits)
        self.stats.charge(CMemOp.LOADROW_RC, cmem_op_cycles(CMemOp.LOADROW_RC))
        self.energy.charge("remote_row")

    # -- data staging helpers ----------------------------------------------------

    def store_vector_transposed(
        self,
        slice_index: int,
        base_row: int,
        values: Sequence[int],
        n_bits: int,
        *,
        signed: bool = True,
        col_offset: int = 0,
    ) -> None:
        """Place a vector transposed at ``base_row`` of a slice.

        This is the test/staging shortcut for what the hardware does with a
        vertical-write stream through slice 0 followed by ``Move.C``; it
        charges vertical-write energy accordingly.
        """
        sl = self.slice(slice_index)
        values = np.asarray(values, dtype=np.int64)
        if base_row + n_bits > sl.ROWS:
            raise CMemError("transposed store exceeds the slice rows")
        if col_offset + len(values) > sl.COLS:
            raise CMemError("transposed store exceeds the slice columns")
        bits = pack_transposed(values, n_bits, len(values), signed=signed)
        for k in range(n_bits):
            row_bits = sl.read_row(base_row + k)
            row_bits[col_offset : col_offset + len(values)] = bits[k]
            sl.write_row(base_row + k, row_bits)
        self.stats.vertical_writes += len(values)
        self.energy.charge("vertical_write", len(values))

    def load_vector_transposed(
        self,
        slice_index: int,
        base_row: int,
        n_elements: int,
        n_bits: int,
        *,
        signed: bool = True,
        col_offset: int = 0,
    ) -> np.ndarray:
        """Read a transposed vector back as integers (testing helper)."""
        sl = self.slice(slice_index)
        bits = np.stack(
            [
                sl.read_row(base_row + k)[col_offset : col_offset + n_elements]
                for k in range(n_bits)
            ]
        )
        return unpack_transposed(bits, n_elements, signed=signed)
