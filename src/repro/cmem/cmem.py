"""The computing memory device: slices + MAC primitive + accounting.

Functional semantics are bit-true: ``mac`` really activates row pairs of
the underlying SRAM arrays, pops the AND bits through the adder tree, and
folds sign-weighted partial sums — so every result is checkable against a
NumPy dot product.  Cycle and energy costs follow Table 2 and Sec. 5.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import List, Optional, Sequence

import numpy as np

from repro.errors import CMemError, ConfigurationError, SliceIndexError
from repro.cmem.adder_tree import AdderTree, ShiftAccumulator
from repro.cmem.isa import CMemOp, cmem_op_cycles
from repro.cmem.slice import CMemSlice, TransposeBuffer
from repro.sram.energy import EnergyAccumulator, SRAMEnergy
from repro.telemetry import TelemetrySink, current as _current_telemetry
from repro.telemetry.hooks import publish_cmem_stats
from repro.utils.bitops import pack_transposed_cached, unpack_transposed


@lru_cache(maxsize=64)
def _row_offsets(n_bits: int) -> np.ndarray:
    """Row offsets ``0..n_bits-1`` of one transposed operand, read-only."""
    offs = np.arange(n_bits, dtype=np.intp)
    offs.setflags(write=False)
    return offs


@lru_cache(maxsize=64)
def _bit_weights(n_bits: int, signed: bool) -> np.ndarray:
    """Per-bit-position weights ``+-2^i`` (sign bit negative if signed)."""
    weights = (1 << np.arange(n_bits, dtype=np.int64)).astype(np.int64)
    if signed:
        weights[-1] = -weights[-1]
    weights.setflags(write=False)
    return weights


@dataclass(frozen=True)
class CMemConfig:
    """Geometry and behaviour knobs of one CMem.

    The paper's design point is eight 2 KB slices (64 x 256); ``num_slices``
    is exposed for the slicing ablation of Sec. 3.2 (more slices = more
    parallelism but more inter-slice data movement).
    """

    num_slices: int = 8
    rows: int = 64
    cols: int = 256

    def __post_init__(self) -> None:
        if self.num_slices < 2:
            raise ConfigurationError(
                "CMem needs at least one transpose slice and one compute slice"
            )
        if self.rows != CMemSlice.ROWS or self.cols != CMemSlice.COLS:
            # The slice model is fixed at 64 x 256 (2 KB); other geometries
            # are modeled analytically in the ablation benches.
            raise ConfigurationError(
                "bit-true CMem slices are fixed at 64 rows x 256 cols"
            )

    @property
    def num_compute_slices(self) -> int:
        return self.num_slices - 1

    @property
    def capacity_bytes(self) -> int:
        return self.num_slices * self.rows * self.cols // 8


@dataclass
class CMemStats:
    """Operation and cycle tally of one CMem."""

    macs: int = 0
    moves: int = 0
    set_rows: int = 0
    shift_rows: int = 0
    remote_rows: int = 0
    vertical_writes: int = 0
    busy_cycles: int = 0

    def charge(self, op: CMemOp, cycles: int) -> None:
        self.busy_cycles += cycles
        if op is CMemOp.MAC_C:
            self.macs += 1
        elif op is CMemOp.MOVE_C:
            self.moves += 1
        elif op is CMemOp.SETROW_C:
            self.set_rows += 1
        elif op is CMemOp.SHIFTROW_C:
            self.shift_rows += 1
        else:
            self.remote_rows += 1


class CMem:
    """One node's computing memory: slice 0 + compute slices 1..S-1.

    ``fast_path`` selects the execution engine for ``mac``/``mac_many``:

    * ``True`` (default) — the vectorized bit-plane engine: all ``n^2``
      dual-row activations of a MAC happen in one batched NumPy call and
      the partial popcounts fold through a single weighted matrix product.
    * ``False`` — the per-pair reference engine: one ``activate_pair`` +
      adder-tree popcount + shift-accumulate per bit pair.

    Both paths are bit-true and charge identical cycles, energy, and
    operation counters; the differential tests in
    ``tests/cmem/test_fast_path.py`` pin that equivalence.
    """

    def __init__(
        self,
        config: CMemConfig = CMemConfig(),
        energy: Optional[SRAMEnergy] = None,
        *,
        fast_path: bool = True,
        telemetry: Optional[TelemetrySink] = None,
        track: str = "cmem",
    ) -> None:
        self.config = config
        self.fast_path = fast_path
        self.slice0 = TransposeBuffer()
        self.compute_slices: List[CMemSlice] = [
            CMemSlice(index=i) for i in range(1, config.num_slices)
        ]
        self.adder_tree = AdderTree(width=config.cols)
        self.accumulator = ShiftAccumulator()
        self.stats = CMemStats()
        self.energy = EnergyAccumulator(energy=energy or SRAMEnergy())
        self._telemetry = telemetry if telemetry is not None else _current_telemetry()
        self.track = track

    # -- slice addressing -----------------------------------------------------

    def slice(self, index: int) -> CMemSlice:
        """Slice by global index; 0 is the transpose buffer."""
        if index == 0:
            return self.slice0
        if not 1 <= index < self.config.num_slices:
            raise SliceIndexError(
                f"slice {index} out of range [0, {self.config.num_slices})"
            )
        return self.compute_slices[index - 1]

    # -- extended ISA semantics (Table 2) --------------------------------------

    def mac(
        self,
        slice_index: int,
        row_a: int,
        row_b: int,
        n_bits: int,
        *,
        signed: bool = True,
        mask: Optional[int] = None,
    ) -> int:
        """MAC.C: dot product of two transposed n-bit vectors in one slice.

        The vectors occupy rows ``[row_a, row_a + n_bits)`` and
        ``[row_b, row_b + n_bits)`` (LSB first).  For every bit pair
        ``(i, j)`` the slice activates both rows, the adder tree pops the
        masked AND bits, and the shift-accumulator folds
        ``popcount << (i + j)`` — subtracting when exactly one of the
        positions is the sign bit (two's complement).  Returns the scalar
        written back to a core register.
        """
        sl = self._check_mac_operands(slice_index, row_a, [row_b], n_bits)
        if mask is None:
            mask = sl.csr_mask
        self.accumulator.clear()
        if self.fast_path:
            value = self._mac_fast(sl, row_a, row_b, n_bits, signed, mask)
        else:
            value = self._mac_reference(sl, row_a, row_b, n_bits, signed, mask)
        cycles = cmem_op_cycles(CMemOp.MAC_C, n_bits)
        self.stats.charge(CMemOp.MAC_C, cycles)
        self.energy.charge("mac")
        return value

    def _check_mac_operands(
        self, slice_index: int, row_a: int, weight_rows: Sequence[int], n_bits: int
    ) -> CMemSlice:
        """Shared MAC validation; returns the target slice."""
        sl = self.slice(slice_index)
        if slice_index == 0:
            raise CMemError("slice 0 is the transpose buffer; MAC runs in slices 1+")
        if row_a + n_bits > sl.ROWS:
            raise CMemError("MAC operand rows exceed the slice")
        for row_b in weight_rows:
            if row_b + n_bits > sl.ROWS:
                raise CMemError("MAC operand rows exceed the slice")
            if not (row_a + n_bits <= row_b or row_b + n_bits <= row_a):
                raise CMemError("MAC operand row ranges overlap")
        return sl

    def _mac_reference(
        self, sl: CMemSlice, row_a: int, row_b: int, n_bits: int,
        signed: bool, mask: int,
    ) -> int:
        """The per-pair engine: one activation + popcount per bit pair."""
        sign_pos = n_bits - 1
        for i in range(n_bits):
            for j in range(n_bits):
                sensed = sl.activate_pair(row_a + i, row_b + j)
                partial = self.adder_tree.popcount(sensed.and_bits, mask)
                negative = signed and ((i == sign_pos) != (j == sign_pos))
                self.accumulator.accumulate(partial, i + j, negative=negative)
        return self.accumulator.value

    def _mac_fast(
        self, sl: CMemSlice, row_a: int, row_b: int, n_bits: int,
        signed: bool, mask: int,
    ) -> int:
        """The vectorized engine: all ``n^2`` pairs in one batched activation.

        The fold is the closed form of the reference loop: with per-bit
        weights ``w_i = +-2^i`` (negative at the sign position), the
        accumulated value is ``w^T P w`` where ``P[i, j]`` is the masked
        popcount of rows ``(row_a + i, row_b + j)`` — each term
        ``w_i w_j P[i, j]`` is exactly ``+-popcount << (i + j)`` with the
        sign the two's-complement rule dictates.
        """
        offs = _row_offsets(n_bits)
        planes_a, planes_b = sl.activate_pairs_outer(
            row_a + offs, row_b + offs, checked=False
        )
        partials = self.adder_tree.popcount_outer(planes_a, planes_b, mask)
        weights = _bit_weights(n_bits, signed)
        value = int(weights @ partials @ weights)
        self.accumulator.fold_batch(value, n_bits * n_bits)
        return self.accumulator.value

    def mac_many(
        self,
        slice_index: int,
        row_a: int,
        weight_rows: Sequence[int],
        n_bits: int,
        *,
        signed: bool = True,
        mask: Optional[int] = None,
    ) -> np.ndarray:
        """Batched MAC.C: one ifmap vector against every resident filter.

        Issues the equivalent of ``len(weight_rows)`` back-to-back ``mac``
        calls — same operand ``row_a`` for the broadcast ifmap vector, one
        base row per filter vector — and returns the per-filter scalars.
        Cycles, energy, and per-pair activation counts are charged exactly
        as the individual MAC.C instructions would be; only the Python-level
        evaluation is fused (a single ``einsum`` over all bit planes).
        """
        weight_rows = [int(r) for r in weight_rows]
        sl = self._check_mac_operands(slice_index, row_a, weight_rows, n_bits)
        if mask is None:
            mask = sl.csr_mask
        if not weight_rows:
            return np.zeros(0, dtype=np.int64)
        if not self.fast_path:
            return np.array(
                [
                    self.mac(
                        slice_index, row_a, row_b, n_bits, signed=signed, mask=mask
                    )
                    for row_b in weight_rows
                ],
                dtype=np.int64,
            )
        k = len(weight_rows)
        offs = _row_offsets(n_bits)
        rows_b = (np.asarray(weight_rows, dtype=np.intp)[:, None] + offs).reshape(-1)
        planes_a, planes_b = sl.activate_pairs_outer(
            row_a + offs, rows_b, checked=False
        )
        # (n, k*n) popcount grid; bit pair (i, j) of filter f at [i, f*n + j].
        partials = self.adder_tree.popcount_outer(planes_a, planes_b, mask)
        weights = _bit_weights(n_bits, signed)
        values = np.einsum(
            "i,ikj,j->k", weights, partials.reshape(n_bits, k, n_bits), weights
        )
        cycles = cmem_op_cycles(CMemOp.MAC_C, n_bits)
        busy_before = self.stats.busy_cycles
        for value in values:
            self.accumulator.clear()
            self.accumulator.fold_batch(int(value), n_bits * n_bits)
            self.stats.charge(CMemOp.MAC_C, cycles)
        self.energy.charge("mac", k)
        if self._telemetry.enabled:
            # One span per batched MAC burst on the device's busy-cycle
            # clock (monotone by construction of ``CMemStats.charge``).
            assert self._telemetry.trace is not None
            self._telemetry.trace.complete(
                self.track,
                f"mac_burst[{k}]",
                busy_before,
                cycles * k,
                args={"macs": k, "slice": slice_index, "n_bits": n_bits},
            )
        return values.astype(np.int64)

    def move(
        self,
        src_slice: int,
        src_row: int,
        dst_slice: int,
        dst_row: int,
        n_bits: int,
    ) -> None:
        """Move.C: copy an n-bit transposed vector between slices."""
        src = self.slice(src_slice)
        dst = self.slice(dst_slice)
        if src_row + n_bits > src.ROWS or dst_row + n_bits > dst.ROWS:
            raise CMemError("Move.C rows exceed the slice")
        for k in range(n_bits):
            dst.write_row(dst_row + k, src.read_row(src_row + k))
        self.stats.charge(CMemOp.MOVE_C, cmem_op_cycles(CMemOp.MOVE_C, n_bits))
        self.energy.charge("move")

    def set_row(self, slice_index: int, row: int, value: int) -> None:
        """SetRow.C: clear or fill one row."""
        self.slice(slice_index).set_row(row, value)
        self.stats.charge(CMemOp.SETROW_C, cmem_op_cycles(CMemOp.SETROW_C))
        self.energy.charge("write_row")

    def shift_row(self, slice_index: int, row: int, words: int) -> None:
        """ShiftRow.C: align one row by 32-bit steps.

        A zero-word shift never reaches the array (the slice early-returns),
        so it charges neither cycles nor read/write energy.
        """
        self.slice(slice_index).shift_row(row, words)
        if words == 0:
            return
        self.stats.charge(CMemOp.SHIFTROW_C, cmem_op_cycles(CMemOp.SHIFTROW_C))
        self.energy.charge("read_row")
        self.energy.charge("write_row")

    def read_row(self, slice_index: int, row: int) -> np.ndarray:
        """Row readout used by StoreRow.RC (the NoC carries the 256 bits)."""
        bits = self.slice(slice_index).read_row(row)
        self.stats.charge(CMemOp.STOREROW_RC, cmem_op_cycles(CMemOp.STOREROW_RC))
        self.energy.charge("remote_row")
        return bits

    def write_row(self, slice_index: int, row: int, bits: Sequence[int]) -> None:
        """Row write used by LoadRow.RC (receiving a remote row)."""
        self.slice(slice_index).write_row(row, bits)
        self.stats.charge(CMemOp.LOADROW_RC, cmem_op_cycles(CMemOp.LOADROW_RC))
        self.energy.charge("remote_row")

    # -- telemetry -----------------------------------------------------------------

    def publish_stats(self, prefix: Optional[str] = None) -> None:
        """Publish the operation/cycle tally into the metrics registry.

        No-op on a disabled sink.  Call once per logical run; counters
        accumulate, so repeated publication double-counts by design only
        if the caller re-publishes the same tally.
        """
        publish_cmem_stats(self._telemetry, prefix or self.track, self.stats)

    # -- data staging helpers ----------------------------------------------------

    def store_vector_transposed(
        self,
        slice_index: int,
        base_row: int,
        values: Sequence[int],
        n_bits: int,
        *,
        signed: bool = True,
        col_offset: int = 0,
    ) -> None:
        """Place a vector transposed at ``base_row`` of a slice.

        This is the test/staging shortcut for what the hardware does with a
        vertical-write stream through slice 0 followed by ``Move.C``; it
        charges vertical-write energy accordingly.
        """
        sl = self.slice(slice_index)
        values = np.asarray(values, dtype=np.int64)
        if base_row + n_bits > sl.ROWS:
            raise CMemError("transposed store exceeds the slice rows")
        if col_offset + len(values) > sl.COLS:
            raise CMemError("transposed store exceeds the slice columns")
        # Weights are stationary, so encodings are memoized across stagings;
        # the bulk row update keeps the read-modify-write accounting of the
        # per-row loop it replaces.
        bits = pack_transposed_cached(values, n_bits, len(values), signed=signed)
        sl.array.update_rows(base_row, col_offset, bits)
        self.stats.vertical_writes += len(values)
        self.energy.charge("vertical_write", len(values))

    def load_vector_transposed(
        self,
        slice_index: int,
        base_row: int,
        n_elements: int,
        n_bits: int,
        *,
        signed: bool = True,
        col_offset: int = 0,
    ) -> np.ndarray:
        """Read a transposed vector back as integers (testing helper)."""
        sl = self.slice(slice_index)
        bits = sl.array.read_rows(base_row, n_bits)[
            :, col_offset : col_offset + n_elements
        ]
        return unpack_transposed(bits, n_elements, signed=signed)
