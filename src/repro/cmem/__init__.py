"""The computing memory (CMem) — the paper's core contribution (Sec. 3.2).

A CMem is eight 2 KB SRAM slices of 64 rows x 256 bit-lines.  Slice 0 uses
8T cells, is byte-addressable *vertically* (consecutive bytes land in
adjacent bit-lines so a plain ``store`` stream produces transposed vectors)
and serves as the input/transpose buffer.  Slices 1-7 are compute slices:
row-indexed only, each with an adder tree and shift-accumulate register
implementing the hardware vector-MAC primitive of Fig. 4(b).
"""

from repro.cmem.adder_tree import AdderTree, ShiftAccumulator
from repro.cmem.cmem import CMem, CMemConfig, CMemStats
from repro.cmem.slice import CMemSlice, TransposeBuffer
from repro.cmem.isa import (
    CMemOp,
    MAC_C,
    MOVE_C,
    SETROW_C,
    SHIFTROW_C,
    LOADROW_RC,
    STOREROW_RC,
    cmem_op_cycles,
)

__all__ = [
    "AdderTree",
    "ShiftAccumulator",
    "CMem",
    "CMemConfig",
    "CMemStats",
    "CMemSlice",
    "TransposeBuffer",
    "CMemOp",
    "MAC_C",
    "MOVE_C",
    "SETROW_C",
    "SHIFTROW_C",
    "LOADROW_RC",
    "STOREROW_RC",
    "cmem_op_cycles",
]
