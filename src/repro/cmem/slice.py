"""CMem slices: row-indexed compute slices and the dual-addressed slice 0.

Slice geometry (Sec. 3.2): 64 rows x 256 columns = 2 KB.  A slice holds
eight 8-bit or four 16-bit transposed vectors.

Slice 0 ("TransposeBuffer") is built from 8T cells and is *vertically*
byte-addressable (Fig. 5): byte address ``a`` (0..2047) maps to row group
``a // 256`` and bit-line ``a % 256``, with bit ``i`` of the byte stored at
row ``8 * (a // 256) + i``.  Streaming a 256-element int8 vector through
plain ``store`` instructions therefore lands it already transposed in one
row group, ready to be read out row-wise by ``Move.C``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import CMemError, RowIndexError
from repro.sram.array import SRAMArray, SRAMArrayConfig
from repro.utils.bitops import bitplanes_to_bytes, bytes_to_bitplanes


class CMemSlice:
    """One 64 x 256 compute slice, accessible only by row index."""

    ROWS = 64
    COLS = 256

    def __init__(self, index: int, *, eight_transistor: bool = False) -> None:
        self.index = index
        self.array = SRAMArray(
            SRAMArrayConfig(
                rows=self.ROWS, cols=self.COLS, eight_transistor=eight_transistor
            )
        )
        # Per-slice CSR: 8 mask bits, each enabling 32 bit-lines (Sec. 3.3).
        self.csr_mask = 0xFF

    def _check_row(self, row: int) -> None:
        if not 0 <= row < self.ROWS:
            raise RowIndexError(
                f"slice {self.index}: row {row} out of range [0, {self.ROWS})"
            )

    def read_row(self, row: int) -> np.ndarray:
        self._check_row(row)
        return self.array.read_row(row)

    def write_row(self, row: int, bits: Sequence[int]) -> None:
        self._check_row(row)
        self.array.write_row(row, bits)

    def set_row(self, row: int, value: int) -> None:
        """SetRow.C: drive one full row to all-zeros or all-ones."""
        if value not in (0, 1):
            raise CMemError(f"SetRow.C value must be 0 or 1, got {value}")
        self._check_row(row)
        self.array.write_row(row, np.full(self.COLS, value, dtype=np.uint8))

    def shift_row(self, row: int, words: int) -> None:
        """ShiftRow.C: rotate one row by ``words`` 32-bit groups.

        Positive ``words`` shifts toward higher bit-line indices; vacated
        lanes fill with zeros (the paper uses it for vector alignment when
        packing sub-256-channel vectors, together with CSR masking).
        """
        self._check_row(row)
        if words == 0:
            return
        shift_bits = words * 32
        if abs(shift_bits) >= self.COLS:
            raise CMemError(
                f"ShiftRow.C by {words} words exceeds the {self.COLS}-bit row"
            )
        bits = self.array.read_row(row)
        out = np.zeros_like(bits)
        if shift_bits > 0:
            out[shift_bits:] = bits[: self.COLS - shift_bits]
        else:
            out[: self.COLS + shift_bits] = bits[-shift_bits:]
        self.array.write_row(row, out)

    def activate_pair(self, row_a: int, row_b: int):
        self._check_row(row_a)
        self._check_row(row_b)
        return self.array.activate_pair(row_a, row_b)

    def activate_pairs_batch(
        self,
        rows_a: Sequence[int],
        rows_b: Sequence[int],
        *,
        checked: bool = True,
    ):
        """Batched dual-row activations (the vectorized MAC engine's core).

        Validation is delegated to the array — slice rows and array rows
        coincide — so the batch is not checked twice.
        """
        return self.array.activate_pairs_batch(rows_a, rows_b, checked=checked)

    def activate_pairs_outer(
        self,
        rows_a: Sequence[int],
        rows_b: Sequence[int],
        *,
        checked: bool = True,
    ):
        """All-pairs (MAC.C-pattern) activation, factored into plane blocks."""
        return self.array.activate_pairs_outer(rows_a, rows_b, checked=checked)


class TransposeBuffer(CMemSlice):
    """Slice 0: dual-addressed (byte-vertical + row) cache/transpose buffer."""

    BYTES = CMemSlice.ROWS * CMemSlice.COLS // 8  # 2048

    def __init__(self) -> None:
        super().__init__(index=0, eight_transistor=True)

    def _locate(self, addr: int) -> tuple[int, int]:
        if not 0 <= addr < self.BYTES:
            raise CMemError(
                f"slice-0 byte address {addr} out of range [0, {self.BYTES})"
            )
        group = addr // self.COLS
        column = addr % self.COLS
        return group, column

    def store_byte(self, addr: int, value: int) -> None:
        """Vertical byte store: bit ``i`` goes to row ``8*group + i``.

        The byte goes through the 8T vertical port in one access, so the
        array counts a single write (not one per bit).
        """
        if not 0 <= value < 256:
            raise CMemError(f"byte value {value} out of range")
        group, column = self._locate(addr)
        bits = (value >> np.arange(8)) & 1
        self.array.write_vertical(8 * group, column, bits.astype(np.uint8))

    def load_byte(self, addr: int) -> int:
        """Vertical byte load, inverse of :meth:`store_byte` (one read)."""
        group, column = self._locate(addr)
        bits = self.array.read_vertical(8 * group, column, 8).astype(np.int64)
        return int(bits @ (1 << np.arange(8, dtype=np.int64)))

    def store_vector(self, group: int, values: Sequence[int], n_bits: int = 8) -> None:
        """Store a whole vector vertically into row groups starting at ``group``.

        Elements are written one per bit-line; ``n_bits`` of 16 uses two
        adjacent 8-row groups per element (the software layout the paper
        describes for 16-bit data).  All bytes of one row group land in a
        single bulk transpose; the stats still count one vertical-port
        access per byte, exactly as the per-byte stream would.
        """
        if n_bits % 8:
            raise CMemError(f"vertical stores are byte-granular, got {n_bits} bits")
        values = np.asarray(list(values), dtype=np.int64)
        if len(values) > self.COLS:
            raise CMemError(
                f"vector of {len(values)} elements exceeds {self.COLS} bit-lines"
            )
        n_groups = n_bits // 8
        if not 0 <= group <= self.ROWS // 8 - n_groups:
            raise CMemError(f"row group {group} out of range for {n_bits}-bit store")
        encoded = values & ((1 << n_bits) - 1)
        for g in range(n_groups):
            byte_plane = (encoded >> (8 * g)) & 0xFF
            planes = bytes_to_bitplanes(byte_plane)
            self.array.write_vertical_planes(8 * (group + g), 0, planes)

    def load_vector(
        self, group: int, n_elements: int, n_bits: int = 8, *, signed: bool = False
    ) -> np.ndarray:
        """Read a vertically stored vector back as integers."""
        if n_bits % 8:
            raise CMemError(f"vertical loads are byte-granular, got {n_bits} bits")
        n_groups = n_bits // 8
        out = np.zeros(n_elements, dtype=np.int64)
        for g in range(n_groups):
            planes = self.array.read_vertical_planes(
                8 * (group + g), 0, 8, n_elements
            )
            out |= bitplanes_to_bytes(planes).astype(np.int64) << (8 * g)
        if signed:
            sign = 1 << (n_bits - 1)
            out = np.where(out & sign, out - (1 << n_bits), out)
        return out
