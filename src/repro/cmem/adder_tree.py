"""Peripheral compute logic of slices 1-7: adder tree + shift-accumulator.

Fig. 4(b) / Fig. 8 of the paper: after a dual-row activation the 256 sensed
AND bits feed a 256-input adder tree whose population count is shifted by
``i + j`` (the bit positions of the two activated rows) and accumulated
into the ``Res`` register.  These three steps are pipelined, so a full
``n``-bit MAC costs about ``n^2`` cycles.

Signed arithmetic: with two's-complement operands the weight of bit
position ``n-1`` is negative, so a partial product where exactly one of
``i, j`` is the sign position is *subtracted* rather than added.  The
shift-accumulator implements this with an add/sub control line — a single
extra gate, consistent with the paper's "negligible peripheral logic"
budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import CMemError
from repro.utils.bitops import popcount


@dataclass
class AdderTree:
    """A ``width``-input population-count tree with a 32-bit-lane mask.

    The mask models the per-slice CSR (Sec. 3.3): 8 bits, each enabling one
    group of 32 bit-lines.  Channel counts in CONV layers are mostly
    multiples of 32, hence the granularity.
    """

    width: int = 256
    lane_width: int = 32

    def __post_init__(self) -> None:
        if self.width % self.lane_width:
            raise CMemError(
                f"adder tree width {self.width} not a multiple of lane width "
                f"{self.lane_width}"
            )

    @property
    def num_lanes(self) -> int:
        return self.width // self.lane_width

    def lane_mask_bits(self, mask: int) -> np.ndarray:
        """Expand an 8-bit CSR mask to a per-bit-line 0/1 vector.

        Expansions are memoized per tree — the mask is a slice CSR that
        rarely changes between consecutive MACs.  The cached vector is
        read-only.
        """
        cached = self.__dict__.setdefault("_mask_cache", {}).get(mask)
        if cached is not None:
            return cached
        if not 0 <= mask < (1 << self.num_lanes):
            raise CMemError(
                f"CSR mask {mask:#x} out of range for {self.num_lanes} lanes"
            )
        lanes = np.array(
            [(mask >> lane) & 1 for lane in range(self.num_lanes)], dtype=np.uint8
        )
        bits = np.repeat(lanes, self.lane_width)
        bits.setflags(write=False)
        self._mask_cache[mask] = bits
        return bits

    def popcount(self, bits: np.ndarray, mask: int = 0xFF) -> int:
        """Sum the masked AND bits (step 2 of the MAC pipeline)."""
        bits = np.asarray(bits, dtype=np.uint8)
        if bits.shape != (self.width,):
            raise CMemError(
                f"adder tree expects {self.width} bits, got shape {bits.shape}"
            )
        return popcount(bits & self.lane_mask_bits(mask))

    def popcount_batch(self, planes: np.ndarray, mask: int = 0xFF) -> np.ndarray:
        """Masked popcount of many sensed planes in one matrix product.

        ``planes`` is ``(num_pairs, width)``; the result is an ``int64``
        vector of per-plane counts, bit-identical to calling
        :meth:`popcount` on every plane.  The product runs in float32 —
        counts are bounded by ``width`` (256), far below the 2^24 exact
        integer range, so the BLAS path loses nothing.
        """
        planes = np.asarray(planes, dtype=np.uint8)
        if planes.ndim != 2 or planes.shape[1] != self.width:
            raise CMemError(
                f"adder tree expects (*, {self.width}) planes, got shape "
                f"{planes.shape}"
            )
        return (planes.astype(np.float32) @ self._mask_f32(mask)).astype(np.int64)

    def _mask_f32(self, mask: int) -> np.ndarray:
        cache = self.__dict__.setdefault("_mask_f32_cache", {})
        mask_vec = cache.get(mask)
        if mask_vec is None:
            mask_vec = self.lane_mask_bits(mask).astype(np.float32)
            mask_vec.setflags(write=False)
            cache[mask] = mask_vec
        return mask_vec

    def popcount_outer(
        self, planes_a: np.ndarray, planes_b: np.ndarray, mask: int = 0xFF
    ) -> np.ndarray:
        """Masked popcounts of all cross pairs of two bit-plane blocks.

        ``planes_a`` is ``(n_a, width)`` and ``planes_b`` ``(n_b, width)``;
        entry ``(i, j)`` of the ``(n_a, n_b)`` int64 result is the masked
        popcount of ``planes_a[i] AND planes_b[j]`` — for 0/1 planes the
        AND is a product, so the whole grid is one float32 matrix product
        (exact: counts are bounded by ``width`` << 2^24).
        """
        planes_a = np.asarray(planes_a, dtype=np.uint8)
        planes_b = np.asarray(planes_b, dtype=np.uint8)
        if (
            planes_a.ndim != 2
            or planes_b.ndim != 2
            or planes_a.shape[1] != self.width
            or planes_b.shape[1] != self.width
        ):
            raise CMemError(
                f"adder tree expects (*, {self.width}) plane blocks, got "
                f"shapes {planes_a.shape} and {planes_b.shape}"
            )
        masked_a = planes_a.astype(np.float32) * self._mask_f32(mask)
        counts = masked_a @ planes_b.astype(np.float32).T
        return counts.astype(np.int64)


@dataclass
class ShiftAccumulator:
    """The ``Res`` register: shift partial sums by ``i + j`` and accumulate."""

    value: int = 0
    adds: int = field(default=0)

    def clear(self) -> None:
        self.value = 0

    def accumulate(self, partial: int, shift: int, *, negative: bool = False) -> None:
        """Fold one partial popcount: ``Res += (+-partial) << shift``."""
        if shift < 0:
            raise CMemError(f"negative shift {shift}")
        contribution = partial << shift
        self.value += -contribution if negative else contribution
        self.adds += 1

    def fold_batch(self, total: int, num_partials: int) -> None:
        """Load a pre-folded batch of ``num_partials`` shift-adds at once.

        The vectorized MAC engine folds all partial popcounts in one
        weighted matrix product; this records the result with the same
        ``adds`` tally the per-partial :meth:`accumulate` loop would leave.
        """
        self.value += int(total)
        self.adds += num_partials
