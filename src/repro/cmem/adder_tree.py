"""Peripheral compute logic of slices 1-7: adder tree + shift-accumulator.

Fig. 4(b) / Fig. 8 of the paper: after a dual-row activation the 256 sensed
AND bits feed a 256-input adder tree whose population count is shifted by
``i + j`` (the bit positions of the two activated rows) and accumulated
into the ``Res`` register.  These three steps are pipelined, so a full
``n``-bit MAC costs about ``n^2`` cycles.

Signed arithmetic: with two's-complement operands the weight of bit
position ``n-1`` is negative, so a partial product where exactly one of
``i, j`` is the sign position is *subtracted* rather than added.  The
shift-accumulator implements this with an add/sub control line — a single
extra gate, consistent with the paper's "negligible peripheral logic"
budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import CMemError
from repro.utils.bitops import popcount


@dataclass
class AdderTree:
    """A ``width``-input population-count tree with a 32-bit-lane mask.

    The mask models the per-slice CSR (Sec. 3.3): 8 bits, each enabling one
    group of 32 bit-lines.  Channel counts in CONV layers are mostly
    multiples of 32, hence the granularity.
    """

    width: int = 256
    lane_width: int = 32

    def __post_init__(self) -> None:
        if self.width % self.lane_width:
            raise CMemError(
                f"adder tree width {self.width} not a multiple of lane width "
                f"{self.lane_width}"
            )

    @property
    def num_lanes(self) -> int:
        return self.width // self.lane_width

    def lane_mask_bits(self, mask: int) -> np.ndarray:
        """Expand an 8-bit CSR mask to a per-bit-line 0/1 vector."""
        if not 0 <= mask < (1 << self.num_lanes):
            raise CMemError(
                f"CSR mask {mask:#x} out of range for {self.num_lanes} lanes"
            )
        lanes = np.array(
            [(mask >> lane) & 1 for lane in range(self.num_lanes)], dtype=np.uint8
        )
        return np.repeat(lanes, self.lane_width)

    def popcount(self, bits: np.ndarray, mask: int = 0xFF) -> int:
        """Sum the masked AND bits (step 2 of the MAC pipeline)."""
        bits = np.asarray(bits, dtype=np.uint8)
        if bits.shape != (self.width,):
            raise CMemError(
                f"adder tree expects {self.width} bits, got shape {bits.shape}"
            )
        return popcount(bits & self.lane_mask_bits(mask))


@dataclass
class ShiftAccumulator:
    """The ``Res`` register: shift partial sums by ``i + j`` and accumulate."""

    value: int = 0
    adds: int = field(default=0)

    def clear(self) -> None:
        self.value = 0

    def accumulate(self, partial: int, shift: int, *, negative: bool = False) -> None:
        """Fold one partial popcount: ``Res += (+-partial) << shift``."""
        if shift < 0:
            raise CMemError(f"negative shift {shift}")
        contribution = partial << shift
        self.value += -contribution if negative else contribution
        self.adds += 1
