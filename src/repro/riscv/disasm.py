"""Disassembler: Instruction objects back to canonical assembly text.

Round-trips with :func:`repro.riscv.assembler.assemble` (branch targets
become generated labels), used for debugging generated kernels and for
the assembler's property tests.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.errors import DecodeError
from repro.riscv.isa import Instruction
from repro.riscv.registers import reg_name


def _format_one(instr: Instruction, labels: Dict[int, str]) -> str:
    op = instr.opcode
    spec = instr.spec
    cm = instr.cm
    if spec.cmem_op is not None:
        if op in ("mac.c", "macu.c"):
            return (f"{op} {reg_name(instr.rd)}, {cm['slice']}, "
                    f"{cm['row_a']}, {cm['row_b']}, {cm['n']}")
        if op == "move.c":
            return (f"{op} {cm['src_slice']}, {cm['src_row']}, "
                    f"{cm['dst_slice']}, {cm['dst_row']}, {cm['n']}")
        if op == "setrow.c":
            return f"{op} {cm['slice']}, {cm['row']}, {cm['value']}"
        if op == "shiftrow.c":
            return f"{op} {cm['slice']}, {cm['row']}, {cm['words']}"
        if op in ("loadrow.rc", "storerow.rc"):
            return f"{op} {cm['slice']}, {cm['row']}, {reg_name(instr.rs1)}"
        if op == "setcsr.c":
            return f"{op} {cm['slice']}, {cm['mask']:#x}"
        raise DecodeError(f"cannot format CMem op {op!r}")
    if op in ("nop", "halt", "ecall"):
        return op
    if op in ("lui", "auipc", "li"):
        return f"{op} {reg_name(instr.rd)}, {instr.imm}"
    if op == "mv":
        return f"{op} {reg_name(instr.rd)}, {reg_name(instr.rs1)}"
    if spec.is_load and not spec.is_atomic:
        return f"{op} {reg_name(instr.rd)}, {instr.imm}({reg_name(instr.rs1)})"
    if spec.is_store and not spec.is_atomic:
        return f"{op} {reg_name(instr.rs2)}, {instr.imm}({reg_name(instr.rs1)})"
    if spec.is_atomic:
        if op == "lr.w":
            return f"{op} {reg_name(instr.rd)}, {instr.imm}({reg_name(instr.rs1)})"
        return (f"{op} {reg_name(instr.rd)}, {reg_name(instr.rs2)}, "
                f"{instr.imm}({reg_name(instr.rs1)})")
    if spec.is_branch:
        if op == "j":
            return f"{op} {labels[instr.target]}"
        if op == "jal":
            return f"{op} {reg_name(instr.rd)}, {labels[instr.target]}"
        if op == "jalr":
            return (f"{op} {reg_name(instr.rd)}, {reg_name(instr.rs1)}, "
                    f"{instr.imm}")
        return (f"{op} {reg_name(instr.rs1)}, {reg_name(instr.rs2)}, "
                f"{labels[instr.target]}")
    if spec.reads_rs2:
        return (f"{op} {reg_name(instr.rd)}, {reg_name(instr.rs1)}, "
                f"{reg_name(instr.rs2)}")
    return f"{op} {reg_name(instr.rd)}, {reg_name(instr.rs1)}, {instr.imm}"


def disassemble(program: Sequence[Instruction]) -> str:
    """Render a program as assembly text that re-assembles equivalently."""
    labels: Dict[int, str] = {}
    for instr in program:
        if instr.target is not None and instr.target not in labels:
            labels[instr.target] = f"L{instr.target}"
    lines: List[str] = []
    for index, instr in enumerate(program):
        if index in labels:
            lines.append(f"{labels[index]}:")
        lines.append(f"    {_format_one(instr, labels)}")
    return "\n".join(lines)
