"""Cycle-level timing model of the 5-stage MAICC core pipeline.

The model is execution-driven: instructions are executed functionally in
program order (sequential semantics), while issue times are computed from
a scoreboard (RAW/WAW), structural constraints (one instruction issued per
cycle, an unpipelined divider, the CMem issue queue of Sec. 3.3), the
number of register-file write-back ports, and a taken-branch flush penalty.

The CMem is modeled as the paper describes: a multi-cycle functional unit
fronted by a small FIFO issue queue.  A CMem instruction leaves the ID
stage as soon as a queue slot is free (a slot frees when its occupant
*starts* executing); occupants dispatch in FIFO order when their target
slices are idle.  With ``cmem_queue_size = 0`` the instruction stalls in ID
until the CMem itself is free — the baseline column of Table 5.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field, replace
from typing import Deque, Dict, Iterable, List, Optional

from repro.errors import ConfigurationError, SimulationError
from repro.riscv.executor import Executor
from repro.riscv.isa import FunctionalUnit, Instruction
from repro.riscv.memory import AddressRegion
from repro.riscv.scoreboard import Scoreboard
from repro.telemetry import TelemetrySink, current as _current_telemetry
from repro.telemetry.hooks import publish_pipeline_stats


@dataclass(frozen=True)
class PipelineConfig:
    """Timing knobs; defaults are the paper's design point."""

    cmem_queue_size: int = 2
    writeback_ports: int = 2
    branch_penalty: int = 2
    remote_latency: int = 18  # NoC round-trip for a remote load (cycles)
    remote_store_latency: int = 4  # fire-and-forget injection occupancy
    dram_latency: int = 60  # LLC + DRAM access seen from a core
    max_cycles: int = 500_000_000

    def __post_init__(self) -> None:
        if self.cmem_queue_size < 0:
            raise ConfigurationError("cmem_queue_size must be >= 0")
        if self.writeback_ports < 1:
            raise ConfigurationError("writeback_ports must be >= 1")


@dataclass
class PipelineStats:
    """Counters collected during one run."""

    cycles: int = 0
    instructions: int = 0
    raw_stall_cycles: int = 0
    waw_stall_cycles: int = 0
    structural_stall_cycles: int = 0
    wb_stall_cycles: int = 0
    branch_flush_cycles: int = 0
    cmem_instructions: int = 0
    cmem_busy_cycles: int = 0
    category_cycles: Dict[str, int] = field(default_factory=dict)

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    def attribute(self, category: str, cycles: int) -> None:
        if cycles <= 0:
            return
        key = category or "other"
        self.category_cycles[key] = self.category_cycles.get(key, 0) + cycles

    def merge(self, other: "PipelineStats") -> "PipelineStats":
        """Field-wise sum of two stat sets; returns a new object.

        Aggregation across cores (or across split runs of one core) is a
        plain sum of every counter, including the per-category breakdown;
        derived quantities (``ipc``) recompute from the sums.  Merging is
        associative and commutative, so merging per-core splits equals
        the whole — pinned by a property test.
        """
        merged = replace(self, category_cycles=dict(self.category_cycles))
        for name in (
            "cycles",
            "instructions",
            "raw_stall_cycles",
            "waw_stall_cycles",
            "structural_stall_cycles",
            "wb_stall_cycles",
            "branch_flush_cycles",
            "cmem_instructions",
            "cmem_busy_cycles",
        ):
            setattr(merged, name, getattr(self, name) + getattr(other, name))
        for category, cycles in other.category_cycles.items():
            merged.category_cycles[category] = (
                merged.category_cycles.get(category, 0) + cycles
            )
        return merged

    @classmethod
    def merge_all(cls, stats: Iterable["PipelineStats"]) -> "PipelineStats":
        """Aggregate many cores' stats into one chip-level total.

        An empty iterable yields all-zero stats (the identity element) —
        callers summing over a variable number of cores or shards rely
        on this and must not special-case the empty case.
        """
        total = cls()
        for s in stats:
            total = total.merge(s)
        return total


def instr_slices(instr: Instruction) -> tuple:
    """Target slice indices of a CMem instruction, known at decode."""
    cm = instr.cm
    if instr.opcode == "move.c":
        return (cm["src_slice"], cm["dst_slice"])
    return (cm.get("slice", 0),)


# Back-compat alias (pre-analysis-subsystem name).
_instr_slices = instr_slices


class CMemIssueQueue:
    """Issue-queue + per-slice occupancy model of the CMem.

    Shared between :class:`Pipeline` (execution-driven timing) and the
    static timing predictor of :mod:`repro.analysis.scheduler`, so the two
    models cannot drift apart.
    """

    def __init__(self, queue_size: int, num_slices: int) -> None:
        self.queue_size = queue_size
        # Start times of previously accepted CMem ops, newest last; an op's
        # queue slot frees when it starts, so acceptance is gated on the
        # start time of the op ``queue_size`` positions back.
        self.start_times: Deque[int] = deque()
        self.slice_free = [0] * num_slices
        self.last_start = -1
        self.busy_cycles = 0

    def earliest_issue(self, issue_time: int) -> int:
        """When can a new CMem instruction leave the ID stage?"""
        if self.queue_size == 0:
            # No queue: ID stalls until the op can start immediately.
            return issue_time
        if len(self.start_times) < self.queue_size:
            return issue_time
        # Wait until the oldest queued op has started.
        gate = self.start_times[-self.queue_size]
        return max(issue_time, gate)

    def dispatch(self, ready: int, slices: tuple, duration: int) -> int:
        """Dispatch an op that entered the queue at ``ready``; returns start."""
        start = max(ready, self.last_start + 1)
        for s in slices:
            start = max(start, self.slice_free[s])
        for s in slices:
            self.slice_free[s] = start + duration
        self.last_start = start
        self.start_times.append(start)
        if len(self.start_times) > 64:
            self.start_times.popleft()
        self.busy_cycles += duration
        return start

    def all_free_time(self) -> int:
        return max(self.slice_free)


# Back-compat alias (pre-analysis-subsystem name).
_CMemUnit = CMemIssueQueue


class Pipeline:
    """Executes a program and reports cycle-accurate-style timing."""

    def __init__(
        self,
        program: List[Instruction],
        executor: Executor,
        config: PipelineConfig = PipelineConfig(),
        num_cmem_slices: int = 8,
        *,
        telemetry: Optional[TelemetrySink] = None,
        track: str = "core/0",
    ) -> None:
        self.program = program
        self.executor = executor
        self.config = config
        self.stats = PipelineStats()
        self.scoreboard = Scoreboard()
        self.cmem_unit = CMemIssueQueue(config.cmem_queue_size, num_cmem_slices)
        self.muldiv_free = 0
        self.wb_slots: Dict[int, int] = {}
        self.pc = 0
        self.next_fetch_time = 0
        self.halted = False
        self.telemetry = telemetry if telemetry is not None else _current_telemetry()
        self.track = track
        self._trace_base = 0

    # -- helpers -------------------------------------------------------------

    def _reserve_wb(self, completion: int) -> int:
        """Find the first cycle >= completion with a free write-back port."""
        cycle = completion
        ports = self.config.writeback_ports
        while self.wb_slots.get(cycle, 0) >= ports:
            cycle += 1
        self.wb_slots[cycle] = self.wb_slots.get(cycle, 0) + 1
        return cycle

    def _source_ready(self, instr: Instruction) -> int:
        ready = 0
        spec = instr.spec
        if spec.reads_rs1 and instr.rs1:
            ready = max(ready, self.scoreboard.ready_time(instr.rs1))
        if spec.reads_rs2 and instr.rs2:
            ready = max(ready, self.scoreboard.ready_time(instr.rs2))
        return ready

    # -- main loop ------------------------------------------------------------

    def run(self, max_instructions: Optional[int] = None) -> PipelineStats:
        """Run until ``halt`` (or the instruction/cycle guard trips)."""
        executed = 0
        last_issue = -1
        telemetry = self.telemetry
        if telemetry.enabled:
            assert telemetry.trace is not None
            # Re-runs on the same core lay out sequentially on its track.
            self._trace_base = max(
                telemetry.trace.cursor(self.track),
                telemetry.trace.cursor(f"{self.track}/cmem"),
            )
        while not self.halted:
            if self.pc < 0 or self.pc >= len(self.program):
                raise SimulationError(f"PC {self.pc} outside the program")
            instr = self.program[self.pc]
            issue = self._issue_time(instr)
            result = self.executor.execute(instr, self.pc)
            self._retire(instr, issue, result)
            # Attribute the cycles elapsed since the previous issue to this
            # instruction's category (issue-slot accounting: stalls are
            # charged to the instruction that waited).
            self.stats.attribute(instr.category, issue - last_issue)
            last_issue = issue
            executed += 1
            self.stats.instructions = executed
            if result.halted:
                self.halted = True
                break
            self.pc = result.next_pc
            if result.branch_taken:
                self.next_fetch_time = issue + 1 + self.config.branch_penalty
                self.stats.branch_flush_cycles += self.config.branch_penalty
            else:
                self.next_fetch_time = issue + 1
            if max_instructions is not None and executed >= max_instructions:
                break
            if self.next_fetch_time > self.config.max_cycles:
                raise SimulationError("cycle limit exceeded; runaway program?")
        # Total run time includes draining the CMem and outstanding writes.
        drain = max(
            self.next_fetch_time,
            self.cmem_unit.all_free_time(),
            self.scoreboard.horizon(),
        )
        self.stats.cycles = drain
        self.stats.cmem_busy_cycles = self.cmem_unit.busy_cycles
        if telemetry.enabled:
            assert telemetry.trace is not None
            telemetry.trace.complete(
                self.track,
                "kernel",
                self._trace_base,
                drain,
                args={
                    "instructions": self.stats.instructions,
                    "ipc": self.stats.ipc,
                },
            )
            publish_pipeline_stats(telemetry, f"{self.track}/pipeline", self.stats)
        return self.stats

    def _issue_time(self, instr: Instruction) -> int:
        spec = instr.spec
        issue = self.next_fetch_time

        source_ready = self._source_ready(instr)
        if source_ready > issue:
            self.stats.raw_stall_cycles += source_ready - issue
            issue = source_ready

        if spec.writes_rd and instr.rd:
            waw_ready = self.scoreboard.write_time(instr.rd)
            if waw_ready > issue:
                self.stats.waw_stall_cycles += waw_ready - issue
                issue = waw_ready

        if spec.unit is FunctionalUnit.MULDIV:
            if self.muldiv_free > issue:
                self.stats.structural_stall_cycles += self.muldiv_free - issue
                issue = self.muldiv_free
        elif spec.unit is FunctionalUnit.CMEM:
            gated = self.cmem_unit.earliest_issue(issue)
            if self.cmem_unit.queue_size == 0:
                # No queue: the op must start the cycle after issue, so ID
                # stalls until its target slices are free (decoded from the
                # instruction's CMem operands) and dispatch order allows it.
                for s in instr_slices(instr):
                    gated = max(gated, self.cmem_unit.slice_free[s] - 1)
                gated = max(gated, self.cmem_unit.last_start)
            if gated > issue:
                self.stats.structural_stall_cycles += gated - issue
                issue = gated
        return issue

    def _retire(self, instr: Instruction, issue: int, result) -> None:
        spec = instr.spec
        latency = instr.latency()

        if spec.unit is FunctionalUnit.CMEM:
            self.stats.cmem_instructions += 1
            start = self.cmem_unit.dispatch(issue + 1, result.cmem_slices, latency)
            completion = start + latency
            if instr.opcode == "loadrow.rc":
                completion += self.config.remote_latency
            elif instr.opcode == "storerow.rc":
                completion += self.config.remote_store_latency
            if self.telemetry.enabled:
                # One span per CMem dispatch; starts are strictly
                # increasing, so the cmem track stays monotone.
                assert self.telemetry.trace is not None
                self.telemetry.trace.complete(
                    f"{self.track}/cmem",
                    instr.opcode,
                    self._trace_base + start,
                    latency,
                )
        else:
            if spec.unit is FunctionalUnit.MEM and result.mem_region is not None:
                if result.mem_region is AddressRegion.REMOTE_CORE:
                    latency = (
                        self.config.remote_latency
                        if (spec.is_load or spec.is_atomic)
                        else self.config.remote_store_latency
                    )
                elif result.mem_region is AddressRegion.DRAM:
                    latency = self.config.dram_latency
            completion = issue + latency
            if spec.unit is FunctionalUnit.MULDIV:
                self.muldiv_free = completion

        if spec.writes_rd and instr.rd:
            wb_cycle = self._reserve_wb(completion)
            if wb_cycle > completion:
                self.stats.wb_stall_cycles += wb_cycle - completion
            self.scoreboard.set_ready(instr.rd, wb_cycle)
