"""Functional (architectural) semantics of the simulated ISA.

The pipeline executes instructions in program order, so functional state is
always sequentially consistent; the scoreboard only affects *timing*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.cmem.cmem import CMem
from repro.errors import DecodeError
from repro.riscv.isa import Instruction
from repro.riscv.memory import AddressRegion, MemoryMap, NodeMemory
from repro.riscv.registers import RegisterFile

_MASK32 = 0xFFFFFFFF


def _signed(value: int) -> int:
    value &= _MASK32
    return value - (1 << 32) if value & 0x80000000 else value


@dataclass
class ExecResult:
    """Timing-relevant facts about one executed instruction."""

    next_pc: int
    branch_taken: bool = False
    mem_region: Optional[AddressRegion] = None
    halted: bool = False
    cmem_slices: tuple = ()


class Executor:
    """Executes instructions against a register file, memory, and CMem."""

    def __init__(self, regs: RegisterFile, memory: NodeMemory, cmem: Optional[CMem]) -> None:
        self.regs = regs
        self.memory = memory
        self.cmem = cmem
        # LR/SC reservation (single-core granularity is sufficient here).
        self._reservation: Optional[int] = None

    # -- helpers ----------------------------------------------------------------

    def _rs1(self, instr: Instruction) -> int:
        return self.regs.read(instr.rs1) if instr.rs1 is not None else 0

    def _rs2(self, instr: Instruction) -> int:
        return self.regs.read(instr.rs2) if instr.rs2 is not None else 0

    def _require_cmem(self) -> CMem:
        if self.cmem is None:
            raise DecodeError("CMem instruction on a core without a CMem")
        return self.cmem

    # -- main dispatch -------------------------------------------------------------

    def execute(self, instr: Instruction, pc: int) -> ExecResult:
        opcode = instr.opcode
        handler = getattr(self, f"_op_{opcode.replace('.', '_')}", None)
        if handler is None:
            raise DecodeError(f"no functional semantics for {opcode!r}")
        return handler(instr, pc)

    # -- ALU --------------------------------------------------------------------

    def _write_alu(self, instr: Instruction, value: int, pc: int) -> ExecResult:
        self.regs.write(instr.rd, value & _MASK32)
        return ExecResult(next_pc=pc + 1)

    def _op_add(self, i: Instruction, pc: int) -> ExecResult:
        return self._write_alu(i, self._rs1(i) + self._rs2(i), pc)

    def _op_sub(self, i: Instruction, pc: int) -> ExecResult:
        return self._write_alu(i, self._rs1(i) - self._rs2(i), pc)

    def _op_and(self, i: Instruction, pc: int) -> ExecResult:
        return self._write_alu(i, self._rs1(i) & self._rs2(i), pc)

    def _op_or(self, i: Instruction, pc: int) -> ExecResult:
        return self._write_alu(i, self._rs1(i) | self._rs2(i), pc)

    def _op_xor(self, i: Instruction, pc: int) -> ExecResult:
        return self._write_alu(i, self._rs1(i) ^ self._rs2(i), pc)

    def _op_sll(self, i: Instruction, pc: int) -> ExecResult:
        return self._write_alu(i, self._rs1(i) << (self._rs2(i) & 31), pc)

    def _op_srl(self, i: Instruction, pc: int) -> ExecResult:
        return self._write_alu(i, (self._rs1(i) & _MASK32) >> (self._rs2(i) & 31), pc)

    def _op_sra(self, i: Instruction, pc: int) -> ExecResult:
        return self._write_alu(i, _signed(self._rs1(i)) >> (self._rs2(i) & 31), pc)

    def _op_slt(self, i: Instruction, pc: int) -> ExecResult:
        return self._write_alu(i, int(_signed(self._rs1(i)) < _signed(self._rs2(i))), pc)

    def _op_sltu(self, i: Instruction, pc: int) -> ExecResult:
        return self._write_alu(i, int((self._rs1(i) & _MASK32) < (self._rs2(i) & _MASK32)), pc)

    def _op_addi(self, i: Instruction, pc: int) -> ExecResult:
        return self._write_alu(i, self._rs1(i) + i.imm, pc)

    def _op_andi(self, i: Instruction, pc: int) -> ExecResult:
        return self._write_alu(i, self._rs1(i) & (i.imm & _MASK32), pc)

    def _op_ori(self, i: Instruction, pc: int) -> ExecResult:
        return self._write_alu(i, self._rs1(i) | (i.imm & _MASK32), pc)

    def _op_xori(self, i: Instruction, pc: int) -> ExecResult:
        return self._write_alu(i, self._rs1(i) ^ (i.imm & _MASK32), pc)

    def _op_slli(self, i: Instruction, pc: int) -> ExecResult:
        return self._write_alu(i, self._rs1(i) << (i.imm & 31), pc)

    def _op_srli(self, i: Instruction, pc: int) -> ExecResult:
        return self._write_alu(i, (self._rs1(i) & _MASK32) >> (i.imm & 31), pc)

    def _op_srai(self, i: Instruction, pc: int) -> ExecResult:
        return self._write_alu(i, _signed(self._rs1(i)) >> (i.imm & 31), pc)

    def _op_slti(self, i: Instruction, pc: int) -> ExecResult:
        return self._write_alu(i, int(_signed(self._rs1(i)) < i.imm), pc)

    def _op_sltiu(self, i: Instruction, pc: int) -> ExecResult:
        return self._write_alu(i, int((self._rs1(i) & _MASK32) < (i.imm & _MASK32)), pc)

    def _op_lui(self, i: Instruction, pc: int) -> ExecResult:
        return self._write_alu(i, (i.imm & 0xFFFFF) << 12, pc)

    def _op_auipc(self, i: Instruction, pc: int) -> ExecResult:
        return self._write_alu(i, pc + ((i.imm & 0xFFFFF) << 12), pc)

    def _op_li(self, i: Instruction, pc: int) -> ExecResult:
        return self._write_alu(i, i.imm, pc)

    def _op_mv(self, i: Instruction, pc: int) -> ExecResult:
        return self._write_alu(i, self._rs1(i), pc)

    def _op_nop(self, i: Instruction, pc: int) -> ExecResult:
        return ExecResult(next_pc=pc + 1)

    # -- M extension ----------------------------------------------------------------

    def _op_mul(self, i: Instruction, pc: int) -> ExecResult:
        return self._write_alu(i, _signed(self._rs1(i)) * _signed(self._rs2(i)), pc)

    def _op_mulh(self, i: Instruction, pc: int) -> ExecResult:
        return self._write_alu(i, (_signed(self._rs1(i)) * _signed(self._rs2(i))) >> 32, pc)

    def _op_mulhu(self, i: Instruction, pc: int) -> ExecResult:
        return self._write_alu(i, ((self._rs1(i) & _MASK32) * (self._rs2(i) & _MASK32)) >> 32, pc)

    def _op_mulhsu(self, i: Instruction, pc: int) -> ExecResult:
        return self._write_alu(i, (_signed(self._rs1(i)) * (self._rs2(i) & _MASK32)) >> 32, pc)

    def _op_div(self, i: Instruction, pc: int) -> ExecResult:
        a, b = _signed(self._rs1(i)), _signed(self._rs2(i))
        if b == 0:
            return self._write_alu(i, -1, pc)
        q = abs(a) // abs(b)
        return self._write_alu(i, -q if (a < 0) != (b < 0) else q, pc)

    def _op_divu(self, i: Instruction, pc: int) -> ExecResult:
        a, b = self._rs1(i) & _MASK32, self._rs2(i) & _MASK32
        return self._write_alu(i, _MASK32 if b == 0 else a // b, pc)

    def _op_rem(self, i: Instruction, pc: int) -> ExecResult:
        a, b = _signed(self._rs1(i)), _signed(self._rs2(i))
        if b == 0:
            return self._write_alu(i, a, pc)
        r = abs(a) % abs(b)
        return self._write_alu(i, -r if a < 0 else r, pc)

    def _op_remu(self, i: Instruction, pc: int) -> ExecResult:
        a, b = self._rs1(i) & _MASK32, self._rs2(i) & _MASK32
        return self._write_alu(i, a if b == 0 else a % b, pc)

    # -- memory -----------------------------------------------------------------------

    def _mem_result(self, addr: int, pc: int) -> ExecResult:
        return ExecResult(next_pc=pc + 1, mem_region=MemoryMap.region_of(addr))

    def _op_lw(self, i: Instruction, pc: int) -> ExecResult:
        addr = (self._rs1(i) + i.imm) & _MASK32
        self.regs.write(i.rd, self.memory.load(addr, 4))
        return self._mem_result(addr, pc)

    def _op_lh(self, i: Instruction, pc: int) -> ExecResult:
        addr = (self._rs1(i) + i.imm) & _MASK32
        value = self.memory.load(addr, 2)
        if value & 0x8000:
            value -= 1 << 16
        self.regs.write(i.rd, value & _MASK32)
        return self._mem_result(addr, pc)

    def _op_lhu(self, i: Instruction, pc: int) -> ExecResult:
        addr = (self._rs1(i) + i.imm) & _MASK32
        self.regs.write(i.rd, self.memory.load(addr, 2))
        return self._mem_result(addr, pc)

    def _op_lb(self, i: Instruction, pc: int) -> ExecResult:
        addr = (self._rs1(i) + i.imm) & _MASK32
        value = self.memory.load(addr, 1)
        if value & 0x80:
            value -= 1 << 8
        self.regs.write(i.rd, value & _MASK32)
        return self._mem_result(addr, pc)

    def _op_lbu(self, i: Instruction, pc: int) -> ExecResult:
        addr = (self._rs1(i) + i.imm) & _MASK32
        self.regs.write(i.rd, self.memory.load(addr, 1))
        return self._mem_result(addr, pc)

    def _op_sw(self, i: Instruction, pc: int) -> ExecResult:
        addr = (self._rs1(i) + i.imm) & _MASK32
        self.memory.store(addr, 4, self._rs2(i))
        return self._mem_result(addr, pc)

    def _op_sh(self, i: Instruction, pc: int) -> ExecResult:
        addr = (self._rs1(i) + i.imm) & _MASK32
        self.memory.store(addr, 2, self._rs2(i))
        return self._mem_result(addr, pc)

    def _op_sb(self, i: Instruction, pc: int) -> ExecResult:
        addr = (self._rs1(i) + i.imm) & _MASK32
        self.memory.store(addr, 1, self._rs2(i))
        return self._mem_result(addr, pc)

    # -- A extension ----------------------------------------------------------------

    def _op_amoadd_w(self, i: Instruction, pc: int) -> ExecResult:
        addr = (self._rs1(i) + i.imm) & _MASK32
        old = self.memory.load(addr, 4)
        self.memory.store(addr, 4, (old + self._rs2(i)) & _MASK32)
        self.regs.write(i.rd, old)
        return self._mem_result(addr, pc)

    def _op_amoswap_w(self, i: Instruction, pc: int) -> ExecResult:
        addr = (self._rs1(i) + i.imm) & _MASK32
        old = self.memory.load(addr, 4)
        self.memory.store(addr, 4, self._rs2(i) & _MASK32)
        self.regs.write(i.rd, old)
        return self._mem_result(addr, pc)

    def _op_lr_w(self, i: Instruction, pc: int) -> ExecResult:
        addr = (self._rs1(i) + i.imm) & _MASK32
        self.regs.write(i.rd, self.memory.load(addr, 4))
        self._reservation = addr
        return self._mem_result(addr, pc)

    def _op_sc_w(self, i: Instruction, pc: int) -> ExecResult:
        addr = (self._rs1(i) + i.imm) & _MASK32
        if self._reservation == addr:
            self.memory.store(addr, 4, self._rs2(i))
            self.regs.write(i.rd, 0)
        else:
            self.regs.write(i.rd, 1)
        self._reservation = None
        return self._mem_result(addr, pc)

    # -- control flow ------------------------------------------------------------------

    def _branch(self, taken: bool, i: Instruction, pc: int) -> ExecResult:
        if taken:
            return ExecResult(next_pc=i.target, branch_taken=True)
        return ExecResult(next_pc=pc + 1)

    def _op_beq(self, i: Instruction, pc: int) -> ExecResult:
        return self._branch(self._rs1(i) == self._rs2(i), i, pc)

    def _op_bne(self, i: Instruction, pc: int) -> ExecResult:
        return self._branch(self._rs1(i) != self._rs2(i), i, pc)

    def _op_blt(self, i: Instruction, pc: int) -> ExecResult:
        return self._branch(_signed(self._rs1(i)) < _signed(self._rs2(i)), i, pc)

    def _op_bge(self, i: Instruction, pc: int) -> ExecResult:
        return self._branch(_signed(self._rs1(i)) >= _signed(self._rs2(i)), i, pc)

    def _op_bltu(self, i: Instruction, pc: int) -> ExecResult:
        return self._branch((self._rs1(i) & _MASK32) < (self._rs2(i) & _MASK32), i, pc)

    def _op_bgeu(self, i: Instruction, pc: int) -> ExecResult:
        return self._branch((self._rs1(i) & _MASK32) >= (self._rs2(i) & _MASK32), i, pc)

    def _op_j(self, i: Instruction, pc: int) -> ExecResult:
        return ExecResult(next_pc=i.target, branch_taken=True)

    def _op_jal(self, i: Instruction, pc: int) -> ExecResult:
        self.regs.write(i.rd, pc + 1)
        return ExecResult(next_pc=i.target, branch_taken=True)

    def _op_jalr(self, i: Instruction, pc: int) -> ExecResult:
        target = (self._rs1(i) + i.imm) & _MASK32
        self.regs.write(i.rd, pc + 1)
        return ExecResult(next_pc=target, branch_taken=True)

    def _op_halt(self, i: Instruction, pc: int) -> ExecResult:
        return ExecResult(next_pc=pc, halted=True)

    def _op_ecall(self, i: Instruction, pc: int) -> ExecResult:
        return ExecResult(next_pc=pc, halted=True)

    # -- CMem extension -----------------------------------------------------------------

    def _op_mac_c(self, i: Instruction, pc: int) -> ExecResult:
        return self._mac(i, pc, signed=True)

    def _op_macu_c(self, i: Instruction, pc: int) -> ExecResult:
        return self._mac(i, pc, signed=False)

    def _mac(self, i: Instruction, pc: int, *, signed: bool) -> ExecResult:
        cmem = self._require_cmem()
        cm = i.cm
        value = cmem.mac(cm["slice"], cm["row_a"], cm["row_b"], cm["n"], signed=signed)
        self.regs.write(i.rd, value & _MASK32)
        return ExecResult(next_pc=pc + 1, cmem_slices=(cm["slice"],))

    def _op_move_c(self, i: Instruction, pc: int) -> ExecResult:
        cmem = self._require_cmem()
        cm = i.cm
        cmem.move(cm["src_slice"], cm["src_row"], cm["dst_slice"], cm["dst_row"], cm["n"])
        return ExecResult(next_pc=pc + 1, cmem_slices=(cm["src_slice"], cm["dst_slice"]))

    def _op_setrow_c(self, i: Instruction, pc: int) -> ExecResult:
        cmem = self._require_cmem()
        cm = i.cm
        cmem.set_row(cm["slice"], cm["row"], cm["value"])
        return ExecResult(next_pc=pc + 1, cmem_slices=(cm["slice"],))

    def _op_shiftrow_c(self, i: Instruction, pc: int) -> ExecResult:
        cmem = self._require_cmem()
        cm = i.cm
        cmem.shift_row(cm["slice"], cm["row"], cm["words"])
        return ExecResult(next_pc=pc + 1, cmem_slices=(cm["slice"],))

    def _op_setcsr_c(self, i: Instruction, pc: int) -> ExecResult:
        cmem = self._require_cmem()
        cm = i.cm
        cmem.slice(cm["slice"]).csr_mask = cm["mask"] & 0xFF
        return ExecResult(next_pc=pc + 1, cmem_slices=(cm["slice"],))

    def _op_loadrow_rc(self, i: Instruction, pc: int) -> ExecResult:
        """LoadRow.RC: fetch a 256-bit row from a remote node's CMem."""
        cmem = self._require_cmem()
        cm = i.cm
        addr = self.regs.read(i.rs1)
        if self.memory.remote_handler is None:
            raise DecodeError("LoadRow.RC with no NoC row handler attached")
        bits = self.memory.remote_handler(False, addr, 32, 0)
        row_bits = [(bits >> b) & 1 for b in range(256)]
        cmem.write_row(cm["slice"], cm["row"], row_bits)
        return ExecResult(
            next_pc=pc + 1,
            mem_region=AddressRegion.REMOTE_CORE,
            cmem_slices=(cm["slice"],),
        )

    def _op_storerow_rc(self, i: Instruction, pc: int) -> ExecResult:
        """StoreRow.RC: push a 256-bit row to a remote node's CMem."""
        cmem = self._require_cmem()
        cm = i.cm
        addr = self.regs.read(i.rs1)
        bits = cmem.read_row(cm["slice"], cm["row"])
        packed = 0
        for b, bit in enumerate(bits):
            packed |= int(bit) << b
        if self.memory.remote_handler is None:
            raise DecodeError("StoreRow.RC with no NoC row handler attached")
        self.memory.remote_handler(True, addr, 32, packed)
        return ExecResult(
            next_pc=pc + 1,
            mem_region=AddressRegion.REMOTE_CORE,
            cmem_slices=(cm["slice"],),
        )
