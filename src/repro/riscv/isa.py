"""Instruction definitions for the RV32IMA subset plus the CMem extension.

Each opcode carries an :class:`OpSpec` describing which functional unit
executes it, its nominal execution latency, and its register usage — the
information the scoreboard needs.  CMem instruction latencies depend on the
operand bit width ``n`` (Table 2) and are resolved per instruction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum, unique
from typing import Dict, Optional

from repro.cmem.isa import CMemOp, cmem_op_cycles
from repro.errors import DecodeError


@unique
class FunctionalUnit(Enum):
    ALU = "alu"
    MULDIV = "muldiv"
    MEM = "mem"
    BRANCH = "branch"
    CMEM = "cmem"
    SYS = "sys"


@dataclass(frozen=True)
class OpSpec:
    """Static properties of one opcode."""

    name: str
    unit: FunctionalUnit
    latency: int
    writes_rd: bool = False
    reads_rs1: bool = False
    reads_rs2: bool = False
    is_load: bool = False
    is_store: bool = False
    is_branch: bool = False
    is_atomic: bool = False
    cmem_op: Optional[CMemOp] = None


def _alu(name: str, *, rs2: bool) -> OpSpec:
    return OpSpec(name, FunctionalUnit.ALU, 1, writes_rd=True, reads_rs1=True, reads_rs2=rs2)


_SPECS = [
    # RV32I register-register
    _alu("add", rs2=True), _alu("sub", rs2=True), _alu("and", rs2=True),
    _alu("or", rs2=True), _alu("xor", rs2=True), _alu("sll", rs2=True),
    _alu("srl", rs2=True), _alu("sra", rs2=True), _alu("slt", rs2=True),
    _alu("sltu", rs2=True),
    # RV32I register-immediate
    _alu("addi", rs2=False), _alu("andi", rs2=False), _alu("ori", rs2=False),
    _alu("xori", rs2=False), _alu("slli", rs2=False), _alu("srli", rs2=False),
    _alu("srai", rs2=False), _alu("slti", rs2=False), _alu("sltiu", rs2=False),
    OpSpec("lui", FunctionalUnit.ALU, 1, writes_rd=True),
    OpSpec("auipc", FunctionalUnit.ALU, 1, writes_rd=True),
    OpSpec("li", FunctionalUnit.ALU, 1, writes_rd=True),
    OpSpec("mv", FunctionalUnit.ALU, 1, writes_rd=True, reads_rs1=True),
    OpSpec("nop", FunctionalUnit.ALU, 1),
    # RV32M — mul 3 cycles, div/rem multi-cycle (the paper's motivating
    # example of a scoreboard-managed long-latency instruction).
    OpSpec("mul", FunctionalUnit.MULDIV, 3, writes_rd=True, reads_rs1=True, reads_rs2=True),
    OpSpec("mulh", FunctionalUnit.MULDIV, 3, writes_rd=True, reads_rs1=True, reads_rs2=True),
    OpSpec("mulhu", FunctionalUnit.MULDIV, 3, writes_rd=True, reads_rs1=True, reads_rs2=True),
    OpSpec("mulhsu", FunctionalUnit.MULDIV, 3, writes_rd=True, reads_rs1=True, reads_rs2=True),
    OpSpec("div", FunctionalUnit.MULDIV, 16, writes_rd=True, reads_rs1=True, reads_rs2=True),
    OpSpec("divu", FunctionalUnit.MULDIV, 16, writes_rd=True, reads_rs1=True, reads_rs2=True),
    OpSpec("rem", FunctionalUnit.MULDIV, 16, writes_rd=True, reads_rs1=True, reads_rs2=True),
    OpSpec("remu", FunctionalUnit.MULDIV, 16, writes_rd=True, reads_rs1=True, reads_rs2=True),
    # Loads / stores (latency is the local hit time; remote accesses add
    # NoC round-trip time at execution).
    OpSpec("lw", FunctionalUnit.MEM, 2, writes_rd=True, reads_rs1=True, is_load=True),
    OpSpec("lh", FunctionalUnit.MEM, 2, writes_rd=True, reads_rs1=True, is_load=True),
    OpSpec("lhu", FunctionalUnit.MEM, 2, writes_rd=True, reads_rs1=True, is_load=True),
    OpSpec("lb", FunctionalUnit.MEM, 2, writes_rd=True, reads_rs1=True, is_load=True),
    OpSpec("lbu", FunctionalUnit.MEM, 2, writes_rd=True, reads_rs1=True, is_load=True),
    OpSpec("sw", FunctionalUnit.MEM, 1, reads_rs1=True, reads_rs2=True, is_store=True),
    OpSpec("sh", FunctionalUnit.MEM, 1, reads_rs1=True, reads_rs2=True, is_store=True),
    OpSpec("sb", FunctionalUnit.MEM, 1, reads_rs1=True, reads_rs2=True, is_store=True),
    # RV32A (used for the software locks of Algorithm 1)
    OpSpec("amoadd.w", FunctionalUnit.MEM, 2, writes_rd=True, reads_rs1=True,
           reads_rs2=True, is_load=True, is_store=True, is_atomic=True),
    OpSpec("amoswap.w", FunctionalUnit.MEM, 2, writes_rd=True, reads_rs1=True,
           reads_rs2=True, is_load=True, is_store=True, is_atomic=True),
    OpSpec("lr.w", FunctionalUnit.MEM, 2, writes_rd=True, reads_rs1=True,
           is_load=True, is_atomic=True),
    OpSpec("sc.w", FunctionalUnit.MEM, 2, writes_rd=True, reads_rs1=True,
           reads_rs2=True, is_store=True, is_atomic=True),
    # Control flow (resolved in EX; taken branches pay the flush penalty)
    OpSpec("beq", FunctionalUnit.BRANCH, 1, reads_rs1=True, reads_rs2=True, is_branch=True),
    OpSpec("bne", FunctionalUnit.BRANCH, 1, reads_rs1=True, reads_rs2=True, is_branch=True),
    OpSpec("blt", FunctionalUnit.BRANCH, 1, reads_rs1=True, reads_rs2=True, is_branch=True),
    OpSpec("bge", FunctionalUnit.BRANCH, 1, reads_rs1=True, reads_rs2=True, is_branch=True),
    OpSpec("bltu", FunctionalUnit.BRANCH, 1, reads_rs1=True, reads_rs2=True, is_branch=True),
    OpSpec("bgeu", FunctionalUnit.BRANCH, 1, reads_rs1=True, reads_rs2=True, is_branch=True),
    OpSpec("jal", FunctionalUnit.BRANCH, 1, writes_rd=True, is_branch=True),
    OpSpec("jalr", FunctionalUnit.BRANCH, 1, writes_rd=True, reads_rs1=True, is_branch=True),
    OpSpec("j", FunctionalUnit.BRANCH, 1, is_branch=True),
    OpSpec("halt", FunctionalUnit.SYS, 1),
    OpSpec("ecall", FunctionalUnit.SYS, 1),
    # CMem extension (Table 2).  Latencies resolved per-instruction from n.
    OpSpec("mac.c", FunctionalUnit.CMEM, 0, writes_rd=True, cmem_op=CMemOp.MAC_C),
    OpSpec("macu.c", FunctionalUnit.CMEM, 0, writes_rd=True, cmem_op=CMemOp.MAC_C),
    OpSpec("move.c", FunctionalUnit.CMEM, 0, cmem_op=CMemOp.MOVE_C),
    OpSpec("setrow.c", FunctionalUnit.CMEM, 0, cmem_op=CMemOp.SETROW_C),
    OpSpec("shiftrow.c", FunctionalUnit.CMEM, 0, cmem_op=CMemOp.SHIFTROW_C),
    OpSpec("loadrow.rc", FunctionalUnit.CMEM, 0, reads_rs1=True, cmem_op=CMemOp.LOADROW_RC),
    OpSpec("storerow.rc", FunctionalUnit.CMEM, 0, reads_rs1=True, cmem_op=CMemOp.STOREROW_RC),
    OpSpec("setcsr.c", FunctionalUnit.CMEM, 0, cmem_op=CMemOp.SETROW_C),
]

OPCODES: Dict[str, OpSpec] = {spec.name: spec for spec in _SPECS}


@dataclass
class Instruction:
    """One decoded instruction.

    ``cm`` holds CMem-extension operands: slice/row indices and the bit
    width ``n``.  ``target`` is a resolved instruction index for branches.
    """

    opcode: str
    rd: Optional[int] = None
    rs1: Optional[int] = None
    rs2: Optional[int] = None
    imm: int = 0
    target: Optional[int] = None
    cm: Dict[str, int] = field(default_factory=dict)
    label: Optional[str] = None
    source_line: int = -1
    # Free-form cost-attribution tag set by kernel generators (e.g.
    # "compute", "send_ifmap", "aux") and reported by PipelineStats.
    category: str = ""

    @property
    def spec(self) -> OpSpec:
        try:
            return OPCODES[self.opcode]
        except KeyError:
            raise DecodeError(f"unknown opcode {self.opcode!r}") from None

    def latency(self) -> int:
        """Execution latency in cycles, resolving CMem widths (Table 2)."""
        spec = self.spec
        if spec.cmem_op is not None:
            if self.opcode == "setcsr.c":
                return 1
            return cmem_op_cycles(spec.cmem_op, self.cm.get("n", 8))
        return spec.latency

    def __str__(self) -> str:
        parts = [self.opcode]
        if self.rd is not None:
            parts.append(f"rd=x{self.rd}")
        if self.rs1 is not None:
            parts.append(f"rs1=x{self.rs1}")
        if self.rs2 is not None:
            parts.append(f"rs2=x{self.rs2}")
        if self.imm:
            parts.append(f"imm={self.imm}")
        if self.cm:
            parts.append(f"cm={self.cm}")
        return " ".join(parts)
