"""A two-pass assembler for the simulator's assembly dialect.

Syntax (one instruction per line, ``#`` comments, ``label:`` definitions)::

    loop:
        li     t0, 256           # 32-bit immediates allowed
        lw     a0, 8(sp)         # loads:  rd, imm(rs1)
        sw     a0, 0(sp)         # stores: rs2, imm(rs1)
        amoswap.w t1, t2, (a0)   # atomics: rd, rs2, (rs1)
        beq    a0, t0, loop      # branches take label targets
        mac.c  a0, 1, 0, 8, 8    # rd, slice, rowA, rowB, n
        move.c 0, 0, 3, 8, 8     # srcSlice, srcRow, dstSlice, dstRow, n
        setrow.c 1, 5, 0         # slice, row, value
        shiftrow.c 1, 5, 2       # slice, row, words
        loadrow.rc 1, 3, a0      # slice, row, address register
        storerow.rc 1, 3, a0
        setcsr.c 1, 0xff         # slice, mask
        halt

Labels resolve to instruction indices (the simulator's PC is an index into
the instruction list, matching the assembly-level abstraction).
"""

from __future__ import annotations

import re
from typing import Dict, List

from repro.errors import AssemblerError, DecodeError
from repro.riscv.isa import Instruction, OPCODES
from repro.riscv.registers import REG_NAMES, reg_index

_LABEL_RE = re.compile(r"^\s*([A-Za-z_.][\w.]*)\s*:\s*(.*)$")
_MEM_RE = re.compile(r"^(-?(?:0[xX][0-9a-fA-F]+|\d+))?\(\s*([\w.]+)\s*\)$")


def _parse_int(token: str, line_no: int) -> int:
    try:
        return int(token, 0)
    except ValueError:
        raise AssemblerError(f"line {line_no}: expected integer, got {token!r}") from None


def _split_operands(rest: str) -> List[str]:
    rest = rest.strip()
    if not rest:
        return []
    return [tok.strip() for tok in rest.split(",")]


def _is_register(token: str) -> bool:
    return token in REG_NAMES


class _Parser:
    """Single program parse with label fixup."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.instructions: List[Instruction] = []
        self.labels: Dict[str, int] = {}
        self.fixups: List[tuple[int, str, int]] = []  # (instr idx, label, line)

    def parse(self) -> List[Instruction]:
        for line_no, raw in enumerate(self.text.splitlines(), start=1):
            line = raw.split("#", 1)[0].strip()
            while line:
                match = _LABEL_RE.match(line)
                if match and match.group(1) not in OPCODES:
                    label = match.group(1)
                    if label in self.labels:
                        raise AssemblerError(f"line {line_no}: duplicate label {label!r}")
                    self.labels[label] = len(self.instructions)
                    line = match.group(2).strip()
                    continue
                self._parse_instruction(line, line_no)
                line = ""
        self._resolve_fixups()
        return self.instructions

    def _resolve_fixups(self) -> None:
        for index, label, line_no in self.fixups:
            if label not in self.labels:
                raise AssemblerError(f"line {line_no}: undefined label {label!r}")
            self.instructions[index].target = self.labels[label]

    # -- per-format parsing ------------------------------------------------------

    def _parse_instruction(self, line: str, line_no: int) -> None:
        parts = line.split(None, 1)
        opcode = parts[0].lower()
        rest = parts[1] if len(parts) > 1 else ""
        if opcode not in OPCODES:
            raise AssemblerError(f"line {line_no}: unknown opcode {opcode!r}")
        operands = _split_operands(rest)
        spec = OPCODES[opcode]
        instr = Instruction(opcode=opcode, source_line=line_no)

        try:
            if spec.cmem_op is not None:
                self._parse_cmem(instr, operands, line_no)
            elif spec.is_load and not spec.is_atomic:
                self._parse_load(instr, operands, line_no)
            elif spec.is_store and not spec.is_atomic:
                self._parse_store(instr, operands, line_no)
            elif spec.is_atomic:
                self._parse_atomic(instr, operands, line_no)
            elif spec.is_branch:
                self._parse_branch(instr, operands, line_no)
            else:
                self._parse_alu(instr, operands, line_no)
        except DecodeError as exc:
            # Bad register tokens surface as assembly errors with line info.
            raise AssemblerError(f"line {line_no}: {exc}") from None
        self.instructions.append(instr)

    def _expect(self, operands: List[str], count: int, line_no: int, what: str) -> None:
        if len(operands) != count:
            raise AssemblerError(
                f"line {line_no}: {what} expects {count} operands, got {len(operands)}"
            )

    def _parse_alu(self, instr: Instruction, ops: List[str], line_no: int) -> None:
        opcode = instr.opcode
        if opcode in ("nop", "halt", "ecall"):
            self._expect(ops, 0, line_no, opcode)
            return
        if opcode in ("lui", "auipc", "li"):
            self._expect(ops, 2, line_no, opcode)
            instr.rd = reg_index(ops[0])
            instr.imm = _parse_int(ops[1], line_no)
            return
        if opcode == "mv":
            self._expect(ops, 2, line_no, opcode)
            instr.rd = reg_index(ops[0])
            instr.rs1 = reg_index(ops[1])
            return
        spec = instr.spec
        if spec.reads_rs2:
            self._expect(ops, 3, line_no, opcode)
            instr.rd = reg_index(ops[0])
            instr.rs1 = reg_index(ops[1])
            instr.rs2 = reg_index(ops[2])
        else:
            self._expect(ops, 3, line_no, opcode)
            instr.rd = reg_index(ops[0])
            instr.rs1 = reg_index(ops[1])
            instr.imm = _parse_int(ops[2], line_no)

    def _parse_mem_operand(self, token: str, line_no: int) -> tuple[int, int]:
        match = _MEM_RE.match(token.strip())
        if not match:
            raise AssemblerError(
                f"line {line_no}: expected imm(reg) memory operand, got {token!r}"
            )
        imm = _parse_int(match.group(1), line_no) if match.group(1) else 0
        return imm, reg_index(match.group(2))

    def _parse_load(self, instr: Instruction, ops: List[str], line_no: int) -> None:
        self._expect(ops, 2, line_no, instr.opcode)
        instr.rd = reg_index(ops[0])
        instr.imm, instr.rs1 = self._parse_mem_operand(ops[1], line_no)

    def _parse_store(self, instr: Instruction, ops: List[str], line_no: int) -> None:
        self._expect(ops, 2, line_no, instr.opcode)
        instr.rs2 = reg_index(ops[0])
        instr.imm, instr.rs1 = self._parse_mem_operand(ops[1], line_no)

    def _parse_atomic(self, instr: Instruction, ops: List[str], line_no: int) -> None:
        if instr.opcode == "lr.w":
            self._expect(ops, 2, line_no, instr.opcode)
            instr.rd = reg_index(ops[0])
            instr.imm, instr.rs1 = self._parse_mem_operand(ops[1], line_no)
            return
        self._expect(ops, 3, line_no, instr.opcode)
        instr.rd = reg_index(ops[0])
        instr.rs2 = reg_index(ops[1])
        instr.imm, instr.rs1 = self._parse_mem_operand(ops[2], line_no)

    def _parse_branch(self, instr: Instruction, ops: List[str], line_no: int) -> None:
        opcode = instr.opcode
        if opcode == "j":
            self._expect(ops, 1, line_no, opcode)
            self.fixups.append((len(self.instructions), ops[0], line_no))
            return
        if opcode == "jal":
            self._expect(ops, 2, line_no, opcode)
            instr.rd = reg_index(ops[0])
            self.fixups.append((len(self.instructions), ops[1], line_no))
            return
        if opcode == "jalr":
            self._expect(ops, 3, line_no, opcode)
            instr.rd = reg_index(ops[0])
            instr.rs1 = reg_index(ops[1])
            instr.imm = _parse_int(ops[2], line_no)
            return
        self._expect(ops, 3, line_no, opcode)
        instr.rs1 = reg_index(ops[0])
        instr.rs2 = reg_index(ops[1])
        self.fixups.append((len(self.instructions), ops[2], line_no))

    def _parse_cmem(self, instr: Instruction, ops: List[str], line_no: int) -> None:
        opcode = instr.opcode
        if opcode in ("mac.c", "macu.c"):
            self._expect(ops, 5, line_no, opcode)
            instr.rd = reg_index(ops[0])
            instr.cm = {
                "slice": _parse_int(ops[1], line_no),
                "row_a": _parse_int(ops[2], line_no),
                "row_b": _parse_int(ops[3], line_no),
                "n": _parse_int(ops[4], line_no),
            }
        elif opcode == "move.c":
            self._expect(ops, 5, line_no, opcode)
            instr.cm = {
                "src_slice": _parse_int(ops[0], line_no),
                "src_row": _parse_int(ops[1], line_no),
                "dst_slice": _parse_int(ops[2], line_no),
                "dst_row": _parse_int(ops[3], line_no),
                "n": _parse_int(ops[4], line_no),
            }
        elif opcode == "setrow.c":
            self._expect(ops, 3, line_no, opcode)
            instr.cm = {
                "slice": _parse_int(ops[0], line_no),
                "row": _parse_int(ops[1], line_no),
                "value": _parse_int(ops[2], line_no),
            }
        elif opcode == "shiftrow.c":
            self._expect(ops, 3, line_no, opcode)
            instr.cm = {
                "slice": _parse_int(ops[0], line_no),
                "row": _parse_int(ops[1], line_no),
                "words": _parse_int(ops[2], line_no),
            }
        elif opcode in ("loadrow.rc", "storerow.rc"):
            self._expect(ops, 3, line_no, opcode)
            instr.cm = {
                "slice": _parse_int(ops[0], line_no),
                "row": _parse_int(ops[1], line_no),
            }
            instr.rs1 = reg_index(ops[2])
        elif opcode == "setcsr.c":
            self._expect(ops, 2, line_no, opcode)
            instr.cm = {
                "slice": _parse_int(ops[0], line_no),
                "mask": _parse_int(ops[1], line_no),
            }
        else:  # pragma: no cover - spec table and parser kept in sync
            raise AssemblerError(f"line {line_no}: unhandled CMem opcode {opcode}")


def assemble(text: str) -> List[Instruction]:
    """Assemble program text into an instruction list."""
    return _Parser(text).parse()
