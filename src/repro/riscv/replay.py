"""Cache-and-replay for timing-deterministic kernels.

Running the same unrolled Algorithm-1 kernel through the cycle-level
:class:`~repro.riscv.pipeline.Pipeline` repeats two kinds of work: the
*functional* execution (whose results depend on the ifmap data and must
happen every time) and the *timing* bookkeeping (scoreboard, CMem issue
queue, write-back arbitration), which for a branch-free kernel with
statically resolvable addresses is identical on every run.  The
:class:`ReplayCache` memoizes the second kind:

* On first sight of a program it asks the static predictor of
  :mod:`repro.analysis.scheduler` whether the kernel's timing is provably
  data-independent (``TimingEstimate.exact``: no branches, every memory
  region statically known), runs the full pipeline once, and — only if
  the measured cycle count equals the prediction bit-for-bit — caches a
  snapshot of the :class:`~repro.riscv.pipeline.PipelineStats`.  The
  double gate (proof *and* measurement) means a cache entry is never an
  approximation: replaying it returns exactly what the pipeline would
  have computed.
* On later runs of the same program object it executes the instructions
  functionally (so memory, registers, CMem contents, remote traffic, and
  CMem energy all evolve exactly as before) and returns a copy of the
  cached stats, skipping the per-instruction timing interpretation —
  the pipeline's dominant cost.

Programs are keyed by object identity: the cache holds a strong
reference to the program list, so a hit is guaranteed to be the same
instruction sequence (callers like :class:`repro.core.node.MAICCNode`
build the kernel once and rerun it per ifmap).  Ineligible programs are
remembered too, so the eligibility check is paid once.

Replay is bypassed whenever full fidelity is observably different:
telemetry-enabled runs (the pipeline emits per-kernel trace spans) and
``max_instructions``-limited runs always take the real pipeline.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional

from repro.riscv.executor import Executor
from repro.riscv.isa import Instruction
from repro.riscv.pipeline import Pipeline, PipelineConfig, PipelineStats


class _Entry:
    """Cached verdict for one program object."""

    __slots__ = ("program", "config", "num_slices", "stats", "hits")

    def __init__(
        self,
        program: List[Instruction],
        config: PipelineConfig,
        num_slices: int,
        stats: Optional[PipelineStats],
    ) -> None:
        # Strong reference: while the entry lives, the program object
        # cannot be collected, so its id() cannot be reused.
        self.program = program
        self.config = config
        self.num_slices = num_slices
        self.stats = stats  # None = verified ineligible for replay
        self.hits = 0


def _snapshot(stats: PipelineStats) -> PipelineStats:
    return replace(stats, category_cycles=dict(stats.category_cycles))


class ReplayCache:
    """Memoizes pipeline timing of verified data-independent kernels."""

    def __init__(self) -> None:
        self._entries: Dict[int, _Entry] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def _find(
        self,
        program: List[Instruction],
        config: PipelineConfig,
        num_slices: int,
    ) -> Optional[_Entry]:
        entry = self._entries.get(id(program))
        if (
            entry is not None
            and entry.program is program
            and entry.config == config
            and entry.num_slices == num_slices
        ):
            return entry
        return None

    def run(
        self,
        program: List[Instruction],
        executor: Executor,
        config: PipelineConfig,
        num_slices: int,
        *,
        track: str = "core/0",
    ) -> PipelineStats:
        """Run ``program`` with memoized timing where provably safe.

        Functionally identical to ``Pipeline(...).run()`` in every case;
        the timing interpretation is skipped only after a program has
        been proven (static predictor) *and* verified (first measured
        run) timing-deterministic.
        """
        entry = self._find(program, config, num_slices)
        if entry is not None and entry.stats is not None:
            self.hits += 1
            entry.hits += 1
            self._execute_functional(program, executor, config)
            return _snapshot(entry.stats)

        self.misses += 1
        pipeline = Pipeline(
            program, executor, config, num_cmem_slices=num_slices, track=track
        )
        stats = pipeline.run()
        if entry is None:
            self._entries[id(program)] = _Entry(
                program,
                config,
                num_slices,
                _snapshot(stats) if self._replayable(
                    program, config, num_slices, stats
                ) else None,
            )
        return stats

    def _replayable(
        self,
        program: List[Instruction],
        config: PipelineConfig,
        num_slices: int,
        measured: PipelineStats,
    ) -> bool:
        """Proof + measurement gate: cache only when the static predictor
        declares the timing data-independent and its cycle count matches
        the pipeline bit-for-bit."""
        from repro.analysis.scheduler import estimate_cycles

        try:
            estimate = estimate_cycles(
                program, config, num_cmem_slices=num_slices
            )
        except Exception:
            return False
        return bool(
            estimate.exact
            and estimate.cycles == measured.cycles
            and estimate.instructions == measured.instructions
        )

    @staticmethod
    def _execute_functional(
        program: List[Instruction],
        executor: Executor,
        config: PipelineConfig,
    ) -> None:
        """Architectural-state-only replay: same instruction stream, same
        side effects (memory, registers, CMem, remote handlers), no
        timing bookkeeping."""
        pc = 0
        executed = 0
        limit = config.max_cycles
        while True:
            instr = program[pc]
            result = executor.execute(instr, pc)
            executed += 1
            if result.halted:
                return
            pc = result.next_pc
            if executed > limit:
                raise RuntimeError(
                    "functional replay exceeded the cycle limit; "
                    "runaway program?"
                )
