"""RV32 integer register file and register-name resolution."""

from __future__ import annotations

from typing import Dict, List

from repro.errors import DecodeError

NUM_REGS = 32

# ABI register names in index order.
ABI_NAMES: List[str] = (
    ["zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1"]
    + [f"a{i}" for i in range(8)]
    + [f"s{i}" for i in range(2, 12)]
    + [f"t{i}" for i in range(3, 7)]
)

REG_NAMES: Dict[str, int] = {f"x{i}": i for i in range(NUM_REGS)}
REG_NAMES.update({name: i for i, name in enumerate(ABI_NAMES)})
REG_NAMES["fp"] = 8  # frame-pointer alias for s0


def reg_index(name: str) -> int:
    """Resolve a register name (x-form or ABI) to its index."""
    try:
        return REG_NAMES[name]
    except KeyError:
        raise DecodeError(f"unknown register {name!r}") from None


def reg_name(index: int) -> str:
    """Canonical (ABI) name of a register index."""
    if not 0 <= index < NUM_REGS:
        raise DecodeError(f"register index {index} out of range")
    return ABI_NAMES[index]


_MASK32 = 0xFFFFFFFF


class RegisterFile:
    """32 x 32-bit registers with x0 hard-wired to zero.

    Values are stored as unsigned 32-bit patterns; :meth:`read_signed`
    provides the two's-complement view.
    """

    def __init__(self) -> None:
        self._values = [0] * NUM_REGS

    def read(self, index: int) -> int:
        return self._values[index]

    def read_signed(self, index: int) -> int:
        value = self._values[index]
        return value - (1 << 32) if value & 0x80000000 else value

    def write(self, index: int, value: int) -> None:
        if index == 0:
            return
        self._values[index] = value & _MASK32

    def snapshot(self) -> List[int]:
        return list(self._values)
