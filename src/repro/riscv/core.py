"""The MAICC node's processor core: pipeline + CMem + local memory.

``Core`` is the single-node facade used by tests, the Table 4/5
experiments, and the kernel generator: assemble a program, point it at a
CMem, optionally install remote/DRAM handlers, and run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Union

from repro.cmem.cmem import CMem, CMemConfig
from repro.riscv.assembler import assemble
from repro.riscv.executor import Executor
from repro.riscv.isa import Instruction
from repro.riscv.memory import NodeMemory, RemoteHandler
from repro.riscv.pipeline import Pipeline, PipelineConfig, PipelineStats
from repro.riscv.registers import RegisterFile
from repro.riscv.replay import ReplayCache
from repro.telemetry import TelemetrySink, current as _current_telemetry


@dataclass(frozen=True)
class CoreConfig:
    """Per-node configuration: pipeline knobs + CMem geometry.

    The paper's node (Fig. 3(b)): a 5-stage RV32IMA pipeline, a 4 KB
    instruction cache (not timed separately: single-cycle fetch), a 4 KB
    data memory, and a 16 KB CMem.
    """

    pipeline: PipelineConfig = field(default_factory=PipelineConfig)
    cmem: CMemConfig = field(default_factory=CMemConfig)
    # Vectorized bit-plane MAC engine (functionally and stats-identical to
    # the per-pair reference path, which remains for differential testing).
    cmem_fast_path: bool = True
    # Area/power of one core at 28 nm / 1 GHz (paper Sec. 5).
    area_mm2: float = 0.014
    power_w: float = 0.008


class Core:
    """One lightweight RISC-V core with an attached CMem."""

    def __init__(
        self,
        config: Optional[CoreConfig] = None,
        *,
        cmem: Optional[CMem] = None,
        remote_handler: Optional[RemoteHandler] = None,
        dram_handler: Optional[RemoteHandler] = None,
        node_id: int = 0,
        telemetry: Optional[TelemetrySink] = None,
        track: Optional[str] = None,
    ) -> None:
        self.config = config or CoreConfig()
        self.node_id = node_id
        self.telemetry = telemetry if telemetry is not None else _current_telemetry()
        self.track = track if track is not None else f"core/{node_id}"
        self.cmem = (
            cmem
            if cmem is not None
            else CMem(
                self.config.cmem,
                fast_path=self.config.cmem_fast_path,
                telemetry=self.telemetry,
                track=f"{self.track}/cmem-array",
            )
        )
        self.regs = RegisterFile()
        self.memory = NodeMemory(
            slice0=self.cmem.slice0,
            remote_handler=remote_handler,
            dram_handler=dram_handler,
        )
        self.executor = Executor(self.regs, self.memory, self.cmem)
        self.last_stats: Optional[PipelineStats] = None

    def run(
        self,
        program: Union[str, List[Instruction]],
        *,
        max_instructions: Optional[int] = None,
        replay_cache: Optional["ReplayCache"] = None,
    ) -> PipelineStats:
        """Assemble (if needed) and run a program to completion.

        ``replay_cache`` memoizes the timing of verified
        timing-deterministic kernels (see :mod:`repro.riscv.replay`);
        telemetry-enabled and instruction-limited runs always take the
        full pipeline.
        """
        if isinstance(program, str):
            program = assemble(program)
        if (
            replay_cache is not None
            and max_instructions is None
            and not self.telemetry.enabled
        ):
            self.last_stats = replay_cache.run(
                program,
                self.executor,
                self.config.pipeline,
                self.cmem.config.num_slices,
                track=self.track,
            )
            return self.last_stats
        pipeline = Pipeline(
            program,
            self.executor,
            self.config.pipeline,
            num_cmem_slices=self.cmem.config.num_slices,
            telemetry=self.telemetry,
            track=self.track,
        )
        self.last_stats = pipeline.run(max_instructions=max_instructions)
        return self.last_stats

    # -- convenience for tests / experiments ---------------------------------

    def write_dmem_word(self, addr: int, value: int) -> None:
        self.memory.store(addr, 4, value)

    def read_dmem_word(self, addr: int) -> int:
        return self.memory.load(addr, 4)
