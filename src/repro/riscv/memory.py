"""The partitioned global address space of Table 1 and a node's memory.

========================== ============================ =====================
Region                     Range                        Size
========================== ============================ =====================
local data memory          0x00000000 - 0x00000FFF      4 KB
CMem slice 0 (vertical)    0x00001000 - 0x000017FF      2 KB
remote core address        0x40000000 - 0x7FFFFFFF      1 GB (16 KB / core)
many-core DRAM             0x80000000 - 0xFFFFFFFF      2 GB, 32 channels
========================== ============================ =====================

Remote-core addresses encode ``01xxxxxx_xxyyyyyy_yyoooooo_oooooooo``: an
8-bit x position, an 8-bit y position, and a 14-bit (16 KB) offset into
that core's local space.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, unique
from typing import Callable, Optional, Tuple

from repro.cmem.slice import TransposeBuffer
from repro.errors import AlignmentError, MemoryMapError

LOCAL_DMEM_BASE = 0x0000_0000
LOCAL_DMEM_SIZE = 4 * 1024
SLICE0_BASE = 0x0000_1000
SLICE0_SIZE = 2 * 1024
REMOTE_BASE = 0x4000_0000
REMOTE_END = 0x8000_0000
DRAM_BASE = 0x8000_0000
DRAM_END = 0x1_0000_0000
DRAM_CHANNELS = 32
REMOTE_OFFSET_BITS = 14
REMOTE_CORE_SPAN = 1 << REMOTE_OFFSET_BITS  # 16 KB of address per core


@unique
class AddressRegion(Enum):
    LOCAL_DMEM = "local_dmem"
    SLICE0 = "slice0"
    REMOTE_CORE = "remote_core"
    DRAM = "dram"


@dataclass(frozen=True)
class MemoryMap:
    """Classifier over the Table 1 layout."""

    @staticmethod
    def region_of(addr: int) -> AddressRegion:
        if LOCAL_DMEM_BASE <= addr < LOCAL_DMEM_BASE + LOCAL_DMEM_SIZE:
            return AddressRegion.LOCAL_DMEM
        if SLICE0_BASE <= addr < SLICE0_BASE + SLICE0_SIZE:
            return AddressRegion.SLICE0
        if REMOTE_BASE <= addr < REMOTE_END:
            return AddressRegion.REMOTE_CORE
        if DRAM_BASE <= addr < DRAM_END:
            return AddressRegion.DRAM
        raise MemoryMapError(f"address {addr:#010x} is unmapped")


def decode_remote_address(addr: int) -> Tuple[int, int, int]:
    """Decode a remote-core address to ``(x, y, offset)``."""
    if not REMOTE_BASE <= addr < REMOTE_END:
        raise MemoryMapError(f"{addr:#010x} is not a remote-core address")
    offset = addr & (REMOTE_CORE_SPAN - 1)
    y = (addr >> REMOTE_OFFSET_BITS) & 0xFF
    x = (addr >> (REMOTE_OFFSET_BITS + 8)) & 0xFF
    return x, y, offset


def encode_remote_address(x: int, y: int, offset: int) -> int:
    """Build a remote-core address from mesh coordinates and a local offset."""
    if not 0 <= x < 256 or not 0 <= y < 256:
        raise MemoryMapError(f"mesh coordinates ({x}, {y}) out of range")
    if not 0 <= offset < REMOTE_CORE_SPAN:
        raise MemoryMapError(f"remote offset {offset:#x} exceeds 16 KB")
    return REMOTE_BASE | (x << (REMOTE_OFFSET_BITS + 8)) | (y << REMOTE_OFFSET_BITS) | offset


def dram_channel_of(addr: int) -> int:
    """Channel of a DRAM address: the 2 GB space is striped over 32 channels."""
    if not DRAM_BASE <= addr < DRAM_END:
        raise MemoryMapError(f"{addr:#010x} is not a DRAM address")
    span = (DRAM_END - DRAM_BASE) // DRAM_CHANNELS
    return (addr - DRAM_BASE) // span


# A remote/DRAM access handler: (is_store, addr, size, value) -> loaded value.
RemoteHandler = Callable[[bool, int, int, int], int]


class NodeMemory:
    """One node's view of the address space.

    Local data memory and slice-0 accesses are serviced locally; remote-core
    and DRAM accesses are delegated to handlers installed by the chip model
    (or a stub in single-node tests).
    """

    def __init__(
        self,
        slice0: Optional[TransposeBuffer] = None,
        remote_handler: Optional[RemoteHandler] = None,
        dram_handler: Optional[RemoteHandler] = None,
    ) -> None:
        self.dmem = bytearray(LOCAL_DMEM_SIZE)
        self.slice0 = slice0
        self.remote_handler = remote_handler
        self.dram_handler = dram_handler

    # -- byte-level local access ---------------------------------------------

    def _local_load_byte(self, addr: int) -> int:
        region = MemoryMap.region_of(addr)
        if region is AddressRegion.LOCAL_DMEM:
            return self.dmem[addr - LOCAL_DMEM_BASE]
        if region is AddressRegion.SLICE0:
            if self.slice0 is None:
                raise MemoryMapError("no CMem slice 0 attached to this node")
            return self.slice0.load_byte(addr - SLICE0_BASE)
        raise MemoryMapError(f"{addr:#010x} is not local")

    def _local_store_byte(self, addr: int, value: int) -> None:
        region = MemoryMap.region_of(addr)
        if region is AddressRegion.LOCAL_DMEM:
            self.dmem[addr - LOCAL_DMEM_BASE] = value & 0xFF
        elif region is AddressRegion.SLICE0:
            if self.slice0 is None:
                raise MemoryMapError("no CMem slice 0 attached to this node")
            self.slice0.store_byte(addr - SLICE0_BASE, value & 0xFF)
        else:
            raise MemoryMapError(f"{addr:#010x} is not local")

    # -- sized access -----------------------------------------------------------

    @staticmethod
    def _check_alignment(addr: int, size: int) -> None:
        if addr % size:
            raise AlignmentError(f"{size}-byte access to misaligned {addr:#010x}")

    def load(self, addr: int, size: int) -> int:
        """Load ``size`` bytes (little-endian, zero-extended)."""
        self._check_alignment(addr, size)
        region = MemoryMap.region_of(addr)
        if region in (AddressRegion.LOCAL_DMEM, AddressRegion.SLICE0):
            value = 0
            for i in range(size):
                value |= self._local_load_byte(addr + i) << (8 * i)
            return value
        if region is AddressRegion.REMOTE_CORE:
            if self.remote_handler is None:
                raise MemoryMapError("remote access with no NoC attached")
            return self.remote_handler(False, addr, size, 0)
        if self.dram_handler is None:
            raise MemoryMapError("DRAM access with no memory system attached")
        return self.dram_handler(False, addr, size, 0)

    def store(self, addr: int, size: int, value: int) -> None:
        """Store the low ``size`` bytes of ``value`` (little-endian)."""
        self._check_alignment(addr, size)
        region = MemoryMap.region_of(addr)
        if region in (AddressRegion.LOCAL_DMEM, AddressRegion.SLICE0):
            for i in range(size):
                self._local_store_byte(addr + i, (value >> (8 * i)) & 0xFF)
        elif region is AddressRegion.REMOTE_CORE:
            if self.remote_handler is None:
                raise MemoryMapError("remote access with no NoC attached")
            self.remote_handler(True, addr, size, value)
        else:
            if self.dram_handler is None:
                raise MemoryMapError("DRAM access with no memory system attached")
            self.dram_handler(True, addr, size, value)

    def load_word(self, addr: int) -> int:
        return self.load(addr, 4)

    def store_word(self, addr: int, value: int) -> None:
        self.store(addr, 4, value)
