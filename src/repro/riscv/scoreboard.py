"""Scoreboard state: per-register availability for hazard detection.

The MAICC core issues in order and completes out of order; the scoreboard
blocks issue on RAW (source not yet produced) and WAW (an in-flight write
to the same destination) hazards, exactly the mechanism the paper uses to
let multi-cycle instructions (idiv, remote requests, CMem extension ops)
proceed without blocking the pipeline.
"""

from __future__ import annotations

from repro.riscv.registers import NUM_REGS


class Scoreboard:
    """Tracks, for every architectural register, when its value is ready."""

    def __init__(self) -> None:
        # reg_ready[r] = first cycle at which a dependent may issue.
        self.reg_ready = [0] * NUM_REGS

    def ready_time(self, reg: int) -> int:
        """Earliest issue cycle for a reader of ``reg`` (x0 is always ready)."""
        if reg == 0:
            return 0
        return self.reg_ready[reg]

    def write_time(self, reg: int) -> int:
        """Earliest issue cycle for a *writer* of ``reg`` (WAW ordering).

        A scoreboard without renaming cannot have two outstanding writes to
        one register, so a new writer waits until the previous writer has
        retired (written back) — the same cycle a reader may issue, hence
        the shared ``reg_ready`` table.  Writes to ``x0`` are discarded in
        hardware, so ``x0`` never constrains a writer.
        """
        if reg == 0:
            return 0
        return self.reg_ready[reg]

    def set_ready(self, reg: int, cycle: int) -> None:
        """Record the write-back cycle of an in-flight write (no-op for x0)."""
        if reg == 0:
            return
        self.reg_ready[reg] = cycle

    def horizon(self) -> int:
        """Latest outstanding write-back cycle (the register-file drain)."""
        return max(self.reg_ready)

    def reset(self) -> None:
        self.reg_ready = [0] * NUM_REGS
