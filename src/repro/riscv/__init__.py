"""Lightweight RV32IMA core model: ISA, assembler, pipeline, memory map.

The simulator is *assembly-level*: instructions are Python objects produced
by :mod:`repro.riscv.assembler`, executed functionally with sequential
semantics while a scoreboard-based timing model (5-stage pipeline, in-order
issue, out-of-order completion, CMem issue queue, configurable write-back
ports) accounts cycles.  This mirrors the paper's methodology, which
schedules CMem instructions by hand rather than through a compiler.
"""

from repro.riscv.isa import FunctionalUnit, Instruction, OpSpec, OPCODES
from repro.riscv.assembler import assemble, AssemblerError
from repro.riscv.registers import RegisterFile, reg_index, REG_NAMES
from repro.riscv.memory import AddressRegion, MemoryMap, NodeMemory, decode_remote_address
from repro.riscv.pipeline import Pipeline, PipelineConfig, PipelineStats
from repro.riscv.core import Core, CoreConfig

__all__ = [
    "FunctionalUnit",
    "Instruction",
    "OpSpec",
    "OPCODES",
    "assemble",
    "AssemblerError",
    "RegisterFile",
    "reg_index",
    "REG_NAMES",
    "AddressRegion",
    "MemoryMap",
    "NodeMemory",
    "decode_remote_address",
    "Pipeline",
    "PipelineConfig",
    "PipelineStats",
    "Core",
    "CoreConfig",
]
