"""Shared configuration consumed by every simulation backend.

One :class:`SimConfig` fully describes *what machine* a network is
simulated on (chip geometry, timing constants, capacity model, partition
size) and *how* the selected backend should run it (batch, mapping
strategy, tier-specific knobs).  Front doors that historically carried
their own constructor parameters (``ChipSimulator``, ``MAICCRuntime``,
``MultiDNNScheduler``, ``serving.ServiceModel``) all reduce their state
to a ``SimConfig`` before entering the backend layer, so every tier
answers the same fully-specified query.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.core.chip import ChipConfig
from repro.core.perfmodel import TimingParams
from repro.errors import ConfigurationError
from repro.mapping.capacity import CapacityModel

#: Compute cores available to the mapper by default (the paper's 210-core
#: array minus the two cores reserved for the streaming DC of the widest
#: segment — the historical ``ChipSimulator`` default).
DEFAULT_ARRAY_SIZE = 208


@dataclass(frozen=True)
class SimConfig:
    """Everything a backend needs besides the network and the plan.

    The first block describes the machine; the second block describes the
    run; the trailing fields are tier-specific knobs that other tiers
    ignore (documented per backend in ``docs/SIMULATORS.md``).
    """

    chip: ChipConfig = field(default_factory=ChipConfig)
    params: TimingParams = field(default_factory=TimingParams)
    capacity: CapacityModel = field(default_factory=CapacityModel)
    array_size: int = DEFAULT_ARRAY_SIZE

    strategy: str = "heuristic"
    batch: int = 1
    #: Weight-stationary request batching: one mapped network serves this
    #: many in-flight requests back to back, loading filters and staging
    #: the segment once.  ``batch`` multiplies samples *within* one
    #: request (shared staging, per-sample compute); ``batch_requests``
    #: streams whole requests through the resident weights, so staging
    #: and filter-load costs amortize across requests in every tier.
    batch_requests: int = 1

    #: ``event`` tier: "eager" forwards the ifmap vector as soon as the
    #: StoreRow.RC could issue; "after_compute" follows Algorithm 1
    #: literally (forward after the MAC block).
    forward_policy: str = "eager"
    #: ``event`` tier engine: "auto" uses the vectorized per-layer engine
    #: whenever its byte-exactness preconditions hold (falling back to the
    #: per-event reference engine otherwise); "vectorized"/"reference"
    #: force one engine — the differential tests pin them against each
    #: other.
    event_engine: str = "auto"
    #: ``cycle`` tier: run every MAC on the modeled SRAM bit-lines
    #: (very slow; ``False`` keeps the same data movement with NumPy
    #: dot products — still bit-exact).
    bit_true: bool = False
    #: ``cycle`` tier: seed for the synthesized int8 weights/ifmaps the
    #: numerics check executes.
    seed: int = 0
    #: Static pre-flight gate: before any tier spends cycles,
    #: ``simulate()`` runs the ``PLAN6xx`` plan verifier
    #: (:func:`repro.analysis.analyze_plan`, ``plan`` family only) and
    #: raises :class:`repro.errors.PlanVerificationError` on
    #: error-severity findings.  ``False`` opts out — e.g. to simulate a
    #: deliberately broken plan, or to shave the last microseconds off a
    #: hot control loop (docs/ANALYSIS.md, "The pre-flight gate").
    preflight: bool = True

    def __post_init__(self) -> None:
        if self.array_size < 2:
            raise ConfigurationError(
                f"array_size must be >= 2 (one DC + one computing core), "
                f"got {self.array_size}"
            )
        if self.batch < 1:
            raise ConfigurationError(f"batch must be >= 1, got {self.batch}")
        if self.batch_requests < 1:
            raise ConfigurationError(
                f"batch_requests must be >= 1, got {self.batch_requests}"
            )
        if self.forward_policy not in ("eager", "after_compute"):
            raise ConfigurationError(
                f"unknown forward policy {self.forward_policy!r}"
            )
        if self.event_engine not in ("auto", "vectorized", "reference"):
            raise ConfigurationError(
                f"unknown event engine {self.event_engine!r}"
            )

    def with_run(
        self,
        *,
        strategy: Optional[str] = None,
        batch: Optional[int] = None,
        batch_requests: Optional[int] = None,
    ) -> "SimConfig":
        """A copy of this machine description with new run parameters."""
        return replace(
            self,
            strategy=self.strategy if strategy is None else strategy,
            batch=self.batch if batch is None else batch,
            batch_requests=(
                self.batch_requests if batch_requests is None else batch_requests
            ),
        )
