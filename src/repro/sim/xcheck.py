"""Cross-tier differential checking.

Runs the *same mapped plan* through several backends and asserts their
network-level cycle totals agree within a per-tier envelope of the
reference tier (``streaming``, the tier all historical results were
produced on).  The envelope encodes what each tier is allowed to differ
by — it is evidence the tiers model the same machine, not merely that
they share code (the tiers share only the mapping/accounting layer in
:mod:`repro.sim.accounting`; their per-segment compute models are
independent implementations).

Measured agreement on the reference workloads (ResNet-18 and the small
CNN, all three mapping strategies):

* ``event`` / ``streaming`` ≈ 0.98–1.05 at network level on full-size
  networks (the event tier resolves per-core forwarding the tandem-queue
  model approximates; the two bound each other within a few percent).
  On spatially tiny segments pipeline fill dominates and the gap grows —
  ≈ 1.12 on the 6x6 ``resnet18-segment`` xcheck workload — so the
  envelope allows 15%.
* ``analytic`` / ``streaming`` ≈ 1.00–1.19 (the closed form charges every
  layer its static start offset plus full standalone time, so it is a
  conservative upper bound on the pipelined streaming schedule; the two
  coincide exactly on single-layer segments).
* ``cycle`` reuses the analytic roll-up for time and must additionally
  report every executed layer bit-identical to the quantized reference.

``scripts/xcheck.py`` exposes this as a CLI; CI runs it on a tiny
network and a ResNet-18-style segment and byte-compares the JSON output
across two runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import XCheckError
from repro.mapping.tiling import tile_network
from repro.nn.workloads import NetworkSpec
from repro.sim.accounting import plan_network
from repro.sim.backends import available_backends, get_backend
from repro.sim.config import SimConfig
from repro.sim.report import RunReport

#: Allowed ``tier_total / reference_total`` range per backend.  The
#: reference tier itself is checked against (1, 1) implicitly.
DEFAULT_ENVELOPE: Dict[str, Tuple[float, float]] = {
    "analytic": (0.95, 1.25),
    "event": (0.90, 1.15),
    "cycle": (0.95, 1.25),
}

DEFAULT_REFERENCE = "streaming"


@dataclass
class TierCheck:
    """One backend's agreement with the reference tier."""

    backend: str
    total_cycles: float
    latency_ms: float
    ratio: float        # this tier's cycles / reference tier's cycles
    lo: float
    hi: float
    ok: bool
    notes: List[str] = field(default_factory=list)

    def as_dict(self) -> Dict[str, object]:
        return {
            "backend": self.backend,
            "total_cycles": self.total_cycles,
            "latency_ms": self.latency_ms,
            "ratio": self.ratio,
            "envelope": [self.lo, self.hi],
            "ok": self.ok,
            "notes": list(self.notes),
        }


@dataclass
class XCheckReport:
    """Outcome of one cross-tier differential run."""

    network: str
    strategy: str
    reference: str
    checks: List[TierCheck]

    @property
    def ok(self) -> bool:
        return all(check.ok for check in self.checks)

    @property
    def violations(self) -> List[TierCheck]:
        return [check for check in self.checks if not check.ok]

    def raise_if_failed(self) -> None:
        if self.ok:
            return
        parts = []
        for check in self.violations:
            parts.append(
                f"{check.backend}: ratio {check.ratio:.4f} outside "
                f"[{check.lo}, {check.hi}]"
                + (f" ({'; '.join(check.notes)})" if check.notes else "")
            )
        raise XCheckError(
            f"{self.network} ({self.strategy}): cross-tier disagreement — "
            + "; ".join(parts)
        )

    def as_dict(self) -> Dict[str, object]:
        return {
            "network": self.network,
            "strategy": self.strategy,
            "reference": self.reference,
            "ok": self.ok,
            "checks": [check.as_dict() for check in self.checks],
        }


def _check_tier(
    name: str,
    report: RunReport,
    reference_cycles: float,
    envelope: Dict[str, Tuple[float, float]],
) -> TierCheck:
    lo, hi = envelope.get(name, (1.0, 1.0))
    ratio = report.total_cycles / reference_cycles
    ok = lo <= ratio <= hi
    notes: List[str] = []
    if name == "cycle":
        macs = sum(run.functional_macs or 0 for run in report.runs)
        verified = all(run.numerics_verified for run in report.runs)
        notes.append(f"executed {macs} MACs vs quantized reference")
        if not verified:
            ok = False
            notes.append("numerics NOT verified")
    if name == "event":
        events = sum(run.events_processed or 0 for run in report.runs)
        notes.append(f"{events} events processed")
    return TierCheck(
        backend=name,
        total_cycles=report.total_cycles,
        latency_ms=report.latency_ms,
        ratio=ratio,
        lo=lo,
        hi=hi,
        ok=ok,
        notes=notes,
    )


def cross_check(
    network: NetworkSpec,
    *,
    config: Optional[SimConfig] = None,
    strategy: Optional[str] = None,
    backends: Optional[Sequence[str]] = None,
    reference: str = DEFAULT_REFERENCE,
    envelope: Optional[Dict[str, Tuple[float, float]]] = None,
) -> XCheckReport:
    """Run ``network`` through every tier on one shared plan and compare.

    The plan is computed once so the tiers are differenced on *identical*
    mappings; only the per-segment compute model varies.  Returns the
    report — call :meth:`XCheckReport.raise_if_failed` (or check ``.ok``)
    to enforce the envelope.
    """
    cfg = (config or SimConfig()).with_run(strategy=strategy)
    env = DEFAULT_ENVELOPE if envelope is None else envelope
    names = list(backends) if backends is not None else list(available_backends())
    if reference not in names:
        names.insert(0, reference)

    tiled = tile_network(network, cfg.capacity, cfg.array_size)
    plan = plan_network(tiled, cfg.strategy, cfg)
    reports = {name: get_backend(name).run(tiled, plan, cfg) for name in names}

    reference_cycles = reports[reference].total_cycles
    checks = [
        TierCheck(
            backend=reference,
            total_cycles=reference_cycles,
            latency_ms=reports[reference].latency_ms,
            ratio=1.0,
            lo=1.0,
            hi=1.0,
            ok=True,
            notes=["reference tier"],
        )
    ]
    for name in sorted(reports):
        if name == reference:
            continue
        checks.append(_check_tier(name, reports[name], reference_cycles, env))
    return XCheckReport(
        network=network.name,
        strategy=cfg.strategy,
        reference=reference,
        checks=checks,
    )
