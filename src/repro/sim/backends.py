"""The fidelity-tiered backend layer: one contract, four tiers.

Every backend answers the same query —

    run(network, plan, config) -> RunReport

— at a different fidelity/cost point, and is selectable *by name*
everywhere a simulation is requested (``ChipSimulator``, ``MAICCRuntime``,
``MultiDNNScheduler``, ``serving.ServiceModel``, the experiment drivers,
and the ``--backend`` flag of ``scripts/serve.py`` / ``scripts/trace_run.py``
/ ``scripts/xcheck.py``):

``analytic``
    The Eq. (1) closed-form roll-up (:meth:`PerformanceModel.segment_timing`):
    start offsets from the Fig. 7(a) row dependence, no queueing
    simulation.  Cheapest — the tier online controllers (elastic
    resizes) can afford to call per decision.
``streaming``
    The tandem-queue segment simulator — the production default, and the
    tier all historical results were produced on.  Byte-identical to the
    pre-backend ``ChipSimulator`` output.
``event``
    Every core of every chain as its own actor on the discrete-event
    kernel; validates the streaming approximation and exposes the
    forwarding-policy ablation (``SimConfig.forward_policy``).
``cycle``
    The functional node-group tier: actually executes the mapped layers
    (synthesized int8 weights/ifmaps, seeded) through
    :class:`FunctionalNodeGroup` and verifies every accumulator against
    an independent NumPy convolution — bit-identical, or the run raises.
    Timing totals reuse the analytic roll-up; what this tier adds is
    executed-numerics evidence and exact operation counts.  Expensive;
    meant for small networks and cross-checks (``repro.sim.xcheck``).

The cross-tier agreement envelope is asserted by :mod:`repro.sim.xcheck`
and pinned in ``tests/sim/``; see ``docs/SIMULATORS.md`` for the matrix.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Protocol, Tuple, runtime_checkable

import numpy as np

from repro.core.event_streaming import EventDrivenSegmentSimulator
from repro.core.perfmodel import LayerTiming, PerformanceModel
from repro.core.streaming import CoreBreakdown, SegmentResult, SegmentSimulator
from repro.energy.power import EnergyModel, OpCounts
from repro.errors import (
    BackendError,
    MappingError,
    PlanVerificationError,
    SimulationError,
)
from repro.mapping.segmentation import SegmentPlan
from repro.mapping.tiling import tile_network
from repro.nn.workloads import NetworkSpec
from repro.sim.accounting import (
    count_segment_ops,
    exposed_filter_load_cycles,
    performance_model,
    plan_network,
    segment_timings,
    segment_weight_bytes,
    staging_cycles,
    steady_interval,
)
from repro.sim.config import SimConfig
from repro.sim.report import LayerReport, RunReport, SegmentReport

#: The production default tier (the historical ``ChipSimulator`` path).
DEFAULT_BACKEND = "streaming"


@runtime_checkable
class SimulationBackend(Protocol):
    """What the registry requires of a backend: a name, a one-line
    fidelity statement, and the single entry point."""

    name: str
    fidelity: str

    def run(
        self, network: NetworkSpec, plan: SegmentPlan, config: SimConfig
    ) -> RunReport:
        """Simulate the mapped network; all tiers return a RunReport."""
        ...


class _SegmentOutcome:
    """What one tier produced for one segment (internal)."""

    def __init__(
        self,
        compute_cycles: float,
        layers: List[LayerReport],
        *,
        result: Optional[SegmentResult] = None,
        events_processed: Optional[int] = None,
        functional_macs: Optional[int] = None,
        checksum: Optional[int] = None,
        numerics_verified: Optional[bool] = None,
        requests_simulated: int = 1,
    ) -> None:
        self.compute_cycles = compute_cycles
        self.layers = layers
        self.result = result
        self.events_processed = events_processed
        self.functional_macs = functional_macs
        self.checksum = checksum
        self.numerics_verified = numerics_verified
        #: How many request copies ``compute_cycles`` already covers.
        #: Queueing tiers simulate the whole request batch; closed-form
        #: tiers cover one and the shared loop extrapolates the rest at
        #: the steady interval.
        self.requests_simulated = requests_simulated


class ModeledBackend:
    """Shared scaffolding: per-segment loop, load/staging charges, batch
    steady-state streaming, op counting, and energy attribution.

    Subclasses implement one hook — :meth:`_simulate_segment` — producing
    the tier's compute cycles and per-layer flow view.  The loop structure
    (and float evaluation order) mirrors the pre-backend ``ChipSimulator.run``
    exactly, which is what keeps the streaming tier byte-identical.
    """

    name = "abstract"
    fidelity = "abstract"

    def _simulate_segment(
        self,
        model: PerformanceModel,
        timings: List[LayerTiming],
        config: SimConfig,
    ) -> _SegmentOutcome:
        raise NotImplementedError

    def run(
        self, network: NetworkSpec, plan: SegmentPlan, config: SimConfig
    ) -> RunReport:
        batch = config.batch
        requests = config.batch_requests
        model = performance_model(config)
        energy_model = EnergyModel(config.chip.constants)
        runs: List[SegmentReport] = []
        total = 0.0
        ops = OpCounts()
        for k, segment in enumerate(plan.segments):
            timings = segment_timings(model, segment)
            outcome = self._simulate_segment(model, timings, config)
            weight_bytes = segment_weight_bytes(segment)
            # Weight-stationary request batching: filters load once and
            # the segment stages once for the whole request batch, so
            # both costs amortize across ``batch_requests``.
            load = exposed_filter_load_cycles(config, weight_bytes)
            staging = staging_cycles(config, plan, k) * batch
            steady = steady_interval(timings)
            report = SegmentReport(
                segment=segment,
                timings=timings,
                compute_cycles=outcome.compute_cycles,
                filter_load_cycles=load,
                staging_cycles=staging,
                layers=outcome.layers,
                steady_interval=steady,
                result=outcome.result,
                events_processed=outcome.events_processed,
                functional_macs=outcome.functional_macs,
                checksum=outcome.checksum,
                numerics_verified=outcome.numerics_verified,
            )
            runs.append(report)
            # Extra samples ride the steady-state pipeline: the segment's
            # bottleneck station dictates the per-sample interval.  A
            # queueing tier already simulated ``requests_simulated``
            # request copies inside compute_cycles; any remaining request
            # copies, and the (batch - 1) extra samples of every request,
            # stream at the steady interval.
            total += (
                report.cycles
                + (requests - outcome.requests_simulated) * steady
                + requests * (batch - 1) * steady
            )
            count_segment_ops(
                ops, model, config.capacity, segment, timings,
                outcome.compute_cycles, weight_bytes, batch=batch * requests,
            )
        seconds = total * config.chip.constants.cycle_seconds
        energy = energy_model.breakdown(ops, seconds)
        return RunReport(
            network=network,
            strategy=config.strategy,
            plan=plan,
            runs=runs,
            total_cycles=total,
            ops=ops,
            energy=energy,
            constants=config.chip.constants,
            batch=batch,
            batch_requests=requests,
            backend=self.name,
        )


def _analytic_layers(
    model: PerformanceModel, timings: List[LayerTiming]
) -> Tuple[float, List[LayerReport]]:
    """Closed-form segment roll-up: finish time + modeled layer flows."""
    st = model.segment_timing(timings)
    layers: List[LayerReport] = []
    finish = 0.0
    for offset, lt in zip(st.start_offsets, st.layers):
        layer_finish = offset + lt.standalone_cycles
        finish = max(finish, layer_finish)
        layers.append(
            LayerReport(
                index=lt.spec.index,
                name=lt.spec.name,
                computing_nodes=lt.computing_nodes,
                iterations=lt.iterations,
                interval_work=lt.interval,
                start=offset,
                finish=layer_finish,
            )
        )
    return finish, layers


class AnalyticBackend(ModeledBackend):
    """Eq. (1) closed form, no queueing simulation.  Cheapest tier."""

    name = "analytic"
    fidelity = "closed-form per-layer model, Fig. 7(a) start offsets"

    def _simulate_segment(
        self,
        model: PerformanceModel,
        timings: List[LayerTiming],
        config: SimConfig,
    ) -> _SegmentOutcome:
        finish, layers = _analytic_layers(model, timings)
        return _SegmentOutcome(finish, layers)


class StreamingBackend(ModeledBackend):
    """Tandem-queue streaming simulation — the production default."""

    name = "streaming"
    fidelity = "per-vector tandem-queue stations (pipeline fill, waiting)"

    def _simulate_segment(
        self,
        model: PerformanceModel,
        timings: List[LayerTiming],
        config: SimConfig,
    ) -> _SegmentOutcome:
        result = SegmentSimulator(
            timings, requests=config.batch_requests
        ).run()
        layers = [
            LayerReport(
                index=flow.spec.index,
                name=flow.spec.name,
                computing_nodes=lt.computing_nodes,
                iterations=flow.iterations,
                interval_work=flow.interval_work,
                start=flow.start,
                finish=flow.finish,
                total_wait=flow.total_wait,
            )
            for flow, lt in zip(result.flows, timings)
        ]
        return _SegmentOutcome(
            result.total_cycles,
            layers,
            result=result,
            requests_simulated=config.batch_requests,
        )


class EventBackend(ModeledBackend):
    """Per-core discrete-event simulation of every chain."""

    name = "event"
    fidelity = "every core an actor on the discrete-event kernel"

    def _simulate_segment(
        self,
        model: PerformanceModel,
        timings: List[LayerTiming],
        config: SimConfig,
    ) -> _SegmentOutcome:
        result = EventDrivenSegmentSimulator(
            timings,
            forward_policy=config.forward_policy,
            requests=config.batch_requests,
            engine=config.event_engine,
        ).run()
        layers = [
            LayerReport(
                index=lt.spec.index,
                name=lt.spec.name,
                computing_nodes=lt.computing_nodes,
                iterations=lt.iterations * result.requests,
                interval_work=lt.interval,
                start=0.0,
                finish=result.layer_finish[lt.spec.index],
            )
            for lt in timings
        ]
        return _SegmentOutcome(
            result.total_cycles,
            layers,
            events_processed=result.events_processed,
            requests_simulated=result.requests,
        )


def _reference_conv(
    weights: np.ndarray,
    bias: np.ndarray,
    q_in: np.ndarray,
    stride: int,
    padding: int,
) -> np.ndarray:
    """Independent integer convolution (the quantized-reference path).

    Deliberately a different computation from the functional node group
    (whole-patch tensordot per ofmap pixel vs. per-ifmap-vector scatter),
    so agreement is evidence, not tautology.
    """
    m, c, r, s = weights.shape
    _, h, w = q_in.shape
    oh = (h + 2 * padding - r) // stride + 1
    ow = (w + 2 * padding - s) // stride + 1
    padded = np.zeros((c, h + 2 * padding, w + 2 * padding), dtype=np.int64)
    padded[:, padding : padding + h, padding : padding + w] = q_in
    acc = np.tile(bias.astype(np.int64)[:, None, None], (1, oh, ow))
    for oy in range(oh):
        for ox in range(ow):
            patch = padded[:, oy * stride : oy * stride + r,
                           ox * stride : ox * stride + s]
            acc[:, oy, ox] += np.tensordot(weights, patch, axes=3)
    return acc


class CycleBackend(ModeledBackend):
    """Functional node-group execution with bit-exact numerics checking.

    Synthesizes a deterministic int8 workload per layer (seeded by
    ``SimConfig.seed`` and the layer index), streams it through
    :class:`FunctionalNodeGroup` with the plan's node allocation, and
    asserts the executed accumulators equal an independent NumPy
    convolution — raising :class:`SimulationError` on any mismatch.
    Cycle totals reuse the analytic roll-up; this tier is authoritative
    for *numerics* and executed op counts, not queueing behaviour.
    """

    name = "cycle"
    fidelity = "functional node groups, numerics vs quantized reference"

    def _simulate_segment(
        self,
        model: PerformanceModel,
        timings: List[LayerTiming],
        config: SimConfig,
    ) -> _SegmentOutcome:
        from repro.core.functional import FunctionalNodeGroup, bit_true_min_nodes

        finish, layers = _analytic_layers(model, timings)
        macs = 0
        checksum = 0
        for lt in timings:
            spec = lt.spec
            rng = np.random.default_rng((config.seed, spec.index))
            weights = rng.integers(-128, 128, (spec.m, spec.c, spec.r, spec.s))
            bias = rng.integers(-1000, 1000, spec.m)
            q_in = rng.integers(-128, 128, (spec.c, spec.h, spec.w))
            num = (
                bit_true_min_nodes(spec, config.capacity)
                if config.bit_true
                else lt.computing_nodes
            )
            group = FunctionalNodeGroup(
                spec, weights, bias, num,
                bit_true=config.bit_true, capacity=config.capacity,
            )
            acc = group.run(q_in)
            expected = _reference_conv(
                weights, bias, q_in, spec.stride, spec.padding
            )
            if not np.array_equal(acc, expected):
                raise SimulationError(
                    f"cycle tier: layer {spec.name!r} diverged from the "
                    f"quantized reference "
                    f"({int(np.abs(acc - expected).max())} max abs error)"
                )
            macs += int(group.stats.macs)
            checksum = (checksum + int(acc.sum())) & 0xFFFFFFFFFFFFFFFF
        return _SegmentOutcome(
            finish,
            layers,
            functional_macs=macs,
            checksum=checksum,
            numerics_verified=True,
        )


# -- registry ---------------------------------------------------------------------

_REGISTRY: Dict[str, SimulationBackend] = {}


def register_backend(backend: SimulationBackend, *, replace: bool = False) -> None:
    """Add a backend to the by-name registry."""
    if not isinstance(backend, SimulationBackend):
        raise BackendError(
            f"{type(backend).__name__} does not satisfy the "
            "SimulationBackend protocol (name, fidelity, run)"
        )
    if backend.name in _REGISTRY and not replace:
        raise BackendError(
            f"backend {backend.name!r} is already registered; "
            "pass replace=True to override"
        )
    _REGISTRY[backend.name] = backend


def available_backends() -> Tuple[str, ...]:
    """Registered backend names, sorted."""
    return tuple(sorted(_REGISTRY))


def get_backend(name: str) -> SimulationBackend:
    """Look a backend up by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise BackendError(
            f"unknown backend {name!r}; choose from {sorted(_REGISTRY)}"
        ) from None


for _backend in (
    AnalyticBackend(),
    StreamingBackend(),
    EventBackend(),
    CycleBackend(),
):
    register_backend(_backend)


# -- the one entry point ----------------------------------------------------------

def simulate(
    network: NetworkSpec,
    *,
    backend: Optional[str] = None,
    strategy: Optional[str] = None,
    batch: Optional[int] = None,
    batch_requests: Optional[int] = None,
    config: Optional[SimConfig] = None,
    plan: Optional[SegmentPlan] = None,
) -> RunReport:
    """Map ``network`` and simulate it on the named backend.

    ``strategy``, ``batch`` and ``batch_requests`` override the
    corresponding ``config`` fields; ``plan`` skips planning entirely
    (the caller mapped the network already — xcheck uses this to hold
    the plan fixed across tiers).
    """
    if batch is not None and batch < 1:
        raise MappingError(f"batch must be >= 1, got {batch}")
    if batch_requests is not None and batch_requests < 1:
        raise MappingError(
            f"batch_requests must be >= 1, got {batch_requests}"
        )
    cfg = (config or SimConfig()).with_run(
        strategy=strategy, batch=batch, batch_requests=batch_requests
    )
    tier = get_backend(backend or DEFAULT_BACKEND)
    network = tile_network(network, cfg.capacity, cfg.array_size)
    if plan is None:
        plan = plan_network(network, cfg.strategy, cfg)
    if cfg.preflight:
        # Static pre-flight: reject plans that violate capacity/budget
        # invariants before the tier spends any cycles.  Runs only the
        # closed-form ``plan`` family, so even the analytic tier pays
        # well under 1% (docs/ANALYSIS.md).  Function-level import: the
        # analysis package is only loaded when the gate is on.
        from repro.analysis.system import analyze_plan

        report = analyze_plan(plan=plan, config=cfg, families=("plan",))
        if not report.ok:
            raise PlanVerificationError(
                "pre-flight plan verification failed:\n" + report.render(),
                report,
            )
    return tier.run(network, plan, cfg)


def streaming_core_breakdown(
    timings: List[LayerTiming],
    layer_index: int,
    result: Optional[SegmentResult] = None,
) -> CoreBreakdown:
    """Fig. 9 per-iteration breakdown of one layer (streaming tier).

    The breakdown is defined by the tandem-queue model; a ``result``
    from a streaming-tier :class:`SegmentReport` avoids re-simulation.
    """
    return SegmentSimulator(timings).core_breakdown(layer_index, result)
