"""Backend-independent mapping and accounting shared by every tier.

The mapping pipeline (tiling → strategy → plan), the Eq. (1) layer
timings, the filter-load and fmap-staging charges, and the op-count /
energy attribution are properties of the *mapped network*, not of the
fidelity tier that simulates it.  Factoring them here is what makes the
tiers comparable: an ``analytic`` and an ``event`` run of the same plan
differ only in the per-segment compute cycles their tier produced.

All functions here are verbatim moves of the historical
``ChipSimulator`` internals; the streaming backend's results are pinned
byte-identical to the pre-refactor output (``tests/sim/test_differential_pins.py``).
"""

from __future__ import annotations

import math
from typing import List, Sequence

from repro.core.perfmodel import LayerTiming, PerformanceModel
from repro.errors import MappingError
from repro.mapping.capacity import CapacityModel
from repro.mapping.segmentation import (
    MappingStrategy,
    Segment,
    SegmentPlan,
    STRATEGIES,
)
from repro.mapping.tiling import tile_network
from repro.nn.workloads import NetworkSpec
from repro.sim.config import SimConfig
from repro.energy.power import OpCounts


def performance_model(config: SimConfig) -> PerformanceModel:
    """The Eq. (1) model for this machine description."""
    return PerformanceModel(config.params, config.capacity)


def plan_network(
    network: NetworkSpec, strategy: str, config: SimConfig
) -> SegmentPlan:
    """Tile the network and plan its segmentation with a named strategy."""
    try:
        strategy_cls = STRATEGIES[strategy]
    except KeyError:
        raise MappingError(
            f"unknown strategy {strategy!r}; choose from {sorted(STRATEGIES)}"
        ) from None
    # Layers too large for the whole array run in multiple passes.
    network = tile_network(network, config.capacity, config.array_size)
    mapper: MappingStrategy = strategy_cls(
        array_size=config.array_size, capacity=config.capacity
    )
    model = performance_model(config)
    return mapper.plan(network, model.layer_time_fn())


def segment_timings(
    model: PerformanceModel, segment: Segment
) -> List[LayerTiming]:
    """Eq. (1) timings of every layer of one mapped segment."""
    timings = []
    for i, spec in enumerate(segment.layers):
        timings.append(
            model.layer_timing(
                spec,
                segment.allocation.nodes[spec.index],
                from_dram=(i == 0),
            )
        )
    return timings


def segment_weight_bytes(segment: Segment) -> float:
    """Weight footprint streamed into the segment's CMems."""
    return sum(spec.weight_count * spec.n_bits / 8 for spec in segment.layers)


def exposed_filter_load_cycles(config: SimConfig, weight_bytes: float) -> float:
    """Filter-load cycles not hidden behind compute (Sec. 6.2)."""
    return (
        weight_bytes
        / config.params.filter_load_bw
        * (1.0 - config.params.filter_load_overlap)
    )


def boundary_bytes(plan: SegmentPlan, k: int) -> int:
    """Fmap bytes staged through DRAM after segment ``k``."""
    last = plan.segments[k].layers[-1]
    oh, ow = last.ofmap_hw
    return last.m * oh * ow * last.n_bits // 8


def staging_cycles(config: SimConfig, plan: SegmentPlan, k: int) -> float:
    """Write-out + read-back of the boundary fmaps around segment ``k``."""
    bw = config.params.filter_load_bw
    cycles = 0.0
    if k > 0:
        cycles += boundary_bytes(plan, k - 1) / bw  # read back in
    if k < len(plan.segments) - 1:
        cycles += boundary_bytes(plan, k) / bw  # write out
    return cycles


def steady_interval(timings: Sequence[LayerTiming]) -> float:
    """Per-sample interval at steady state: the bottleneck station's
    busy time.  Extra batch samples stream through at this rate."""
    return max(lt.iterations * lt.interval for lt in timings)


def count_segment_ops(
    ops: OpCounts,
    model: PerformanceModel,
    capacity: CapacityModel,
    segment: Segment,
    timings: List[LayerTiming],
    compute_cycles: float,
    weight_bytes: float,
    batch: int = 1,
) -> None:
    """Accumulate one segment's operation counts into ``ops``.

    ``compute_cycles`` is whatever the selected tier reported for the
    segment — the only tier-dependent input to the energy model (it
    scales the core-active leakage term).
    """
    cap = capacity
    for lt in timings:
        spec = lt.spec
        nodes = lt.computing_nodes
        vpf = cap.macs_per_filter_per_pixel(spec)
        ops.macs += spec.ofmap_pixels * spec.m * vpf * batch
        sub = max(1, math.ceil(spec.c / cap.cols))
        iterations = lt.iterations
        # Broadcast moves happen on every node, every iteration.
        slices = model.slices_used(spec, nodes)
        ops.moves += iterations * slices * sub * nodes * batch
        # The DC writes one full row group per vector.
        ops.vertical_writes += iterations * cap.cols * sub * batch
        # Vector forwarding along the chain: N rows per hop.
        row_transfers = iterations * spec.n_bits * sub * nodes * batch
        ops.remote_rows += row_transfers
        ops.noc_flit_hops += row_transfers * 5  # 5-flit row packets, 1 hop
        # Ofmap values to the next DC: 2-flit scalar stores, ~2 hops.
        ofmap_values = spec.ofmap_pixels * spec.m * batch
        ops.noc_flit_hops += ofmap_values * 2 * 2
    # DRAM traffic: weights plus this segment's input and output fmaps.
    first, last = segment.layers[0], segment.layers[-1]
    in_bytes = first.c * first.ifmap_pixels * first.n_bits // 8
    oh, ow = last.ofmap_hw
    out_bytes = last.m * oh * ow * last.n_bits // 8
    dram_bytes = int(weight_bytes) + (in_bytes + out_bytes) * batch
    ops.dram_bytes += dram_bytes
    ops.llc_accesses += dram_bytes // 64
    ops.noc_flit_hops += (dram_bytes // 8) * 8  # LLC<->core traffic, ~8 hops
    active = segment.total_nodes
    ops.core_active_cycles += int(active * compute_cycles)
