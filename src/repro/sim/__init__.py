"""``repro.sim`` — the fidelity-tiered simulation backend layer.

One contract (:func:`simulate` → :class:`RunReport`), four named tiers
(``analytic``, ``streaming``, ``event``, ``cycle``) selectable by string
everywhere a simulation is requested.  See ``docs/SIMULATORS.md`` for the
backend matrix and :mod:`repro.sim.xcheck` for the cross-tier
differential harness.
"""

from repro.sim.config import DEFAULT_ARRAY_SIZE, SimConfig
from repro.sim.report import LayerReport, RunReport, SegmentReport
from repro.sim.backends import (
    DEFAULT_BACKEND,
    AnalyticBackend,
    CycleBackend,
    EventBackend,
    ModeledBackend,
    SimulationBackend,
    StreamingBackend,
    available_backends,
    get_backend,
    register_backend,
    simulate,
    streaming_core_breakdown,
)
from repro.sim.xcheck import (
    DEFAULT_ENVELOPE,
    TierCheck,
    XCheckReport,
    cross_check,
)

__all__ = [
    "DEFAULT_ARRAY_SIZE",
    "DEFAULT_BACKEND",
    "DEFAULT_ENVELOPE",
    "AnalyticBackend",
    "CycleBackend",
    "EventBackend",
    "LayerReport",
    "ModeledBackend",
    "RunReport",
    "SegmentReport",
    "SimConfig",
    "SimulationBackend",
    "StreamingBackend",
    "TierCheck",
    "XCheckReport",
    "available_backends",
    "cross_check",
    "get_backend",
    "register_backend",
    "simulate",
    "streaming_core_breakdown",
]
